(* metrics-smoke: validate the observability artifacts of one traced run.

   Usage: metrics_smoke TRACE.json METRICS.json

   Checks, in order:
   1. TRACE.json parses and is a Chrome trace_event array: a non-empty
      JSON list whose elements carry name/ph/pid/tid with the right
      types ("X"/"i" events also need ts, "X" also dur; metadata "M"
      records carry args.name instead).
   2. METRICS.json parses against the ia32el-metrics/2 schema: required
      sections present, cycles.total an integer, counters non-empty.
   3. Determinism guard: re-run the same workload with no observability
      attached and require bit-identical total cycles and counters —
      tracing must not perturb the simulation. *)

module J = Obs.Metrics

let workload_name = "gzip"

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "metrics-smoke: %s\n" msg;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  match J.parse (read_file path) with
  | Ok j -> j
  | Error msg -> fail "%s: %s" path msg

let expect_int path ctx = function
  | Some (J.Int _) -> ()
  | Some _ -> fail "%s: %s is not an integer" path ctx
  | None -> fail "%s: missing %s" path ctx

let expect_str path ctx = function
  | Some (J.Str s) -> s
  | Some _ -> fail "%s: %s is not a string" path ctx
  | None -> fail "%s: missing %s" path ctx

let check_trace path =
  match parse_file path with
  | J.List [] -> fail "%s: empty trace_event array" path
  | J.List events ->
    List.iteri
      (fun i ev ->
        let ctx what = Printf.sprintf "event %d: %s" i what in
        ignore (expect_str path (ctx "name") (J.member "name" ev));
        let ph = expect_str path (ctx "ph") (J.member "ph" ev) in
        expect_int path (ctx "pid") (J.member "pid" ev);
        expect_int path (ctx "tid") (J.member "tid" ev);
        match ph with
        | "M" ->
          (* process_name/thread_name metadata: args.name is the label *)
          (match J.member "args" ev with
          | Some args ->
            ignore (expect_str path (ctx "args.name") (J.member "name" args))
          | None -> fail "%s: %s" path (ctx "metadata record without args"))
        | "X" ->
          expect_int path (ctx "ts") (J.member "ts" ev);
          expect_int path (ctx "dur") (J.member "dur" ev)
        | "i" -> expect_int path (ctx "ts") (J.member "ts" ev)
        | ph -> fail "%s: %s" path (ctx ("bad ph " ^ ph)))
      events;
    (* at least the process_name record must be present *)
    if
      not
        (List.exists
           (fun ev ->
             match (J.member "ph" ev, J.member "name" ev) with
             | Some (J.Str "M"), Some (J.Str "process_name") -> true
             | _ -> false)
           events)
    then fail "%s: no process_name metadata record" path;
    List.length events
  | _ -> fail "%s: top level is not an array" path

let get_section path metrics name =
  match J.member name metrics with
  | Some (J.Obj fields) -> fields
  | Some _ -> fail "%s: section %s is not an object" path name
  | None -> fail "%s: missing section %s" path name

let check_metrics path =
  let m = parse_file path in
  let schema = expect_str path "schema" (J.member "schema" m) in
  if schema <> "ia32el-metrics/2" then
    fail "%s: unexpected schema %s" path schema;
  let cycles = get_section path m "cycles" in
  let total =
    match List.assoc_opt "total" cycles with
    | Some (J.Int n) -> n
    | _ -> fail "%s: cycles.total missing or not an integer" path
  in
  let counters =
    List.filter_map
      (fun (k, v) -> match v with J.Int n -> Some (k, n) | _ -> None)
      (get_section path m "counters")
  in
  if counters = [] then fail "%s: counters section is empty" path;
  List.iter
    (fun s -> ignore (get_section path m s))
    [ "machine"; "tcache"; "dcache"; "vos" ];
  (total, counters)

let () =
  let trace_path, metrics_path =
    match Sys.argv with
    | [| _; t; m |] -> (t, m)
    | _ -> fail "usage: metrics_smoke TRACE.json METRICS.json"
  in
  let n_events = check_trace trace_path in
  let traced_total, traced_counters = check_metrics metrics_path in
  (* determinism guard: a fresh run with no observability attached must
     report exactly the cycles and counters the traced run exported *)
  let w =
    match
      List.find_opt
        (fun w -> w.Workloads.Common.name = workload_name)
        Workloads.Spec_int.all
    with
    | Some w -> w
    | None -> fail "workload %s not found" workload_name
  in
  let r = Workloads.Baselines.run_el w ~scale:1 in
  let eng =
    match r.Workloads.Baselines.engine with
    | Some e -> e
    | None -> fail "no engine from plain run"
  in
  let plain = Ia32el.Engine.metrics eng in
  let plain_total =
    match J.member "total" (J.Obj (List.assoc "cycles" (J.sections plain))) with
    | Some (J.Int n) -> n
    | _ -> fail "plain run: no cycles.total"
  in
  if plain_total <> traced_total then
    fail "tracing perturbed the run: %d cycles traced vs %d plain"
      traced_total plain_total;
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k (J.counters plain) with
      | Some v' when v' = v -> ()
      | Some v' -> fail "counter %s: %d traced vs %d plain" k v v'
      | None -> fail "counter %s missing from plain run" k)
    traced_counters;
  Printf.printf
    "metrics-smoke OK: %d trace events, %d cycles, %d counters identical \
     with and without observability\n"
    n_events traced_total (List.length traced_counters)
