(* ia32el-report: render one metrics/bench artifact human-readably, or
   diff two of them with per-counter deltas and tolerance bands.

   The diff is the CI perf-regression gate: integer leaves are treated
   as deterministic virtual-cycle counters and gated (tolerance 0 by
   default); float leaves and anything under a host-dependent section
   (host_timers, wallclock-style artifacts) are informational only,
   because wall time varies by host. Exit codes: 0 clean, 1 regression
   (with --fail-on-regression), 2 usage/parse errors. *)

module J = Obs.Metrics

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | s -> (
    match J.parse s with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Paths whose values depend on the host, never gated: wall seconds,
   rates derived from them, and the engine's host-side phase timers. *)
let informational_segment seg =
  seg = "host_timers" || seg = "wallclock" || seg = "wall"
  ||
  (* snapshot_cost is host microseconds even though its fields are Int *)
  seg = "snapshot_cost"

let path_informational path = List.exists informational_segment path

let pp_path ppf path = Fmt.pf ppf "%s" (String.concat "." (List.rev path))

(* ---- render ------------------------------------------------------------- *)

let rec render_value ppf ~indent path v =
  let pad = String.make indent ' ' in
  match v with
  | J.Obj fields ->
    List.iter
      (fun (k, v) ->
        match v with
        | J.Obj _ ->
          Fmt.pf ppf "%s%s:@." pad k;
          render_value ppf ~indent:(indent + 2) (k :: path) v
        | _ ->
          Fmt.pf ppf "%s%-28s %s@." pad k (scalar_to_string v))
      fields
  | _ -> Fmt.pf ppf "%s%s@." pad (scalar_to_string v)

and scalar_to_string = function
  | J.Null -> "null"
  | J.Bool b -> string_of_bool b
  | J.Int n -> string_of_int n
  | J.Float f -> Printf.sprintf "%.6f" f
  | J.Str s -> s
  | J.List l -> Printf.sprintf "[%d items]" (List.length l)
  | J.Obj fields -> Printf.sprintf "{%d fields}" (List.length fields)

let render path =
  match parse_file path with
  | Error msg ->
    Fmt.epr "ia32el-report: %s@." msg;
    2
  | Ok j ->
    let ppf = Fmt.stdout in
    (match J.member "schema" j with
    | Some (J.Str s) -> Fmt.pf ppf "schema: %s  (%s)@." s path
    | _ -> Fmt.pf ppf "artifact: %s@." path);
    (match j with
    | J.Obj fields ->
      List.iter
        (fun (k, v) ->
          if k <> "schema" then begin
            Fmt.pf ppf "@.%s@." k;
            match v with
            | J.Obj _ -> render_value ppf ~indent:2 [ k ] v
            | _ -> Fmt.pf ppf "  %s@." (scalar_to_string v)
          end)
        fields
    | other -> render_value ppf ~indent:0 [] other);
    0

(* ---- diff --------------------------------------------------------------- *)

type delta = {
  d_path : string list; (* reversed segments *)
  d_base : int;
  d_cand : int;
  d_info : bool; (* informational: never gates *)
}

type diff_acc = {
  mutable deltas : delta list;
  mutable missing : string list; (* leaves present in base, absent in cand *)
  mutable added : string list;
  mutable float_notes : (string * float * float) list;
}

let rec diff_json acc path base cand =
  match (base, cand) with
  | J.Obj bf, J.Obj cf ->
    List.iter
      (fun (k, bv) ->
        match List.assoc_opt k cf with
        | Some cv -> diff_json acc (k :: path) bv cv
        | None ->
          acc.missing <-
            Fmt.str "%a" pp_path (k :: path) :: acc.missing)
      bf;
    List.iter
      (fun (k, _) ->
        if List.assoc_opt k bf = None then
          acc.added <- Fmt.str "%a" pp_path (k :: path) :: acc.added)
      cf
  | J.Int b, J.Int c ->
    if b <> c then
      acc.deltas <-
        { d_path = path; d_base = b; d_cand = c;
          d_info = path_informational path }
        :: acc.deltas
  | J.Float b, J.Float c ->
    if b <> c then
      acc.float_notes <-
        (Fmt.str "%a" pp_path path, b, c) :: acc.float_notes
  | J.Str b, J.Str c ->
    if b <> c then
      acc.float_notes <- (Fmt.str "%a" pp_path path, nan, nan) :: acc.float_notes
  | _ -> (* lists and mixed types: opaque, informational *) ()

let within_tolerance ~tolerance d =
  let bound = tolerance *. Float.max 1.0 (Float.abs (float_of_int d.d_base)) in
  Float.abs (float_of_int (d.d_cand - d.d_base)) <= bound

let diff ~tolerance ~fail_on_regression base_path cand_path =
  match (parse_file base_path, parse_file cand_path) with
  | Error msg, _ | _, Error msg ->
    Fmt.epr "ia32el-report: %s@." msg;
    2
  | Ok base, Ok cand ->
    let ppf = Fmt.stdout in
    (match (J.member "schema" base, J.member "schema" cand) with
    | Some (J.Str a), Some (J.Str b) when a <> b ->
      Fmt.pf ppf "warning: schema mismatch: %s vs %s@." a b
    | _ -> ());
    let acc =
      { deltas = []; missing = []; added = []; float_notes = [] }
    in
    diff_json acc [] base cand;
    let deltas = List.rev acc.deltas in
    let gated, info = List.partition (fun d -> not d.d_info) deltas in
    let regressions =
      List.filter (fun d -> not (within_tolerance ~tolerance d)) gated
    in
    Fmt.pf ppf "diff %s -> %s@." base_path cand_path;
    if deltas = [] && acc.missing = [] && acc.added = [] then
      Fmt.pf ppf "  no integer-counter changes@."
    else begin
      List.iter
        (fun d ->
          let delta = d.d_cand - d.d_base in
          Fmt.pf ppf "  %-44s %12d -> %-12d (%+d%s)@."
            (Fmt.str "%a" pp_path d.d_path)
            d.d_base d.d_cand delta
            (if d.d_info then ", informational"
             else if within_tolerance ~tolerance d then ", within tolerance"
             else ""))
        (gated @ info);
      List.iter (fun p -> Fmt.pf ppf "  %-44s missing in candidate@." p)
        (List.rev acc.missing);
      List.iter (fun p -> Fmt.pf ppf "  %-44s only in candidate@." p)
        (List.rev acc.added)
    end;
    if acc.float_notes <> [] then
      Fmt.pf ppf "  (%d host-dependent float/string fields differ — informational)@."
        (List.length acc.float_notes);
    let failures = List.length regressions + List.length acc.missing in
    if failures > 0 then begin
      Fmt.pf ppf "RESULT: %d deterministic counter(s) outside tolerance %.3g@."
        failures tolerance;
      if fail_on_regression then 1 else 0
    end
    else begin
      Fmt.pf ppf "RESULT: clean (tolerance %.3g)@." tolerance;
      0
    end

(* ---- CLI ---------------------------------------------------------------- *)

open Cmdliner

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Artifact file(s).")

let diff_flag =
  Arg.(
    value & flag
    & info [ "diff" ] ~doc:"Diff two artifacts (requires exactly two FILEs).")

let tolerance =
  Arg.(
    value & opt float 0.0
    & info [ "tolerance" ] ~docv:"FRAC"
        ~doc:
          "Relative tolerance band for integer counters: a change within \
           FRAC * max(1, |baseline|) is not a regression. Default 0 — \
           deterministic counters must match exactly.")

let fail_on_regression =
  Arg.(
    value & flag
    & info [ "fail-on-regression" ]
        ~doc:"Exit 1 when any deterministic counter falls outside tolerance.")

let main diff_mode tolerance fail_on_regression files =
  match (diff_mode, files) with
  | false, [ f ] -> render f
  | false, _ ->
    Fmt.epr "ia32el-report: expected exactly one FILE to render@.";
    2
  | true, [ a; b ] -> diff ~tolerance ~fail_on_regression a b
  | true, _ ->
    Fmt.epr "ia32el-report: --diff expects exactly two FILEs@.";
    2

let cmd =
  let doc =
    "render an ia32el metrics/bench artifact, or diff two with a \
     perf-regression gate"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "With one FILE, pretty-prints the artifact (any \
         ia32el-metrics/ia32el-virtual/ia32el-wallclock JSON). With \
         $(b,--diff) and two FILEs, reports per-counter deltas: integer \
         leaves are deterministic virtual-cycle counters and are gated \
         against $(b,--tolerance); float leaves and host-dependent \
         sections (host_timers, wallclock) are informational.";
    ]
  in
  Cmd.v
    (Cmd.info "ia32el-report" ~doc ~man)
    Term.(const main $ diff_flag $ tolerance $ fail_on_regression $ files)

let () = exit (Cmd.eval' cmd)
