(* ia32el-fuzz: coverage-steered differential fuzzing of the translator.

   Generates well-formed guest programs over the Asm DSL from weighted
   feature pools, runs each under the lockstep differential vehicle with
   a clean run plus a set of fault-injection seeds, steers generation
   with an opcode/operand-shape/engine-event coverage map, and shrinks
   any finding to a minimal paste-ready reproducer.

     ia32el-fuzz --smoke
     ia32el-fuzz --seed 7 --runs 2000 --max-insns 48
     ia32el-fuzz --inject-seeds 0-8 --corpus my-corpus
     ia32el-fuzz --fork-server --mutations 256
     ia32el-fuzz --fork-server --smoke *)

module F = Harness.Fuzz

(* --fork-server: persistent lockstep sessions, one per base program;
   each input is served by copy-on-write snapshot / mutate / run /
   revert with translations kept warm. *)
let forkserver_main seed runs max_insns mutations smoke max_findings fuel
    verbose =
  let programs = if smoke then min runs 4 else runs in
  let mutations = if smoke then min mutations 32 else mutations in
  let cfg =
    {
      F.fs_seed = seed;
      fs_programs = programs;
      fs_mutations = mutations;
      fs_max_insns = max_insns;
      fs_fuel = fuel;
      fs_max_findings = max_findings;
      fs_log = (if verbose then prerr_endline else ignore);
    }
  in
  let t0 = Sys.time () in
  let r = F.forkserver_campaign cfg in
  let dt = Sys.time () -. t0 in
  Printf.printf
    "fork-server: %d inputs over %d base programs (seed %d, <= %d insns, %d \
     mutations each), %d pages restored, %.1fs cpu (%.0f inputs/s)\n"
    r.F.fs_runs r.F.fs_bases seed max_insns mutations r.F.fs_pages_restored dt
    (if dt > 0. then float_of_int r.F.fs_runs /. dt else 0.);
  match r.F.fs_findings with
  | [] ->
    Printf.printf "no divergences, crashes or livelocks\n";
    exit 0
  | fs ->
    Printf.printf "%d finding(s):\n" (List.length fs);
    List.iter
      (fun (f, muts) ->
        Printf.printf "mutation: [%s]\n"
          (String.concat "; "
             (List.map (fun (o, v) -> Printf.sprintf "+0x%x<-0x%02x" o v) muts));
        Fmt.pr "%a@." F.pp_finding f)
      fs;
    exit 1

(* --persist: persistence-fault campaign. For each generated program: a
   cold lockstep run recording into a fresh store, saved to disk; then a
   clean warm run plus one warm run per disk-fault mode, each over a
   freshly faulted copy of the file. Every warm run must match the cold
   run bit-for-bit — same lockstep result AND the same full metrics
   snapshot, cycle counts included — and every fault must surface a
   structured diagnostic: degraded, never diverged, never crashed. *)
let persist_main seed runs max_insns smoke fuel verbose =
  let runs = if smoke then min runs 10 else runs in
  let log = if verbose then prerr_endline else ignore in
  let rng = F.Rng.create seed in
  let config = Ia32el.Config.default in
  let config_fp = Persist.config_fingerprint config in
  let path = Filename.temp_file "ia32el-fuzz" ".tc" in
  let wpath = Filename.temp_file "ia32el-fuzz-warm" ".tc" in
  let read_file p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write_file p s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc
  in
  let result_key = function
    | F.R_ok { commits; exit_code } -> Printf.sprintf "ok:%d:%d" commits exit_code
    | F.R_halted f -> "halted:" ^ Ia32.Fault.to_string f
    | F.R_fuel -> "fuel"
    | F.R_diverged _ -> "diverged"
    | F.R_crash m -> "crash:" ^ m
  in
  let metrics_of (e : F.exec) =
    Option.map
      (fun eng -> Obs.Metrics.to_string (Ia32el.Engine.metrics eng))
      e.F.engine
  in
  let failures = ref 0 in
  let checks = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> incr failures; print_endline m) fmt in
  let t0 = Sys.time () in
  for i = 0 to runs - 1 do
    let prog = F.generate ~rng ~max_insns (seed + i) in
    let image_hash = Persist.image_hash (F.build_image prog) in
    let store = Persist.create_store ~image_hash ~config_fp in
    let cold =
      F.run_one ~config ~fuel
        ~attach_extra:(fun e -> ignore (Persist.attach store e))
        prog
    in
    let cold_key = result_key cold.F.result in
    let cold_m = metrics_of cold in
    (try Sys.remove path with Sys_error _ -> ());
    match Persist.save store ~path with
    | _ :: _ -> fail "program %d: cache save failed" i
    | [] ->
      let saved = read_file path in
      (* a clean warm run, then one warm run per disk-fault mode *)
      let modes =
        None :: List.map Option.some Harness.Inject.all_disk_faults
      in
      List.iter
        (fun mode ->
          incr checks;
          write_file wpath saved;
          (try Sys.remove (wpath ^ ".lock") with Sys_error _ -> ());
          let label =
            match mode with
            | None -> "clean-warm"
            | Some f -> Fmt.str "%a" Harness.Inject.pp_disk_fault f
          in
          (match mode with
          | None -> ()
          | Some f -> (
            match Harness.Inject.apply_disk_fault ~path:wpath f with
            | Ok () -> ()
            | Error m -> fail "program %d %s: fault injection failed: %s" i label m));
          let wstore, diags =
            Persist.load ~path:wpath ~image_hash ~config_fp
          in
          let sref = ref None in
          match
            F.run_one ~config ~fuel
              ~attach_extra:(fun e -> sref := Some (Persist.attach wstore e))
              prog
          with
          | exception e ->
            fail "program %d %s: warm run CRASHED: %s" i label
              (Printexc.to_string e)
          | warm ->
            let wk = result_key warm.F.result in
            if wk <> cold_key then
              fail "program %d %s: warm result %s differs from cold %s" i
                label wk cold_key;
            if metrics_of warm <> cold_m then
              fail "program %d %s: warm metrics differ from cold" i label;
            (match (mode, !sref) with
            | None, Some se ->
              if (Persist.stats se).Persist.hits = 0 then
                fail "program %d clean-warm: no cache hits" i;
              if diags <> [] then
                fail "program %d clean-warm: unexpected load diagnostics" i
            | None, None -> fail "program %d clean-warm: session not attached" i
            | Some Harness.Inject.Lock_held, _ ->
              (* the lock blocks saving, not loading *)
              if diags <> [] then
                fail "program %d lock-held: unexpected load diagnostics" i;
              if Persist.save wstore ~path:wpath = [] then
                fail "program %d lock-held: save ignored the lockfile" i
            | Some _, _ ->
              if diags = [] then
                fail "program %d %s: fault produced no diagnostic" i label);
            log
              (Printf.sprintf "program %d %s: %s, %d load diagnostics" i label
                 wk (List.length diags)))
        modes
  done;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; wpath; wpath ^ ".lock" ];
  Printf.printf
    "persist: %d programs, %d warm runs (clean + %d fault modes each), %.1fs \
     cpu\n"
    runs !checks
    (List.length Harness.Inject.all_disk_faults)
    (Sys.time () -. t0);
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf
    "all warm runs bit-identical to cold; every fault degraded cleanly\n";
  exit 0

let main seed runs max_insns inject_spec shrink smoke fork_server mutations
    corpus max_findings fuel verbose persist =
  if persist then persist_main seed runs max_insns smoke fuel verbose
  else if fork_server then
    forkserver_main seed
      (if runs = 200 then F.default_forkserver.F.fs_programs else runs)
      max_insns mutations smoke max_findings fuel verbose
  else begin
  let inject_seeds =
    match F.parse_seed_spec inject_spec with
    | Ok [] -> [ 1; 2 ]
    | Ok l -> l
    | Error msg ->
      Printf.eprintf "ia32el-fuzz: %s\n" msg;
      exit 2
  in
  (* --smoke: fixed seeds, bounded runs, CI-sized budget *)
  let runs = if smoke then max runs 500 else runs in
  let inject_seeds = if smoke then [ 1; 2 ] else inject_seeds in
  let corpus_dir =
    if smoke then None else if corpus = "" then None else Some corpus
  in
  let cfg =
    {
      F.default_campaign with
      F.seed;
      runs;
      max_insns;
      inject_seeds;
      shrink_findings = shrink;
      corpus_dir;
      max_findings;
      fuel;
      log = (if verbose then prerr_endline else ignore);
    }
  in
  let t0 = Sys.time () in
  let r = F.campaign cfg in
  Printf.printf
    "fuzz: %d programs (seed %d, <= %d insns), %d lockstep executions (%d \
     inject seeds), %.1fs cpu\n"
    r.F.programs seed max_insns r.F.executions
    (List.length inject_seeds)
    (Sys.time () -. t0);
  Printf.printf "pools:";
  List.iter (fun (n, c) -> Printf.printf " %s=%d" n c) r.F.pools_hit;
  Printf.printf "\ncoverage: %d buckets\n" (List.length r.F.coverage);
  if r.F.corpus_saved > 0 then
    Printf.printf "corpus: %d interesting programs saved to %s\n"
      r.F.corpus_saved
      (Option.value ~default:"?" corpus_dir);
  match r.F.findings with
  | [] ->
    Printf.printf "no divergences, crashes or livelocks\n";
    exit 0
  | fs ->
    Printf.printf "%d finding(s):\n" (List.length fs);
    List.iter (fun f -> Fmt.pr "%a@." F.pp_finding f) fs;
    exit 1
  end

open Cmdliner

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed (deterministic).")

let runs_arg =
  Arg.(
    value & opt int 200
    & info [ "n"; "runs" ] ~docv:"N" ~doc:"Programs to generate.")

let max_insns_arg =
  Arg.(
    value & opt int 32
    & info [ "max-insns" ] ~docv:"N"
        ~doc:"Instruction budget per generated program.")

let inject_arg =
  Arg.(
    value & opt string "1,2"
    & info [ "inject-seeds" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection seeds per program, in addition to a clean run: \
           a list and/or ranges ($(b,3), $(b,0-8), $(b,3,7,11)).")

let shrink_arg =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~docv:"BOOL"
        ~doc:"Shrink findings to minimal reproducers (default true).")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "CI smoke mode: fixed seeds, at least 500 programs, clean run \
           plus 2 injection seeds each, bounded well under a minute.")

let corpus_arg =
  Arg.(
    value & opt string "fuzz-corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Directory for programs that light up new coverage buckets \
           (empty string disables; disabled in $(b,--smoke)).")

let max_findings_arg =
  Arg.(
    value & opt int 5
    & info [ "max-findings" ] ~docv:"N"
        ~doc:"Stop the campaign after this many findings.")

let fuel_arg =
  Arg.(
    value & opt int 12_000_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Engine fuel per lockstep run.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log findings and shrink progress.")

let fork_server_arg =
  Arg.(
    value & flag
    & info [ "fork-server" ]
        ~doc:
          "Fork-server mode: build one persistent lockstep session per            base program (engine, translations and reference built once),            then serve each input by copy-on-write snapshot / mutate the            scratch region / run / revert, keeping translated code warm            across inputs. $(b,--runs) counts base programs,            $(b,--mutations) inputs per base.")

let mutations_arg =
  Arg.(
    value
    & opt int F.default_forkserver.F.fs_mutations
    & info [ "mutations" ] ~docv:"N"
        ~doc:
          "Mutated inputs per base program in $(b,--fork-server) mode            (each base also runs once unmutated).")

let persist_arg =
  Arg.(
    value & flag
    & info [ "persist" ]
        ~doc:
          "Persistence-fault campaign: for each generated program, record \
           a cold lockstep run into a translation-cache file, then replay \
           it warm — once clean and once per disk-fault mode (bit flip, \
           truncation, partial write, stale fingerprint, held lock). \
           Every warm run must be bit-identical to the cold one and every \
           fault must degrade to retranslation with a structured \
           diagnostic. $(b,--runs) counts programs; exits non-zero on any \
           divergence, crash or silent fault.")

let main_t =
  Term.(
    const main $ seed_arg $ runs_arg $ max_insns_arg $ inject_arg $ shrink_arg
    $ smoke_arg $ fork_server_arg $ mutations_arg $ corpus_arg
    $ max_findings_arg $ fuel_arg $ verbose_arg $ persist_arg)

let cmd =
  Cmd.v
    (Cmd.info "ia32el-fuzz" ~version:"1.0.0"
       ~doc:
         "Differential fuzzing: random well-formed IA-32 guests under \
          lockstep with fault injection, with automatic shrinking.")
    main_t

let () = exit (Cmd.eval cmd)
