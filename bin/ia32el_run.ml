(* ia32el-run: command-line driver for the IA-32 EL simulator.

   Runs any of the bundled synthetic workloads under a chosen execution
   model and prints cycle counts, the time distribution, and the
   translator statistics. The bench harness (bench/main.exe) regenerates
   the paper's tables and figures wholesale; this tool is for poking at a
   single workload/configuration pair.

     ia32el-run list
     ia32el-run run gzip
     ia32el-run run gzip --model cold-only --scale 2 --stats
     ia32el-run run swim --model native
     ia32el-run run office --model xeon
     ia32el-run run gzip --lockstep
     ia32el-run run gzip --lockstep --inject 3
     ia32el-run run gzip --lockstep --inject 1,4-8 *)

module B = Workloads.Baselines
module C = Workloads.Common

let workloads : C.t list =
  Workloads.Spec_int.all @ Workloads.Spec_fp.all
  @ [ Workloads.Sysmark.office; Workloads.Sysmark.misalign_stress ]

let find_workload name =
  List.find_opt (fun w -> w.C.name = name) workloads

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

type model =
  | M_el of Ia32el.Config.t * string
  | M_native
  | M_circuitry
  | M_xeon

let model_of_string = function
  | "el" | "default" -> Ok (M_el (Ia32el.Config.default, "two-phase IA-32 EL"))
  | "cold-only" ->
    Ok (M_el (Ia32el.Config.cold_only, "cold-only translator"))
  | "interpret-first" ->
    Ok
      (M_el
         ( {
             Ia32el.Config.default with
             Ia32el.Config.first_phase = Ia32el.Config.Interpret_first;
           },
           "interpret-first two-phase" ))
  | "native" -> Ok M_native
  | "circuitry" -> Ok M_circuitry
  | "xeon" -> Ok M_xeon
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown model %S (el, cold-only, interpret-first, native, \
            circuitry, xeon)"
           s))

let model_conv =
  Cmdliner.Arg.conv
    ( model_of_string,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with
          | M_el (_, d) -> d
          | M_native -> "native"
          | M_circuitry -> "circuitry"
          | M_xeon -> "xeon") )

let print_stats (a : Ia32el.Account.t) =
  Printf.printf "translation:\n";
  Printf.printf "  cold blocks %d (%d insns, %.1f insns/block)\n"
    a.Ia32el.Account.cold_blocks a.Ia32el.Account.cold_insns
    (Float.of_int a.Ia32el.Account.cold_insns
    /. Float.of_int (max 1 a.Ia32el.Account.cold_blocks));
  Printf.printf "  stage-2 regenerations %d   hot discards %d\n"
    a.Ia32el.Account.cold_regens a.Ia32el.Account.hot_discards;
  Printf.printf "  hot traces %d (%d source insns -> %d target insns)\n"
    a.Ia32el.Account.hot_blocks a.Ia32el.Account.hot_insns
    a.Ia32el.Account.hot_target_insns;
  Printf.printf "  heat triggers %d   commit points %d\n"
    a.Ia32el.Account.heat_triggers a.Ia32el.Account.commit_points;
  Printf.printf "engine:\n";
  Printf.printf "  dispatches %d   chain patches %d   indirect %d (%d miss)\n"
    a.Ia32el.Account.dispatches a.Ia32el.Account.chain_patches
    a.Ia32el.Account.indirect_lookups a.Ia32el.Account.indirect_misses;
  Printf.printf "speculation:\n";
  Printf.printf "  TOS checks %d (miss %d)   tag miss %d\n"
    a.Ia32el.Account.tos_checks a.Ia32el.Account.tos_misses
    a.Ia32el.Account.tag_misses;
  Printf.printf "  mode checks %d (miss %d)   SSE checks %d (miss %d)\n"
    a.Ia32el.Account.mode_checks a.Ia32el.Account.mode_misses
    a.Ia32el.Account.sse_checks a.Ia32el.Account.sse_misses;
  Printf.printf "misalignment:\n";
  Printf.printf
    "  stage-1 hits %d   avoidance sequences %d   OS-priced traps %d\n"
    a.Ia32el.Account.misalign_stage1_hits a.Ia32el.Account.misalign_avoided
    a.Ia32el.Account.misalign_os_faults;
  Printf.printf "exceptions:\n";
  Printf.printf "  filtered %d   rollforwards %d   SMC invalidations %d\n"
    a.Ia32el.Account.exceptions_filtered a.Ia32el.Account.rollforwards
    a.Ia32el.Account.smc_invalidations;
  if a.Ia32el.Account.cache_flushes > 0 then
    Printf.printf "translation-cache flushes: %d\n"
      a.Ia32el.Account.cache_flushes;
  if
    a.Ia32el.Account.degrade_interp_entries > 0
    || a.Ia32el.Account.degrade_smc_storms > 0
  then
    Printf.printf
      "degradation: interp-only entries %d   SMC-storm pages %d\n"
      a.Ia32el.Account.degrade_interp_entries
      a.Ia32el.Account.degrade_smc_storms

let print_inject_stats = function
  | Some s -> Fmt.pr "%a@." Harness.Inject.pp_stats s
  | None -> ()

(* --lockstep: run the engine against the reference interpreter, with the
   chaos injector when --inject SEED is given. *)
let run_lockstep_cmd w config desc scale stats seed =
  let r = Harness.Resilience.run_lockstep ~config ?seed w ~scale in
  (match r.Harness.Resilience.report.Ia32el.Lockstep.divergence with
  | Some d ->
    Fmt.epr "%s under %s DIVERGED:@.%a@." w.C.name desc
      Ia32el.Lockstep.pp_divergence d;
    print_inject_stats r.Harness.Resilience.inject_stats;
    exit 1
  | None -> ());
  (match r.Harness.Resilience.report.Ia32el.Lockstep.outcome with
  | Some (Ia32el.Engine.Exited (code, _)) ->
    Printf.printf "%s under %s in lockstep: exit %d, %d commit points agree\n"
      w.C.name desc code r.Harness.Resilience.report.Ia32el.Lockstep.commits
  | Some (Ia32el.Engine.Unhandled_fault (f, st)) ->
    Printf.printf
      "%s under %s in lockstep: unhandled %s at 0x%x (both vehicles), %d \
       commit points agree\n"
      w.C.name desc (Ia32.Fault.to_string f) st.Ia32.State.eip
      r.Harness.Resilience.report.Ia32el.Lockstep.commits
  | Some Ia32el.Engine.Out_of_fuel | None ->
    Printf.printf "%s under %s in lockstep: out of fuel\n" w.C.name desc);
  print_inject_stats r.Harness.Resilience.inject_stats;
  if stats then print_stats r.Harness.Resilience.engine.Ia32el.Engine.acct

(* --inject SEED without --lockstep: chaos, engine only. *)
let run_injected_cmd w config desc scale stats seed =
  let r = Harness.Resilience.run_plain ~config ~seed w ~scale in
  (match r.Harness.Resilience.outcome with
  | Ia32el.Engine.Exited (code, _) ->
    Printf.printf "%s under %s with injection seed %d: exit %d\n" w.C.name
      desc seed code
  | Ia32el.Engine.Unhandled_fault (f, st) ->
    Printf.printf "%s under %s with injection seed %d: unhandled %s at 0x%x\n"
      w.C.name desc seed (Ia32.Fault.to_string f) st.Ia32.State.eip
  | Ia32el.Engine.Out_of_fuel ->
    Printf.printf "%s under %s with injection seed %d: out of fuel\n" w.C.name
      desc seed);
  print_inject_stats r.Harness.Resilience.inject_stats;
  if stats then print_stats r.Harness.Resilience.engine.Ia32el.Engine.acct

let run_cmd name model scale stats lockstep inject =
  let inject_seeds =
    match inject with
    | None -> None
    | Some spec -> (
      match Harness.Fuzz.parse_seed_spec spec with
      | Ok [] ->
        Printf.eprintf "--inject: empty seed spec %S\n" spec;
        exit 2
      | Ok seeds -> Some seeds
      | Error msg ->
        Printf.eprintf "--inject: %s\n" msg;
        exit 2)
  in
  match find_workload name with
  | None ->
    Printf.eprintf "unknown workload %S; try `ia32el-run list'\n" name;
    exit 1
  | Some w -> (
    try
      match model with
      | (M_native | M_circuitry | M_xeon)
        when lockstep || inject_seeds <> None ->
        Printf.eprintf
          "--lockstep/--inject only apply to the translator models\n";
        exit 1
      | M_el (config, desc) when lockstep -> (
        match inject_seeds with
        | None -> run_lockstep_cmd w config desc scale stats None
        | Some seeds ->
          List.iter
            (fun s -> run_lockstep_cmd w config desc scale stats (Some s))
            seeds)
      | M_el (config, desc) when inject_seeds <> None ->
        List.iter
          (fun s -> run_injected_cmd w config desc scale stats s)
          (Option.get inject_seeds)
      | M_el (config, desc) ->
        let r = B.run_el ~config w ~scale in
        Printf.printf "%s under %s: %d cycles\n" w.C.name desc r.B.cycles;
        (match r.B.distribution with
        | Some d -> Fmt.pr "%a@." Ia32el.Account.pp_distribution d
        | None -> ());
        (match (stats, r.B.engine) with
        | true, Some eng -> print_stats eng.Ia32el.Engine.acct
        | _ -> ())
      | M_native ->
        let r = B.run_native w ~scale in
        Printf.printf "%s natively compiled (model): %d cycles\n" w.C.name
          r.B.cycles
      | M_circuitry ->
        let r = B.run_circuitry w ~scale in
        Printf.printf "%s on the IA-32 hardware circuitry (model): %d cycles (%d insns)\n"
          w.C.name r.B.cycles r.B.insns
      | M_xeon ->
        let r = B.run_xeon w ~scale in
        Printf.printf "%s on a Xeon-class OOO IA-32 core (model): %d cycles (%d insns)\n"
          w.C.name r.B.cycles r.B.insns
    with B.Workload_failed msg ->
      Printf.eprintf "workload failed: %s\n" msg;
      exit 1)

let list_cmd () =
  Printf.printf "%-16s %s\n" "NAME" "PAPER SCORE (Fig. 5/8, percent of native)";
  List.iter
    (fun w ->
      Printf.printf "%-16s %s\n" w.C.name
        (match w.C.paper_score with
        | Some s -> string_of_int s
        | None -> "-"))
    workloads

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let model_arg =
  Arg.(
    value
    & opt model_conv (M_el (Ia32el.Config.default, "two-phase IA-32 EL"))
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "Execution model: $(b,el) (default), $(b,cold-only), \
           $(b,interpret-first), $(b,native), $(b,circuitry), $(b,xeon).")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the full translator statistics.")

let lockstep_arg =
  Arg.(
    value & flag
    & info [ "lockstep" ]
        ~doc:
          "Run the translator against the reference interpreter in \
           lockstep, comparing the full architectural state at every \
           commit point (syscalls, faults, exit). Exits non-zero on the \
           first divergence, with a structured diagnosis.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SEEDS"
        ~doc:
          "Attach the deterministic fault injector: forced speculation \
           misses, spurious SMC invalidations, translation-cache eviction \
           storms and transient system-call failures. $(docv) is a seed, a \
           range or a list ($(b,3), $(b,0-8), $(b,1,4-6)); the workload \
           runs once per seed. Combine with $(b,--lockstep) to verify each \
           run stays semantics-preserving.")

let run_t =
  Term.(
    const run_cmd $ workload_arg $ model_arg $ scale_arg $ stats_arg
    $ lockstep_arg $ inject_arg)

let run_info =
  Cmd.info "run" ~doc:"Run one workload under a chosen execution model."

let list_t = Term.(const list_cmd $ const ())
let list_info = Cmd.info "list" ~doc:"List the bundled workloads."

let main =
  Cmd.group
    (Cmd.info "ia32el-run" ~version:"1.0.0"
       ~doc:"Run IA-32 programs through the IA-32 Execution Layer simulator.")
    [ Cmd.v run_info run_t; Cmd.v list_info list_t ]

let () = exit (Cmd.eval main)
