(* ia32el-run: command-line driver for the IA-32 EL simulator.

   Runs any of the bundled synthetic workloads under a chosen execution
   model and prints cycle counts, the time distribution, and the
   translator statistics. The bench harness (bench/main.exe) regenerates
   the paper's tables and figures wholesale; this tool is for poking at a
   single workload/configuration pair.

     ia32el-run list
     ia32el-run run gzip
     ia32el-run run gzip --model cold-only --scale 2 --stats
     ia32el-run run swim --model native
     ia32el-run run office --model xeon
     ia32el-run run gzip --lockstep
     ia32el-run run gzip --lockstep --inject 3
     ia32el-run run gzip --lockstep --inject 1,4-8
     ia32el-run run gzip --trace trace.json --metrics metrics.json
     ia32el-run run gzip --profile
     ia32el-run run gzip --trace-stderr *)

module B = Workloads.Baselines
module C = Workloads.Common

let workloads ~threads : C.t list =
  Workloads.Spec_int.all @ Workloads.Spec_fp.all
  @ [
      Workloads.Sysmark.office;
      Workloads.Sysmark.misalign_stress;
      Workloads.Serve_echo.workload;
    ]
  @ Workloads.Threads.all ~workers:threads

let find_workload ~threads name =
  List.find_opt (fun w -> w.C.name = name) (workloads ~threads)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

type model =
  | M_el of Ia32el.Config.t * string
  | M_native
  | M_circuitry
  | M_xeon

let model_of_string = function
  | "el" | "default" -> Ok (M_el (Ia32el.Config.default, "two-phase IA-32 EL"))
  | "cold-only" ->
    Ok (M_el (Ia32el.Config.cold_only, "cold-only translator"))
  | "interpret-first" ->
    Ok
      (M_el
         ( {
             Ia32el.Config.default with
             Ia32el.Config.first_phase = Ia32el.Config.Interpret_first;
           },
           "interpret-first two-phase" ))
  | "native" -> Ok M_native
  | "circuitry" -> Ok M_circuitry
  | "xeon" -> Ok M_xeon
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown model %S (el, cold-only, interpret-first, native, \
            circuitry, xeon)"
           s))

let model_conv =
  Cmdliner.Arg.conv
    ( model_of_string,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with
          | M_el (_, d) -> d
          | M_native -> "native"
          | M_circuitry -> "circuitry"
          | M_xeon -> "xeon") )

(* One source of truth for statistics: the same Obs.Metrics snapshot that
   backs --metrics JSON export and the fuzzer's coverage steering, here
   rendered as grouped text. *)
let print_stats (eng : Ia32el.Engine.t) =
  Fmt.pr "%a" Obs.Metrics.pp_text (Ia32el.Engine.metrics eng)

(* ------------------------------------------------------------------ *)
(* observability plumbing                                              *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  trace_file : string option;
  trace_stderr : bool;
  profile_top : int option;
  metrics_file : string option;
  sample_interval : int option;
  flame_file : string option;
  (* one shared timer set so tcache_setup can record persist-I/O spans
     into the same artifact; Some iff --host-timers *)
  timers : Obs.Timers.t option;
}

let obs_requested o =
  o.trace_file <> None || o.trace_stderr || o.profile_top <> None
  || o.metrics_file <> None || o.sample_interval <> None
  || o.flame_file <> None || o.timers <> None

(* --flame without --sample gets the documented default interval *)
let default_sample_interval = 4096

let sampling_requested o = o.sample_interval <> None || o.flame_file <> None

(* Attach trace/profile/sampler/hists/timers per the flags; called with
   the fresh engine before the run starts. *)
let obs_attach o labels eng =
  if o.trace_file <> None || o.trace_stderr then begin
    let tr = Obs.Trace.create () in
    Ia32el.Engine.attach_trace eng tr;
    if o.trace_stderr then
      Obs.Trace.set_echo tr (fun e -> Fmt.epr "%a@." Obs.Trace.pp_event e)
  end;
  if o.profile_top <> None then
    Ia32el.Engine.attach_profile eng (Obs.Profile.create ());
  if sampling_requested o then begin
    let interval =
      Option.value o.sample_interval ~default:default_sample_interval
    in
    Ia32el.Engine.attach_sample eng (Obs.Sample.create ~interval ~labels);
    (* the sampler and the histogram layer ship together: both feed the
       ia32el-metrics/2 sections the report tool renders *)
    Ia32el.Engine.attach_hists eng (Obs.Hist.create_set ())
  end;
  match o.timers with
  | Some tm -> Ia32el.Engine.attach_timers eng tm
  | None -> ()

(* Map a guest entry EIP to a symbolic name using the workload image's
   label table: exact label, or nearest label below as label+0xOFF.
   Selection is by greatest address at or below the entry regardless of
   the table's order — hot superblock entries (mid-function EIPs) resolve
   to the right symbol even when the label list is not address-sorted. *)
let name_of labels entry =
  let best =
    List.fold_left
      (fun acc (n, a) ->
        if a > entry then acc
        else
          match acc with
          | Some (_, best_a) when best_a >= a -> acc
          | _ -> Some (n, a))
      None labels
  in
  match best with
  | Some (n, a) when a = entry -> Some n
  | Some (n, a) when entry - a < 0x10000 ->
    Some (Printf.sprintf "%s+0x%x" n (entry - a))
  | _ -> None

(* Emit the requested artifacts after the run. *)
let obs_finish o labels eng =
  (match (o.trace_file, Ia32el.Engine.trace eng) with
  | Some file, Some tr ->
    let oc = open_out file in
    Obs.Trace.write_chrome tr oc;
    close_out oc;
    Printf.printf "trace: %d events (%d dropped) -> %s\n" (Obs.Trace.length tr)
      (Obs.Trace.dropped tr) file
  | _ -> ());
  (match (o.profile_top, Ia32el.Engine.profile eng) with
  | Some n, Some p ->
    let samples =
      match Ia32el.Engine.sampler eng with
      | Some s when Obs.Sample.samples s > 0 ->
        Some
          ( (fun entry -> Obs.Sample.entry_samples s entry),
            Obs.Sample.samples s )
      | _ -> None
    in
    Fmt.pr "%a"
      (fun ppf ->
        Obs.Profile.render ~top:n ~name_of:(name_of labels) ?samples ppf)
      p
  | _ -> ());
  (match Ia32el.Engine.sampler eng with
  | Some s ->
    Fmt.pr "%a" (Obs.Sample.render_top ~top_n:10) s;
    (match o.flame_file with
    | Some file ->
      Obs.Sample.write_folded s file;
      Printf.printf "flamegraph: %d samples in %d buckets -> %s\n"
        (Obs.Sample.samples s) (Obs.Sample.bucket_count s) file
    | None -> ())
  | None -> ());
  (match o.timers with
  | Some tm -> Fmt.pr "host phase timers:@.%a" Obs.Timers.pp tm
  | None -> ());
  match o.metrics_file with
  | Some file ->
    let oc = open_out file in
    Obs.Metrics.write (Ia32el.Engine.metrics eng) oc;
    close_out oc;
    Printf.printf "metrics -> %s\n" file
  | None -> ()

(* ------------------------------------------------------------------ *)
(* persistent translation cache plumbing                               *)
(* ------------------------------------------------------------------ *)

type tcache_opts = {
  tc_file : string option;
  tc_readonly : bool;
  tc_no_verify : bool;
}

(* Returns (attach, finish): [attach] installs the persistent-store
   translate filter on a fresh engine; [finish] (after the run) saves the
   store back — unless read-only — and reports. Load problems are
   warnings: damaged or stale entries are dropped with a diagnostic and
   the run degrades to live translation. *)
let tcache_setup ?timers tc ~(config : Ia32el.Config.t) (w : C.t) ~scale
    ~stats =
  (* persist-I/O wall spans land in the shared --host-timers set *)
  let timed_io f =
    match timers with
    | None -> f ()
    | Some tm -> Obs.Timers.time tm Obs.Timers.Persist_io f
  in
  match tc.tc_file with
  | None -> ((fun _ -> ()), fun () -> ())
  | Some path ->
    let image = w.C.build ~scale ~wide:false in
    let image_hash = Persist.image_hash image in
    let config_fp = Persist.config_fingerprint config in
    let store, diags =
      timed_io (fun () -> Persist.load ~path ~image_hash ~config_fp)
    in
    List.iter (fun d -> Fmt.epr "tcache: %a@." Ia32el.Bt_error.pp d) diags;
    if diags <> [] then
      Fmt.epr
        "tcache: damaged or stale cache content dropped; affected blocks \
         will retranslate@.";
    let session = ref None in
    let attach eng =
      session :=
        Some
          (Persist.attach ~verify:(not tc.tc_no_verify)
             ~readonly:tc.tc_readonly store eng)
    in
    let finish () =
      match !session with
      | None -> ()
      | Some se ->
        if stats then Fmt.pr "%a@." Persist.pp_stats (Persist.stats se);
        if not tc.tc_readonly then begin
          let ds = timed_io (fun () -> Persist.save store ~path) in
          List.iter (fun d -> Fmt.epr "tcache: %a@." Ia32el.Bt_error.pp d) ds;
          if ds = [] then
            Printf.printf "tcache: %d entries -> %s\n"
              (Persist.entry_count store) path
        end
    in
    (attach, finish)

let print_inject_stats = function
  | Some s -> Fmt.pr "%a@." Harness.Inject.pp_stats s
  | None -> ()

let print_capsule_written = function
  | Some file -> Printf.printf "crash capsule -> %s\n" file
  | None -> ()

(* --lockstep: run the engine against the reference interpreter, with the
   chaos injector when --inject SEED is given. *)
let run_lockstep_cmd w config desc scale stats obs labels
    ((pattach, pfinish) : (Ia32el.Engine.t -> unit) * (unit -> unit)) seed
    max_cycles snap_every capsule sabotage =
  let r =
    Harness.Resilience.run_lockstep ~config ?seed ?max_cycles ?snap_every
      ?capsule ?sabotage
      ~attach_extra:(fun eng ->
        obs_attach obs labels eng;
        pattach eng)
      w ~scale
  in
  (match r.Harness.Resilience.report.Ia32el.Lockstep.divergence with
  | Some d ->
    Fmt.epr "%s under %s DIVERGED:@.%a@." w.C.name desc
      Ia32el.Lockstep.pp_divergence d;
    print_inject_stats r.Harness.Resilience.inject_stats;
    print_capsule_written r.Harness.Resilience.capsule_written;
    exit 1
  | None -> ());
  (match r.Harness.Resilience.report.Ia32el.Lockstep.outcome with
  | Some (Ia32el.Engine.Exited (code, _)) ->
    Printf.printf "%s under %s in lockstep: exit %d, %d commit points agree\n"
      w.C.name desc code r.Harness.Resilience.report.Ia32el.Lockstep.commits
  | Some (Ia32el.Engine.Unhandled_fault (f, st)) ->
    Printf.printf
      "%s under %s in lockstep: unhandled %s at 0x%x (both vehicles), %d \
       commit points agree\n"
      w.C.name desc (Ia32.Fault.to_string f) st.Ia32.State.eip
      r.Harness.Resilience.report.Ia32el.Lockstep.commits
  | Some Ia32el.Engine.Out_of_fuel | None ->
    Printf.printf "%s under %s in lockstep: out of fuel\n" w.C.name desc);
  print_inject_stats r.Harness.Resilience.inject_stats;
  print_capsule_written r.Harness.Resilience.capsule_written;
  if stats then print_stats r.Harness.Resilience.engine;
  obs_finish obs labels r.Harness.Resilience.engine;
  pfinish ()

(* Engine-only path with the resilience knobs: --inject without
   --lockstep, and any plain run that arms --max-cycles,
   --snapshot-every or --capsule. *)
let run_plain_cmd w config desc scale stats obs labels
    ((pattach, pfinish) : (Ia32el.Engine.t -> unit) * (unit -> unit)) seed
    max_cycles snap_every capsule sabotage =
  let r =
    Harness.Resilience.run_plain ~config ?seed ?max_cycles ?snap_every
      ?capsule ?sabotage
      ~attach:(fun eng ->
        obs_attach obs labels eng;
        pattach eng)
      w ~scale
  in
  let with_seed =
    match seed with
    | Some seed -> Printf.sprintf " with injection seed %d" seed
    | None -> ""
  in
  (match r.Harness.Resilience.outcome with
  | Ia32el.Engine.Exited (code, _) ->
    Printf.printf "%s under %s%s: exit %d\n" w.C.name desc with_seed code
  | Ia32el.Engine.Unhandled_fault (f, st) ->
    Printf.printf "%s under %s%s: unhandled %s at 0x%x\n" w.C.name desc
      with_seed (Ia32.Fault.to_string f) st.Ia32.State.eip
  | Ia32el.Engine.Out_of_fuel ->
    Printf.printf "%s under %s%s: out of fuel\n" w.C.name desc with_seed);
  print_inject_stats r.Harness.Resilience.inject_stats;
  print_capsule_written r.Harness.Resilience.capsule_written;
  if stats then print_stats r.Harness.Resilience.engine;
  obs_finish obs labels r.Harness.Resilience.engine;
  pfinish ()

(* --replay CAPSULE: rebuild the failing run from the capsule file and
   verify it reproduces bit-identically. *)
let replay_cmd file =
  let c =
    try Harness.Capsule.load file
    with
    | Sys_error msg ->
      Printf.eprintf "--replay: %s\n" msg;
      exit 2
    | Invalid_argument msg | Failure msg ->
      Printf.eprintf "--replay: %s\n" msg;
      exit 2
    | Ia32el.Bt_error.Error e ->
      Fmt.epr "--replay: %a@." Ia32el.Bt_error.pp e;
      exit 3
  in
  print_string (Harness.Capsule.describe c);
  let v = Harness.Capsule.replay ~log:prerr_endline c in
  Printf.printf "replay: %d/%d commit points matched; failure now: %s\n"
    v.Harness.Capsule.v_log_match v.Harness.Capsule.v_log_total
    v.Harness.Capsule.v_failure_got;
  if v.Harness.Capsule.v_reproduced then
    print_endline "replay: REPRODUCED bit-identically"
  else begin
    print_endline "replay: did NOT reproduce the recorded run";
    exit 1
  end

let run_cmd name model scale stats lockstep inject trace_file trace_stderr
    profile_top metrics_file sample_interval flame_file host_timers
    no_predecode no_decode_cache no_fusion no_hot_counters threads quantum
    max_cycles snap_every capsule replay sabotage tcache_file tcache_readonly
    no_tcache_verify =
  (match replay with
  | Some file -> replay_cmd file; exit 0
  | None -> ());
  let sabotage =
    match sabotage with
    | None -> None
    | Some spec -> (
      match Harness.Capsule.parse_sabotage spec with
      | Ok sb -> Some sb
      | Error msg ->
        Printf.eprintf "--sabotage: %s\n" msg;
        exit 2)
  in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.eprintf "a WORKLOAD argument is required (unless --replay)\n";
      exit 2
  in
  let obs =
    {
      trace_file;
      trace_stderr;
      profile_top;
      metrics_file;
      sample_interval;
      flame_file;
      timers = (if host_timers then Some (Obs.Timers.create ()) else None);
    }
  in
  let tc =
    {
      tc_file = tcache_file;
      tc_readonly = tcache_readonly;
      tc_no_verify = no_tcache_verify;
    }
  in
  (* host-speed escape hatches; simulated results are bit-identical *)
  let model =
    match model with
    | M_el (c, d) ->
      M_el
        ( {
            c with
            Ia32el.Config.enable_predecode =
              c.Ia32el.Config.enable_predecode && not no_predecode;
            Ia32el.Config.enable_decode_cache =
              c.Ia32el.Config.enable_decode_cache && not no_decode_cache;
            Ia32el.Config.enable_fusion =
              c.Ia32el.Config.enable_fusion && not no_fusion;
            Ia32el.Config.enable_hot_counters =
              c.Ia32el.Config.enable_hot_counters && not no_hot_counters;
            Ia32el.Config.quantum =
              Option.value quantum ~default:c.Ia32el.Config.quantum;
          },
          d )
    | m -> m
  in
  let inject_seeds =
    match inject with
    | None -> None
    | Some spec -> (
      match Harness.Fuzz.parse_seed_spec spec with
      | Ok [] ->
        Printf.eprintf "--inject: empty seed spec %S\n" spec;
        exit 2
      | Ok seeds -> Some seeds
      | Error msg ->
        Printf.eprintf "--inject: %s\n" msg;
        exit 2)
  in
  match find_workload ~threads name with
  | None ->
    Printf.eprintf "unknown workload %S; try `ia32el-run list'\n" name;
    exit 1
  | Some w -> (
    try
      let labels =
        if obs_requested obs then (w.C.build ~scale ~wide:false).Ia32.Asm.labels
        else []
      in
      match model with
      | (M_native | M_circuitry | M_xeon)
        when lockstep || inject_seeds <> None || obs_requested obs
             || tc.tc_file <> None ->
        Printf.eprintf
          "--lockstep/--inject/--trace/--profile/--metrics/--tcache-file \
           only apply to the translator models\n";
        exit 1
      | M_el (config, desc) when lockstep -> (
        let pers = tcache_setup ?timers:obs.timers tc ~config w ~scale ~stats in
        match inject_seeds with
        | None ->
          run_lockstep_cmd w config desc scale stats obs labels pers None
            max_cycles snap_every capsule sabotage
        | Some seeds ->
          List.iter
            (fun s ->
              run_lockstep_cmd w config desc scale stats obs labels pers
                (Some s) max_cycles snap_every capsule sabotage)
            seeds)
      | M_el (config, desc) when inject_seeds <> None ->
        let pers = tcache_setup ?timers:obs.timers tc ~config w ~scale ~stats in
        List.iter
          (fun s ->
            run_plain_cmd w config desc scale stats obs labels pers (Some s)
              max_cycles snap_every capsule sabotage)
          (Option.get inject_seeds)
      | M_el (config, desc)
        when max_cycles <> None || snap_every <> None || capsule <> None
             || sabotage <> None ->
        let pers = tcache_setup ?timers:obs.timers tc ~config w ~scale ~stats in
        run_plain_cmd w config desc scale stats obs labels pers None
          max_cycles snap_every capsule sabotage
      | M_el (config, desc) ->
        let pattach, pfinish = tcache_setup ?timers:obs.timers tc ~config w ~scale ~stats in
        let r =
          B.run_el ~config
            ~attach:(fun eng ->
              obs_attach obs labels eng;
              pattach eng)
            ~check_exit:false w ~scale
        in
        Printf.printf "%s under %s: %d cycles (guest exit %d)\n" w.C.name desc
          r.B.cycles r.B.exit_code;
        (match r.B.distribution with
        | Some d -> Fmt.pr "%a@." Ia32el.Account.pp_distribution d
        | None -> ());
        (match (stats, r.B.engine) with
        | true, Some eng -> print_stats eng
        | _ -> ());
        (match r.B.engine with
        | Some eng -> obs_finish obs labels eng
        | None -> ());
        pfinish ();
        (* the driver exits with the guest process's exit code *)
        if r.B.exit_code <> 0 then exit (r.B.exit_code land 0xff)
      | M_native ->
        let r = B.run_native w ~scale in
        Printf.printf "%s natively compiled (model): %d cycles\n" w.C.name
          r.B.cycles
      | M_circuitry ->
        let r = B.run_circuitry w ~scale in
        Printf.printf "%s on the IA-32 hardware circuitry (model): %d cycles (%d insns)\n"
          w.C.name r.B.cycles r.B.insns
      | M_xeon ->
        let r = B.run_xeon w ~scale in
        Printf.printf "%s on a Xeon-class OOO IA-32 core (model): %d cycles (%d insns)\n"
          w.C.name r.B.cycles r.B.insns
    with
    | B.Workload_failed msg ->
      Printf.eprintf "workload failed: %s\n" msg;
      exit 1
    | Ia32el.Bt_error.Error e ->
      (* structured translator error — the watchdog lands here; the
         capsule (if requested) was written before the raise *)
      Fmt.epr "%s: %a@." w.C.name Ia32el.Bt_error.pp e;
      (match capsule with
      | Some file -> Printf.printf "crash capsule -> %s\n" file
      | None -> ());
      exit 3)

let list_cmd () =
  Printf.printf "%-16s %s\n" "NAME" "PAPER SCORE (Fig. 5/8, percent of native)";
  List.iter
    (fun w ->
      Printf.printf "%-16s %s\n" w.C.name
        (match w.C.paper_score with
        | Some s -> string_of_int s
        | None -> "-"))
    (workloads ~threads:Workloads.Threads.default_workers)

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let workload_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD"
        ~doc:"Workload name; required unless $(b,--replay) is given.")

let model_arg =
  Arg.(
    value
    & opt model_conv (M_el (Ia32el.Config.default, "two-phase IA-32 EL"))
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "Execution model: $(b,el) (default), $(b,cold-only), \
           $(b,interpret-first), $(b,native), $(b,circuitry), $(b,xeon).")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the full translator statistics.")

let lockstep_arg =
  Arg.(
    value & flag
    & info [ "lockstep" ]
        ~doc:
          "Run the translator against the reference interpreter in \
           lockstep, comparing the full architectural state at every \
           commit point (syscalls, faults, exit). Exits non-zero on the \
           first divergence, with a structured diagnosis.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SEEDS"
        ~doc:
          "Attach the deterministic fault injector: forced speculation \
           misses, spurious SMC invalidations, translation-cache eviction \
           storms and transient system-call failures. $(docv) is a seed, a \
           range or a list ($(b,3), $(b,0-8), $(b,1,4-6)); the workload \
           runs once per seed. Combine with $(b,--lockstep) to verify each \
           run stays semantics-preserving.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record structured engine events (dispatch, translation, heat, \
           speculation misses, faults, SMC, syscalls, degradation) and \
           write the retained window as Chrome trace_event JSON to \
           $(docv), loadable in chrome://tracing or Perfetto.")

let trace_stderr_arg =
  Arg.(
    value & flag
    & info [ "trace-stderr" ]
        ~doc:
          "Pretty-print every trace event to stderr live (replaces the \
           old IA32EL_TRACE environment hook).")

let profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some 10) (some int) None
    & info [ "profile" ] ~docv:"N"
        ~doc:
          "Attribute executed cycles to guest blocks and print the top \
           $(docv) (default 10) hot spots: self cycles split hot/cold, \
           translation overhead, recovery cycles, with symbolic labels \
           from the workload's assembler label table.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the full metrics snapshot (cycle distribution, counters, \
           machine/tcache/dcache/OS statistics, profile summary when \
           $(b,--profile) is active, histogram/sampler sections when \
           $(b,--sample) is active, host phase timers when \
           $(b,--host-timers) is active) as JSON to $(docv), schema \
           $(b,ia32el-metrics/2). Render or diff it with \
           $(b,ia32el-report).")

let sample_arg =
  Arg.(
    value
    & opt ~vopt:(Some 4096) (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:
          "Attach the virtual-cycle sampling profiler: every $(docv) \
           (default 4096) simulated guest cycles, record thread, EIP, \
           owning block, translation phase and degradation state at the \
           next commit point. Sampling is driven by the deterministic \
           virtual clock, so its output is byte-identical across runs — \
           and attaching it never changes observables, cycle counts \
           included. Also attaches the latency histograms (syscall, futex \
           wait, trace length, tcache probe depth, translation cost, \
           snapshot cost) exported in the metrics JSON.")

let flame_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame" ] ~docv:"FILE"
        ~doc:
          "Write the sampler's collapsed-stack (\"folded\") output to \
           $(docv) — feed it to flamegraph.pl or load it in speedscope. \
           Implies $(b,--sample) at the default interval when $(b,--sample) \
           is not given.")

let host_timers_arg =
  Arg.(
    value & flag
    & info [ "host-timers" ]
        ~doc:
          "Measure host-side wall time per engine phase (translate, \
           execute, persistent-cache I/O, snapshot), print the totals and \
           mirror them into the metrics JSON. Informational: wall times \
           are host-dependent, unlike every simulated counter.")

let no_predecode_arg =
  Arg.(
    value & flag
    & info [ "no-predecode" ]
        ~doc:
          "Run translated code through the interpretive machine loop \
           instead of the pre-decoded direct-threaded core. Purely a \
           host-speed switch: simulated cycles and statistics are \
           bit-identical either way (escape hatch / A-B check).")

let no_decode_cache_arg =
  Arg.(
    value & flag
    & info [ "no-decode-cache" ]
        ~doc:
          "Disable the reference interpreter's decoded-instruction cache \
           (every step re-decodes from guest bytes). Purely a host-speed \
           switch: results are bit-identical either way.")

let no_fusion_arg =
  Arg.(
    value & flag
    & info [ "no-fusion" ]
        ~doc:
          "Disable macro-op fusion in the pre-decoded machine core \
           (every uop dispatches individually). Purely a host-speed \
           switch: simulated cycles and statistics are bit-identical \
           either way (escape hatch / A-B check).")

let no_hot_counters_arg =
  Arg.(
    value & flag
    & info [ "no-hot-counters" ]
        ~doc:
          "Profile cold blocks with the original per-block stub \
           instrumentation instead of hash-indexed hot/edge counter \
           pseudo-ops. A $(i,policy) switch: virtual cycles legitimately \
           differ between the two settings, and warm caches / capsules \
           recorded under one refuse to load under the other.")

let threads_arg =
  Arg.(
    value
    & opt int Workloads.Threads.default_workers
    & info [ "threads" ] ~docv:"N"
        ~doc:
          "Worker-thread count for the multithreaded workloads \
           ($(b,threads-pc), $(b,threads-ptask)); clamped to 1-8. \
           Single-threaded workloads ignore it.")

let quantum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quantum" ] ~docv:"CYCLES"
        ~doc:
          "Scheduler quantum in simulated cycles for multithreaded guests \
           (default 20000). A thread is preempted at its first system-call \
           commit point after running $(docv) cycles; $(docv) <= 0 disables \
           preemption (threads switch only on blocking calls and yields). \
           Scheduling is deterministic for any value.")

let max_cycles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:
          "Runaway-guest watchdog: abort with a structured error \
           (component $(b,watchdog), exit 3) once the virtual clock \
           passes $(docv) cycles — caught even inside fully chained \
           translated loops that never re-enter the dispatcher. Combine \
           with $(b,--capsule) to capture the aborted run.")

let snapshot_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Take a copy-on-write barrier snapshot at every $(docv)-th \
           system-call commit point. Each snapshot is a time-travel \
           anchor: its epoch id and trace-event index are recorded in \
           the trace ($(b,--trace)) and in any crash capsule \
           ($(b,--capsule)), and execution after the snapshot is \
           bit-identical to a revert-and-rerun from it.")

let capsule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "capsule" ] ~docv:"FILE"
        ~doc:
          "On failure — lockstep divergence, unhandled fault, watchdog \
           expiry or any structured translator error — write a \
           self-contained crash capsule to $(docv): initial guest image \
           and state, run parameters, and the commit log (event, EIP, \
           thread, virtual clock per commit point). Replay it with \
           $(b,--replay).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay the crash capsule in $(docv) from the start under its \
           recorded parameters, verifying every commit point against the \
           recorded log. Exits 0 when the failure reproduces \
           bit-identically, 1 otherwise. The $(i,WORKLOAD) argument and \
           the other run flags are ignored.")

let sabotage_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sabotage" ] ~docv:"SPEC"
        ~doc:
          "Lockstep-oracle self-test: at the $(i,DISPATCH)-th slow-path \
           dispatch, silently corrupt the machine's canonical copy of \
           guest register $(i,REG) to $(i,VALUE) \
           ($(docv) = $(i,DISPATCH):$(i,REG):$(i,VALUE), e.g. \
           $(b,10:esi:0xBEEF)). With $(b,--lockstep) the corruption must \
           be diagnosed at the next commit point; with $(b,--capsule) \
           the spec is recorded so $(b,--replay) reproduces the \
           divergence deterministically.")

let tcache_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcache-file" ] ~docv:"FILE"
        ~doc:
          "Persistent translation cache: load verified translations from \
           $(docv) before the run (warm start) and save the run's \
           translations back atomically afterwards. The file is keyed by \
           guest-image hash, configuration fingerprint and format version; \
           stale, truncated or corrupt content is dropped with a \
           diagnostic and the affected blocks simply retranslate — a \
           damaged cache can slow a run, never change it. Warm runs are \
           bit-identical (cycle counts included) to cold ones.")

let tcache_readonly_arg =
  Arg.(
    value & flag
    & info [ "tcache-readonly" ]
        ~doc:
          "Use the persistent translation cache read-only: consume \
           recorded translations but record nothing and never write the \
           file back.")

let no_tcache_verify_arg =
  Arg.(
    value & flag
    & info [ "no-tcache-verify" ]
        ~doc:
          "Skip the semantic per-entry validations (source-byte span, \
           TOS/flag, hot-profile seeds) when installing from the \
           persistent translation cache. Structural checks (checksums, \
           arena pins, branch-target bounds) still run. Only safe when \
           the cache is known to match this exact run.")

let run_t =
  Term.(
    const run_cmd $ workload_arg $ model_arg $ scale_arg $ stats_arg
    $ lockstep_arg $ inject_arg $ trace_arg $ trace_stderr_arg $ profile_arg
    $ metrics_arg $ sample_arg $ flame_arg $ host_timers_arg
    $ no_predecode_arg $ no_decode_cache_arg $ no_fusion_arg
    $ no_hot_counters_arg $ threads_arg
    $ quantum_arg $ max_cycles_arg $ snapshot_every_arg $ capsule_arg
    $ replay_arg $ sabotage_arg $ tcache_file_arg $ tcache_readonly_arg
    $ no_tcache_verify_arg)

let run_info =
  Cmd.info "run" ~doc:"Run one workload under a chosen execution model."

let list_t = Term.(const list_cmd $ const ())
let list_info = Cmd.info "list" ~doc:"List the bundled workloads."

let main =
  Cmd.group
    (Cmd.info "ia32el-run" ~version:"1.0.0"
       ~doc:"Run IA-32 programs through the IA-32 Execution Layer simulator.")
    [ Cmd.v run_info run_t; Cmd.v list_info list_t ]

let () = exit (Cmd.eval main)
