(* ia32el-serve: run a batch of guest requests through the serving pool.

   Requests come from --requests N (N copies of --payload) or --jobs FILE
   (one payload per line). Each request runs in its own
   Engine/Vos/Memory instance on a worker (forked process by default,
   inline or OCaml-5 domains by flag), under an optional per-request
   virtual-cycle budget, with bounded-queue admission control. With
   --tcache-file the AOT store is shared read-only across all workers —
   no worker retranslates warm code (assert with --require-warm).

     ia32el-compile serve-echo -o serve.tc --train --train-payload "$REQ"
     ia32el-serve --workers 4 --tcache-file serve.tc --requests 32 \
                  --payload "$REQ" --require-warm --out rollup.json

   Exit codes: 0 served; 1 bad usage; 2 a served guest failed (non-zero
   exit or fault) unless --allow-failures; 4 --require-warm violated;
   5 --check-standalone mismatch. Admission rejections (possible only
   with --reject) and budget exhaustions are reported in the roll-up,
   not exit codes. *)

module C = Workloads.Common

let workloads ~threads : C.t list =
  Workloads.Spec_int.all @ Workloads.Spec_fp.all
  @ [
      Workloads.Sysmark.office;
      Workloads.Sysmark.misalign_stress;
      Workloads.Serve_echo.workload;
    ]
  @ Workloads.Threads.all ~workers:threads

let read_jobs_file path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let serve_cmd workload_name scale workers queue backend_name_arg tcache_file
    tcache_readonly max_cycles requests payload jobs_file reject require_warm
    check_standalone allow_failures out no_predecode no_decode_cache =
  let config =
    {
      Ia32el.Config.default with
      Ia32el.Config.enable_predecode =
        Ia32el.Config.default.Ia32el.Config.enable_predecode
        && not no_predecode;
      Ia32el.Config.enable_decode_cache =
        Ia32el.Config.default.Ia32el.Config.enable_decode_cache
        && not no_decode_cache;
    }
  in
  let backend =
    match backend_name_arg with
    | "fork" | "forked" -> Serve.Forked
    | "inline" -> Serve.Inline
    | "domains" -> Serve.Domains
    | s ->
      Printf.eprintf "unknown backend %S (fork|inline|domains)\n" s;
      exit 1
  in
  let workload =
    match
      List.find_opt
        (fun w -> w.C.name = workload_name)
        (workloads ~threads:Workloads.Threads.default_workers)
    with
    | Some w -> w
    | None ->
      Printf.eprintf "unknown workload %S; try `ia32el-run list'\n"
        workload_name;
      exit 1
  in
  let payloads =
    match jobs_file with
    | Some path -> read_jobs_file path
    | None -> List.init requests (fun _ -> payload)
  in
  if payloads = [] then begin
    Printf.eprintf "no requests (use --requests or --jobs)\n";
    exit 1
  end;
  let p =
    Serve.pool ~backend ~workers ~queue ~config ~scale ~workload ?tcache:tcache_file
      ~tcache_readonly ()
  in
  let jobs =
    List.map (fun payload -> { Serve.payload; max_cycles }) payloads
  in
  let batch = Serve.run_batch ~drain_between:(not reject) p jobs in
  let rollup = Serve.rollup batch in
  (match out with
  | Some path ->
    let oc = open_out path in
    Obs.Metrics.write rollup oc;
    close_out oc
  | None -> print_string (Obs.Metrics.to_string rollup));
  let served =
    List.filter_map (fun r -> r.Serve.result) batch.Serve.responses
  in
  List.iter
    (fun (r : Serve.response) ->
      match r.Serve.rejected with
      | Some e -> Fmt.epr "rejected: %a@." Ia32el.Bt_error.pp e
      | None -> ())
    batch.Serve.responses;
  (* --require-warm: every request must have installed all translations
     from the shared store *)
  if require_warm then begin
    if tcache_file = None then begin
      Printf.eprintf "--require-warm needs --tcache-file\n";
      exit 1
    end;
    let misses =
      List.fold_left (fun a (r : Serve.result) -> a + r.Serve.r_tc_misses) 0 served
    in
    let hits =
      List.fold_left (fun a (r : Serve.result) -> a + r.Serve.r_tc_hits) 0 served
    in
    if misses > 0 || hits = 0 then begin
      Printf.eprintf
        "require-warm violated: %d live translations, %d AOT installs\n"
        misses hits;
      exit 4
    end
  end;
  (* --check-standalone: re-run the first served request alone in this
     process and diff every observable against the served result *)
  if check_standalone then begin
    match
      List.find_opt
        (fun (r : Serve.response) -> r.Serve.result <> None)
        batch.Serve.responses
    with
    | None -> ()
    | Some r ->
      let res = Option.get r.Serve.result in
      let image = workload.C.build ~scale ~wide:false in
      let inst = Ia32el.Instance.create ~config image in
      (* find that request's payload back by position *)
      let idx =
        let rec go i = function
          | [] -> 0
          | (x : Serve.response) :: tl -> if x == r then i else go (i + 1) tl
        in
        go 0 batch.Serve.responses
      in
      let req = List.nth payloads idx in
      let sr = Ia32el.Instance.run ?max_cycles ~request:req inst in
      let sm = Obs.Metrics.to_string (Ia32el.Instance.metrics inst) in
      let mism what = Printf.eprintf "check-standalone: %s differs\n" what in
      let bad = ref false in
      if sm <> res.Serve.r_metrics then (mism "metrics JSON"; bad := true);
      if sr.Ia32el.Instance.output <> res.Serve.r_output then
        (mism "guest output"; bad := true);
      if sr.Ia32el.Instance.response <> res.Serve.r_response then
        (mism "response bytes"; bad := true);
      if
        Ia32el.Instance.stop_to_string sr.Ia32el.Instance.stop
        <> res.Serve.r_stop
      then (mism "stop reason"; bad := true);
      if !bad then exit 5;
      Printf.eprintf
        "check-standalone: served run bit-identical to standalone\n"
  end;
  let failed =
    List.filter
      (fun (r : Serve.result) ->
        r.Serve.r_exit <> Some 0 && r.Serve.r_stop <> "budget_exhausted")
      served
  in
  if failed <> [] && not allow_failures then begin
    List.iter
      (fun (r : Serve.result) ->
        Printf.eprintf "guest failed: %s (worker %d)\n" r.Serve.r_stop
          r.Serve.r_worker)
      failed;
    exit 2
  end

open Cmdliner

let workload_arg =
  Arg.(
    value & opt string "serve-echo"
    & info [ "workload" ] ~docv:"NAME" ~doc:"Guest workload to serve.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker count.")

let queue_arg =
  Arg.(
    value & opt int 8
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission queue depth; capacity = workers + queue.")

let backend_arg =
  Arg.(
    value & opt string "fork"
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Worker backend: $(b,fork) (worker processes), $(b,inline) \
           (synchronous, for testing), or $(b,domains) (OCaml 5 domains).")

let tcache_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcache-file" ] ~docv:"FILE"
        ~doc:
          "AOT translation cache shared by all workers (see \
           `ia32el-compile').")

let tcache_readonly_arg =
  Arg.(
    value & opt bool true
    & info [ "tcache-readonly" ] ~docv:"BOOL"
        ~doc:
          "Attach the shared tcache read-only (default true; forked \
           workers cannot usefully record anyway).")

let max_cycles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:
          "Per-request virtual-cycle budget; a request past it stops \
           with budget_exhausted (reported in the roll-up).")

let requests_arg =
  Arg.(
    value & opt int 8
    & info [ "n"; "requests" ] ~docv:"N"
        ~doc:"Number of requests (copies of --payload).")

let payload_arg =
  Arg.(
    value
    & opt string "GET /index.html HTTP/1.0\r\nHost: ia32el\r\n\r\n"
    & info [ "payload" ] ~docv:"STR"
        ~doc:"Request payload bound on the Vos channel.")

let jobs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jobs" ] ~docv:"FILE"
        ~doc:"Job spec: one request payload per line (overrides \
              --requests/--payload).")

let reject_arg =
  Arg.(
    value & flag
    & info [ "reject" ]
        ~doc:
          "Open admission: reject requests that find the pool at \
           capacity instead of applying backpressure.")

let require_warm_arg =
  Arg.(
    value & flag
    & info [ "require-warm" ]
        ~doc:
          "Fail (exit 4) unless every translation of every request was \
           installed from the shared tcache — zero warm-code \
           retranslation.")

let check_standalone_arg =
  Arg.(
    value & flag
    & info [ "check-standalone" ]
        ~doc:
          "Re-run one served request standalone and fail (exit 5) \
           unless every observable — metrics JSON included — is \
           bit-identical.")

let allow_failures_arg =
  Arg.(
    value & flag
    & info [ "allow-failures" ]
        ~doc:"Do not exit 2 when served guests fail.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the roll-up JSON here instead of stdout.")

let no_predecode_arg =
  Arg.(
    value & flag
    & info [ "no-predecode" ] ~doc:"Disable the pre-decoded fast path.")

let no_decode_cache_arg =
  Arg.(
    value & flag
    & info [ "no-decode-cache" ]
        ~doc:"Disable the reference interpreter's decode cache.")

let main =
  Cmd.v
    (Cmd.info "ia32el-serve" ~version:"1.0.0"
       ~doc:
         "Serve a batch of guest requests on a worker pool with a shared \
          read-only AOT translation cache.")
    Term.(
      const serve_cmd $ workload_arg $ scale_arg $ workers_arg $ queue_arg
      $ backend_arg $ tcache_file_arg $ tcache_readonly_arg $ max_cycles_arg
      $ requests_arg $ payload_arg $ jobs_arg $ reject_arg $ require_warm_arg
      $ check_standalone_arg $ allow_failures_arg $ out_arg $ no_predecode_arg
      $ no_decode_cache_arg)

let () = exit (Cmd.eval main)
