(* ia32el-compile: ahead-of-time translation into a persistent cache.

   Sweeps every statically reachable basic block of a workload's guest
   image through the cold translator and records the results in a
   translation-cache file that `ia32el-run --tcache-file` warm-starts
   from. With --train the workload is additionally executed once against
   the same store, which records the hot-phase traces and the real
   translation-request order on top of the static sweep.

     ia32el-compile gzip --tcache-file gzip.tc
     ia32el-compile gzip --tcache-file gzip.tc --train

   The sweep engine is a translation vehicle only — its machine never
   runs, so AOT compilation cannot perturb anything observable. *)

module B = Workloads.Baselines
module C = Workloads.Common

let workloads ~threads : C.t list =
  Workloads.Spec_int.all @ Workloads.Spec_fp.all
  @ [
      Workloads.Sysmark.office;
      Workloads.Sysmark.misalign_stress;
      Workloads.Serve_echo.workload;
    ]
  @ Workloads.Threads.all ~workers:threads

let find_workload ~threads name =
  List.find_opt (fun w -> w.C.name = name) (workloads ~threads)

let print_diags diags =
  List.iter (fun d -> Fmt.epr "tcache: %a@." Ia32el.Bt_error.pp d) diags

let compile_cmd name scale tcache_file train train_payload no_predecode
    no_decode_cache threads =
  let config =
    {
      Ia32el.Config.default with
      Ia32el.Config.enable_predecode =
        Ia32el.Config.default.Ia32el.Config.enable_predecode
        && not no_predecode;
      Ia32el.Config.enable_decode_cache =
        Ia32el.Config.default.Ia32el.Config.enable_decode_cache
        && not no_decode_cache;
    }
  in
  match find_workload ~threads name with
  | None ->
    Printf.eprintf "unknown workload %S; try `ia32el-run list'\n" name;
    exit 1
  | Some w -> (
    try
      let image = w.C.build ~scale ~wide:false in
      let image_hash = Persist.image_hash image in
      let config_fp = Persist.config_fingerprint config in
      let store, diags = Persist.load ~path:tcache_file ~image_hash ~config_fp in
      print_diags diags;
      (* phase 1: static sweep over everything reachable from the entry
         point and the label table, within the code segment *)
      let mem = Ia32.Memory.create () in
      let _st = Ia32.Asm.load image mem in
      let eng =
        Ia32el.Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem
      in
      let se = Persist.attach store eng in
      let roots =
        image.Ia32.Asm.entry :: List.map snd image.Ia32.Asm.labels
      in
      let lo = image.Ia32.Asm.code_base in
      let hi = lo + String.length image.Ia32.Asm.code in
      let n = Persist.sweep se ~roots ~lo ~hi in
      Printf.printf "%s: %d cold blocks translated ahead of time\n" w.C.name n;
      (* phase 2: optional training run pre-heats the hot traces *)
      if train then begin
        let sref = ref None in
        let r =
          B.run_el ~config
            ~attach:(fun e ->
              (* server-style workloads train against the same request
                 payload the serving pool will bind, so the recorded
                 translation order matches what workers replay *)
              (match train_payload with
              | Some payload -> Btlib.Vos.bind_request e.Ia32el.Engine.vos payload
              | None -> ());
              sref := Some (Persist.attach store e))
            ~check_exit:false w ~scale
        in
        Printf.printf "train: guest exit %d, %d cycles\n" r.B.exit_code
          r.B.cycles;
        match !sref with
        | Some tse -> Fmt.pr "%a@." Persist.pp_stats (Persist.stats tse)
        | None -> ()
      end;
      let ds = Persist.save store ~path:tcache_file in
      print_diags ds;
      if ds <> [] then exit 1;
      Printf.printf "tcache: %d entries -> %s\n" (Persist.entry_count store)
        tcache_file
    with
    | B.Workload_failed msg ->
      Printf.eprintf "workload failed: %s\n" msg;
      exit 1
    | Ia32el.Bt_error.Error e ->
      Fmt.epr "%s: %a@." w.C.name Ia32el.Bt_error.pp e;
      exit 3)

open Cmdliner

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload whose image to compile.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let tcache_file_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "tcache-file" ] ~docv:"FILE"
        ~doc:
          "Translation-cache file to write (extending it if it already \
           exists and matches this image and configuration).")

let train_arg =
  Arg.(
    value & flag
    & info [ "train" ]
        ~doc:
          "After the static sweep, execute the workload once against the \
           same store: records the hot-phase traces and the real \
           translation-request order, so a subsequent warm run starts \
           fully pre-heated.")

let train_payload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "train-payload" ] ~docv:"STR"
        ~doc:
          "Bind $(docv) on the Vos request channel during the training \
           run — required to train server-style workloads (serve-echo) \
           for `ia32el-serve', so the recorded translation-request order \
           matches what same-payload served requests replay.")

let no_predecode_arg =
  Arg.(
    value & flag
    & info [ "no-predecode" ]
        ~doc:
          "Compile for the interpretive machine loop instead of the \
           pre-decoded core (must match the run's setting — the \
           configuration fingerprint enforces this).")

let no_decode_cache_arg =
  Arg.(
    value & flag
    & info [ "no-decode-cache" ]
        ~doc:
          "Compile for a run without the reference interpreter's \
           decoded-instruction cache (fingerprint-enforced, like \
           $(b,--no-predecode)).")

let threads_arg =
  Arg.(
    value
    & opt int Workloads.Threads.default_workers
    & info [ "threads" ] ~docv:"N"
        ~doc:"Worker-thread count for the multithreaded workloads.")

let main =
  Cmd.v
    (Cmd.info "ia32el-compile" ~version:"1.0.0"
       ~doc:
         "Ahead-of-time translate a workload image into a persistent \
          translation cache.")
    Term.(
      const compile_cmd $ workload_arg $ scale_arg $ tcache_file_arg
      $ train_arg $ train_payload_arg $ no_predecode_arg $ no_decode_cache_arg
      $ threads_arg)

let () = exit (Cmd.eval main)
