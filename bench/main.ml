(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md §3 and EXPERIMENTS.md) and, with
   [--bechamel], runs Bechamel micro-benchmarks of the translator itself.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe fig5            one experiment
     bench/main.exe --scale 2 all   bigger workloads
     bench/main.exe --bechamel      Bechamel micro-benchmarks
     bench/main.exe --json          write BENCH_results.json (no text report)
*)

module B = Workloads.Baselines
module F = Harness.Figures

let line () = Printf.printf "%s\n" (String.make 72 '-')

let header title paper =
  line ();
  Printf.printf "%s\n" title;
  Printf.printf "(paper: %s)\n" paper;
  line ()

(* ---------------- Table 1 ---------------- *)

(* Table 1 is about translation correctness: the push-eax sequence must
   keep ESP intact when the store faults. *)
let table1 () =
  header "Table 1: precise state for `push eax` with a faulting store"
    "correct code updates ESP only after the store; the incorrect\n\
     ordering would expose a decremented ESP to the handler";
  let open Ia32.Insn in
  let code =
    [
      Ia32.Asm.label "start";
      Ia32.Asm.i (Mov (S32, R Esp, I 0x30000000)); (* unmapped page *)
      Ia32.Asm.i (Mov (S32, R Eax, I 0x1234));
      Ia32.Asm.label "push";
      Ia32.Asm.i (Push (R Eax));
    ]
  in
  let image = Ia32.Asm.build ~code ~data:[] () in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let eng =
    Ia32el.Engine.create ~config:Ia32el.Config.cold_only
      ~btlib:(module Btlib.Linuxsim) mem
  in
  (match Ia32el.Engine.run ~fuel:100_000 eng st with
  | Ia32el.Engine.Unhandled_fault (Ia32.Fault.Page_fault (a, Ia32.Fault.Write), fst)
    ->
    Printf.printf "fault     : #PF write at 0x%08x\n" a;
    Printf.printf "EIP       : 0x%08x (%s)\n" fst.Ia32.State.eip
      (if fst.Ia32.State.eip = image.Ia32.Asm.lookup "push" then
         "the faulting push — precise" else "IMPRECISE");
    Printf.printf "ESP       : 0x%08x (%s)\n"
      (Ia32.State.get32 fst Esp)
      (if Ia32.State.get32 fst Esp = 0x30000000 then
         "pre-push value — the CORRECT translation of Table 1"
       else "decremented — the INCORRECT translation of Table 1");
    Printf.printf "EAX       : 0x%08x\n" (Ia32.State.get32 fst Eax)
  | _ -> Printf.printf "unexpected outcome\n");
  Printf.printf "\n"

(* ---------------- Figure 5 ---------------- *)

let fig5 ~scale () =
  header "Figure 5: SPEC CPU2000 INT, IA-32 EL relative to native Itanium"
    "gzip 86, vpr 69, gcc 51, mcf 104, crafty 39, parser 81, eon 41,\n\
     perlbmk 64, gap 62, vortex 60, bzip2 74, twolf 76 — GeoMean 65";
  Printf.printf "%-10s %12s %12s %9s %9s\n" "benchmark" "EL cycles"
    "native cyc" "score" "paper";
  let rows, geomean = F.fig5 ~scale () in
  List.iter
    (fun (r : F.fig5_row) ->
      Printf.printf "%-10s %12d %12d %8.0f%% %8s\n" r.F.name r.F.el_cycles
        r.F.native_cycles r.F.score
        (match r.F.paper with Some p -> Printf.sprintf "%d%%" p | None -> "-"))
    rows;
  Printf.printf "%-10s %12s %12s %8.0f%% %8s\n" "GeoMean" "" "" geomean "65%";
  Printf.printf "\n"

(* ---------------- Figures 6 and 7 ---------------- *)

let pp_dist (h, c, o, x, i) =
  Printf.printf "  hot      %5.1f%%\n  cold     %5.1f%%\n  overhead %5.1f%%\n" h c o;
  Printf.printf "  other    %5.1f%%\n  idle     %5.1f%%\n" x i

let fig6 ~scale () =
  header "Figure 6: execution-time distribution, translated SPEC CPU2000"
    "hot 95%, cold 3%, overhead 1%, other 1%";
  pp_dist (F.fig6 ~scale ());
  Printf.printf "\n"

let fig7 ~scale () =
  header "Figure 7: execution-time distribution, Sysmark-like workload"
    "hot 46%, cold 5%, overhead 12%, other 22%, idle 15%";
  pp_dist (F.fig7 ~scale ());
  Printf.printf "\n"

(* ---------------- Figure 8 ---------------- *)

let fig8 ~scale () =
  header "Figure 8: IA-32 EL on 1.5GHz Itanium 2 vs 1.6GHz Xeon (wall clock)"
    "CPU2000 INT 105.0%, CPU2000 FP 132.6%, Sysmark 2002 98.9%";
  Printf.printf "%-14s %10s %10s\n" "suite" "measured" "paper";
  List.iter
    (fun (r : F.fig8_row) ->
      Printf.printf "%-14s %9.1f%% %9.1f%%\n" r.F.suite r.F.ratio r.F.paper8)
    (F.fig8 ~scale ());
  Printf.printf "\n"

(* ---------------- §5 misalignment anecdote ---------------- *)

let misalign ~scale () =
  header "§5 anecdote: misalignment detection and avoidance"
    "one workload went from 1236 s to 133 s (~9.3x) with the machinery";
  let off, on_ = F.misalign_anecdote ~scale () in
  Printf.printf "machinery off : %10d cycles\n" off;
  Printf.printf "machinery on  : %10d cycles\n" on_;
  Printf.printf "speedup       : %9.1fx\n\n"
    (Float.of_int off /. Float.of_int (max 1 on_))

(* ---------------- §2/§5 scalar statistics ---------------- *)

let stats ~scale () =
  header "Scalar statistics (paper §2 and §5)"
    "cold blocks 4-5 insns; hot ~20; 5-10% of blocks heat; hot translation\n\
     ~20x cold per insn; ~1 commit point per 10 native insns; 95% of time\n\
     in hot code on SPEC; speculation checks succeed 99-100%";
  let s = F.stats ~scale () in
  Printf.printf "IA-32 insns per cold block      : %5.1f   (paper 4-5)\n"
    s.F.cold_block_insns;
  Printf.printf "IA-32 insns per hot block       : %5.1f   (paper ~20)\n"
    s.F.hot_block_insns;
  Printf.printf "cold blocks that heat           : %5.1f%%  (paper 5-10%%)\n"
    s.F.pct_blocks_heated;
  Printf.printf "hot/cold translation cost ratio : %5.1fx  (paper ~20x)\n"
    s.F.hot_cold_overhead_ratio;
  Printf.printf "native insns per commit point   : %5.1f   (paper ~10)\n"
    s.F.native_insns_per_commit;
  Printf.printf "time in hot code (SPEC)         : %5.1f%%  (paper ~95%%)\n"
    s.F.hot_time_pct;
  Printf.printf "speculation checks executed     : %d\n" s.F.spec_checks;
  Printf.printf "speculation misses              : %d\n" s.F.spec_misses;
  Printf.printf "speculation success             : %5.2f%% (paper 99-100%%)\n\n"
    s.F.spec_success

(* ---------------- hardware-circuitry comparison ---------------- *)

let circuitry ~scale () =
  header "IA-32 EL vs the IA-32 hardware circuitry on Itanium"
    "\"IA-32 EL ... can accelerate IA-32 application performance compared\n\
     to the existing hardware solution\" (paper §1)";
  Printf.printf "%-10s %12s %12s %9s\n" "benchmark" "EL cycles" "circuitry"
    "speedup";
  let speedups =
    List.map
      (fun w ->
        let el = B.run_el w ~scale in
        let hw = B.run_circuitry w ~scale in
        let sp = Float.of_int hw.B.cycles /. Float.of_int el.B.cycles in
        Printf.printf "%-10s %12d %12d %8.2fx\n" w.Workloads.Common.name
          el.B.cycles hw.B.cycles sp;
        sp)
      Workloads.Spec_int.all
  in
  let geo =
    Float.exp
      (List.fold_left (fun a x -> a +. Float.log x) 0.0 speedups
      /. Float.of_int (List.length speedups))
  in
  Printf.printf "%-10s %12s %12s %8.2fx\n\n" "GeoMean" "" "" geo

(* ---------------- ablations ---------------- *)

let ablations ~scale () =
  header "Ablations of the paper's design choices"
    "two-phase vs cold-only; instrumented-cold vs interpret-first first\n\
     phase; scheduling; EFLAGS elimination; misalignment machinery;\n\
     FP/MMX/SSE speculation";
  let subset =
    [
      Workloads.Spec_int.gzip; Workloads.Spec_int.vpr; Workloads.Spec_int.mcf;
      Workloads.Spec_int.crafty; Workloads.Spec_int.twolf;
      Workloads.Spec_fp.swim; Workloads.Spec_fp.equake;
    ]
  in
  let total config =
    List.fold_left
      (fun acc w -> acc + (B.run_el ~config w ~scale).B.cycles)
      0 subset
  in
  let base = total Ia32el.Config.default in
  let show name config =
    let t = total config in
    Printf.printf "%-34s %12d cycles  %+6.1f%%\n" name t
      (100.0 *. Float.of_int (t - base) /. Float.of_int base)
  in
  Printf.printf "%-34s %12d cycles  (baseline)\n" "full IA-32 EL" base;
  show "cold-only (no second phase)" Ia32el.Config.cold_only;
  show "interpret-first first phase"
    { Ia32el.Config.default with Ia32el.Config.first_phase = Ia32el.Config.Interpret_first };
  show "no hot-code scheduling"
    { Ia32el.Config.default with Ia32el.Config.enable_scheduling = false };
  show "no control-speculative loads"
    { Ia32el.Config.default with Ia32el.Config.enable_control_spec = false };
  show "no EFLAGS elimination"
    { Ia32el.Config.default with Ia32el.Config.enable_flag_elim = false };
  show "no address CSE"
    { Ia32el.Config.default with Ia32el.Config.enable_cse = false };
  show "no misalignment avoidance"
    { Ia32el.Config.default with Ia32el.Config.misalign_avoidance = false };
  show "no if-conversion"
    { Ia32el.Config.default with Ia32el.Config.enable_predication = false };
  show "no loop unrolling"
    { Ia32el.Config.default with Ia32el.Config.enable_unroll = false };
  show "no FP/MMX/SSE speculation checks"
    { Ia32el.Config.default with
      Ia32el.Config.fp_stack_speculation = false;
      mmx_mode_speculation = false;
      sse_format_speculation = false };
  Printf.printf "\n"

(* ---------------- machine-readable report (--json) ---------------- *)

let json_file = "BENCH_results.json"

let json_report ~scale () =
  let open Obs.Metrics in
  let rows, geomean = F.fig5 ~scale () in
  let fig5_json =
    Obj
      [
        ("geomean", Float geomean);
        ( "rows",
          List
            (List.map
               (fun (r : F.fig5_row) ->
                 Obj
                   [
                     ("name", Str r.F.name);
                     ("el_cycles", Int r.F.el_cycles);
                     ("native_cycles", Int r.F.native_cycles);
                     ("score", Float r.F.score);
                     ( "paper",
                       match r.F.paper with Some p -> Int p | None -> Null );
                   ])
               rows) );
      ]
  in
  let dist (h, c, o, x, i) =
    Obj
      [
        ("hot", Float h); ("cold", Float c); ("overhead", Float o);
        ("other", Float x); ("idle", Float i);
      ]
  in
  let fig8_json =
    List
      (List.map
         (fun (r : F.fig8_row) ->
           Obj
             [
               ("suite", Str r.F.suite); ("ratio", Float r.F.ratio);
               ("paper", Float r.F.paper8);
             ])
         (F.fig8 ~scale ()))
  in
  let off, on_ = F.misalign_anecdote ~scale () in
  let s = F.stats ~scale () in
  let stats_json =
    Obj
      [
        ("cold_block_insns", Float s.F.cold_block_insns);
        ("hot_block_insns", Float s.F.hot_block_insns);
        ("pct_blocks_heated", Float s.F.pct_blocks_heated);
        ("hot_cold_overhead_ratio", Float s.F.hot_cold_overhead_ratio);
        ("native_insns_per_commit", Float s.F.native_insns_per_commit);
        ("hot_time_pct", Float s.F.hot_time_pct);
        ("spec_checks", Int s.F.spec_checks);
        ("spec_misses", Int s.F.spec_misses);
        ("spec_success", Float s.F.spec_success);
      ]
  in
  let workload_json w =
    let r = B.run_el w ~scale in
    let fields =
      [ ("cycles", Int r.B.cycles) ]
      @ (match r.B.distribution with
        | Some d ->
          [
            ( "distribution",
              Obj
                [
                  ("hot", Int d.Ia32el.Account.hot);
                  ("cold", Int d.Ia32el.Account.cold);
                  ("overhead", Int d.Ia32el.Account.overhead);
                  ("other", Int d.Ia32el.Account.other);
                  ("idle", Int d.Ia32el.Account.idle);
                  ("total", Int d.Ia32el.Account.total);
                ] );
          ]
        | None -> [])
      @
      match r.B.engine with
      | Some e ->
        [
          ( "counters",
            Obj
              (List.map
                 (fun (k, v) -> (k, Int v))
                 (counters (Ia32el.Engine.metrics e))) );
        ]
      | None -> []
    in
    (w.Workloads.Common.name, Obj fields)
  in
  let report =
    Obj
      [
        ("schema", Str "ia32el-bench/1");
        ("scale", Int scale);
        ("fig5", fig5_json);
        ("fig6", dist (F.fig6 ~scale ()));
        ("fig7", dist (F.fig7 ~scale ()));
        ("fig8", fig8_json);
        ("misalign", Obj [ ("off_cycles", Int off); ("on_cycles", Int on_) ]);
        ("stats", stats_json);
        ( "workloads",
          Obj
            (List.map workload_json
               (Workloads.Spec_int.all
               @ Workloads.Threads.all
                   ~workers:Workloads.Threads.default_workers)) );
      ]
  in
  let oc = open_out json_file in
  output_string oc (json_to_string report);
  close_out oc;
  Printf.printf "wrote %s\n" json_file

(* ---------------- deterministic virtual-cycle suite (virtual) ---------- *)

let virtual_file = "BENCH_virtual.json"

(* The perf-regression gate's artifact: every field is a deterministic
   virtual-cycle counter — a function of guest image and configuration
   only, never of the host — so CI can diff a fresh run against the
   committed baseline at tolerance 0 (`ia32el-report --diff
   --fail-on-regression`). Wall-clock numbers live in BENCH_wallclock.json
   and are deliberately absent here. *)
let virtual_report ~scale ~config () =
  let m = Obs.Metrics.make ~schema:"ia32el-virtual/1" in
  Obs.Metrics.section m "meta" [ ("scale", Obs.Metrics.Int scale) ];
  List.iter
    (fun w ->
      let r = B.run_el ~config w ~scale in
      let i n = Obs.Metrics.Int n in
      let fields =
        [ ("cycles", i r.B.cycles); ("exit_code", i r.B.exit_code) ]
        @ (match r.B.distribution with
          | Some d ->
            [
              ("cycles_hot", i d.Ia32el.Account.hot);
              ("cycles_cold", i d.Ia32el.Account.cold);
              ("cycles_overhead", i d.Ia32el.Account.overhead);
              ("cycles_other", i d.Ia32el.Account.other);
              ("cycles_idle", i d.Ia32el.Account.idle);
            ]
          | None -> [])
        @
        match r.B.engine with
        | Some e ->
          List.map
            (fun (k, v) -> (k, i v))
            (Obs.Metrics.counters (Ia32el.Engine.metrics e))
        | None -> []
      in
      Obs.Metrics.section m w.Workloads.Common.name fields)
    (Workloads.Spec_int.all
    @ Workloads.Threads.all ~workers:Workloads.Threads.default_workers);
  let oc = open_out virtual_file in
  Obs.Metrics.write m oc;
  close_out oc;
  Printf.printf "wrote %s\n" virtual_file

(* ---------------- wall-clock perf harness (perf) ---------------- *)

(* Unlike everything above (which reports *simulated* cycles), this
   measures host wall-clock throughput of the simulator itself: the
   pre-decoded machine core vs the interpretive loop, the reference
   interpreter with and without its decode cache, the lockstep tax and
   the fuzzer's program rate. Numbers are host-dependent by nature; the
   JSON snapshot records them so a regression in either fast path shows
   up as a ratio, not an absolute. *)

let wallclock_file = "BENCH_wallclock.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Repeat [f] (returning a work-unit count) until [min_time] elapsed;
   units per second over the whole set of runs. *)
let rate ~min_time f =
  let units = ref 0.0 and elapsed = ref 0.0 and iters = ref 0 in
  while !elapsed < min_time || !iters < 2 do
    let t, u = wall f in
    elapsed := !elapsed +. t;
    units := !units +. u;
    incr iters
  done;
  !units /. !elapsed

let seconds_per ~min_time f =
  let elapsed = ref 0.0 and iters = ref 0 in
  while !elapsed < min_time || !iters < 2 do
    let t, _ = wall f in
    elapsed := !elapsed +. t;
    incr iters
  done;
  !elapsed /. Float.of_int !iters

(* Simulated machine slots retired per wall second under [config]. *)
let machine_rate ~scale ~min_time config =
  rate ~min_time (fun () ->
      let r = B.run_el ~config Workloads.Spec_int.gzip ~scale in
      match r.B.engine with
      | Some e ->
        Float.of_int
          e.Ia32el.Engine.machine.Ipf.Machine.stats.Ipf.Machine.slots_retired
      | None -> 0.0)

(* Retired IA-32 instructions per wall second on the reference
   interpreter, decode cache on or off. *)
let interp_rate ~scale ~min_time ~cache =
  let w = Workloads.Spec_int.gzip in
  let image = w.Workloads.Common.build ~scale ~wide:false in
  rate ~min_time (fun () ->
      let mem = Ia32.Memory.create () in
      let st = Ia32.Asm.load image mem in
      Ia32.Icache.set_enabled st.Ia32.State.icache cache;
      let vos = Btlib.Vos.create mem in
      let _, insns =
        Ia32el.Refvehicle.run ~btlib:(module Btlib.Linuxsim) vos st
      in
      Float.of_int insns)

let fuzz_rate ~min_time =
  rate ~min_time (fun () ->
      let cfg =
        {
          Harness.Fuzz.default_campaign with
          Harness.Fuzz.seed = 7;
          runs = 10;
          inject_seeds = [];
          shrink_findings = false;
          corpus_dir = None;
          log = ignore;
        }
      in
      Float.of_int (Harness.Fuzz.campaign cfg).Harness.Fuzz.executions)

(* Fork-server inputs per wall second: one persistent session, inputs
   served by snapshot / mutate / run / revert with warm translations.
   Same work unit as [fuzz_rate] (lockstep-checked programs), so the
   ratio against the committed lockstep_programs_per_s baseline is the
   fork-server's acceptance multiple. *)
let forkserver_rate ~min_time =
  let module F = Harness.Fuzz in
  let gen_rng = F.Rng.create 7 in
  let prog = F.generate ~rng:gen_rng ~max_insns:32 7 in
  let srv = F.server_start prog in
  let mrng = F.Rng.create 11 in
  rate ~min_time (fun () ->
      let n = 16 in
      for _ = 1 to n do
        let muts =
          List.init
            (1 + F.Rng.int mrng 48)
            (fun _ -> (F.Rng.int mrng F.mutation_span, F.Rng.int mrng 256))
        in
        ignore (F.server_run srv muts)
      done;
      Float.of_int n)

(* Persistent-cache wall-clock rows: seconds per run cold (no cache),
   warm (every translation installed from a recorded file) and from an
   AOT-compiled file (static sweep + one training run). Also reports the
   simulated-cycle view: the fraction of the run's cold-phase translation
   cycles whose host-side work a warm start eliminates. *)
let persist_rates ~scale ~min_time =
  let w = Workloads.Spec_int.gzip in
  let config = Ia32el.Config.default in
  let image = w.Workloads.Common.build ~scale ~wide:false in
  let image_hash = Persist.image_hash image in
  let config_fp = Persist.config_fingerprint config in
  let record_to path store =
    (try Sys.remove path with Sys_error _ -> ());
    (try Sys.remove (path ^ ".lock") with Sys_error _ -> ());
    match Persist.save store ~path with
    | [] -> ()
    | d :: _ ->
      Printf.eprintf "perf: tcache save failed: %s\n"
        (Ia32el.Bt_error.to_string d);
      exit 1
  in
  (* a warm-start file recorded by one full run *)
  let warm_path = Filename.temp_file "ia32el-bench-warm" ".tc" in
  let store = Persist.create_store ~image_hash ~config_fp in
  ignore
    (B.run_el ~config
       ~attach:(fun e -> ignore (Persist.attach store e))
       w ~scale);
  record_to warm_path store;
  (* an AOT file: static sweep plus one training run, as ia32el-compile
     --train builds *)
  let aot_path = Filename.temp_file "ia32el-bench-aot" ".tc" in
  let aot_store = Persist.create_store ~image_hash ~config_fp in
  (let mem = Ia32.Memory.create () in
   let _st = Ia32.Asm.load image mem in
   let eng =
     Ia32el.Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem
   in
   let se = Persist.attach aot_store eng in
   let lo = image.Ia32.Asm.code_base in
   let hi = lo + String.length image.Ia32.Asm.code in
   ignore
     (Persist.sweep se
        ~roots:(image.Ia32.Asm.entry :: List.map snd image.Ia32.Asm.labels)
        ~lo ~hi));
  ignore
    (B.run_el ~config
       ~attach:(fun e -> ignore (Persist.attach aot_store e))
       w ~scale);
  record_to aot_path aot_store;
  let cold_s = seconds_per ~min_time (fun () -> B.run_el ~config w ~scale) in
  let eliminated_fraction = ref 0.0 in
  let run_from path =
    let st, _ = Persist.load ~path ~image_hash ~config_fp in
    let sref = ref None in
    let r =
      B.run_el ~config
        ~attach:(fun e -> sref := Some (Persist.attach ~readonly:true st e))
        w ~scale
    in
    (match (!sref, r.B.engine) with
    | Some se, Some eng ->
      let s = Persist.stats se in
      let total =
        eng.Ia32el.Engine.acct.Ia32el.Account.cold_insns
        * Ipf.Cost.default.Ipf.Cost.cold_translate_per_insn
      in
      if total > 0 then
        eliminated_fraction :=
          Float.of_int s.Persist.eliminated_cold_cycles /. Float.of_int total
    | _ -> ());
    r
  in
  let warm_s = seconds_per ~min_time (fun () -> run_from warm_path) in
  let aot_s = seconds_per ~min_time (fun () -> run_from aot_path) in
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ warm_path; aot_path ];
  (cold_s, warm_s, aot_s, !eliminated_fraction)

(* Serving-pool wall-clock rows: open-loop load over forked workers
   sharing one read-only AOT tcache (the ia32el-serve configuration).
   The generator's arrival rate is calibrated from a short warm batch to
   ~70% of pool capacity — enough queueing for the tail percentiles to
   mean something without saturating into mass rejection. Every served
   request must install all its translations from the shared store; a
   single live retranslation fails the run. *)
let serve_rates ~min_time =
  let payload = "GET /index.html HTTP/1.0\r\nHost: ia32el\r\n\r\n" in
  let workers = 4 in
  let tc = Filename.temp_file "ia32el-bench-serve" ".tc" in
  (match Serve.compile_tcache ~path:tc ~scale:1 ~payload () with
  | [] -> ()
  | d :: _ ->
    Printf.eprintf "perf: serve tcache save failed: %s\n"
      (Ia32el.Bt_error.to_string d);
    exit 1);
  let p =
    Serve.pool ~backend:Serve.Forked ~workers ~queue:(2 * workers) ~tcache:tc
      ()
  in
  (* calibrate per-request service time under full worker concurrency —
     so the derived rate tracks *effective* pool capacity whatever the
     host core count. The first batch pays one-time costs (page cache,
     COW after fork) and is discarded. *)
  let cal_batch () =
    Serve.run_batch p
      (List.init workers (fun _ -> { Serve.payload; max_cycles = None }))
  in
  ignore (cal_batch ());
  let cal = cal_batch () in
  let cal_served =
    List.filter_map (fun r -> r.Serve.result) cal.Serve.responses
  in
  let svc_s =
    match cal_served with
    | [] -> 0.05
    | l ->
      List.fold_left (fun a r -> a +. r.Serve.r_service_us) 0.0 l
      /. Float.of_int (List.length l) /. 1e6
  in
  let svc_s = if svc_s <= 0.0 then 0.05 else svc_s in
  let rate_hz = 0.7 *. Float.of_int workers /. svc_s in
  let n =
    max 16 (min 256 (int_of_float (rate_hz *. (4.0 *. min_time))))
  in
  let load, responses = Serve.run_open_loop p ~rate_hz ~n ~payload () in
  let served = List.filter_map (fun r -> r.Serve.result) responses in
  let hits =
    List.fold_left (fun a r -> a + r.Serve.r_tc_hits) 0 served
  in
  let misses =
    List.fold_left (fun a r -> a + r.Serve.r_tc_misses) 0 served
  in
  List.iter
    (fun s -> try Sys.remove s with Sys_error _ -> ())
    [ tc; tc ^ ".lock" ];
  if misses > 0 || hits = 0 then begin
    Printf.eprintf
      "perf: serving pool not warm: %d live translations, %d AOT installs\n"
      misses hits;
    exit 1
  end;
  (load, rate_hz, workers, hits)

let perf ~scale ~min_time ~config () =
  header "Wall-clock throughput of the simulator itself"
    "host-dependent; committed snapshot makes fast-path regressions visible\n\
     as ratios (pre-decoded core vs interpretive loop, decode cache on/off)";
  let mach_pre = machine_rate ~scale ~min_time config in
  (* fusion is a pure host-speed switch (virtual cycles are bit-identical
     either way), so the fused-vs-unfused delta is a wall-clock ratio *)
  let mach_unfused =
    machine_rate ~scale ~min_time
      { config with Ia32el.Config.enable_fusion = false }
  in
  let mach_int =
    machine_rate ~scale ~min_time
      { config with Ia32el.Config.enable_predecode = false }
  in
  (* macro-op fusion diagnostics from one representative run (host-side
     counters, outside the metrics JSON by design) *)
  (let r = B.run_el ~config Workloads.Spec_int.gzip ~scale in
   match r.B.engine with
   | Some e ->
     let compiled, hits = Ipf.Exec.fusion_stats e.Ia32el.Engine.exec in
     let names = Ipf.Exec.fuse_class_names in
     Printf.printf "macro-op fusion             : %d pairs lowered; hits %s\n"
       compiled
       (String.concat ", "
          (List.init (Array.length names) (fun i ->
               Printf.sprintf "%s=%d" names.(i) hits.(i))))
   | None -> ());
  let interp_cached = interp_rate ~scale ~min_time ~cache:true in
  let interp_uncached = interp_rate ~scale ~min_time ~cache:false in
  let el_s =
    seconds_per ~min_time (fun () ->
        B.run_el Workloads.Spec_int.gzip ~scale)
  in
  let lock_s =
    seconds_per ~min_time (fun () ->
        Harness.Resilience.run_lockstep Workloads.Spec_int.gzip ~scale)
  in
  let fuzz_ps = fuzz_rate ~min_time in
  let forkserver_ps = forkserver_rate ~min_time in
  let threads_w =
    Workloads.Threads.producer_consumer
      ~workers:Workloads.Threads.default_workers
  in
  let threads_cps =
    rate ~min_time (fun () ->
        let r = B.run_el threads_w ~scale in
        Float.of_int r.B.cycles)
  in
  (* contended futex: every consumer the scheduler allows (8) fighting
     over one 8-slot ring — the futex wait/wake and context-switch hot
     path, measured in simulated guest cycles retired per wall second *)
  let futex_w = Workloads.Threads.producer_consumer ~workers:8 in
  let futex_switches = ref 0 in
  let futex_cps =
    rate ~min_time (fun () ->
        let r = B.run_el futex_w ~scale in
        (match r.B.engine with
        | Some e ->
          futex_switches :=
            e.Ia32el.Engine.vos.Btlib.Vos.context_switches
        | None -> ());
        Float.of_int r.B.cycles)
  in
  let cold_s, warm_s, aot_s, elim_frac = persist_rates ~scale ~min_time in
  let serve_load, serve_rate_hz, serve_workers, serve_hits =
    serve_rates ~min_time
  in
  let mach_speedup = mach_pre /. mach_int in
  let interp_speedup = interp_cached /. interp_uncached in
  let lock_factor = lock_s /. el_s in
  Printf.printf "machine core, pre-decoded   : %8.2f Mslots/s\n"
    (mach_pre /. 1e6);
  Printf.printf "machine core, fusion off    : %8.2f Mslots/s\n"
    (mach_unfused /. 1e6);
  Printf.printf "  fused / unfused           : %8.2fx\n"
    (mach_pre /. mach_unfused);
  Printf.printf "machine core, interpretive  : %8.2f Mslots/s\n"
    (mach_int /. 1e6);
  Printf.printf "  pre-decode speedup        : %8.2fx\n" mach_speedup;
  Printf.printf "interpreter, decode cache   : %8.2f Minsns/s\n"
    (interp_cached /. 1e6);
  Printf.printf "interpreter, re-decoding    : %8.2f Minsns/s\n"
    (interp_uncached /. 1e6);
  Printf.printf "  decode-cache speedup      : %8.2fx\n" interp_speedup;
  Printf.printf "lockstep overhead factor    : %8.2fx (%.3fs vs %.3fs)\n"
    lock_factor lock_s el_s;
  Printf.printf "fuzz lockstep programs      : %8.2f prog/s\n" fuzz_ps;
  Printf.printf "fork-server inputs          : %8.2f prog/s (%.2fx lockstep)\n"
    forkserver_ps
    (forkserver_ps /. fuzz_ps);
  Printf.printf "threaded workload (%s, %d guest threads): %.2f Mcycles/s\n"
    threads_w.Workloads.Common.name
    (Workloads.Threads.default_workers + 1)
    (threads_cps /. 1e6);
  Printf.printf
    "contended futex (%s, 8 workers + producer): %.2f Mcycles/s, %d context \
     switches/run\n"
    futex_w.Workloads.Common.name
    (futex_cps /. 1e6)
    !futex_switches;
  Printf.printf "persistent tcache, cold     : %8.3f s/run\n" cold_s;
  Printf.printf "persistent tcache, warm     : %8.3f s/run (%.2fx cold)\n"
    warm_s (cold_s /. warm_s);
  Printf.printf "persistent tcache, AOT      : %8.3f s/run (%.2fx cold)\n"
    aot_s (cold_s /. aot_s);
  Printf.printf
    "  cold-phase translation cycles eliminated on warm start: %.1f%%\n"
    (100.0 *. elim_frac);
  Printf.printf
    "serving pool (%d forked workers, shared read-only AOT tcache):\n"
    serve_workers;
  Printf.printf
    "  throughput                : %8.2f guests/s (open-loop, offered %.2f/s)\n"
    serve_load.Serve.guests_per_s serve_rate_hz;
  Printf.printf
    "  latency p50/p95/p99       : %.2f / %.2f / %.2f ms (mean %.2f)\n"
    serve_load.Serve.lat_p50_ms serve_load.Serve.lat_p95_ms
    serve_load.Serve.lat_p99_ms serve_load.Serve.lat_mean_ms;
  Printf.printf
    "  served %d of %d offered, %d rejected; %d AOT installs, 0 live \
     translations\n\n"
    serve_load.Serve.served serve_load.Serve.offered
    serve_load.Serve.load_rejected serve_hits;
  let finite x = Float.is_finite x && x > 0.0 in
  if
    not
      (List.for_all finite
         [
           mach_pre; mach_int; interp_cached; interp_uncached; lock_factor;
           fuzz_ps; forkserver_ps; threads_cps; futex_cps; cold_s; warm_s;
           aot_s; serve_load.Serve.guests_per_s; serve_load.Serve.lat_p50_ms;
           serve_load.Serve.lat_p95_ms; serve_load.Serve.lat_p99_ms;
         ])
  then begin
    Printf.eprintf "perf: non-finite or non-positive measurement\n";
    exit 1
  end;
  if elim_frac < 0.8 then begin
    Printf.eprintf
      "perf: warm start eliminated only %.1f%% of cold-phase translation \
       cycles (acceptance floor 80%%)\n"
      (100.0 *. elim_frac);
    exit 1
  end;
  let open Obs.Metrics in
  let report =
    Obj
      [
        ("schema", Str "ia32el-wallclock/4");
        ("scale", Int scale);
        ("host_dependent", Str "true");
        (* measured once when the current fast-path generation landed
           (hot counters + macro-op fusion), same host and methodology,
           for the before/after record; current-tree A/B ratios above
           are the live regression guard *)
        ( "pre_change_baseline",
          Obj
            [
              ("rev", Str "8bf175f");
              ("machine_slots_per_s", Float 14614220.02588027);
              ("interp_insns_per_s", Float 13503352.714911152);
              (* one-program-per-session fuzz rate measured before the
                 fork-server landed: the denominator of the >= 3x
                 fork-server acceptance multiple *)
              ("lockstep_programs_per_s", Float 131.35338357638003);
            ] );
        ( "machine",
          Obj
            [
              ("predecode_slots_per_s", Float mach_pre);
              ("predecode_unfused_slots_per_s", Float mach_unfused);
              ("fused_over_unfused", Float (mach_pre /. mach_unfused));
              ("interp_loop_slots_per_s", Float mach_int);
              ("speedup", Float mach_speedup);
            ] );
        ( "interpreter",
          Obj
            [
              ("cached_insns_per_s", Float interp_cached);
              ("uncached_insns_per_s", Float interp_uncached);
              ("speedup", Float interp_speedup);
            ] );
        ( "lockstep",
          Obj
            [
              ("plain_s_per_run", Float el_s);
              ("lockstep_s_per_run", Float lock_s);
              ("overhead_factor", Float lock_factor);
            ] );
        ( "fuzz",
          Obj
            [
              ("lockstep_programs_per_s", Float fuzz_ps);
              ("forkserver_programs_per_s", Float forkserver_ps);
              ( "forkserver_speedup_vs_baseline",
                Float (forkserver_ps /. 131.35338357638003) );
            ] );
        ( "threads",
          Obj
            [
              ("workload", Str threads_w.Workloads.Common.name);
              ("guest_threads", Int (Workloads.Threads.default_workers + 1));
              ("guest_cycles_per_s", Float threads_cps);
            ] );
        ( "futex_contended",
          Obj
            [
              ("workload", Str futex_w.Workloads.Common.name);
              ("guest_threads", Int 9);
              ("guest_cycles_per_s", Float futex_cps);
              ("context_switches_per_run", Int !futex_switches);
            ] );
        ( "persist",
          Obj
            [
              ("cold_s_per_run", Float cold_s);
              ("warm_s_per_run", Float warm_s);
              ("aot_s_per_run", Float aot_s);
              ("warm_speedup", Float (cold_s /. warm_s));
              ("aot_speedup", Float (cold_s /. aot_s));
              ( "cold_translation_cycles_eliminated_fraction",
                Float elim_frac );
            ] );
        ( "serve",
          Obj
            [
              ("backend", Str "fork");
              ("workers", Int serve_workers);
              ("tcache", Str "aot-shared-readonly");
              ("offered_rate_hz", Float serve_rate_hz);
              ("offered", Int serve_load.Serve.offered);
              ("served", Int serve_load.Serve.served);
              ("rejected", Int serve_load.Serve.load_rejected);
              ("guests_per_s", Float serve_load.Serve.guests_per_s);
              ("lat_p50_ms", Float serve_load.Serve.lat_p50_ms);
              ("lat_p95_ms", Float serve_load.Serve.lat_p95_ms);
              ("lat_p99_ms", Float serve_load.Serve.lat_p99_ms);
              ("lat_mean_ms", Float serve_load.Serve.lat_mean_ms);
              ("tc_hits", Int serve_hits);
              ("tc_misses", Int 0);
            ] );
      ]
  in
  let oc = open_out wallclock_file in
  output_string oc (json_to_string report);
  close_out oc;
  Printf.printf "wrote %s\n" wallclock_file

(* ---------------- Bechamel micro-benchmarks ---------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let mk_run name f = Test.make ~name (Staged.stage f) in
  let small_image =
    Workloads.Spec_int.twolf.Workloads.Common.build ~scale:1 ~wide:false
  in
  let cold_translate () =
    let mem = Ia32.Memory.create () in
    ignore (Ia32.Asm.load small_image mem);
    let eng =
      Ia32el.Engine.create ~config:Ia32el.Config.cold_only
        ~btlib:(module Btlib.Linuxsim) mem
    in
    ignore
      (Ia32el.Cold.translate eng.Ia32el.Engine.cold_env
         ~entry:small_image.Ia32.Asm.entry ~entry_tos:0 ~stage2:false)
  in
  let interp_run () =
    let mem = Ia32.Memory.create () in
    let st = Ia32.Asm.load small_image mem in
    let vos = Btlib.Vos.create mem in
    ignore (Ia32el.Refvehicle.run ~btlib:(module Btlib.Linuxsim) vos st)
  in
  (* one Test.make per table/figure driver (at scale 1) plus translator
     throughput probes *)
  let tests =
    [
      mk_run "table1.precise-exception" (fun () ->
          let mem = Ia32.Memory.create () in
          let open Ia32.Insn in
          let image =
            Ia32.Asm.build
              ~code:
                [ Ia32.Asm.label "start";
                  Ia32.Asm.i (Mov (S32, R Esp, I 0x30000000));
                  Ia32.Asm.i (Push (R Eax)) ]
              ~data:[] ()
          in
          let st = Ia32.Asm.load image mem in
          let eng =
            Ia32el.Engine.create ~config:Ia32el.Config.cold_only
              ~btlib:(module Btlib.Linuxsim) mem
          in
          ignore (Ia32el.Engine.run ~fuel:10_000 eng st));
      mk_run "fig5.el-vpr" (fun () -> ignore (B.run_el Workloads.Spec_int.vpr ~scale:1));
      mk_run "fig6.el-twolf" (fun () -> ignore (B.run_el Workloads.Spec_int.twolf ~scale:1));
      mk_run "fig7.el-sysmark" (fun () ->
          ignore (B.run_el Workloads.Sysmark.office ~scale:1));
      mk_run "fig8.xeon-model-twolf" (fun () ->
          ignore (B.run_xeon Workloads.Spec_int.twolf ~scale:1));
      mk_run "misalign.stress-on" (fun () ->
          ignore (B.run_el Workloads.Sysmark.misalign_stress ~scale:1));
      mk_run "stats.cold-translate" cold_translate;
      mk_run "stats.reference-interpreter" interp_run;
    ]
  in
  let test = Test.make_grouped ~name:"ia32el" ~fmt:"%s.%s" tests in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:3 ~quota:(Time.second 1.0) ~kde:None () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Instance.monotonic_clock results in
    Analyze.merge ols Instance.[ monotonic_clock ] [ results ]
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-40s %14.0f ns/run\n" name t
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results

(* ---------------- driver ---------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1 in
  let json = ref false in
  let min_time = ref 0.3 in
  let no_fusion = ref false in
  let no_hot_counters = ref false in
  let rec parse = function
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--min-time" :: t :: rest ->
      min_time := float_of_string t;
      parse rest
    | "--no-fusion" :: rest ->
      no_fusion := true;
      parse rest
    | "--no-hot-counters" :: rest ->
      no_hot_counters := true;
      parse rest
    | x :: rest -> x :: parse rest
    | [] -> []
  in
  let cmds = parse args in
  let scale = !scale in
  let min_time = !min_time in
  let config =
    {
      Ia32el.Config.default with
      Ia32el.Config.enable_fusion = not !no_fusion;
      Ia32el.Config.enable_hot_counters = not !no_hot_counters;
    }
  in
  let all () =
    table1 ();
    fig5 ~scale ();
    fig6 ~scale ();
    fig7 ~scale ();
    fig8 ~scale ();
    misalign ~scale ();
    stats ~scale ();
    circuitry ~scale ();
    ablations ~scale ()
  in
  (match cmds with
  | [] | [ "all" ] -> if not !json then all ()
  | [ "--bechamel" ] -> bechamel ()
  | cmds ->
    List.iter
      (function
        | "table1" -> table1 ()
        | "fig5" -> fig5 ~scale ()
        | "fig6" -> fig6 ~scale ()
        | "fig7" -> fig7 ~scale ()
        | "fig8" -> fig8 ~scale ()
        | "misalign" -> misalign ~scale ()
        | "stats" -> stats ~scale ()
        | "circuitry" -> circuitry ~scale ()
        | "ablations" -> ablations ~scale ()
        | "perf" -> perf ~scale ~min_time ~config ()
        | "virtual" -> virtual_report ~scale ~config ()
        | "all" -> all ()
        | other -> Printf.eprintf "unknown command %S\n" other)
      cmds);
  (* `perf` writes its own BENCH_wallclock.json; the figure report only
     accompanies the figure commands *)
  if !json && not (List.mem "perf" cmds) then json_report ~scale ()
