(* Tests for the IPF substrate: bundles/templates, the machine's semantics
   (ALU, predication, speculation, ALAT), faults, and the timing model. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

open Ipf

(* Helper: load a list of (insns, stop) groups into a tcache, run, return
   machine. Each inner list becomes one bundle with a trailing stop. *)
let setup ?(map_mem = true) prog =
  let mem = Ia32.Memory.create () in
  if map_mem then
    Ia32.Memory.map mem ~addr:0x1000 ~len:0x4000 ~prot:Ia32.Memory.prot_rw;
  let tc = Tcache.create () in
  List.iter (fun insns -> ignore (Tcache.append tc (Bundle.make ~stop_end:true insns))) prog;
  let m = Machine.create mem tc in
  (m, mem, tc)

let exit_bundle = [ Insn.mk (Insn.Br (Insn.Out Insn.Exit_program)) ]

let run_prog ?fuel prog =
  let m, mem, _ = setup (prog @ [ exit_bundle ]) in
  let stop = Machine.run ?fuel m in
  (m, mem, stop)

let expect_exit stop =
  match stop with
  | Machine.Exited Insn.Exit_program -> ()
  | Machine.Exited r -> Alcotest.failf "unexpected exit %s" (Insn.exit_reason_name r)
  | Machine.Faulted _ -> Alcotest.fail "unexpected fault"
  | Machine.Fuel -> Alcotest.fail "out of fuel"

let bundle_tests =
  [
    Alcotest.test_case "single alu gets a template" `Quick (fun () ->
        let b = Bundle.make [ Insn.mk (Insn.Addi (4, 1, 0)) ] in
        Bundle.check b);
    Alcotest.test_case "branch lands in B slot" `Quick (fun () ->
        let b = Bundle.make [ Insn.mk (Insn.Br (Insn.Out Insn.Exit_program)) ] in
        check Alcotest.string "template" "MIB"
          (Bundle.template_name b.Bundle.template));
    Alcotest.test_case "mem + alu + branch fits MIB" `Quick (fun () ->
        let b =
          Bundle.make
            [ Insn.mk (Insn.Ld (4, Insn.Ld_none, 4, 5));
              Insn.mk (Insn.Addi (6, 1, 4));
              Insn.mk (Insn.Br (Insn.To 0)) ]
        in
        check Alcotest.string "template" "MIB"
          (Bundle.template_name b.Bundle.template));
    Alcotest.test_case "fp op gets F slot" `Quick (fun () ->
        let b = Bundle.make [ Insn.mk (Insn.Fadd (2, 3, 4)) ] in
        Bundle.check b;
        check bool "F template" true
          (List.mem b.Bundle.template Bundle.[ MFI; MMF; MFB ]));
    Alcotest.test_case "two mem ops need MM template" `Quick (fun () ->
        let b =
          Bundle.make
            [ Insn.mk (Insn.Ld (4, Insn.Ld_none, 4, 5));
              Insn.mk (Insn.Ld (4, Insn.Ld_none, 6, 7)) ]
        in
        check bool "MM*" true (List.mem b.Bundle.template Bundle.[ MMI; MMF; MMB ]));
    Alcotest.test_case "too many instructions rejected" `Quick (fun () ->
        try
          ignore
            (Bundle.make
               (List.init 4 (fun k -> Insn.mk (Insn.Addi (k + 4, 1, 0)))));
          Alcotest.fail "expected Invalid"
        with Bundle.Invalid _ -> ());
  ]

let machine_tests =
  let open Insn in
  [
    Alcotest.test_case "alu basics" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, 40L)) ];
              [ mk (Addi (5, 2, 4)) ];
              [ mk (Sub (6, 5, 4)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "r5" 42L (Machine.get m 5);
        Alcotest.check Alcotest.int64 "r6" 2L (Machine.get m 6));
    Alcotest.test_case "r0 reads zero, writes ignored" `Quick (fun () ->
        let m, _, stop = run_prog [ [ mk (Addi (0, 5, 0)) ]; [ mk (Mov (4, 0)) ] ] in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "r0" 0L (Machine.get m 0);
        Alcotest.check Alcotest.int64 "r4" 0L (Machine.get m 4));
    Alcotest.test_case "predication disables instruction" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, 7L)) ];
              [ mk (Cmpi (Ceq, Cnorm, 1, 2, 7, 4)) ];
              [ mk ~qp:1 (Movi (5, 111L)); mk ~qp:2 (Movi (6, 222L)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "taken side" 111L (Machine.get m 5);
        Alcotest.check Alcotest.int64 "untaken side" 0L (Machine.get m 6));
    Alcotest.test_case "load/store round trip" `Quick (fun () ->
        let m, mem, stop =
          run_prog
            [ [ mk (Movi (4, 0x1008L)); mk (Movi (5, 0xDEADBEEFL)) ];
              [ mk (St (4, 4, 5)) ];
              [ mk (Ld (4, Ld_none, 6, 4)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "loaded" 0xDEADBEEFL (Machine.get m 6);
        check int "in guest memory" 0xDEADBEEF (Ia32.Memory.read32 mem 0x1008));
    Alcotest.test_case "misaligned access faults" `Quick (fun () ->
        let _, _, stop =
          run_prog
            [ [ mk (Movi (4, 0x1002L)) ]; [ mk (Ld (4, Ld_none, 5, 4)) ] ]
        in
        match stop with
        | Machine.Faulted f ->
          check bool "misalign" true (f.Machine.kind = Machine.F_misalign);
          check int "addr" 0x1002 f.Machine.addr
        | _ -> Alcotest.fail "expected fault");
    Alcotest.test_case "unmapped access faults" `Quick (fun () ->
        let _, _, stop =
          run_prog
            [ [ mk (Movi (4, 0x90000L)) ]; [ mk (Ld (4, Ld_none, 5, 4)) ] ]
        in
        match stop with
        | Machine.Faulted f -> check bool "page" true (f.Machine.kind = Machine.F_page)
        | _ -> Alcotest.fail "expected fault");
    Alcotest.test_case "speculative load defers fault to chk.s" `Quick (fun () ->
        (* ld.s from unmapped sets NaT; chk.s branches to recovery *)
        let mem = Ia32.Memory.create () in
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 0x90000L)) ]; (* 0 *)
        add [ mk (Ld (4, Ld_s, 5, 4)) ]; (* 1 *)
        add [ mk (Chk_s (5, To 4)) ]; (* 2: recovery at 4 *)
        add [ mk (Movi (6, 111L)); mk (Br (Out Exit_program)) ]; (* 3 *)
        add [ mk (Movi (6, 222L)); mk (Br (Out Exit_program)) ]; (* 4 recovery *)
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "expected exit");
        Alcotest.check Alcotest.int64 "recovery ran" 222L (Machine.get m 6);
        check bool "NaT set" true (Machine.get_nat m 5));
    Alcotest.test_case "NaT propagates through ALU" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 0x90000L)) ];
        add [ mk (Ld (4, Ld_s, 5, 4)) ];
        add [ mk (Addi (6, 1, 5)) ]; (* NaT propagates *)
        add [ mk (Chk_s (6, To 5)) ];
        add [ mk (Movi (7, 1L)); mk (Br (Out Exit_program)) ];
        add [ mk (Movi (7, 2L)); mk (Br (Out Exit_program)) ];
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit");
        Alcotest.check Alcotest.int64 "recovered" 2L (Machine.get m 7));
    Alcotest.test_case "alat: store invalidates, chk.a recovers" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        Ia32.Memory.map mem ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
        Ia32.Memory.write32 mem 0x1010 1;
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 0x1010L)); mk (Movi (5, 99L)) ]; (* 0 *)
        add [ mk (Ld (4, Ld_a, 6, 4)) ]; (* 1: advanced load, r6=1 *)
        add [ mk (St (4, 4, 5)) ]; (* 2: overlapping store kills entry *)
        add [ mk (Chk_a (6, To 5)) ]; (* 3 *)
        add [ mk (Br (Out Exit_program)) ]; (* 4: not reached *)
        add [ mk (Ld (4, Ld_none, 6, 4)); mk (Br (Out Exit_program)) ]; (* 5: reload *)
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit");
        Alcotest.check Alcotest.int64 "reloaded fresh value" 99L (Machine.get m 6));
    Alcotest.test_case "alat: deferred-fault ld.sa kills stale entry" `Quick
      (fun () ->
        (* a successful ld.a leaves an ALAT entry for r6; a later ld.sa
           into the same register that faults must both set NaT and
           remove that stale entry, or its chk.a would wrongly pass *)
        let mem = Ia32.Memory.create () in
        Ia32.Memory.map mem ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
        Ia32.Memory.write32 mem 0x1010 7;
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 0x1010L)); mk (Movi (5, 0x9000L)) ]; (* 0: 0x9000 unmapped *)
        add [ mk (Ld (4, Ld_a, 6, 4)) ]; (* 1: entry for r6 *)
        add [ mk (Ld (4, Ld_sa, 6, 5)) ]; (* 2: faults -> NaT, entry dies *)
        add [ mk (Chk_a (6, To 5)) ]; (* 3: must fire *)
        add [ mk (Br (Out Exit_program)) ]; (* 4: not reached *)
        add [ mk (Movi (7, 42L)); mk (Br (Out Exit_program)) ]; (* 5: recovery *)
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit");
        Alcotest.check Alcotest.int64 "recovery ran" 42L (Machine.get m 7));
    Alcotest.test_case "ld.sa defers misalignment too" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        Ia32.Memory.map mem ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 0x1011L)) ]; (* misaligned for a 4-byte load *)
        add [ mk (Ld (4, Ld_sa, 6, 4)) ];
        add [ mk (Chk_a (6, To 4)) ];
        add [ mk (Br (Out Exit_program)) ];
        add [ mk (Movi (7, 9L)); mk (Br (Out Exit_program)) ];
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit (no fault expected)");
        Alcotest.check Alcotest.int64 "recovery ran" 9L (Machine.get m 7));
    Alcotest.test_case "alat: disjoint store keeps entry" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        Ia32.Memory.map mem ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
        Ia32.Memory.write32 mem 0x1010 7;
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 0x1010L)); mk (Movi (5, 0x1020L)) ];
        add [ mk (Ld (4, Ld_a, 6, 4)) ];
        add [ mk (St (4, 5, 5)) ]; (* disjoint *)
        add [ mk (Chk_a (6, To 5)) ];
        add [ mk (Movi (7, 1L)); mk (Br (Out Exit_program)) ];
        add [ mk (Movi (7, 2L)); mk (Br (Out Exit_program)) ];
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit");
        Alcotest.check Alcotest.int64 "no recovery" 1L (Machine.get m 7);
        Alcotest.check Alcotest.int64 "value kept" 7L (Machine.get m 6));
    Alcotest.test_case "fp ops" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, Int64.of_int (Ia32.Fpconv.bits_of_f32 1.5))) ];
              [ mk (Setf_s (4, 4)) ];
              [ mk (Fadd (5, 4, 1)) ]; (* 1.5 + 1.0 *)
              [ mk (Fmul (6, 5, 5)) ]; (* 6.25 *)
              [ mk (Getf_d (7, 6)) ] ]
        in
        expect_exit stop;
        Alcotest.check (Alcotest.float 0.0) "6.25" 6.25
          (Ia32.Fpconv.f64_of_bits (Machine.get m 7)));
    Alcotest.test_case "fcvt round-to-even" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, Ia32.Fpconv.bits_of_f64 2.5)) ];
              [ mk (Setf_d (4, 4)) ];
              [ mk (Fcvt_fx (5, 4)) ];
              [ mk (Fcvt_fxt (6, 4)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "rne" 2L (Machine.get m 5);
        Alcotest.check Alcotest.int64 "trunc" 2L (Machine.get m 6));
    Alcotest.test_case "parallel add lanes" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, 0x0001000200030004L)); mk (Movi (5, 0x0010002000300040L)) ];
              [ mk (Padd (2, 6, 4, 5)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "lanes" 0x0011002200330044L (Machine.get m 6));
    Alcotest.test_case "dep/extr" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, 0xFFFFFFFFFFFFFFFFL)); mk (Movi (5, 0xABL)) ];
              [ mk (Dep (6, 5, 4, 8, 8)) ];
              [ mk (Extru (7, 6, 8, 8)) ];
              [ mk (Extr (8, 6, 8, 8)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "dep" 0xFFFFFFFFFFFFABFFL (Machine.get m 6);
        Alcotest.check Alcotest.int64 "extru" 0xABL (Machine.get m 7);
        Alcotest.check Alcotest.int64 "extr signed" (-85L) (Machine.get m 8));
    Alcotest.test_case "tbit" `Quick (fun () ->
        let m, _, stop =
          run_prog
            [ [ mk (Movi (4, 0x4L)) ];
              [ mk (Tbit (1, 2, 4, 2)) ];
              [ mk ~qp:1 (Movi (5, 1L)) ] ]
        in
        expect_exit stop;
        Alcotest.check Alcotest.int64 "bit set" 1L (Machine.get m 5));
    Alcotest.test_case "branch loop with counter" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 10L)); mk (Movi (5, 0L)) ]; (* 0 *)
        add [ mk (Add (5, 5, 4)) ]; (* 1: sum += i *)
        add [ mk (Addi (4, -1, 4)) ]; (* 2 *)
        add [ mk (Cmpi (Ceq, Cnorm, 1, 2, 0, 4)); mk ~qp:2 (Br (To 1)) ]; (* 3 *)
        add [ mk (Br (Out Exit_program)) ]; (* 4 *)
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit");
        Alcotest.check Alcotest.int64 "sum 10..1" 55L (Machine.get m 5));
    Alcotest.test_case "br_ind through branch register" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        let tc = Tcache.create () in
        let add insns = ignore (Tcache.append tc (Bundle.make ~stop_end:true insns)) in
        add [ mk (Movi (4, 3L)) ]; (* 0: bundle index 3 *)
        add [ mk (Mov_to_br (1, 4)) ]; (* 1 *)
        add [ mk (Br_ind 1) ]; (* 2 *)
        add [ mk (Movi (5, 42L)); mk (Br (Out Exit_program)) ]; (* 3 *)
        let m = Machine.create mem tc in
        (match Machine.run m with
        | Machine.Exited Exit_program -> ()
        | _ -> Alcotest.fail "exit");
        Alcotest.check Alcotest.int64 "landed" 42L (Machine.get m 5));
    Alcotest.test_case "exit reasons pass through" `Quick (fun () ->
        let mem = Ia32.Memory.create () in
        let tc = Tcache.create () in
        ignore
          (Tcache.append tc
             (Bundle.make ~stop_end:true [ mk (Br (Out (Dispatch 0x401000))) ]));
        let m = Machine.create mem tc in
        match Machine.run m with
        | Machine.Exited (Dispatch 0x401000) -> ()
        | _ -> Alcotest.fail "expected dispatch exit");
  ]

let timing_tests =
  let open Insn in
  [
    Alcotest.test_case "wide group cheaper than serialized" `Quick (fun () ->
        (* 6 independent adds in 2 bundles/1 group vs 6 groups *)
        let run_groups grouped =
          let mem = Ia32.Memory.create () in
          let tc = Tcache.create () in
          let insns k = mk (Addi (4 + k, 1, 0)) in
          if grouped then begin
            ignore
              (Tcache.append tc (Bundle.make [ insns 0; insns 1; insns 2 ]));
            ignore
              (Tcache.append tc
                 (Bundle.make ~stop_end:true [ insns 3; insns 4; insns 5 ]))
          end
          else
            List.iter
              (fun k ->
                ignore (Tcache.append tc (Bundle.make ~stop_end:true [ insns k ])))
              [ 0; 1; 2; 3; 4; 5 ];
          ignore
            (Tcache.append tc
               (Bundle.make ~stop_end:true [ mk (Br (Out Exit_program)) ]));
          let m = Machine.create mem tc in
          (match Machine.run m with
          | Machine.Exited Exit_program -> ()
          | _ -> Alcotest.fail "exit");
          m.Machine.stats.Machine.cycles
        in
        let wide = run_groups true and narrow = run_groups false in
        check bool
          (Printf.sprintf "wide (%d) < narrow (%d)" wide narrow)
          true (wide < narrow));
    Alcotest.test_case "load-use stall visible" `Quick (fun () ->
        let run_consumer immediate =
          let mem = Ia32.Memory.create () in
          Ia32.Memory.map mem ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
          let tc = Tcache.create () in
          let add insns =
            ignore (Tcache.append tc (Bundle.make ~stop_end:true insns))
          in
          add [ mk (Movi (4, 0x1000L)) ];
          if immediate then begin
            add [ mk (Ld (4, Ld_none, 5, 4)) ];
            add [ mk (Addi (6, 1, 5)) ] (* consumes load immediately *)
          end
          else begin
            add [ mk (Ld (4, Ld_none, 5, 4)) ];
            add [ mk (Addi (7, 1, 0)) ];
            add [ mk (Addi (8, 2, 0)) ];
            add [ mk (Addi (9, 3, 0)) ];
            add [ mk (Addi (6, 1, 5)) ]
          end;
          add [ mk (Br (Out Exit_program)) ];
          let m = Machine.create mem tc in
          (match Machine.run m with
          | Machine.Exited Exit_program -> ()
          | _ -> Alcotest.fail "exit");
          m.Machine.stats.Machine.cycles
        in
        (* with filler work the stall is hidden: same or fewer cycles per
           useful instruction; just assert both run and immediate-use is not
           cheaper than one with the load distance covered *)
        let tight = run_consumer true in
        let spaced = run_consumer false in
        check bool
          (Printf.sprintf "tight=%d spaced=%d" tight spaced)
          true (tight >= spaced - 3));
    Alcotest.test_case "dcache miss then hit" `Quick (fun () ->
        let d = Dcache.create () in
        let miss = Dcache.access d 0x1000 in
        let hit = Dcache.access d 0x1000 in
        check bool "miss cost" true (miss > 0);
        check int "hit free" 0 hit;
        let s = Dcache.stats d in
        check int "hits" 1 s.Dcache.l1_hits;
        check int "misses" 1 s.Dcache.l1_misses);
    Alcotest.test_case "dcache capacity eviction" `Quick (fun () ->
        let d = Dcache.create ~l1_size:1024 ~l1_assoc:2 ~l1_line:64 () in
        (* touch 3 lines mapping to the same set of a 2-way cache *)
        let stride = 1024 / 2 in
        ignore (Dcache.access d 0);
        ignore (Dcache.access d stride);
        ignore (Dcache.access d (2 * stride));
        let again = Dcache.access d 0 in
        check bool "evicted" true (again > 0));
  ]

let () =
  Alcotest.run "ipf"
    [
      ("bundle", bundle_tests);
      ("machine", machine_tests);
      ("timing", timing_tests);
    ]
