(* Workload sanity: every synthetic benchmark (and its LP64 "wide"
   variant used by the native baseline) must assemble, load, and run to a
   clean exit on the reference interpreter, and the quickest ones are
   also run end-to-end under the translator. This keeps the bench
   harness's inputs trustworthy: a workload that faults or spins would
   silently poison every figure built on it. *)

open Workloads

let check = Alcotest.check
let bool = Alcotest.bool

let all_named =
  List.map (fun w -> (w.Common.name, w)) (Spec_int.all @ Spec_fp.all)
  @ [ ("office", Sysmark.office); ("misalign_stress", Sysmark.misalign_stress) ]

let run_ref (w : Common.t) ~wide =
  let image = w.Common.build ~scale:1 ~wide in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let vos = Btlib.Vos.create mem in
  match
    Ia32el.Refvehicle.run ~fuel:100_000_000 ~btlib:(module Btlib.Linuxsim) vos
      st
  with
  | Ia32el.Refvehicle.Exited (0, _), insns -> insns
  | Ia32el.Refvehicle.Exited (c, _), _ ->
    Alcotest.failf "%s: exit code %d" w.Common.name c
  | Ia32el.Refvehicle.Unhandled_fault (f, st), _ ->
    Alcotest.failf "%s: fault %s at 0x%x" w.Common.name
      (Ia32.Fault.to_string f) st.Ia32.State.eip
  | Ia32el.Refvehicle.Out_of_fuel, _ ->
    Alcotest.failf "%s: out of fuel" w.Common.name

let ref_cases =
  List.concat_map
    (fun (name, w) ->
      [
        Alcotest.test_case (name ^ " runs clean") `Quick (fun () ->
            let insns = run_ref w ~wide:false in
            check bool (name ^ ": does real work") true (insns > 1000));
        Alcotest.test_case (name ^ " (wide) runs clean") `Quick (fun () ->
            ignore (run_ref w ~wide:true));
      ])
    all_named

(* A few fast end-to-end translator runs (the benches cover the rest). *)
let el_cases =
  List.map
    (fun (name, w) ->
      Alcotest.test_case (name ^ " under the translator") `Quick (fun () ->
          let r = Baselines.run_el w ~scale:1 in
          check bool (name ^ ": consumed cycles") true (r.Baselines.cycles > 0);
          match r.Baselines.engine with
          | Some eng ->
            check bool
              (name ^ ": the translator actually translated")
              true
              (eng.Ia32el.Engine.acct.Ia32el.Account.cold_blocks > 0)
          | None -> ()))
    [
      ("crafty", Spec_int.crafty);
      ("vpr", Spec_int.vpr);
      ("mgrid", Spec_fp.mgrid);
      ("art", Spec_fp.art);
    ]

let () =
  Alcotest.run "ia32el-workloads"
    [ ("reference", ref_cases); ("translator", el_cases) ]
