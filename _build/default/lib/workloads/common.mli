(** Shared helpers for authoring synthetic guest workloads in the
    assembler DSL. All workloads use the linuxsim system-call
    convention.

    Because the real SPEC CPU2000 / Sysmark binaries cannot be run here
    (no licensed sources, no IA-32 hardware), each workload is a small
    IA-32 kernel shaped like the benchmark it stands in for — same
    dominant instruction mix, memory behaviour and control structure —
    as documented per benchmark in DESIGN.md. *)

val a32 : Ia32.Insn.insn -> Ia32.Asm.item

val exit0 : Ia32.Asm.item list
(** [exit(0)] epilogue. *)

val kernel_work : int -> Ia32.Asm.item list
(** Spend [n] cycles in the (natively executing) OS kernel — Sysmark's
    kernel/driver component. Preserves registers. *)

val idle : int -> Ia32.Asm.item list
(** Spend [n] cycles idle — Sysmark's think time. *)

val counted : string -> Ia32.Insn.reg -> int -> Ia32.Asm.item list -> Ia32.Asm.item list
(** [counted name reg n body]: loop [body] with [reg] running n..1. *)

val counted_mem : string -> string -> int -> Ia32.Asm.item list -> Ia32.Asm.item list
(** Counted loop with the counter in memory at label [ctr_label],
    keeping all registers free for the body. *)

type t = {
  name : string;
  build : scale:int -> wide:bool -> Ia32.Asm.image;
      (** [scale] stretches the run length; [wide] selects the
          LP64-flavoured variant the native baseline runs (bigger data,
          64-bit-native idioms) *)
  paper_score : int option;
      (** the paper's EL-vs-native percentage for this benchmark
          (Figure 5/8), when it reports one *)
}
(** A synthetic workload. *)

val build_image :
  ?code_base:int -> Ia32.Asm.item list -> Ia32.Asm.item list -> Ia32.Asm.image
(** Wrap code with the [start] label and {!exit0}, then assemble. *)

val lcg_next : Ia32.Asm.item list
(** One step of the classic LCG in EAX (pseudo-random input data). *)
