(* Sysmark-2002-like workload (paper Figures 7 and 8): a large, flat code
   footprint spread across many small routines; a significant share of time
   in OS kernel and driver code (which executes natively and is charged to
   the "other" bucket); and idle time. Only ~45% of execution ends up in
   hot code, unlike SPEC's 95%. *)

open Ia32.Insn
module A = Ia32.Asm
open Common

let md = mem_bd

let office =
  let nroutines = 80 in
  let build ~scale ~wide:_ =
    (* each routine does a little distinctive work and returns *)
    let routine k =
      [ A.label (Printf.sprintf "r%d" k) ]
      @ (match k mod 5 with
        | 0 ->
          (* text shuffling *)
          [
            A.mov_ri_lab Esi "text";
            A.mov_ri_lab Edi "scratch";
            a32 (Mov (S32, R Ecx, I 8));
            a32 Cld;
            a32 (Movs (S32, Rep));
            a32 (Movzx (S8, Eax, M (md Esi (k land 15))));
            a32 (Alu (Add, S8, M (md Edi (k land 15)), R Eax));
          ]
        | 1 ->
          (* spreadsheet-ish integer math *)
          [
            a32 (Mov (S32, R Eax, M (A.default_data_base + 256 + (4 * (k land 31)) |> mem_abs)));
            a32 (Imul_rri (Eax, R Eax, (k * 7) + 3));
            a32 (Shift (Sar, S32, R Eax, Amt_imm 2));
            A.with_lab "cells" (fun a -> Alu (Add, S32, M (mem_abs (a + (4 * (k land 31)))), R Eax));
          ]
        | 2 ->
          (* a bit of x87 (charting) *)
          [
            A.with_lab "fval" (fun a -> Fp (Fld_m (F64, mem_abs a)));
            A.with_lab "fval" (fun a -> Fp (Fop_m (FMul, F64, mem_abs (a + 8))));
            A.with_lab "fval" (fun a -> Fp (Fst_m (F64, mem_abs (a + 16), true)));
          ]
        | 3 ->
          (* lookup + branch *)
          [
            a32 (Mov (S32, R Ebx, I (k land 63)));
            A.with_lab "cells" (fun a -> Mov (S32, R Eax, M { base = None; index = Some (Ebx, 4); disp = a }));
            a32 (Test (S32, R Eax, I 1));
            A.jcc E (Printf.sprintf "r%d_skip" k);
            a32 (Alu (Add, S32, R Eax, I k));
            A.label (Printf.sprintf "r%d_skip" k);
            A.with_lab "cells" (fun a -> Mov (S32, M { base = None; index = Some (Ebx, 4); disp = a }, R Eax));
          ]
        | _ ->
          (* string compare *)
          [
            A.mov_ri_lab Edi "text";
            a32 (Mov (S8, R Eax, I (65 + (k mod 26))));
            a32 (Mov (S32, R Ecx, I 16));
            a32 Cld;
            a32 (Scas (S8, Repne));
          ])
      @ [ a32 (Ret 0) ]
    in
    (* heavier routines: repeat each body a few times (documents/sheets do
       more work per UI event than a handful of instructions) *)
    let routine k =
      match routine k with
      | lbl :: body ->
        let strip = List.filter (fun it -> match it with Ia32.Asm.Label _ -> false | _ -> true) in
        let body_core = List.filteri (fun i _ -> i < List.length body - 1) body in
        let rep = strip body_core in
        lbl :: (body_core @ rep @ rep @ rep @ rep @ [ a32 (Ret 0) ])
      | [] -> []
    in
    let code =
      [ a32 (Mov (S32, R Eax, I 31415)) ]
      @ counted_mem "events" "ctr" (4000 * scale)
          (lcg_next
          @ [
              (* skewed routine selection: half the events hit a small hot
                 set, the rest spread across the whole code footprint *)
              a32 (Mov (S32, R Ebx, R Eax));
              a32 (Shift (Shr, S32, R Ebx, Amt_imm 5));
              a32 (Alu (And, S32, R Ebx, I 255));
              A.with_lab "skew" (fun a ->
                  Movzx (S8, Ebx, M { base = None; index = Some (Ebx, 1); disp = a }));
              A.with_lab "rtab" (fun a ->
                  Call_ind (M { base = None; index = Some (Ebx, 4); disp = a }));
              (* a second routine per event *)
              a32 (Alu (Xor, S32, R Ebx, I 3));
              A.with_lab "rtab" (fun a ->
                  Call_ind (M { base = None; index = Some (Ebx, 4); disp = a }));
            ]
          @ [
              (* kernel/driver work every 4th event, idle every 10th *)
              a32 (Test (S32, R Ebp, I 3));
              A.jcc Ne "no_kernel";
            ]
          @ kernel_work 1200
          @ [
              A.label "no_kernel";
              a32 (Mov (S32, R Ebx, R Ebp));
              a32 (Mov (S32, R Edx, I 0));
              a32 (Push (R Eax));
              a32 (Mov (S32, R Eax, R Ebx));
              a32 (Mov (S32, R Ebx, I 10));
              a32 (Div (S32, R Ebx));
              a32 (Pop (R Eax));
              a32 (Test (S32, R Edx, R Edx));
              A.jcc Ne "no_idle";
            ]
          @ idle 2600
          @ [ A.label "no_idle"; a32 (Inc (S32, R Ebp)) ])
      @ [ A.jmp "office_done" ]
      @ List.concat (List.init nroutines routine)
      @ [ A.label "office_done" ]
    in
    let data =
      [ A.label "text"; A.raw "The quick brown fox jumps over LAZY dogs. ";
        A.space 22;
        A.label "scratch"; A.space 64;
        A.label "cells" ]
      @ List.init 64 (fun k -> A.dd ((k * 377) + 1))
      @ [ A.label "fval"; A.df64 1.25; A.df64 1.0125; A.space 8;
          A.label "skew" ]
      @ List.init 256 (fun k ->
            A.db (if k < 128 then k land 7 else (k * 13) mod nroutines))
      @ [ A.label "rtab" ]
      @ List.init nroutines (fun k -> A.dd_lab (Printf.sprintf "r%d" k))
      @ [ A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "sysmark"; build; paper_score = None }

(* ------------------------------------------------------------------ *)
(* Misalignment stress (the paper's 1236 s -> 133 s anecdote): a loop
   dominated by misaligned 4- and 8-byte accesses. *)
let misalign_stress =
  let build ~scale ~wide:_ =
    let code =
      [
        A.mov_ri_lab Esi "buf";
        a32 (Alu (Add, S32, R Esi, I 1)); (* odd base: everything misaligns *)
      ]
      @ counted_mem "mis" "ctr" (4000 * scale)
          [
            a32 (Mov (S32, R Eax, M (md Esi 0)));
            a32 (Alu (Add, S32, R Eax, M (md Esi 6)));
            a32 (Mov (S32, M (md Esi 10), R Eax));
            a32 (Fp (Fld_m (F64, md Esi 16)));
            a32 (Fp (Fop_st0_st (FAdd, 0)));
            a32 (Fp (Fst_m (F64, md Esi 24, true)));
            a32 (Alu (Add, S16, M (md Esi 3), I 7));
          ]
    in
    let data = [ A.label "buf"; A.space 64; A.label "ctr"; A.space 4 ] in
    build_image code data
  in
  { name = "misalign-stress"; build; paper_score = None }
