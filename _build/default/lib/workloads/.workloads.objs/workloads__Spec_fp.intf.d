lib/workloads/spec_fp.mli: Common
