lib/workloads/spec_int.mli: Common
