lib/workloads/common.ml: Ia32
