lib/workloads/sysmark.mli: Common
