lib/workloads/baselines.ml: Btlib Common Ia32 Ia32el Ipf Printf
