lib/workloads/sysmark.ml: Common Ia32 List Printf
