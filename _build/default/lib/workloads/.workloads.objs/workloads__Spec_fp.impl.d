lib/workloads/spec_fp.ml: Common Float Ia32 List
