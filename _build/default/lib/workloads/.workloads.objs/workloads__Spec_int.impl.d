lib/workloads/spec_int.ml: Char Common Ia32 List Printf String
