lib/workloads/baselines.mli: Common Ia32el Ipf
