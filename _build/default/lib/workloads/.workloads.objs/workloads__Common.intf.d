lib/workloads/common.mli: Ia32
