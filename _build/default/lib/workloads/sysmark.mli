(** Synthetic Sysmark-style interactive/office workload (Figures 7/8).

    Unlike SPEC, office applications spread time over a large, flat code
    footprint driven by an event loop, spend real time in the kernel and
    in drivers, and idle waiting for the user. [office] models exactly
    that distribution: many small routines dispatched by a skewed random
    event stream, periodic kernel work and idle time — which is what
    pushes the paper's Figure 7 "translated code" share down and the
    "other/idle" share up relative to SPEC (Figure 6).

    [misalign_stress] is the §4.5 anecdote: a server-style kernel whose
    packed records misalign nearly every access. *)

val office : Common.t
val misalign_stress : Common.t
