(* Synthetic analogues of SPEC CPU2000 floating-point behaviour, used for
   the Figure 8 FP comparison. They exercise the translator's x87 stack
   machinery (TOS speculation, FXCHG elimination) and SSE modeling on
   kernels shaped like the FP suite: stencils, reductions, sparse products
   and packed-single vector work. *)

open Ia32.Insn
module A = Ia32.Asm
open Common

let mix b i s d = { base = Some b; index = Some (i, s); disp = d }

(* swim-like: 2D shallow-water stencil over an f64 grid. *)
let swim =
  let build ~scale ~wide:_ =
    let n = 64 in
    let code =
      [ A.mov_ri_lab Esi "grid"; A.mov_ri_lab Edi "out" ]
      @ counted_mem "sweep" "ctr" (500 * scale)
          ([
             a32 (Mov (S32, R Ecx, I 8));
             A.label "row";
             (* out[i] = 0.25*(g[i-1] + g[i+1] + g[i-8] + g[i+8]) *)
             a32 (Fp (Fld_m (F64, mix Esi Ecx 8 (-8))));
             a32 (Fp (Fop_m (FAdd, F64, mix Esi Ecx 8 8)));
             a32 (Fp (Fld_m (F64, mix Esi Ecx 8 (-64))));
             a32 (Fp (Fop_m (FAdd, F64, mix Esi Ecx 8 64)));
             a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
             A.with_lab "quarter" (fun a -> Fp (Fop_m (FMul, F64, mem_abs a)));
             a32 (Fp (Fst_m (F64, mix Edi Ecx 8 0, true)));
             a32 (Inc (S32, R Ecx));
             a32 (Alu (Cmp, S32, R Ecx, I (n - 8)));
             A.jcc Ne "row";
           ])
    in
    let data =
      [ A.label "grid" ]
      @ List.init n (fun k -> A.df64 (Float.of_int k *. 0.37))
      @ [ A.label "out"; A.space (n * 8); A.label "quarter"; A.df64 0.25;
          A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "swim"; build; paper_score = None }

(* mgrid-like: multigrid relaxation — long fmul/fadd chains with fxch. *)
let mgrid =
  let build ~scale ~wide:_ =
    let code =
      [ a32 (Fp Fldz) ]
      @ counted_mem "relax" "ctr" (8000 * scale)
          [
            A.with_lab "c" (fun a -> Fp (Fld_m (F64, mem_abs a)));
            A.with_lab "c" (fun a -> Fp (Fld_m (F64, mem_abs (a + 8))));
            a32 (Fp (Fxch 1));
            a32 (Fp (Fop_st0_st (FMul, 1)));
            a32 (Fp (Fxch 1));
            A.with_lab "c" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs (a + 16))));
            a32 (Fp (Fop_st_st0 (FMul, 1, true)));
            a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
          ]
      @ [ A.with_lab "res" (fun a -> Fp (Fst_m (F64, mem_abs a, true))) ]
    in
    let data =
      [ A.label "c"; A.df64 1.0001; A.df64 0.9997; A.df64 0.00001;
        A.label "res"; A.space 8; A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "mgrid"; build; paper_score = None }

(* equake-like: sparse matrix-vector product — indexed loads + x87. *)
let equake =
  let build ~scale ~wide:_ =
    let nz = 48 in
    let code =
      [ A.mov_ri_lab Esi "vals"; A.mov_ri_lab Edi "cols" ]
      @ counted_mem "smvp" "ctr" (1500 * scale)
          ([
             a32 (Fp Fldz);
             a32 (Mov (S32, R Ecx, I 0));
             A.label "nzl";
             a32 (Mov (S32, R Ebx, M (mix Edi Ecx 4 0)));
             a32 (Fp (Fld_m (F64, mix Esi Ecx 8 0)));
             A.with_lab "x" (fun a ->
                 Fp (Fop_m (FMul, F64, { base = None; index = Some (Ebx, 8); disp = a })));
             a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
             a32 (Inc (S32, R Ecx));
             a32 (Alu (Cmp, S32, R Ecx, I nz));
             A.jcc Ne "nzl";
             A.with_lab "y" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
           ])
    in
    let data =
      [ A.label "vals" ]
      @ List.init nz (fun k -> A.df64 (0.5 +. (Float.of_int k /. 17.0)))
      @ [ A.label "cols" ]
      @ List.init nz (fun k -> A.dd (k * 5 mod 16))
      @ [ A.label "x" ]
      @ List.init 16 (fun k -> A.df64 (1.0 +. (Float.of_int k *. 0.125)))
      @ [ A.label "y"; A.space 8; A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "equake"; build; paper_score = None }

(* art-like: neural-net match — SSE packed-single dot products. *)
let art =
  let build ~scale ~wide:_ =
    let code =
      [
        A.with_lab "w" (fun a -> Sse (Movups (XM 0, XMem (mem_abs a))));
        A.with_lab "w" (fun a -> Sse (Movups (XM 1, XMem (mem_abs (a + 16)))));
        a32 (Sse (Xorps (2, XM 2)));
      ]
      @ counted_mem "f1" "ctr" (6000 * scale)
          [
            A.with_lab "inp" (fun a -> Sse (Movups (XM 3, XMem (mem_abs a))));
            a32 (Sse (Sse_arith (SMul, Packed_single, 3, XM 0)));
            a32 (Sse (Sse_arith (SAdd, Packed_single, 2, XM 3)));
            A.with_lab "inp" (fun a -> Sse (Movups (XM 4, XMem (mem_abs (a + 16)))));
            a32 (Sse (Sse_arith (SMul, Packed_single, 4, XM 1)));
            a32 (Sse (Sse_arith (SMax, Packed_single, 2, XM 4)));
          ]
      @ [ A.with_lab "out" (fun a -> Sse (Movups (XMem (mem_abs a), XM 2))) ]
    in
    let data =
      [ A.label "w"; A.df32 0.5; A.df32 0.25; A.df32 0.125; A.df32 1.5;
        A.df32 0.9; A.df32 1.1; A.df32 0.7; A.df32 1.3;
        A.label "inp"; A.df32 1.0; A.df32 2.0; A.df32 3.0; A.df32 4.0;
        A.df32 0.1; A.df32 0.2; A.df32 0.3; A.df32 0.4;
        A.label "out"; A.space 16; A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "art"; build; paper_score = None }

(* ammp-like: molecular dynamics — distance computations with sqrt and
   divides. *)
let ammp =
  let build ~scale ~wide:_ =
    let code =
      counted_mem "pairs" "ctr" (5000 * scale)
        [
          A.with_lab "p" (fun a -> Fp (Fld_m (F64, mem_abs a)));
          A.with_lab "p" (fun a -> Fp (Fop_m (FSub, F64, mem_abs (a + 8))));
          a32 (Fp (Fld_st 0));
          a32 (Fp (Fop_st0_st (FMul, 1)));
          A.with_lab "p" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs (a + 16))));
          a32 (Fp Fsqrt);
          a32 (Fp Fld1);
          a32 (Fp (Fxch 1));
          a32 (Fp (Fop_st_st0 (FDivr, 1, true)));
          A.with_lab "force" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "force" (fun a -> Fp (Fst_m (F64, mem_abs a, false)));
          a32 (Fp (Fcom_st (1, 2)));
        ]
    in
    let data =
      [ A.label "p"; A.df64 3.5; A.df64 1.25; A.df64 0.8;
        A.label "force"; A.df64 0.0; A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "ammp"; build; paper_score = None }

let all = [ swim; mgrid; equake; art; ammp ]
