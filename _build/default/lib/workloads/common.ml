(* Shared helpers for authoring synthetic guest workloads in the assembler
   DSL. All workloads use the linuxsim system-call convention. *)

open Ia32.Insn
module A = Ia32.Asm

let a32 = A.i

(* exit(0) *)
let exit0 =
  [ a32 (Mov (S32, R Eax, I 1)); a32 (Mov (S32, R Ebx, I 0)); a32 (Int_n 0x80) ]

(* kernel_work(n): spend n cycles in the (natively executing) OS kernel *)
let kernel_work n =
  [
    a32 (Push (R Eax));
    a32 (Push (R Ebx));
    a32 (Mov (S32, R Eax, I 200));
    a32 (Mov (S32, R Ebx, I n));
    a32 (Int_n 0x80);
    a32 (Pop (R Ebx));
    a32 (Pop (R Eax));
  ]

(* idle(n) *)
let idle n =
  [
    a32 (Push (R Eax));
    a32 (Push (R Ebx));
    a32 (Mov (S32, R Eax, I 158));
    a32 (Mov (S32, R Ebx, I n));
    a32 (Int_n 0x80);
    a32 (Pop (R Ebx));
    a32 (Pop (R Eax));
  ]

(* counted loop on a register: reg runs n..1 *)
let counted name reg n body =
  [ a32 (Mov (S32, R reg, I n)); A.label name ]
  @ body
  @ [ a32 (Dec (S32, R reg)); A.jcc Ne name ]

(* counted loop with the counter in memory (keeps all registers free) *)
let counted_mem name ctr_label n body =
  [ A.with_lab ctr_label (fun a -> Mov (S32, M (mem_abs a), I n)); A.label name ]
  @ body
  @ [
      A.with_lab ctr_label (fun a -> Dec (S32, M (mem_abs a)));
      A.jcc Ne name;
    ]

(* A workload: name plus an image builder. [scale] stretches the run
   length; [wide] selects the LP64-flavoured variant used by the native
   baseline (bigger data, 64-bit-native idioms). *)
type t = {
  name : string;
  build : scale:int -> wide:bool -> A.image;
  (* the paper's reported EL-vs-native score for this benchmark (Figure 5),
     in percent; None when the paper gives no per-benchmark number *)
  paper_score : int option;
}

let build_image ?(code_base = A.default_code_base) code data =
  A.build ~code_base ~code:(A.label "start" :: (code @ exit0)) ~data ()

let lcg_next = [ (* eax = eax * 1103515245 + 12345 *)
    a32 (Imul_rri (Eax, R Eax, 1103515245));
    a32 (Alu (Add, S32, R Eax, I 12345));
  ]
