(** Synthetic analogues of SPEC CPU2000 floating-point behaviour, used
    for the Figure 8 FP comparison.

    They exercise the translator's x87 stack machinery (TOS speculation,
    FXCHG elimination) and SSE modeling on kernels shaped like the FP
    suite: swim (2D stencil), mgrid (relaxation with FXCH-heavy chains),
    equake (sparse matrix-vector products), art (SSE packed-single dot
    products), ammp (distances with sqrt and divides). *)

val swim : Common.t
val mgrid : Common.t
val equake : Common.t
val art : Common.t
val ammp : Common.t
val all : Common.t list
