(** Synthetic analogues of the SPEC CPU2000 integer suite (Figure 5).

    One kernel per benchmark, shaped like the original's hot loop:
    gzip (LZ hashing), vpr (placement swaps), gcc (bitmap dataflow),
    mcf (pointer chasing over a working set sized against the L2),
    crafty (bitboards), parser (dictionary walk), eon (virtual-call
    heavy rendering loop), perlbmk (string hashing/interp dispatch),
    gap (small-integer arithmetic), vortex (object store lookups),
    bzip2 (sorting/bit IO), twolf (annealing moves).

    Each has a [wide] variant with the LP64 idioms the native compiler
    would use; DESIGN.md documents the shapes and the deviations. *)

val gzip : Common.t
val vpr : Common.t
val gcc : Common.t
val mcf : Common.t
val crafty : Common.t
val parser : Common.t
val eon : Common.t
val perlbmk : Common.t
val gap : Common.t
val vortex : Common.t
val bzip2 : Common.t
val twolf : Common.t

val all : Common.t list
(** The twelve benchmarks in the paper's Figure 5 order. *)
