(* Synthetic analogues of the SPEC CPU2000 integer benchmarks (paper
   Figure 5). Each kernel imitates the documented character of its
   namesake — the instruction mix, branching behaviour, data-access
   pattern and footprint that make the corresponding bar in Figure 5 land
   where it does. The translator only ever sees the assembled IA-32 bytes.

   The [wide] variant models the natively recompiled LP64 program where
   that matters: bigger pointers/data (mcf's footprint), or 64-bit-native
   idioms (crafty's bitboards use MMX in the wide variant, which the
   native cost model executes as single 64-bit ALU ops). *)

open Ia32.Insn
module A = Ia32.Asm
open Common

let m = mem_b
let md = mem_bd
let mix b i s d = { base = Some b; index = Some (i, s); disp = d }

(* ------------------------------------------------------------------ *)

(* gzip: LZ-style scanning and copying — byte compares, table lookups,
   rep-copies, occasional misaligned dword loads. Memory-bound: the
   translation tax is small (paper: 86%). *)
let gzip =
  let build ~scale ~wide =
    let hash_step off =
      [
        a32 (Movzx (S8, Edx, M (mix Esi Ecx 1 off)));
        a32 (Shift (Shl, S32, R Eax, Amt_imm 5));
        a32 (Alu (Xor, S32, R Eax, R Edx));
        a32 (Alu (And, S32, R Eax, I 1023));
        (* dict chain probe *)
        a32 (Mov (S32, R Edx, M (mix Edi Eax 4 0)));
        a32 (Mov (S32, M (mix Edi Eax 4 0), R Ecx));
        (* misaligned dword peek at the match candidate *)
        a32 (Alu (And, S32, R Edx, I 63));
        a32 (Mov (S32, R Edx, M (mix Esi Edx 1 1)));
      ]
    in
    (* the native compiler unrolls the hash loop and halves its control
       overhead; the IA-32 binary keeps the rolled form *)
    let hash_loop =
      if wide then
        counted "hashl" Ebx 32
          (hash_step 0 @ [ a32 (Inc (S32, R Ecx)) ] @ hash_step 0
          @ [ a32 (Inc (S32, R Ecx)) ])
      else
        counted "hashl" Ebx 64 (hash_step 0 @ [ a32 (Inc (S32, R Ecx)) ])
    in
    let code =
      [
        A.mov_ri_lab Esi "src";
        A.mov_ri_lab Edi "dict";
      ]
      @ counted "outer" Ebp (450 * scale)
          ([
             A.label "scan";
             (* hash 3 bytes: h = (b0<<10 ^ b1<<5 ^ b2) & 1023 *)
             a32 (Mov (S32, R Ecx, I 0));
             a32 (Mov (S32, R Eax, I 0));
           ]
          @ hash_loop
          @ [
              (* copy a run: the IA-32 binary uses rep movsb; natively
                 compiled code copies the same 24 bytes word-wide *)
              a32 (Push (R Esi));
              a32 (Push (R Edi));
              A.mov_ri_lab Esi "src";
              A.mov_ri_lab Edi "out";
              a32 (Mov (S32, R Ecx, I (if wide then 6 else 24)));
              a32 Cld;
              a32 (Movs ((if wide then S32 else S8), Rep));
              a32 (Pop (R Edi));
              a32 (Pop (R Esi));
            ])
      @ []
    in
    let data =
      [ A.label "src"; A.raw (String.init 128 (fun i -> Char.chr (i * 7 land 0xFF)));
        A.label "dict"; A.space 4096; A.label "out"; A.space 64 ]
    in
    build_image code data
  in
  { name = "gzip"; build; paper_score = Some 86 }

(* vpr: place-and-route — cost evaluation with abs-differences, conditional
   accept via cmov, LCG randomness, light x87 cost accumulation. *)
let vpr =
  let build ~scale ~wide =
    let code =
      [ A.mov_ri_lab Esi "cells"; a32 (Mov (S32, R Eax, I 12345)); a32 (Fp Fldz) ]
      @ counted "anneal" Ebp (9000 * scale)
          (lcg_next
          @ [
              a32 (Mov (S32, R Ebx, R Eax));
              a32 (Alu (And, S32, R Ebx, I 255));
            ]
          @ [
              (* dx = x[i] - x[i+1]; cost += |dx| (cmov idiom) *)
              a32 (Mov (S32, R Ecx, M (mix Esi Ebx 4 0)));
              a32 (Alu (Sub, S32, R Ecx, M (mix Esi Ebx 4 4)));
            ]
          @ [
              a32 (Mov (S32, R Edx, R Ecx));
              a32 (Neg (S32, R Edx));
              a32 (Test (S32, R Ecx, R Ecx));
              a32 (Cmovcc (S, Ecx, R Edx));
              (* swap decision *)
              a32 (Alu (Cmp, S32, R Ecx, I 128));
              A.jcc A "reject";
              a32 (Mov (S32, R Edx, M (mix Esi Ebx 4 0)));
              a32 (Xchg (S32, M (mix Esi Ebx 4 4), Edx));
              a32 (Mov (S32, M (mix Esi Ebx 4 0), R Edx));
              A.label "reject";
            ]
          @ (if wide then
               (* the native compiler keeps the cost in an integer register
                  and converts to FP once outside the loop *)
               [ a32 (Alu (Add, S32, R Edi, R Ecx)) ]
             else
               (* the IA-32 binary accumulates in x87 via fild/faddp *)
               [
                 A.with_lab "fcost" (fun a -> Mov (S32, M (mem_abs a), R Ecx));
                 A.with_lab "fcost" (fun a -> Fp (Fild (I32, mem_abs a)));
                 a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
               ]))
      @ (if wide then
           [
             A.with_lab "fcost" (fun a -> Mov (S32, M (mem_abs a), R Edi));
             A.with_lab "fcost" (fun a -> Fp (Fild (I32, mem_abs a)));
             a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
           ]
         else [])
      @ [ A.with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, true))) ]
    in
    let data =
      [ A.label "cells"; A.space 1088; A.label "fcost"; A.space 4;
        A.label "out"; A.space 8 ]
    in
    build_image code data
  in
  { name = "vpr"; build; paper_score = Some 69 }

(* gcc: very large, flat code footprint with a big dispatch switch —
   indirect jumps dominate and most blocks stay cold (paper: 51%). *)
let gcc =
  let nfuncs = 96 in
  let build ~scale ~wide:_ =
    let case k =
      [
        A.label (Printf.sprintf "case%d" k);
        a32 (Alu (Add, S32, R Eax, I (k * 17)));
        a32 (Shift (Rol, S32, R Eax, Amt_imm (1 + (k mod 7))));
        a32 (Alu (Xor, S32, R Eax, I (k * 1299721)));
        a32 (Mov (S32, R Edx, R Eax));
        a32 (Shift (Shr, S32, R Edx, Amt_imm 3));
        a32 (Alu (Add, S32, R Eax, R Edx));
        A.jmp "dispatch_next";
      ]
    in
    let code =
      [ a32 (Mov (S32, R Eax, I 7)) ]
      @ counted_mem "dispatch" "ctr" (22000 * scale)
          ([
             a32 (Mov (S32, R Ebx, R Eax));
             a32 (Alu (And, S32, R Ebx, I (nfuncs - 1)));
             A.with_lab "table" (fun a ->
                 Jmp_ind (M { base = None; index = Some (Ebx, 4); disp = a }));
             A.label "dispatch_next";
           ])
      @ [ A.jmp "done" ]
      @ List.concat (List.init nfuncs case)
      @ [ A.label "done" ]
    in
    let data =
      (A.label "table" :: List.init nfuncs (fun k -> A.dd_lab (Printf.sprintf "case%d" k)))
      @ [ A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "gcc"; build; paper_score = Some 51 }

(* mcf: pointer chasing over a node pool whose footprint depends on the
   data model — the IA-32 (narrow) variant fits the caches better than the
   natively recompiled LP64 variant (paper: 104%, above native). *)
let mcf =
  let build ~scale ~wide =
    let nodes = 9500 in
    let stride = if wide then 24 else 16 in
    let code =
      [
        (* build a strided circular list: node[i].next = &node[(i+7919) mod n] *)
        A.mov_ri_lab Esi "pool";
        a32 (Mov (S32, R Ecx, I 0));
        A.label "init";
        a32 (Mov (S32, R Eax, R Ecx));
        a32 (Imul_rri (Eax, R Eax, stride));
        a32 (Mov (S32, R Ebx, R Ecx));
        a32 (Alu (Add, S32, R Ebx, I 7919));
        (* ebx mod nodes *)
        a32 (Mov (S32, R Edx, I 0));
        a32 (Push (R Eax));
        a32 (Mov (S32, R Eax, R Ebx));
        a32 (Mov (S32, R Ebx, I nodes));
        a32 (Div (S32, R Ebx));
        a32 (Mov (S32, R Ebx, R Edx));
        a32 (Pop (R Eax));
        a32 (Imul_rri (Ebx, R Ebx, stride));
        a32 (Alu (Add, S32, R Ebx, R Esi));
        a32 (Mov (S32, M (mix Esi Eax 1 0), R Ebx));
        a32 (Mov (S32, M (mix Esi Eax 1 4), R Ecx)); (* val *)
        a32 (Inc (S32, R Ecx));
        a32 (Alu (Cmp, S32, R Ecx, I nodes));
        A.jcc Ne "init";
        (* chase: accumulate vals *)
        a32 (Mov (S32, R Ebx, R Esi));
        a32 (Mov (S32, R Eax, I 0));
      ]
      @ counted_mem "chase" "ctr" (70000 * scale)
          [
            a32 (Alu (Add, S32, R Eax, M (md Ebx 4)));
            a32 (Mov (S32, R Ebx, M (m Ebx)));
          ]
    in
    let data =
      [ A.label "pool"; A.space (nodes * stride); A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "mcf"; build; paper_score = Some 104 }

(* crafty: chess bitboards — 64-bit logic. The IA-32 variant uses paired
   32-bit registers with adc/shld chains; the wide (native) variant does
   the same work with 64-bit MMX operations, which native hardware executes
   as single ALU ops (paper: 39%, the worst case). *)
let crafty =
  let build ~scale ~wide =
    let iters = 22000 * scale in
    let code =
      if wide then
        [
          A.with_lab "bb" (fun a -> Mmx (Movq_to_mm (0, MMem (mem_abs a))));
          A.with_lab "bb" (fun a -> Mmx (Movq_to_mm (1, MMem (mem_abs (a + 8)))));
        ]
        @ counted "bbloop" Ebp iters
            [
              a32 (Mmx (Padd (8, 0, MM 1)));
              a32 (Mmx (Pxor (1, MM 0)));
              a32 (Mmx (Psll (8, 0, 1)));
              a32 (Mmx (Por (0, MM 1)));
              a32 (Mmx (Psrl (8, 1, 3)));
              a32 (Mmx (Padd (8, 1, MM 0)));
            ]
        @ [
            A.with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs a), 0)));
            a32 (Mmx Emms);
          ]
      else
        [
          A.with_lab "bb" (fun a -> Mov (S32, R Eax, M (mem_abs a)));
          A.with_lab "bb" (fun a -> Mov (S32, R Ebx, M (mem_abs (a + 4))));
          A.with_lab "bb" (fun a -> Mov (S32, R Ecx, M (mem_abs (a + 8))));
          A.with_lab "bb" (fun a -> Mov (S32, R Edx, M (mem_abs (a + 12))));
        ]
        @ counted "bbloop" Ebp iters
            [
              (* 64-bit add: (ebx:eax) += (edx:ecx) *)
              a32 (Alu (Add, S32, R Eax, R Ecx));
              a32 (Alu (Adc, S32, R Ebx, R Edx));
              (* 64-bit xor *)
              a32 (Alu (Xor, S32, R Ecx, R Eax));
              a32 (Alu (Xor, S32, R Edx, R Ebx));
              (* 64-bit shl by 1 *)
              a32 (Shld (R Ebx, Eax, Amt_imm 1));
              a32 (Shift (Shl, S32, R Eax, Amt_imm 1));
              (* 64-bit or *)
              a32 (Alu (Or, S32, R Eax, R Ecx));
              a32 (Alu (Or, S32, R Ebx, R Edx));
              (* 64-bit shr by 3 *)
              a32 (Shrd (R Ecx, Edx, Amt_imm 3));
              a32 (Shift (Shr, S32, R Edx, Amt_imm 3));
              (* 64-bit add back *)
              a32 (Alu (Add, S32, R Ecx, R Eax));
              a32 (Alu (Adc, S32, R Edx, R Ebx));
            ]
        @ [
            A.with_lab "out" (fun a -> Mov (S32, M (mem_abs a), R Eax));
            A.with_lab "out" (fun a -> Mov (S32, M (mem_abs (a + 4)), R Ebx));
          ]
    in
    let data =
      [ A.label "bb"; A.dq 0x123456789ABCDEF0L; A.dq 0x0F0F0F0F33335555L;
        A.label "out"; A.space 8 ]
    in
    build_image code data
  in
  { name = "crafty"; build; paper_score = Some 39 }

(* parser: string tokenization — byte scans, class lookups, short calls.
   Straightforward code translates well (paper: 81%). *)
let parser =
  let build ~scale ~wide:_ =
    let code =
      counted_mem "sentence" "ctr" (3500 * scale)
        ([
           A.mov_ri_lab Esi "text";
           a32 (Mov (S32, R Ebx, I 0));
           A.label "token";
           (* skip spaces *)
           a32 (Movzx (S8, Eax, M (m Esi)));
           a32 (Test (S8, R Eax, R Eax));
           A.jcc E "sent_done";
           A.with_lab "class" (fun a ->
               Movzx (S8, Ecx, M { base = None; index = Some (Eax, 1); disp = a }));
           a32 (Alu (Add, S32, R Ebx, R Ecx));
           a32 (Inc (S32, R Esi));
           A.call "accept";
           A.jmp "token";
           A.label "sent_done";
         ]
        @ [])
      @ [ A.jmp "fin";
          A.label "accept";
          a32 (Shift (Rol, S32, R Ebx, Amt_imm 1));
          a32 (Alu (Xor, S32, R Ebx, R Ecx));
          a32 (Ret 0);
          A.label "fin" ]
    in
    let data =
      [ A.label "text"; A.raw "the quick brown fox jumps over the lazy dog ";
        A.db 0;
        A.label "ctr"; A.space 4;
        A.label "class" ]
      @ List.init 256 (fun k -> A.db (if k = 32 then 0 else 1 + (k land 7)))
    in
    build_image code data
  in
  { name = "parser"; build; paper_score = Some 81 }

(* eon: C++ ray tracing — virtual calls (indirect) around short FP-heavy
   methods; the indirect-branch tax keeps EL low (paper: 41%). *)
let eon =
  let build ~scale ~wide =
    let dispatch =
      if wide then
        (* the native compiler devirtualizes and inlines the small shader
           methods: a predictable branch tree, no calls at all *)
        [
          a32 (Mov (S32, R Ebx, R Eax));
          a32 (Alu (And, S32, R Ebx, I 3));
          a32 (Alu (Cmp, S32, R Ebx, I 2));
          A.jcc B "low01";
          A.jcc E "is2";
          (* shade3 inlined *)
          a32 (Fp Fld1);
          A.with_lab "v" (fun a -> Fp (Fop_m (FSub, F64, mem_abs (a + 8))));
          A.with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          A.jmp "disp_done";
          A.label "is2";
          (* shade2 inlined *)
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs a)));
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs (a + 8))));
          a32 (Fp (Fop_st_st0 (FMul, 1, true)));
          a32 (Fp Fabs);
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          A.jmp "disp_done";
          A.label "low01";
          a32 (Test (S32, R Ebx, R Ebx));
          A.jcc E "is0";
          (* shade1 inlined *)
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs (a + 8))));
          a32 (Fp (Fop_st0_st (FMul, 0)));
          A.with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          A.jmp "disp_done";
          A.label "is0";
          (* shade0 inlined *)
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs a)));
          a32 (Fp (Fop_st0_st (FMul, 0)));
          A.with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          A.label "disp_done";
        ]
      else
        [
          a32 (Mov (S32, R Ebx, R Eax));
          a32 (Alu (And, S32, R Ebx, I 3));
          (* virtual dispatch *)
          A.with_lab "vtbl" (fun a ->
              Call_ind (M { base = None; index = Some (Ebx, 4); disp = a }));
        ]
    in
    let code =
      [ a32 (Mov (S32, R Eax, I 99)) ]
      @ counted_mem "rays" "ctr" (9000 * scale) (lcg_next @ dispatch)
      @ [ A.jmp "eon_done";
          (* four "shaders": small x87 kernels *)
          A.label "shade0";
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs a)));
          a32 (Fp (Fop_st0_st (FMul, 0)));
          A.with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          a32 (Ret 0);
          A.label "shade1";
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs (a + 8))));
          a32 (Fp (Fop_st0_st (FMul, 0)));
          A.with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          a32 (Ret 0);
          A.label "shade2";
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs a)));
          A.with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs (a + 8))));
          a32 (Fp (Fop_st_st0 (FMul, 1, true)));
          a32 (Fp Fabs);
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          a32 (Ret 0);
          A.label "shade3";
          a32 (Fp Fld1);
          A.with_lab "v" (fun a -> Fp (Fop_m (FSub, F64, mem_abs (a + 8))));
          A.with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
          A.with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
          a32 (Ret 0);
          A.label "eon_done" ]
    in
    let data =
      [ A.label "vtbl"; A.dd_lab "shade0"; A.dd_lab "shade1"; A.dd_lab "shade2";
        A.dd_lab "shade3"; A.label "v"; A.df64 1.25; A.df64 3.5;
        A.label "acc"; A.df64 0.0; A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "eon"; build; paper_score = Some 41 }

(* perlbmk: interpreter loop — hashing, bucket chains, an opcode dispatch
   through a jump table (paper: 64%). *)
let perlbmk =
  let build ~scale ~wide =
    let hash =
      [
        (* hash step: h = h*33 ^ key[h & 63] *)
        a32 (Mov (S32, R Ebx, R Eax));
        a32 (Alu (And, S32, R Ebx, I 63));
        a32 (Movzx (S8, Ecx, M (mix Esi Ebx 1 0)));
        a32 (Mov (S32, R Edx, R Eax));
        a32 (Shift (Shl, S32, R Eax, Amt_imm 5));
        a32 (Alu (Add, S32, R Eax, R Edx));
        a32 (Alu (Xor, S32, R Eax, R Ecx));
        (* bucket probe *)
        a32 (Mov (S32, R Ebx, R Eax));
        a32 (Alu (And, S32, R Ebx, I 255));
        A.with_lab "buckets" (fun a ->
            Inc (S32, M { base = None; index = Some (Ebx, 4); disp = a }));
      ]
    in
    let dispatch =
      if wide then
        (* the native build uses a branch tree over the low opcode bits
           (the compiler's switch lowering for a tiny dense switch) *)
        [
          a32 (Mov (S32, R Ebx, R Eax));
          a32 (Alu (And, S32, R Ebx, I 7));
          a32 (Test (S32, R Ebx, I 4));
          A.jcc Ne "ophigh";
          a32 (Alu (Add, S32, R Edx, I 97));
          a32 (Shift (Ror, S32, R Edx, Amt_imm 1));
          A.jmp "op_next";
          A.label "ophigh";
          a32 (Alu (Xor, S32, R Edx, I 485));
          a32 (Shift (Ror, S32, R Edx, Amt_imm 3));
          A.jmp "op_next";
        ]
      else
        [
          (* opcode dispatch *)
          a32 (Mov (S32, R Ebx, R Eax));
          a32 (Alu (And, S32, R Ebx, I 7));
          A.with_lab "optab" (fun a ->
              Jmp_ind (M { base = None; index = Some (Ebx, 4); disp = a }));
        ]
    in
    let code =
      [ a32 (Mov (S32, R Eax, I 5381)); A.mov_ri_lab Esi "keys" ]
      @ counted_mem "ops" "ctr" (16000 * scale)
          (hash @ dispatch @ [ A.label "op_next" ])
      @ [ A.jmp "perl_done" ]
      @ List.concat
          (List.init 8 (fun k ->
               [
                 A.label (Printf.sprintf "op%d" k);
                 a32 (Alu ((if k mod 2 = 0 then Add else Xor), S32, R Edx, I (k * 97)));
                 a32 (Shift (Ror, S32, R Edx, Amt_imm ((k mod 5) + 1)));
                 A.jmp "op_next";
               ]))
      @ [ A.label "perl_done" ]
    in
    let data =
      [ A.label "keys";
        A.raw (String.init 64 (fun i -> Char.chr (97 + (i * 11 mod 26))));
        A.label "buckets"; A.space 1024;
        A.label "optab" ]
      @ List.init 8 (fun k -> A.dd_lab (Printf.sprintf "op%d" k))
      @ [ A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "perlbmk"; build; paper_score = Some 64 }

(* gap: computer algebra — multiword integer arithmetic: add/adc carry
   chains and 32x32->64 multiplies (paper: 62%). *)
let gap =
  let build ~scale ~wide =
    let words = 16 in
    let add_chain =
      if wide then
        (* native 64-bit limbs: half the iterations, no carry chaining
           through EFLAGS (modeled with 64-bit MMX adds) *)
        [
          a32 (Mov (S32, R Ecx, I 0));
          A.label "limb";
          a32 (Mmx (Movq_to_mm (0, MMem (mix Esi Ecx 8 0))));
          a32 (Mmx (Padd (8, 0, MMem (mix Edi Ecx 8 0))));
          a32 (Mmx (Movq_from_mm (MMem (mix Edi Ecx 8 0), 0)));
          a32 (Inc (S32, R Ecx));
          a32 (Alu (Cmp, S32, R Ecx, I (words / 2)));
          A.jcc Ne "limb";
        ]
      else
        [
          (* bigb += biga (multiword adc chain) *)
          a32 (Mov (S32, R Ecx, I 0));
          a32 (Alu (Cmp, S32, R Ecx, R Ecx)) (* clear CF *);
          A.label "limb";
          a32 (Mov (S32, R Eax, M (mix Esi Ecx 4 0)));
          a32 (Alu (Adc, S32, M (mix Edi Ecx 4 0), R Eax));
          a32 (Inc (S32, R Ecx));
          a32 (Alu (Cmp, S32, R Ecx, I words));
          A.jcc Ne "limb";
        ]
    in
    let code =
      [ A.mov_ri_lab Esi "biga"; A.mov_ri_lab Edi "bigb" ]
      @ counted_mem "mul" "ctr" (6500 * scale)
          (add_chain
          @ [
              (* one 32x32 -> 64 partial product folded in *)
              a32 (Mov (S32, R Eax, M (m Esi)));
              a32 (Mul1 (S32, M (m Edi)));
              a32 (Alu (Add, S32, M (md Edi 4), R Eax));
              a32 (Alu (Adc, S32, M (md Edi 8), R Edx));
            ])
    in
    let data =
      [ A.label "biga" ]
      @ List.init words (fun k -> A.dd (0x89ABCDE0 + k))
      @ [ A.label "bigb" ]
      @ List.init (words + 2) (fun k -> A.dd (0x13572468 + (k * 3)))
      @ [ A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "gap"; build; paper_score = Some 62 }

(* vortex: object database — structure copies (rep movsd), field updates,
   call-heavy manipulation (paper: 60%). *)
let vortex =
  let build ~scale ~wide:_ =
    let code =
      counted_mem "txn" "ctr" (8000 * scale)
        ([
           (* copy object from template *)
           A.mov_ri_lab Esi "template";
           A.mov_ri_lab Edi "obj";
           a32 (Mov (S32, R Ecx, I 12));
           a32 Cld;
           a32 (Movs (S32, Rep));
           A.call "update";
           A.call "update";
           A.call "index";
         ]
        @ [])
      @ [ A.jmp "vx_done";
          A.label "update";
          A.mov_ri_lab Ebx "obj";
          a32 (Inc (S32, M (md Ebx 0)));
          a32 (Mov (S32, R Eax, M (md Ebx 4)));
          a32 (Imul_rri (Eax, R Eax, 13));
          a32 (Alu (Add, S32, M (md Ebx 8), R Eax));
          a32 (Mov (S16, M (md Ebx 14), R Eax));
          a32 (Ret 0);
          A.label "index";
          A.mov_ri_lab Ebx "obj";
          a32 (Mov (S32, R Eax, M (md Ebx 8)));
          a32 (Alu (And, S32, R Eax, I 127));
          A.with_lab "idx" (fun a ->
              Inc (S32, M { base = None; index = Some (Eax, 4); disp = a }));
          a32 (Ret 0);
          A.label "vx_done" ]
    in
    let data =
      [ A.label "template" ]
      @ List.init 12 (fun k -> A.dd (k * 0x01010101))
      @ [ A.label "obj"; A.space 48; A.label "idx"; A.space 512;
          A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "vortex"; build; paper_score = Some 60 }

(* bzip2: block sorting — byte histograms and compare-heavy inner loops
   (paper: 74%). *)
let bzip2 =
  let build ~scale ~wide =
    let code =
      [ A.mov_ri_lab Esi "block" ]
      @ counted_mem "pass" "ctr" (900 * scale)
          ([
             (* histogram *)
             a32 (Mov (S32, R Ecx, I 0));
             A.label "hist";
             a32 (Movzx (S8, Eax, M (mix Esi Ecx 1 0)));
             A.with_lab "freq" (fun a ->
                 Inc (S32, M { base = None; index = Some (Eax, 4); disp = a }));
           ]
          @ (if wide then
               [
                 (* native: unrolled histogram, halved loop overhead *)
                 a32 (Movzx (S8, Eax, M (mix Esi Ecx 1 1)));
                 A.with_lab "freq" (fun a ->
                     Inc (S32, M { base = None; index = Some (Eax, 4); disp = a }));
                 a32 (Alu (Add, S32, R Ecx, I 2));
               ]
             else [ a32 (Inc (S32, R Ecx)) ])
          @ [
             a32 (Alu (Cmp, S32, R Ecx, I 96));
             A.jcc Ne "hist";
             (* bubble pass over 32 bytes *)
             a32 (Mov (S32, R Ecx, I 0));
             A.label "sortp";
             a32 (Movzx (S8, Eax, M (mix Esi Ecx 1 0)));
             a32 (Movzx (S8, Ebx, M (mix Esi Ecx 1 1)));
             a32 (Alu (Cmp, S32, R Eax, R Ebx));
             A.jcc Be "noswap";
             a32 (Mov (S8, M (mix Esi Ecx 1 0), R Ebx));
             a32 (Mov (S8, M (mix Esi Ecx 1 1), R Eax));
             A.label "noswap";
             a32 (Inc (S32, R Ecx));
             a32 (Alu (Cmp, S32, R Ecx, I 31));
             A.jcc Ne "sortp";
           ]
          @ [])
    in
    let data =
      [ A.label "block";
        A.raw (String.init 96 (fun i -> Char.chr ((i * 37 + 11) land 0x5F)));
        A.label "freq"; A.space 1024; A.label "ctr"; A.space 4 ]
    in
    build_image code data
  in
  { name = "bzip2"; build; paper_score = Some 74 }

(* twolf: standard-cell annealing — array updates, LCG random, conditional
   exchanges (paper: 76%). *)
let twolf =
  let build ~scale ~wide:_ =
    let code =
      [ A.mov_ri_lab Esi "grid"; a32 (Mov (S32, R Eax, I 777)) ]
      @ counted_mem "moves" "ctr" (16000 * scale)
          (lcg_next
          @ [
              a32 (Mov (S32, R Ebx, R Eax));
              a32 (Shift (Shr, S32, R Ebx, Amt_imm 7));
              a32 (Alu (And, S32, R Ebx, I 255));
              a32 (Mov (S32, R Ecx, M (mix Esi Ebx 4 0)));
              a32 (Mov (S32, R Edx, M (mix Esi Ebx 4 4)));
              a32 (Alu (Cmp, S32, R Ecx, R Edx));
              A.jcc Le "nomove";
              a32 (Mov (S32, M (mix Esi Ebx 4 0), R Edx));
              a32 (Mov (S32, M (mix Esi Ebx 4 4), R Ecx));
              A.label "nomove";
              a32 (Alu (Add, S32, M (mix Esi Ebx 4 8), R Ecx));
            ])
    in
    let data = [ A.label "grid"; A.space 2048; A.label "ctr"; A.space 4 ] in
    build_image code data
  in
  { name = "twolf"; build; paper_score = Some 76 }

let all = [ gzip; vpr; gcc; mcf; crafty; parser; eon; perlbmk; gap; vortex; bzip2; twolf ]
