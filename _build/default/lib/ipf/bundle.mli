(** IPF instruction bundles: three slots plus a template that fixes each
    slot's functional-unit kind, with stop bits delimiting instruction
    groups.

    Model deviations from real IPF (documented in DESIGN.md): stop bits
    are allowed after any slot (real templates restrict their positions),
    and [Movi] ([movl]) occupies one slot but is charged double width by
    the cost model (real MLX uses two slots). *)

type template = MII | MMI | MFI | MMF | MIB | MBB | BBB | MMB | MFB

val template_kinds : template -> Insn.unit_kind list
(** The three slot kinds of a template, in order. *)

val all_templates : template list
val template_name : template -> string

type t = {
  template : template;
  slots : Insn.t array;  (** length 3 *)
  stops : bool array;  (** length 3; [stops.(i)] ends a group after slot i *)
}

val kind_fits : slot:Insn.unit_kind -> insn:Insn.unit_kind -> bool
(** Whether an instruction of unit kind [insn] may occupy a slot of kind
    [slot]. ALU ([I]-kind) instructions also fit [M] slots, mirroring
    real A-type instructions; everything else needs its own kind. *)

exception Invalid of string

val check : t -> unit
(** Validate slot kinds against the template. @raise Invalid otherwise. *)

val nop_for : Insn.unit_kind -> Insn.t

val template_for : Insn.unit_kind list -> template option
(** First template (in {!all_templates} order) whose slots can hold the
    given kinds in order, or [None]. *)

val make : ?stop_end:bool -> Insn.t list -> t
(** Build a bundle from at most three instructions in program order,
    padding unused slots with nops of the slot's kind. A trailing stop is
    set when [stop_end].
    @raise Invalid if more than three instructions or no template fits. *)

val pp : Format.formatter -> t -> unit
