(* IPF bundles: three instruction slots plus a template that fixes the
   functional-unit kind of each slot, with stop bits delimiting instruction
   groups.

   Model deviations from real IPF (documented in DESIGN.md): stop bits are
   allowed after any slot (real templates restrict positions), and [Movi]
   (movl) occupies one slot but is charged double width by the cost model
   (real MLX uses two slots). *)

type template = MII | MMI | MFI | MMF | MIB | MBB | BBB | MMB | MFB

let template_kinds = function
  | MII -> Insn.[ M; I; I ]
  | MMI -> Insn.[ M; M; I ]
  | MFI -> Insn.[ M; F; I ]
  | MMF -> Insn.[ M; M; F ]
  | MIB -> Insn.[ M; I; B ]
  | MBB -> Insn.[ M; B; B ]
  | BBB -> Insn.[ B; B; B ]
  | MMB -> Insn.[ M; M; B ]
  | MFB -> Insn.[ M; F; B ]

let all_templates = [ MII; MMI; MFI; MMF; MIB; MBB; BBB; MMB; MFB ]

let template_name = function
  | MII -> "MII" | MMI -> "MMI" | MFI -> "MFI" | MMF -> "MMF" | MIB -> "MIB"
  | MBB -> "MBB" | BBB -> "BBB" | MMB -> "MMB" | MFB -> "MFB"

type t = {
  template : template;
  slots : Insn.t array; (* length 3 *)
  stops : bool array; (* length 3; stops.(i) ends a group after slot i *)
}

(* A unit kind may occupy a slot: ALU (I-kind) instructions also fit M slots
   (real A-type instructions), but true M-unit operations need an M slot. *)
let kind_fits ~slot ~insn =
  match (slot, insn) with
  | Insn.M, Insn.M | Insn.I, Insn.I | Insn.F, Insn.F | Insn.B, Insn.B -> true
  | Insn.M, Insn.I -> true (* A-type: ALU goes in M or I *)
  | _ -> false

exception Invalid of string

let check b =
  let kinds = template_kinds b.template in
  if Array.length b.slots <> 3 || Array.length b.stops <> 3 then
    raise (Invalid "bundle must have 3 slots");
  List.iteri
    (fun i k ->
      let u = Insn.unit_of b.slots.(i).Insn.sem in
      let ok =
        match b.slots.(i).Insn.sem with
        | Insn.Nop _ -> true (* nops are re-typed to the slot *)
        | _ -> kind_fits ~slot:k ~insn:u
      in
      if not ok then
        raise
          (Invalid
             (Printf.sprintf "slot %d of %s cannot hold %s" i
                (template_name b.template)
                (Insn.to_string b.slots.(i)))))
    kinds

let nop_for kind = Insn.mk (Insn.Nop kind)

(* Choose a template for three unit kinds; returns None if no template
   fits. *)
let template_for kinds =
  let fits t =
    List.for_all2 (fun slot insn -> kind_fits ~slot ~insn) (template_kinds t) kinds
  in
  List.find_opt fits all_templates

(* Make a bundle from at most 3 instructions in program order, padding with
   nops. For each template we greedily place the instructions left to right
   in the first slots they fit, keeping their order; unused slots become
   nops of the slot's kind. A trailing stop is placed when [stop_end]. *)
let make ?(stop_end = false) insns =
  if List.length insns > 3 then raise (Invalid "more than 3 instructions");
  let try_template t =
    let kinds = Array.of_list (template_kinds t) in
    let slots = Array.init 3 (fun i -> nop_for kinds.(i)) in
    let rec place slot = function
      | [] -> Some slots
      | insn :: rest ->
        if slot >= 3 then None
        else if kind_fits ~slot:kinds.(slot) ~insn:(Insn.unit_of insn.Insn.sem)
        then begin
          slots.(slot) <- insn;
          place (slot + 1) rest
        end
        else place (slot + 1) (insn :: rest)
    in
    place 0 insns |> Option.map (fun slots -> (t, slots))
  in
  let rec first = function
    | [] -> raise (Invalid "no template for instruction kinds")
    | t :: rest -> ( match try_template t with Some r -> r | None -> first rest)
  in
  let template, slots = first all_templates in
  let stops = Array.make 3 false in
  if stop_end then stops.(2) <- true;
  let b = { template; slots; stops } in
  check b;
  b

let pp ppf b =
  Fmt.pf ppf "{ .%s" (template_name b.template);
  Array.iteri
    (fun i s ->
      Fmt.pf ppf "@ %a%s" Insn.pp s (if b.stops.(i) then " ;;" else ""))
    b.slots;
  Fmt.pf ppf " }"
