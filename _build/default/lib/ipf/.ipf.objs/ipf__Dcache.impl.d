lib/ipf/dcache.ml: Array
