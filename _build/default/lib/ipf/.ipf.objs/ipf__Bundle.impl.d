lib/ipf/bundle.ml: Array Fmt Insn List Option Printf
