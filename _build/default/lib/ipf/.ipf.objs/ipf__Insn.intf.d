lib/ipf/insn.mli: Format
