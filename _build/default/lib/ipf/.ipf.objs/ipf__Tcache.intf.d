lib/ipf/tcache.mli: Bundle Insn
