lib/ipf/cost.ml:
