lib/ipf/bundle.mli: Format Insn
