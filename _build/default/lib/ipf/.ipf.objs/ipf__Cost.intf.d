lib/ipf/cost.mli:
