lib/ipf/tcache.ml: Array Bundle Insn List Printf
