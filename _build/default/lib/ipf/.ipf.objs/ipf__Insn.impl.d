lib/ipf/insn.ml: Fmt Option Printf
