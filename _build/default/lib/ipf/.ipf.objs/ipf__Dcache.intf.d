lib/ipf/dcache.mli:
