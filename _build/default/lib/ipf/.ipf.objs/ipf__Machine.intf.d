lib/ipf/machine.mli: Cost Dcache Hashtbl Ia32 Insn Tcache
