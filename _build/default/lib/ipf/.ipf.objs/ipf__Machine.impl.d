lib/ipf/machine.ml: Array Bundle Cost Dcache Float Hashtbl Ia32 Insn Int64 List Printf String Sys Tcache
