(** Hot code generation (paper §2): the optimizing second phase.

    A hot session selects a trace of basic blocks along the profiled hot
    path (following taken-edge counters, if-converting small diamonds,
    optionally unrolling inner loops), translates it with the shared
    {!Templates} into commit-delimited regions, runs lazy EFLAGS
    materialization, schedules each region for the wide in-order
    machine — with control- and data-speculative load hoisting: a plain
    load below an exit branch becomes [ld.s] (free to hoist, faults
    deferred to the NaT bit) with a [chk.s] at its original position,
    and a load below a store becomes [ld.sa]/[chk.a] (the ALAT catches
    aliasing) — renames virtual registers into the hot pool (extending
    lifetimes over backward branches), and emits side-exit stubs that
    flush pending flag state ("sideways" exits).

    Precise exceptions: hot code writes canonic registers in place, but
    backs up each canonic register's region-start value into a pinned
    scratch register at the top of every commit region — before anything
    that can fault — so the engine can restore the region start and
    roll forward with the interpreter ({!Reconstruct.apply_commit}). *)

type profile = {
  use_count : int -> int;  (** block entry address -> executions *)
  taken_count : int -> int;  (** block entry address -> taken edges *)
  misaligned : int -> int -> bool;  (** block entry, access index *)
}
(** Profile data the engine exposes from the cold instrumentation. *)

val translate :
  Cold.env ->
  entry:int ->
  entry_tos:int ->
  profile:profile ->
  avoid:bool ->
  Block.t option
(** Build one hot block. [avoid] forces misalignment avoidance on every
    access (stage 3 after a late-misalignment discard). Retries with
    progressively smaller trace limits under register pressure; returns
    [None] when even the smallest shape cannot be translated (the block
    stays cold). *)
