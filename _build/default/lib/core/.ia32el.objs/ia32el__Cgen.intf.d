lib/core/cgen.mli: Ipf
