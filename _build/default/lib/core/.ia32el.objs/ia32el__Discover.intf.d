lib/core/discover.mli: Hashtbl Ia32
