lib/core/reconstruct.ml: Array Block Float Ia32 Int64 Ipf List Regs Templates
