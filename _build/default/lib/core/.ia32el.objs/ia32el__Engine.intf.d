lib/core/engine.mli: Account Block Btlib Cold Config Hashtbl Ia32 Ipf
