lib/core/templates.mli: Config Fpmap Hashtbl Ia32 Ipf
