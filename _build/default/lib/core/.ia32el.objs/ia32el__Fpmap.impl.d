lib/core/fpmap.ml: Array List Regs
