lib/core/account.mli: Format Ipf
