lib/core/regs.mli: Ia32
