lib/core/block.mli: Fpmap Hashtbl Ia32 Ipf
