lib/core/account.ml: Array Float Fmt Ipf
