lib/core/cold.ml: Account Array Block Cgen Config Discover Fpmap Hashtbl Ia32 Int64 Ipf List Regs Templates
