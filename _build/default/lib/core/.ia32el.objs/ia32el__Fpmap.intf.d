lib/core/fpmap.mli:
