lib/core/templates.ml: Array Config Float Fpmap Hashtbl Ia32 Int64 Ipf List Option Regs
