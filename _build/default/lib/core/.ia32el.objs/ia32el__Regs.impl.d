lib/core/regs.ml: Ia32
