lib/core/reconstruct.mli: Block Ia32 Ipf
