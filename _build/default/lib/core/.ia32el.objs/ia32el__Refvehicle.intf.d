lib/core/refvehicle.mli: Btlib Ia32
