lib/core/cgen.ml: Array Hashtbl Ipf List
