lib/core/refvehicle.ml: Btlib Ia32
