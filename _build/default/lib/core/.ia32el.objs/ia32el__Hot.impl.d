lib/core/hot.ml: Account Array Block Cgen Cold Config Discover Fpmap Hashtbl Ia32 Int64 Ipf List Option Printf Regs Templates
