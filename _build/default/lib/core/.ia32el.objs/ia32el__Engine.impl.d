lib/core/engine.ml: Account Array Block Btlib Cold Config Hashtbl Hot Ia32 Ipf List Option Printf Reconstruct Regs Sys Templates
