lib/core/cold.mli: Account Block Config Ia32 Ipf
