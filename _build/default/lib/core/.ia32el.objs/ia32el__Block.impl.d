lib/core/block.ml: Array Fpmap Hashtbl Ia32 Ipf List
