lib/core/config.ml:
