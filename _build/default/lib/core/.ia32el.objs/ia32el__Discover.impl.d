lib/core/discover.ml: Array Hashtbl Ia32 List Queue
