lib/core/config.mli:
