lib/core/hot.mli: Block Cold
