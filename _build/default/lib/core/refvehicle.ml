(* Reference execution vehicle: runs a guest directly on the golden-model
   interpreter with system services through the same BTLib/Vos stack the
   translator uses. Used for differential testing of IA-32 EL and as the
   semantic engine of the baseline performance models. *)

type outcome =
  | Exited of int * Ia32.State.t
  | Unhandled_fault of Ia32.Fault.t * Ia32.State.t
  | Out_of_fuel

(* Run until exit / unhandled fault / fuel. Returns the outcome and the
   number of retired IA-32 instructions. *)
let run ?(fuel = max_int) ~btlib vos (st : Ia32.State.t) =
  let module L = (val btlib : Btlib.Btos.S) in
  let steps = ref 0 in
  let rec go () =
    if !steps >= fuel then Out_of_fuel
    else
      match Ia32.Interp.step st with
      | Ia32.Interp.Normal ->
        incr steps;
        go ()
      | Ia32.Interp.Syscall n ->
        incr steps;
        if n <> L.syscall_vector then deliver Ia32.Fault.Breakpoint
        else begin
          let call = L.decode_syscall st in
          match L.perform vos st call with
          | Btlib.Syscall.Exited code -> Exited (code, st)
          | Btlib.Syscall.Ret v ->
            L.encode_result st v;
            go ()
        end
      | Ia32.Interp.Faulted f -> deliver f
  and deliver f =
    match L.deliver_exception vos st f with
    | Btlib.Vos.Resumed -> go ()
    | Btlib.Vos.Unhandled fault -> Unhandled_fault (fault, st)
  in
  let outcome = go () in
  (outcome, !steps)
