(** The IA-32 EL engine: the runtime that owns the translation cache,
    dispatches between translated blocks, reacts to every exit reason
    and machine fault, and drives both translation phases.

    Responsibilities (paper §2):
    - dispatch and block chaining (patching exit branches into direct
      block-to-block branches), plus the fast lookup path for indirect
      branches;
    - the heat machinery: cold-block use counters trigger registration,
      enough registrations start a hot-translation session;
    - precise exceptions: reconstruction at the state register (cold) or
      the covering commit point plus interpreter roll-forward (hot),
      filtering of speculative faults, delivery to guest handlers;
    - the three-stage misalignment machinery's runtime side
      (stage-1 regeneration exits, stage-3 discards, OS-priced traps);
    - FP/MMX/SSE speculation-miss recoveries;
    - self-modifying code: write-watch on source pages, invalidation,
      precise restart when a block modifies itself;
    - system services through the BTLib, with kernel/idle time folded
      into the accounting. *)

type outcome =
  | Exited of int * Ia32.State.t  (** exit code, final precise state *)
  | Unhandled_fault of Ia32.Fault.t * Ia32.State.t
  | Out_of_fuel

type t = {
  config : Config.t;
  mem : Ia32.Memory.t;
  tcache : Ipf.Tcache.t;
  cache : Block.cache;
  acct : Account.t;
  machine : Ipf.Machine.t;
  vos : Btlib.Vos.t;
  btlib : (module Btlib.Btos.S);
  cold_env : Cold.env;
  mutable candidates : int list;  (** registered cold block ids *)
  stage2_entries : (int, unit) Hashtbl.t;
      (** entries to (re)generate with stage-2 avoidance *)
  avoid_entries : (int, unit) Hashtbl.t;
      (** entries whose hot regeneration uses full avoidance (stage 3) *)
  mutable smc_pending : Block.t list;
  mutable running_block : Block.t option;
  if_counts : (int, int ref) Hashtbl.t;  (** interpret-first profile *)
  if_taken : (int, int ref) Hashtbl.t;
  mutable fuel : int;
}

exception Smc_abort
(** Internal: the currently running block modified its own source bytes;
    unwind to the engine for precise restart. *)

val create :
  ?config:Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  btlib:(module Btlib.Btos.S) ->
  Ia32.Memory.t ->
  t
(** Create an engine over guest memory. Performs the BTOS version
    handshake with the BTLib ({!Btlib.Btos.init}) and installs the
    write-watch used for SMC detection.
    @raise Btlib.Btos.Version_mismatch when the handshake fails. *)

val run : ?fuel:int -> t -> Ia32.State.t -> outcome
(** Execute the guest from a precise IA-32 state until it exits, dies on
    an unhandled fault, or exhausts [fuel] (simulated machine slots). *)

val distribution : t -> Account.distribution
(** Final execution-time distribution (Figures 6/7). *)

val capture : t -> Ia32.State.t
(** Snapshot the current architectural state (block-boundary
    precision). *)
