(** Static x87 stack tracking during translation of one block (paper
    §4.3).

    The block speculates that the top-of-stack (TOS) it saw at
    translation time holds for every entry, so ST(i) maps to a fixed IPF
    FP register throughout the block body — no rotation, no memory.
    FXCHG is eliminated by permuting the static map instead of emitting
    copies; the permutation is materialized with real moves only if it
    is not the identity at block exit (compiled code's FXCH pairs
    usually cancel).

    The tracker also accumulates the entry assumptions (which physical
    slots must be Valid / Empty) for the block-head TAG check, and the
    net TOS/TAG effect for the block-exit status update.

    Terminology: an {e architectural slot} is the x86 physical register
    number (0-7) that TAG bits and MMX aliasing refer to; the {e IPF
    slot} is where the value lives after FXCHG permutation. Validity is
    always tracked per architectural slot. *)

type t = {
  entry_tos : int;  (** speculated TOS at entry *)
  mutable vtos : int;  (** current virtual TOS (0-7) *)
  map : int array;  (** architectural slot -> IPF slot (FXCHG) *)
  mutable need_valid : int;  (** slots that must be Valid at entry *)
  mutable need_empty : int;
  mutable known_valid : int;  (** slots known Valid at this point *)
  mutable known_empty : int;
  mutable written : int;  (** slots written by this block *)
  mutable writes_cc : bool;  (** block writes the FP condition codes *)
  mutable used : bool;  (** any x87 instruction translated *)
}

exception Static_fault
(** The block's own code is statically guaranteed to stack-fault (e.g.
    pops more than it pushes against its own pushes); translation bails
    out and lets the runtime interpret to raise the precise fault. *)

val create : entry_tos:int -> t

val slot_of_st : t -> int -> int
(** Architectural slot of ST(i) at the current virtual TOS. *)

val phys_of_st : t -> int -> int
(** IPF slot of ST(i) under the FXCHG permutation. *)

val fr_of_st : t -> int -> int
(** IPF FP register holding ST(i). *)

val read : t -> int -> int
(** Record a read of ST(i) (must be Valid; recorded as an entry
    assumption when unknown) and return its FR.
    @raise Static_fault when the slot is known Empty. *)

val write : t -> int -> int
(** A write to an already-allocated ST(i), like [FST st(i)]. *)

val push : t -> int
(** Push: the new top slot must be Empty; returns the FR of ST(0). *)

val pop : t -> unit
val free : t -> int -> unit
(** [FFREE]: mark ST(i) Empty without a pop. *)

val fxch : t -> int -> unit
(** Eliminate an FXCH by swapping the static map of ST(0) and ST(i). *)

val incstp : t -> unit
val decstp : t -> unit

val tos_delta : t -> int
(** Net TOS delta of the block (exit = entry + delta, mod 8). *)

val tag_updates : t -> int * int
(** TAG masks the block applies at exit: (set_valid, set_empty). *)

val exit_permutation : t -> int list list
(** Moves needed at block exit to restore the identity permutation, as
    cycles over IPF slots (empty when the block's FXCHs cancelled). *)

val copy : t -> t
(** Structural copy, for emitting side-exit stubs from mid-trace state. *)
