(** Code discovery: decoding basic blocks around a translation entry and
    running the EFLAGS liveness analysis over the neighbourhood (paper
    §2: the cold translator analyses "up to 20 blocks" around each entry
    to avoid computing dead flag values). *)

(** Coarse instruction class, used to split blocks whose mixture would
    break the block-level x87/MMX mode speculation. *)
type insn_class = C_int | C_fpu | C_mmx | C_sse

val class_of : Ia32.Insn.insn -> insn_class

val class_conflict : insn_class -> insn_class -> bool
(** Only the x87/MMX pair conflicts: a block must be all-FP or all-MMX. *)

type terminator =
  | T_jmp of int
  | T_jcc of Ia32.Insn.cond * int * int  (** cond, taken, fallthrough *)
  | T_call of int * int  (** target, return address *)
  | T_indirect  (** indirect jmp/call or ret *)
  | T_syscall of int * int  (** vector, next ip *)
  | T_fault  (** hlt/ud2: always faults *)
  | T_fallthrough of int  (** block split: falls into next address *)

type bb = {
  start : int;
  insns : (int * Ia32.Insn.insn) array;  (** (address, instruction) *)
  term : terminator;
  next : int;  (** address after the last instruction *)
}

val max_bb_insns : int

val decode_bb : Ia32.Memory.t -> int -> bb
(** Decode one basic block. Raises [Decode.Invalid] / [Fault.Fault] only
    for bad bytes at the {e first} instruction; later bad bytes end the
    block with [T_fault] (reached only if actually executed). *)

val succs : bb -> int list
(** Direct (statically known) successors. *)

type region = { entry : int; blocks : (int, bb) Hashtbl.t }

val discover : ?max_blocks:int -> Ia32.Memory.t -> entry:int -> region
(** BFS over direct successors up to [max_blocks] basic blocks. *)

(** {1 EFLAGS liveness} *)

val flag_bit : Ia32.Insn.flag -> int
val mask_of_flags : Ia32.Insn.flag list -> int
val all_flags_mask : int

val flags_liveness : region -> (int, int) Hashtbl.t
(** Per-instruction liveness-out of the 7 EFLAGS bits, as a map from
    instruction address to bitmask. Unknown successors (indirect,
    syscalls, region boundary, calls) are treated as all-live. The kill
    set is {!Ia32.Insn.flags_def_must} — flags an instruction only
    {e may} define (CL shifts with a possibly-zero count) stay live. *)

val flags_to_set : (int, int) Hashtbl.t -> int -> Ia32.Insn.insn -> Ia32.Insn.flag list
(** Flags an instruction must actually materialize: its definitions that
    are live-out. *)
