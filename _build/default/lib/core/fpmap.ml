(* Static x87 stack tracking during translation of one block (paper §5).

   The block speculates that the top-of-stack (TOS) it saw at translation
   time holds for every entry, so ST(i) maps to a fixed IPF FP register
   throughout the block body — no rotation, no memory. FXCHG is eliminated
   by permuting the static map instead of emitting copies; the permutation
   is materialized with real moves only if it is not the identity at block
   exit (compiled code's fxch pairs usually cancel).

   The tracker also accumulates the entry assumptions (which physical
   registers must be Valid / Empty) for the block-head TAG check, and the
   net TOS/TAG effect for the block-exit status update. *)

type t = {
  entry_tos : int; (* speculated TOS at entry *)
  mutable vtos : int; (* current virtual TOS (0-7) *)
  map : int array; (* logical slot -> physical slot (FXCHG elimination) *)
  mutable need_valid : int; (* physical regs that must be Valid at entry *)
  mutable need_empty : int; (* physical regs that must be Empty at entry *)
  mutable known_valid : int; (* physical regs known Valid here *)
  mutable known_empty : int;
  mutable written : int; (* physical regs written by this block *)
  mutable writes_cc : bool; (* block writes the FP condition codes *)
  mutable used : bool; (* any x87 instruction translated *)
}

exception Static_fault
(* The block's own code is statically guaranteed to stack-fault (e.g. pops
   more than it pushes against its own pushes); translation bails out and
   lets the runtime interpret to raise the precise fault. *)

let create ~entry_tos =
  {
    entry_tos;
    vtos = entry_tos land 7;
    map = Array.init 8 (fun i -> i);
    need_valid = 0;
    need_empty = 0;
    known_valid = 0;
    known_empty = 0;
    written = 0;
    writes_cc = false;
    used = false;
  }

let bit i = 1 lsl (i land 7)

(* Architectural x87 slot of ST(i) (the x86 "physical register" number that
   TAG bits and MMX aliasing refer to). *)
let slot_of_st t i = (t.vtos + i) land 7

(* Physical *IPF FP register* slot of ST(i) under the FXCHG permutation. *)
let phys_of_st t i = t.map.(slot_of_st t i)

(* FP register holding ST(i). *)
let fr_of_st t i = Regs.fr_of_phys (phys_of_st t i)

(* A read of ST(i): the slot must be Valid — at entry if we know nothing
   about it yet. All TAG/validity tracking is per architectural slot. *)
let read t i =
  t.used <- true;
  let p = bit (slot_of_st t i) in
  if t.known_empty land p <> 0 then raise Static_fault;
  if t.known_valid land p = 0 then begin
    t.need_valid <- t.need_valid lor p;
    t.known_valid <- t.known_valid lor p
  end;
  fr_of_st t i

(* A write to ST(i) (the slot must already be allocated, like FST st(i)). *)
let write t i =
  t.used <- true;
  let p = bit (slot_of_st t i) in
  if t.known_empty land p <> 0 then raise Static_fault;
  if t.known_valid land p = 0 then begin
    t.need_valid <- t.need_valid lor p;
    t.known_valid <- t.known_valid lor p
  end;
  t.written <- t.written lor p;
  fr_of_st t i

(* Push: the new top slot must be Empty (at entry, unless freed locally). *)
let push t =
  t.used <- true;
  t.vtos <- (t.vtos - 1) land 7;
  let p = bit (slot_of_st t 0) in
  if t.known_valid land p <> 0 then raise Static_fault;
  if t.known_empty land p = 0 then t.need_empty <- t.need_empty lor p;
  t.known_empty <- t.known_empty land lnot p;
  t.known_valid <- t.known_valid lor p;
  t.written <- t.written lor p;
  fr_of_st t 0

(* Pop: frees the top slot (which a read will already have validated). *)
let pop t =
  t.used <- true;
  let p = bit (slot_of_st t 0) in
  if t.known_empty land p <> 0 then raise Static_fault;
  if t.known_valid land p = 0 then t.need_valid <- t.need_valid lor p;
  t.known_valid <- t.known_valid land lnot p;
  t.known_empty <- t.known_empty lor p;
  t.vtos <- (t.vtos + 1) land 7

let free t i =
  t.used <- true;
  let p = bit (slot_of_st t i) in
  t.known_valid <- t.known_valid land lnot p;
  t.known_empty <- t.known_empty lor p

(* FXCHG elimination: swap the static mapping of ST(0) and ST(i); both must
   be valid (that is the fault condition FXCH checks). *)
let fxch t i =
  t.used <- true;
  ignore (read t 0);
  ignore (read t i);
  let a = slot_of_st t 0 and b = slot_of_st t i in
  let tmp = t.map.(a) in
  t.map.(a) <- t.map.(b);
  t.map.(b) <- tmp

let incstp t =
  t.used <- true;
  t.vtos <- (t.vtos + 1) land 7

let decstp t =
  t.used <- true;
  t.vtos <- (t.vtos - 1) land 7

(* Net TOS delta of the block (exit TOS = entry TOS + delta mod 8). *)
let tos_delta t = (t.vtos - t.entry_tos) land 7

(* TAG updates the block performs at exit: (set_valid_mask, set_empty_mask)
   over physical slots. Setting an already-valid bit is harmless, so these
   are simply the final known sets. *)
let tag_updates t = (t.known_valid, t.known_empty)

(* Moves needed at block exit to restore the identity FXCHG permutation:
   list of cycles over physical slots. *)
let exit_permutation t =
  let visited = Array.make 8 false in
  let cycles = ref [] in
  for s = 0 to 7 do
    if (not visited.(s)) && t.map.(s) <> s then begin
      let cyc = ref [] in
      let cur = ref s in
      while not visited.(!cur) do
        visited.(!cur) <- true;
        cyc := !cur :: !cyc;
        cur := t.map.(!cur)
      done;
      cycles := List.rev !cyc :: !cycles
    end
  done;
  !cycles

(* Structural copy, for emitting side-exit stubs from a mid-trace state. *)
let copy t = { t with map = Array.copy t.map }
