(** Cold code generation (paper §2, Figure 1).

    Basic-block granularity with neighbourhood analysis for EFLAGS
    liveness, template-based emission with per-instruction stops (no
    reordering), instrumentation (use counter with heat trigger,
    taken-edge counter, stage-1/2 misalignment machinery), the IA-32
    state-register protocol for precise exceptions, and block-head
    speculation checks for x87/MMX/SSE state. *)

type env = {
  config : Config.t;
  tcache : Ipf.Tcache.t;
  cache : Block.cache;
  mem : Ia32.Memory.t;
  acct : Account.t;
}
(** Everything a translation session needs; shared with {!Hot}. *)

exception Cannot_translate of int
(** Raised with the entry address when its bytes are undecodable or
    unfetchable; the engine falls back to the interpreter. *)

val translate : env -> entry:int -> entry_tos:int -> stage2:bool -> Block.t
(** Translate one cold block. [entry_tos] is the runtime TOS observed at
    translation time (the x87 speculation); [stage2] selects the
    regenerated misalignment-avoiding variant with per-access profile
    recording. The block is lowered into the translation cache but not
    yet registered in the block cache.
    @raise Cannot_translate on undecodable entries. *)
