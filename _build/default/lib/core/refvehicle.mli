(** The reference execution vehicle: the golden-model interpreter wired
    to the virtual OS.

    Differential tests run every program through this and through the
    translator ({!Engine}); final states, memory and exception behaviour
    must match. It is also the engine's fallback for roll-forward and
    for instructions the translator chooses not to translate. *)

type outcome =
  | Exited of int * Ia32.State.t
  | Unhandled_fault of Ia32.Fault.t * Ia32.State.t
  | Out_of_fuel

val run :
  ?fuel:int -> btlib:Btlib.Btos.btlib -> Btlib.Vos.t -> Ia32.State.t -> outcome * int
(** Interpret until exit, unhandled fault, or [fuel] instructions.
    Returns the outcome and the number of retired IA-32 instructions. *)
