lib/harness/figures.mli:
