lib/harness/figures.ml: Float Ia32el Ipf List Workloads
