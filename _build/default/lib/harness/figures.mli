(** Drivers that regenerate every table and figure of the paper's
    evaluation (DESIGN.md §3).

    Absolute cycle counts come from our simulated Itanium, so the claims
    under test are the {e shapes}: who wins, by roughly what factor, and
    where the crossovers fall. EXPERIMENTS.md records paper-vs-measured
    for each. *)

type fig5_row = {
  name : string;
  el_cycles : int;
  native_cycles : int;
  score : float;  (** EL/native performance, percent (higher = better) *)
  paper : int option;  (** the paper's Figure 5 value *)
}

val fig5 : ?scale:int -> unit -> fig5_row list * float
(** Figure 5: SPEC CPU2000 INT scores for IA-32 EL relative to native
    Itanium (native = 100). Returns the rows and the geometric mean. *)

val fig6 : ?scale:int -> unit -> float * float * float * float * float
(** Figure 6: execution-time distribution over the translated SPEC
    suite, as (hot, cold, overhead, other, idle) percentages. Paper:
    roughly 95/3/1/1. *)

val fig7 : ?scale:int -> unit -> float * float * float * float * float
(** Figure 7: the same distribution for the Sysmark-style interactive
    workload. Paper: roughly 46/5/12/22/15 — much less time in
    translated code, much more in kernel and idle. *)

type fig8_row = { suite : string; ratio : float; paper8 : float }

val fig8 : ?scale:int -> unit -> fig8_row list
(** Figure 8: IA-32 EL on a 1.5 GHz Itanium 2 vs a 1.6 GHz Xeon,
    relative wall-clock performance in percent (higher = EL faster).
    Paper: INT 105.0, FP 132.6, Sysmark 98.9. *)

val misalign_anecdote : ?scale:int -> unit -> int * int
(** §4.5 anecdote: (cycles without, cycles with) the misalignment
    machinery on the packed-record server kernel. Paper: 1236 s vs
    133 s, about 9.3x. *)

(** The scalar statistics quoted in §2 and §5, with the paper's values
    in the comments. *)
type stats = {
  cold_block_insns : float;  (** paper: 4-5 *)
  hot_block_insns : float;  (** paper: ~20 *)
  pct_blocks_heated : float;  (** paper: 5-10% *)
  hot_cold_overhead_ratio : float;  (** paper: ~20x per instruction *)
  native_insns_per_commit : float;  (** paper: ~10 *)
  hot_time_pct : float;  (** paper: ~95% on SPEC *)
  spec_checks : int;  (** dynamic TOS/TAG/mode/SSE check executions *)
  spec_misses : int;
  spec_success : float;  (** paper: 99-100% *)
}

val stats : ?scale:int -> unit -> stats
