(* Drivers that regenerate every table and figure of the paper's
   evaluation (DESIGN.md §3). Absolute cycle counts come from our
   simulated Itanium, so the claims under test are the *shapes*: who wins,
   by roughly what factor, and where the crossovers are. *)

module B = Workloads.Baselines

type fig5_row = {
  name : string;
  el_cycles : int;
  native_cycles : int;
  score : float; (* EL / native performance, percent (higher better) *)
  paper : int option;
}

(* Figure 5: SPEC CPU2000 INT scores for IA-32 EL relative to native
   Itanium (native = 100%). *)
let fig5 ?(scale = 1) () =
  let rows =
    List.map
      (fun w ->
        let el = B.run_el w ~scale in
        let native = B.run_native w ~scale in
        {
          name = w.Workloads.Common.name;
          el_cycles = el.B.cycles;
          native_cycles = native.B.cycles;
          score = 100.0 *. Float.of_int native.B.cycles /. Float.of_int el.B.cycles;
          paper = w.Workloads.Common.paper_score;
        })
      Workloads.Spec_int.all
  in
  let geomean =
    let logs = List.fold_left (fun acc r -> acc +. Float.log r.score) 0.0 rows in
    Float.exp (logs /. Float.of_int (List.length rows))
  in
  (rows, geomean)

(* Figure 6: execution-time distribution for translated SPEC applications
   (paper: hot 95 / cold 3 / overhead 1 / other 1). *)
let fig6 ?(scale = 1) () =
  let totals = ref (0, 0, 0, 0, 0) in
  List.iter
    (fun w ->
      let r = B.run_el w ~scale in
      match r.B.distribution with
      | Some d ->
        let h, c, o, x, i = !totals in
        totals :=
          ( h + d.Ia32el.Account.hot,
            c + d.Ia32el.Account.cold,
            o + d.Ia32el.Account.overhead,
            x + d.Ia32el.Account.other,
            i + d.Ia32el.Account.idle )
      | None -> ())
    Workloads.Spec_int.all;
  let h, c, o, x, i = !totals in
  let total = h + c + o + x + i in
  let pct v = 100.0 *. Float.of_int v /. Float.of_int (max 1 total) in
  (pct h, pct c, pct o, pct x, pct i)

(* Figure 7: the same distribution for the Sysmark-like workload
   (paper: hot 46 / cold 5 / overhead 12 / other 22 / idle 15). *)
let fig7 ?(scale = 1) () =
  let r = B.run_el Workloads.Sysmark.office ~scale in
  match r.B.distribution with
  | Some d ->
    let total = max 1 d.Ia32el.Account.total in
    let pct v = 100.0 *. Float.of_int v /. Float.of_int total in
    ( pct d.Ia32el.Account.hot,
      pct d.Ia32el.Account.cold,
      pct d.Ia32el.Account.overhead,
      pct d.Ia32el.Account.other,
      pct d.Ia32el.Account.idle )
  | None -> (0., 0., 0., 0., 0.)

(* Figure 8: IA-32 EL on a 1.5 GHz Itanium 2 vs a 1.6 GHz Xeon, relative
   wall-clock performance (higher = EL faster). Paper: INT 105.0%,
   FP 132.6%, Sysmark 98.9%. *)
type fig8_row = { suite : string; ratio : float; paper8 : float }

let fig8 ?(scale = 1) () =
  let el_hz = 1.5e9 and xeon_hz = 1.6e9 in
  let one w =
    let el = B.run_el w ~scale in
    let xeon = B.run_xeon w ~scale in
    let t_el = Float.of_int el.B.cycles /. el_hz in
    let t_xeon = Float.of_int xeon.B.cycles /. xeon_hz in
    t_xeon /. t_el
  in
  let geo ws =
    let logs = List.fold_left (fun acc w -> acc +. Float.log (one w)) 0.0 ws in
    100.0 *. Float.exp (logs /. Float.of_int (List.length ws))
  in
  [
    { suite = "CPU2000 INT"; ratio = geo Workloads.Spec_int.all; paper8 = 105.02 };
    { suite = "CPU2000 FP"; ratio = geo Workloads.Spec_fp.all; paper8 = 132.59 };
    { suite = "Sysmark 2002"; ratio = geo [ Workloads.Sysmark.office ]; paper8 = 98.88 };
  ]

(* §5 misalignment anecdote: the same workload with and without the
   detection/avoidance machinery (paper: 1236 s -> 133 s, ~9.3x). *)
let misalign_anecdote ?(scale = 1) () =
  let w = Workloads.Sysmark.misalign_stress in
  let off =
    B.run_el
      ~config:{ Ia32el.Config.default with Ia32el.Config.misalign_avoidance = false }
      w ~scale
  in
  let on_ = B.run_el w ~scale in
  (off.B.cycles, on_.B.cycles)

(* The scalar statistics quoted in §2 and §5. *)
type stats = {
  cold_block_insns : float; (* paper: 4-5 *)
  hot_block_insns : float; (* paper: ~20 *)
  pct_blocks_heated : float; (* paper: 5-10%% *)
  hot_cold_overhead_ratio : float; (* paper: ~20x per instruction *)
  native_insns_per_commit : float; (* paper: ~10 *)
  hot_time_pct : float; (* paper: ~95%% on SPEC *)
  spec_checks : int; (* dynamic check executions (TOS/TAG/mode/SSE) *)
  spec_misses : int; (* paper: 0-1%% of checks *)
  spec_success : float;
}

let stats ?(scale = 1) () =
  let acct_total = Ia32el.Account.create () in
  let add (a : Ia32el.Account.t) (b : Ia32el.Account.t) =
    a.Ia32el.Account.cold_blocks <- a.Ia32el.Account.cold_blocks + b.Ia32el.Account.cold_blocks;
    a.Ia32el.Account.cold_insns <- a.Ia32el.Account.cold_insns + b.Ia32el.Account.cold_insns;
    a.Ia32el.Account.hot_blocks <- a.Ia32el.Account.hot_blocks + b.Ia32el.Account.hot_blocks;
    a.Ia32el.Account.hot_insns <- a.Ia32el.Account.hot_insns + b.Ia32el.Account.hot_insns;
    a.Ia32el.Account.heated_blocks <- a.Ia32el.Account.heated_blocks + b.Ia32el.Account.heated_blocks;
    a.Ia32el.Account.commit_points <- a.Ia32el.Account.commit_points + b.Ia32el.Account.commit_points;
    a.Ia32el.Account.hot_target_insns <- a.Ia32el.Account.hot_target_insns + b.Ia32el.Account.hot_target_insns;
    a.Ia32el.Account.tos_checks <- a.Ia32el.Account.tos_checks + b.Ia32el.Account.tos_checks;
    a.Ia32el.Account.tos_misses <- a.Ia32el.Account.tos_misses + b.Ia32el.Account.tos_misses;
    a.Ia32el.Account.mode_misses <- a.Ia32el.Account.mode_misses + b.Ia32el.Account.mode_misses;
    a.Ia32el.Account.sse_misses <- a.Ia32el.Account.sse_misses + b.Ia32el.Account.sse_misses
  in
  let hot_time = ref 0 and total_time = ref 0 in
  let checks = ref 0 and misses = ref 0 in
  List.iter
    (fun w ->
      let r = B.run_el w ~scale in
      (match r.B.engine with
      | Some eng ->
        add acct_total eng.Ia32el.Engine.acct;
        checks :=
          !checks
          + eng.Ia32el.Engine.machine.Ipf.Machine.stats.Ipf.Machine.spec_checks;
        misses :=
          !misses
          + eng.Ia32el.Engine.acct.Ia32el.Account.tos_misses
          + eng.Ia32el.Engine.acct.Ia32el.Account.tag_misses
          + eng.Ia32el.Engine.acct.Ia32el.Account.mode_misses
          + eng.Ia32el.Engine.acct.Ia32el.Account.sse_misses
      | None -> ());
      match r.B.distribution with
      | Some d ->
        hot_time := !hot_time + d.Ia32el.Account.hot;
        total_time := !total_time + d.Ia32el.Account.total
      | None -> ())
    (Workloads.Spec_int.all @ Workloads.Spec_fp.all);
  let a = acct_total in
  let fdiv x y = Float.of_int x /. Float.of_int (max 1 y) in
  {
    cold_block_insns = fdiv a.Ia32el.Account.cold_insns a.Ia32el.Account.cold_blocks;
    hot_block_insns = fdiv a.Ia32el.Account.hot_insns a.Ia32el.Account.hot_blocks;
    pct_blocks_heated =
      100.0 *. fdiv a.Ia32el.Account.heated_blocks a.Ia32el.Account.cold_blocks;
    hot_cold_overhead_ratio =
      fdiv Ipf.Cost.default.Ipf.Cost.hot_translate_per_insn
        Ipf.Cost.default.Ipf.Cost.cold_translate_per_insn;
    native_insns_per_commit =
      fdiv a.Ia32el.Account.hot_target_insns a.Ia32el.Account.commit_points;
    hot_time_pct = 100.0 *. fdiv !hot_time !total_time;
    spec_checks = !checks;
    spec_misses = !misses;
    spec_success = 100.0 *. (1.0 -. fdiv !misses !checks);
  }
