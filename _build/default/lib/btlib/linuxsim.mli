(** BTLib for the simulated Linux host: [int 0x80], call number in EAX,
    arguments in EBX/ECX/EDX, result in EAX (negative errno on failure).

    Service numbers follow the historical Linux i386 table where one
    exists (1 exit, 4 write, 45 brk, 48 signal, 90 mmap, 91 munmap);
    kernel-work/idle are simulator extensions used by the Sysmark
    workloads. *)

include Btos.S
