(** The OS-independent view of an IA-32 system service.

    Guest programs issue services through an OS-specific
    software-interrupt convention; the BTLib implementations
    ({!Linuxsim}, {!Winsim}) translate the guest's register convention
    into this type and back, so the translator core never sees OS
    details. *)

type call =
  | Exit of int
  | Write of { buf : int; len : int }  (** write bytes to the console *)
  | Sbrk of int  (** grow the heap; returns the old break *)
  | Map of { addr : int; len : int }  (** map anonymous rw memory *)
  | Unmap of { addr : int; len : int }
  | Signal of { vector : int; handler : int }
      (** register a guest exception handler (0 unregisters) *)
  | Getclock  (** virtual cycle counter, low 32 bits *)
  | Kernel_work of int  (** spend n cycles in kernel/driver code *)
  | Idle of int  (** spend n cycles idle (Sysmark think time) *)
  | Unknown of int

type result = Ret of int | Exited of int

val pp : Format.formatter -> call -> unit
