(** The BTOS API (paper §3): the binary-level contract between the
    OS-independent translator (BTGeneric, [lib/core]) and the thin
    OS-specific glue (BTLib).

    The same BTGeneric runs unchanged on every BTLib implementation; each
    BTLib maps the guest's system-call convention and the host OS
    services. A version handshake guards the pairing: major versions must
    match exactly; a BTLib with an older minor version than BTGeneric
    requires is rejected, a newer one is accepted. *)

type version = { major : int; minor : int }

val btgeneric_version : version
(** The BTOS version this BTGeneric implements/requires. *)

type handshake =
  | Compatible
  | Major_mismatch of version * version
  | Btlib_too_old of version * version

val handshake : btlib:version -> btgeneric:version -> handshake
val handshake_ok : btlib:version -> btgeneric:version -> bool

(** The services BTLib provides to BTGeneric. All OS knowledge (syscall
    numbering, interrupt vector, register convention, allocation policy)
    lives behind this interface. *)
module type S = sig
  val name : string
  val version : version

  val syscall_vector : int
  (** The software-interrupt vector this OS uses for system services. *)

  val decode_syscall : Ia32.State.t -> Syscall.call
  (** Decode the guest's register convention into an OS-independent
      call. *)

  val encode_result : Ia32.State.t -> int -> unit
  (** Write a service result back into the guest's registers. *)

  val alloc_region : Vos.t -> len:int -> int
  (** Reserve address space for translated-code bookkeeping. Returns the
      base of a fresh region of [len] bytes. *)

  val perform : Vos.t -> Ia32.State.t -> Syscall.call -> Syscall.result
  (** Execute a system service through the underlying OS. *)

  val deliver_exception :
    Vos.t -> Ia32.State.t -> Ia32.Fault.t -> Vos.exception_outcome
  (** Deliver an exception (precise IA-32 state already reconstructed). *)
end

type btlib = (module S)

exception Version_mismatch of string

val init : (module S) -> btlib
(** BTGeneric-side initialisation: checks the handshake before returning
    a usable BTLib, mirroring the paper's load-time version control.
    @raise Version_mismatch when the handshake fails. *)
