lib/btlib/syscall.mli: Format
