lib/btlib/linuxsim.mli: Btos
