lib/btlib/btos.mli: Ia32 Syscall Vos
