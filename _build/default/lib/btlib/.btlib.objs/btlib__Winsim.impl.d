lib/btlib/winsim.ml: Btos Ia32 Insn State Syscall Vos Word
