lib/btlib/btos.ml: Ia32 Printf Syscall Vos
