lib/btlib/winsim.mli: Btos
