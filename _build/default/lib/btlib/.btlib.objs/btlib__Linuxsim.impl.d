lib/btlib/linuxsim.ml: Btos Ia32 Insn State Syscall Vos Word
