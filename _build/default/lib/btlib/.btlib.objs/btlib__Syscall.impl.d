lib/btlib/syscall.ml: Fmt
