lib/btlib/vos.ml: Buffer Char Hashtbl Ia32 Syscall
