lib/btlib/vos.mli: Buffer Hashtbl Ia32 Syscall
