(* The BTOS API: the binary-level contract between the OS-independent
   translator (BTGeneric, lib/core) and the thin OS-specific glue (BTLib).
   The same BTGeneric runs unchanged on every BTLib implementation; each
   BTLib maps the guest's system-call convention and the host OS services.

   A proprietary-style version handshake guards the pairing (paper §3):
   major versions must match exactly; a BTLib with an older minor version
   than BTGeneric requires is rejected, a newer one is accepted (backward
   compatibility). *)

type version = { major : int; minor : int }

(* The BTOS API version this BTGeneric implements/requires. *)
let btgeneric_version = { major = 2; minor = 3 }

type handshake =
  | Compatible
  | Major_mismatch of version * version
  | Btlib_too_old of version * version

let handshake ~btlib ~btgeneric =
  if btlib.major <> btgeneric.major then Major_mismatch (btlib, btgeneric)
  else if btlib.minor < btgeneric.minor then Btlib_too_old (btlib, btgeneric)
  else Compatible

let handshake_ok ~btlib ~btgeneric =
  match handshake ~btlib ~btgeneric with Compatible -> true | _ -> false

(* The services BTLib provides to BTGeneric. All OS knowledge (syscall
   numbering, interrupt vector, register convention, allocation policy)
   lives behind this interface. *)
module type S = sig
  val name : string
  val version : version

  (** The software-interrupt vector this OS uses for system services. *)
  val syscall_vector : int

  (** Decode the guest's register convention into an OS-independent call. *)
  val decode_syscall : Ia32.State.t -> Syscall.call

  (** Write a service result back into the guest's registers. *)
  val encode_result : Ia32.State.t -> int -> unit

  (** Reserve address space for translated-code bookkeeping. Returns the
      base of a fresh region of [len] bytes (model: a host-side arena; the
      value only feeds statistics). *)
  val alloc_region : Vos.t -> len:int -> int

  (** Execute a system service through the underlying OS. *)
  val perform : Vos.t -> Ia32.State.t -> Syscall.call -> Syscall.result

  (** Deliver an exception (precise IA-32 state already reconstructed). *)
  val deliver_exception :
    Vos.t -> Ia32.State.t -> Ia32.Fault.t -> Vos.exception_outcome
end

type btlib = (module S)

(* BTGeneric-side initialisation: checks the handshake before returning a
   usable BTLib, mirroring the paper's load-time version control. *)
exception Version_mismatch of string

let init (module L : S) : btlib =
  match handshake ~btlib:L.version ~btgeneric:btgeneric_version with
  | Compatible -> (module L)
  | Major_mismatch (bl, bg) ->
    raise
      (Version_mismatch
         (Printf.sprintf "BTLib %s is v%d.%d but BTGeneric needs major %d"
            L.name bl.major bl.minor bg.major))
  | Btlib_too_old (bl, bg) ->
    raise
      (Version_mismatch
         (Printf.sprintf "BTLib %s v%d.%d older than required v%d.%d" L.name
            bl.major bl.minor bg.major bg.minor))
