(* The OS-independent view of an IA-32 system service. Guest programs issue
   services through an OS-specific software-interrupt convention; the
   BTLib implementations ({!Linuxsim}, {!Winsim}) translate the guest's
   register convention into this type and back. *)

type call =
  | Exit of int
  | Write of { buf : int; len : int } (* write bytes to the console *)
  | Sbrk of int (* grow the heap by n bytes; returns old break *)
  | Map of { addr : int; len : int } (* map anonymous rw memory *)
  | Unmap of { addr : int; len : int }
  | Signal of { vector : int; handler : int } (* register exception handler *)
  | Getclock (* virtual cycle counter, low 32 bits *)
  | Kernel_work of int (* spend n cycles in kernel/driver code (Sysmark) *)
  | Idle of int (* spend n cycles idle (Sysmark) *)
  | Unknown of int

type result = Ret of int | Exited of int

let pp ppf = function
  | Exit n -> Fmt.pf ppf "exit(%d)" n
  | Write { buf; len } -> Fmt.pf ppf "write(0x%x, %d)" buf len
  | Sbrk n -> Fmt.pf ppf "sbrk(%d)" n
  | Map { addr; len } -> Fmt.pf ppf "map(0x%x, %d)" addr len
  | Unmap { addr; len } -> Fmt.pf ppf "unmap(0x%x, %d)" addr len
  | Signal { vector; handler } -> Fmt.pf ppf "signal(%d, 0x%x)" vector handler
  | Getclock -> Fmt.string ppf "getclock()"
  | Kernel_work n -> Fmt.pf ppf "kernel_work(%d)" n
  | Idle n -> Fmt.pf ppf "idle(%d)" n
  | Unknown n -> Fmt.pf ppf "unknown(%d)" n
