(** BTLib for the simulated Windows host: [int 0x2e], service number in
    EAX, arguments in EDX/ECX (note the different order), NTSTATUS-style
    result in EAX.

    Deliberately different numbering and conventions from {!Linuxsim}:
    the same BTGeneric must drive both through the BTOS API alone, which
    is the paper's §3 portability claim. *)

include Btos.S
