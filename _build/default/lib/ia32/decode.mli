(** IA-32 instruction decoder: real byte-level decoding of the subset
    ISA — prefixes (operand-size, REP/REPNE), opcodes including the 0x0F
    map, ModRM/SIB/displacement/immediate forms — from guest memory.

    This is the translator's only view of guest code: both the
    interpreter and both translation phases decode the same bytes the
    assembler ({!Asm}) emitted. *)

exception Invalid of int
(** Raised with the address of an undecodable instruction. *)

val decode : Memory.t -> int -> Insn.insn * int
(** [decode mem addr] returns the instruction at [addr] and its encoded
    length in bytes.
    @raise Invalid on undecodable bytes.
    @raise Fault.Fault when the bytes cannot be fetched. *)
