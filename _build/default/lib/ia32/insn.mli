(** IA-32 instruction AST.

    This is the single instruction representation shared by the assembler
    ({!Asm}), the binary encoder ({!Encode}) and decoder ({!Decode}), the
    reference interpreter ({!Interp}) and the IA-32 EL translator. Branch
    targets are absolute 32-bit addresses (the decoder resolves relative
    displacements). *)

(** The eight 32-bit general registers. With [S16]/[S8] operand sizes the
    same constructors denote the 16-bit registers or the x86-numbered 8-bit
    registers (indices 0-3: al..bl, 4-7: ah..bh). *)
type reg = Eax | Ecx | Edx | Ebx | Esp | Ebp | Esi | Edi

val reg_index : reg -> int
val reg_of_index : int -> reg
val all_regs : reg list
val reg_name : reg -> string

(** Operand size in bytes: 1, 2 or 4. *)
type size = S8 | S16 | S32

val size_bytes : size -> int

(** An IA-32 addressing mode: [base + index*scale + disp]. *)
type mem = {
  base : reg option;
  index : (reg * int) option;  (** scale is 1, 2, 4 or 8; index is not Esp *)
  disp : int;  (** canonical 32-bit displacement *)
}

val mem_abs : int -> mem
val mem_b : reg -> mem
val mem_bd : reg -> int -> mem
val mem_bis : reg -> reg -> int -> mem
val mem_full : reg -> reg -> int -> int -> mem

type operand =
  | R of reg
  | M of mem
  | I of int  (** immediate, canonical 32-bit *)

(** Branch/set/cmov condition codes, in x86 encoding order. *)
type cond = O | No | B | Ae | E | Ne | Be | A | S | Ns | P | Np | L | Ge | Le | G

val cond_index : cond -> int
val cond_of_index : int -> cond
val cond_negate : cond -> cond
val cond_name : cond -> string

(** EFLAGS bits modeled (the six arithmetic flags plus the direction flag). *)
type flag = CF | PF | AF | ZF | SF | OF | DF

val all_flags : flag list
val arith_flags : flag list
val flag_name : flag -> string

(** Flags read when evaluating a condition. *)
val cond_uses : cond -> flag list

type alu = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp

val alu_index : alu -> int
val alu_of_index : int -> alu
val alu_name : alu -> string

type shift = Shl | Shr | Sar | Rol | Ror

val shift_name : shift -> string

(** Shift amount: immediate or the CL register. *)
type amount = Amt_imm of int | Amt_cl

(** String-operation repeat prefix. *)
type rep = No_rep | Rep | Repe | Repne

type fsize = F32 | F64
type isize = I16 | I32
type fop = FAdd | FSub | FSubr | FMul | FDiv | FDivr

val fop_name : fop -> string

(** x87 floating-point instructions. [st(i)] operands are top-relative. *)
type fp_insn =
  | Fld_st of int
  | Fld_m of fsize * mem
  | Fld1
  | Fldz
  | Fldpi
  | Fst_st of int * bool  (** pop *)
  | Fst_m of fsize * mem * bool  (** pop *)
  | Fild of isize * mem
  | Fist_m of isize * mem * bool  (** pop *)
  | Fop_st0_st of fop * int  (** st0 <- st0 op st(i) *)
  | Fop_st_st0 of fop * int * bool  (** st(i) <- st(i) op st0, optional pop *)
  | Fop_m of fop * fsize * mem  (** st0 <- st0 op mem *)
  | Fchs
  | Fabs
  | Fsqrt
  | Frndint
  | Fcom_st of int * int  (** compares st0 with st(i); second field = pops (0-2) *)
  | Fcom_m of fsize * mem * int  (** pops: 0 or 1 *)
  | Fnstsw_ax
  | Fxch of int
  | Ffree of int
  | Fincstp
  | Fdecstp

type mmx_rm = MM of int | MMem of mem

(** MMX instructions. The first [int] of packed ops is the element width in
    bytes (1, 2, 4 or 8). *)
type mmx_insn =
  | Movd_to_mm of int * operand
  | Movd_from_mm of operand * int
  | Movq_to_mm of int * mmx_rm
  | Movq_from_mm of mmx_rm * int
  | Padd of int * int * mmx_rm
  | Psub of int * int * mmx_rm
  | Pmullw of int * mmx_rm
  | Pand of int * mmx_rm
  | Por of int * mmx_rm
  | Pxor of int * mmx_rm
  | Pcmpeq of int * int * mmx_rm
  | Psll of int * int * int
  | Psrl of int * int * int
  | Emms

type xmm_rm = XM of int | XMem of mem

type sse_op = SAdd | SSub | SMul | SDiv | SMin | SMax

val sse_op_name : sse_op -> string

(** The four XMM data formats tracked by the translator's SSE format
    speculation, plus packed-integer. *)
type sse_fmt = Packed_single | Packed_double | Scalar_single | Scalar_double | Packed_int

val sse_fmt_name : sse_fmt -> string

type sse_insn =
  | Movaps of xmm_rm * xmm_rm
  | Movups of xmm_rm * xmm_rm
  | Movss of xmm_rm * xmm_rm
  | Movsd_x of xmm_rm * xmm_rm
  | Sse_arith of sse_op * sse_fmt * int * xmm_rm
  | Sqrtps of int * xmm_rm
  | Andps of int * xmm_rm
  | Orps of int * xmm_rm
  | Xorps of int * xmm_rm
  | Paddd_x of int * xmm_rm
  | Psubd_x of int * xmm_rm
  | Ucomiss of int * xmm_rm
  | Cvtsi2ss of int * operand
  | Cvttss2si of reg * xmm_rm
  | Cvtss2sd of int * xmm_rm
  | Cvtsd2ss of int * xmm_rm

type insn =
  | Alu of alu * size * operand * operand
  | Test of size * operand * operand
  | Mov of size * operand * operand
  | Movzx of size * reg * operand
  | Movsx of size * reg * operand
  | Lea of reg * mem
  | Shift of shift * size * operand * amount
  | Shld of operand * reg * amount
  | Shrd of operand * reg * amount
  | Inc of size * operand
  | Dec of size * operand
  | Neg of size * operand
  | Not of size * operand
  | Imul_rr of reg * operand
  | Imul_rri of reg * operand * int
  | Mul1 of size * operand
  | Imul1 of size * operand
  | Div of size * operand
  | Idiv of size * operand
  | Cdq
  | Cwde
  | Xchg of size * operand * reg
  | Push of operand
  | Pop of operand
  | Pushfd
  | Popfd
  | Jmp of int
  | Jcc of cond * int
  | Call of int
  | Jmp_ind of operand
  | Call_ind of operand
  | Ret of int
  | Setcc of cond * operand
  | Cmovcc of cond * reg * operand
  | Movs of size * rep
  | Stos of size * rep
  | Lods of size * rep
  | Scas of size * rep
  | Cld
  | Std
  | Int_n of int
  | Hlt
  | Ud2
  | Nop
  | Fp of fp_insn
  | Mmx of mmx_insn
  | Sse of sse_insn

(** [true] for compare-like instructions that only produce flags. *)
val is_cmp_like : insn -> bool

(** EFLAGS bits written by the instruction. *)
val flags_def : insn -> flag list

(** EFLAGS bits guaranteed to be written — the kill set for liveness (CL
    shifts and zero-count shifts may leave flags untouched). *)
val flags_def_must : insn -> flag list

(** EFLAGS bits read by the instruction. *)
val flags_use : insn -> flag list

(** [true] when control leaves the basic block after the instruction. *)
val is_block_end : insn -> bool

val mem_of_operand : operand -> mem option
val mmx_mem : mmx_rm -> mem option
val xmm_mem : xmm_rm -> mem option
val fp_mem : fp_insn -> mem option

(** Memory locations accessed: [(addressing mode, width in bytes, is_store)].
    Implicit stack/string accesses are reported through their base register. *)
val mem_refs : insn -> (mem * int * bool) list

(** Whether the instruction can raise an IA-32 exception (page fault,
    divide error, FP stack fault, ...). *)
val may_fault : insn -> bool

val pp_mem : Format.formatter -> mem -> unit
val pp_operand : size -> Format.formatter -> operand -> unit
val pp : Format.formatter -> insn -> unit
val to_string : insn -> string
