(** IA-32 binary encoder (assembler back end).

    Emits real x86 machine code — prefixes, opcode, ModRM, SIB,
    displacement, immediate — for the modeled subset. Branches are always
    emitted in their rel32 forms so instruction length does not depend on
    the target, which lets {!Asm} lay programs out in a single pass. *)

exception Cannot_encode of string

(** [encode ~ip insn] is the machine code of [insn] when placed at address
    [ip] (needed for relative branch displacements). *)
val encode : ip:int -> Insn.insn -> string

(** Encoded length in bytes; placement-independent. *)
val length : Insn.insn -> int

(** Encode a straight-line sequence starting at [ip]. *)
val encode_list : ip:int -> Insn.insn list -> string
