(** IA-32 architectural exceptions ("faults").

    Raised by {!Memory} and {!Interp} via the {!Fault} exception; the
    translator's engine converts IPF-level faults back into these before
    delivering them to the guest (the paper's precise-exception path). *)

type access = Read | Write | Fetch

type t =
  | Page_fault of int * access
  | Divide_error
  | Invalid_opcode
  | Fp_stack_fault
  | Fp_fault
  | Simd_fault
  | Privileged
  | Breakpoint

exception Fault of t

val access_name : access -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** IA-32 exception vector number (0 = #DE, 6 = #UD, 14 = #PF, ...). *)
val vector : t -> int

val equal : t -> t -> bool
