let mask8 v = v land 0xFF
let mask16 v = v land 0xFFFF
let mask32 v = v land 0xFFFFFFFF

let mask size v =
  match size with
  | 1 -> mask8 v
  | 2 -> mask16 v
  | 4 -> mask32 v
  | n -> invalid_arg (Printf.sprintf "Word.mask: bad size %d" n)

let signed8 v =
  let v = mask8 v in
  if v >= 0x80 then v - 0x100 else v

let signed16 v =
  let v = mask16 v in
  if v >= 0x8000 then v - 0x10000 else v

let signed32 v =
  let v = mask32 v in
  if v >= 0x80000000 then v - 0x100000000 else v

let signed size v =
  match size with
  | 1 -> signed8 v
  | 2 -> signed16 v
  | 4 -> signed32 v
  | n -> invalid_arg (Printf.sprintf "Word.signed: bad size %d" n)

let bits size = size * 8

let sign_bit size v = (mask size v) lsr (bits size - 1) = 1

let parity v =
  let rec count acc v = if v = 0 then acc else count (acc + (v land 1)) (v lsr 1) in
  count 0 (mask8 v) land 1 = 0

(* Apply [f] lane-wise on [w]-byte lanes of two int64s (SIMD helper shared
   by the IA-32 MMX model and the IPF parallel-ALU model). *)
let lanes_map2 w f a b =
  let lanes = 8 / w in
  let bits = w * 8 in
  let lane_mask =
    if bits = 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L
  in
  let out = ref 0L in
  for i = 0 to lanes - 1 do
    let sh = i * bits in
    let la = Int64.logand (Int64.shift_right_logical a sh) lane_mask in
    let lb = Int64.logand (Int64.shift_right_logical b sh) lane_mask in
    let r = Int64.logand (f la lb) lane_mask in
    out := Int64.logor !out (Int64.shift_left r sh)
  done;
  !out

let lo32 v = Int64.to_int (Int64.logand v 0xFFFFFFFFL)
let hi32 v = Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL)
let to_i64 ~lo ~hi =
  Int64.logor
    (Int64.shift_left (Int64.of_int (mask32 hi)) 32)
    (Int64.of_int (mask32 lo))
