(** 32-bit machine arithmetic on top of OCaml's native [int].

    All IA-32 architectural values are stored as OCaml [int]s in the range
    [0, 2^32-1] ("canonical form"). These helpers mask, sign-extend and
    perform flag-relevant arithmetic. *)

val mask8 : int -> int
val mask16 : int -> int
val mask32 : int -> int

(** [mask size v] masks [v] to [size] bytes (1, 2 or 4). *)
val mask : int -> int -> int

(** [signed size v] reinterprets the canonical unsigned value [v] of [size]
    bytes as a signed OCaml int. *)
val signed : int -> int -> int

val signed8 : int -> int
val signed16 : int -> int
val signed32 : int -> int

(** [sign_bit size v] is the most significant bit of [v] at [size] bytes. *)
val sign_bit : int -> int -> bool

(** [parity v] is the IA-32 parity flag of the low byte of [v]:
    [true] when the number of set bits is even. *)
val parity : int -> bool

(** [bits size] is [size * 8]. *)
val bits : int -> int

(** [lanes_map2 w f a b] applies [f] independently on each [w]-byte lane of
    the two int64s (SIMD helper). *)
val lanes_map2 : int -> (int64 -> int64 -> int64) -> int64 -> int64 -> int64

(** Low/high 32-bit halves of a 64-bit quantity represented as Int64. *)
val lo32 : int64 -> int
val hi32 : int64 -> int
val to_i64 : lo:int -> hi:int -> int64
