(* IA-32 decoder: machine code in guest memory -> Insn.insn. Handles every
   form the encoder emits plus the common short branch forms. Undecodable
   bytes yield [Ud2]-like behaviour via [Invalid]. *)

open Insn

exception Invalid of int (* address of the undecodable instruction *)

type cursor = { mem : Memory.t; start : int; mutable pos : int }

let u8 c =
  let v = Memory.fetch8 c.mem c.pos in
  c.pos <- c.pos + 1;
  v

let s8 c = Word.signed8 (u8 c)

let u16 c =
  let lo = u8 c in
  let hi = u8 c in
  lo lor (hi lsl 8)

let u32 c =
  let a = u8 c in
  let b = u8 c in
  let d = u8 c in
  let e = u8 c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let s32 c = Word.signed32 (u32 c)

let invalid c = raise (Invalid c.start)

let scale_of_bits = function 0 -> 1 | 1 -> 2 | 2 -> 4 | _ -> 8

(* Returns (reg_field, rm_operand). *)
let read_modrm c =
  let m = u8 c in
  let md = m lsr 6 and reg = (m lsr 3) land 7 and rm = m land 7 in
  if md = 3 then (reg, `Reg rm)
  else begin
    let base, index =
      if rm = 4 then begin
        let sib = u8 c in
        let ss = sib lsr 6 and idx = (sib lsr 3) land 7 and b = sib land 7 in
        let index =
          if idx = 4 then None else Some (reg_of_index idx, scale_of_bits ss)
        in
        let base =
          if b = 5 && md = 0 then None else Some (reg_of_index b)
        in
        (base, index)
      end
      else if rm = 5 && md = 0 then (None, None)
      else (Some (reg_of_index rm), None)
    in
    let disp =
      match md with
      | 1 -> s8 c
      | 2 -> s32 c
      | 0 -> if base = None && rm <> 4 then s32 c
             else if base = None && rm = 4 then s32 c
             else 0
      | _ -> 0
    in
    (* no-base SIB always carries disp32 *)
    (reg, `Mem { base; index; disp = Word.mask32 disp })
  end

let to_operand = function
  | `Reg i -> R (reg_of_index i)
  | `Mem m -> M m

let to_mem c = function
  | `Mem m -> m
  | `Reg _ -> invalid c

let imm_of_size c = function
  | S8 -> u8 c
  | S16 -> u16 c
  | S32 -> u32 c

(* ------------------------------------------------------------------ *)

let decode_0f c ~osz ~rep_f2 ~rep_f3 =
  let op = u8 c in
  let xfmt_arith () =
    if rep_f3 then Scalar_single
    else if rep_f2 then Scalar_double
    else if osz then Packed_double
    else Packed_single
  in
  let xmm_rm v = match v with `Reg i -> XM i | `Mem m -> XMem m in
  let mmx_rm v = match v with `Reg i -> MM i | `Mem m -> MMem m in
  match op with
  | 0x0B -> Ud2
  | op when op >= 0x80 && op <= 0x8F ->
    let cnd = cond_of_index (op - 0x80) in
    let d = s32 c in
    Jcc (cnd, Word.mask32 (c.pos + d))
  | op when op >= 0x90 && op <= 0x9F ->
    let cnd = cond_of_index (op - 0x90) in
    let _, rm = read_modrm c in
    Setcc (cnd, to_operand rm)
  | op when op >= 0x40 && op <= 0x4F ->
    let cnd = cond_of_index (op - 0x40) in
    let reg, rm = read_modrm c in
    Cmovcc (cnd, reg_of_index reg, to_operand rm)
  | 0xB6 -> let reg, rm = read_modrm c in Movzx (S8, reg_of_index reg, to_operand rm)
  | 0xB7 -> let reg, rm = read_modrm c in Movzx (S16, reg_of_index reg, to_operand rm)
  | 0xBE -> let reg, rm = read_modrm c in Movsx (S8, reg_of_index reg, to_operand rm)
  | 0xBF -> let reg, rm = read_modrm c in Movsx (S16, reg_of_index reg, to_operand rm)
  | 0xAF -> let reg, rm = read_modrm c in Imul_rr (reg_of_index reg, to_operand rm)
  | 0xA4 ->
    let reg, rm = read_modrm c in
    let n = u8 c in
    Shld (to_operand rm, reg_of_index reg, Amt_imm n)
  | 0xA5 -> let reg, rm = read_modrm c in Shld (to_operand rm, reg_of_index reg, Amt_cl)
  | 0xAC ->
    let reg, rm = read_modrm c in
    let n = u8 c in
    Shrd (to_operand rm, reg_of_index reg, Amt_imm n)
  | 0xAD -> let reg, rm = read_modrm c in Shrd (to_operand rm, reg_of_index reg, Amt_cl)
  (* SSE moves *)
  | 0x28 -> let r, rm = read_modrm c in Sse (Movaps (XM r, xmm_rm rm))
  | 0x29 -> let r, rm = read_modrm c in Sse (Movaps (xmm_rm rm, XM r))
  | 0x10 when rep_f3 -> let r, rm = read_modrm c in Sse (Movss (XM r, xmm_rm rm))
  | 0x11 when rep_f3 -> let r, rm = read_modrm c in Sse (Movss (xmm_rm rm, XM r))
  | 0x10 when rep_f2 -> let r, rm = read_modrm c in Sse (Movsd_x (XM r, xmm_rm rm))
  | 0x11 when rep_f2 -> let r, rm = read_modrm c in Sse (Movsd_x (xmm_rm rm, XM r))
  | 0x10 -> let r, rm = read_modrm c in Sse (Movups (XM r, xmm_rm rm))
  | 0x11 -> let r, rm = read_modrm c in Sse (Movups (xmm_rm rm, XM r))
  | 0x58 -> let r, rm = read_modrm c in Sse (Sse_arith (SAdd, xfmt_arith (), r, xmm_rm rm))
  | 0x59 -> let r, rm = read_modrm c in Sse (Sse_arith (SMul, xfmt_arith (), r, xmm_rm rm))
  | 0x5C -> let r, rm = read_modrm c in Sse (Sse_arith (SSub, xfmt_arith (), r, xmm_rm rm))
  | 0x5D -> let r, rm = read_modrm c in Sse (Sse_arith (SMin, xfmt_arith (), r, xmm_rm rm))
  | 0x5E -> let r, rm = read_modrm c in Sse (Sse_arith (SDiv, xfmt_arith (), r, xmm_rm rm))
  | 0x5F -> let r, rm = read_modrm c in Sse (Sse_arith (SMax, xfmt_arith (), r, xmm_rm rm))
  | 0x51 -> let r, rm = read_modrm c in Sse (Sqrtps (r, xmm_rm rm))
  | 0x54 -> let r, rm = read_modrm c in Sse (Andps (r, xmm_rm rm))
  | 0x56 -> let r, rm = read_modrm c in Sse (Orps (r, xmm_rm rm))
  | 0x57 -> let r, rm = read_modrm c in Sse (Xorps (r, xmm_rm rm))
  | 0x2E -> let r, rm = read_modrm c in Sse (Ucomiss (r, xmm_rm rm))
  | 0x2A when rep_f3 -> let r, rm = read_modrm c in Sse (Cvtsi2ss (r, to_operand rm))
  | 0x2C when rep_f3 -> let r, rm = read_modrm c in Sse (Cvttss2si (reg_of_index r, xmm_rm rm))
  | 0x5A when rep_f3 -> let r, rm = read_modrm c in Sse (Cvtss2sd (r, xmm_rm rm))
  | 0x5A when rep_f2 -> let r, rm = read_modrm c in Sse (Cvtsd2ss (r, xmm_rm rm))
  (* MMX / SSE2 integer *)
  | 0x6E -> let r, rm = read_modrm c in Mmx (Movd_to_mm (r, to_operand rm))
  | 0x7E -> let r, rm = read_modrm c in Mmx (Movd_from_mm (to_operand rm, r))
  | 0x6F -> let r, rm = read_modrm c in Mmx (Movq_to_mm (r, mmx_rm rm))
  | 0x7F -> let r, rm = read_modrm c in Mmx (Movq_from_mm (mmx_rm rm, r))
  | 0xFC -> let r, rm = read_modrm c in Mmx (Padd (1, r, mmx_rm rm))
  | 0xFD -> let r, rm = read_modrm c in Mmx (Padd (2, r, mmx_rm rm))
  | 0xFE when osz -> let r, rm = read_modrm c in Sse (Paddd_x (r, xmm_rm rm))
  | 0xFE -> let r, rm = read_modrm c in Mmx (Padd (4, r, mmx_rm rm))
  | 0xD4 -> let r, rm = read_modrm c in Mmx (Padd (8, r, mmx_rm rm))
  | 0xF8 -> let r, rm = read_modrm c in Mmx (Psub (1, r, mmx_rm rm))
  | 0xF9 -> let r, rm = read_modrm c in Mmx (Psub (2, r, mmx_rm rm))
  | 0xFA when osz -> let r, rm = read_modrm c in Sse (Psubd_x (r, xmm_rm rm))
  | 0xFA -> let r, rm = read_modrm c in Mmx (Psub (4, r, mmx_rm rm))
  | 0xFB -> let r, rm = read_modrm c in Mmx (Psub (8, r, mmx_rm rm))
  | 0xD5 -> let r, rm = read_modrm c in Mmx (Pmullw (r, mmx_rm rm))
  | 0xDB -> let r, rm = read_modrm c in Mmx (Pand (r, mmx_rm rm))
  | 0xEB -> let r, rm = read_modrm c in Mmx (Por (r, mmx_rm rm))
  | 0xEF -> let r, rm = read_modrm c in Mmx (Pxor (r, mmx_rm rm))
  | 0x74 -> let r, rm = read_modrm c in Mmx (Pcmpeq (1, r, mmx_rm rm))
  | 0x75 -> let r, rm = read_modrm c in Mmx (Pcmpeq (2, r, mmx_rm rm))
  | 0x76 -> let r, rm = read_modrm c in Mmx (Pcmpeq (4, r, mmx_rm rm))
  | 0x71 | 0x72 | 0x73 ->
    let w = match op with 0x71 -> 2 | 0x72 -> 4 | _ -> 8 in
    let ext, rm = read_modrm c in
    let mm = match rm with `Reg i -> i | `Mem _ -> invalid c in
    let n = u8 c in
    if ext = 6 then Mmx (Psll (w, mm, n))
    else if ext = 2 then Mmx (Psrl (w, mm, n))
    else invalid c
  | 0x77 -> Mmx Emms
  | _ -> invalid c

let decode_fp c escape =
  let m = u8 c in
  if m < 0xC0 then begin
    (* memory forms: re-read as modrm *)
    c.pos <- c.pos - 1;
    let ext, rm = read_modrm c in
    let mem = to_mem c rm in
    match (escape, ext) with
    | 0xD8, 0 -> Fp (Fop_m (FAdd, F32, mem))
    | 0xD8, 1 -> Fp (Fop_m (FMul, F32, mem))
    | 0xD8, 2 -> Fp (Fcom_m (F32, mem, 0))
    | 0xD8, 3 -> Fp (Fcom_m (F32, mem, 1))
    | 0xD8, 4 -> Fp (Fop_m (FSub, F32, mem))
    | 0xD8, 5 -> Fp (Fop_m (FSubr, F32, mem))
    | 0xD8, 6 -> Fp (Fop_m (FDiv, F32, mem))
    | 0xD8, 7 -> Fp (Fop_m (FDivr, F32, mem))
    | 0xD9, 0 -> Fp (Fld_m (F32, mem))
    | 0xD9, 2 -> Fp (Fst_m (F32, mem, false))
    | 0xD9, 3 -> Fp (Fst_m (F32, mem, true))
    | 0xDB, 0 -> Fp (Fild (I32, mem))
    | 0xDB, 2 -> Fp (Fist_m (I32, mem, false))
    | 0xDB, 3 -> Fp (Fist_m (I32, mem, true))
    | 0xDC, 0 -> Fp (Fop_m (FAdd, F64, mem))
    | 0xDC, 1 -> Fp (Fop_m (FMul, F64, mem))
    | 0xDC, 2 -> Fp (Fcom_m (F64, mem, 0))
    | 0xDC, 3 -> Fp (Fcom_m (F64, mem, 1))
    | 0xDC, 4 -> Fp (Fop_m (FSub, F64, mem))
    | 0xDC, 5 -> Fp (Fop_m (FSubr, F64, mem))
    | 0xDC, 6 -> Fp (Fop_m (FDiv, F64, mem))
    | 0xDC, 7 -> Fp (Fop_m (FDivr, F64, mem))
    | 0xDD, 0 -> Fp (Fld_m (F64, mem))
    | 0xDD, 2 -> Fp (Fst_m (F64, mem, false))
    | 0xDD, 3 -> Fp (Fst_m (F64, mem, true))
    | 0xDF, 0 -> Fp (Fild (I16, mem))
    | 0xDF, 2 -> Fp (Fist_m (I16, mem, false))
    | 0xDF, 3 -> Fp (Fist_m (I16, mem, true))
    | _ -> invalid c
  end
  else begin
    let i = m land 7 in
    match (escape, m land 0xF8, m) with
    | 0xD8, 0xC0, _ -> Fp (Fop_st0_st (FAdd, i))
    | 0xD8, 0xC8, _ -> Fp (Fop_st0_st (FMul, i))
    | 0xD8, 0xD0, _ -> Fp (Fcom_st (i, 0))
    | 0xD8, 0xD8, _ -> Fp (Fcom_st (i, 1))
    | 0xD8, 0xE0, _ -> Fp (Fop_st0_st (FSub, i))
    | 0xD8, 0xE8, _ -> Fp (Fop_st0_st (FSubr, i))
    | 0xD8, 0xF0, _ -> Fp (Fop_st0_st (FDiv, i))
    | 0xD8, 0xF8, _ -> Fp (Fop_st0_st (FDivr, i))
    | 0xD9, 0xC0, _ -> Fp (Fld_st i)
    | 0xD9, 0xC8, _ -> Fp (Fxch i)
    | 0xD9, _, 0xE0 -> Fp Fchs
    | 0xD9, _, 0xE1 -> Fp Fabs
    | 0xD9, _, 0xE8 -> Fp Fld1
    | 0xD9, _, 0xEB -> Fp Fldpi
    | 0xD9, _, 0xEE -> Fp Fldz
    | 0xD9, _, 0xF6 -> Fp Fdecstp
    | 0xD9, _, 0xF7 -> Fp Fincstp
    | 0xD9, _, 0xFA -> Fp Fsqrt
    | 0xD9, _, 0xFC -> Fp Frndint
    | 0xDC, 0xC0, _ -> Fp (Fop_st_st0 (FAdd, i, false))
    | 0xDC, 0xC8, _ -> Fp (Fop_st_st0 (FMul, i, false))
    | 0xDC, 0xE0, _ -> Fp (Fop_st_st0 (FSubr, i, false))
    | 0xDC, 0xE8, _ -> Fp (Fop_st_st0 (FSub, i, false))
    | 0xDC, 0xF0, _ -> Fp (Fop_st_st0 (FDivr, i, false))
    | 0xDC, 0xF8, _ -> Fp (Fop_st_st0 (FDiv, i, false))
    | 0xDD, 0xC0, _ -> Fp (Ffree i)
    | 0xDD, 0xD0, _ -> Fp (Fst_st (i, false))
    | 0xDD, 0xD8, _ -> Fp (Fst_st (i, true))
    | 0xDE, _, 0xD9 -> Fp (Fcom_st (1, 2)) (* fcompp *)
    | 0xDE, 0xC0, _ -> Fp (Fop_st_st0 (FAdd, i, true))
    | 0xDE, 0xC8, _ -> Fp (Fop_st_st0 (FMul, i, true))
    | 0xDE, 0xE0, _ -> Fp (Fop_st_st0 (FSubr, i, true))
    | 0xDE, 0xE8, _ -> Fp (Fop_st_st0 (FSub, i, true))
    | 0xDE, 0xF0, _ -> Fp (Fop_st_st0 (FDivr, i, true))
    | 0xDE, 0xF8, _ -> Fp (Fop_st_st0 (FDiv, i, true))
    | 0xDF, _, 0xE0 -> Fp Fnstsw_ax
    | _ -> invalid c
  end

let decode_at c =
  (* prefix loop *)
  let osz = ref false and f2 = ref false and f3 = ref false in
  let rec prefixes () =
    match Memory.fetch8 c.mem c.pos with
    | 0x66 -> c.pos <- c.pos + 1; osz := true; prefixes ()
    | 0xF2 -> c.pos <- c.pos + 1; f2 := true; prefixes ()
    | 0xF3 -> c.pos <- c.pos + 1; f3 := true; prefixes ()
    | _ -> ()
  in
  prefixes ();
  let size = if !osz then S16 else S32 in
  let rep_for = function
    | `Movs | `Stos | `Lods -> if !f3 then Rep else if !f2 then Repne else No_rep
    | `Scas -> if !f3 then Repe else if !f2 then Repne else No_rep
  in
  let op = u8 c in
  (* generic ALU rows: 00-3D excluding the x87/prefix gaps we don't emit *)
  if op < 0x40 && op land 7 < 6 && op <> 0x0F && (op land 7) < 4 then begin
    let a = alu_of_index (op lsr 3) in
    let form = op land 7 in
    let reg, rm = read_modrm c in
    let r = R (reg_of_index reg) in
    match form with
    | 0 -> Alu (a, S8, to_operand rm, r)
    | 1 -> Alu (a, size, to_operand rm, r)
    | 2 -> Alu (a, S8, r, to_operand rm)
    | 3 -> Alu (a, size, r, to_operand rm)
    | _ -> invalid c
  end
  else
    match op with
    | 0x0F -> decode_0f c ~osz:!osz ~rep_f2:!f2 ~rep_f3:!f3
    | 0x80 | 0x81 | 0x83 ->
      let sz = if op = 0x80 then S8 else size in
      let ext, rm = read_modrm c in
      let v =
        if op = 0x83 then Word.mask32 (s8 c)
        else Word.mask (size_bytes sz) (imm_of_size c sz)
      in
      Alu (alu_of_index ext, sz, to_operand rm, I v)
    | 0x84 -> let reg, rm = read_modrm c in Test (S8, to_operand rm, R (reg_of_index reg))
    | 0x85 -> let reg, rm = read_modrm c in Test (size, to_operand rm, R (reg_of_index reg))
    | 0x86 -> (
      let reg, rm = read_modrm c in
      Xchg (S8, to_operand rm, reg_of_index reg))
    | 0x87 -> (
      let reg, rm = read_modrm c in
      Xchg (size, to_operand rm, reg_of_index reg))
    | 0x88 -> let reg, rm = read_modrm c in Mov (S8, to_operand rm, R (reg_of_index reg))
    | 0x89 -> let reg, rm = read_modrm c in Mov (size, to_operand rm, R (reg_of_index reg))
    | 0x8A -> let reg, rm = read_modrm c in Mov (S8, R (reg_of_index reg), to_operand rm)
    | 0x8B -> let reg, rm = read_modrm c in Mov (size, R (reg_of_index reg), to_operand rm)
    | 0x8D -> (
      let reg, rm = read_modrm c in
      match rm with
      | `Mem m -> Lea (reg_of_index reg, m)
      | `Reg _ -> invalid c)
    | 0x8F -> let _, rm = read_modrm c in Pop (to_operand rm)
    | 0x90 -> Nop
    | 0x98 -> Cwde
    | 0x99 -> Cdq
    | 0x9C -> Pushfd
    | 0x9D -> Popfd
    | op when op >= 0x50 && op <= 0x57 -> Push (R (reg_of_index (op - 0x50)))
    | op when op >= 0x58 && op <= 0x5F -> Pop (R (reg_of_index (op - 0x58)))
    | 0x68 -> Push (I (u32 c))
    | 0x6A -> Push (I (Word.mask32 (s8 c)))
    | 0x69 ->
      let reg, rm = read_modrm c in
      Imul_rri (reg_of_index reg, to_operand rm, u32 c)
    | 0x6B ->
      let reg, rm = read_modrm c in
      Imul_rri (reg_of_index reg, to_operand rm, Word.mask32 (s8 c))
    | op when op >= 0x70 && op <= 0x7F ->
      let cnd = cond_of_index (op - 0x70) in
      let d = s8 c in
      Jcc (cnd, Word.mask32 (c.pos + d))
    | 0xA4 -> Movs (S8, rep_for `Movs)
    | 0xA5 -> Movs (size, rep_for `Movs)
    | 0xA8 -> Test (S8, R Eax, I (u8 c))
    | 0xA9 -> Test (size, R Eax, I (imm_of_size c size))
    | 0xAA -> Stos (S8, rep_for `Stos)
    | 0xAB -> Stos (size, rep_for `Stos)
    | 0xAC -> Lods (S8, rep_for `Lods)
    | 0xAD -> Lods (size, rep_for `Lods)
    | 0xAE -> Scas (S8, rep_for `Scas)
    | 0xAF -> Scas (size, rep_for `Scas)
    | op when op >= 0xB0 && op <= 0xB7 ->
      Mov (S8, R (reg_of_index (op - 0xB0)), I (u8 c))
    | op when op >= 0xB8 && op <= 0xBF ->
      Mov (size, R (reg_of_index (op - 0xB8)), I (imm_of_size c size))
    | 0xC0 | 0xC1 | 0xD0 | 0xD1 | 0xD2 | 0xD3 ->
      let sz = if op land 1 = 0 then S8 else size in
      let ext, rm = read_modrm c in
      let sh =
        match ext with
        | 0 -> Rol | 1 -> Ror | 4 -> Shl | 5 -> Shr | 7 -> Sar
        | _ -> invalid c
      in
      let amt =
        match op with
        | 0xC0 | 0xC1 -> Amt_imm (u8 c)
        | 0xD0 | 0xD1 -> Amt_imm 1
        | _ -> Amt_cl
      in
      Shift (sh, sz, to_operand rm, amt)
    | 0xC2 -> Ret (u16 c)
    | 0xC3 -> Ret 0
    | 0xC6 ->
      let _, rm = read_modrm c in
      Mov (S8, to_operand rm, I (u8 c))
    | 0xC7 ->
      let _, rm = read_modrm c in
      Mov (size, to_operand rm, I (imm_of_size c size))
    | 0xCC -> Int_n 3
    | 0xCD -> Int_n (u8 c)
    | 0xD8 | 0xD9 | 0xDA | 0xDB | 0xDC | 0xDD | 0xDE | 0xDF -> decode_fp c op
    | 0xE8 -> let d = s32 c in Call (Word.mask32 (c.pos + d))
    | 0xE9 -> let d = s32 c in Jmp (Word.mask32 (c.pos + d))
    | 0xEB -> let d = s8 c in Jmp (Word.mask32 (c.pos + d))
    | 0xF4 -> Hlt
    | 0xF6 | 0xF7 -> (
      let sz = if op = 0xF6 then S8 else size in
      let ext, rm = read_modrm c in
      match ext with
      | 0 -> Test (sz, to_operand rm, I (imm_of_size c sz))
      | 2 -> Not (sz, to_operand rm)
      | 3 -> Neg (sz, to_operand rm)
      | 4 -> Mul1 (sz, to_operand rm)
      | 5 -> Imul1 (sz, to_operand rm)
      | 6 -> Div (sz, to_operand rm)
      | 7 -> Idiv (sz, to_operand rm)
      | _ -> invalid c)
    | 0xFC -> Cld
    | 0xFD -> Std
    | 0xFE -> (
      let ext, rm = read_modrm c in
      match ext with
      | 0 -> Inc (S8, to_operand rm)
      | 1 -> Dec (S8, to_operand rm)
      | _ -> invalid c)
    | 0xFF -> (
      let ext, rm = read_modrm c in
      match ext with
      | 0 -> Inc (size, to_operand rm)
      | 1 -> Dec (size, to_operand rm)
      | 2 -> Call_ind (to_operand rm)
      | 4 -> Jmp_ind (to_operand rm)
      | 6 -> Push (to_operand rm)
      | _ -> invalid c)
    | op when op >= 0x40 && op <= 0x47 -> Inc (size, R (reg_of_index (op - 0x40)))
    | op when op >= 0x48 && op <= 0x4F -> Dec (size, R (reg_of_index (op - 0x48)))
    | _ -> invalid c

(* [decode mem addr] is [(insn, length)]. Raises [Invalid] on undecodable
   bytes and [Fault.Fault] on unmapped/unexecutable code pages. *)
let decode mem addr =
  let c = { mem; start = addr; pos = addr } in
  let insn = decode_at c in
  (insn, c.pos - addr)
