(** Float/integer conversion helpers shared by the reference interpreter and
    the translated code, guaranteeing bit-identical rounding behaviour
    between execution vehicles. *)

(** Round to nearest, ties to even (the x87 default rounding mode). *)
val rint : float -> float

(** FIST/FISTP conversion to a signed integer of [bits] (16 or 32); NaN and
    out-of-range values produce the integer indefinite. Result is canonical
    (masked). *)
val fist : bits:int -> float -> int

(** CVTTSS2SI: truncating conversion to signed 32-bit. *)
val cvtt32 : float -> int

val f32_of_bits : int -> float
val bits_of_f32 : float -> int
val f64_of_bits : int64 -> float
val bits_of_f64 : float -> int64

(** Lane accessors for two packed 32-bit floats in an int64 XMM half. *)
val ps_get : int64 -> int -> float

val ps_set : int64 -> int -> float -> int64
