lib/ia32/fpu.mli: Format
