lib/ia32/fpconv.ml: Float Int32 Int64 Word
