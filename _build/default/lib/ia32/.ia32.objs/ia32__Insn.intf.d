lib/ia32/insn.mli: Format
