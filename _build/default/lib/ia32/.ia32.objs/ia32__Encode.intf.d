lib/ia32/encode.mli: Insn
