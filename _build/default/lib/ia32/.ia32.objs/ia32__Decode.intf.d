lib/ia32/decode.mli: Insn Memory
