lib/ia32/interp.mli: Fault State
