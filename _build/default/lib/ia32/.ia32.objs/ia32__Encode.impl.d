lib/ia32/encode.ml: Buffer Char Insn List Printf String Word
