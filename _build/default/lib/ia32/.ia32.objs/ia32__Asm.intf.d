lib/ia32/asm.mli: Insn Memory State
