lib/ia32/insn.ml: Array Fmt Printf String Word
