lib/ia32/interp.ml: Decode Fault Float Fpconv Fpu Insn Int64 Memory State Word
