lib/ia32/fault.ml: Fmt
