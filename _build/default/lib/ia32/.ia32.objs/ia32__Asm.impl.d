lib/ia32/asm.ml: Buffer Char Encode Fpconv Hashtbl Insn Int64 List Memory Printf State String Word
