lib/ia32/state.ml: Array Fmt Fpu Insn Int64 List Memory Word
