lib/ia32/fault.mli: Format
