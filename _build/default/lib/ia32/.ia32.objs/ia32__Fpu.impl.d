lib/ia32/fpu.ml: Array Bool Fault Float Fmt Int64 List String
