lib/ia32/fpconv.mli:
