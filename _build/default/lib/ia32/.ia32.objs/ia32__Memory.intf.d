lib/ia32/memory.mli:
