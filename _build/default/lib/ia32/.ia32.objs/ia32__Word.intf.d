lib/ia32/word.mli:
