lib/ia32/memory.ml: Bytes Char Fault Hashtbl Int32 Int64 List String Word
