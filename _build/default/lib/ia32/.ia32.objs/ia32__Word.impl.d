lib/ia32/word.ml: Int64 Printf
