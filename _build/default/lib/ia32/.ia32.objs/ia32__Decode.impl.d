lib/ia32/decode.ml: Insn Memory Word
