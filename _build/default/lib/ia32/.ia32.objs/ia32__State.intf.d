lib/ia32/state.mli: Format Fpu Insn Memory
