type access = Read | Write | Fetch

type t =
  | Page_fault of int * access (* linear address *)
  | Divide_error
  | Invalid_opcode
  | Fp_stack_fault (* x87 stack overflow/underflow *)
  | Fp_fault (* other x87 numeric fault (we model invalid operation) *)
  | Simd_fault (* unmasked SSE numeric fault *)
  | Privileged (* hlt in user mode *)
  | Breakpoint

exception Fault of t

let access_name = function Read -> "read" | Write -> "write" | Fetch -> "fetch"

let pp ppf = function
  | Page_fault (a, k) -> Fmt.pf ppf "#PF(%s @ 0x%08x)" (access_name k) a
  | Divide_error -> Fmt.string ppf "#DE"
  | Invalid_opcode -> Fmt.string ppf "#UD"
  | Fp_stack_fault -> Fmt.string ppf "#MF(stack)"
  | Fp_fault -> Fmt.string ppf "#MF"
  | Simd_fault -> Fmt.string ppf "#XM"
  | Privileged -> Fmt.string ppf "#GP(priv)"
  | Breakpoint -> Fmt.string ppf "#BP"

let to_string t = Fmt.str "%a" pp t

(* IA-32 exception vector numbers, used when delivering to the guest
   application's handler table. *)
let vector = function
  | Divide_error -> 0
  | Breakpoint -> 3
  | Invalid_opcode -> 6
  | Fp_stack_fault | Fp_fault -> 16
  | Page_fault _ -> 14
  | Privileged -> 13
  | Simd_fault -> 19

let equal (a : t) (b : t) = a = b
