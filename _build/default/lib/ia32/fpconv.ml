(* Shared float/int conversion helpers. Both the reference interpreter and
   the translated code use exactly these, so the two execution vehicles
   agree bit-for-bit on conversions and rounding. *)

(* Round to nearest, ties to even — the x87 default rounding mode. *)
let rint x =
  if Float.is_integer x || Float.is_nan x then x
  else
    let fl = Float.floor x in
    let d = x -. fl in
    if d > 0.5 then fl +. 1.0
    else if d < 0.5 then fl
    else if Float.rem fl 2.0 = 0.0 then fl
    else fl +. 1.0

(* x87 FIST/FISTP to a signed integer of [bits] (16 or 32): rounds to
   nearest-even; out-of-range and NaN store the "integer indefinite". *)
let fist ~bits x =
  let lo = -.Float.pow 2.0 (Float.of_int (bits - 1)) in
  let hi = -.lo -. 1.0 in
  let indefinite = 1 lsl (bits - 1) in
  if Float.is_nan x then indefinite
  else
    let r = rint x in
    if r < lo || r > hi then indefinite else Word.mask (bits / 8) (Float.to_int r)

(* CVTTSS2SI: truncation; out-of-range and NaN give the indefinite. *)
let cvtt32 x =
  if Float.is_nan x || x >= 2147483648.0 || x < -2147483648.0 then 0x80000000
  else Word.mask32 (Float.to_int (Float.trunc x))

(* Bit conversions between canonical ints and floats. *)
let f32_of_bits v = Int32.float_of_bits (Int32.of_int (Word.mask32 v))
let bits_of_f32 f = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF
let f64_of_bits = Int64.float_of_bits
let bits_of_f64 = Int64.bits_of_float

(* Packed-single views of an XMM half (two 32-bit floats in an int64). *)
let ps_get half i =
  if i = 0 then f32_of_bits (Word.lo32 half) else f32_of_bits (Word.hi32 half)

let ps_set half i f =
  let b = bits_of_f32 f in
  if i = 0 then Word.to_i64 ~lo:b ~hi:(Word.hi32 half)
  else Word.to_i64 ~lo:(Word.lo32 half) ~hi:b
