(* IA-32 binary encoder for the modeled subset. Produces real x86 machine
   code: prefixes, opcode, ModRM, SIB, displacement, immediate. The decoder
   ({!Decode}) is its inverse; round-tripping is property-tested. *)

open Insn

exception Cannot_encode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cannot_encode s)) fmt

type emitter = { buf : Buffer.t; mutable ip : int }

let byte e v = Buffer.add_char e.buf (Char.chr (v land 0xFF))

let word16 e v =
  byte e v;
  byte e (v lsr 8)

let word32 e v =
  byte e v;
  byte e (v lsr 8);
  byte e (v lsr 16);
  byte e (v lsr 24)

let fits_s8 v =
  let s = Word.signed32 v in
  s >= -128 && s <= 127

let scale_bits = function
  | 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3
  | s -> fail "bad scale %d" s

(* ModRM (+ SIB + displacement) with [ext] in the reg field. *)
let modrm_mem e ~ext (m : mem) =
  let ext = ext land 7 in
  let disp = Word.mask32 m.disp in
  (match m.index with
  | Some (r, _) when r = Esp -> fail "esp cannot be an index register"
  | _ -> ());
  match (m.base, m.index) with
  | None, None ->
    (* disp32 absolute *)
    byte e (0x00 lor (ext lsl 3) lor 0x5);
    word32 e disp
  | None, Some (idx, sc) ->
    (* SIB with no base: mod=00, base=101, disp32 *)
    byte e (0x00 lor (ext lsl 3) lor 0x4);
    byte e ((scale_bits sc lsl 6) lor (reg_index idx lsl 3) lor 0x5);
    word32 e disp
  | Some base, index ->
    let need_sib = index <> None || base = Esp in
    let md =
      if disp = 0 && base <> Ebp then 0b00
      else if fits_s8 disp then 0b01
      else 0b10
    in
    let rm = if need_sib then 0x4 else reg_index base in
    byte e ((md lsl 6) lor (ext lsl 3) lor rm);
    if need_sib then begin
      let idx_bits =
        match index with
        | Some (idx, sc) -> (scale_bits sc lsl 6) lor (reg_index idx lsl 3)
        | None -> 0x4 lsl 3 (* no index *)
      in
      byte e (idx_bits lor reg_index base)
    end;
    (match md with
    | 0b01 -> byte e disp
    | 0b10 -> word32 e disp
    | _ -> ())

let modrm e ~ext operand =
  match operand with
  | R r -> byte e (0xC0 lor ((ext land 7) lsl 3) lor reg_index r)
  | M m -> modrm_mem e ~ext m
  | I _ -> fail "immediate operand where r/m expected"

let modrm_mmx e ~ext = function
  | MM i -> byte e (0xC0 lor ((ext land 7) lsl 3) lor (i land 7))
  | MMem m -> modrm_mem e ~ext m

let modrm_xmm e ~ext = function
  | XM i -> byte e (0xC0 lor ((ext land 7) lsl 3) lor (i land 7))
  | XMem m -> modrm_mem e ~ext m

(* Operand-size prefix for 16-bit forms. *)
let osize e = function S16 -> byte e 0x66 | S8 | S32 -> ()

let imm_for_size e size v =
  match size with
  | S8 -> byte e v
  | S16 -> word16 e v
  | S32 -> word32 e v

(* Relative displacement of a branch: we always emit rel32 forms, so the
   instruction length is independent of the target (the assembler relies on
   this for single-pass layout). [next] is the address after the insn. *)
let rel32 e ~next target = word32 e (Word.mask32 (target - next))

let encode_fp e f =
  let esc n = byte e n in
  let mem_form escb ext m = esc escb; modrm_mem e ~ext m in
  let reg_form escb base i = esc escb; byte e (base + (i land 7)) in
  match f with
  | Fld_m (F32, m) -> mem_form 0xD9 0 m
  | Fld_m (F64, m) -> mem_form 0xDD 0 m
  | Fld_st i -> reg_form 0xD9 0xC0 i
  | Fld1 -> esc 0xD9; byte e 0xE8
  | Fldz -> esc 0xD9; byte e 0xEE
  | Fldpi -> esc 0xD9; byte e 0xEB
  | Fst_m (F32, m, false) -> mem_form 0xD9 2 m
  | Fst_m (F32, m, true) -> mem_form 0xD9 3 m
  | Fst_m (F64, m, false) -> mem_form 0xDD 2 m
  | Fst_m (F64, m, true) -> mem_form 0xDD 3 m
  | Fst_st (i, false) -> reg_form 0xDD 0xD0 i
  | Fst_st (i, true) -> reg_form 0xDD 0xD8 i
  | Fild (I16, m) -> mem_form 0xDF 0 m
  | Fild (I32, m) -> mem_form 0xDB 0 m
  | Fist_m (I16, m, false) -> mem_form 0xDF 2 m
  | Fist_m (I16, m, true) -> mem_form 0xDF 3 m
  | Fist_m (I32, m, false) -> mem_form 0xDB 2 m
  | Fist_m (I32, m, true) -> mem_form 0xDB 3 m
  | Fop_st0_st (op, i) ->
    let base =
      match op with
      | FAdd -> 0xC0 | FMul -> 0xC8 | FSub -> 0xE0 | FSubr -> 0xE8
      | FDiv -> 0xF0 | FDivr -> 0xF8
    in
    reg_form 0xD8 base i
  | Fop_st_st0 (op, i, pop) ->
    (* DC/DE forms swap sub/subr and div/divr relative to D8. *)
    let base =
      match op with
      | FAdd -> 0xC0 | FMul -> 0xC8 | FSubr -> 0xE0 | FSub -> 0xE8
      | FDivr -> 0xF0 | FDiv -> 0xF8
    in
    reg_form (if pop then 0xDE else 0xDC) base i
  | Fop_m (op, fs, m) ->
    let ext =
      match op with
      | FAdd -> 0 | FMul -> 1 | FSub -> 4 | FSubr -> 5 | FDiv -> 6 | FDivr -> 7
    in
    mem_form (match fs with F32 -> 0xD8 | F64 -> 0xDC) ext m
  | Fchs -> esc 0xD9; byte e 0xE0
  | Fabs -> esc 0xD9; byte e 0xE1
  | Fsqrt -> esc 0xD9; byte e 0xFA
  | Frndint -> esc 0xD9; byte e 0xFC
  | Fcom_st (i, 0) -> reg_form 0xD8 0xD0 i
  | Fcom_st (i, 1) -> reg_form 0xD8 0xD8 i
  | Fcom_st (1, 2) -> esc 0xDE; byte e 0xD9 (* fcompp *)
  | Fcom_st (i, p) -> fail "fcom st(%d) pops=%d not encodable" i p
  | Fcom_m (F32, m, 0) -> mem_form 0xD8 2 m
  | Fcom_m (F32, m, 1) -> mem_form 0xD8 3 m
  | Fcom_m (F64, m, 0) -> mem_form 0xDC 2 m
  | Fcom_m (F64, m, 1) -> mem_form 0xDC 3 m
  | Fcom_m (_, _, p) -> fail "fcom mem pops=%d not encodable" p
  | Fnstsw_ax -> esc 0xDF; byte e 0xE0
  | Fxch i -> reg_form 0xD9 0xC8 i
  | Ffree i -> reg_form 0xDD 0xC0 i
  | Fincstp -> esc 0xD9; byte e 0xF7
  | Fdecstp -> esc 0xD9; byte e 0xF6

let encode_mmx e x =
  let op2 opc ext rm = byte e 0x0F; byte e opc; modrm_mmx e ~ext rm in
  match x with
  | Movd_to_mm (mm, src) -> byte e 0x0F; byte e 0x6E; modrm e ~ext:mm src
  | Movd_from_mm (dst, mm) -> byte e 0x0F; byte e 0x7E; modrm e ~ext:mm dst
  | Movq_to_mm (mm, src) -> op2 0x6F mm src
  | Movq_from_mm (dst, mm) -> op2 0x7F mm dst
  | Padd (w, mm, src) ->
    let opc = match w with 1 -> 0xFC | 2 -> 0xFD | 4 -> 0xFE | 8 -> 0xD4
      | _ -> fail "padd width %d" w in
    op2 opc mm src
  | Psub (w, mm, src) ->
    let opc = match w with 1 -> 0xF8 | 2 -> 0xF9 | 4 -> 0xFA | 8 -> 0xFB
      | _ -> fail "psub width %d" w in
    op2 opc mm src
  | Pmullw (mm, src) -> op2 0xD5 mm src
  | Pand (mm, src) -> op2 0xDB mm src
  | Por (mm, src) -> op2 0xEB mm src
  | Pxor (mm, src) -> op2 0xEF mm src
  | Pcmpeq (w, mm, src) ->
    let opc = match w with 1 -> 0x74 | 2 -> 0x75 | 4 -> 0x76
      | _ -> fail "pcmpeq width %d" w in
    op2 opc mm src
  | Psll (w, mm, n) ->
    let opc = match w with 2 -> 0x71 | 4 -> 0x72 | 8 -> 0x73
      | _ -> fail "psll width %d" w in
    byte e 0x0F; byte e opc; modrm_mmx e ~ext:6 (MM mm); byte e n
  | Psrl (w, mm, n) ->
    let opc = match w with 2 -> 0x71 | 4 -> 0x72 | 8 -> 0x73
      | _ -> fail "psrl width %d" w in
    byte e 0x0F; byte e opc; modrm_mmx e ~ext:2 (MM mm); byte e n
  | Emms -> byte e 0x0F; byte e 0x77

let sse_fmt_prefix e = function
  | Packed_single -> ()
  | Packed_double -> byte e 0x66
  | Scalar_single -> byte e 0xF3
  | Scalar_double -> byte e 0xF2
  | Packed_int -> byte e 0x66

let encode_sse e x =
  let op2 ?prefix opc reg rm =
    (match prefix with Some p -> byte e p | None -> ());
    byte e 0x0F;
    byte e opc;
    modrm_xmm e ~ext:reg rm
  in
  let mov ?prefix ~ld ~st dst src =
    match (dst, src) with
    | XM d, _ -> op2 ?prefix ld d src
    | XMem _, XM s -> op2 ?prefix st s dst
    | XMem _, XMem _ -> fail "sse mov mem,mem"
  in
  match x with
  | Movaps (dst, src) -> mov ~ld:0x28 ~st:0x29 dst src
  | Movups (dst, src) -> mov ~ld:0x10 ~st:0x11 dst src
  | Movss (dst, src) -> mov ~prefix:0xF3 ~ld:0x10 ~st:0x11 dst src
  | Movsd_x (dst, src) -> mov ~prefix:0xF2 ~ld:0x10 ~st:0x11 dst src
  | Sse_arith (op, fmt, dst, src) ->
    sse_fmt_prefix e fmt;
    let opc =
      match op with
      | SAdd -> 0x58 | SMul -> 0x59 | SSub -> 0x5C | SMin -> 0x5D
      | SDiv -> 0x5E | SMax -> 0x5F
    in
    op2 opc dst src
  | Sqrtps (dst, src) -> op2 0x51 dst src
  | Andps (dst, src) -> op2 0x54 dst src
  | Orps (dst, src) -> op2 0x56 dst src
  | Xorps (dst, src) -> op2 0x57 dst src
  | Paddd_x (dst, src) -> op2 ~prefix:0x66 0xFE dst src
  | Psubd_x (dst, src) -> op2 ~prefix:0x66 0xFA dst src
  | Ucomiss (dst, src) -> op2 0x2E dst src
  | Cvtsi2ss (dst, src) ->
    byte e 0xF3; byte e 0x0F; byte e 0x2A; modrm e ~ext:dst src
  | Cvttss2si (dst, src) -> op2 ~prefix:0xF3 0x2C (reg_index dst) src
  | Cvtss2sd (dst, src) -> op2 ~prefix:0xF3 0x5A dst src
  | Cvtsd2ss (dst, src) -> op2 ~prefix:0xF2 0x5A dst src

let rep_prefix e = function
  | No_rep -> ()
  | Rep | Repe -> byte e 0xF3
  | Repne -> byte e 0xF2

let encode_insn e insn =
  let next_ip len = e.ip + len in
  match insn with
  | Alu (op, size, dst, src) -> (
    let a = alu_index op in
    osize e size;
    match (dst, src) with
    | (R _ | M _), R r ->
      byte e ((a * 8) + if size = S8 then 0x00 else 0x01);
      modrm e ~ext:(reg_index r) dst
    | R r, M _ ->
      byte e ((a * 8) + if size = S8 then 0x02 else 0x03);
      modrm e ~ext:(reg_index r) src
    | (R _ | M _), I v ->
      if size = S8 then begin
        byte e 0x80; modrm e ~ext:a dst; byte e v
      end
      else if fits_s8 v then begin
        byte e 0x83; modrm e ~ext:a dst; byte e v
      end
      else begin
        byte e 0x81; modrm e ~ext:a dst; imm_for_size e size v
      end
    | I _, _ | _, M _ -> fail "bad ALU operands")
  | Test (size, dst, src) -> (
    osize e size;
    match (dst, src) with
    | (R _ | M _), R r ->
      byte e (if size = S8 then 0x84 else 0x85);
      modrm e ~ext:(reg_index r) dst
    | (R _ | M _), I v ->
      byte e (if size = S8 then 0xF6 else 0xF7);
      modrm e ~ext:0 dst;
      imm_for_size e size v
    | _ -> fail "bad TEST operands")
  | Mov (size, dst, src) -> (
    osize e size;
    match (dst, src) with
    | (R _ | M _), R r ->
      byte e (if size = S8 then 0x88 else 0x89);
      modrm e ~ext:(reg_index r) dst
    | R r, M _ ->
      byte e (if size = S8 then 0x8A else 0x8B);
      modrm e ~ext:(reg_index r) src
    | R r, I v ->
      byte e ((if size = S8 then 0xB0 else 0xB8) + reg_index r);
      imm_for_size e size v
    | M _, I v ->
      byte e (if size = S8 then 0xC6 else 0xC7);
      modrm e ~ext:0 dst;
      imm_for_size e size v
    | I _, _ | _, M _ -> fail "bad MOV operands")
  | Movzx (ssize, r, src) ->
    byte e 0x0F;
    byte e (match ssize with S8 -> 0xB6 | S16 -> 0xB7 | S32 -> fail "movzx src32");
    modrm e ~ext:(reg_index r) src
  | Movsx (ssize, r, src) ->
    byte e 0x0F;
    byte e (match ssize with S8 -> 0xBE | S16 -> 0xBF | S32 -> fail "movsx src32");
    modrm e ~ext:(reg_index r) src
  | Lea (r, m) -> byte e 0x8D; modrm e ~ext:(reg_index r) (M m)
  | Shift (sh, size, dst, amt) -> (
    let ext = match sh with Rol -> 0 | Ror -> 1 | Shl -> 4 | Shr -> 5 | Sar -> 7 in
    osize e size;
    match amt with
    | Amt_imm 1 ->
      byte e (if size = S8 then 0xD0 else 0xD1);
      modrm e ~ext dst
    | Amt_imm n ->
      byte e (if size = S8 then 0xC0 else 0xC1);
      modrm e ~ext dst;
      byte e n
    | Amt_cl ->
      byte e (if size = S8 then 0xD2 else 0xD3);
      modrm e ~ext dst)
  | Shld (dst, r, Amt_imm n) ->
    byte e 0x0F; byte e 0xA4; modrm e ~ext:(reg_index r) dst; byte e n
  | Shld (dst, r, Amt_cl) ->
    byte e 0x0F; byte e 0xA5; modrm e ~ext:(reg_index r) dst
  | Shrd (dst, r, Amt_imm n) ->
    byte e 0x0F; byte e 0xAC; modrm e ~ext:(reg_index r) dst; byte e n
  | Shrd (dst, r, Amt_cl) ->
    byte e 0x0F; byte e 0xAD; modrm e ~ext:(reg_index r) dst
  | Inc (size, dst) ->
    osize e size;
    byte e (if size = S8 then 0xFE else 0xFF);
    modrm e ~ext:0 dst
  | Dec (size, dst) ->
    osize e size;
    byte e (if size = S8 then 0xFE else 0xFF);
    modrm e ~ext:1 dst
  | Not (size, dst) ->
    osize e size;
    byte e (if size = S8 then 0xF6 else 0xF7);
    modrm e ~ext:2 dst
  | Neg (size, dst) ->
    osize e size;
    byte e (if size = S8 then 0xF6 else 0xF7);
    modrm e ~ext:3 dst
  | Imul_rr (r, src) -> byte e 0x0F; byte e 0xAF; modrm e ~ext:(reg_index r) src
  | Imul_rri (r, src, v) ->
    if fits_s8 v then begin
      byte e 0x6B; modrm e ~ext:(reg_index r) src; byte e v
    end
    else begin
      byte e 0x69; modrm e ~ext:(reg_index r) src; word32 e v
    end
  | Mul1 (size, src) ->
    osize e size;
    byte e (if size = S8 then 0xF6 else 0xF7);
    modrm e ~ext:4 src
  | Imul1 (size, src) ->
    osize e size;
    byte e (if size = S8 then 0xF6 else 0xF7);
    modrm e ~ext:5 src
  | Div (size, src) ->
    osize e size;
    byte e (if size = S8 then 0xF6 else 0xF7);
    modrm e ~ext:6 src
  | Idiv (size, src) ->
    osize e size;
    byte e (if size = S8 then 0xF6 else 0xF7);
    modrm e ~ext:7 src
  | Cdq -> byte e 0x99
  | Cwde -> byte e 0x98
  | Xchg (size, dst, r) ->
    osize e size;
    byte e (if size = S8 then 0x86 else 0x87);
    modrm e ~ext:(reg_index r) dst
  | Push (R r) -> byte e (0x50 + reg_index r)
  | Push (I v) ->
    if fits_s8 v then begin byte e 0x6A; byte e v end
    else begin byte e 0x68; word32 e v end
  | Push (M _ as m) -> byte e 0xFF; modrm e ~ext:6 m
  | Pop (R r) -> byte e (0x58 + reg_index r)
  | Pop (M _ as m) -> byte e 0x8F; modrm e ~ext:0 m
  | Pop (I _) -> fail "pop immediate"
  | Pushfd -> byte e 0x9C
  | Popfd -> byte e 0x9D
  | Jmp target -> byte e 0xE9; rel32 e ~next:(next_ip 5) target
  | Jcc (c, target) ->
    byte e 0x0F;
    byte e (0x80 + cond_index c);
    rel32 e ~next:(next_ip 6) target
  | Call target -> byte e 0xE8; rel32 e ~next:(next_ip 5) target
  | Jmp_ind ((R _ | M _) as o) -> byte e 0xFF; modrm e ~ext:4 o
  | Call_ind ((R _ | M _) as o) -> byte e 0xFF; modrm e ~ext:2 o
  | Jmp_ind (I _) | Call_ind (I _) -> fail "indirect branch to immediate"
  | Ret 0 -> byte e 0xC3
  | Ret n -> byte e 0xC2; word16 e n
  | Setcc (c, dst) ->
    byte e 0x0F;
    byte e (0x90 + cond_index c);
    modrm e ~ext:0 dst
  | Cmovcc (c, r, src) ->
    byte e 0x0F;
    byte e (0x40 + cond_index c);
    modrm e ~ext:(reg_index r) src
  | Movs (size, rep) ->
    rep_prefix e rep;
    osize e size;
    byte e (if size = S8 then 0xA4 else 0xA5)
  | Stos (size, rep) ->
    rep_prefix e rep;
    osize e size;
    byte e (if size = S8 then 0xAA else 0xAB)
  | Lods (size, rep) ->
    rep_prefix e rep;
    osize e size;
    byte e (if size = S8 then 0xAC else 0xAD)
  | Scas (size, rep) ->
    rep_prefix e rep;
    osize e size;
    byte e (if size = S8 then 0xAE else 0xAF)
  | Cld -> byte e 0xFC
  | Std -> byte e 0xFD
  | Int_n n -> byte e 0xCD; byte e n
  | Hlt -> byte e 0xF4
  | Ud2 -> byte e 0x0F; byte e 0x0B
  | Nop -> byte e 0x90
  | Fp f -> encode_fp e f
  | Mmx x -> encode_mmx e x
  | Sse x -> encode_sse e x

(* [encode ~ip insn] is the machine code of [insn] placed at address [ip]. *)
let encode ~ip insn =
  let e = { buf = Buffer.create 8; ip } in
  encode_insn e insn;
  Buffer.contents e.buf

(* Instruction length; independent of placement because branches are always
   rel32. *)
let length insn = String.length (encode ~ip:0 insn)

let encode_list ~ip insns =
  let buf = Buffer.create 64 in
  let cur = ref ip in
  List.iter
    (fun insn ->
      let s = encode ~ip:!cur insn in
      Buffer.add_string buf s;
      cur := !cur + String.length s)
    insns;
  Buffer.contents buf
