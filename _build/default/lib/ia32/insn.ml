(* IA-32 instruction AST shared by the assembler, encoder, decoder,
   reference interpreter and the binary translator. *)

type reg = Eax | Ecx | Edx | Ebx | Esp | Ebp | Esi | Edi

let reg_index = function
  | Eax -> 0 | Ecx -> 1 | Edx -> 2 | Ebx -> 3
  | Esp -> 4 | Ebp -> 5 | Esi -> 6 | Edi -> 7

let reg_of_index = function
  | 0 -> Eax | 1 -> Ecx | 2 -> Edx | 3 -> Ebx
  | 4 -> Esp | 5 -> Ebp | 6 -> Esi | 7 -> Edi
  | n -> invalid_arg (Printf.sprintf "Insn.reg_of_index: %d" n)

let all_regs = [ Eax; Ecx; Edx; Ebx; Esp; Ebp; Esi; Edi ]

let reg_name = function
  | Eax -> "eax" | Ecx -> "ecx" | Edx -> "edx" | Ebx -> "ebx"
  | Esp -> "esp" | Ebp -> "ebp" | Esi -> "esi" | Edi -> "edi"

(* Operand sizes in bytes. 8-bit register operands use the x86 numbering
   (0-3: al,cl,dl,bl; 4-7: ah,ch,dh,bh) carried by the [reg] constructor of
   the same index. *)
type size = S8 | S16 | S32

let size_bytes = function S8 -> 1 | S16 -> 2 | S32 -> 4

type mem = {
  base : reg option;
  index : (reg * int) option; (* scale in {1,2,4,8}; index may not be Esp *)
  disp : int; (* canonical 32-bit value *)
}

let mem_abs disp = { base = None; index = None; disp = Word.mask32 disp }
let mem_b base = { base = Some base; index = None; disp = 0 }
let mem_bd base disp = { base = Some base; index = None; disp = Word.mask32 disp }
let mem_bis base index scale = { base = Some base; index = Some (index, scale); disp = 0 }
let mem_full base index scale disp =
  { base = Some base; index = Some (index, scale); disp = Word.mask32 disp }

type operand =
  | R of reg
  | M of mem
  | I of int (* immediate, canonical 32-bit *)

type cond = O | No | B | Ae | E | Ne | Be | A | S | Ns | P | Np | L | Ge | Le | G

let cond_index = function
  | O -> 0 | No -> 1 | B -> 2 | Ae -> 3 | E -> 4 | Ne -> 5 | Be -> 6 | A -> 7
  | S -> 8 | Ns -> 9 | P -> 10 | Np -> 11 | L -> 12 | Ge -> 13 | Le -> 14 | G -> 15

let cond_of_index = function
  | 0 -> O | 1 -> No | 2 -> B | 3 -> Ae | 4 -> E | 5 -> Ne | 6 -> Be | 7 -> A
  | 8 -> S | 9 -> Ns | 10 -> P | 11 -> Np | 12 -> L | 13 -> Ge | 14 -> Le | 15 -> G
  | n -> invalid_arg (Printf.sprintf "Insn.cond_of_index: %d" n)

let cond_negate c = cond_of_index (cond_index c lxor 1)

let cond_name = function
  | O -> "o" | No -> "no" | B -> "b" | Ae -> "ae" | E -> "e" | Ne -> "ne"
  | Be -> "be" | A -> "a" | S -> "s" | Ns -> "ns" | P -> "p" | Np -> "np"
  | L -> "l" | Ge -> "ge" | Le -> "le" | G -> "g"

type flag = CF | PF | AF | ZF | SF | OF | DF

let all_flags = [ CF; PF; AF; ZF; SF; OF; DF ]
let arith_flags = [ CF; PF; AF; ZF; SF; OF ]

let flag_name = function
  | CF -> "cf" | PF -> "pf" | AF -> "af" | ZF -> "zf"
  | SF -> "sf" | OF -> "of" | DF -> "df"

(* Flags read to evaluate a condition. *)
let cond_uses = function
  | O | No -> [ OF ]
  | B | Ae -> [ CF ]
  | E | Ne -> [ ZF ]
  | Be | A -> [ CF; ZF ]
  | S | Ns -> [ SF ]
  | P | Np -> [ PF ]
  | L | Ge -> [ SF; OF ]
  | Le | G -> [ ZF; SF; OF ]

type alu = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp

let alu_index = function
  | Add -> 0 | Or -> 1 | Adc -> 2 | Sbb -> 3 | And -> 4 | Sub -> 5 | Xor -> 6 | Cmp -> 7

let alu_of_index = function
  | 0 -> Add | 1 -> Or | 2 -> Adc | 3 -> Sbb | 4 -> And | 5 -> Sub | 6 -> Xor | 7 -> Cmp
  | n -> invalid_arg (Printf.sprintf "Insn.alu_of_index: %d" n)

let alu_name = function
  | Add -> "add" | Or -> "or" | Adc -> "adc" | Sbb -> "sbb"
  | And -> "and" | Sub -> "sub" | Xor -> "xor" | Cmp -> "cmp"

type shift = Shl | Shr | Sar | Rol | Ror

let shift_name = function
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Rol -> "rol" | Ror -> "ror"

type amount = Amt_imm of int | Amt_cl

type rep = No_rep | Rep | Repe | Repne

(* x87 floating point. Memory operand sizes: F32 / F64 for reals,
   I16 / I32 for integers. ST indices are relative to the top of stack. *)
type fsize = F32 | F64
type isize = I16 | I32
type fop = FAdd | FSub | FSubr | FMul | FDiv | FDivr

let fop_name = function
  | FAdd -> "fadd" | FSub -> "fsub" | FSubr -> "fsubr"
  | FMul -> "fmul" | FDiv -> "fdiv" | FDivr -> "fdivr"

type fp_insn =
  | Fld_st of int
  | Fld_m of fsize * mem
  | Fld1
  | Fldz
  | Fldpi
  | Fst_st of int * bool (* pop *)
  | Fst_m of fsize * mem * bool (* pop *)
  | Fild of isize * mem
  | Fist_m of isize * mem * bool (* pop; fist (no pop) exists for I16/I32 *)
  | Fop_st0_st of fop * int (* st0 <- st0 op st(i) *)
  | Fop_st_st0 of fop * int * bool (* st(i) <- st(i) op st0, optional pop *)
  | Fop_m of fop * fsize * mem (* st0 <- st0 op mem *)
  | Fchs
  | Fabs
  | Fsqrt
  | Frndint
  | Fcom_st of int * int (* pops: 0, 1 or 2 (fcompp has i = 1) *)
  | Fcom_m of fsize * mem * int (* pops: 0 or 1 *)
  | Fnstsw_ax
  | Fxch of int
  | Ffree of int
  | Fincstp
  | Fdecstp

(* MMX. Element width for packed ops: 1, 2, 4 or 8 bytes. Operands are an
   MMX register index (0-7) and either another MMX register or a memory
   location. *)
type mmx_rm = MM of int | MMem of mem

type mmx_insn =
  | Movd_to_mm of int * operand (* r/m32 -> mm *)
  | Movd_from_mm of operand * int (* mm -> r/m32 *)
  | Movq_to_mm of int * mmx_rm
  | Movq_from_mm of mmx_rm * int
  | Padd of int * int * mmx_rm (* elem bytes, dst mm, src *)
  | Psub of int * int * mmx_rm
  | Pmullw of int * mmx_rm
  | Pand of int * mmx_rm
  | Por of int * mmx_rm
  | Pxor of int * mmx_rm
  | Pcmpeq of int * int * mmx_rm (* elem bytes, dst, src *)
  | Psll of int * int * int (* elem bytes, mm, imm *)
  | Psrl of int * int * int
  | Emms

(* SSE / SSE2. XMM operands: register index (0-7) or memory. *)
type xmm_rm = XM of int | XMem of mem

type sse_op = SAdd | SSub | SMul | SDiv | SMin | SMax

let sse_op_name = function
  | SAdd -> "add" | SSub -> "sub" | SMul -> "mul"
  | SDiv -> "div" | SMin -> "min" | SMax -> "max"

(* Data format of an SSE operation, as tracked by the translator. *)
type sse_fmt = Packed_single | Packed_double | Scalar_single | Scalar_double | Packed_int

let sse_fmt_name = function
  | Packed_single -> "ps" | Packed_double -> "pd"
  | Scalar_single -> "ss" | Scalar_double -> "sd" | Packed_int -> "pi"

type sse_insn =
  | Movaps of xmm_rm * xmm_rm (* dst, src; one side must be a register *)
  | Movups of xmm_rm * xmm_rm
  | Movss of xmm_rm * xmm_rm
  | Movsd_x of xmm_rm * xmm_rm
  | Sse_arith of sse_op * sse_fmt * int * xmm_rm (* fmt in {ps,pd,ss,sd} *)
  | Sqrtps of int * xmm_rm
  | Andps of int * xmm_rm
  | Orps of int * xmm_rm
  | Xorps of int * xmm_rm
  | Paddd_x of int * xmm_rm (* SSE2 packed 32-bit int add *)
  | Psubd_x of int * xmm_rm
  | Ucomiss of int * xmm_rm (* sets ZF/PF/CF *)
  | Cvtsi2ss of int * operand (* r/m32 -> xmm scalar single *)
  | Cvttss2si of reg * xmm_rm
  | Cvtss2sd of int * xmm_rm
  | Cvtsd2ss of int * xmm_rm

type insn =
  | Alu of alu * size * operand * operand (* dst, src; Cmp writes no result *)
  | Test of size * operand * operand
  | Mov of size * operand * operand
  | Movzx of size * reg * operand (* src size (S8/S16), 32-bit dst, r/m src *)
  | Movsx of size * reg * operand
  | Lea of reg * mem
  | Shift of shift * size * operand * amount
  | Shld of operand * reg * amount (* 32-bit only *)
  | Shrd of operand * reg * amount
  | Inc of size * operand
  | Dec of size * operand
  | Neg of size * operand
  | Not of size * operand
  | Imul_rr of reg * operand (* r32 <- r32 * r/m32 *)
  | Imul_rri of reg * operand * int (* r32 <- r/m32 * imm *)
  | Mul1 of size * operand (* edx:eax <- eax * r/m (unsigned) *)
  | Imul1 of size * operand
  | Div of size * operand (* eax, edx <- edx:eax / r/m *)
  | Idiv of size * operand
  | Cdq
  | Cwde
  | Xchg of size * operand * reg
  | Push of operand
  | Pop of operand
  | Pushfd
  | Popfd
  | Jmp of int (* absolute target *)
  | Jcc of cond * int
  | Call of int
  | Jmp_ind of operand
  | Call_ind of operand
  | Ret of int (* extra bytes to pop *)
  | Setcc of cond * operand
  | Cmovcc of cond * reg * operand
  | Movs of size * rep
  | Stos of size * rep
  | Lods of size * rep
  | Scas of size * rep
  | Cld
  | Std
  | Int_n of int
  | Hlt
  | Ud2
  | Nop
  | Fp of fp_insn
  | Mmx of mmx_insn
  | Sse of sse_insn

(* ------------------------------------------------------------------ *)
(* Metadata used by the translator.                                    *)
(* ------------------------------------------------------------------ *)

let is_cmp_like = function Alu (Cmp, _, _, _) | Test (_, _, _) -> true | _ -> false

(* Flags written by an instruction. Shifts by a possibly-zero CL amount
   conservatively count as writing (the interpreter leaves flags unchanged
   for a zero shift; the translator treats CL shifts as both using and
   defining flags, see [flags_use]). *)
let flags_def = function
  | Alu ((Add | Sub | Adc | Sbb | Cmp), _, _, _) -> arith_flags
  | Alu ((And | Or | Xor), _, _, _) -> arith_flags
  | Test _ -> arith_flags
  | Inc _ | Dec _ -> [ PF; AF; ZF; SF; OF ]
  | Neg _ -> arith_flags
  | Shift ((Rol | Ror), _, _, _) -> [ CF; OF ]
  | Shift ((Shl | Shr | Sar), _, _, _) -> [ CF; PF; ZF; SF; OF ]
  | Shld _ | Shrd _ -> [ CF; PF; ZF; SF; OF ]
  | Imul_rr _ | Imul_rri _ | Mul1 _ | Imul1 _ -> [ CF; OF ]
  | Scas _ | Popfd -> all_flags
  | Cld | Std -> [ DF ]
  | Fp Fnstsw_ax -> []
  | Sse (Ucomiss _) -> arith_flags (* zeroes OF/AF/SF, sets ZF/PF/CF *)
  | _ -> []

(* Flags guaranteed to be written (kill set for liveness): shifts by CL or
   by an immediate count of zero leave the flags untouched, so they may-def
   ({!flags_def}) but must not kill. *)
let flags_def_must insn =
  match insn with
  | Shift (_, _, _, (Amt_cl | Amt_imm 0)) -> []
  | Shift (_, _, _, Amt_imm n) when n land 31 = 0 -> []
  | Shld (_, _, (Amt_cl | Amt_imm 0)) | Shrd (_, _, (Amt_cl | Amt_imm 0)) -> []
  | Shld (_, _, Amt_imm n) | Shrd (_, _, Amt_imm n) when n land 31 = 0 -> []
  | _ -> flags_def insn

(* Flags read by an instruction. *)
let flags_use = function
  | Alu ((Adc | Sbb), _, _, _) -> [ CF ]
  | Shift ((Rol | Ror), _, _, Amt_cl) -> [ CF; OF ] (* zero-count keeps old *)
  | Shift ((Shl | Shr | Sar), _, _, Amt_cl) -> [ CF; PF; ZF; SF; OF ]
  | Shld (_, _, Amt_cl) | Shrd (_, _, Amt_cl) -> [ CF; PF; ZF; SF; OF ]
  | Jcc (c, _) | Setcc (c, _) | Cmovcc (c, _, _) -> cond_uses c
  | Movs _ | Stos _ | Lods _ | Scas _ -> [ DF ]
  | Pushfd -> all_flags
  | _ -> []

(* An instruction after which control leaves the basic block. *)
let is_block_end = function
  | Jmp _ | Jcc _ | Call _ | Jmp_ind _ | Call_ind _ | Ret _ | Int_n _ | Hlt | Ud2 -> true
  | _ -> false

let mem_of_operand = function M m -> Some m | R _ | I _ -> None

let mmx_mem = function MMem m -> Some m | MM _ -> None
let xmm_mem = function XMem m -> Some m | XM _ -> None

let fp_mem = function
  | Fld_m (_, m) | Fst_m (_, m, _) | Fild (_, m) | Fist_m (_, m, _)
  | Fop_m (_, _, m) | Fcom_m (_, m, _) ->
    Some m
  | Fld_st _ | Fld1 | Fldz | Fldpi | Fst_st _ | Fop_st0_st _ | Fop_st_st0 _
  | Fchs | Fabs | Fsqrt | Frndint | Fcom_st _ | Fnstsw_ax | Fxch _ | Ffree _
  | Fincstp | Fdecstp ->
    None

(* Memory locations touched by an instruction, together with the access
   width in bytes and whether it is a store. Implicit stack and string
   accesses are reported with [base] only. *)
let mem_refs insn =
  let rd m n = [ (m, n, false) ] in
  let wr m n = [ (m, n, true) ] in
  let rw m n = [ (m, n, false); (m, n, true) ] in
  let sz s = size_bytes s in
  let fsz = function F32 -> 4 | F64 -> 8 in
  let isz = function I16 -> 2 | I32 -> 4 in
  match insn with
  | Alu (Cmp, s, d, src) | Test (s, d, src) -> (
    match (d, src) with
    | M m, _ | _, M m -> rd m (sz s)
    | _ -> [])
  | Alu (_, s, M m, _) -> rw m (sz s)
  | Alu (_, s, _, M m) -> rd m (sz s)
  | Mov (s, M m, _) -> wr m (sz s)
  | Mov (s, _, M m) -> rd m (sz s)
  | Movzx (s, _, M m) | Movsx (s, _, M m) -> rd m (sz s)
  | Shift (_, s, M m, _) -> rw m (sz s)
  | Shld (M m, _, _) | Shrd (M m, _, _) -> rw m 4
  | Inc (s, M m) | Dec (s, M m) | Neg (s, M m) | Not (s, M m) -> rw m (sz s)
  | Imul_rr (_, M m) | Imul_rri (_, M m, _) -> rd m 4
  | Mul1 (s, M m) | Imul1 (s, M m) | Div (s, M m) | Idiv (s, M m) -> rd m (sz s)
  | Xchg (s, M m, _) -> rw m (sz s)
  | Push (M m) -> rd m 4 @ wr (mem_bd Esp (-4)) 4
  | Push _ -> wr (mem_bd Esp (-4)) 4
  | Pop (M m) -> rd (mem_b Esp) 4 @ wr m 4
  | Pop _ -> rd (mem_b Esp) 4
  | Pushfd -> wr (mem_bd Esp (-4)) 4
  | Popfd -> rd (mem_b Esp) 4
  | Call _ | Call_ind (R _) | Call_ind (I _) -> wr (mem_bd Esp (-4)) 4
  | Call_ind (M m) -> rd m 4 @ wr (mem_bd Esp (-4)) 4
  | Jmp_ind (M m) -> rd m 4
  | Ret _ -> rd (mem_b Esp) 4
  | Movs (s, _) -> rd (mem_b Esi) (sz s) @ wr (mem_b Edi) (sz s)
  | Stos (s, _) -> wr (mem_b Edi) (sz s)
  | Lods (s, _) -> rd (mem_b Esi) (sz s)
  | Scas (s, _) -> rd (mem_b Edi) (sz s)
  | Setcc (_, M m) -> wr m 1
  | Cmovcc (_, _, M m) -> rd m 4
  | Fp f -> (
    match f with
    | Fld_m (fs, m) | Fop_m (_, fs, m) | Fcom_m (fs, m, _) -> rd m (fsz fs)
    | Fst_m (fs, m, _) -> wr m (fsz fs)
    | Fild (is, m) -> rd m (isz is)
    | Fist_m (is, m, _) -> wr m (isz is)
    | _ -> [])
  | Mmx x -> (
    match x with
    | Movd_to_mm (_, M m) -> rd m 4
    | Movd_from_mm (M m, _) -> wr m 4
    | Movq_to_mm (_, MMem m) -> rd m 8
    | Movq_from_mm (MMem m, _) -> wr m 8
    | Padd (_, _, MMem m) | Psub (_, _, MMem m) | Pmullw (_, MMem m)
    | Pand (_, MMem m) | Por (_, MMem m) | Pxor (_, MMem m)
    | Pcmpeq (_, _, MMem m) ->
      rd m 8
    | _ -> [])
  | Sse x -> (
    match x with
    | Movaps (XMem m, _) | Movups (XMem m, _) -> wr m 16
    | Movaps (_, XMem m) | Movups (_, XMem m) -> rd m 16
    | Movss (XMem m, _) -> wr m 4
    | Movss (_, XMem m) -> rd m 4
    | Movsd_x (XMem m, _) -> wr m 8
    | Movsd_x (_, XMem m) -> rd m 8
    | Sse_arith (_, (Packed_single | Packed_double), _, XMem m)
    | Sqrtps (_, XMem m)
    | Andps (_, XMem m) | Orps (_, XMem m) | Xorps (_, XMem m)
    | Paddd_x (_, XMem m) | Psubd_x (_, XMem m) ->
      rd m 16
    | Sse_arith (_, Scalar_single, _, XMem m) | Ucomiss (_, XMem m)
    | Cvttss2si (_, XMem m) | Cvtss2sd (_, XMem m) ->
      rd m 4
    | Sse_arith (_, (Scalar_double | Packed_int), _, XMem m)
    | Cvtsd2ss (_, XMem m) ->
      rd m 8
    | Cvtsi2ss (_, M m) -> rd m 4
    | _ -> [])
  | Lea _ | Cdq | Cwde | Jmp _ | Jcc _ | Jmp_ind (R _) | Jmp_ind (I _)
  | Setcc _ | Cmovcc _ | Cld | Std | Int_n _ | Hlt | Ud2 | Nop
  | Alu _ | Mov _ | Movzx _ | Movsx _ | Shift _ | Shld _ | Shrd _
  | Inc _ | Dec _ | Neg _ | Not _ | Imul_rr _ | Imul_rri _ | Mul1 _ | Imul1 _
  | Div _ | Idiv _ | Xchg _ ->
    []

(* Can executing this instruction raise an IA-32 exception? Used by the
   translator to decide where precise state must be recoverable. *)
let may_fault insn =
  mem_refs insn <> []
  ||
  match insn with
  | Div _ | Idiv _ | Int_n _ | Hlt | Ud2 -> true
  | Fp _ -> true (* FP stack faults *)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pretty printing (assembler-like).                                   *)
(* ------------------------------------------------------------------ *)

let pp_mem ppf { base; index; disp } =
  let parts =
    (match base with Some r -> [ reg_name r ] | None -> [])
    @ (match index with
      | Some (r, 1) -> [ reg_name r ]
      | Some (r, s) -> [ Printf.sprintf "%s*%d" (reg_name r) s ]
      | None -> [])
    @ if disp <> 0 || (base = None && index = None) then [ Printf.sprintf "0x%x" disp ] else []
  in
  Fmt.pf ppf "[%s]" (String.concat "+" parts)

let size_suffix = function S8 -> "b" | S16 -> "w" | S32 -> "d"

let reg8_name i =
  [| "al"; "cl"; "dl"; "bl"; "ah"; "ch"; "dh"; "bh" |].(i)

let reg16_name i =
  [| "ax"; "cx"; "dx"; "bx"; "sp"; "bp"; "si"; "di" |].(i)

let pp_operand size ppf = function
  | R r -> (
    match size with
    | S32 -> Fmt.string ppf (reg_name r)
    | S16 -> Fmt.string ppf (reg16_name (reg_index r))
    | S8 -> Fmt.string ppf (reg8_name (reg_index r)))
  | M m -> pp_mem ppf m
  | I v -> Fmt.pf ppf "0x%x" v

let pp_amount ppf = function
  | Amt_imm n -> Fmt.pf ppf "%d" n
  | Amt_cl -> Fmt.string ppf "cl"

let pp_fp ppf f =
  let fs = function F32 -> "dword" | F64 -> "qword" in
  let is = function I16 -> "word" | I32 -> "dword" in
  match f with
  | Fld_st i -> Fmt.pf ppf "fld st(%d)" i
  | Fld_m (s, m) -> Fmt.pf ppf "fld %s %a" (fs s) pp_mem m
  | Fld1 -> Fmt.string ppf "fld1"
  | Fldz -> Fmt.string ppf "fldz"
  | Fldpi -> Fmt.string ppf "fldpi"
  | Fst_st (i, p) -> Fmt.pf ppf "fst%s st(%d)" (if p then "p" else "") i
  | Fst_m (s, m, p) -> Fmt.pf ppf "fst%s %s %a" (if p then "p" else "") (fs s) pp_mem m
  | Fild (s, m) -> Fmt.pf ppf "fild %s %a" (is s) pp_mem m
  | Fist_m (s, m, p) -> Fmt.pf ppf "fist%s %s %a" (if p then "p" else "") (is s) pp_mem m
  | Fop_st0_st (op, i) -> Fmt.pf ppf "%s st, st(%d)" (fop_name op) i
  | Fop_st_st0 (op, i, p) ->
    Fmt.pf ppf "%s%s st(%d), st" (fop_name op) (if p then "p" else "") i
  | Fop_m (op, s, m) -> Fmt.pf ppf "%s %s %a" (fop_name op) (fs s) pp_mem m
  | Fchs -> Fmt.string ppf "fchs"
  | Fabs -> Fmt.string ppf "fabs"
  | Fsqrt -> Fmt.string ppf "fsqrt"
  | Frndint -> Fmt.string ppf "frndint"
  | Fcom_st (i, pops) -> Fmt.pf ppf "fcom(pop%d) st(%d)" pops i
  | Fcom_m (s, m, pops) -> Fmt.pf ppf "fcom(pop%d) %s %a" pops (fs s) pp_mem m
  | Fnstsw_ax -> Fmt.string ppf "fnstsw ax"
  | Fxch i -> Fmt.pf ppf "fxch st(%d)" i
  | Ffree i -> Fmt.pf ppf "ffree st(%d)" i
  | Fincstp -> Fmt.string ppf "fincstp"
  | Fdecstp -> Fmt.string ppf "fdecstp"

let pp_mmx_rm ppf = function
  | MM i -> Fmt.pf ppf "mm%d" i
  | MMem m -> pp_mem ppf m

let pp_mmx ppf x =
  match x with
  | Movd_to_mm (d, s) -> Fmt.pf ppf "movd mm%d, %a" d (pp_operand S32) s
  | Movd_from_mm (d, s) -> Fmt.pf ppf "movd %a, mm%d" (pp_operand S32) d s
  | Movq_to_mm (d, s) -> Fmt.pf ppf "movq mm%d, %a" d pp_mmx_rm s
  | Movq_from_mm (d, s) -> Fmt.pf ppf "movq %a, mm%d" pp_mmx_rm d s
  | Padd (w, d, s) -> Fmt.pf ppf "padd%d mm%d, %a" (w * 8) d pp_mmx_rm s
  | Psub (w, d, s) -> Fmt.pf ppf "psub%d mm%d, %a" (w * 8) d pp_mmx_rm s
  | Pmullw (d, s) -> Fmt.pf ppf "pmullw mm%d, %a" d pp_mmx_rm s
  | Pand (d, s) -> Fmt.pf ppf "pand mm%d, %a" d pp_mmx_rm s
  | Por (d, s) -> Fmt.pf ppf "por mm%d, %a" d pp_mmx_rm s
  | Pxor (d, s) -> Fmt.pf ppf "pxor mm%d, %a" d pp_mmx_rm s
  | Pcmpeq (w, d, s) -> Fmt.pf ppf "pcmpeq%d mm%d, %a" (w * 8) d pp_mmx_rm s
  | Psll (w, d, n) -> Fmt.pf ppf "psll%d mm%d, %d" (w * 8) d n
  | Psrl (w, d, n) -> Fmt.pf ppf "psrl%d mm%d, %d" (w * 8) d n
  | Emms -> Fmt.string ppf "emms"

let pp_xmm_rm ppf = function
  | XM i -> Fmt.pf ppf "xmm%d" i
  | XMem m -> pp_mem ppf m

let pp_sse ppf x =
  match x with
  | Movaps (d, s) -> Fmt.pf ppf "movaps %a, %a" pp_xmm_rm d pp_xmm_rm s
  | Movups (d, s) -> Fmt.pf ppf "movups %a, %a" pp_xmm_rm d pp_xmm_rm s
  | Movss (d, s) -> Fmt.pf ppf "movss %a, %a" pp_xmm_rm d pp_xmm_rm s
  | Movsd_x (d, s) -> Fmt.pf ppf "movsd %a, %a" pp_xmm_rm d pp_xmm_rm s
  | Sse_arith (op, fmt, d, s) ->
    Fmt.pf ppf "%s%s xmm%d, %a" (sse_op_name op) (sse_fmt_name fmt) d pp_xmm_rm s
  | Sqrtps (d, s) -> Fmt.pf ppf "sqrtps xmm%d, %a" d pp_xmm_rm s
  | Andps (d, s) -> Fmt.pf ppf "andps xmm%d, %a" d pp_xmm_rm s
  | Orps (d, s) -> Fmt.pf ppf "orps xmm%d, %a" d pp_xmm_rm s
  | Xorps (d, s) -> Fmt.pf ppf "xorps xmm%d, %a" d pp_xmm_rm s
  | Paddd_x (d, s) -> Fmt.pf ppf "paddd xmm%d, %a" d pp_xmm_rm s
  | Psubd_x (d, s) -> Fmt.pf ppf "psubd xmm%d, %a" d pp_xmm_rm s
  | Ucomiss (d, s) -> Fmt.pf ppf "ucomiss xmm%d, %a" d pp_xmm_rm s
  | Cvtsi2ss (d, s) -> Fmt.pf ppf "cvtsi2ss xmm%d, %a" d (pp_operand S32) s
  | Cvttss2si (d, s) -> Fmt.pf ppf "cvttss2si %s, %a" (reg_name d) pp_xmm_rm s
  | Cvtss2sd (d, s) -> Fmt.pf ppf "cvtss2sd xmm%d, %a" d pp_xmm_rm s
  | Cvtsd2ss (d, s) -> Fmt.pf ppf "cvtsd2ss xmm%d, %a" d pp_xmm_rm s

let rep_prefix = function
  | No_rep -> "" | Rep -> "rep " | Repe -> "repe " | Repne -> "repne "

let pp ppf insn =
  let op2 name s d src =
    Fmt.pf ppf "%s %a, %a" name (pp_operand s) d (pp_operand s) src
  in
  match insn with
  | Alu (op, s, d, src) -> op2 (alu_name op) s d src
  | Test (s, d, src) -> op2 "test" s d src
  | Mov (s, d, src) -> op2 "mov" s d src
  | Movzx (s, r, src) ->
    Fmt.pf ppf "movzx %s, %a" (reg_name r) (pp_operand s) src
  | Movsx (s, r, src) ->
    Fmt.pf ppf "movsx %s, %a" (reg_name r) (pp_operand s) src
  | Lea (r, m) -> Fmt.pf ppf "lea %s, %a" (reg_name r) pp_mem m
  | Shift (sh, s, d, a) ->
    Fmt.pf ppf "%s %a, %a" (shift_name sh) (pp_operand s) d pp_amount a
  | Shld (d, r, a) ->
    Fmt.pf ppf "shld %a, %s, %a" (pp_operand S32) d (reg_name r) pp_amount a
  | Shrd (d, r, a) ->
    Fmt.pf ppf "shrd %a, %s, %a" (pp_operand S32) d (reg_name r) pp_amount a
  | Inc (s, d) -> Fmt.pf ppf "inc %a" (pp_operand s) d
  | Dec (s, d) -> Fmt.pf ppf "dec %a" (pp_operand s) d
  | Neg (s, d) -> Fmt.pf ppf "neg %a" (pp_operand s) d
  | Not (s, d) -> Fmt.pf ppf "not %a" (pp_operand s) d
  | Imul_rr (r, src) -> Fmt.pf ppf "imul %s, %a" (reg_name r) (pp_operand S32) src
  | Imul_rri (r, src, i) ->
    Fmt.pf ppf "imul %s, %a, %d" (reg_name r) (pp_operand S32) src i
  | Mul1 (s, src) -> Fmt.pf ppf "mul %a" (pp_operand s) src
  | Imul1 (s, src) -> Fmt.pf ppf "imul %a" (pp_operand s) src
  | Div (s, src) -> Fmt.pf ppf "div %a" (pp_operand s) src
  | Idiv (s, src) -> Fmt.pf ppf "idiv %a" (pp_operand s) src
  | Cdq -> Fmt.string ppf "cdq"
  | Cwde -> Fmt.string ppf "cwde"
  | Xchg (s, d, r) -> Fmt.pf ppf "xchg %a, %a" (pp_operand s) d (pp_operand s) (R r)
  | Push o -> Fmt.pf ppf "push %a" (pp_operand S32) o
  | Pop o -> Fmt.pf ppf "pop %a" (pp_operand S32) o
  | Pushfd -> Fmt.string ppf "pushfd"
  | Popfd -> Fmt.string ppf "popfd"
  | Jmp t -> Fmt.pf ppf "jmp 0x%x" t
  | Jcc (c, t) -> Fmt.pf ppf "j%s 0x%x" (cond_name c) t
  | Call t -> Fmt.pf ppf "call 0x%x" t
  | Jmp_ind o -> Fmt.pf ppf "jmp %a" (pp_operand S32) o
  | Call_ind o -> Fmt.pf ppf "call %a" (pp_operand S32) o
  | Ret 0 -> Fmt.string ppf "ret"
  | Ret n -> Fmt.pf ppf "ret %d" n
  | Setcc (c, o) -> Fmt.pf ppf "set%s %a" (cond_name c) (pp_operand S8) o
  | Cmovcc (c, r, o) ->
    Fmt.pf ppf "cmov%s %s, %a" (cond_name c) (reg_name r) (pp_operand S32) o
  | Movs (s, r) -> Fmt.pf ppf "%smovs%s" (rep_prefix r) (size_suffix s)
  | Stos (s, r) -> Fmt.pf ppf "%sstos%s" (rep_prefix r) (size_suffix s)
  | Lods (s, r) -> Fmt.pf ppf "%slods%s" (rep_prefix r) (size_suffix s)
  | Scas (s, r) -> Fmt.pf ppf "%sscas%s" (rep_prefix r) (size_suffix s)
  | Cld -> Fmt.string ppf "cld"
  | Std -> Fmt.string ppf "std"
  | Int_n n -> Fmt.pf ppf "int 0x%x" n
  | Hlt -> Fmt.string ppf "hlt"
  | Ud2 -> Fmt.string ppf "ud2"
  | Nop -> Fmt.string ppf "nop"
  | Fp f -> pp_fp ppf f
  | Mmx x -> pp_mmx ppf x
  | Sse x -> pp_sse ppf x

let to_string insn = Fmt.str "%a" pp insn
