(** Reference IA-32 interpreter — the golden model.

    Defines the exact architectural semantics (including documented
    "defined-undefined" flag choices) that the translated code must
    reproduce. On a fault the architectural state is the precise state
    before the faulting instruction, exactly as the paper's precise
    exception machinery must deliver it. *)

type event =
  | Normal  (** instruction retired, EIP advanced *)
  | Syscall of int  (** [int n] executed; EIP points after it *)
  | Faulted of Fault.t  (** state untouched by the faulting instruction *)

(** Execute one instruction at EIP. *)
val step : State.t -> event

type stop =
  | Stop_syscall of int
  | Stop_fault of Fault.t
  | Stop_fuel

(** Run until a syscall, a fault, or [fuel] retired instructions; returns
    the stop reason and the retired-instruction count. *)
val run : ?fuel:int -> State.t -> stop * int
