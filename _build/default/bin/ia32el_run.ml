(* ia32el-run: command-line driver for the IA-32 EL simulator.

   Runs any of the bundled synthetic workloads under a chosen execution
   model and prints cycle counts, the time distribution, and the
   translator statistics. The bench harness (bench/main.exe) regenerates
   the paper's tables and figures wholesale; this tool is for poking at a
   single workload/configuration pair.

     ia32el-run list
     ia32el-run run gzip
     ia32el-run run gzip --model cold-only --scale 2 --stats
     ia32el-run run swim --model native
     ia32el-run run office --model xeon *)

module B = Workloads.Baselines
module C = Workloads.Common

let workloads : C.t list =
  Workloads.Spec_int.all @ Workloads.Spec_fp.all
  @ [ Workloads.Sysmark.office; Workloads.Sysmark.misalign_stress ]

let find_workload name =
  List.find_opt (fun w -> w.C.name = name) workloads

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

type model =
  | M_el of Ia32el.Config.t * string
  | M_native
  | M_circuitry
  | M_xeon

let model_of_string = function
  | "el" | "default" -> Ok (M_el (Ia32el.Config.default, "two-phase IA-32 EL"))
  | "cold-only" ->
    Ok (M_el (Ia32el.Config.cold_only, "cold-only translator"))
  | "interpret-first" ->
    Ok
      (M_el
         ( {
             Ia32el.Config.default with
             Ia32el.Config.first_phase = Ia32el.Config.Interpret_first;
           },
           "interpret-first two-phase" ))
  | "native" -> Ok M_native
  | "circuitry" -> Ok M_circuitry
  | "xeon" -> Ok M_xeon
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown model %S (el, cold-only, interpret-first, native, \
            circuitry, xeon)"
           s))

let model_conv =
  Cmdliner.Arg.conv
    ( model_of_string,
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with
          | M_el (_, d) -> d
          | M_native -> "native"
          | M_circuitry -> "circuitry"
          | M_xeon -> "xeon") )

let print_stats (a : Ia32el.Account.t) =
  Printf.printf "translation:\n";
  Printf.printf "  cold blocks %d (%d insns, %.1f insns/block)\n"
    a.Ia32el.Account.cold_blocks a.Ia32el.Account.cold_insns
    (Float.of_int a.Ia32el.Account.cold_insns
    /. Float.of_int (max 1 a.Ia32el.Account.cold_blocks));
  Printf.printf "  stage-2 regenerations %d   hot discards %d\n"
    a.Ia32el.Account.cold_regens a.Ia32el.Account.hot_discards;
  Printf.printf "  hot traces %d (%d source insns -> %d target insns)\n"
    a.Ia32el.Account.hot_blocks a.Ia32el.Account.hot_insns
    a.Ia32el.Account.hot_target_insns;
  Printf.printf "  heat triggers %d   commit points %d\n"
    a.Ia32el.Account.heat_triggers a.Ia32el.Account.commit_points;
  Printf.printf "engine:\n";
  Printf.printf "  dispatches %d   chain patches %d   indirect %d (%d miss)\n"
    a.Ia32el.Account.dispatches a.Ia32el.Account.chain_patches
    a.Ia32el.Account.indirect_lookups a.Ia32el.Account.indirect_misses;
  Printf.printf "speculation:\n";
  Printf.printf "  TOS checks %d (miss %d)   tag miss %d\n"
    a.Ia32el.Account.tos_checks a.Ia32el.Account.tos_misses
    a.Ia32el.Account.tag_misses;
  Printf.printf "  mode checks %d (miss %d)   SSE checks %d (miss %d)\n"
    a.Ia32el.Account.mode_checks a.Ia32el.Account.mode_misses
    a.Ia32el.Account.sse_checks a.Ia32el.Account.sse_misses;
  Printf.printf "misalignment:\n";
  Printf.printf
    "  stage-1 hits %d   avoidance sequences %d   OS-priced traps %d\n"
    a.Ia32el.Account.misalign_stage1_hits a.Ia32el.Account.misalign_avoided
    a.Ia32el.Account.misalign_os_faults;
  Printf.printf "exceptions:\n";
  Printf.printf "  filtered %d   rollforwards %d   SMC invalidations %d\n"
    a.Ia32el.Account.exceptions_filtered a.Ia32el.Account.rollforwards
    a.Ia32el.Account.smc_invalidations;
  if a.Ia32el.Account.cache_flushes > 0 then
    Printf.printf "translation-cache flushes: %d\n"
      a.Ia32el.Account.cache_flushes

let run_cmd name model scale stats =
  match find_workload name with
  | None ->
    Printf.eprintf "unknown workload %S; try `ia32el-run list'\n" name;
    exit 1
  | Some w -> (
    try
      match model with
      | M_el (config, desc) ->
        let r = B.run_el ~config w ~scale in
        Printf.printf "%s under %s: %d cycles\n" w.C.name desc r.B.cycles;
        (match r.B.distribution with
        | Some d -> Fmt.pr "%a@." Ia32el.Account.pp_distribution d
        | None -> ());
        (match (stats, r.B.engine) with
        | true, Some eng -> print_stats eng.Ia32el.Engine.acct
        | _ -> ())
      | M_native ->
        let r = B.run_native w ~scale in
        Printf.printf "%s natively compiled (model): %d cycles\n" w.C.name
          r.B.cycles
      | M_circuitry ->
        let r = B.run_circuitry w ~scale in
        Printf.printf "%s on the IA-32 hardware circuitry (model): %d cycles (%d insns)\n"
          w.C.name r.B.cycles r.B.insns
      | M_xeon ->
        let r = B.run_xeon w ~scale in
        Printf.printf "%s on a Xeon-class OOO IA-32 core (model): %d cycles (%d insns)\n"
          w.C.name r.B.cycles r.B.insns
    with B.Workload_failed msg ->
      Printf.eprintf "workload failed: %s\n" msg;
      exit 1)

let list_cmd () =
  Printf.printf "%-16s %s\n" "NAME" "PAPER SCORE (Fig. 5/8, percent of native)";
  List.iter
    (fun w ->
      Printf.printf "%-16s %s\n" w.C.name
        (match w.C.paper_score with
        | Some s -> string_of_int s
        | None -> "-"))
    workloads

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let model_arg =
  Arg.(
    value
    & opt model_conv (M_el (Ia32el.Config.default, "two-phase IA-32 EL"))
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "Execution model: $(b,el) (default), $(b,cold-only), \
           $(b,interpret-first), $(b,native), $(b,circuitry), $(b,xeon).")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the full translator statistics.")

let run_t = Term.(const run_cmd $ workload_arg $ model_arg $ scale_arg $ stats_arg)

let run_info =
  Cmd.info "run" ~doc:"Run one workload under a chosen execution model."

let list_t = Term.(const list_cmd $ const ())
let list_info = Cmd.info "list" ~doc:"List the bundled workloads."

let main =
  Cmd.group
    (Cmd.info "ia32el-run" ~version:"1.0.0"
       ~doc:"Run IA-32 programs through the IA-32 Execution Layer simulator.")
    [ Cmd.v run_info run_t; Cmd.v list_info list_t ]

let () = exit (Cmd.eval main)
