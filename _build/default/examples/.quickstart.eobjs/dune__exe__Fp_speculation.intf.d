examples/fp_speculation.mli:
