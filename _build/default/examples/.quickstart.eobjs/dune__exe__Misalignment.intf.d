examples/misalignment.mli:
