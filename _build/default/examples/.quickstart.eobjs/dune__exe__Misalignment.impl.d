examples/misalignment.ml: Account Asm Btlib Config Engine Float Ia32 Ia32el Insn List Memory Printf
