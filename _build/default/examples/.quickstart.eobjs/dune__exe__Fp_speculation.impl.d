examples/fp_speculation.ml: Account Asm Btlib Config Engine Fault Float Ia32 Ia32el Insn Memory Printf State
