examples/quickstart.ml: Account Asm Btlib Char Config Engine Fault Fmt Ia32 Ia32el Insn Memory Printf State String
