examples/precise_exceptions.ml: Account Asm Btlib Config Engine Fault Ia32 Ia32el Insn Memory Printf Refvehicle State
