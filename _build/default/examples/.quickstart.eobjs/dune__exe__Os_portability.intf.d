examples/os_portability.mli:
