examples/quickstart.mli:
