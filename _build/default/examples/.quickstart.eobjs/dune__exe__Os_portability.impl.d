examples/os_portability.ml: Account Asm Btlib Config Engine Ia32 Ia32el Insn List Memory Printf
