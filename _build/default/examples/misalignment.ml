(* The three-stage misalignment machinery (paper §4.5).

   Itanium has no hardware support for misaligned memory access: each one
   traps to the OS at a cost of thousands of cycles. IA-32 code misaligns
   freely. IA-32 EL's answer is staged:

     stage 1  cold code *detects* dynamically misaligned accesses with a
              cheap address check and branches out to regenerate the block;
     stage 2  the regenerated cold block *avoids* the trap with a split
              byte sequence and records which accesses misalign in a
              per-access profile slot;
     stage 3  hot code consults the profile and emits avoidance only where
              it pays, discarding and regenerating the trace if a new
              access starts misaligning late.

   This example runs the same pointer-chasing kernel with the machinery on
   and off and prints the stage counters — the paper's anecdote is a
   server application that spent 24%% of its time in misalignment traps
   before this machinery and ran ~9x faster with it.

   Run with:  dune exec examples/misalignment.exe *)

open Ia32
open Ia32el

(* A record-walking kernel with 4-byte fields at odd offsets, the classic
   packed-struct pattern that misaligns every access. *)
let program =
  let open Asm in
  let open Insn in
  let code =
    [
      label "start";
      i (Mov (S32, R Ebp, I 300));
      label "outer";
      mov_ri_lab Esi "records";
      i (Mov (S32, R Ecx, I 24)); (* records per pass *)
      i (Mov (S32, R Eax, I 0));
      label "walk";
      (* rec.key at +1 and rec.next-delta at +5: both misaligned *)
      i (Alu (Add, S32, R Eax, M (Insn.mem_bd Esi 1)));
      i (Mov (S32, R Edx, M (Insn.mem_bd Esi 5)));
      i (Mov (S32, M (Insn.mem_bd Esi 9), R Eax)); (* misaligned store *)
      i (Alu (Add, S32, R Esi, R Edx));
      i (Dec (S32, R Ecx));
      jcc Ne "walk";
      i (Dec (S32, R Ebp));
      jcc Ne "outer";
      with_lab "result" (fun a -> Mov (S32, M (mem_abs a), R Eax));
      i (Mov (S32, R Eax, I 1));
      i (Mov (S32, R Ebx, I 0));
      i (Int_n 0x80);
    ]
  in
  let data =
    [ label "records" ]
    @ List.concat
        (List.init 25 (fun k ->
             [
               db 0x5A; (* padding byte that forces the odd offsets *)
               dd (k * 17); (* key at +1 *)
               dd 13; (* next-delta at +5 *)
               dd 0; (* slot written by the kernel at +9 *)
             ]))
    @ [ label "result"; space 4 ]
  in
  Asm.build ~code ~data ()

let run config =
  let mem = Memory.create () in
  let st0 = Asm.load program mem in
  let engine = Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem in
  match Engine.run ~fuel:2_000_000_000 engine st0 with
  | Engine.Exited (0, _) ->
    (Engine.distribution engine).Account.total, engine.Engine.acct
  | _ -> failwith "kernel failed"

let () =
  let on = Config.default in
  let off =
    { Config.default with Config.misalign_avoidance = false }
  in
  let cyc_on, acct_on = run on in
  let cyc_off, acct_off = run off in

  Printf.printf "with the three-stage machinery:\n";
  Printf.printf "  cycles:                  %d\n" cyc_on;
  Printf.printf "  stage-1 detections:      %d\n"
    acct_on.Account.misalign_stage1_hits;
  Printf.printf "  stage-2 regenerations:   %d\n" acct_on.Account.cold_regens;
  Printf.printf "  accesses through avoidance sequences: %d\n"
    acct_on.Account.misalign_avoided;
  Printf.printf "  residual OS-priced traps: %d\n"
    acct_on.Account.misalign_os_faults;
  Printf.printf "  stage-3 hot discards:    %d\n" acct_on.Account.hot_discards;

  Printf.printf "\nwithout it (every misaligned access traps at OS price):\n";
  Printf.printf "  cycles:                  %d\n" cyc_off;
  Printf.printf "  OS-priced traps:         %d\n"
    acct_off.Account.misalign_os_faults;

  Printf.printf "\nspeedup from the machinery: %.1fx\n"
    (Float.of_int cyc_off /. Float.of_int cyc_on)
