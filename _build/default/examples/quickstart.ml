(* Quickstart: assemble an IA-32 program, run it under IA-32 EL, and read
   the translator's statistics.

   The flow every user of the library follows:

   1. describe an IA-32 program with [Ia32.Asm] (or bring raw bytes and let
      [Ia32.Decode] handle them),
   2. load it into a fresh [Ia32.Memory] image,
   3. create an [Ia32el.Engine] over the memory with a BTLib flavour
      (Linux or Windows system-call conventions), and
   4. run, then inspect the outcome, the final IA-32 state, and the cycle
      accounting.

   Run with:  dune exec examples/quickstart.exe *)

open Ia32
open Ia32el

(* A small dictionary-hashing kernel, the kind of loop the paper's
   introduction motivates: byte loads, shifts, xors, a table store and a
   conditional backward branch. Hot enough to earn a second-phase
   translation under the default heat threshold. *)
let program =
  let open Asm in
  let open Insn in
  let mix b i s d = { base = Some b; index = Some (i, s); disp = d } in
  let code =
    [
      label "start";
      mov_ri_lab Esi "text";
      mov_ri_lab Edi "table";
      i (Mov (S32, R Ebp, I 400)); (* outer iterations *)
      label "outer";
      i (Mov (S32, R Eax, I 0)); (* hash accumulator *)
      i (Mov (S32, R Ecx, I 0)); (* byte index *)
      label "hash";
      i (Movzx (S8, Edx, M (mix Esi Ecx 1 0)));
      i (Shift (Shl, S32, R Eax, Amt_imm 5));
      i (Alu (Xor, S32, R Eax, R Edx));
      i (Alu (And, S32, R Eax, I 1023));
      i (Mov (S32, M (mix Edi Eax 4 0), R Ecx));
      i (Inc (S32, R Ecx));
      i (Alu (Cmp, S32, R Ecx, I 64));
      jcc Ne "hash";
      i (Dec (S32, R Ebp));
      jcc Ne "outer";
      (* store the final hash where we can find it, then exit(0) *)
      with_lab "result" (fun a -> Mov (S32, M (mem_abs a), R Eax));
      i (Mov (S32, R Eax, I 1)); (* Linux: sys_exit *)
      i (Mov (S32, R Ebx, I 0));
      i (Int_n 0x80);
    ]
  in
  let data =
    [
      label "text";
      raw (String.init 64 (fun k -> Char.chr (0x41 + (k * 13 mod 26))));
      label "table";
      space 4096;
      label "result";
      space 4;
    ]
  in
  Asm.build ~code ~data ()

let () =
  (* -- load ------------------------------------------------------------ *)
  let mem = Memory.create () in
  let st0 = Asm.load program mem in

  (* -- create the translator -------------------------------------------
     [Config.default] is the paper's two-phase design: instrumented cold
     translation first, trace-based optimizing retranslation once a block
     crosses the heat threshold. *)
  let engine =
    Engine.create ~config:Config.default ~btlib:(module Btlib.Linuxsim) mem
  in

  (* -- run --------------------------------------------------------------
     Fuel bounds simulated machine cycles so a broken guest cannot hang
     the host. *)
  (match Engine.run ~fuel:200_000_000 engine st0 with
  | Engine.Exited (code, _final_state) ->
    Printf.printf "guest exited with code %d\n" code
  | Engine.Unhandled_fault (f, st) ->
    Printf.printf "guest faulted: %s at eip=0x%x\n" (Fault.to_string f)
      st.State.eip
  | Engine.Out_of_fuel -> Printf.printf "out of fuel\n");

  (* -- read back guest memory ------------------------------------------ *)
  let result_addr = program.Asm.lookup "result" in
  Printf.printf "final hash value: 0x%x\n" (Memory.read32 mem result_addr);

  (* -- translator statistics -------------------------------------------
     [Engine.distribution] splits simulated time the way the paper's
     Figures 6 and 7 do; [engine.acct] has the raw counters. *)
  let d = Engine.distribution engine in
  Fmt.pr "time distribution: %a@." Account.pp_distribution d;
  let a = engine.Engine.acct in
  Printf.printf "cold blocks translated: %d (%d IA-32 instructions)\n"
    a.Account.cold_blocks a.Account.cold_insns;
  Printf.printf "hot traces built:       %d (%d IA-32 instructions)\n"
    a.Account.hot_blocks a.Account.hot_insns;
  Printf.printf "heat triggers:          %d\n" a.Account.heat_triggers;
  Printf.printf "dispatches: %d   chain patches: %d\n" a.Account.dispatches
    a.Account.chain_patches;
  Printf.printf "commit points in hot code: %d\n" a.Account.commit_points
