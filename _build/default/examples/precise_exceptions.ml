(* Precise exceptions under aggressive hot-code reordering (paper §4.2).

   The hot phase schedules across IA-32 instruction boundaries, so when a
   page fault arrives mid-trace the machine state does not correspond to
   any IA-32 program point. IA-32 EL recovers precision with commit
   points: the translator backs up the state a hot region will overwrite,
   and on a fault restores the last commit point and *rolls forward* with
   the interpreter to the exact faulting instruction. The guest's handler
   then sees the same EIP, registers and flags it would see on real
   silicon.

   This example heats a loop until it runs as optimized hot code, then has
   it walk into an unmapped page. The guest's own #PF handler maps the
   page (mmap) and returns, and the loop resumes without losing state.

   Run with:  dune exec examples/precise_exceptions.exe *)

open Ia32
open Ia32el

let unmapped = 0x3000_0000

let program =
  let open Asm in
  let open Insn in
  let code =
    [
      label "start";
      (* register a guest #PF handler: BTLib vector 14, Linux flavour *)
      i (Mov (S32, R Eax, I 48));
      i (Mov (S32, R Ebx, I 14));
      mov_ri_lab Ecx "handler";
      i (Int_n 0x80);
      (* hot loop: every iteration stores through EDI. EDI normally points
         at mapped scratch, but on iteration 250 a CMOV swings it into the
         unmapped page — the store is *inside* the optimized hot trace, so
         the fault interrupts reordered code mid-trace. *)
      i (Mov (S32, R Ebx, I unmapped));
      i (Mov (S32, R Ecx, I 400));
      i (Mov (S32, R Eax, I 0));
      label "loop";
      i (Alu (Add, S32, R Eax, R Ecx));
      i (Shift (Rol, S32, R Eax, Amt_imm 3));
      mov_ri_lab Edi "scratch";
      i (Alu (Cmp, S32, R Ecx, I 250));
      i (Cmovcc (E, Edi, R Ebx)); (* if ecx = 250, store into the hole *)
      i (Mov (S32, M (Insn.mem_b Edi), R Eax));
      i (Dec (S32, R Ecx));
      jcc Ne "loop";
      with_lab "result" (fun a -> Mov (S32, M (mem_abs a), R Eax));
      i (Mov (S32, R Eax, I 1));
      i (Mov (S32, R Ebx, I 0));
      i (Int_n 0x80);
      (* --- guest #PF handler ------------------------------------------
         BTLib frame: [esp]=fault address, [esp+4]=vector, [esp+8]=eip.
         mmap the page and resume at the faulting instruction. *)
      label "handler";
      with_lab "faults" (fun a -> Inc (S32, M (mem_abs a)));
      i (Mov (S32, R Eax, I 90)); (* sys_mmap *)
      i (Mov (S32, R Ebx, M (Insn.mem_b Esp)));
      i (Mov (S32, R Ecx, I 0x1000));
      i (Int_n 0x80);
      i (Alu (Add, S32, R Esp, I 8));
      i (Ret 0);
    ]
  in
  let data =
    [ label "result"; space 4; label "faults"; space 4;
      label "scratch"; space 4 ]
  in
  Asm.build ~code ~data ()

let () =
  let mem = Memory.create () in
  let st0 = Asm.load program mem in
  (* a low threshold so the loop is already hot when the fault arrives *)
  let config =
    { Config.default with Config.heat_threshold = 20; session_candidates = 1 }
  in
  let engine = Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem in
  (match Engine.run ~fuel:100_000_000 engine st0 with
  | Engine.Exited (0, _) -> print_endline "guest exited cleanly"
  | Engine.Exited (c, _) -> Printf.printf "guest exited with %d\n" c
  | Engine.Unhandled_fault (f, st) ->
    Printf.printf "UNHANDLED %s at 0x%x\n" (Fault.to_string f) st.State.eip
  | Engine.Out_of_fuel -> print_endline "out of fuel");

  let a = engine.Engine.acct in
  Printf.printf "guest handler invocations: %d\n"
    (Memory.read32 mem (program.Asm.lookup "faults"));
  Printf.printf "accumulator: 0x%x (must match the interpreter exactly)\n"
    (Memory.read32 mem (program.Asm.lookup "result"));
  Printf.printf "hot traces: %d   commit points emitted: %d\n"
    a.Account.hot_blocks a.Account.commit_points;
  Printf.printf
    "commit-point restores + interpreter roll-forwards: %d\n"
    a.Account.rollforwards;
  Printf.printf
    "speculative exceptions filtered (never reached the guest): %d\n"
    a.Account.exceptions_filtered;

  (* differential check against the golden-model interpreter *)
  let mem2 = Memory.create () in
  let st2 = Asm.load program mem2 in
  let vos = Btlib.Vos.create mem2 in
  (match Refvehicle.run ~btlib:(module Btlib.Linuxsim) vos st2 with
  | Refvehicle.Exited (0, _), _ ->
    let r1 = Memory.read32 mem (program.Asm.lookup "result") in
    let r2 = Memory.read32 mem2 (program.Asm.lookup "result") in
    Printf.printf "interpreter agrees: %b (0x%x)\n" (r1 = r2) r2
  | _ -> print_endline "interpreter disagreed on the outcome!")
