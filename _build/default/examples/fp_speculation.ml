(* x87 floating-point stack speculation (paper §4.3).

   The x87 stack is the hard part of translating IA-32 FP code: every
   instruction addresses registers relative to a runtime top-of-stack
   (TOS), and FXCH swaps are everywhere in compiler output. Mapping that
   faithfully at runtime costs a lookup per operand.

   IA-32 EL instead *speculates statically*: the translator assumes the
   TOS and tag values it saw while translating, maps ST(i) to fixed
   physical registers under that assumption, eliminates FXCH entirely by
   permuting its register map, and emits one cheap check at block entry.
   If a block is ever entered with a different TOS, the check fails and
   the engine recovers (rotating the physical registers to match, or
   falling back to the interpreter for the block).

   This example runs an inner-product kernel that leans on FXCH, then
   calls the same FP routine with two different stack depths to force a
   TOS-speculation miss and show the recovery.

   Run with:  dune exec examples/fp_speculation.exe *)

open Ia32
open Ia32el

let program =
  let open Asm in
  let open Insn in
  let code =
    [
      label "start";
      (* -- part 1: FXCH-heavy inner product, hot ----------------------- *)
      i (Mov (S32, R Ebp, I 500));
      label "dot";
      with_lab "a" (fun a -> Fp (Fld_m (F64, mem_abs a)));
      with_lab "b" (fun a -> Fp (Fld_m (F64, mem_abs a)));
      i (Fp (Fxch 1)); (* the classic compiler-scheduling swap *)
      with_lab "a" (fun a -> Fp (Fop_m (FMul, F64, mem_abs (a + 8))));
      i (Fp (Fxch 1));
      with_lab "b" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs (a + 8))));
      i (Fp (Fop_st_st0 (FAdd, 1, true))); (* faddp st(1) *)
      with_lab "acc" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
      with_lab "acc" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
      i (Dec (S32, R Ebp));
      jcc Ne "dot";
      (* -- part 2: call the shared routine at two stack depths ---------
         kept to a handful of iterations: each depth mismatch is a
         speculation miss with a real recovery cost, and the paper's point
         is that such misses are rare in practice *)
      i (Mov (S32, R Ebp, I 4));
      label "two_depths";
      i (Fp Fld1);
      call "fproutine"; (* entered with depth 1 *)
      i (Fp Fldz);
      i (Fp Fld1);
      call "fproutine"; (* entered with depth 3: TOS check must fire *)
      with_lab "sink" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
      with_lab "sink" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
      with_lab "sink" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
      i (Dec (S32, R Ebp));
      jcc Ne "two_depths";
      i (Mov (S32, R Eax, I 1));
      i (Mov (S32, R Ebx, I 0));
      i (Int_n 0x80);
      (* shared FP routine: squares ST(0) in place *)
      label "fproutine";
      i (Fp (Fld_st 0));
      i (Fp (Fop_st_st0 (FMul, 1, true)));
      i (Ret 0);
    ]
  in
  let data =
    [
      label "a"; df64 1.25; df64 2.5;
      label "b"; df64 0.75; df64 3.0;
      label "acc"; df64 0.0;
      label "sink"; space 8;
    ]
  in
  Asm.build ~code ~data ()

let run config =
  let mem = Memory.create () in
  let st0 = Asm.load program mem in
  let engine = Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem in
  match Engine.run ~fuel:2_000_000_000 engine st0 with
  | Engine.Exited (0, _) ->
    ((Engine.distribution engine).Account.total, engine.Engine.acct)
  | Engine.Exited (c, _) -> failwith (Printf.sprintf "exit %d" c)
  | Engine.Unhandled_fault (f, st) ->
    failwith
      (Printf.sprintf "fault %s at 0x%x" (Fault.to_string f) st.State.eip)
  | Engine.Out_of_fuel -> failwith "fuel"

let () =
  let cyc, acct = run Config.default in
  Printf.printf "with FP-stack speculation:\n";
  Printf.printf "  cycles:            %d\n" cyc;
  Printf.printf "  block-entry TOS checks executed: %d\n"
    acct.Account.tos_checks;
  Printf.printf "  TOS mispredictions (recovered):  %d\n"
    acct.Account.tos_misses;
  Printf.printf "  tag mispredictions (recovered):  %d\n"
    acct.Account.tag_misses;

  (* [fp_stack_speculation = false] removes the block-entry checks and the
     recovery path, i.e. it prices the insurance premium: the static ST(i)
     maps stay (they are what makes x87 code translatable at all), but a
     block entered at an unexpected TOS would silently compute garbage.
     The paper's claim is that the premium is small because the check is
     one compare+branch per FP block head. *)
  let cyc_unchecked, _ =
    run { Config.default with Config.fp_stack_speculation = false }
  in
  Printf.printf
    "\nsame kernel with entry checks disabled (unsafe): %d cycles\n"
    cyc_unchecked;
  Printf.printf "cost of the checks + miss recoveries: %.1f%% of run time\n"
    (100.0
    *. Float.of_int (cyc - cyc_unchecked)
    /. Float.of_int cyc)
