(* One translator, two operating systems (paper §3).

   IA-32 EL splits into BTGeneric — everything about translation, which
   knows nothing about the OS — and BTLib, a thin glue layer that speaks
   the host OS's conventions. The two communicate only through the BTOS
   API, a binary-level contract guarded by a version handshake, so one
   BTGeneric image serves Windows and Linux unchanged.

   This example runs the *same guest logic* against both simulated hosts.
   The two programs differ exactly where real binaries would: the
   system-call convention (int 0x80 + Linux numbering vs int 0x2e +
   NT-style numbering and argument order). The translator code driving
   them is identical — only the BTLib module changes.

   Run with:  dune exec examples/os_portability.exe *)

open Ia32
open Ia32el

(* Guest logic: sum an array, report the result via the console, exit
   with the low byte. [flavour] selects the system-call convention. *)
let program flavour =
  let open Asm in
  let open Insn in
  let syscalls =
    match flavour with
    | `Linux ->
      (* eax = number; ebx, ecx, edx = args; int 0x80 *)
      fun ~exit_code ->
        [
          (* write(buf, len) *)
          i (Mov (S32, R Eax, I 4));
          mov_ri_lab Ecx "msg";
          i (Mov (S32, R Edx, I 14));
          i (Int_n 0x80);
          (* exit *)
          i (Mov (S32, R Eax, I 1));
          i (Mov (S32, R Ebx, I exit_code));
          i (Int_n 0x80);
        ]
    | `Windows ->
      (* eax = service; edx, ecx = args (note the different order); int 0x2e *)
      fun ~exit_code ->
        [
          i (Mov (S32, R Eax, I 0x08));
          mov_ri_lab Edx "msg";
          i (Mov (S32, R Ecx, I 14));
          i (Int_n 0x2E);
          i (Mov (S32, R Eax, I 0x01));
          i (Mov (S32, R Edx, I exit_code));
          i (Int_n 0x2E);
        ]
  in
  let code =
    [
      label "start";
      mov_ri_lab Esi "arr";
      i (Mov (S32, R Eax, I 0));
      i (Mov (S32, R Ecx, I 16));
      label "sum";
      i (Alu (Add, S32, R Eax, M { base = Some Esi; index = Some (Ecx, 4); disp = -4 }));
      i (Dec (S32, R Ecx));
      jcc Ne "sum";
      with_lab "result" (fun a -> Mov (S32, M (mem_abs a), R Eax));
      i (Alu (And, S32, R Eax, I 0x3F));
      i (Mov (S32, R Ebp, R Eax));
    ]
    @ syscalls ~exit_code:0
  in
  let data =
    [ label "arr" ]
    @ List.init 16 (fun k -> dd ((k * 3) + 1))
    @ [ label "msg"; raw "sum completed\n"; label "result"; space 4 ]
  in
  Asm.build ~code ~data ()

let run name btlib flavour =
  let image = program flavour in
  let mem = Memory.create () in
  let st0 = Asm.load image mem in
  (* Engine.create performs the BTOS version handshake at load time *)
  let engine = Engine.create ~config:Config.default ~btlib mem in
  (match Engine.run ~fuel:10_000_000 engine st0 with
  | Engine.Exited (c, _) ->
    Printf.printf "%-8s guest exited %d; sum = %d; console: %S\n" name c
      (Memory.read32 mem (image.Asm.lookup "result"))
      (Btlib.Vos.output engine.Engine.vos)
  | _ -> Printf.printf "%-8s failed\n" name);
  engine

let () =
  let module L = Btlib.Linuxsim in
  let module W = Btlib.Winsim in
  Printf.printf "BTGeneric requires BTOS v%d.%d\n"
    Btlib.Btos.btgeneric_version.Btlib.Btos.major
    Btlib.Btos.btgeneric_version.Btlib.Btos.minor;
  Printf.printf "  %-8s provides v%d.%d  handshake: %b\n" L.name
    L.version.Btlib.Btos.major L.version.Btlib.Btos.minor
    (Btlib.Btos.handshake_ok ~btlib:L.version
       ~btgeneric:Btlib.Btos.btgeneric_version);
  Printf.printf "  %-8s provides v%d.%d  handshake: %b\n" W.name
    W.version.Btlib.Btos.major W.version.Btlib.Btos.minor
    (Btlib.Btos.handshake_ok ~btlib:W.version
       ~btgeneric:Btlib.Btos.btgeneric_version);

  let e1 = run "linux" (module Btlib.Linuxsim : Btlib.Btos.S) `Linux in
  let e2 = run "windows" (module Btlib.Winsim : Btlib.Btos.S) `Windows in
  Printf.printf
    "same translator, same guest logic: linux translated %d blocks, \
     windows %d\n"
    e1.Engine.acct.Account.cold_blocks e2.Engine.acct.Account.cold_blocks;

  (* an incompatible BTLib is rejected at initialisation *)
  let module Bad = struct
    include Btlib.Linuxsim
    let name = "ancient-btlib"
    let version = { Btlib.Btos.major = 1; minor = 0 }
  end in
  (try ignore (Btlib.Btos.init (module Bad : Btlib.Btos.S))
   with Btlib.Btos.Version_mismatch msg ->
     Printf.printf "rejected: %s\n" msg)
