(** A server-style guest for the serving harness: accepts one request
    off the Vos request/response channel ([Accept]/[Recv]), replies with
    the payload XOR 0x5A followed by a 32-bit rolling checksum ([Send]),
    then runs a fixed request-independent slab of service work.

    The transform loop's control flow depends only on request {e length},
    never content, so same-length requests drive identical translation
    streams — the property the shared read-only AOT tcache and the
    standalone-vs-served determinism tests rely on.

    Exit codes: 0 served, 2 no request bound, 3 short recv. *)

val buf_cap : int
(** Static request/response buffer capacity; longer payloads are
    truncated by the guest. *)

val workload : Common.t
(** The ["serve-echo"] workload. *)

val expected_response : string -> string
(** Host-side model of the guest's reply to [payload] (after
    truncation to {!buf_cap}), for end-to-end response checking. *)
