(* A server-style guest for the serving harness: parse one request off
   the Vos request/response channel, transform it, send the reply, then
   do a fixed slab of "service work" so the image has warm code worth
   sharing through the AOT tcache.

   Protocol (linuxsim socketcall convention, eax=102, op in ebx):
     accept        -> request length (negative errno when none bound)
     recv(buf,len) -> deliver the payload into [reqbuf]
     send(buf,len) -> reply = payload XOR 0x5A, then the 32-bit rolling
                      checksum (sum-and-rotate-left-3) little-endian

   The per-byte transform loop has no data-dependent branches — its trip
   count depends only on the request LENGTH — so every same-length
   request drives the translator through the identical block/trace
   sequence. That is what lets a pool of workers serve off one AOT-
   trained read-only tcache with zero warm-code retranslation, and what
   makes standalone-vs-served observables bit-identical. Host-side
   expected reply: [expected_response]. Exit codes: 0 served, 2 no
   request bound, 3 short recv. *)

open Ia32.Insn
module A = Ia32.Asm
open Common

let buf_cap = 4096

let build ~scale ~wide:_ =
  let code =
    [
      (* accept: eax <- request length *)
      a32 (Mov (S32, R Eax, I 102));
      a32 (Mov (S32, R Ebx, I 1));
      a32 (Int_n 0x80);
      a32 (Test (S32, R Eax, R Eax));
      A.jcc S "fail_none";
      (* clamp to the static buffer *)
      a32 (Alu (Cmp, S32, R Eax, I buf_cap));
      A.jcc Le "len_ok";
      a32 (Mov (S32, R Eax, I buf_cap));
      A.label "len_ok";
      A.with_lab "reqlen" (fun a -> Mov (S32, M (mem_abs a), R Eax));
      (* recv the payload into reqbuf *)
      a32 (Mov (S32, R Edx, R Eax));
      a32 (Mov (S32, R Eax, I 102));
      a32 (Mov (S32, R Ebx, I 2));
      A.mov_ri_lab Ecx "reqbuf";
      a32 (Int_n 0x80);
      A.with_lab "reqlen" (fun a -> Alu (Cmp, S32, R Eax, M (mem_abs a)));
      A.jcc Ne "fail_short";
      (* transform: out[i] = req[i] xor 0x5A; ebx = rol3(ebx + req[i]) *)
      A.mov_ri_lab Esi "reqbuf";
      A.mov_ri_lab Edi "outbuf";
      A.with_lab "reqlen" (fun a -> Mov (S32, R Ecx, M (mem_abs a)));
      a32 (Mov (S32, R Ebx, I 0));
      a32 (Test (S32, R Ecx, R Ecx));
      A.jcc E "reply";
      A.label "xform";
      a32 (Movzx (S8, Eax, M (mem_bd Esi 0)));
      a32 (Alu (Add, S32, R Ebx, R Eax));
      a32 (Shift (Rol, S32, R Ebx, Amt_imm 3));
      a32 (Alu (Xor, S32, R Eax, I 0x5A));
      a32 (Mov (S8, M (mem_bd Edi 0), R Eax));
      a32 (Inc (S32, R Esi));
      a32 (Inc (S32, R Edi));
      a32 (Dec (S32, R Ecx));
      A.jcc Ne "xform";
      A.label "reply";
      (* append the checksum after the transformed bytes, send len+4 *)
      a32 (Mov (S32, M (mem_bd Edi 0), R Ebx));
      A.with_lab "reqlen" (fun a -> Mov (S32, R Edx, M (mem_abs a)));
      a32 (Alu (Add, S32, R Edx, I 4));
      a32 (Mov (S32, R Eax, I 102));
      a32 (Mov (S32, R Ebx, I 3));
      A.mov_ri_lab Ecx "outbuf";
      a32 (Int_n 0x80);
    ]
    (* fixed slab of post-reply service work (logging/compaction stand-in):
       request-independent, so the image carries warm code whose
       translation stream never varies across requests *)
    @ [ a32 (Mov (S32, R Eax, I 77)) ]
    @ counted_mem "svc" "ctr" (400 * scale)
        (lcg_next
        @ [
            a32 (Mov (S32, R Ebx, R Eax));
            a32 (Alu (And, S32, R Ebx, I 63));
            A.with_lab "table" (fun a ->
                Alu (Add, S32, M { base = None; index = Some (Ebx, 4); disp = a }, R Eax));
            a32 (Shift (Ror, S32, R Eax, Amt_imm 7));
          ])
    @ [ A.jmp "done" ]
    @ [
        A.label "fail_none";
        a32 (Mov (S32, R Eax, I 1));
        a32 (Mov (S32, R Ebx, I 2));
        a32 (Int_n 0x80);
        A.label "fail_short";
        a32 (Mov (S32, R Eax, I 1));
        a32 (Mov (S32, R Ebx, I 3));
        a32 (Int_n 0x80);
        A.label "done";
      ]
  in
  let data =
    [ A.label "reqlen"; A.space 4; A.label "ctr"; A.space 4; A.label "table" ]
    @ List.init 64 (fun k -> A.dd ((k * 2654435761) land 0xFFFFFFFF))
    @ [
        A.label "reqbuf";
        A.space buf_cap;
        A.label "outbuf";
        A.space (buf_cap + 4);
      ]
  in
  build_image code data

let workload = { name = "serve-echo"; build; paper_score = None }

(* Host-side model of the guest's reply, for end-to-end checking. *)
let expected_response payload =
  let n = min (String.length payload) buf_cap in
  let b = Buffer.create (n + 4) in
  let chk = ref 0 in
  let mask = 0xFFFFFFFF in
  for i = 0 to n - 1 do
    let c = Char.code payload.[i] in
    let s = (!chk + c) land mask in
    chk := ((s lsl 3) lor (s lsr 29)) land mask;
    Buffer.add_char b (Char.chr (c lxor 0x5A))
  done;
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((!chk lsr (8 * i)) land 0xFF))
  done;
  Buffer.contents b
