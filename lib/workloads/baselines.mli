(** Baseline execution models (DESIGN.md S7) for the Figure 5/8 and
    circuitry comparisons.

    - [native]: the natively compiled Itanium program, modeled by
      running the workload's [wide] (LP64-flavoured) variant through the
      hot pipeline in "static compile" mode: no first-phase
      instrumentation, zero run-time translation charges, native-grade
      branch costs. Deliberately conservative — our "native" is never
      better scheduled than our best hot translation.
    - [circuitry]: the Itanium processors' IA-32 hardware unit that
      IA-32 EL replaces — a microcoded, low-IPC in-order engine, modeled
      as per-instruction costs on the reference interpreter.
    - [xeon]: an out-of-order IA-32 processor (the paper's 1.6 GHz
      Xeon), modeled with per-class half-cycle costs on the reference
      interpreter. Figure 8 divides by clock frequency to compare
      wall-clock time. *)

type result = {
  cycles : int;
  insns : int;  (** retired IA-32 instructions (interpreter models) *)
  exit_code : int;  (** guest process exit code *)
  distribution : Ia32el.Account.distribution option;
  engine : Ia32el.Engine.t option;
}

exception Workload_failed of string

val run_el :
  ?config:Ia32el.Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?attach:(Ia32el.Engine.t -> unit) ->
  ?check_exit:bool ->
  Common.t ->
  scale:int ->
  result
(** Run a workload under IA-32 EL (the narrow, IA-32 build). [attach] is
    called with the fresh engine before the run — the hook observability
    consumers use to install traces and profiles. [check_exit] (default
    true) raises {!Workload_failed} on a nonzero guest exit; pass false
    to get the exit code in the result instead (the runner propagates it
    to the host shell). *)

val native_config : Ia32el.Config.t
val native_cost : Ipf.Cost.t

val run_native : Common.t -> scale:int -> result
(** Run the [wide] variant under the native-compiler model. *)

val run_circuitry : Common.t -> scale:int -> result
val run_xeon : Common.t -> scale:int -> result
