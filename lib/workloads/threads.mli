(** Multithreaded guest workloads (DESIGN.md §11).

    Both exercise the Vos thread model end to end: spawn/join, the
    deterministic quantum scheduler, futex wait/wake and yield — and
    both self-check, exiting nonzero if the shared-memory protocol or
    the join results are wrong. *)

val default_workers : int
(** Worker-thread count used by the stock workload lists (3). *)

val producer_consumer : workers:int -> Common.t
(** "threads-pc": the main thread produces LCG items into an 8-slot
    shared ring; [workers] consumer threads (clamped to 1–8) drain it
    under futex wait/wake, each mixing items through a compute burst.
    Verifies produced sum = consumed sum and per-worker join codes. *)

val parallel_workers : workers:int -> Common.t
(** "threads-ptask": a Sysmark-flavoured parallel job — [workers]
    threads alternate compute bursts, native kernel work and think-time
    idle, yielding between rounds, while the main thread idles and then
    joins them. *)

val all : workers:int -> Common.t list
