(* Multithreaded guest workloads for the Vos thread model.

   Both run on the deterministic quantum scheduler: rescheduling happens
   only at system-call commit points, and a sequence of instructions
   containing no system call is never interleaved with another thread —
   so the shared-memory critical sections below need no atomics. The
   futex wait/wake protocol is still race-free in the classic sense:
   a waiter's fill-check and its [futex_wait] sit in one uninterrupted
   span, and the service re-checks the word before blocking, so wakeups
   cannot be lost.

   - [producer_consumer] ("threads-pc"): the main thread produces LCG
     items into an 8-slot shared ring; worker threads consume them under
     futex wait/wake and mix each item through a small compute burst.
     The program self-checks: produced sum = consumed sum, and each
     worker's join result must equal its index.

   - [parallel_workers] ("threads-ptask"): a Sysmark-flavoured parallel
     job — each worker alternates compute bursts with native kernel work
     and think-time idle, yielding between rounds; the main thread idles
     (UI thread) and then joins the workers. *)

open Ia32.Insn
module A = Ia32.Asm
open Common

let default_workers = 3
let qsize = 8
let qmask = qsize - 1
let stack_bytes = 256

let clamp_workers n = max 1 (min 8 n)

(* spawn(entry="worker" label, stack=k-th carve of "tstacks", arg=k),
   recording the returned tid in tids[k] *)
let spawn_worker ~entry ~k =
  [
    A.mov_ri_lab Ebx entry;
    A.with_lab "tstacks" (fun a ->
        Mov (S32, R Ecx, I (a + (stack_bytes * (k + 1)))));
    a32 (Mov (S32, R Edx, I k));
    a32 (Mov (S32, R Eax, I 120));
    a32 (Int_n 0x80);
    A.with_lab "tids" (fun a -> Mov (S32, M (mem_abs (a + (4 * k))), R Eax));
  ]

(* join(tids[k]) and verify the exit code is k (workers exit with their
   index); on mismatch jump to [fail] *)
let join_worker ~k ~fail =
  [
    A.with_lab "tids" (fun a -> Mov (S32, R Ebx, M (mem_abs (a + (4 * k)))));
    a32 (Mov (S32, R Eax, I 7));
    a32 (Int_n 0x80);
    a32 (Alu (Cmp, S32, R Eax, I k));
    A.jcc Ne fail;
  ]

let yield = [ a32 (Mov (S32, R Eax, I 159)); a32 (Int_n 0x80) ]

let shared_data ~workers extra =
  [
    A.label "head"; A.dd 0;
    A.label "tail"; A.dd 0;
    A.label "fill"; A.dd 0;
    A.label "done"; A.dd 0;
    A.label "prod_sum"; A.dd 0;
    A.label "cons_sum"; A.dd 0;
    A.label "queue";
  ]
  @ List.init qsize (fun _ -> A.dd 0)
  @ [ A.label "restab" ]
  @ List.init workers (fun _ -> A.dd 0)
  @ [ A.label "tids" ]
  @ List.init workers (fun _ -> A.dd 0)
  @ extra
  @ [ A.label "tstacks"; A.space (stack_bytes * workers) ]

let producer_consumer ~workers =
  let workers = clamp_workers workers in
  let build ~scale ~wide:_ =
    let items = 48 * scale in
    let code =
      (* spawn the consumers *)
      List.concat (List.init workers (fun k -> spawn_worker ~entry:"worker" ~k))
      (* produce [items] LCG items; esi = LCG state, ebp = remaining *)
      @ [
          a32 (Mov (S32, R Ebp, I items));
          a32 (Mov (S32, R Esi, I 12345));
          A.label "p_loop";
          A.with_lab "fill" (fun a -> Mov (S32, R Ecx, M (mem_abs a)));
          a32 (Alu (Cmp, S32, R Ecx, I qsize));
          A.jcc L "p_room";
        ]
      (* ring full: let the consumers drain it *)
      @ yield
      @ [ A.jmp "p_loop"; A.label "p_room"; a32 (Mov (S32, R Eax, R Esi)) ]
      @ lcg_next
      @ [
          a32 (Mov (S32, R Esi, R Eax));
          (* enqueue (no syscall inside: atomic under the scheduler) *)
          A.with_lab "head" (fun a -> Mov (S32, R Ebx, M (mem_abs a)));
          a32 (Alu (And, S32, R Ebx, I qmask));
          A.with_lab "queue" (fun a ->
              Mov (S32, M { base = None; index = Some (Ebx, 4); disp = a }, R Eax));
          A.with_lab "head" (fun a -> Inc (S32, M (mem_abs a)));
          A.with_lab "fill" (fun a -> Inc (S32, M (mem_abs a)));
          A.with_lab "prod_sum" (fun a -> Alu (Add, S32, M (mem_abs a), R Eax));
          (* futex_wake(fill, 1) *)
          a32 (Mov (S32, R Eax, I 240));
          A.mov_ri_lab Ebx "fill";
          a32 (Mov (S32, R Ecx, I 1));
          a32 (Mov (S32, R Edx, I 1));
          a32 (Int_n 0x80);
          a32 (Dec (S32, R Ebp));
          A.jcc Ne "p_loop";
          (* all produced: raise done and wake every waiter *)
          A.with_lab "done" (fun a -> Mov (S32, M (mem_abs a), I 1));
          a32 (Mov (S32, R Eax, I 240));
          A.mov_ri_lab Ebx "fill";
          a32 (Mov (S32, R Ecx, I 1));
          a32 (Mov (S32, R Edx, I workers));
          a32 (Int_n 0x80);
        ]
      (* reap the workers, checking each exit code *)
      @ List.concat
          (List.init workers (fun k -> join_worker ~k ~fail:"pc_fail"))
      (* self-check: everything produced was consumed exactly once *)
      @ [
          A.with_lab "prod_sum" (fun a -> Mov (S32, R Eax, M (mem_abs a)));
          A.with_lab "cons_sum" (fun a -> Alu (Cmp, S32, R Eax, M (mem_abs a)));
          A.jcc Ne "pc_fail";
          A.jmp "pc_ok";
          A.label "pc_fail";
          a32 (Mov (S32, R Eax, I 1));
          a32 (Mov (S32, R Ebx, I 1));
          a32 (Int_n 0x80);
          (* ---- consumer thread: edi = worker index (spawn arg) ---- *)
          A.label "worker";
          a32 (Mov (S32, R Edi, R Eax));
          A.label "w_loop";
          A.with_lab "fill" (fun a -> Mov (S32, R Eax, M (mem_abs a)));
          a32 (Test (S32, R Eax, R Eax));
          A.jcc Ne "w_item";
          A.with_lab "done" (fun a -> Mov (S32, R Eax, M (mem_abs a)));
          a32 (Test (S32, R Eax, R Eax));
          A.jcc Ne "w_exit";
          (* futex_wait(fill, 0): cannot miss a wake — the fill-check and
             the wait are one uninterrupted (syscall-free) span *)
          a32 (Mov (S32, R Eax, I 240));
          A.mov_ri_lab Ebx "fill";
          a32 (Mov (S32, R Ecx, I 0));
          a32 (Mov (S32, R Edx, I 0));
          a32 (Int_n 0x80);
          A.jmp "w_loop";
          A.label "w_item";
          (* dequeue (no syscall inside: atomic under the scheduler) *)
          A.with_lab "fill" (fun a -> Dec (S32, M (mem_abs a)));
          A.with_lab "tail" (fun a -> Mov (S32, R Ebx, M (mem_abs a)));
          a32 (Alu (And, S32, R Ebx, I qmask));
          A.with_lab "queue" (fun a ->
              Mov (S32, R Eax, M { base = None; index = Some (Ebx, 4); disp = a }));
          A.with_lab "tail" (fun a -> Inc (S32, M (mem_abs a)));
          A.with_lab "cons_sum" (fun a -> Alu (Add, S32, M (mem_abs a), R Eax));
          A.with_lab "restab" (fun a ->
              Alu (Add, S32, M { base = None; index = Some (Edi, 4); disp = a }, R Eax));
          (* compute burst on the item *)
          a32 (Mov (S32, R Ecx, I 16));
          A.label "w_mix";
        ]
      @ lcg_next
      @ [
          a32 (Dec (S32, R Ecx));
          A.jcc Ne "w_mix";
          A.jmp "w_loop";
          A.label "w_exit";
          a32 (Mov (S32, R Eax, I 1));
          a32 (Mov (S32, R Ebx, R Edi));
          a32 (Int_n 0x80);
          A.label "pc_ok";
        ]
    in
    build_image code (shared_data ~workers [])
  in
  { name = "threads-pc"; build; paper_score = None }

let parallel_workers ~workers =
  let workers = clamp_workers workers in
  let build ~scale ~wide:_ =
    let rounds = 12 * scale in
    let code =
      List.concat
        (List.init workers (fun k -> spawn_worker ~entry:"pw_worker" ~k))
      (* the "UI thread" thinks while the workers compute *)
      @ idle 2000
      @ List.concat
          (List.init workers (fun k -> join_worker ~k ~fail:"pw_fail"))
      @ [
          A.jmp "pw_ok";
          A.label "pw_fail";
          a32 (Mov (S32, R Eax, I 1));
          a32 (Mov (S32, R Ebx, I 1));
          a32 (Int_n 0x80);
          (* ---- worker: edi = index; esi = rounds remaining ---- *)
          A.label "pw_worker";
          a32 (Mov (S32, R Edi, R Eax));
          a32 (Mov (S32, R Esi, I rounds));
          A.label "pw_round";
          (* compute burst seeded per worker and round *)
          a32 (Mov (S32, R Eax, R Esi));
          a32 (Alu (Add, S32, R Eax, R Edi));
          a32 (Mov (S32, R Ecx, I 180));
          A.label "pw_burst";
        ]
      @ lcg_next
      @ [
          a32 (Dec (S32, R Ecx));
          A.jcc Ne "pw_burst";
          A.with_lab "restab" (fun a ->
              Alu (Add, S32, M { base = None; index = Some (Edi, 4); disp = a }, R Eax));
        ]
      (* native kernel/driver component *)
      @ kernel_work 400
      (* think time every other round *)
      @ [ a32 (Test (S32, R Esi, I 1)); A.jcc Ne "pw_noidle" ]
      @ idle 1500
      @ [ A.label "pw_noidle" ]
      (* end the slice voluntarily: fairness without quantum expiry *)
      @ yield
      @ [
          a32 (Dec (S32, R Esi));
          A.jcc Ne "pw_round";
          a32 (Mov (S32, R Eax, I 1));
          a32 (Mov (S32, R Ebx, R Edi));
          a32 (Int_n 0x80);
          A.label "pw_ok";
        ]
    in
    build_image code (shared_data ~workers [])
  in
  { name = "threads-ptask"; build; paper_score = None }

let all ~workers = [ producer_consumer ~workers; parallel_workers ~workers ]
