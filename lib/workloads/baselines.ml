(* Baseline execution models (DESIGN.md S7):

   - [native]: the natively compiled Itanium program. Modeled by running
     the workload's wide (LP64-flavoured) variant through the hot pipeline
     in "static compile" mode: no first-phase instrumentation (the program
     goes hot immediately), zero run-time translation charges (compilation
     is offline), native-grade branch costs, and no IA-32 state checks
     beyond what correctness requires. Conservative: our "native" is never
     better scheduled than our best hot translation.

   - [circuitry]: the Itanium processors' IA-32 hardware unit that IA-32 EL
     replaces — a microcoded, low-IPC in-order engine. Modeled as a fixed
     per-instruction cost on the reference interpreter.

   - [xeon]: an out-of-order IA-32 processor (the paper's 1.6 GHz Xeon),
     modeled with per-class instruction costs on the reference interpreter.
     Figure 8 divides by clock frequency to compare wall-clock time. *)

type result = {
  cycles : int;
  insns : int; (* retired IA-32 instructions (interpreter models) *)
  exit_code : int; (* guest process exit code *)
  distribution : Ia32el.Account.distribution option;
  engine : Ia32el.Engine.t option;
}

exception Workload_failed of string

(* ------------------------------------------------------------------ *)
(* IA-32 EL itself                                                     *)
(* ------------------------------------------------------------------ *)

let run_el ?(config = Ia32el.Config.default) ?cost ?dcache
    ?(attach = fun _ -> ()) ?(check_exit = true) (w : Common.t) ~scale =
  let image = w.Common.build ~scale ~wide:false in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let eng =
    Ia32el.Engine.create ~config ?cost ?dcache ~btlib:(module Btlib.Linuxsim) mem
  in
  attach eng;
  match Ia32el.Engine.run ~fuel:2_000_000_000 eng st with
  | Ia32el.Engine.Exited (c, _) when c = 0 || not check_exit ->
    let d = Ia32el.Engine.distribution eng in
    {
      cycles = d.Ia32el.Account.total;
      insns = 0;
      exit_code = c;
      distribution = Some d;
      engine = Some eng;
    }
  | Ia32el.Engine.Exited (c, _) ->
    raise (Workload_failed (Printf.sprintf "%s: exit code %d" w.Common.name c))
  | Ia32el.Engine.Unhandled_fault (f, st) ->
    raise
      (Workload_failed
         (Printf.sprintf "%s: fault %s at 0x%x" w.Common.name
            (Ia32.Fault.to_string f) st.Ia32.State.eip))
  | Ia32el.Engine.Out_of_fuel ->
    raise (Workload_failed (w.Common.name ^ ": out of fuel"))

(* ------------------------------------------------------------------ *)
(* Native Itanium model                                                *)
(* ------------------------------------------------------------------ *)

(* The native model is deliberately conservative: the "compiled" code is
   exactly our best hot translation (same scheduling, same commit-point
   discipline), so native is never credited with optimizations the
   simulator cannot actually perform. Its advantages are: no run-time
   translation/dispatch/lookup charges (native_cost), good profile
   knowledge at compile time, and per-workload LP64/ISA idioms through the
   [wide] build variants. *)
let native_config =
  {
    Ia32el.Config.default with
    Ia32el.Config.first_phase = Ia32el.Config.Interpret_first;
    heat_threshold = 120;
    session_candidates = 1;
  }

let native_cost =
  {
    Ipf.Cost.default with
    Ipf.Cost.interp_per_insn = 0; (* offline compilation *)
    cold_translate_per_insn = 0;
    hot_translate_per_insn = 0;
    dispatch_cost = 4; (* plain control transfer *)
    indirect_lookup_cost = 2; (* hardware-predicted indirect branch *)
    exception_filter_cost = 200;
    syscall_cost = 400; (* no 32->64 marshalling *)
  }

let run_native (w : Common.t) ~scale =
  let image = w.Common.build ~scale ~wide:true in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let eng =
    Ia32el.Engine.create ~config:native_config ~cost:native_cost
      ~btlib:(module Btlib.Linuxsim) mem
  in
  match Ia32el.Engine.run ~fuel:2_000_000_000 eng st with
  | Ia32el.Engine.Exited (0, _) ->
    let d = Ia32el.Engine.distribution eng in
    {
      cycles = d.Ia32el.Account.total;
      insns = 0;
      exit_code = 0;
      distribution = Some d;
      engine = Some eng;
    }
  | _ -> raise (Workload_failed (w.Common.name ^ ": native run failed"))

(* ------------------------------------------------------------------ *)
(* Interpreter-based hardware cost models                              *)
(* ------------------------------------------------------------------ *)

(* Step the reference interpreter, charging [cost_of] per instruction. *)
let run_costed (w : Common.t) ~scale ~wide ~cost_of =
  let image = w.Common.build ~scale ~wide in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let vos = Btlib.Vos.create mem in
  let module L = Btlib.Linuxsim in
  let cycles = ref 0 in
  let insns = ref 0 in
  (* the cost models' virtual clock, so thread quanta expire here too *)
  vos.Btlib.Vos.clock <- (fun _ -> !cycles);
  Btlib.Vos.register_main vos st;
  let cur = ref st in
  let rec go () =
    let st = !cur in
    let at = st.Ia32.State.eip in
    match Ia32.Decode.decode mem at with
    | exception _ -> raise (Workload_failed (w.Common.name ^ ": decode"))
    | insn, _ -> (
      match Ia32.Interp.step st with
      | Ia32.Interp.Normal ->
        incr insns;
        cycles := !cycles + cost_of insn st;
        go ()
      | Ia32.Interp.Syscall n ->
        incr insns;
        cycles := !cycles + cost_of insn st;
        if n <> L.syscall_vector then
          raise (Workload_failed (w.Common.name ^ ": bad syscall vector"))
        else begin
          match L.perform vos st (L.decode_syscall st) with
          | Btlib.Syscall.Exited 0 -> ()
          | Btlib.Syscall.Exited c ->
            raise (Workload_failed (Printf.sprintf "%s: exit %d" w.Common.name c))
          | Btlib.Syscall.Ret v ->
            L.encode_result st v;
            if Btlib.Vos.need_resched vos ~now:!cycles then resched ()
            else go ()
          | Btlib.Syscall.Block -> resched ()
        end
      | Ia32.Interp.Faulted f ->
        raise (Workload_failed (w.Common.name ^ ": " ^ Ia32.Fault.to_string f)))
  and resched () =
    match Btlib.Vos.reschedule vos ~now:!cycles with
    | Btlib.Vos.Run th ->
      cur := th.Btlib.Vos.state;
      (match Btlib.Vos.take_wake th with
      | Some v -> L.encode_result th.Btlib.Vos.state v
      | None -> ());
      go ()
    | Btlib.Vos.Deadlock ->
      raise (Workload_failed (w.Common.name ^ ": guest thread deadlock"))
  in
  go ();
  (* kernel time is native on every platform; idle is idle *)
  let kernel = vos.Btlib.Vos.kernel_cycles and idle = vos.Btlib.Vos.idle_cycles in
  (!cycles, kernel + idle, !insns)

(* The IA-32 hardware circuitry on Itanium: microcoded, in-order, slow —
   roughly a fixed CPI regardless of instruction class, with painful string
   and FP operations. *)
let circuitry_cost (insn : Ia32.Insn.insn) (st : Ia32.State.t) =
  let base = 6 in
  match insn with
  | Ia32.Insn.Movs (s, r) | Ia32.Insn.Stos (s, r) | Ia32.Insn.Scas (s, r)
  | Ia32.Insn.Lods (s, r) ->
    ignore s;
    let n =
      match r with
      | Ia32.Insn.No_rep -> 1
      | _ -> max 1 (Ia32.State.get32 st Ia32.Insn.Ecx)
    in
    base + (3 * n)
  | Ia32.Insn.Div _ | Ia32.Insn.Idiv _ -> 60
  | Ia32.Insn.Mul1 _ | Ia32.Insn.Imul1 _ | Ia32.Insn.Imul_rr _
  | Ia32.Insn.Imul_rri _ ->
    12
  | Ia32.Insn.Fp _ -> 10
  | Ia32.Insn.Mmx _ | Ia32.Insn.Sse _ -> 9
  | Ia32.Insn.Call _ | Ia32.Insn.Call_ind _ | Ia32.Insn.Ret _
  | Ia32.Insn.Jmp_ind _ ->
    base + 4
  | _ -> base

let run_circuitry (w : Common.t) ~scale =
  let raw, os, insns = run_costed w ~scale ~wide:false ~cost_of:circuitry_cost in
  { cycles = raw + os; insns; exit_code = 0; distribution = None; engine = None }

(* An out-of-order IA-32 core of the NetBurst era (the paper's 1.6 GHz
   Xeon): deep pipeline, IPC well below 1 on irregular integer code, slow
   x87, cheap misalignment. Costs are in half-cycles to keep integers. *)
let xeon_cost_halves (insn : Ia32.Insn.insn) (st : Ia32.State.t) =
  let mem_extra = if Ia32.Insn.mem_refs insn = [] then 0 else 6 in
  match insn with
  | Ia32.Insn.Div _ | Ia32.Insn.Idiv _ -> 70 * 2
  | Ia32.Insn.Mul1 _ | Ia32.Insn.Imul1 _ -> 13 * 2
  | Ia32.Insn.Imul_rr _ | Ia32.Insn.Imul_rri _ -> 8 * 2
  | Ia32.Insn.Fp Ia32.Insn.Fsqrt -> 38 * 2
  | Ia32.Insn.Fp (Ia32.Insn.Fop_m (Ia32.Insn.FDiv, _, _))
  | Ia32.Insn.Fp (Ia32.Insn.Fop_st0_st ((Ia32.Insn.FDiv | Ia32.Insn.FDivr), _))
  | Ia32.Insn.Fp (Ia32.Insn.Fop_st_st0 ((Ia32.Insn.FDiv | Ia32.Insn.FDivr), _, _)) ->
    32 * 2
  | Ia32.Insn.Fp _ -> 17 (* x87 stack code on a deep pipeline *)
  | Ia32.Insn.Sse _ -> 14
  | Ia32.Insn.Mmx _ -> 7
  | Ia32.Insn.Movs (_, r) | Ia32.Insn.Stos (_, r) | Ia32.Insn.Scas (_, r)
  | Ia32.Insn.Lods (_, r) -> (
    match r with
    | Ia32.Insn.No_rep -> 8
    | _ -> 4 * max 1 (Ia32.State.get32 st Ia32.Insn.Ecx))
  (* control transfers off the fall-through path: mispredict flushes on
     the 20-stage pipeline plus trace-cache misses — NetBurst's trace
     cache held ~12k uops, so the flat call-heavy footprints of
     interactive code decode from L2 constantly *)
  | Ia32.Insn.Call_ind _ | Ia32.Insn.Jmp_ind _ -> 26 * 2
  | Ia32.Insn.Call _ -> 14
  | Ia32.Insn.Ret _ -> 16
  | Ia32.Insn.Jcc _ -> 11 (* mispredictions on a 20-stage pipeline *)
  | _ -> 7 + mem_extra (* ~3.5 cycles base, ~6.5 with a memory operand *)

let run_xeon (w : Common.t) ~scale =
  let raw, os, insns = run_costed w ~scale ~wide:false ~cost_of:xeon_cost_halves in
  { cycles = (raw / 2) + os; insns; exit_code = 0; distribution = None; engine = None }
