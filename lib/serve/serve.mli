(** Multi-guest serving harness (DESIGN.md §16).

    A {!pool} admits guest-run requests, runs each in its own
    Engine/Vos/Memory instance ({!Ia32el.Instance} — no mutable state is
    shared between requests), enforces per-request virtual-cycle budgets
    through the engine watchdog, and applies bounded-queue admission
    control: capacity = workers + queue, and a submission past capacity
    is rejected with a structured [Bt_error] (component ["serve"]).

    Serving isolation contract: a request served by any backend is
    bit-identical in every observable — guest output, response bytes,
    exit code, the full metrics JSON — to the same guest run standalone,
    because instances share nothing and the metrics are purely
    virtual-time. With a shared read-only AOT tcache
    ({!pool}[ ~tcache ~tcache_readonly:true]), warm requests install all
    their translations from the store: zero retranslation, verified by
    the per-request hit/miss counters. *)

(** Worker backends. [Inline] runs requests synchronously in the caller
    (same admission bookkeeping, deterministic order — the testing
    backend). [Forked] forks worker processes per batch, marshalling
    requests over pipes; the AOT store is loaded once in the parent and
    inherited copy-on-write. [Domains] uses OCaml 5 domains; each domain
    loads the store from disk itself so no hash table crosses a domain
    boundary. *)
type backend = Inline | Forked | Domains

val backend_name : backend -> string

type job = {
  payload : string;  (** bound on the Vos request channel before the run *)
  max_cycles : int option;  (** per-request virtual-cycle budget *)
}

type result = {
  r_stop : string;  (** {!Ia32el.Instance.stop_to_string} *)
  r_exit : int option;
  r_output : string;
  r_response : string;
  r_metrics : string;  (** full metrics JSON — bit-comparable *)
  r_cycles : int;
  r_tc_hits : int;  (** translations installed from the AOT store *)
  r_tc_misses : int;  (** live translations despite the store *)
  r_worker : int;
  r_service_us : float;  (** host wall time of the guest run *)
}

type response = {
  rejected : Ia32el.Bt_error.t option;  (** admission rejection *)
  result : result option;
}

type pool = {
  backend : backend;
  workers : int;
  queue : int;
  config : Ia32el.Config.t;
  scale : int;
  workload : Workloads.Common.t;
  tcache : string option;
  tcache_readonly : bool;
}

type batch = {
  responses : response list;  (** submission order *)
  wall_s : float;
  pool : pool;
}

val pool :
  ?backend:backend ->
  ?workers:int ->
  ?queue:int ->
  ?config:Ia32el.Config.t ->
  ?scale:int ->
  ?workload:Workloads.Common.t ->
  ?tcache:string ->
  ?tcache_readonly:bool ->
  unit ->
  pool
(** Defaults: inline backend, 1 worker, queue 4, default config, scale 1,
    the [serve-echo] workload, no tcache, [tcache_readonly:true]. *)

val capacity : pool -> int
(** workers + queue. *)

val run_batch : ?drain_between:bool -> pool -> job list -> batch
(** Submit [jobs] in order and collect every response.
    [drain_between] (default true) applies backpressure: a submission
    that finds the pool at capacity waits for a completion. With
    [drain_between:false] it is rejected instead — the open-admission
    mode the rejection tests and load generator use. *)

(** {1 Open-loop load} *)

type load_summary = {
  offered : int;
  served : int;
  load_rejected : int;
  load_wall_s : float;
  guests_per_s : float;
  lat_p50_ms : float;  (** completion - arrival, queueing included *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  lat_mean_ms : float;
}

val run_open_loop :
  pool ->
  rate_hz:float ->
  n:int ->
  payload:string ->
  ?max_cycles:int ->
  unit ->
  load_summary * response list
(** Fixed-rate arrivals independent of completions (open loop): an
    arrival that finds workers and queue full is rejected, never
    delayed. Latency is completion - arrival. Forked backend only.
    @raise Invalid_argument on other backends. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [sorted] ascending, [p] in [0,100]. *)

(** {1 AOT compilation} *)

val compile_tcache :
  ?config:Ia32el.Config.t ->
  ?workload:Workloads.Common.t ->
  path:string ->
  scale:int ->
  ?payload:string ->
  unit ->
  Ia32el.Bt_error.t list
(** Static sweep plus one training run (with [payload] bound, so the
    recorded translation-request order matches what same-payload served
    requests replay) into the tcache file at [path]. Returns the save
    diagnostics — empty on success. *)

(** {1 Roll-up} *)

val rollup : ?load:load_summary -> batch -> Obs.Metrics.t
(** One schema'd JSON ([ia32el-serve/1]) rolling up the whole batch:
    pool shape, request counts (served / rejected / budget-exhausted /
    failed), aggregate work (virtual cycles, tcache hits/misses,
    throughput), per-worker served counts, and — when [load] is given —
    the open-loop throughput/latency section. *)
