(* Multi-guest serving harness (DESIGN.md §16).

   A pool admits guest-run requests, runs each in its own
   Engine/Vos/Memory instance (Ia32el.Instance — nothing mutable is
   shared between requests), enforces a per-request virtual-cycle budget
   through the engine watchdog, and applies bounded-queue admission
   control: capacity = workers + queue, and a submission past capacity
   is rejected with a structured Bt_error (component "serve") instead of
   being buffered without bound.

   Backends:
   - Inline: requests run synchronously in the caller's process, in
     submission order. The admission bookkeeping is identical to the
     concurrent backends, so rejection tests and roll-ups are
     deterministic.
   - Forked: persistent worker processes in the PR 6 fork-server style —
     forked once per batch, request/response records marshalled over
     pipes, [Unix._exit] on shutdown so no at_exit handler runs twice.
     The AOT store is loaded ONCE in the parent before forking; children
     inherit it copy-on-write, so N workers share one warmed code store
     with zero per-worker load or retranslation cost.
   - Domains: OCaml 5 domains (stretch goal, behind the backend flag).
     Each domain loads the store from disk itself — the store's hash
     tables are never shared across domains, only the file is.

   Because every request gets a fresh instance and the metrics JSON is
   purely virtual-time, a request served by any backend is bit-identical
   — metrics included — to the same guest run standalone. That is the
   serving-isolation contract the tests pin. *)

type backend = Inline | Forked | Domains

let backend_name = function
  | Inline -> "inline"
  | Forked -> "forked"
  | Domains -> "domains"

type job = { payload : string; max_cycles : int option }

type result = {
  r_stop : string; (* Instance.stop_to_string *)
  r_exit : int option; (* guest exit code, when it exited *)
  r_output : string;
  r_response : string;
  r_metrics : string; (* full metrics JSON — bit-comparable *)
  r_cycles : int; (* virtual clock at stop *)
  r_tc_hits : int; (* AOT store installs (0 without a tcache) *)
  r_tc_misses : int; (* live translations despite the store *)
  r_worker : int;
  r_service_us : float; (* host wall time of the guest run *)
}

type response = {
  rejected : Ia32el.Bt_error.t option;
  result : result option;
}

type pool = {
  backend : backend;
  workers : int;
  queue : int; (* admission queue depth; capacity = workers + queue *)
  config : Ia32el.Config.t;
  scale : int;
  workload : Workloads.Common.t;
  tcache : string option;
  tcache_readonly : bool;
}

type batch = {
  responses : response list; (* submission order *)
  wall_s : float;
  pool : pool;
}

let pool ?(backend = Inline) ?(workers = 1) ?(queue = 4)
    ?(config = Ia32el.Config.default) ?(scale = 1)
    ?(workload = Workloads.Serve_echo.workload) ?tcache
    ?(tcache_readonly = true) () =
  if workers < 1 then invalid_arg "Serve.pool: workers must be >= 1";
  if queue < 0 then invalid_arg "Serve.pool: queue must be >= 0";
  { backend; workers; queue; config; scale; workload; tcache; tcache_readonly }

let capacity p = p.workers + p.queue

let reject_error p =
  Ia32el.Bt_error.make ~component:"serve"
    ~detail:
      (Printf.sprintf "capacity %d (%d workers + %d queue slots)"
         (capacity p) p.workers p.queue)
    "admission queue full"

let build_image p = p.workload.Workloads.Common.build ~scale:p.scale ~wide:false

let load_store p image =
  match p.tcache with
  | None -> None
  | Some path ->
    let image_hash = Persist.image_hash image in
    let config_fp = Persist.config_fingerprint p.config in
    let store, _diags = Persist.load ~path ~image_hash ~config_fp in
    Some store

(* Run one admitted request: fresh instance, optional AOT session,
   budget via the engine watchdog. This is the only function worker
   processes/domains execute. *)
let exec_job p ~image ~store ~worker (j : job) : result =
  let t0 = Unix.gettimeofday () in
  let inst = Ia32el.Instance.create ~config:p.config image in
  let session =
    Option.map
      (fun s ->
        Persist.attach ~readonly:p.tcache_readonly s inst.Ia32el.Instance.eng)
      store
  in
  let r =
    Ia32el.Instance.run ?max_cycles:j.max_cycles ~request:j.payload inst
  in
  let metrics = Obs.Metrics.to_string (Ia32el.Instance.metrics inst) in
  let hits, misses =
    match session with
    | None -> (0, 0)
    | Some se ->
      let s = Persist.stats se in
      (s.Persist.hits, s.Persist.misses)
  in
  {
    r_stop = Ia32el.Instance.stop_to_string r.Ia32el.Instance.stop;
    r_exit =
      (match r.Ia32el.Instance.stop with
      | Ia32el.Instance.Exited c -> Some c
      | _ -> None);
    r_output = r.Ia32el.Instance.output;
    r_response = r.Ia32el.Instance.response;
    r_metrics = metrics;
    r_cycles = r.Ia32el.Instance.cycles;
    r_tc_hits = hits;
    r_tc_misses = misses;
    r_worker = worker;
    r_service_us = (Unix.gettimeofday () -. t0) *. 1e6;
  }

(* ---- inline backend --------------------------------------------------- *)

let run_inline ~drain_between p jobs responses =
  let image = build_image p in
  let store = load_store p image in
  let inflight : (int * job) Queue.t = Queue.create () in
  let reap_one () =
    let id, j = Queue.pop inflight in
    responses.(id) <-
      {
        rejected = None;
        result = Some (exec_job p ~image ~store ~worker:(id mod p.workers) j);
      }
  in
  List.iteri
    (fun id j ->
      if Queue.length inflight >= capacity p then
        if drain_between then begin
          reap_one ();
          Queue.push (id, j) inflight
        end
        else responses.(id) <- { rejected = Some (reject_error p); result = None }
      else Queue.push (id, j) inflight)
    jobs;
  while not (Queue.is_empty inflight) do
    reap_one ()
  done

(* ---- forked backend --------------------------------------------------- *)

type wslot = {
  w_pid : int;
  w_out : out_channel; (* requests to the child *)
  w_in : in_channel; (* responses from the child *)
  w_in_fd : Unix.file_descr;
  mutable w_busy : int option; (* job id in flight *)
  mutable w_arrival : float; (* host arrival time of that job *)
}

(* A worker holds at most one outstanding response (it only gets the
   next request after the parent reaped the previous reply), so select
   on the raw fd never races the channel's buffering. *)
let spawn_worker p ~image ~store idx =
  let req_r, req_w = Unix.pipe () in
  let rsp_r, rsp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close rsp_r;
    let ic = Unix.in_channel_of_descr req_r in
    let oc = Unix.out_channel_of_descr rsp_w in
    (try
       let rec loop () =
         match (Marshal.from_channel ic : (int * job) option) with
         | None -> ()
         | Some (id, j) ->
           let r = exec_job p ~image ~store ~worker:idx j in
           Marshal.to_channel oc (id, r) [];
           flush oc;
           loop ()
       in
       loop ()
     with End_of_file | Sys_error _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close req_r;
    Unix.close rsp_w;
    {
      w_pid = pid;
      w_out = Unix.out_channel_of_descr req_w;
      w_in = Unix.in_channel_of_descr rsp_r;
      w_in_fd = rsp_r;
      w_busy = None;
      w_arrival = 0.;
    }

let dispatch slot id j =
  slot.w_busy <- Some id;
  Marshal.to_channel slot.w_out (Some (id, j)) [];
  flush slot.w_out

let free_slot slots =
  let found = ref None in
  Array.iter (fun s -> if !found = None && s.w_busy = None then found := Some s) slots;
  !found

let shutdown slots =
  Array.iter
    (fun s ->
      (try
         Marshal.to_channel s.w_out (None : (int * job) option) [];
         flush s.w_out;
         close_out s.w_out
       with Sys_error _ -> ());
      ignore (Unix.waitpid [] s.w_pid);
      try close_in s.w_in with Sys_error _ -> ())
    slots

(* Block until one busy worker replies; hand it the next queued job. *)
let reap_one slots pending responses on_reap =
  let busy = Array.to_list slots |> List.filter (fun s -> s.w_busy <> None) in
  match busy with
  | [] -> invalid_arg "Serve: reap with no request in flight"
  | _ -> (
    let fds = List.map (fun s -> s.w_in_fd) busy in
    match Unix.select fds [] [] (-1.0) with
    | fd :: _, _, _ ->
      let s = List.find (fun s -> s.w_in_fd = fd) busy in
      let id, (r : result) = Marshal.from_channel s.w_in in
      responses.(id) <- { rejected = None; result = Some r };
      on_reap ~id ~slot:s;
      s.w_busy <- None;
      (match Queue.take_opt pending with
      | Some (id', j') ->
        s.w_arrival <- Unix.gettimeofday ();
        dispatch s id' j'
      | None -> ())
    | [], _, _ -> ())

let run_forked ~drain_between p jobs responses =
  let image = build_image p in
  let store = load_store p image in
  let slots = Array.init p.workers (spawn_worker p ~image ~store) in
  let pending : (int * job) Queue.t = Queue.create () in
  let no_reap ~id:_ ~slot:_ = () in
  (try
     List.iteri
       (fun id j ->
         let rec admit () =
           match free_slot slots with
           | Some s -> dispatch s id j
           | None ->
             if Queue.length pending < p.queue then Queue.push (id, j) pending
             else if drain_between then begin
               reap_one slots pending responses no_reap;
               admit ()
             end
             else
               responses.(id) <-
                 { rejected = Some (reject_error p); result = None }
         in
         admit ())
       jobs;
     while Array.exists (fun s -> s.w_busy <> None) slots do
       reap_one slots pending responses no_reap
     done
   with e ->
     shutdown slots;
     raise e);
  shutdown slots

(* ---- domains backend -------------------------------------------------- *)

let run_domains ~drain_between p jobs responses =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let pending : (int * job) Queue.t = Queue.create () in
  let inflight = ref 0 in
  let submitted_all = ref false in
  let worker idx () =
    (* per-domain image and store: nothing heap-shared between domains
       but the immutable job records *)
    let image = build_image p in
    let store = load_store p image in
    let rec loop () =
      Mutex.lock m;
      let rec next () =
        match Queue.take_opt pending with
        | Some x -> Some x
        | None ->
          if !submitted_all then None
          else begin
            Condition.wait cv m;
            next ()
          end
      in
      match next () with
      | None -> Mutex.unlock m
      | Some (id, j) ->
        Mutex.unlock m;
        let r = exec_job p ~image ~store ~worker:idx j in
        Mutex.lock m;
        responses.(id) <- { rejected = None; result = Some r };
        decr inflight;
        Condition.broadcast cv;
        Mutex.unlock m;
        loop ()
    in
    loop ()
  in
  let doms = List.init p.workers (fun i -> Domain.spawn (worker i)) in
  List.iteri
    (fun id j ->
      Mutex.lock m;
      if !inflight >= capacity p && not drain_between then
        responses.(id) <- { rejected = Some (reject_error p); result = None }
      else begin
        while !inflight >= capacity p do
          Condition.wait cv m
        done;
        incr inflight;
        Queue.push (id, j) pending;
        Condition.broadcast cv
      end;
      Mutex.unlock m)
    jobs;
  Mutex.lock m;
  submitted_all := true;
  Condition.broadcast cv;
  Mutex.unlock m;
  List.iter Domain.join doms

(* ---- batch entry point ------------------------------------------------ *)

let run_batch ?(drain_between = true) p jobs =
  let t0 = Unix.gettimeofday () in
  let n = List.length jobs in
  let responses = Array.make n { rejected = None; result = None } in
  (match p.backend with
  | Inline -> run_inline ~drain_between p jobs responses
  | Forked -> run_forked ~drain_between p jobs responses
  | Domains -> run_domains ~drain_between p jobs responses);
  {
    responses = Array.to_list responses;
    wall_s = Unix.gettimeofday () -. t0;
    pool = p;
  }

(* ---- open-loop load generation ---------------------------------------- *)

(* Arrivals at a fixed rate, independent of completions (open loop): a
   request that finds workers and queue full is REJECTED, never delays
   the arrival process. Latency is completion - arrival, queueing
   included. Forked backend only: open-loop needs real concurrency. *)

type load_summary = {
  offered : int;
  served : int;
  load_rejected : int;
  load_wall_s : float;
  guests_per_s : float;
  lat_p50_ms : float;
  lat_p95_ms : float;
  lat_p99_ms : float;
  lat_mean_ms : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))

let run_open_loop p ~rate_hz ~n ~payload ?max_cycles () =
  if p.backend <> Forked then
    invalid_arg "Serve.run_open_loop: forked backend only";
  if rate_hz <= 0. then invalid_arg "Serve.run_open_loop: rate must be > 0";
  let image = build_image p in
  let store = load_store p image in
  let slots = Array.init p.workers (spawn_worker p ~image ~store) in
  let job = { payload; max_cycles } in
  let pending : (int * job) Queue.t = Queue.create () in
  let arrivals = Array.make n 0. in
  let latencies = ref [] in
  let served = ref 0 in
  let rejected = ref 0 in
  let responses = Array.make n { rejected = None; result = None } in
  let reap_ready timeout =
    let busy = Array.to_list slots |> List.filter (fun s -> s.w_busy <> None) in
    if busy <> [] then begin
      let fds = List.map (fun s -> s.w_in_fd) busy in
      match Unix.select fds [] [] timeout with
      | ready, _, _ ->
        List.iter
          (fun fd ->
            let s = List.find (fun s -> s.w_in_fd = fd) busy in
            let id, (r : result) = Marshal.from_channel s.w_in in
            responses.(id) <- { rejected = None; result = Some r };
            latencies :=
              ((Unix.gettimeofday () -. arrivals.(id)) *. 1e3) :: !latencies;
            incr served;
            s.w_busy <- None;
            match Queue.take_opt pending with
            | Some (id', j') -> dispatch s id' j'
            | None -> ())
          ready
    end
    else if timeout > 0. then ignore (Unix.select [] [] [] timeout)
  in
  let t0 = Unix.gettimeofday () in
  let next = ref 0 in
  (try
     while
       !next < n
       || Queue.length pending > 0
       || Array.exists (fun s -> s.w_busy <> None) slots
     do
       let now = Unix.gettimeofday () in
       if !next < n && now >= t0 +. (float_of_int !next /. rate_hz) then begin
         let id = !next in
         incr next;
         arrivals.(id) <- now;
         match free_slot slots with
         | Some s -> dispatch s id job
         | None ->
           if Queue.length pending < p.queue then Queue.push (id, job) pending
           else begin
             responses.(id) <- { rejected = Some (reject_error p); result = None };
             incr rejected
           end
       end
       else begin
         let timeout =
           if !next < n then
             max 0. (t0 +. (float_of_int !next /. rate_hz) -. now)
           else 0.05
         in
         reap_ready timeout
       end
     done
   with e ->
     shutdown slots;
     raise e);
  shutdown slots;
  let wall = Unix.gettimeofday () -. t0 in
  let lats = Array.of_list !latencies in
  Array.sort compare lats;
  let mean =
    if Array.length lats = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
  in
  ( {
      offered = n;
      served = !served;
      load_rejected = !rejected;
      load_wall_s = wall;
      guests_per_s = (if wall > 0. then float_of_int !served /. wall else 0.);
      lat_p50_ms = percentile lats 50.;
      lat_p95_ms = percentile lats 95.;
      lat_p99_ms = percentile lats 99.;
      lat_mean_ms = mean;
    },
    Array.to_list responses )

(* ---- AOT compilation for serving -------------------------------------- *)

(* Sweep + train the pool workload into a tcache file, binding [payload]
   during the training run so the recorded translation-request order is
   exactly what every same-payload served request replays. Returns the
   save diagnostics (empty on success). *)
let compile_tcache ?(config = Ia32el.Config.default)
    ?(workload = Workloads.Serve_echo.workload) ~path ~scale ?payload () =
  let image = workload.Workloads.Common.build ~scale ~wide:false in
  let image_hash = Persist.image_hash image in
  let config_fp = Persist.config_fingerprint config in
  let store, _diags = Persist.load ~path ~image_hash ~config_fp in
  let mem = Ia32.Memory.create () in
  let _st = Ia32.Asm.load image mem in
  let eng = Ia32el.Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem in
  let se = Persist.attach store eng in
  let roots = image.Ia32.Asm.entry :: List.map snd image.Ia32.Asm.labels in
  let lo = image.Ia32.Asm.code_base in
  let hi = lo + String.length image.Ia32.Asm.code in
  ignore (Persist.sweep se ~roots ~lo ~hi);
  let inst = Ia32el.Instance.create ~config image in
  ignore (Persist.attach store inst.Ia32el.Instance.eng);
  ignore (Ia32el.Instance.run ?request:payload inst);
  Persist.save store ~path

(* ---- roll-up metrics -------------------------------------------------- *)

let rollup ?load (b : batch) =
  let open Obs.Metrics in
  let t = make ~schema:"ia32el-serve/1" in
  let served = List.filter (fun r -> r.result <> None) b.responses in
  let rejected = List.length b.responses - List.length served in
  let count f = List.length (List.filter f served) in
  let sum f =
    List.fold_left (fun a r -> a + f (Option.get r.result)) 0 served
  in
  let ok = count (fun r -> (Option.get r.result).r_exit = Some 0) in
  let budget =
    count (fun r -> (Option.get r.result).r_stop = "budget_exhausted")
  in
  section t "pool"
    [
      ("backend", Str (backend_name b.pool.backend));
      ("workers", Int b.pool.workers);
      ("queue", Int b.pool.queue);
      ("capacity", Int (capacity b.pool));
      ("tcache", Bool (b.pool.tcache <> None));
      ("tcache_readonly", Bool b.pool.tcache_readonly);
      ("workload", Str b.pool.workload.Workloads.Common.name);
      ("scale", Int b.pool.scale);
    ];
  section t "requests"
    [
      ("submitted", Int (List.length b.responses));
      ("served", Int (List.length served));
      ("rejected", Int rejected);
      ("exit_ok", Int ok);
      ("budget_exhausted", Int budget);
      ("failed", Int (List.length served - ok - budget));
    ];
  section t "work"
    [
      ("virtual_cycles", Int (sum (fun r -> r.r_cycles)));
      ("tc_hits", Int (sum (fun r -> r.r_tc_hits)));
      ("tc_misses", Int (sum (fun r -> r.r_tc_misses)));
      ("wall_s", Float b.wall_s);
      ( "served_per_s",
        Float
          (if b.wall_s > 0. then float_of_int (List.length served) /. b.wall_s
           else 0.) );
    ];
  let per_worker =
    let a = Array.make b.pool.workers 0 in
    List.iter
      (fun r ->
        match r.result with
        | Some x when x.r_worker < b.pool.workers ->
          a.(x.r_worker) <- a.(x.r_worker) + 1
        | _ -> ())
      b.responses;
    Array.to_list a
  in
  section t "workers"
    [ ("served_per_worker", List (List.map (fun n -> Int n) per_worker)) ];
  (match load with
  | None -> ()
  | Some l ->
    section t "load"
      [
        ("offered", Int l.offered);
        ("served", Int l.served);
        ("rejected", Int l.load_rejected);
        ("wall_s", Float l.load_wall_s);
        ("guests_per_s", Float l.guests_per_s);
        ("lat_p50_ms", Float l.lat_p50_ms);
        ("lat_p95_ms", Float l.lat_p95_ms);
        ("lat_p99_ms", Float l.lat_p99_ms);
        ("lat_mean_ms", Float l.lat_mean_ms);
      ]);
  t
