(* The virtual native OS: owns the guest process's address space and
   provides the services both execution vehicles (reference interpreter and
   IA-32 EL) request — memory, system calls, exception delivery to guest
   handlers, and the accounting buckets the Sysmark analysis needs (kernel
   time runs natively, idle time is idle). *)

type exception_outcome =
  | Resumed (* a guest handler was run; execution resumes at [st.eip] *)
  | Unhandled of Ia32.Fault.t

(* ---- guest threads ----------------------------------------------------

   Each guest thread is a full per-thread [Ia32.State.t] over the shared
   [Memory] plus a scheduling status. Scheduling is deterministic: the
   run queue is scanned round-robin by tid, preemption happens only at
   system-call commit points when the virtual-clock quantum has expired
   (or the thread yielded), and the futex wait queue is strict FIFO — so
   cycle counts, lockstep and fuzzing stay bit-reproducible. *)

type thread_status =
  | Runnable
  | Blocked_join of int (* waiting for this tid to exit *)
  | Blocked_futex of int (* waiting on this guest address *)
  | Exited_t of int (* exit code, not yet reaped by a joiner *)
  | Reaped

type thread = {
  tid : int;
  mutable state : Ia32.State.t; (* parked or running architectural state *)
  mutable status : thread_status;
  mutable joiner : int option; (* tid blocked in [Join] on this thread *)
  mutable wake_result : int option; (* EAX value owed at next resume *)
  (* per-thread observability counters; recording only *)
  mutable t_cycles : int;
  mutable t_syscalls : int;
}

type t = {
  mem : Ia32.Memory.t;
  mutable brk : int; (* heap break *)
  heap_base : int;
  heap_limit : int;
  handlers : (int, int) Hashtbl.t; (* exception vector -> guest handler *)
  output : Buffer.t;
  mutable exit_code : int option;
  mutable kernel_cycles : int;
  mutable idle_cycles : int;
  mutable syscalls : int;
  mutable exceptions_delivered : int;
  mutable clock : int -> int; (* provided by the harness: virtual cycles *)
  (* transient-failure injection hook: consulted once per attempt; [true]
     means this attempt of the service fails transiently and the OS
     retries after a backoff. Guest-transparent: only kernel time moves. *)
  mutable transient_fault : (Syscall.call -> bool) option;
  mutable transient_retries : int; (* attempts that failed transiently *)
  (* observability: when set, syscall entry/exit events are emitted here.
     Recording only — never affects service behavior or accounting. *)
  mutable trace : Obs.Trace.t option;
  (* observability: when set, each completed futex wait reports its
     blocked duration (virtual cycles) here. Recording only — not part
     of checkpoint/restore, so attaching never perturbs snapshots. *)
  mutable futex_hist : (int -> unit) option;
  futex_wait_since : (int, int) Hashtbl.t; (* tid -> clock at block *)
  (* ---- request/response channel (socket-like, serving harness) ----
     One pending request at a time: the harness binds a payload before
     the run; the guest drains it with Accept/Recv and appends its reply
     with Send. All per-instance — many live Vos in one process never
     share channel state. *)
  mutable req_data : string; (* bound request payload *)
  mutable req_pos : int; (* bytes already transferred by Recv *)
  mutable req_bound : bool; (* a request is bound (Accept succeeds) *)
  response : Buffer.t; (* bytes the guest appended with Send *)
  mutable net_recvd : int; (* total request bytes transferred *)
  mutable net_sent : int; (* total response bytes appended *)
  (* ---- translated-code region arena (per-instance) ----
     BTLib [alloc_region] bookkeeping used to live in module-level refs
     in {!Linuxsim}/{!Winsim} and leaked across Vos instances in one
     process; each personality now initialises this cursor lazily from
     its own base address. 0 = not yet initialised. *)
  mutable region_next : int;
  (* ---- threads ---- *)
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int; (* tids are dense: 0 .. next_tid-1 *)
  mutable current : int;
  mutable quantum : int; (* virtual cycles per slice; <= 0 disables *)
  mutable quantum_start : int; (* clock value when current was dispatched *)
  mutable preempt : bool; (* set by Yield: reschedule at next commit *)
  mutable futex_fifo : int list; (* tids in futex wait, oldest first *)
  mutable last_charge : int; (* clock value of last per-thread charge *)
  mutable context_switches : int;
}

let heap_base_default = 0x10000000
let heap_limit_default = 0x18000000
let default_quantum = 20_000

let create mem =
  {
    mem;
    brk = heap_base_default;
    heap_base = heap_base_default;
    heap_limit = heap_limit_default;
    handlers = Hashtbl.create 8;
    output = Buffer.create 256;
    exit_code = None;
    kernel_cycles = 0;
    idle_cycles = 0;
    syscalls = 0;
    exceptions_delivered = 0;
    clock = (fun _ -> 0);
    transient_fault = None;
    transient_retries = 0;
    trace = None;
    futex_hist = None;
    futex_wait_since = Hashtbl.create 8;
    req_data = "";
    req_pos = 0;
    req_bound = false;
    response = Buffer.create 64;
    net_recvd = 0;
    net_sent = 0;
    region_next = 0;
    threads = Hashtbl.create 8;
    next_tid = 0;
    current = 0;
    quantum = default_quantum;
    quantum_start = 0;
    preempt = false;
    futex_fifo = [];
    last_charge = 0;
    context_switches = 0;
  }

let output t = Buffer.contents t.output

(* ---- request/response channel ---------------------------------------- *)

(* Bind [payload] as the pending request, resetting the channel: any
   previous request remainder and response bytes are dropped. Harness
   wiring — called before the run, never from guest code. *)
let bind_request t payload =
  t.req_data <- payload;
  t.req_pos <- 0;
  t.req_bound <- true;
  Buffer.clear t.response;
  t.net_recvd <- 0;
  t.net_sent <- 0

let response t = Buffer.contents t.response
let request_remaining t = String.length t.req_data - t.req_pos

let round_page n =
  (n + Ia32.Memory.page_size - 1) land lnot (Ia32.Memory.page_size - 1)

(* Bounded retry with exponential backoff for injected transient kernel
   failures. The hook decides per attempt; after [max_transient_retries]
   failed attempts the service proceeds anyway — the guest never observes
   a transient failure, only the kernel bucket absorbs the retries. *)
let max_transient_retries = 4
let transient_backoff_cycles = 200

let ride_out_transients t call =
  match t.transient_fault with
  | None -> ()
  | Some failing ->
    let rec go attempt =
      if attempt < max_transient_retries && failing call then begin
        t.transient_retries <- t.transient_retries + 1;
        (* exponential backoff, charged as native kernel time *)
        t.kernel_cycles <- t.kernel_cycles + (transient_backoff_cycles lsl attempt);
        go (attempt + 1)
      end
    in
    go 0

(* ---- thread table & deterministic scheduler -------------------------- *)

let register_thread t (st : Ia32.State.t) =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let th =
    {
      tid;
      state = st;
      status = Runnable;
      joiner = None;
      wake_result = None;
      t_cycles = 0;
      t_syscalls = 0;
    }
  in
  Hashtbl.replace t.threads tid th;
  th

(* The main thread is tid 0. [ensure_main] registers it lazily the first
   time a thread service runs, so Vos users that never spawn behave
   exactly as before threads existed. *)
let register_main t st =
  if t.next_tid = 0 then ignore (register_thread t st)

let ensure_main t st = register_main t st
let current t = t.current
let thread_count t = t.next_tid
let find_thread t tid = Hashtbl.find_opt t.threads tid

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th.state
  | None -> invalid_arg "Vos.thread_state: unknown tid"

(* Used by lockstep to slave the reference's thread selection to the
   engine's commit stream. Never schedules. *)
let set_current t tid = t.current <- tid

let take_wake th =
  let r = th.wake_result in
  th.wake_result <- None;
  r

let park t (st : Ia32.State.t) =
  match Hashtbl.find_opt t.threads t.current with
  | Some th -> th.state <- st
  | None -> ()

(* Charge virtual cycles since the last charge point to the running
   thread. Recording only — scheduling decisions read the clock directly. *)
let charge_current t ~now =
  (match Hashtbl.find_opt t.threads t.current with
  | Some th -> th.t_cycles <- th.t_cycles + max 0 (now - t.last_charge)
  | None -> ());
  t.last_charge <- now

(* Single-thread fast path: with at most one thread there is never a
   reschedule, so pre-thread programs keep bit-identical cycle counts. *)
let need_resched t ~now =
  t.next_tid > 1
  && (t.preempt || (t.quantum > 0 && now - t.quantum_start >= t.quantum))

type schedule = Run of thread | Deadlock

(* Deterministic round-robin: scan tids cyclically starting after the
   current thread; the first Runnable wins (k = n reaches current itself,
   so a lone runnable current keeps running). *)
let reschedule t ~now =
  charge_current t ~now;
  let n = t.next_tid in
  let rec scan k =
    if k > n then Deadlock
    else
      let tid = (t.current + k) mod n in
      match Hashtbl.find_opt t.threads tid with
      | Some th when th.status = Runnable ->
        if tid <> t.current then begin
          t.context_switches <- t.context_switches + 1;
          (match t.trace with
          | Some tr ->
            Obs.Trace.emit tr
              (Obs.Trace.Thread_switch { from_tid = t.current; to_tid = tid })
          | None -> ())
        end;
        t.current <- tid;
        t.quantum_start <- now;
        t.preempt <- false;
        Run th
      | _ -> scan (k + 1)
  in
  if n = 0 then Deadlock else scan 1

let errno n = Syscall.Ret (Ia32.Word.mask32 n)

let cur_thread t = Hashtbl.find_opt t.threads t.current

(* Thread services. All state transitions happen here, at syscall-commit
   points, which keeps the whole machine deterministic. *)
let do_exit t code =
  charge_current t ~now:(t.clock 0);
  (match cur_thread t with
  | Some me ->
    me.status <- Exited_t code;
    (match me.joiner with
    | Some jtid ->
      (match Hashtbl.find_opt t.threads jtid with
      | Some j when j.status = Blocked_join me.tid ->
        j.status <- Runnable;
        j.wake_result <- Some code;
        me.status <- Reaped
      | _ -> ())
    | None -> ());
    (match t.trace with
    | Some tr ->
      Obs.Trace.emit tr (Obs.Trace.Thread_exit { tid = me.tid; code })
    | None -> ())
  | None -> ());
  if t.current = 0 then t.exit_code <- Some code;
  let all_done =
    Hashtbl.fold
      (fun _ th acc ->
        acc && match th.status with Exited_t _ | Reaped -> true | _ -> false)
      t.threads true
  in
  if all_done || t.next_tid <= 1 then begin
    if t.exit_code = None then t.exit_code <- Some code;
    (* process exit code is the main thread's, falling back defensively *)
    Syscall.Exited (match t.exit_code with Some c -> c | None -> code)
  end
  else Syscall.Block

let do_spawn t ~entry ~stack ~arg =
  let st = Ia32.State.create t.mem in
  st.Ia32.State.eip <- entry;
  Ia32.State.set32 st Ia32.Insn.Esp stack;
  Ia32.State.set32 st Ia32.Insn.Eax arg;
  let th = register_thread t st in
  (match t.trace with
  | Some tr -> Obs.Trace.emit tr (Obs.Trace.Thread_spawn { tid = th.tid; entry })
  | None -> ());
  Syscall.Ret th.tid

let do_join t tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> errno (-3) (* ESRCH *)
  | Some _ when tid = t.current -> errno (-35) (* EDEADLK *)
  | Some target -> (
    match target.status with
    | Reaped -> errno (-3) (* already reaped: nothing to join *)
    | Exited_t code ->
      target.status <- Reaped;
      Syscall.Ret (Ia32.Word.mask32 code)
    | _ when target.joiner <> None -> errno (-22) (* EINVAL: double join *)
    | _ ->
      target.joiner <- Some t.current;
      (match cur_thread t with
      | Some me -> me.status <- Blocked_join tid
      | None -> ());
      Syscall.Block)

let do_futex_wait t ~addr ~expected =
  match Ia32.Memory.read32 t.mem addr with
  | exception Ia32.Fault.Fault _ -> errno (-14) (* EFAULT *)
  | v when v <> Ia32.Word.mask32 expected -> errno (-11) (* EAGAIN *)
  | _ ->
    (match cur_thread t with
    | Some me ->
      me.status <- Blocked_futex addr;
      (* drop any stale entry from a previous wait before re-queueing,
         so a wait/wake/wait cycle cannot leave duplicate entries *)
      t.futex_fifo <-
        List.filter (fun tid -> tid <> t.current) t.futex_fifo @ [ t.current ];
      if t.futex_hist <> None then
        Hashtbl.replace t.futex_wait_since t.current (t.clock 0);
      Syscall.Block
    | None -> errno (-11))

let do_futex_wake t ~addr ~count =
  let woken = ref 0 in
  (* FIFO walk: wake matching-address waiters up to [count]; waiters on
     other addresses (and stale entries) must stay queued. *)
  t.futex_fifo <-
    List.filter
      (fun tid ->
        if !woken >= count then true
        else
          match Hashtbl.find_opt t.threads tid with
          | Some th when th.status = Blocked_futex addr ->
            th.status <- Runnable;
            th.wake_result <- Some 0;
            (match t.futex_hist with
            | Some record -> (
              match Hashtbl.find_opt t.futex_wait_since tid with
              | Some since ->
                Hashtbl.remove t.futex_wait_since tid;
                record (t.clock 0 - since)
              | None -> ())
            | None -> ());
            incr woken;
            false
          | _ -> true)
      t.futex_fifo;
  Syscall.Ret !woken

(* Socket-like channel services. [Recv] is all-or-nothing like [Write]:
   the transferred span is rolled back byte-for-byte if a page fault
   interrupts it, so the guest never observes a partial delivery (and the
   request cursor only advances on success). *)
let do_accept t =
  if t.req_bound then Syscall.Ret (request_remaining t)
  else errno (-11) (* EAGAIN: no request bound *)

let do_recv t ~buf ~len =
  if not t.req_bound then errno (-11)
  else begin
    let n = min (max 0 len) (request_remaining t) in
    let written = ref [] in
    try
      for k = 0 to n - 1 do
        let a = buf + k in
        let old = Ia32.Memory.read8 t.mem a in
        Ia32.Memory.write8 t.mem a
          (Char.code t.req_data.[t.req_pos + k]);
        written := (a, old) :: !written
      done;
      t.req_pos <- t.req_pos + n;
      t.net_recvd <- t.net_recvd + n;
      Syscall.Ret n
    with Ia32.Fault.Fault _ ->
      List.iter (fun (a, old) -> Ia32.Memory.write8 t.mem a old) !written;
      errno (-14) (* EFAULT, nothing transferred *)
  end

let do_send t ~buf ~len =
  let len = min (max 0 len) 1_000_000 in
  let scratch = Buffer.create (min (max len 1) 4096) in
  try
    for k = 0 to len - 1 do
      Buffer.add_char scratch (Char.chr (Ia32.Memory.read8 t.mem (buf + k)))
    done;
    Buffer.add_buffer t.response scratch;
    t.net_sent <- t.net_sent + len;
    Syscall.Ret len
  with Ia32.Fault.Fault _ -> errno (-14)

let call_name = function
  | Syscall.Exit _ -> "exit"
  | Syscall.Write _ -> "write"
  | Syscall.Sbrk _ -> "sbrk"
  | Syscall.Map _ -> "map"
  | Syscall.Unmap _ -> "unmap"
  | Syscall.Signal _ -> "signal"
  | Syscall.Getclock -> "getclock"
  | Syscall.Kernel_work _ -> "kernel_work"
  | Syscall.Idle _ -> "idle"
  | Syscall.Spawn _ -> "spawn"
  | Syscall.Join _ -> "join"
  | Syscall.Yield -> "yield"
  | Syscall.Futex_wait _ -> "futex_wait"
  | Syscall.Futex_wake _ -> "futex_wake"
  | Syscall.Accept -> "accept"
  | Syscall.Recv _ -> "recv"
  | Syscall.Send _ -> "send"
  | Syscall.Unknown _ -> "unknown"

(* Execute a system service against guest state [st]. The service itself
   "runs natively" — the cycle cost is charged by the caller to the
   other/kernel bucket. *)
let perform_call t (st : Ia32.State.t) (call : Syscall.call) : Syscall.result =
  t.syscalls <- t.syscalls + 1;
  (match cur_thread t with
  | Some th -> th.t_syscalls <- th.t_syscalls + 1
  | None -> ());
  ride_out_transients t call;
  match call with
  | Syscall.Exit code ->
    ensure_main t st;
    do_exit t code
  | Syscall.Write { buf; len } ->
    (* All-or-nothing (POSIX-ish: a write that faults mid-buffer returns
       -EFAULT without transferring anything): stage the bytes in a
       scratch buffer and commit to the console atomically, so a page
       fault halfway through cannot leave a partial write visible. *)
    let len = min len 1_000_000 in
    let scratch = Buffer.create (min len 4096) in
    (try
       for k = 0 to len - 1 do
         Buffer.add_char scratch
           (Char.chr (Ia32.Memory.read8 st.Ia32.State.mem (buf + k)))
       done;
       Buffer.add_buffer t.output scratch;
       Syscall.Ret len
     with Ia32.Fault.Fault _ -> Syscall.Ret (Ia32.Word.mask32 (-14)))
  | Syscall.Sbrk n ->
    let old = t.brk in
    let nbrk = t.brk + n in
    if nbrk < t.heap_base || nbrk > t.heap_limit then
      Syscall.Ret (Ia32.Word.mask32 (-12))
    else begin
      if n > 0 then
        Ia32.Memory.map t.mem ~addr:old ~len:(round_page n) ~prot:Ia32.Memory.prot_rw
      else if n < 0 then begin
        (* shrink: unmap the fully freed pages so stale heap accesses
           fault instead of silently reading dead data. The page holding
           the new break (if partially used) stays mapped. *)
        let keep_to = round_page nbrk in
        let freed = round_page old - keep_to in
        if freed > 0 then Ia32.Memory.unmap t.mem ~addr:keep_to ~len:freed
      end;
      t.brk <- nbrk;
      Syscall.Ret old
    end
  | Syscall.Map { addr; len } ->
    Ia32.Memory.map t.mem ~addr ~len:(round_page (max len 1)) ~prot:Ia32.Memory.prot_rw;
    Syscall.Ret addr
  | Syscall.Unmap { addr; len } ->
    Ia32.Memory.unmap t.mem ~addr ~len:(round_page (max len 1));
    Syscall.Ret 0
  | Syscall.Signal { vector; handler } ->
    if handler = 0 then Hashtbl.remove t.handlers vector
    else Hashtbl.replace t.handlers vector handler;
    Syscall.Ret 0
  | Syscall.Getclock -> Syscall.Ret (Ia32.Word.mask32 (t.clock 0))
  | Syscall.Kernel_work n ->
    t.kernel_cycles <- t.kernel_cycles + max 0 n;
    Syscall.Ret 0
  | Syscall.Idle n ->
    t.idle_cycles <- t.idle_cycles + max 0 n;
    Syscall.Ret 0
  | Syscall.Spawn { entry; stack; arg } ->
    ensure_main t st;
    do_spawn t ~entry ~stack ~arg
  | Syscall.Join tid ->
    ensure_main t st;
    do_join t tid
  | Syscall.Yield ->
    ensure_main t st;
    if t.next_tid > 1 then t.preempt <- true;
    Syscall.Ret 0
  | Syscall.Futex_wait { addr; expected } ->
    ensure_main t st;
    do_futex_wait t ~addr ~expected
  | Syscall.Futex_wake { addr; count } ->
    ensure_main t st;
    do_futex_wake t ~addr ~count
  | Syscall.Accept -> do_accept t
  | Syscall.Recv { buf; len } -> do_recv t ~buf ~len
  | Syscall.Send { buf; len } -> do_send t ~buf ~len
  | Syscall.Unknown _ -> Syscall.Ret (Ia32.Word.mask32 (-38))

let perform t st call =
  match t.trace with
  | None -> perform_call t st call
  | Some tr ->
    let name = call_name call in
    Obs.Trace.emit tr (Obs.Trace.Syscall_enter { name });
    let k0 = t.kernel_cycles and i0 = t.idle_cycles in
    let r = perform_call t st call in
    Obs.Trace.emit tr
      (Obs.Trace.Syscall_exit
         {
           name;
           kernel_cycles = t.kernel_cycles - k0;
           idle_cycles = t.idle_cycles - i0;
         });
    r

(* Deliver an IA-32 exception whose precise state has already been
   reconstructed into [st] (st.eip = faulting instruction). If the guest
   registered a handler for the vector, the OS switches to it with the
   conventional frame:

     [esp]   = fault address (0 when not a memory fault)
     [esp+4] = exception vector
     [esp+8] = faulting EIP (handlers resume with `add esp,8; ret`)

   Otherwise the process dies with the fault. *)
let deliver_exception t (st : Ia32.State.t) fault =
  let vector = Ia32.Fault.vector fault in
  match Hashtbl.find_opt t.handlers vector with
  | None -> Unhandled fault
  | Some handler ->
    t.exceptions_delivered <- t.exceptions_delivered + 1;
    let faddr =
      match fault with Ia32.Fault.Page_fault (a, _) -> a | _ -> 0
    in
    let push v =
      let sp = Ia32.Word.mask32 (Ia32.State.get32 st Ia32.Insn.Esp - 4) in
      Ia32.Memory.write32 st.Ia32.State.mem sp v;
      Ia32.State.set32 st Ia32.Insn.Esp sp
    in
    push st.Ia32.State.eip;
    push vector;
    push faddr;
    st.Ia32.State.eip <- handler;
    Resumed

(* ---- checkpoint / restore ---------------------------------------------

   Captures every piece of OS state a snapshot epoch must be able to
   rewind: kernel scalars, the handler table, the console output length,
   and the full thread table (scheduling fields plus a deep copy of each
   thread's architectural state). Guest memory is NOT captured here —
   that is the page journal's job (Ia32.Memory.Journal); the two are
   rewound together by the snapshot layer above.

   Restore puts values back IN PLACE: each thread record keeps its
   identity, and its state object is reset to the one it held at capture
   time (park can have swapped it meanwhile) with the captured register
   values blitted back in — so references held by callers (the state the
   harness passes to Engine.run) stay valid across a revert. Threads
   spawned after the capture are dropped from the table. *)

type thread_checkpoint = {
  c_th : thread; (* live record *)
  c_state_obj : Ia32.State.t; (* object held at capture time *)
  c_state : Ia32.State.t; (* deep copy of its values *)
  c_status : thread_status;
  c_joiner : int option;
  c_wake : int option;
  c_cycles : int;
  c_syscalls : int;
}

type checkpoint = {
  k_brk : int;
  k_handlers : (int, int) Hashtbl.t;
  k_output_len : int;
  k_exit_code : int option;
  k_kernel_cycles : int;
  k_idle_cycles : int;
  k_syscalls : int;
  k_exceptions : int;
  k_transient_retries : int;
  k_threads : thread_checkpoint list;
  k_next_tid : int;
  k_current : int;
  k_quantum : int;
  k_quantum_start : int;
  k_preempt : bool;
  k_futex_fifo : int list;
  k_last_charge : int;
  k_context_switches : int;
  k_req_data : string;
  k_req_pos : int;
  k_req_bound : bool;
  k_response_len : int;
  k_net_recvd : int;
  k_net_sent : int;
  k_region_next : int;
}

let checkpoint t =
  {
    k_brk = t.brk;
    k_handlers = Hashtbl.copy t.handlers;
    k_output_len = Buffer.length t.output;
    k_exit_code = t.exit_code;
    k_kernel_cycles = t.kernel_cycles;
    k_idle_cycles = t.idle_cycles;
    k_syscalls = t.syscalls;
    k_exceptions = t.exceptions_delivered;
    k_transient_retries = t.transient_retries;
    k_threads =
      Hashtbl.fold
        (fun _ th acc ->
          {
            c_th = th;
            c_state_obj = th.state;
            c_state = Ia32.State.copy th.state;
            c_status = th.status;
            c_joiner = th.joiner;
            c_wake = th.wake_result;
            c_cycles = th.t_cycles;
            c_syscalls = th.t_syscalls;
          }
          :: acc)
        t.threads [];
    k_next_tid = t.next_tid;
    k_current = t.current;
    k_quantum = t.quantum;
    k_quantum_start = t.quantum_start;
    k_preempt = t.preempt;
    k_futex_fifo = t.futex_fifo;
    k_last_charge = t.last_charge;
    k_context_switches = t.context_switches;
    k_req_data = t.req_data;
    k_req_pos = t.req_pos;
    k_req_bound = t.req_bound;
    k_response_len = Buffer.length t.response;
    k_net_recvd = t.net_recvd;
    k_net_sent = t.net_sent;
    k_region_next = t.region_next;
  }

let restore t (k : checkpoint) =
  t.brk <- k.k_brk;
  Hashtbl.reset t.handlers;
  Hashtbl.iter (fun v h -> Hashtbl.replace t.handlers v h) k.k_handlers;
  Buffer.truncate t.output k.k_output_len;
  t.exit_code <- k.k_exit_code;
  t.kernel_cycles <- k.k_kernel_cycles;
  t.idle_cycles <- k.k_idle_cycles;
  t.syscalls <- k.k_syscalls;
  t.exceptions_delivered <- k.k_exceptions;
  t.transient_retries <- k.k_transient_retries;
  Hashtbl.reset t.threads;
  List.iter
    (fun c ->
      let th = c.c_th in
      th.state <- c.c_state_obj;
      Ia32.State.restore_into ~src:c.c_state ~dst:th.state;
      th.status <- c.c_status;
      th.joiner <- c.c_joiner;
      th.wake_result <- c.c_wake;
      th.t_cycles <- c.c_cycles;
      th.t_syscalls <- c.c_syscalls;
      Hashtbl.replace t.threads th.tid th)
    k.k_threads;
  t.next_tid <- k.k_next_tid;
  t.current <- k.k_current;
  t.quantum <- k.k_quantum;
  t.quantum_start <- k.k_quantum_start;
  t.preempt <- k.k_preempt;
  t.futex_fifo <- k.k_futex_fifo;
  t.last_charge <- k.k_last_charge;
  t.context_switches <- k.k_context_switches;
  t.req_data <- k.k_req_data;
  t.req_pos <- k.k_req_pos;
  t.req_bound <- k.k_req_bound;
  Buffer.truncate t.response k.k_response_len;
  t.net_recvd <- k.k_net_recvd;
  t.net_sent <- k.k_net_sent;
  t.region_next <- k.k_region_next
