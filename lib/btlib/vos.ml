(* The virtual native OS: owns the guest process's address space and
   provides the services both execution vehicles (reference interpreter and
   IA-32 EL) request — memory, system calls, exception delivery to guest
   handlers, and the accounting buckets the Sysmark analysis needs (kernel
   time runs natively, idle time is idle). *)

type exception_outcome =
  | Resumed (* a guest handler was run; execution resumes at [st.eip] *)
  | Unhandled of Ia32.Fault.t

type t = {
  mem : Ia32.Memory.t;
  mutable brk : int; (* heap break *)
  heap_base : int;
  heap_limit : int;
  handlers : (int, int) Hashtbl.t; (* exception vector -> guest handler *)
  output : Buffer.t;
  mutable exit_code : int option;
  mutable kernel_cycles : int;
  mutable idle_cycles : int;
  mutable syscalls : int;
  mutable exceptions_delivered : int;
  mutable clock : int -> int; (* provided by the harness: virtual cycles *)
  (* transient-failure injection hook: consulted once per attempt; [true]
     means this attempt of the service fails transiently and the OS
     retries after a backoff. Guest-transparent: only kernel time moves. *)
  mutable transient_fault : (Syscall.call -> bool) option;
  mutable transient_retries : int; (* attempts that failed transiently *)
  (* observability: when set, syscall entry/exit events are emitted here.
     Recording only — never affects service behavior or accounting. *)
  mutable trace : Obs.Trace.t option;
}

let heap_base_default = 0x10000000
let heap_limit_default = 0x18000000

let create mem =
  {
    mem;
    brk = heap_base_default;
    heap_base = heap_base_default;
    heap_limit = heap_limit_default;
    handlers = Hashtbl.create 8;
    output = Buffer.create 256;
    exit_code = None;
    kernel_cycles = 0;
    idle_cycles = 0;
    syscalls = 0;
    exceptions_delivered = 0;
    clock = (fun _ -> 0);
    transient_fault = None;
    transient_retries = 0;
    trace = None;
  }

let output t = Buffer.contents t.output

let round_page n =
  (n + Ia32.Memory.page_size - 1) land lnot (Ia32.Memory.page_size - 1)

(* Bounded retry with exponential backoff for injected transient kernel
   failures. The hook decides per attempt; after [max_transient_retries]
   failed attempts the service proceeds anyway — the guest never observes
   a transient failure, only the kernel bucket absorbs the retries. *)
let max_transient_retries = 4
let transient_backoff_cycles = 200

let ride_out_transients t call =
  match t.transient_fault with
  | None -> ()
  | Some failing ->
    let rec go attempt =
      if attempt < max_transient_retries && failing call then begin
        t.transient_retries <- t.transient_retries + 1;
        (* exponential backoff, charged as native kernel time *)
        t.kernel_cycles <- t.kernel_cycles + (transient_backoff_cycles lsl attempt);
        go (attempt + 1)
      end
    in
    go 0

let call_name = function
  | Syscall.Exit _ -> "exit"
  | Syscall.Write _ -> "write"
  | Syscall.Sbrk _ -> "sbrk"
  | Syscall.Map _ -> "map"
  | Syscall.Unmap _ -> "unmap"
  | Syscall.Signal _ -> "signal"
  | Syscall.Getclock -> "getclock"
  | Syscall.Kernel_work _ -> "kernel_work"
  | Syscall.Idle _ -> "idle"
  | Syscall.Unknown _ -> "unknown"

(* Execute a system service against guest state [st]. The service itself
   "runs natively" — the cycle cost is charged by the caller to the
   other/kernel bucket. *)
let perform_call t (st : Ia32.State.t) (call : Syscall.call) : Syscall.result =
  t.syscalls <- t.syscalls + 1;
  ride_out_transients t call;
  match call with
  | Syscall.Exit code ->
    t.exit_code <- Some code;
    Syscall.Exited code
  | Syscall.Write { buf; len } ->
    (* All-or-nothing (POSIX-ish: a write that faults mid-buffer returns
       -EFAULT without transferring anything): stage the bytes in a
       scratch buffer and commit to the console atomically, so a page
       fault halfway through cannot leave a partial write visible. *)
    let len = min len 1_000_000 in
    let scratch = Buffer.create (min len 4096) in
    (try
       for k = 0 to len - 1 do
         Buffer.add_char scratch
           (Char.chr (Ia32.Memory.read8 st.Ia32.State.mem (buf + k)))
       done;
       Buffer.add_buffer t.output scratch;
       Syscall.Ret len
     with Ia32.Fault.Fault _ -> Syscall.Ret (Ia32.Word.mask32 (-14)))
  | Syscall.Sbrk n ->
    let old = t.brk in
    let nbrk = t.brk + n in
    if nbrk < t.heap_base || nbrk > t.heap_limit then
      Syscall.Ret (Ia32.Word.mask32 (-12))
    else begin
      if n > 0 then
        Ia32.Memory.map t.mem ~addr:old ~len:(round_page n) ~prot:Ia32.Memory.prot_rw
      else if n < 0 then begin
        (* shrink: unmap the fully freed pages so stale heap accesses
           fault instead of silently reading dead data. The page holding
           the new break (if partially used) stays mapped. *)
        let keep_to = round_page nbrk in
        let freed = round_page old - keep_to in
        if freed > 0 then Ia32.Memory.unmap t.mem ~addr:keep_to ~len:freed
      end;
      t.brk <- nbrk;
      Syscall.Ret old
    end
  | Syscall.Map { addr; len } ->
    Ia32.Memory.map t.mem ~addr ~len:(round_page (max len 1)) ~prot:Ia32.Memory.prot_rw;
    Syscall.Ret addr
  | Syscall.Unmap { addr; len } ->
    Ia32.Memory.unmap t.mem ~addr ~len:(round_page (max len 1));
    Syscall.Ret 0
  | Syscall.Signal { vector; handler } ->
    if handler = 0 then Hashtbl.remove t.handlers vector
    else Hashtbl.replace t.handlers vector handler;
    Syscall.Ret 0
  | Syscall.Getclock -> Syscall.Ret (Ia32.Word.mask32 (t.clock 0))
  | Syscall.Kernel_work n ->
    t.kernel_cycles <- t.kernel_cycles + max 0 n;
    Syscall.Ret 0
  | Syscall.Idle n ->
    t.idle_cycles <- t.idle_cycles + max 0 n;
    Syscall.Ret 0
  | Syscall.Unknown _ -> Syscall.Ret (Ia32.Word.mask32 (-38))

let perform t st call =
  match t.trace with
  | None -> perform_call t st call
  | Some tr ->
    let name = call_name call in
    Obs.Trace.emit tr (Obs.Trace.Syscall_enter { name });
    let k0 = t.kernel_cycles and i0 = t.idle_cycles in
    let r = perform_call t st call in
    Obs.Trace.emit tr
      (Obs.Trace.Syscall_exit
         {
           name;
           kernel_cycles = t.kernel_cycles - k0;
           idle_cycles = t.idle_cycles - i0;
         });
    r

(* Deliver an IA-32 exception whose precise state has already been
   reconstructed into [st] (st.eip = faulting instruction). If the guest
   registered a handler for the vector, the OS switches to it with the
   conventional frame:

     [esp]   = fault address (0 when not a memory fault)
     [esp+4] = exception vector
     [esp+8] = faulting EIP (handlers resume with `add esp,8; ret`)

   Otherwise the process dies with the fault. *)
let deliver_exception t (st : Ia32.State.t) fault =
  let vector = Ia32.Fault.vector fault in
  match Hashtbl.find_opt t.handlers vector with
  | None -> Unhandled fault
  | Some handler ->
    t.exceptions_delivered <- t.exceptions_delivered + 1;
    let faddr =
      match fault with Ia32.Fault.Page_fault (a, _) -> a | _ -> 0
    in
    let push v =
      let sp = Ia32.Word.mask32 (Ia32.State.get32 st Ia32.Insn.Esp - 4) in
      Ia32.Memory.write32 st.Ia32.State.mem sp v;
      Ia32.State.set32 st Ia32.Insn.Esp sp
    in
    push st.Ia32.State.eip;
    push vector;
    push faddr;
    st.Ia32.State.eip <- handler;
    Resumed
