(* BTLib for the simulated Windows host: int 0x2e, service number in EAX,
   arguments in EDX/ECX/EBX (note the different order), NTSTATUS-style
   result in EAX. Different service numbering from {!Linuxsim} — the same
   BTGeneric must work on both through the BTOS API alone. *)

open Ia32

let name = "winsim"
let version = { Btos.major = 2; minor = 4 }
let syscall_vector = 0x2E

let decode_syscall (st : State.t) =
  let eax = State.get32 st Insn.Eax in
  let ebx = State.get32 st Insn.Ebx in
  let ecx = State.get32 st Insn.Ecx in
  let edx = State.get32 st Insn.Edx in
  match eax with
  | 0x01 -> Syscall.Exit edx
  | 0x08 -> Syscall.Write { buf = edx; len = ecx }
  | 0x10 -> Syscall.Sbrk (Word.signed32 edx)
  | 0x11 -> Syscall.Map { addr = edx; len = ecx }
  | 0x12 -> Syscall.Unmap { addr = edx; len = ecx }
  | 0x20 -> Syscall.Signal { vector = edx; handler = ecx }
  | 0x30 -> Syscall.Getclock
  | 0x40 -> Syscall.Kernel_work edx
  | 0x41 -> Syscall.Idle edx
  | 0x50 -> Syscall.Spawn { entry = edx; stack = ecx; arg = ebx }
    (* CreateThread-flavoured: start address in edx, stack in ecx *)
  | 0x51 -> Syscall.Join edx (* WaitForSingleObject on a thread handle *)
  | 0x52 -> Syscall.Yield
  | 0x53 -> Syscall.Futex_wait { addr = edx; expected = ecx }
  | 0x54 -> Syscall.Futex_wake { addr = edx; count = ecx }
  | 0x60 -> Syscall.Accept
  | 0x61 -> Syscall.Recv { buf = edx; len = ecx }
  | 0x62 -> Syscall.Send { buf = edx; len = ecx }
  | n -> Syscall.Unknown (n lor (ebx land 0)) (* ebx unused; keep convention *)

let encode_result (st : State.t) v = State.set32 st Insn.Eax v

(* Windows-flavoured allocation: 64 KiB granularity, separate arena. The
   cursor is per-Vos (see {!Vos.t.region_next}) so concurrent guests never
   share allocation state. *)
let arena_base = 0x3000000000

let alloc_region (vos : Vos.t) ~len =
  if vos.Vos.region_next = 0 then vos.Vos.region_next <- arena_base;
  let base = vos.Vos.region_next in
  vos.Vos.region_next <- base + ((len + 0xFFFF) land lnot 0xFFFF);
  base

let perform = Vos.perform
let deliver_exception = Vos.deliver_exception
