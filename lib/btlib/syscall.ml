(* The OS-independent view of an IA-32 system service. Guest programs issue
   services through an OS-specific software-interrupt convention; the
   BTLib implementations ({!Linuxsim}, {!Winsim}) translate the guest's
   register convention into this type and back. *)

type call =
  | Exit of int
  | Write of { buf : int; len : int } (* write bytes to the console *)
  | Sbrk of int (* grow the heap by n bytes; returns old break *)
  | Map of { addr : int; len : int } (* map anonymous rw memory *)
  | Unmap of { addr : int; len : int }
  | Signal of { vector : int; handler : int } (* register exception handler *)
  | Getclock (* virtual cycle counter, low 32 bits *)
  | Kernel_work of int (* spend n cycles in kernel/driver code (Sysmark) *)
  | Idle of int (* spend n cycles idle (Sysmark) *)
  | Spawn of { entry : int; stack : int; arg : int }
    (* create a guest thread: eip=entry, esp=stack, eax=arg; returns tid *)
  | Join of int (* wait for thread tid to exit; returns its exit code *)
  | Yield (* voluntarily end the current quantum *)
  | Futex_wait of { addr : int; expected : int }
    (* block while mem32[addr] = expected (EAGAIN when it already isn't) *)
  | Futex_wake of { addr : int; count : int }
    (* wake up to count FIFO waiters on addr; returns number woken *)
  | Accept
    (* accept the request bound to this Vos instance; returns the number
       of not-yet-received request bytes, EAGAIN when none is bound *)
  | Recv of { buf : int; len : int }
    (* copy up to len request bytes to guest memory; returns the count
       transferred, 0 once the request is fully consumed *)
  | Send of { buf : int; len : int }
    (* append len guest bytes to the response channel; returns len *)
  | Unknown of int

(* [Block] parks the calling thread: the scheduler must pick another
   runnable thread (or declare deadlock). Only thread services return it. *)
type result = Ret of int | Exited of int | Block

let pp ppf = function
  | Exit n -> Fmt.pf ppf "exit(%d)" n
  | Write { buf; len } -> Fmt.pf ppf "write(0x%x, %d)" buf len
  | Sbrk n -> Fmt.pf ppf "sbrk(%d)" n
  | Map { addr; len } -> Fmt.pf ppf "map(0x%x, %d)" addr len
  | Unmap { addr; len } -> Fmt.pf ppf "unmap(0x%x, %d)" addr len
  | Signal { vector; handler } -> Fmt.pf ppf "signal(%d, 0x%x)" vector handler
  | Getclock -> Fmt.string ppf "getclock()"
  | Kernel_work n -> Fmt.pf ppf "kernel_work(%d)" n
  | Idle n -> Fmt.pf ppf "idle(%d)" n
  | Spawn { entry; stack; arg } ->
    Fmt.pf ppf "spawn(0x%x, 0x%x, %d)" entry stack arg
  | Join tid -> Fmt.pf ppf "join(%d)" tid
  | Yield -> Fmt.string ppf "yield()"
  | Futex_wait { addr; expected } ->
    Fmt.pf ppf "futex_wait(0x%x, %d)" addr expected
  | Futex_wake { addr; count } -> Fmt.pf ppf "futex_wake(0x%x, %d)" addr count
  | Accept -> Fmt.string ppf "accept()"
  | Recv { buf; len } -> Fmt.pf ppf "recv(0x%x, %d)" buf len
  | Send { buf; len } -> Fmt.pf ppf "send(0x%x, %d)" buf len
  | Unknown n -> Fmt.pf ppf "unknown(%d)" n

let pp_result ppf = function
  | Ret n -> Fmt.pf ppf "ret(0x%x)" n
  | Exited n -> Fmt.pf ppf "exited(%d)" n
  | Block -> Fmt.string ppf "block"
