(* BTLib for the simulated Linux host: int 0x80, call number in EAX,
   arguments in EBX/ECX/EDX, result in EAX (negative errno on failure). *)

open Ia32

let name = "linuxsim"
let version = { Btos.major = 2; minor = 5 }
let syscall_vector = 0x80

let decode_syscall (st : State.t) =
  let eax = State.get32 st Insn.Eax in
  let ebx = State.get32 st Insn.Ebx in
  let ecx = State.get32 st Insn.Ecx in
  let edx = State.get32 st Insn.Edx in
  match eax with
  | 1 -> Syscall.Exit ebx
  | 4 -> Syscall.Write { buf = ecx; len = edx } (* fd in ebx ignored *)
  | 7 -> Syscall.Join ebx (* waitpid-flavoured: pid in ebx *)
  | 13 -> Syscall.Getclock
  | 45 -> Syscall.Sbrk (Word.signed32 ebx)
  | 48 -> Syscall.Signal { vector = ebx; handler = ecx }
  | 90 -> Syscall.Map { addr = ebx; len = ecx }
  | 91 -> Syscall.Unmap { addr = ebx; len = ecx }
  | 102 ->
    (* socketcall-flavoured: op in ebx (1 = accept, 2 = recv, 3 = send),
       buffer in ecx, length in edx *)
    (match ebx with
    | 1 -> Syscall.Accept
    | 2 -> Syscall.Recv { buf = ecx; len = edx }
    | 3 -> Syscall.Send { buf = ecx; len = edx }
    | _ -> Syscall.Unknown eax)
  | 120 -> Syscall.Spawn { entry = ebx; stack = ecx; arg = edx }
    (* clone-flavoured: thread entry in ebx, new stack in ecx, arg in edx *)
  | 158 -> Syscall.Idle ebx
  | 159 -> Syscall.Yield
  | 200 -> Syscall.Kernel_work ebx
  | 240 ->
    (* futex-flavoured: uaddr in ebx, op in ecx (0 = wait, 1 = wake),
       val in edx *)
    (match ecx with
    | 0 -> Syscall.Futex_wait { addr = ebx; expected = edx }
    | 1 -> Syscall.Futex_wake { addr = ebx; count = edx }
    | _ -> Syscall.Unknown eax)
  | n -> Syscall.Unknown n

let encode_result (st : State.t) v = State.set32 st Insn.Eax v

(* Linux-flavoured allocation: a simple bump arena high in the 64-bit space
   (the value is only used for bookkeeping/statistics). The cursor lives in
   the Vos instance, not at module level, so concurrent guests in one
   process each get an independent, deterministic address stream. *)
let arena_base = 0x2000000000

let alloc_region (vos : Vos.t) ~len =
  if vos.Vos.region_next = 0 then vos.Vos.region_next <- arena_base;
  let base = vos.Vos.region_next in
  vos.Vos.region_next <- base + ((len + 0xFFF) land lnot 0xFFF);
  base

let perform = Vos.perform
let deliver_exception = Vos.deliver_exception
