(** The virtual native OS.

    Owns the guest process's address space and provides the services both
    execution vehicles (reference interpreter and IA-32 EL) request:
    memory, system calls, exception delivery to guest handlers, and the
    kernel/idle accounting buckets the Sysmark analysis needs. *)

(** Outcome of delivering an exception to the guest. *)
type exception_outcome =
  | Resumed  (** a guest handler was entered; resume at [st.eip] *)
  | Unhandled of Ia32.Fault.t

type t = {
  mem : Ia32.Memory.t;
  mutable brk : int;
  heap_base : int;
  heap_limit : int;
  handlers : (int, int) Hashtbl.t;  (** exception vector -> handler *)
  output : Buffer.t;
  mutable exit_code : int option;
  mutable kernel_cycles : int;  (** native kernel/driver time *)
  mutable idle_cycles : int;
  mutable syscalls : int;
  mutable exceptions_delivered : int;
  mutable clock : int -> int;
      (** virtual cycle source, installed by the harness *)
  mutable transient_fault : (Syscall.call -> bool) option;
      (** transient-failure injection hook, consulted once per attempt;
          [true] fails that attempt and the OS retries after a backoff
          (bounded; guest-transparent — only kernel time moves) *)
  mutable transient_retries : int;
      (** attempts that failed transiently and were retried *)
  mutable trace : Obs.Trace.t option;
      (** when set, syscall entry/exit events are emitted here; recording
          only — service behavior and accounting are unaffected *)
}

val heap_base_default : int
val heap_limit_default : int

val create : Ia32.Memory.t -> t

val output : t -> string
(** Console output written by the guest so far. *)

val perform : t -> Ia32.State.t -> Syscall.call -> Syscall.result
(** Execute a system service against guest state. The service "runs
    natively"; the caller charges its cycle cost to the kernel bucket.

    [Write] is all-or-nothing (POSIX-ish): a page fault mid-buffer
    returns [-EFAULT] with nothing transferred. A negative [Sbrk] unmaps
    the fully freed heap pages. Injected transient failures (see
    {!t.transient_fault}) are retried with exponential backoff, at most
    {!max_transient_retries} times, then the service proceeds — the
    guest never observes them. *)

val max_transient_retries : int
val transient_backoff_cycles : int

val deliver_exception : t -> Ia32.State.t -> Ia32.Fault.t -> exception_outcome
(** Deliver an IA-32 exception whose precise state has been reconstructed
    into [st] ([st.eip] = faulting instruction). If a handler is
    registered for the vector, switches to it with the frame
    [[esp]]=fault address, [[esp+4]]=vector, [[esp+8]]=faulting EIP
    (handlers resume with [add esp,8; ret]); otherwise returns
    [Unhandled]. *)
