(** The virtual native OS.

    Owns the guest process's address space and provides the services both
    execution vehicles (reference interpreter and IA-32 EL) request:
    memory, system calls, exception delivery to guest handlers, and the
    kernel/idle accounting buckets the Sysmark analysis needs. *)

(** Outcome of delivering an exception to the guest. *)
type exception_outcome =
  | Resumed  (** a guest handler was entered; resume at [st.eip] *)
  | Unhandled of Ia32.Fault.t

(** Scheduling status of a guest thread. *)
type thread_status =
  | Runnable
  | Blocked_join of int  (** waiting for this tid to exit *)
  | Blocked_futex of int  (** waiting on this guest address *)
  | Exited_t of int  (** exited with this code, not yet reaped *)
  | Reaped

(** A guest thread: a full per-thread architectural state over the shared
    address space, plus scheduling bookkeeping. *)
type thread = {
  tid : int;
  mutable state : Ia32.State.t;
  mutable status : thread_status;
  mutable joiner : int option;  (** tid blocked in [Join] on this thread *)
  mutable wake_result : int option;  (** EAX value owed at next resume *)
  mutable t_cycles : int;  (** virtual cycles charged to this thread *)
  mutable t_syscalls : int;
}

type t = {
  mem : Ia32.Memory.t;
  mutable brk : int;
  heap_base : int;
  heap_limit : int;
  handlers : (int, int) Hashtbl.t;  (** exception vector -> handler *)
  output : Buffer.t;
  mutable exit_code : int option;
  mutable kernel_cycles : int;  (** native kernel/driver time *)
  mutable idle_cycles : int;
  mutable syscalls : int;
  mutable exceptions_delivered : int;
  mutable clock : int -> int;
      (** virtual cycle source, installed by the harness *)
  mutable transient_fault : (Syscall.call -> bool) option;
      (** transient-failure injection hook, consulted once per attempt;
          [true] fails that attempt and the OS retries after a backoff
          (bounded; guest-transparent — only kernel time moves) *)
  mutable transient_retries : int;
      (** attempts that failed transiently and were retried *)
  mutable trace : Obs.Trace.t option;
      (** when set, syscall entry/exit events are emitted here; recording
          only — service behavior and accounting are unaffected *)
  mutable futex_hist : (int -> unit) option;
      (** when set, called with the blocked duration (virtual cycles) of
          every completed futex wait, at wake time. Recording only;
          deliberately outside {!checkpoint}/{!restore} — attaching never
          perturbs snapshots or observables *)
  futex_wait_since : (int, int) Hashtbl.t;
      (** tid -> clock at block, maintained only while [futex_hist] is
          attached *)
  mutable req_data : string;
      (** request/response channel: the payload bound by the serving
          harness (see {!bind_request}) *)
  mutable req_pos : int;  (** request bytes already delivered by [Recv] *)
  mutable req_bound : bool;  (** a request is bound ([Accept] succeeds) *)
  response : Buffer.t;  (** bytes the guest appended with [Send] *)
  mutable net_recvd : int;  (** total request bytes delivered *)
  mutable net_sent : int;  (** total response bytes appended *)
  mutable region_next : int;
      (** translated-code-region arena cursor for BTLib [alloc_region];
          per-instance (0 = personality initialises it lazily from its own
          base), so many live Vos in one process never share arena state *)
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;  (** tids are dense: 0 .. next_tid-1 *)
  mutable current : int;
  mutable quantum : int;
      (** virtual cycles per scheduling slice; [<= 0] disables preemption *)
  mutable quantum_start : int;
  mutable preempt : bool;  (** set by [Yield]: reschedule at next commit *)
  mutable futex_fifo : int list;  (** tids in futex wait, oldest first *)
  mutable last_charge : int;
  mutable context_switches : int;
}

val heap_base_default : int
val heap_limit_default : int

val default_quantum : int

val create : Ia32.Memory.t -> t

val output : t -> string
(** Console output written by the guest so far. *)

(** {1 Request/response channel}

    A minimal socket-like service family for server-style guests: the
    harness binds one request payload before (or between) runs; the guest
    drains it with [Accept]/[Recv] and appends its reply with [Send].
    Entirely per-instance — concurrent Vos instances in one process never
    share channel state. *)

val bind_request : t -> string -> unit
(** Bind [payload] as the pending request and clear any previous
    response/transfer counters. [Accept] then returns the number of
    not-yet-received bytes; [Recv] delivers them in order. *)

val response : t -> string
(** Bytes the guest has appended with [Send] since the last
    {!bind_request}. *)

val request_remaining : t -> int
(** Request bytes not yet delivered by [Recv]. *)

val perform : t -> Ia32.State.t -> Syscall.call -> Syscall.result
(** Execute a system service against guest state. The service "runs
    natively"; the caller charges its cycle cost to the kernel bucket.

    [Write] is all-or-nothing (POSIX-ish): a page fault mid-buffer
    returns [-EFAULT] with nothing transferred. A negative [Sbrk] unmaps
    the fully freed heap pages. Injected transient failures (see
    {!t.transient_fault}) are retried with exponential backoff, at most
    {!max_transient_retries} times, then the service proceeds — the
    guest never observes them. *)

val max_transient_retries : int
val transient_backoff_cycles : int

(** {1 Guest threads}

    Both execution vehicles share this thread table and deterministic
    scheduler: round-robin by tid, rescheduling only at system-call
    commit points when the virtual-clock quantum has expired (or the
    thread yielded), FIFO futex queues. With at most one registered
    thread every scheduling hook is a no-op, so pre-thread programs keep
    bit-identical cycle counts. *)

val register_main : t -> Ia32.State.t -> unit
(** Register [st] as the main thread (tid 0); no-op if any thread is
    already registered. Thread services self-register lazily, so calling
    this is only required by vehicles that want the table populated
    up front. *)

val current : t -> int
(** Tid of the currently scheduled thread. *)

val thread_count : t -> int
val find_thread : t -> int -> thread option

val thread_state : t -> int -> Ia32.State.t
(** @raise Invalid_argument on an unknown tid. *)

val set_current : t -> int -> unit
(** Force the current tid without scheduling — used by lockstep to slave
    the reference vehicle's thread selection to the engine's commit
    stream. *)

val take_wake : thread -> int option
(** Consume the pending wake value (to be encoded as the thread's syscall
    result when it next resumes). *)

val park : t -> Ia32.State.t -> unit
(** Save [st] as the current thread's parked state. *)

val charge_current : t -> now:int -> unit
(** Charge virtual cycles since the last charge point to the current
    thread (recording only). *)

val need_resched : t -> now:int -> bool
(** True when the current thread's quantum has expired or it yielded.
    Always false with fewer than two threads. *)

type schedule = Run of thread | Deadlock

val reschedule : t -> now:int -> schedule
(** Pick the next runnable thread round-robin (the current thread keeps
    running only if no other is runnable); [Deadlock] when every thread
    is blocked. *)

val deliver_exception : t -> Ia32.State.t -> Ia32.Fault.t -> exception_outcome
(** Deliver an IA-32 exception whose precise state has been reconstructed
    into [st] ([st.eip] = faulting instruction). If a handler is
    registered for the vector, switches to it with the frame
    [[esp]]=fault address, [[esp+4]]=vector, [[esp+8]]=faulting EIP
    (handlers resume with [add esp,8; ret]); otherwise returns
    [Unhandled]. *)

(** {1 Checkpoint / restore}

    OS-level snapshot support: captures kernel scalars, the handler
    table, console-output length and the full thread table (scheduling
    fields plus deep copies of each thread's architectural state).
    Guest memory is journalled separately ([Ia32.Memory.Journal]); the
    snapshot layer above rewinds both together.

    [restore] works in place: thread records keep their identity and
    each gets back the state {e object} it held at capture time with the
    captured values blitted in, so external references (the state the
    harness passed to the engine) stay valid. Threads spawned after the
    capture are dropped. The [clock], [transient_fault] and [trace]
    hooks are left untouched — they are harness wiring, not guest
    state. *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit
