(** The OS-independent view of an IA-32 system service.

    Guest programs issue services through an OS-specific
    software-interrupt convention; the BTLib implementations
    ({!Linuxsim}, {!Winsim}) translate the guest's register convention
    into this type and back, so the translator core never sees OS
    details. *)

type call =
  | Exit of int
  | Write of { buf : int; len : int }  (** write bytes to the console *)
  | Sbrk of int  (** grow the heap; returns the old break *)
  | Map of { addr : int; len : int }  (** map anonymous rw memory *)
  | Unmap of { addr : int; len : int }
  | Signal of { vector : int; handler : int }
      (** register a guest exception handler (0 unregisters) *)
  | Getclock  (** virtual cycle counter, low 32 bits *)
  | Kernel_work of int  (** spend n cycles in kernel/driver code *)
  | Idle of int  (** spend n cycles idle (Sysmark think time) *)
  | Spawn of { entry : int; stack : int; arg : int }
      (** create a guest thread with eip=[entry], esp=[stack], eax=[arg];
          returns the new tid *)
  | Join of int  (** wait for a thread to exit; returns its exit code *)
  | Yield  (** voluntarily end the current scheduling quantum *)
  | Futex_wait of { addr : int; expected : int }
      (** block while [mem32\[addr\] = expected]; [-EAGAIN] when the word
          already differs *)
  | Futex_wake of { addr : int; count : int }
      (** wake up to [count] FIFO waiters on [addr]; returns the number
          woken *)
  | Accept
      (** accept the request bound to this Vos instance (the socket-like
          request/response channel the serving harness feeds); returns
          the number of not-yet-received request bytes, [-EAGAIN] when no
          request is bound *)
  | Recv of { buf : int; len : int }
      (** copy up to [len] request bytes into guest memory at [buf];
          returns the count transferred (0 once the request is fully
          consumed), [-EFAULT] with nothing transferred on a page fault *)
  | Send of { buf : int; len : int }
      (** append [len] guest bytes to the response channel; returns
          [len], or [-EFAULT] with nothing appended on a page fault *)
  | Unknown of int

type result =
  | Ret of int
  | Exited of int
  | Block
      (** the calling thread is parked; the scheduler must run another
          runnable thread (or declare deadlock). Only thread services
          return this. *)

val pp : Format.formatter -> call -> unit
val pp_result : Format.formatter -> result -> unit
