(** Translator configuration.

    Every paper-relevant design choice is a switch here so the ablation
    benches ([bench/main.exe ablations]) can turn it off and measure the
    difference, and so the baseline models ({!Workloads.Baselines}) can
    derive their configurations from the translator's own. *)

(** How first-phase (not-yet-hot) code runs. *)
type first_phase =
  | Instrumented_cold
      (** the paper's design: translate cold code with instrumentation *)
  | Interpret_first
      (** the FX!32-style alternative: interpret until hot *)

type t = {
  two_phase : bool;  (** false = cold-only translator *)
  first_phase : first_phase;
  heat_threshold : int;
      (** cold-block executions before the block registers as an
          optimization candidate *)
  session_candidates : int;
      (** registrations that trigger a hot-translation session *)
  max_trace_blocks : int;  (** hyper-block length limit, in basic blocks *)
  max_trace_insns : int;
  enable_predication : bool;  (** if-convert small diamonds *)
  predication_max_side : int;  (** max IA-32 insns per if-converted side *)
  enable_unroll : bool;
  unroll_factor : int;
  unroll_max_insns : int;  (** only unroll loop bodies up to this size *)
  neighborhood_blocks : int;
      (** basic blocks analysed around a cold entry for EFLAGS liveness *)
  tcache_limit : int;
      (** bundles before the translation cache is flushed wholesale (the
          paper's fixed-size cache, flushed when full) *)
  commit_interval : int;  (** target IA-32 insns per hot commit point *)
  enable_commit : bool;
      (** false = no precise-state machinery in hot code (used by the
          native-compiler model, which has no translation-time faults to
          reconstruct) *)
  flags_preserved_at_exit : bool;
      (** false = EFLAGS need not be live at block exits (native model) *)
  fp_stack_speculation : bool;  (** block-head TOS/TAG checks (§4.3) *)
  mmx_mode_speculation : bool;  (** FP/MMX staleness checks (§4.4) *)
  sse_format_speculation : bool;  (** XMM format checks *)
  misalign_avoidance : bool;  (** the 3-stage machinery (§4.5) *)
  misalign_stage3_guard : bool;
      (** light instrumentation on dangerous accesses in hot code *)
  enable_scheduling : bool;
      (** false = emit hot IL in order, cold-style *)
  enable_control_spec : bool;
      (** hoist loads above exit branches with [ld.s]/[chk.s]; a deferred
          fault that never reaches its check is filtered (§4.2) *)
  enable_flag_elim : bool;
      (** EFLAGS liveness elimination + compare/branch fusion *)
  enable_cse : bool;  (** effective-address CSE in hot code *)
  retrans_avoid_limit : int;
      (** per-entry invalidation-driven retranslations before the entry is
          escalated to full (stage-2 + stage-3) avoidance *)
  retrans_interp_limit : int;
      (** per-entry retranslations before the entry goes interpret-only
          (the last rung of the graceful-degradation ladder) *)
  smc_storm_window : int;
      (** dispatch-count window for SMC-storm detection *)
  smc_storm_limit : int;
      (** SMC invalidation events on one source page within the window
          before the whole page is degraded to interpretation *)
  enable_predecode : bool;
      (** run translated code through the pre-decoded direct-threaded core
          ({!Ipf.Exec}) instead of the interpretive [Machine.run] loop;
          bit-identical results, purely a host-speed switch *)
  enable_decode_cache : bool;
      (** cache decoded IA-32 instructions per (eip, page generation) in
          the reference interpreter *)
  enable_hot_counters : bool;
      (** detect heat with single-slot saturating counter uops over a
          hash-indexed machine-owned table instead of the original
          load/add/store instrumentation stubs. A policy switch: the
          instrumentation gets cheaper, so virtual cycles change.
          [false] = the original stub path (escape hatch) *)
  enable_fusion : bool;
      (** fuse recurring uop pairs into single pre-decoded macro-ops in
          {!Ipf.Exec} with one dispatch each; accounting is replayed
          pair-exactly, so this is a pure host-speed switch like
          [enable_predecode] *)
  quantum : int;
      (** virtual cycles per guest-thread scheduling slice; rescheduling
          happens only at syscall commit points, so preemption is
          deterministic. [<= 0] disables preemption (threads run until
          they block or yield) *)
}

val default : t
(** The paper's two-phase design with its production thresholds. *)

val cold_only : t
(** No second phase at all (baseline for the two-phase ablation). *)
