(* Reference execution vehicle: runs a guest directly on the golden-model
   interpreter with system services through the same BTLib/Vos stack the
   translator uses. Used for differential testing of IA-32 EL and as the
   semantic engine of the baseline performance models. *)

type outcome =
  | Exited of int * Ia32.State.t
  | Unhandled_fault of Ia32.Fault.t * Ia32.State.t
  | Out_of_fuel

(* Run until exit / unhandled fault / fuel. Returns the outcome and the
   number of retired IA-32 instructions. Multithreaded guests use the
   same deterministic Vos scheduler as the engine; thread states live in
   the Vos table and the interpreter mutates them in place, so switching
   is just following the [cur] pointer. *)
let run ?(fuel = max_int) ~btlib vos (st : Ia32.State.t) =
  let module L = (val btlib : Btlib.Btos.S) in
  Btlib.Vos.register_main vos st;
  let cur = ref st in
  let steps = ref 0 in
  let now () = vos.Btlib.Vos.clock 0 in
  let rec go () =
    let st = !cur in
    if !steps >= fuel then Out_of_fuel
    else
      match Ia32.Interp.step st with
      | Ia32.Interp.Normal ->
        incr steps;
        go ()
      | Ia32.Interp.Syscall n ->
        incr steps;
        if n <> L.syscall_vector then deliver Ia32.Fault.Breakpoint
        else begin
          let call = L.decode_syscall st in
          match L.perform vos st call with
          | Btlib.Syscall.Exited code -> Exited (code, st)
          | Btlib.Syscall.Ret v ->
            L.encode_result st v;
            if Btlib.Vos.need_resched vos ~now:(now ()) then resched ()
            else go ()
          | Btlib.Syscall.Block -> resched ()
        end
      | Ia32.Interp.Faulted f -> deliver f
  and resched () =
    match Btlib.Vos.reschedule vos ~now:(now ()) with
    | Btlib.Vos.Run th ->
      cur := th.Btlib.Vos.state;
      (match Btlib.Vos.take_wake th with
      | Some v -> L.encode_result th.Btlib.Vos.state v
      | None -> ());
      go ()
    | Btlib.Vos.Deadlock ->
      Bt_error.fail ~component:"refvehicle" "deadlock: all guest threads blocked"
  and deliver f =
    let st = !cur in
    match L.deliver_exception vos st f with
    | Btlib.Vos.Resumed -> go ()
    | Btlib.Vos.Unhandled fault -> Unhandled_fault (fault, st)
  in
  let outcome = go () in
  (outcome, !steps)
