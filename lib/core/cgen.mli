(** Code-generation buffer: collects IPF instructions in groups (stop-bit
    boundaries) with local labels, then lowers them into bundles appended
    to the translation cache.

    Local branch targets become bundle indices; a label always starts a
    fresh bundle because branch targets are bundle-aligned. Each
    instruction carries a tag (the hot phase's commit-region id) that
    lowering propagates to bundles so the engine can map a faulting
    bundle back to its commit region. *)

type item =
  | I of Ipf.Insn.t * int  (** instruction, tag (-1 = none) *)
  | Stop  (** close the current instruction group *)
  | Lbl of int  (** local label id *)

type seq = Nil | One of item | Cat of seq * seq
(** Catenation tree in reversed program order: O(1) {!emit} and O(1)
    {!prepend}, flattened once at {!lower}. *)

type t = {
  mutable items : seq;  (** reversed *)
  mutable next_label : int;
  mutable ninsns : int;
}

val create : unit -> t
val new_label : t -> int

val emit : ?tag:int -> t -> Ipf.Insn.t -> unit
val stop : t -> unit
val bind : t -> int -> unit

val length : t -> int
(** Instructions emitted so far. *)

val prepend : t -> t -> unit
(** [prepend t head] puts [head]'s items before [t]'s (block-head checks
    in front of an already generated body) in O(1); [length] counts both
    buffers afterwards. *)

val local : int -> Ipf.Insn.target
(** Branch-target placeholder for a local label, encoded as
    [To (-1 - l)] during generation and fixed up at lowering. *)

val lower : t -> Ipf.Tcache.t -> int * int * int array
(** Pack into bundles appended to the cache: a bundle never spans a Stop
    or a label, branches terminate their bundle, labels bind to the next
    bundle index. Returns [(first_bundle, n_bundles, bundle_tags)] where
    [bundle_tags.(k)] is the commit tag covering bundle [first + k]. *)
