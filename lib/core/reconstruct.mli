(** State reconstruction: the bridge between the machine's canonic
    register state and the architectural {!Ia32.State.t} (paper §4.2),
    plus the engine-side recovery actions for speculation misses.

    [extract] builds a precise IA-32 state from the canonic locations
    given an FP snapshot (the static x87 state at the reconstruction
    point); [inject] loads an IA-32 state back into the canonic
    locations, marking all FP/MMX views fresh. *)

val extract :
  Ipf.Machine.t -> eip:int -> snapshot:Block.fp_snapshot -> Ia32.State.t
(** Build the architectural state at [eip]. The snapshot supplies the
    static TOS/FXCHG-permutation/TAG deltas the block had applied by
    that point; staleness masks are folded in so MMX-written slots read
    from the integer view. *)

val apply_commit : Ipf.Machine.t -> Block.commit_map -> Ia32.State.t
(** Restore a hot commit point: copy every backup register into its
    canonic location, then [extract] at the commit's IA-32 address with
    its snapshot. The caller then rolls forward with the interpreter to
    the precise faulting instruction. *)

val inject : Ipf.Machine.t -> Ia32.State.t -> unit
(** Load an IA-32 state into the canonic machine locations (both FP and
    MMX views, staleness masks cleared, [r_state] set to [st.eip]). *)

(** {1 Speculation-miss recoveries} *)

val rotate_tos : Ipf.Machine.t -> expected:int -> unit
(** TOS-check miss: rotate the FP/MMX register files and status masks so
    the runtime TOS becomes the block's speculated TOS ("on TOS
    mismatch, rotate register values"). {!Regs.r_park} accumulates the
    rotation away from canonic parking. *)

val canonicalize : Ipf.Machine.t -> unit
(** Undo any outstanding parking rotation ({!Regs.r_park} back to 0), so
    every architectural x87/MMX slot sits at its canonic index and the
    runtime TOS equals the architectural top. Idempotent; called by
    [extract] and by the MMX parking-check recovery. *)

val sync_mode : Ipf.Machine.t -> to_mmx:bool -> unit
(** FP/MMX staleness-check miss: refresh the stale side (copy FP bit
    images to the MMX view, or mark MMX-written slots as NaN in the FP
    view) and clear the corresponding mask. *)

val convert_sse_formats : Ipf.Machine.t -> required:int array -> int
(** SSE format-check miss: convert each XMM register to the format the
    block requires, bit-preserving through the integer image. Returns
    how many registers were converted. *)
