(* The IA-32 EL engine (BTGeneric runtime): dispatch, block chaining, the
   heat-session trigger, system-call delegation through BTLib, SMC
   detection, misalignment handling, speculation-miss recoveries, and
   precise exception delivery with interpreter roll-forward. *)


module M = Ipf.Machine
module I = Ipf.Insn

type outcome =
  | Exited of int * Ia32.State.t (* code, final precise state *)
  | Unhandled_fault of Ia32.Fault.t * Ia32.State.t
  | Out_of_fuel

(* Commit events: the points where the engine materialises a full precise
   IA-32 state and the guest's behaviour becomes observable. The lockstep
   differential vehicle compares the engine against the reference
   interpreter exactly here. *)
type commit_event =
  | Commit_syscall of int (* the OS's syscall vector *)
  | Commit_fault of Ia32.Fault.t (* precise architectural fault *)
  | Commit_exit of int

type t = {
  config : Config.t;
  mem : Ia32.Memory.t;
  tcache : Ipf.Tcache.t;
  cache : Block.cache;
  acct : Account.t;
  machine : M.t;
  exec : Ipf.Exec.t; (* pre-decoded fast path over [machine] *)
  vos : Btlib.Vos.t;
  btlib : (module Btlib.Btos.S);
  cold_env : Cold.env;
  (* heat machinery *)
  mutable candidates : int list; (* registered cold block ids *)
  (* entries that must be (re)generated with stage-2 avoidance *)
  stage2_entries : (int, unit) Hashtbl.t;
  (* entries whose hot regeneration must use full avoidance (stage 3) *)
  avoid_entries : (int, unit) Hashtbl.t;
  (* SMC bookkeeping *)
  mutable smc_pending : Block.t list; (* invalidate at next engine entry *)
  mutable running_block : Block.t option;
  (* interpret-first mode profile *)
  if_counts : (int, int ref) Hashtbl.t;
  if_taken : (int, int ref) Hashtbl.t;
  mutable fuel : int;
  (* resilience subsystem ------------------------------------------------ *)
  (* observer called with the precise state at every commit event (the
     lockstep differential vehicle hangs off this) *)
  mutable on_commit : (commit_event -> Ia32.State.t -> unit) option;
  (* called with the target EIP at every slow-path dispatch (the chaos
     injector hangs off this; only the chaos primitives below are safe to
     call from it) *)
  mutable on_dispatch : (int -> unit) option;
  (* graceful-degradation ladder: entries/pages demoted to interpretation *)
  interp_only : (int, unit) Hashtbl.t;
  interp_only_pages : (int, unit) Hashtbl.t;
  retrans_counts : (int, int) Hashtbl.t; (* entry -> churn count *)
  smc_page_hits : (int, int * int) Hashtbl.t; (* page -> window start, hits *)
  (* snapshot / rewind ---------------------------------------------------- *)
  mutable snapshots : epoch list; (* innermost first *)
  mutable snap_next_id : int;
  mutable max_cycles : int option; (* watchdog: Bt_error past this clock *)
  mutable snap_every : int option; (* auto-snapshot every N syscall commits *)
  mutable commits_seen : int;
  (* observability ------------------------------------------------------- *)
  (* Both hooks only record — they never charge cycles or alter control
     flow, so cycle counts and Account totals are bit-identical with or
     without them attached. *)
  mutable trace : Obs.Trace.t option;
  mutable profile : Obs.Profile.t option;
  mutable sampler : Obs.Sample.t option;
  mutable hists : Obs.Hist.set option;
  mutable timers : Obs.Timers.t option;
  (* persistence ---------------------------------------------------------- *)
  (* Interposes on every translation request. [live] runs the normal
     translator (with all its side effects: arena slots, tcache append,
     registration, Account charges); a filter may instead install an
     equivalent block from a persistent store — but must leave behaviour
     indistinguishable from [live], observables included. [flag] is the
     stage2 marker for cold requests and the avoid marker for hot ones. *)
  mutable translate_filter :
    (phase:Obs.Trace.phase ->
    entry:int ->
    entry_tos:int ->
    flag:bool ->
    live:(unit -> Block.t option) ->
    Block.t option)
    option;
}

(* Everything the engine must rewind besides guest memory (which the page
   journal handles): accounting, the machine's registers and timing state,
   the dcache model, the OS checkpoint, and the guest-address-keyed policy
   tables. Captured eagerly — all of it is small and flat next to the
   address space. *)
and epoch = {
  e_id : int;
  e_barrier : bool;
  e_acct : Account.t;
  e_stats : M.stats;
  e_buckets : int array;
  e_gr : int64 array;
  e_nat : bool array;
  e_fr : float array;
  e_fnat : bool array;
  e_pr : bool array;
  e_br : int array;
  e_ready : int array;
  e_fready : int array;
  e_hotc : int array;
  e_edgec : int array;
  e_alat : (int, int * int) Hashtbl.t;
  e_ip : int;
  e_slot : int;
  e_last_exit : int * int;
  e_dcache : Ipf.Dcache.checkpoint;
  e_vos : Btlib.Vos.checkpoint;
  e_watched : int list;
  e_candidates : int list;
  e_stage2 : (int, unit) Hashtbl.t;
  e_avoid : (int, unit) Hashtbl.t;
  e_interp_only : (int, unit) Hashtbl.t;
  e_interp_only_pages : (int, unit) Hashtbl.t;
  e_retrans : (int, int) Hashtbl.t;
  e_smc_hits : (int, int * int) Hashtbl.t;
  e_if_counts : (int, int ref) Hashtbl.t;
  e_if_taken : (int, int ref) Hashtbl.t;
  e_fuel : int;
  e_trace_index : int; (* absolute trace-stream index at the push *)
}

exception Smc_abort

let charge_overhead t c = t.acct.Account.overhead_cycles <- t.acct.Account.overhead_cycles + c
let charge_other t c = t.acct.Account.other_cycles <- t.acct.Account.other_cycles + c

let cost t = t.machine.M.cost

(* total virtual time, for the Getclock syscall *)
let now t =
  t.machine.M.stats.M.cycles + t.acct.Account.overhead_cycles
  + t.acct.Account.other_cycles + t.acct.Account.idle_cycles

(* ---- graceful degradation ---------------------------------------------- *)

(* The degradation ladder bounds how much retranslation churn one entry or
   source page can cause: stage-2 avoidance -> stage-3 avoidance ->
   interpret-only. Under an SMC (or injected invalidation) storm the engine
   loses throughput but keeps making forward progress instead of
   retranslating the same code forever. *)

let interp_only_at t eip =
  Hashtbl.mem t.interp_only eip
  || Hashtbl.mem t.interp_only_pages (eip lsr Ia32.Memory.page_bits)

(* Last rung: stop translating [entry] at all; the dispatcher interprets
   it from now on. *)
let blacklist_entry t entry =
  if not (Hashtbl.mem t.interp_only entry) then begin
    Hashtbl.replace t.interp_only entry ();
    t.acct.Account.degrade_interp_entries <-
      t.acct.Account.degrade_interp_entries + 1;
    (match t.trace with
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Trace.Degrade { kind = "interp_entry"; key = entry })
    | None -> ());
    match Block.find_entry t.cache entry with
    | Some b -> Block.invalidate t.cache t.tcache b
    | None -> ()
  end

(* Count an invalidation-driven retranslation of [entry] and escalate:
   beyond [retrans_avoid_limit] the entry is regenerated with full
   misalignment avoidance (the conservative translation), beyond
   [retrans_interp_limit] it goes interpret-only. *)
let note_retranslation t entry =
  let n =
    1
    + (match Hashtbl.find_opt t.retrans_counts entry with
      | Some n -> n
      | None -> 0)
  in
  Hashtbl.replace t.retrans_counts entry n;
  if n >= t.config.Config.retrans_interp_limit then blacklist_entry t entry
  else if n >= t.config.Config.retrans_avoid_limit then begin
    Hashtbl.replace t.stage2_entries entry ();
    Hashtbl.replace t.avoid_entries entry ()
  end

(* Degrade a whole source page to interpretation: invalidate every live
   block on it, deferring the currently running block to [smc_pending]
   exactly like a direct self-modification. Returns true when the running
   block was deferred, i.e. a caller inside translated code must abort the
   machine. *)
let degrade_page_to_interp t page =
  if Hashtbl.mem t.interp_only_pages page then false
  else begin
    Hashtbl.replace t.interp_only_pages page ();
    t.acct.Account.degrade_smc_storms <- t.acct.Account.degrade_smc_storms + 1;
    (match t.trace with
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Trace.Degrade { kind = "smc_storm_page"; key = page })
    | None -> ());
    let self = ref false in
    List.iter
      (fun b ->
        match t.running_block with
        | Some cur when cur.Block.id = b.Block.id ->
          b.Block.live <- false;
          t.smc_pending <- b :: t.smc_pending;
          self := true
        | _ -> Block.invalidate t.cache t.tcache b)
      (Block.live_blocks_on_page t.cache page);
    !self
  end

(* SMC-storm detection: count invalidation events per source page within a
   dispatch window; a page that keeps invalidating is degraded wholesale.
   Returns true when the running block had to be deferred. *)
let note_smc_invalidation t page =
  let here = t.acct.Account.dispatches in
  let start, count =
    match Hashtbl.find_opt t.smc_page_hits page with
    | Some (start, count) when here - start <= t.config.Config.smc_storm_window
      ->
      (start, count + 1)
    | _ -> (here, 1)
  in
  Hashtbl.replace t.smc_page_hits page (start, count);
  if count >= t.config.Config.smc_storm_limit then degrade_page_to_interp t page
  else false

let create ?(config = Config.default) ?cost:(mcost = Ipf.Cost.default) ?dcache
    ~btlib mem =
  let module L = (val btlib : Btlib.Btos.S) in
  (* load-time version handshake between BTGeneric and BTLib (paper §3) *)
  let btlib = Btlib.Btos.init (module L) in
  let tcache = Ipf.Tcache.create () in
  let cache = Block.create_cache () in
  let acct = Account.create () in
  let machine = M.create ~cost:mcost ?dcache mem tcache in
  let vos = Btlib.Vos.create mem in
  (* map the profile arena *)
  Ia32.Memory.map mem ~addr:Block.arena_base ~len:Block.arena_size
    ~prot:Ia32.Memory.prot_rw;
  let t =
    {
      config;
      mem;
      tcache;
      cache;
      acct;
      machine;
      exec = Ipf.Exec.create machine;
      vos;
      btlib;
      cold_env = { Cold.config; tcache; cache; mem; acct };
      candidates = [];
      stage2_entries = Hashtbl.create 16;
      avoid_entries = Hashtbl.create 16;
      smc_pending = [];
      running_block = None;
      if_counts = Hashtbl.create 64;
      if_taken = Hashtbl.create 64;
      fuel = max_int;
      on_commit = None;
      on_dispatch = None;
      interp_only = Hashtbl.create 16;
      interp_only_pages = Hashtbl.create 8;
      retrans_counts = Hashtbl.create 16;
      smc_page_hits = Hashtbl.create 16;
      snapshots = [];
      snap_next_id = 0;
      max_cycles = None;
      snap_every = None;
      commits_seen = 0;
      trace = None;
      profile = None;
      sampler = None;
      hists = None;
      timers = None;
      translate_filter = None;
    }
  in
  Ipf.Exec.set_fusion t.exec config.Config.enable_fusion;
  (* Profile-arena traffic is translator instrumentation, not guest
     memory: keep it out of the dcache model so a block's cycles do not
     depend on which arena slots it was handed (required for installing
     persisted blocks at their recorded addresses in any order). *)
  machine.M.dc_skip_lo <- Block.arena_base;
  machine.M.dc_skip_hi <- Block.arena_base + Block.arena_size;
  vos.Btlib.Vos.clock <- (fun _ -> now t);
  vos.Btlib.Vos.quantum <- config.Config.quantum;
  (* bucket attribution: cold vs hot cycles. Charged once per issue
     group, so the hash lookup is memoized per bundle index and the memo
     dropped whenever the bundle->block table changes ([owner_gen]). A
     block's [kind] is immutable after registration, so a memoized answer
     can only go stale through (re)registration — never in place. *)
  let bucket_memo = ref [||] in
  let bucket_gen = ref (-1) in
  machine.M.bucket_fn <-
    (fun bundle ->
      if !bucket_gen <> cache.Block.owner_gen then begin
        bucket_gen := cache.Block.owner_gen;
        Array.fill !bucket_memo 0 (Array.length !bucket_memo) (-1)
      end;
      if bundle >= Array.length !bucket_memo then begin
        let grown = Array.make (max 1024 (2 * (bundle + 1))) (-1) in
        Array.blit !bucket_memo 0 grown 0 (Array.length !bucket_memo);
        bucket_memo := grown
      end;
      let memo = !bucket_memo in
      let v = Array.unsafe_get memo bundle in
      if v >= 0 then v
      else begin
        let b =
          match Block.find_by_bundle cache bundle with
          | Some b when b.Block.kind = Block.Hot -> Account.bucket_hot
          | _ -> Account.bucket_cold
        in
        Array.unsafe_set memo bundle b;
        b
      end);
  (* SMC detection: watch writes to translated-from pages *)
  Ia32.Memory.set_write_watch mem
    (Some
       (fun addr _w ->
         let victims = Block.blocks_touching cache addr in
         if victims <> [] then begin
           t.acct.Account.smc_invalidations <-
             t.acct.Account.smc_invalidations + List.length victims;
           (match t.trace with
           | Some tr ->
             Obs.Trace.emit tr
               (Obs.Trace.Smc_invalidation
                  { addr; victims = List.length victims })
           | None -> ());
           let self = ref false in
           List.iter
             (fun b ->
               note_retranslation t b.Block.entry;
               match t.running_block with
               | Some cur when cur.Block.id = b.Block.id ->
                 (* the executing block modified itself: abort the machine
                    and restart from the precise state *)
                 b.Block.live <- false;
                 t.smc_pending <- b :: t.smc_pending;
                 self := true
               | _ -> Block.invalidate cache tcache b)
             victims;
           (* storm bookkeeping may additionally defer the running block
              (page degraded under our feet) — abort in that case too *)
           let stormed =
             note_smc_invalidation t (addr lsr Ia32.Memory.page_bits)
           in
           if !self || stormed then raise Smc_abort
         end));
  t

let flush_smc_pending t =
  List.iter (fun b ->
      Block.invalidate t.cache t.tcache b) t.smc_pending;
  t.smc_pending <- []

(* ---- translation ------------------------------------------------------- *)

let hot_profile t =
  let m = t.machine in
  let hc = t.config.Config.enable_hot_counters in
  {
    Hot.use_count =
      (fun entry ->
        match Block.find_entry t.cache entry with
        | Some b ->
          if hc then m.M.hotc.(M.counter_slot entry)
          else Ia32.Memory.read32 t.mem b.Block.ctr_addr
        | None -> (
          match Hashtbl.find_opt t.if_counts entry with
          | Some r -> !r
          | None -> 0));
    Hot.taken_count =
      (fun entry ->
        match Block.find_entry t.cache entry with
        | Some b ->
          if hc then m.M.edgec.(M.counter_slot entry)
          else Ia32.Memory.read32 t.mem b.Block.edge_addr
        | None -> (
          match Hashtbl.find_opt t.if_taken entry with
          | Some r -> !r
          | None -> 0));
    Hot.misaligned =
      (fun entry idx ->
        Hashtbl.mem t.avoid_entries entry
        ||
        match Block.find_entry t.cache entry with
        | Some b when idx < b.Block.n_accesses ->
          Ia32.Memory.read32 t.mem (b.Block.ma_base + (4 * idx)) <> 0
        | _ -> false);
  }

(* Wholesale translation-cache flush (paper §2: the translation cache is
   a fixed-size resource; when it fills, everything is dropped and
   retranslation starts over). Bundle indices embedded anywhere become
   invalid, so every block structure, chain, candidate and profile slot
   goes with it. Guest-address-keyed policy knowledge (stage-2/stage-3
   misalignment entries, interpret-first counts) survives. *)
let flush_translations t =
  t.acct.Account.cache_flushes <- t.acct.Account.cache_flushes + 1;
  (* zero the recycled profile arena so stale counters cannot heat fresh
     blocks instantly *)
  let used = Block.arena_high t.cache - Block.arena_base in
  for k = 0 to (used / 4) - 1 do
    Ia32.Memory.write32 t.mem (Block.arena_base + (4 * k)) 0
  done;
  let m = t.machine in
  Array.fill m.M.hotc 0 (Array.length m.M.hotc) 0;
  Array.fill m.M.edgec 0 (Array.length m.M.edgec) 0;
  Hashtbl.reset t.cache.Block.by_entry;
  Hashtbl.reset t.cache.Block.by_id;
  Hashtbl.reset t.cache.Block.bundle_owner;
  t.cache.Block.owner_gen <- t.cache.Block.owner_gen + 1;
  Hashtbl.reset t.cache.Block.by_page;
  t.cache.Block.arena_next <- Block.arena_base;
  t.cache.Block.pins <- [];
  Ipf.Tcache.clear t.tcache;
  t.candidates <- [];
  t.smc_pending <- [];
  t.running_block <- None

(* ---- snapshot / revert --------------------------------------------------

   A snapshot epoch layers the Memory page journal (O(pages touched)
   copy-on-write with revert that preserves decode-cache warmth) with an
   eager capture of everything else the translator accumulated: Account
   counters, the machine's registers, timing arrays and dcache model, the
   OS checkpoint (thread table, futex queues, brk, output) and the
   guest-address-keyed policy tables.

   Two flavours:

   - [barrier:true] flushes the translation cache first, so the original
     run continues cold from the snapshot point exactly as a later replay
     will — the post-snapshot execution is bit-identical between them
     (the crash-capsule property). Revert flushes again and restores.

   - [barrier:false] keeps translations warm: revert invalidates only
     blocks whose source pages the epoch touched, so a fork-server
     re-running data-only mutations keeps its translated code across
     thousands of runs. Timing is still deterministic per input (all
     counters, the dcache and the ALAT are restored), just not comparable
     to a cold run.

   Only legal at engine rest: before [run], or after it returned. *)

(* Host-side timing for snapshot/revert: wall span into the Snapshot
   phase timer, per-op host microseconds into the snapshot_cost
   histogram. One match when detached; never touches virtual time. *)
let timed_snapshot_op t f =
  match (t.timers, t.hists) with
  | None, None -> f ()
  | timers, hists ->
    let t0 = Sys.time () in
    let r = f () in
    let dt = Sys.time () -. t0 in
    (match timers with
    | Some tm -> Obs.Timers.add tm Obs.Timers.Snapshot dt
    | None -> ());
    (match hists with
    | Some h -> Obs.Hist.record h.Obs.Hist.snapshot_cost (int_of_float (dt *. 1e6))
    | None -> ());
    r

let snapshot_impl ~barrier t =
  flush_smc_pending t;
  t.running_block <- None;
  if barrier then flush_translations t;
  (* journal AFTER the flush so its arena zeroing is base state, not a
     journaled change *)
  Ia32.Memory.Journal.push t.mem;
  let m = t.machine in
  let copy_refs h = Hashtbl.fold (fun k r acc -> Hashtbl.replace acc k (ref !r); acc)
      h (Hashtbl.create (Hashtbl.length h)) in
  let id = t.snap_next_id in
  t.snap_next_id <- id + 1;
  let trace_index =
    match t.trace with Some tr -> Obs.Trace.absolute_index tr | None -> 0
  in
  let e =
    {
      e_id = id;
      e_barrier = barrier;
      e_acct = Account.copy t.acct;
      e_stats = { m.M.stats with M.cycles = m.M.stats.M.cycles };
      e_buckets = Array.copy m.M.buckets;
      e_gr =
        (let n = Bigarray.Array1.dim m.M.gr in
         Array.init n (fun i -> Bigarray.Array1.get m.M.gr i));
      e_nat = Array.copy m.M.nat;
      e_fr = Array.copy m.M.fr;
      e_fnat = Array.copy m.M.fnat;
      e_pr = Array.copy m.M.pr;
      e_br = Array.copy m.M.br;
      e_ready = Array.copy m.M.ready;
      e_fready = Array.copy m.M.fready;
      e_hotc = Array.copy m.M.hotc;
      e_edgec = Array.copy m.M.edgec;
      e_alat = Hashtbl.copy m.M.alat;
      e_ip = m.M.ip;
      e_slot = m.M.slot;
      e_last_exit = m.M.last_exit;
      e_dcache = Ipf.Dcache.checkpoint m.M.dcache;
      e_vos = Btlib.Vos.checkpoint t.vos;
      e_watched = Ia32.Memory.watched_pages t.mem;
      e_candidates = t.candidates;
      e_stage2 = Hashtbl.copy t.stage2_entries;
      e_avoid = Hashtbl.copy t.avoid_entries;
      e_interp_only = Hashtbl.copy t.interp_only;
      e_interp_only_pages = Hashtbl.copy t.interp_only_pages;
      e_retrans = Hashtbl.copy t.retrans_counts;
      e_smc_hits = Hashtbl.copy t.smc_page_hits;
      e_if_counts = copy_refs t.if_counts;
      e_if_taken = copy_refs t.if_taken;
      e_fuel = t.fuel;
      e_trace_index = trace_index;
    }
  in
  t.snapshots <- e :: t.snapshots;
  (match t.trace with
  | Some tr ->
    Obs.Trace.emit tr (Obs.Trace.Snapshot { epoch = id; event_index = trace_index })
  | None -> ());
  id

let snapshot ?(barrier = false) t =
  timed_snapshot_op t (fun () -> snapshot_impl ~barrier t)

let snapshot_depth t = List.length t.snapshots
let pages_restored t = Ia32.Memory.Journal.pages_restored t.mem
let epoch_id e = e.e_id
let epoch_trace_index e = e.e_trace_index

(* Nearest open epoch at or before an absolute trace event index — the
   time-travel query: "which snapshot can rewind to before this event?" *)
let epoch_for_event t idx =
  let rec find = function
    | [] -> None
    | e :: rest -> if e.e_trace_index <= idx then Some e.e_id else find rest
  in
  find t.snapshots

let restore_table ~src ~dst =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

let revert_impl t =
  match t.snapshots with
  | [] -> invalid_arg "Engine.revert: no snapshot epoch open"
  | e :: rest ->
    t.snapshots <- rest;
    t.smc_pending <- [];
    t.running_block <- None;
    (* barrier epochs captured an empty translation cache: flush before
       the journal rewind so the arena zeroing is journaled into the
       epoch being discarded, not its parent *)
    if e.e_barrier then flush_translations t;
    let touched = Ia32.Memory.Journal.revert t.mem in
    if not e.e_barrier then
      (* warm mode: drop only the blocks whose source pages were rewound
         (SMC'd, remapped, or loader-written during the epoch); code on
         untouched pages keeps its translations *)
      List.iter
        (fun no ->
          List.iter
            (fun b -> Block.invalidate t.cache t.tcache b)
            (Block.live_blocks_on_page t.cache no))
        touched;
    Ia32.Memory.set_watched_pages t.mem e.e_watched;
    Account.blit ~src:e.e_acct ~dst:t.acct;
    let m = t.machine in
    let s = m.M.stats and es = e.e_stats in
    s.M.cycles <- es.M.cycles;
    s.M.groups <- es.M.groups;
    s.M.slots_retired <- es.M.slots_retired;
    s.M.loads <- es.M.loads;
    s.M.stores <- es.M.stores;
    s.M.taken_branches <- es.M.taken_branches;
    s.M.dcache_stall <- es.M.dcache_stall;
    s.M.spec_checks <- es.M.spec_checks;
    Array.blit e.e_buckets 0 m.M.buckets 0 (Array.length m.M.buckets);
    Array.iteri (fun i v -> Bigarray.Array1.set m.M.gr i v) e.e_gr;
    Array.blit e.e_nat 0 m.M.nat 0 (Array.length m.M.nat);
    Array.blit e.e_fr 0 m.M.fr 0 (Array.length m.M.fr);
    Array.blit e.e_fnat 0 m.M.fnat 0 (Array.length m.M.fnat);
    Array.blit e.e_pr 0 m.M.pr 0 (Array.length m.M.pr);
    Array.blit e.e_br 0 m.M.br 0 (Array.length m.M.br);
    Array.blit e.e_ready 0 m.M.ready 0 (Array.length m.M.ready);
    Array.blit e.e_fready 0 m.M.fready 0 (Array.length m.M.fready);
    Array.blit e.e_hotc 0 m.M.hotc 0 (Array.length m.M.hotc);
    Array.blit e.e_edgec 0 m.M.edgec 0 (Array.length m.M.edgec);
    restore_table ~src:e.e_alat ~dst:m.M.alat;
    m.M.ip <- e.e_ip;
    m.M.slot <- e.e_slot;
    m.M.last_exit <- e.e_last_exit;
    Ipf.Dcache.restore m.M.dcache e.e_dcache;
    Btlib.Vos.restore t.vos e.e_vos;
    t.candidates <-
      List.filter
        (fun id ->
          match Block.find_by_id t.cache id with
          | Some b -> b.Block.live
          | None -> false)
        e.e_candidates;
    restore_table ~src:e.e_stage2 ~dst:t.stage2_entries;
    restore_table ~src:e.e_avoid ~dst:t.avoid_entries;
    restore_table ~src:e.e_interp_only ~dst:t.interp_only;
    restore_table ~src:e.e_interp_only_pages ~dst:t.interp_only_pages;
    restore_table ~src:e.e_retrans ~dst:t.retrans_counts;
    restore_table ~src:e.e_smc_hits ~dst:t.smc_page_hits;
    Hashtbl.reset t.if_counts;
    Hashtbl.iter (fun k r -> Hashtbl.replace t.if_counts k (ref !r)) e.e_if_counts;
    Hashtbl.reset t.if_taken;
    Hashtbl.iter (fun k r -> Hashtbl.replace t.if_taken k (ref !r)) e.e_if_taken;
    t.fuel <- e.e_fuel;
    touched

let revert t = timed_snapshot_op t (fun () -> revert_impl t)

let commit_snapshot t =
  match t.snapshots with
  | [] -> invalid_arg "Engine.commit_snapshot: no snapshot epoch open"
  | _ :: rest ->
    t.snapshots <- rest;
    Ia32.Memory.Journal.commit t.mem

(* ---- runaway-guest watchdog ---------------------------------------------

   With [max_cycles] set, the engine bounds each machine-run call to
   [watchdog_chunk] retired slots so even a fully chained translated loop
   (which never re-enters the dispatcher) returns to the runtime within a
   bounded number of cycles, where the clock is checked. A trip raises a
   structured [Bt_error] (component "watchdog") the driver turns into a
   crash capsule. The early group flush at a chunk boundary can perturb
   grouped-issue timing by a few cycles relative to an unbounded run, so
   the watchdog is off unless requested — replays must use the same
   [max_cycles] setting as the recording run. *)

let watchdog_chunk = 65536

let check_watchdog ?eip t =
  match t.max_cycles with
  | Some limit when now t > limit ->
    Bt_error.fail ?eip ~component:"watchdog"
      ~detail:(Printf.sprintf "cycles=%d limit=%d" (now t) limit)
      "guest exceeded --max-cycles"
  | _ -> ()

(* ---- chaos primitives --------------------------------------------------
   Semantics-preserving perturbations for the deterministic fault injector
   (Harness.Inject). Each one forces a slow path the guest's own behaviour
   might never exercise, without changing the architectural state the
   translated code observes. They are only safe at dispatch boundaries
   (the [on_dispatch] hook), never while the machine is mid-block. *)

(* Rotate the physical FP stack so every block-head TOS check misses and
   the engine must recover via [Reconstruct.rotate_tos]. The rotation is
   architecture-preserving (ST(i) maps to the same value before and
   after); it only invalidates the translator's TOS speculation. *)
let force_tos_rotation t ~by =
  if t.config.Config.fp_stack_speculation then begin
    let tos = M.get32 t.machine Regs.r_tos in
    Reconstruct.rotate_tos t.machine ~expected:((tos + by) land 7)
  end

(* The architectural x87 top: the runtime TOS minus any outstanding
   recovery rotation. Translation-time speculation must be expressed in
   architectural terms, or a block trained right after a rotation bakes
   the parking bias into its static FP map. *)
let arch_tos t =
  (M.get32 t.machine Regs.r_tos - M.get32 t.machine Regs.r_park) land 7

(* Identity snapshot of the here-and-now state, expressed against canonic
   parking: any outstanding recovery rotation is undone first, so the
   runtime TOS read below is the architectural top again. *)
let here_snapshot t =
  Reconstruct.canonicalize t.machine;
  Block.identity_snapshot ~entry_tos:(M.get32 t.machine Regs.r_tos)

(* Rewrite every XMM register to the packed-double container format: a
   bit-exact change of representation that defeats the translator's SSE
   format speculation at the next format-checked block head. *)
let force_sse_scramble t =
  if t.config.Config.sse_format_speculation then
    ignore
      (Reconstruct.convert_sse_formats t.machine
         ~required:(Array.make 8 Regs.fmt_pd))

(* Invalidate up to [max] live blocks as if their source pages had been
   written: exercises the retranslation, storm-detection and degradation
   paths without any guest store. Returns the number invalidated. *)
let spurious_smc_invalidate t ~max =
  let victims =
    Hashtbl.fold (fun _ b acc -> if b.Block.live then b :: acc else acc)
      t.cache.Block.by_id []
    |> List.sort (fun a b -> compare a.Block.id b.Block.id)
  in
  let n = ref 0 in
  List.iter
    (fun b ->
      if !n < max then begin
        incr n;
        t.acct.Account.smc_invalidations <-
          t.acct.Account.smc_invalidations + 1;
        (match t.trace with
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Trace.Smc_invalidation { addr = b.Block.entry; victims = 1 })
        | None -> ());
        note_retranslation t b.Block.entry;
        Block.invalidate t.cache t.tcache b;
        ignore
          (note_smc_invalidation t (b.Block.entry lsr Ia32.Memory.page_bits))
      end)
    victims;
  !n

(* Force a wholesale translation-cache flush (eviction storm). *)
let force_cache_flush t = flush_translations t

let tcache_full t =
  Ipf.Tcache.length t.tcache > t.config.Config.tcache_limit
  || Ipf.Tcache.over_capacity t.tcache

(* Wall-time a translation burst into the Translate phase timer; one
   branch when detached. *)
let timed_translate t f =
  match t.timers with
  | None -> f ()
  | Some tm -> Obs.Timers.time tm Obs.Timers.Translate f

let translate_cold t entry =
  if tcache_full t then flush_translations t;
  let stage2 = Hashtbl.mem t.stage2_entries entry in
  let entry_tos = arch_tos t in
  (match t.trace with
  | Some tr ->
    Obs.Trace.emit tr (Obs.Trace.Trans_begin { phase = Obs.Trace.Cold; entry })
  | None -> ());
  let b =
    timed_translate t @@ fun () ->
    match t.translate_filter with
    | None -> Cold.translate t.cold_env ~entry ~entry_tos ~stage2
    | Some f -> (
      let live () = Some (Cold.translate t.cold_env ~entry ~entry_tos ~stage2) in
      match f ~phase:Obs.Trace.Cold ~entry ~entry_tos ~flag:stage2 ~live with
      | Some b -> b
      | None ->
        (* the filter is total: it either installs or runs [live], and
           cold [live] never declines (it raises on failure) *)
        Bt_error.fail ~component:"engine" ~eip:entry
          "translate filter dropped a cold translation")
  in
  let cycles =
    Array.length b.Block.insns * (cost t).Ipf.Cost.cold_translate_per_insn
  in
  charge_overhead t cycles;
  (match t.profile with
  | Some p -> Obs.Profile.note_translate p ~entry ~cycles
  | None -> ());
  (match t.hists with
  | Some h -> Obs.Hist.record h.Obs.Hist.translate_block cycles
  | None -> ());
  (match t.trace with
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Trace.Trans_end
         {
           phase = Obs.Trace.Cold;
           entry;
           insns = Array.length b.Block.insns;
           cycles;
         })
  | None -> ());
  b

(* Chain the exit branch that just fired into the fresh target block. *)
let chain t target block =
  let bundle, slot = t.machine.M.last_exit in
  if bundle >= Ipf.Tcache.length t.tcache then ()
  else
  let b = Ipf.Tcache.get t.tcache bundle in
  match b.Ipf.Bundle.slots.(slot).I.sem with
  | I.Br (I.Out (I.Dispatch a)) when a = target ->
    Ipf.Tcache.patch_slot t.tcache ~idx:bundle ~slot
      { b.Ipf.Bundle.slots.(slot) with I.sem = I.Br (I.To block.Block.tstart) };
    t.acct.Account.chain_patches <- t.acct.Account.chain_patches + 1
  | _ -> ()

(* ---- heat sessions ----------------------------------------------------- *)

(* Returns true when the caller must re-dispatch instead of resuming the
   machine: either the running block was replaced by its hot version, or
   a cache flush invalidated every bundle index the machine holds. *)
let run_hot_session t =
  let flushes0 = t.acct.Account.cache_flushes in
  if tcache_full t then flush_translations t;
  let profile = hot_profile t in
  let entry_tos = arch_tos t in
  let replaced_current = ref false in
  List.iter
    (fun id ->
      match Block.find_by_id t.cache id with
      | Some b when b.Block.live && b.Block.kind = Block.Cold -> (
        (match t.trace with
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Trace.Trans_begin
               { phase = Obs.Trace.Hot; entry = b.Block.entry })
        | None -> ());
        let avoid = Hashtbl.mem t.avoid_entries b.Block.entry in
        let live () =
          Hot.translate t.cold_env ~entry:b.Block.entry ~entry_tos ~profile
            ~avoid
        in
        match
          timed_translate t @@ fun () ->
          match t.translate_filter with
          | None -> live ()
          | Some f ->
            f ~phase:Obs.Trace.Hot ~entry:b.Block.entry ~entry_tos
              ~flag:avoid ~live
        with
        | Some hot_block ->
          let cycles =
            Array.length hot_block.Block.insns
            * (cost t).Ipf.Cost.hot_translate_per_insn
          in
          charge_overhead t cycles;
          (match t.profile with
          | Some p ->
            Obs.Profile.note_translate p ~entry:b.Block.entry ~cycles
          | None -> ());
          (match t.hists with
          | Some h ->
            Obs.Hist.record h.Obs.Hist.translate_block cycles;
            Obs.Hist.record h.Obs.Hist.trace_length
              (Array.length hot_block.Block.insns)
          | None -> ());
          (match t.trace with
          | Some tr ->
            Obs.Trace.emit tr
              (Obs.Trace.Trans_end
                 {
                   phase = Obs.Trace.Hot;
                   entry = b.Block.entry;
                   insns = Array.length hot_block.Block.insns;
                   cycles;
                 })
          | None -> ());
          t.acct.Account.hot_insns <-
            t.acct.Account.hot_insns + Array.length hot_block.Block.insns;
          (* the cold block is superseded *)
          Block.invalidate t.cache t.tcache b;
          Block.register t.cache hot_block;
          (match t.running_block with
          | Some cur when cur.Block.id = b.Block.id -> replaced_current := true
          | _ -> ())
        | None -> ())
      | _ -> ())
    t.candidates;
  t.candidates <- [];
  !replaced_current || t.acct.Account.cache_flushes > flushes0

(* Returns the IA-32 address to dispatch to when resuming the machine in
   place is no longer possible (hot replacement or cache flush). *)
let on_heat t id =
  t.acct.Account.heat_triggers <- t.acct.Account.heat_triggers + 1;
  match Block.find_by_id t.cache id with
  | None -> None
  | Some b ->
    (* reset the counter so the trigger can fire again (the Hotc uop
       already reset its hashed slot in the counter-table path) *)
    if not t.config.Config.enable_hot_counters then
      Ia32.Memory.write32 t.mem b.Block.ctr_addr 0;
    if b.Block.registered = 0 then
      t.acct.Account.heated_blocks <- t.acct.Account.heated_blocks + 1;
    b.Block.registered <- b.Block.registered + 1;
    (match t.trace with
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Trace.Heat_trigger
           { entry = b.Block.entry; registered = b.Block.registered })
    | None -> ());
    if not (List.mem id t.candidates) then t.candidates <- id :: t.candidates;
    charge_overhead t 50;
    (* "when enough blocks have registered or one block has registered
       twice, an optimization session starts" *)
    if
      List.length t.candidates >= t.config.Config.session_candidates
      || b.Block.registered >= 2
    then if run_hot_session t then Some b.Block.entry else None
    else None

(* ---- precise state helpers --------------------------------------------- *)

(* Reconstruct the precise state for a machine-level event inside [block].
   Cold blocks: the state register + per-IP snapshot. Hot blocks: restore
   the commit point covering the faulting bundle, then the caller
   roll-forwards with the interpreter. *)
let reconstruct_at t block ~bundle =
  match block.Block.kind with
  | Block.Cold ->
    let ip = M.get32 t.machine Regs.r_state in
    let snapshot =
      match Hashtbl.find_opt block.Block.fp_recovery ip with
      | Some s -> s
      | None -> Block.identity_snapshot ~entry_tos:block.Block.entry_tos
    in
    Reconstruct.extract t.machine ~eip:ip ~snapshot
  | Block.Hot ->
    let off = bundle - block.Block.tstart in
    let cm_idx =
      if off >= 0 && off < Array.length block.Block.bundle_commit then
        block.Block.bundle_commit.(off)
      else 0
    in
    let cm = block.Block.commit_maps.(cm_idx) in
    t.acct.Account.rollforwards <- t.acct.Account.rollforwards + 1;
    Reconstruct.apply_commit t.machine cm

(* Interpret forward from [st] until leaving [lo,hi) or a fault/syscall, or
   at most [max_steps]. Returns the stop condition. *)
(* Honour [enable_decode_cache] on any state the engine is about to drive
   through the interpreter. *)
let sync_icache t (st : Ia32.State.t) =
  Ia32.Icache.set_enabled st.Ia32.State.icache
    t.config.Config.enable_decode_cache

let rollforward t st ~lo ~hi ~max_steps =
  (* the interpreter writes guest memory directly: clear [running_block] so
     a store onto a translated page invalidates normally instead of raising
     Smc_abort outside [M.run] *)
  t.running_block <- None;
  sync_icache t st;
  let steps = ref 0 in
  let rec go () =
    if !steps >= max_steps then `Boundary
    else if st.Ia32.State.eip < lo || st.Ia32.State.eip >= hi then `Boundary
    else begin
      match Ia32.Interp.step st with
      | Ia32.Interp.Normal ->
        incr steps;
        charge_overhead t 10;
        (* roll-forward always starts at a block entry, so [lo] is the
           entry to bill the recovery to *)
        (match t.profile with
        | Some p -> Obs.Profile.note_recovery p ~entry:lo ~cycles:10
        | None -> ());
        go ()
      | Ia32.Interp.Syscall n ->
        incr steps;
        `Syscall n
      | Ia32.Interp.Faulted f -> `Fault f
    end
  in
  go ()

(* ---- exception delivery ------------------------------------------------ *)

let deliver_fault t st fault k =
  let module L = (val t.btlib : Btlib.Btos.S) in
  (match t.on_commit with
  | Some f -> f (Commit_fault fault) st
  | None -> ());
  charge_overhead t (cost t).Ipf.Cost.exception_filter_cost;
  t.acct.Account.exceptions_filtered <- t.acct.Account.exceptions_filtered + 1;
  (match t.trace with
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Trace.Fault_delivered
         { fault = Ia32.Fault.to_string fault; eip = st.Ia32.State.eip })
  | None -> ());
  match L.deliver_exception t.vos st fault with
  | Btlib.Vos.Resumed ->
    Reconstruct.inject t.machine st;
    k st.Ia32.State.eip
  | Btlib.Vos.Unhandled f -> Unhandled_fault (f, st)

(* ---- syscalls ---------------------------------------------------------- *)

(* Schedule and dispatch the next runnable guest thread. The outgoing
   thread's state must already be parked in the Vos thread table. All
   per-thread IPF contexts share one machine and one tcache: switching is
   a Reconstruct.inject of the incoming thread's architectural state, so
   cross-thread SMC shootdown rides the existing page-generation checks. *)
let resume_next t k =
  let prev = Btlib.Vos.current t.vos in
  match Btlib.Vos.reschedule t.vos ~now:(now t) with
  | Btlib.Vos.Run th ->
    if th.Btlib.Vos.tid <> prev then begin
      t.acct.Account.thread_switches <- t.acct.Account.thread_switches + 1;
      charge_overhead t (cost t).Ipf.Cost.context_switch_cost
    end;
    let st = th.Btlib.Vos.state in
    (match Btlib.Vos.take_wake th with
    | Some v ->
      (* the value this thread's blocking syscall owes it (join result,
         futex wake), encoded exactly once, at resume *)
      let module L = (val t.btlib : Btlib.Btos.S) in
      L.encode_result st v
    | None -> ());
    Reconstruct.inject t.machine st;
    k st.Ia32.State.eip
  | Btlib.Vos.Deadlock ->
    Bt_error.fail ~component:"engine" "deadlock: all guest threads blocked"

let count_thread_call t (call : Btlib.Syscall.call) =
  let a = t.acct in
  match call with
  | Btlib.Syscall.Spawn _ ->
    a.Account.thread_spawns <- a.Account.thread_spawns + 1
  | Btlib.Syscall.Join _ -> a.Account.thread_joins <- a.Account.thread_joins + 1
  | Btlib.Syscall.Yield ->
    a.Account.thread_yields <- a.Account.thread_yields + 1
  | Btlib.Syscall.Futex_wait _ ->
    a.Account.futex_waits <- a.Account.futex_waits + 1
  | Btlib.Syscall.Futex_wake _ ->
    a.Account.futex_wakes <- a.Account.futex_wakes + 1
  | _ -> ()

(* Auto-snapshot cadence: every [snap_every]-th syscall commit takes a
   barrier snapshot at the commit point. The barrier flush already resets
   [running_block]/[smc_pending], and the continuing thread re-enters via
   [Reconstruct.inject] + dispatch, so the original run proceeds exactly as
   a replay from the snapshot would — cold, from the committed state. *)
let maybe_auto_snapshot t st =
  match t.snap_every with
  | None -> ()
  | Some n ->
    t.commits_seen <- t.commits_seen + 1;
    if t.commits_seen mod n = 0 then begin
      (* sync the thread table with the precise committed state before
         the Vos checkpoint inside [snapshot] captures it *)
      Btlib.Vos.park t.vos st;
      ignore (snapshot ~barrier:true t)
    end

(* Sampler poll at engine commit points (dispatch, interpreter block
   boundaries, syscall completion) — catches clock advances that never
   flow through the machine's charge probe (overhead/other/idle cycles).
   One branch when detached; recording-only when attached. *)
let sample_poll t ~eip ~phase =
  match t.sampler with
  | None -> ()
  | Some s ->
    let vnow = now t in
    if Obs.Sample.due s ~now:vnow then
      Obs.Sample.record s ~now:vnow ~tid:(Btlib.Vos.current t.vos) ~eip
        ~entry:eip ~phase ~degraded:(interp_only_at t eip)

let do_syscall t st n k =
  let module L = (val t.btlib : Btlib.Btos.S) in
  if n <> L.syscall_vector then
    (* not this OS's system-call vector: the guest gets a trap *)
    deliver_fault t st Ia32.Fault.Breakpoint k
  else begin
    (match t.on_commit with
    | Some f -> f (Commit_syscall n) st
    | None -> ());
    let call = L.decode_syscall st in
    count_thread_call t call;
    charge_other t (cost t).Ipf.Cost.syscall_cost;
    let k0 = t.vos.Btlib.Vos.kernel_cycles and i0 = t.vos.Btlib.Vos.idle_cycles in
    let fin r =
      (* kernel/driver time runs natively ("other"); idle is idle *)
      let kd = t.vos.Btlib.Vos.kernel_cycles - k0
      and idl = t.vos.Btlib.Vos.idle_cycles - i0 in
      charge_other t kd;
      t.acct.Account.idle_cycles <- t.acct.Account.idle_cycles + idl;
      (match t.hists with
      | Some h ->
        Obs.Hist.record h.Obs.Hist.syscall_latency
          ((cost t).Ipf.Cost.syscall_cost + kd + idl)
      | None -> ());
      sample_poll t ~eip:st.Ia32.State.eip ~phase:"runtime";
      r
    in
    match fin (L.perform t.vos st call) with
    | Btlib.Syscall.Exited code ->
      (match t.on_commit with
      | Some f -> f (Commit_exit code) st
      | None -> ());
      (match t.trace with
      | Some tr -> Obs.Trace.emit tr (Obs.Trace.Exit_program { code })
      | None -> ());
      Exited (code, st)
    | Btlib.Syscall.Ret v ->
      L.encode_result st v;
      if Btlib.Vos.need_resched t.vos ~now:(now t) then begin
        (* quantum expired (or the thread yielded): deterministic
           preemption at the syscall commit point *)
        Btlib.Vos.park t.vos st;
        resume_next t k
      end
      else begin
        maybe_auto_snapshot t st;
        Reconstruct.inject t.machine st;
        k st.Ia32.State.eip
      end
    | Btlib.Syscall.Block ->
      (* the calling thread parked itself (join/futex wait, or a
         non-final thread exit); run someone else *)
      Btlib.Vos.park t.vos st;
      resume_next t k
  end

(* ---- main loop ---------------------------------------------------------- *)

let vector_fault = function
  | 0 -> Ia32.Fault.Divide_error
  | 6 -> Ia32.Fault.Invalid_opcode
  | 13 -> Ia32.Fault.Privileged
  | 16 -> Ia32.Fault.Fp_stack_fault
  | _ -> Ia32.Fault.Invalid_opcode

(* Start running the guest whose initial architectural state is [st]. *)
let run ?(fuel = max_int) t (st0 : Ia32.State.t) =
  t.fuel <- fuel;
  Btlib.Vos.register_main t.vos st0;
  Reconstruct.inject t.machine st0;
  let rec dispatch eip =
    (match t.trace with
    | Some tr -> Obs.Trace.emit tr (Obs.Trace.Dispatch { eip })
    | None -> ());
    t.acct.Account.dispatches <- t.acct.Account.dispatches + 1;
    charge_overhead t (cost t).Ipf.Cost.dispatch_cost;
    sample_poll t ~eip ~phase:"runtime";
    check_watchdog ~eip t;
    t.running_block <- None;
    flush_smc_pending t;
    (match t.on_dispatch with Some f -> f eip | None -> ());
    flush_smc_pending t;
    if interp_only_at t eip then interp_step_blocks eip
    else
    match Block.find_entry t.cache eip with
    | Some b -> enter b
    | None
      when t.config.Config.two_phase
           && t.config.Config.first_phase = Config.Interpret_first ->
      interpret_first eip
    | None -> (
      match translate_cold t eip with
      | b -> enter b
      | exception Cold.Cannot_translate _ ->
        (* undecodable or unfetchable entry: architectural fault *)
        let snapshot = Block.identity_snapshot ~entry_tos:0 in
        let st = Reconstruct.extract t.machine ~eip ~snapshot in
        (* Re-decode to find the precise architectural fault: a truncated
           instruction at the end of a mapped page is a fetch page fault on
           the *following* page, not #UD; only a byte sequence the decoder
           itself rejects is #UD. *)
        let fault =
          match Ia32.Decode.decode t.mem eip with
          | _ -> Ia32.Fault.Invalid_opcode (* decodable, untranslatable *)
          | exception Ia32.Fault.Fault f -> f
          | exception _ -> Ia32.Fault.Invalid_opcode
        in
        deliver_fault t st fault dispatch)
  and interpret_first eip =
    (* FX!32-style first phase: interpret basic blocks while counting
       entries and edges; when a block heats, translate it hot directly.
       The interpretation threshold is lower than the instrumented-cold
       threshold (the paper: such systems "need to move to hot code
       generation much earlier"), so the profile is less representative. *)
    let threshold = max 8 (t.config.Config.heat_threshold / 4) in
    let count =
      match Hashtbl.find_opt t.if_counts eip with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.replace t.if_counts eip r;
        r
    in
    incr count;
    if !count >= threshold then begin
      let profile = hot_profile t in
      let entry_tos = arch_tos t in
      let live () =
        Hot.translate t.cold_env ~entry:eip ~entry_tos ~profile ~avoid:false
      in
      match
        timed_translate t @@ fun () ->
        match t.translate_filter with
        | None -> live ()
        | Some f ->
          f ~phase:Obs.Trace.Hot ~entry:eip ~entry_tos ~flag:false ~live
      with
      | Some hb ->
        let cycles =
          Array.length hb.Block.insns * (cost t).Ipf.Cost.hot_translate_per_insn
        in
        charge_overhead t cycles;
        (match t.hists with
        | Some h ->
          Obs.Hist.record h.Obs.Hist.translate_block cycles;
          Obs.Hist.record h.Obs.Hist.trace_length (Array.length hb.Block.insns)
        | None -> ());
        Block.register t.cache hb;
        enter hb
      | None -> (
        match translate_cold t eip with
        | b -> enter b
        | exception Cold.Cannot_translate _ -> interp_step_blocks eip)
    end
    else interp_step_blocks eip
  and interp_step_blocks eip =
    (* interpret one basic block, maintaining the engine-side edge profile.
       The interpreter writes guest memory directly: clear [running_block]
       so a write that lands on a translated page cannot look like the
       running block modifying itself (Smc_abort may only be raised while
       the machine is actually inside [M.run]). *)
    t.running_block <- None;
    let snapshot = here_snapshot t in
    let st = Reconstruct.extract t.machine ~eip ~snapshot in
    sync_icache t st;
    let rec steps budget =
      if budget = 0 then `Continue
      else begin
        let at = st.Ia32.State.eip in
        match Ia32.Decode.decode t.mem at with
        | exception Ia32.Fault.Fault f -> `Fault f
        | exception _ -> `Fault Ia32.Fault.Invalid_opcode
        | insn, len -> (
          let fall = Ia32.Word.mask32 (at + len) in
          match Ia32.Interp.step st with
          | Ia32.Interp.Normal ->
            t.acct.Account.interp_cycles <-
              t.acct.Account.interp_cycles + (cost t).Ipf.Cost.interp_per_insn;
            t.fuel <- t.fuel - 1;
            (match insn with
            | Ia32.Insn.Jcc _ ->
              let taken = st.Ia32.State.eip <> fall in
              let r =
                match Hashtbl.find_opt t.if_taken eip with
                | Some r -> r
                | None ->
                  let r = ref 0 in
                  Hashtbl.replace t.if_taken eip r;
                  r
              in
              if taken then incr r;
              `Continue
            | _ when Ia32.Insn.is_block_end insn -> `Continue
            | _ -> steps (budget - 1))
          | Ia32.Interp.Syscall n ->
            t.acct.Account.interp_cycles <-
              t.acct.Account.interp_cycles + (cost t).Ipf.Cost.interp_per_insn;
            `Syscall n
          | Ia32.Interp.Faulted f -> `Fault f)
      end
    in
    if t.fuel <= 0 then Out_of_fuel
    else
      match steps 64 with
      | `Continue ->
        sample_poll t ~eip:st.Ia32.State.eip ~phase:"interp";
        Reconstruct.inject t.machine st;
        dispatch st.Ia32.State.eip
      | `Syscall n -> do_syscall t st n dispatch
      | `Fault f -> deliver_fault t st f dispatch
  and enter b =
    t.running_block <- Some b;
    t.machine.M.ip <- b.Block.tstart;
    t.machine.M.slot <- 0;
    continue ()
  and continue () =
    if t.fuel <= 0 then Out_of_fuel
    else begin
      (match Block.find_by_bundle t.cache t.machine.M.ip with
      | Some b -> t.running_block <- Some b
      | None -> ());
      let before = t.machine.M.stats.M.slots_retired in
      (* watchdog chunking: bound the machine call so a chained loop that
         never dispatches still returns for a clock check *)
      let mfuel =
        match t.max_cycles with
        | None -> t.fuel
        | Some _ -> min t.fuel watchdog_chunk
      in
      let stop =
        try
          match t.timers with
          | None ->
            if t.config.Config.enable_predecode then begin
              Ipf.Exec.run ~fuel:mfuel t.exec
            end
            else M.run ~fuel:mfuel t.machine
          | Some tm ->
            Obs.Timers.time tm Obs.Timers.Execute (fun () ->
                if t.config.Config.enable_predecode then
                  Ipf.Exec.run ~fuel:mfuel t.exec
                else M.run ~fuel:mfuel t.machine)
        with Smc_abort ->
          (* self-modifying store: memory effect is committed; restart the
             current IA-32 instruction from its precise state *)
          let b = Option.get t.running_block in
          t.acct.Account.smc_invalidations <- t.acct.Account.smc_invalidations + 0;
          let st = reconstruct_at t b ~bundle:t.machine.M.ip in
          flush_smc_pending t;
          Reconstruct.inject t.machine st;
          M.Exited (I.Dispatch st.Ia32.State.eip)
      in
      t.fuel <- t.fuel - (t.machine.M.stats.M.slots_retired - before) - 1;
      handle stop
    end
  and handle stop =
    (match (t.trace, stop) with
    | Some tr, M.Faulted f ->
      Obs.Trace.emit tr
        (Obs.Trace.Machine_fault
           {
             kind =
               (match f.M.kind with
               | M.F_misalign -> "misalign"
               | M.F_page -> "page"
               | M.F_nat -> "nat");
             addr = f.M.addr;
             bundle = f.M.ip;
           })
    | _ -> ());
    match stop with
    | M.Fuel ->
      if t.max_cycles = None || t.fuel <= 0 then Out_of_fuel
      else begin
        (* a watchdog chunk expired, not the caller's fuel: check the
           clock and resume the machine from where it stopped *)
        check_watchdog t;
        continue ()
      end
    | M.Exited (I.Dispatch target) -> (
      flush_smc_pending t;
      (* block boundary: safe injection point (the machine is not
         mid-block, so chaos invalidations cannot pull a running block
         out from under us) *)
      t.running_block <- None;
      (match t.on_dispatch with Some f -> f target | None -> ());
      flush_smc_pending t;
      match Block.find_entry t.cache target with
      | Some b ->
        chain t target b;
        enter b
      | None when interp_only_at t target ->
        (* degraded entry: no fast-path retranslation, go through the
           dispatcher to the interpreter *)
        dispatch target
      | None ->
        (match t.trace with
        | Some tr -> Obs.Trace.emit tr (Obs.Trace.Dispatch { eip = target })
        | None -> ());
        t.acct.Account.dispatches <- t.acct.Account.dispatches + 1;
        charge_overhead t (cost t).Ipf.Cost.dispatch_cost;
        (match translate_cold t target with
        | b ->
          chain t target b;
          enter b
        | exception Cold.Cannot_translate _ -> dispatch target))
    | M.Exited I.Indirect ->
      let target = M.get32 t.machine Regs.r_btarget in
      t.acct.Account.indirect_lookups <- t.acct.Account.indirect_lookups + 1;
      (* probe depth of the block-cache lookup this indirect performs:
         1 + the source-page chain the entry search walks *)
      (match t.hists with
      | Some h ->
        let depth =
          match
            Hashtbl.find_opt t.cache.Block.by_page
              (target lsr Ia32.Memory.page_bits)
          with
          | Some l -> 1 + List.length !l
          | None -> 1
        in
        Obs.Hist.record h.Obs.Hist.tcache_probe_depth depth
      | None -> ());
      (* the fast-lookup sequence is inline translated code in the real
         system, so a HIT is translated-code time attributed to the
         exiting block's bucket; only a MISS falls into the runtime and
         counts as overhead *)
      M.charge t.machine (cost t).Ipf.Cost.indirect_lookup_cost;
      flush_smc_pending t;
      t.running_block <- None;
      (match t.on_dispatch with Some f -> f target | None -> ());
      flush_smc_pending t;
      (match Block.find_entry t.cache target with
      | Some b -> enter b
      | None ->
        t.acct.Account.indirect_misses <- t.acct.Account.indirect_misses + 1;
        charge_overhead t (cost t).Ipf.Cost.dispatch_cost;
        dispatch target)
    | M.Exited (I.Heat id) -> (
      match on_heat t id with
      | Some entry -> dispatch entry
      | None -> continue ())
    | M.Exited (I.Syscall n) ->
      let eip = M.get32 t.machine Regs.r_state in
      let snapshot = here_snapshot t in
      let st = Reconstruct.extract t.machine ~eip ~snapshot in
      do_syscall t st n dispatch
    | M.Exited (I.Misalign_regen id) -> (
      t.acct.Account.misalign_stage1_hits <- t.acct.Account.misalign_stage1_hits + 1;
      match Block.find_by_id t.cache id with
      | None -> dispatch (M.get32 t.machine Regs.r_state)
      | Some b ->
        let st = reconstruct_at t b ~bundle:t.machine.M.ip in
        (match t.trace with
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Trace.Recovery
               { path = "misalign_regen"; eip = st.Ia32.State.eip })
        | None -> ());
        (* regenerate as a stage-2 avoiding block from the faulting IP (and
           from the block entry, for future entries) *)
        note_retranslation t b.Block.entry;
        Hashtbl.replace t.stage2_entries b.Block.entry ();
        Hashtbl.replace t.stage2_entries st.Ia32.State.eip ();
        Block.invalidate t.cache t.tcache b;
        Reconstruct.inject t.machine st;
        dispatch st.Ia32.State.eip)
    | M.Exited (I.Smc _) -> dispatch (M.get32 t.machine Regs.r_state)
    | M.Exited (I.Spec_fail (id, check)) -> (
      match Block.find_by_id t.cache id with
      | None -> dispatch (M.get32 t.machine Regs.r_state)
      | Some b ->
        charge_overhead t 40;
        (match t.profile with
        | Some p -> Obs.Profile.note_recovery p ~entry:b.Block.entry ~cycles:40
        | None -> ());
        (match t.trace with
        | Some tr ->
          let kind =
            if check = Templates.check_tos then "tos"
            else if check = Templates.check_park then "park"
            else if check = Templates.check_tag then "tag"
            else if
              check = Templates.check_mode_fp
              || check = Templates.check_mode_mmx
            then "mode"
            else "sse"
          in
          Obs.Trace.emit tr
            (Obs.Trace.Spec_miss { kind; entry = b.Block.entry })
        | None -> ());
        if check = Templates.check_tos then begin
          t.acct.Account.tos_misses <- t.acct.Account.tos_misses + 1;
          Reconstruct.rotate_tos t.machine ~expected:b.Block.entry_tos;
          enter b
        end
        else if check = Templates.check_park then begin
          (* MMX block entered with the file rotated off its canonic
             parking: undo the rotation, then the absolute accesses are
             right again *)
          t.acct.Account.tos_misses <- t.acct.Account.tos_misses + 1;
          Reconstruct.canonicalize t.machine;
          enter b
        end
        else if check = Templates.check_tag then begin
          (* TAG mismatch: run the block's source code through the
             interpreter, which raises the precise stack fault if any
             (the paper rebuilds a special fault-catching block) *)
          t.acct.Account.tag_misses <- t.acct.Account.tag_misses + 1;
          let snapshot = here_snapshot t in
          let st = Reconstruct.extract t.machine ~eip:b.Block.entry ~snapshot in
          match
            rollforward t st ~lo:b.Block.entry ~hi:b.Block.code_end
              ~max_steps:(Array.length b.Block.insns + 1)
          with
          | `Fault f -> deliver_fault t st f dispatch
          | `Syscall n -> do_syscall t st n dispatch
          | `Boundary ->
            Reconstruct.inject t.machine st;
            dispatch st.Ia32.State.eip
        end
        else if check = Templates.check_mode_fp || check = Templates.check_mode_mmx
        then begin
          t.acct.Account.mode_misses <- t.acct.Account.mode_misses + 1;
          Reconstruct.sync_mode t.machine
            ~to_mmx:(check = Templates.check_mode_mmx);
          enter b
        end
        else begin
          t.acct.Account.sse_misses <- t.acct.Account.sse_misses + 1;
          let n =
            Reconstruct.convert_sse_formats t.machine ~required:b.Block.sse_entry
          in
          charge_overhead t (20 * n);
          (match t.profile with
          | Some p when n > 0 ->
            Obs.Profile.note_recovery p ~entry:b.Block.entry ~cycles:(20 * n)
          | _ -> ());
          enter b
        end)
    | M.Exited (I.Guest_fault (ip, vec)) -> (
      match t.running_block with
      | None -> Out_of_fuel
      | Some b when b.Block.kind = Block.Hot -> (
        (* restore the covering commit region and roll forward: the
           interpreter raises the precise architectural fault *)
        let bundle, _ = t.machine.M.last_exit in
        let st = reconstruct_at t b ~bundle in
        (match t.trace with
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Trace.Recovery
               { path = "guest_fault_rollforward"; eip = st.Ia32.State.eip })
        | None -> ());
        match
          rollforward t st ~lo:b.Block.entry ~hi:b.Block.code_end
            ~max_steps:(Array.length b.Block.insns + 2)
        with
        | `Fault fault -> deliver_fault t st fault dispatch
        | `Syscall n -> do_syscall t st n dispatch
        | `Boundary ->
          Reconstruct.inject t.machine st;
          dispatch st.Ia32.State.eip)
      | Some b ->
        let snapshot =
          match Hashtbl.find_opt b.Block.fp_recovery ip with
          | Some s -> s
          | None -> Block.identity_snapshot ~entry_tos:b.Block.entry_tos
        in
        let st = Reconstruct.extract t.machine ~eip:ip ~snapshot in
        deliver_fault t st (vector_fault vec) dispatch)
    | M.Exited (I.Nat_recover id) -> (
      (* a chk.s caught a deferred speculative-load fault: restore the
         covering commit point and roll forward so the real fault (or a
         transient one that no longer occurs) is raised precisely *)
      match Block.find_by_id t.cache id with
      | None ->
        Bt_error.fail ~component:"engine" ~block:id
          "nat-recover from unknown block"
      | Some b -> (
        let bundle = fst t.machine.M.last_exit in
        let st = reconstruct_at t b ~bundle in
        (match t.trace with
        | Some tr ->
          Obs.Trace.emit tr
            (Obs.Trace.Recovery
               { path = "nat_recover"; eip = st.Ia32.State.eip })
        | None -> ());
        match
          rollforward t st ~lo:b.Block.entry ~hi:b.Block.code_end
            ~max_steps:(Array.length b.Block.insns + 2)
        with
        | `Fault fault -> deliver_fault t st fault dispatch
        | `Syscall n -> do_syscall t st n dispatch
        | `Boundary ->
          Reconstruct.inject t.machine st;
          dispatch st.Ia32.State.eip))
    | M.Exited I.Exit_program ->
      let snapshot = here_snapshot t in
      let st =
        Reconstruct.extract t.machine
          ~eip:(M.get32 t.machine Regs.r_state)
          ~snapshot
      in
      (match t.on_commit with
      | Some f -> f (Commit_exit 0) st
      | None -> ());
      (match t.trace with
      | Some tr -> Obs.Trace.emit tr (Obs.Trace.Exit_program { code = 0 })
      | None -> ());
      Exited (0, st)
    | M.Faulted f -> (
      match Block.find_by_bundle t.cache f.M.ip with
      | None ->
        Bt_error.fail ~component:"engine"
          ~detail:(Printf.sprintf "bundle %d" f.M.ip)
          "fault outside any translated block"
      | Some b -> (
        let st = reconstruct_at t b ~bundle:f.M.ip in
        match f.M.kind with
        | M.F_nat ->
          Bt_error.fail ~component:"engine" ~eip:b.Block.entry
            ~block:b.Block.id "translator bug: NaT consumption fault"
        | M.F_misalign -> (
          (* IA-32 never faults here: emulate through the interpreter at
             the OS-handler price, and trigger regeneration with avoidance *)
          charge_overhead t (cost t).Ipf.Cost.os_misalign_cost;
          (match t.profile with
          | Some p ->
            Obs.Profile.note_recovery p ~entry:b.Block.entry
              ~cycles:(cost t).Ipf.Cost.os_misalign_cost
          | None -> ());
          t.acct.Account.misalign_os_faults <-
            t.acct.Account.misalign_os_faults + 1;
          (match t.trace with
          | Some tr ->
            Obs.Trace.emit tr
              (Obs.Trace.Recovery
                 { path = "os_misalign"; eip = st.Ia32.State.eip })
          | None -> ());
          note_retranslation t b.Block.entry;
          (if b.Block.kind = Block.Hot then begin
             (* stage 3: discard the hot block; regenerate with avoidance *)
             t.acct.Account.hot_discards <- t.acct.Account.hot_discards + 1;
             Hashtbl.replace t.avoid_entries b.Block.entry ();
             Block.invalidate t.cache t.tcache b
           end
           else Hashtbl.replace t.stage2_entries b.Block.entry ());
          match
            rollforward t st ~lo:b.Block.entry ~hi:b.Block.code_end
              ~max_steps:(Array.length b.Block.insns + 2)
          with
          | `Fault fault -> deliver_fault t st fault dispatch
          | `Syscall n -> do_syscall t st n dispatch
          | `Boundary ->
            Reconstruct.inject t.machine st;
            dispatch st.Ia32.State.eip)
        | M.F_page -> (
          (match t.trace with
          | Some tr ->
            Obs.Trace.emit tr
              (Obs.Trace.Recovery
                 { path = "page_rollforward"; eip = st.Ia32.State.eip })
          | None -> ());
          (* roll forward to the precise faulting instruction; a premature
             speculative fault is nullified by simply not recurring *)
          match
            rollforward t st ~lo:b.Block.entry ~hi:b.Block.code_end
              ~max_steps:(Array.length b.Block.insns + 2)
          with
          | `Fault fault -> deliver_fault t st fault dispatch
          | `Syscall n -> do_syscall t st n dispatch
          | `Boundary ->
            Reconstruct.inject t.machine st;
            dispatch st.Ia32.State.eip)))
  in
  dispatch st0.Ia32.State.eip

(* Final time distribution for the Figure 6/7 style reports. *)
let distribution t = Account.distribution t.acct t.machine

(* Tid of the currently scheduled guest thread (0 when single-threaded). *)
let clock t = now t
let current_tid t = Btlib.Vos.current t.vos

(* Snapshot the current architectural state (block-boundary precision). *)
let capture t =
  let snapshot = here_snapshot t in
  Reconstruct.extract t.machine ~eip:(M.get32 t.machine Regs.r_state) ~snapshot

(* ---- observability ----------------------------------------------------- *)

let attach_trace t tr =
  t.trace <- Some tr;
  Obs.Trace.set_clock tr (fun () -> now t);
  Obs.Trace.set_tid_source tr (fun () -> Btlib.Vos.current t.vos);
  Ipf.Tcache.set_trace t.tcache (Some tr);
  t.vos.Btlib.Vos.trace <- Some tr

(* The machine exposes ONE charge-probe slot; the profile and the
   sampler share it. The probe mirrors every machine charge onto the
   owning guest block (same [find_by_bundle] lookup as the cold/hot
   bucket split) and, when the deterministic clock has crossed a
   sampling boundary, folds a sample keyed by last committed EIP. It
   only records — never charges or touches machine state. *)
let install_charge_probe t =
  if t.profile = None && t.sampler = None then
    t.machine.M.charge_probe <- None
  else
    t.machine.M.charge_probe <-
      Some
        (fun bundle cycles ->
          let blk = Block.find_by_bundle t.cache bundle in
          (match t.profile with
          | Some p -> (
            match blk with
            | Some b ->
              let phase =
                match b.Block.kind with
                | Block.Hot -> Obs.Profile.Hot
                | Block.Cold -> Obs.Profile.Cold
              in
              Obs.Profile.note_exec p ~entry:b.Block.entry ~phase ~cycles
            | None -> Obs.Profile.note_runtime p ~cycles)
          | None -> ());
          match t.sampler with
          | None -> ()
          | Some s ->
            let vnow = now t in
            if Obs.Sample.due s ~now:vnow then begin
              let eip = M.get32 t.machine Regs.r_state in
              let entry, phase =
                match blk with
                | Some b ->
                  ( b.Block.entry,
                    match b.Block.kind with
                    | Block.Hot -> "hot"
                    | Block.Cold -> "cold" )
                | None -> (eip, "runtime")
              in
              Obs.Sample.record s ~now:vnow ~tid:(Btlib.Vos.current t.vos)
                ~eip ~entry ~phase ~degraded:(interp_only_at t eip)
            end)

let attach_profile t p =
  t.profile <- Some p;
  install_charge_probe t

let attach_sample t s =
  t.sampler <- Some s;
  install_charge_probe t

let attach_hists t h =
  t.hists <- Some h;
  t.vos.Btlib.Vos.futex_hist <-
    Some (fun d -> Obs.Hist.record h.Obs.Hist.futex_wait d)

let attach_timers t tm =
  t.timers <- Some tm;
  (* persist-I/O spans are recorded by the CLI around Persist load/save
     via [Obs.Timers.add]; nothing to install engine-side *)
  ()

let trace t = t.trace
let profile t = t.profile
let sampler t = t.sampler
let hists t = t.hists
let timers t = t.timers

let live_blocks t =
  Hashtbl.fold
    (fun _ b n -> if b.Block.live then n + 1 else n)
    t.cache.Block.by_id 0

let metrics t =
  let m = Obs.Metrics.make ~schema:"ia32el-metrics/2" in
  let i n = Obs.Metrics.Int n in
  let d = distribution t in
  Obs.Metrics.section m "cycles"
    [
      ("total", i d.Account.total);
      ("hot", i d.Account.hot);
      ("cold", i d.Account.cold);
      ("overhead", i d.Account.overhead);
      ("other", i d.Account.other);
      ("idle", i d.Account.idle);
      ("interp", i t.acct.Account.interp_cycles);
    ];
  Obs.Metrics.section m "counters"
    (List.map (fun (k, v) -> (k, i v)) (Account.counters t.acct));
  Obs.Metrics.section m "volume"
    [
      ("cold_insns", i t.acct.Account.cold_insns);
      ("hot_insns", i t.acct.Account.hot_insns);
      ("hot_target_insns", i t.acct.Account.hot_target_insns);
    ];
  let ms = t.machine.M.stats in
  Obs.Metrics.section m "machine"
    [
      ("cycles", i ms.M.cycles);
      ("groups", i ms.M.groups);
      ("slots_retired", i ms.M.slots_retired);
      ("loads", i ms.M.loads);
      ("stores", i ms.M.stores);
      ("taken_branches", i ms.M.taken_branches);
      ("dcache_stall", i ms.M.dcache_stall);
      ("spec_checks", i ms.M.spec_checks);
    ];
  Obs.Metrics.section m "tcache"
    [
      ("bundles", i (Ipf.Tcache.length t.tcache));
      ("limit", i t.config.Config.tcache_limit);
      ("live_blocks", i (live_blocks t));
    ];
  let ds = Ipf.Dcache.stats t.machine.M.dcache in
  Obs.Metrics.section m "dcache"
    [
      ("l1_hits", i ds.Ipf.Dcache.l1_hits);
      ("l1_misses", i ds.Ipf.Dcache.l1_misses);
      ("l2_hits", i ds.Ipf.Dcache.l2_hits);
      ("l2_misses", i ds.Ipf.Dcache.l2_misses);
    ];
  Obs.Metrics.section m "vos"
    [
      ("syscalls", i t.vos.Btlib.Vos.syscalls);
      ("kernel_cycles", i t.vos.Btlib.Vos.kernel_cycles);
      ("idle_cycles", i t.vos.Btlib.Vos.idle_cycles);
      ("exceptions_delivered", i t.vos.Btlib.Vos.exceptions_delivered);
      ("transient_retries", i t.vos.Btlib.Vos.transient_retries);
    ];
  (* per-thread counters plus the aggregate; only present once the thread
     table exists, so single-threaded metrics snapshots are unchanged *)
  (if Btlib.Vos.thread_count t.vos > 1 then
     let status_name = function
       | Btlib.Vos.Runnable -> "runnable"
       | Btlib.Vos.Blocked_join _ -> "blocked_join"
       | Btlib.Vos.Blocked_futex _ -> "blocked_futex"
       | Btlib.Vos.Exited_t _ -> "exited"
       | Btlib.Vos.Reaped -> "reaped"
     in
     let rows = ref [] in
     for tid = Btlib.Vos.thread_count t.vos - 1 downto 0 do
       match Btlib.Vos.find_thread t.vos tid with
       | Some th ->
         rows :=
           ( Printf.sprintf "t%d" tid,
             Obs.Metrics.Obj
               [
                 ("cycles", i th.Btlib.Vos.t_cycles);
                 ("syscalls", i th.Btlib.Vos.t_syscalls);
                 ("status", Obs.Metrics.Str (status_name th.Btlib.Vos.status));
               ] )
           :: !rows
       | None -> ()
     done;
     Obs.Metrics.section m "threads"
       (("count", i (Btlib.Vos.thread_count t.vos))
       :: ("context_switches", i t.vos.Btlib.Vos.context_switches)
       :: !rows));
  (match t.trace with
  | Some tr ->
    Obs.Metrics.section m "trace"
      [
        ("events", i (Obs.Trace.length tr));
        ("dropped", i (Obs.Trace.dropped tr));
      ]
  | None -> ());
  (match t.profile with
  | Some p ->
    Obs.Metrics.section m "profile"
      (("runtime_cycles", i (Obs.Profile.runtime_cycles p))
      :: ("hot_exec", i (Obs.Profile.hot_exec p))
      :: ("cold_exec", i (Obs.Profile.cold_exec p))
      :: List.map
           (fun (entry, r) ->
             ( Printf.sprintf "0x%x" entry,
               Obs.Metrics.Obj
                 [
                   ("exec", i (Obs.Profile.exec_cycles r));
                   ("hot", i r.Obs.Profile.hot_cycles);
                   ("cold", i r.Obs.Profile.cold_cycles);
                   ("translate", i r.Obs.Profile.translate_cycles);
                   ("recovery", i r.Obs.Profile.recovery_cycles);
                 ] ))
           (Obs.Profile.top 10 p))
  | None -> ());
  (* ia32el-metrics/2 additions — each present only when attached, so
     detached snapshots differ from /1 in the schema string alone *)
  (match t.hists with
  | Some h -> Obs.Metrics.section m "hist" (Obs.Hist.set_to_json h)
  | None -> ());
  (match t.sampler with
  | Some s ->
    Obs.Metrics.section m "sample"
      [
        ("interval", i (Obs.Sample.interval s));
        ("samples", i (Obs.Sample.samples s));
        ("buckets", i (Obs.Sample.bucket_count s));
      ]
  | None -> ());
  (match t.timers with
  | Some tm -> Obs.Metrics.section m "host_timers" (Obs.Timers.to_json tm)
  | None -> ());
  m
