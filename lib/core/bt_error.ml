(* Structured translator errors. Internal invariant violations used to be
   bare [failwith]/[invalid_arg] calls whose messages carried no context;
   the lockstep differential vehicle and the chaos harness need to render
   *where* the translator gave up (component, guest EIP, block id) in their
   diagnosis reports, so every such site raises [Error] instead. *)

type t = {
  component : string; (* "engine", "cold", "hot", "block", "cgen", ... *)
  what : string; (* short description of the violated invariant *)
  eip : int option; (* guest address involved, when known *)
  block : int option; (* translated-block id involved, when known *)
  detail : string option; (* free-form extra context *)
}

exception Error of t

let make ?eip ?block ?detail ~component what =
  { component; what; eip; block; detail }

let fail ?eip ?block ?detail ~component what =
  raise (Error (make ?eip ?block ?detail ~component what))

let to_string e =
  let b = Buffer.create 64 in
  Buffer.add_string b ("bt_error[" ^ e.component ^ "]: " ^ e.what);
  (match e.eip with
  | Some a -> Buffer.add_string b (Printf.sprintf " (eip=0x%x)" a)
  | None -> ());
  (match e.block with
  | Some id -> Buffer.add_string b (Printf.sprintf " (block=%d)" id)
  | None -> ());
  (match e.detail with
  | Some d -> Buffer.add_string b (" — " ^ d)
  | None -> ());
  Buffer.contents b

let pp ppf e = Fmt.string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (to_string e)
    | _ -> None)
