(* Cycle accounting and translator statistics — the measurement
   infrastructure behind the paper's Figures 6 and 7 and the §2/§5 scalar
   statistics (blocks translated, heating rate, speculation success,
   commit-point density, misalignment events). *)

(* Buckets for machine-executed cycles (indexes into Machine.buckets). *)
let bucket_cold = 0
let bucket_hot = 1

type t = {
  (* engine-side cycle charges *)
  mutable overhead_cycles : int; (* translation, dispatch, lookup, faults *)
  mutable other_cycles : int; (* native syscalls / kernel time *)
  mutable idle_cycles : int;
  mutable interp_cycles : int; (* interpret-first mode: first-phase time *)
  (* translation statistics *)
  mutable cold_blocks : int;
  mutable cold_insns : int; (* IA-32 instructions cold-translated *)
  mutable cold_regens : int; (* stage-2 misalignment regenerations *)
  mutable hot_blocks : int;
  mutable hot_insns : int;
  mutable hot_discards : int; (* stage-3 late-misalignment discards *)
  mutable heat_triggers : int;
  mutable heated_blocks : int; (* distinct cold blocks that registered *)
  mutable commit_points : int;
  mutable hot_target_insns : int; (* native instructions emitted hot *)
  mutable dispatches : int;
  mutable chain_patches : int;
  mutable indirect_lookups : int;
  mutable indirect_misses : int;
  (* speculation checks *)
  mutable tos_checks : int;
  mutable tos_misses : int;
  mutable tag_misses : int;
  mutable mode_checks : int;
  mutable mode_misses : int;
  mutable sse_checks : int;
  mutable sse_misses : int;
  (* misalignment *)
  mutable misalign_stage1_hits : int;
  mutable misalign_os_faults : int; (* handled through the expensive path *)
  mutable misalign_avoided : int; (* avoidance sequences emitted (static) *)
  (* exceptions *)
  mutable exceptions_filtered : int;
  mutable rollforwards : int;
  mutable smc_invalidations : int;
  mutable cache_flushes : int; (* wholesale translation-cache flushes *)
  (* graceful degradation (resilience subsystem) *)
  mutable degrade_interp_entries : int; (* entries gone interpret-only *)
  mutable degrade_smc_storms : int; (* source pages degraded by SMC storms *)
  (* guest threads *)
  mutable thread_spawns : int;
  mutable thread_joins : int; (* join calls that completed (Ret) *)
  mutable thread_yields : int;
  mutable futex_waits : int;
  mutable futex_wakes : int;
  mutable thread_switches : int; (* scheduler context switches *)
}

let create () =
  {
    overhead_cycles = 0;
    other_cycles = 0;
    idle_cycles = 0;
    interp_cycles = 0;
    cold_blocks = 0;
    cold_insns = 0;
    cold_regens = 0;
    hot_blocks = 0;
    hot_insns = 0;
    hot_discards = 0;
    heat_triggers = 0;
    heated_blocks = 0;
    commit_points = 0;
    hot_target_insns = 0;
    dispatches = 0;
    chain_patches = 0;
    indirect_lookups = 0;
    indirect_misses = 0;
    tos_checks = 0;
    tos_misses = 0;
    tag_misses = 0;
    mode_checks = 0;
    mode_misses = 0;
    sse_checks = 0;
    sse_misses = 0;
    misalign_stage1_hits = 0;
    misalign_os_faults = 0;
    misalign_avoided = 0;
    exceptions_filtered = 0;
    rollforwards = 0;
    smc_invalidations = 0;
    cache_flushes = 0;
    degrade_interp_entries = 0;
    degrade_smc_storms = 0;
    thread_spawns = 0;
    thread_joins = 0;
    thread_yields = 0;
    futex_waits = 0;
    futex_wakes = 0;
    thread_switches = 0;
  }

(* Event-counter view for coverage consumers (the fuzzer's steering map):
   every statistic that marks an engine *event* rather than a cycle charge,
   as (name, value) pairs. Names are stable identifiers. *)
let counters t =
  [
    ("cold_blocks", t.cold_blocks);
    ("cold_regens", t.cold_regens);
    ("hot_blocks", t.hot_blocks);
    ("hot_discards", t.hot_discards);
    ("heat_triggers", t.heat_triggers);
    ("heated_blocks", t.heated_blocks);
    ("commit_points", t.commit_points);
    ("dispatches", t.dispatches);
    ("chain_patches", t.chain_patches);
    ("indirect_lookups", t.indirect_lookups);
    ("indirect_misses", t.indirect_misses);
    ("tos_checks", t.tos_checks);
    ("tos_misses", t.tos_misses);
    ("tag_misses", t.tag_misses);
    ("mode_checks", t.mode_checks);
    ("mode_misses", t.mode_misses);
    ("sse_checks", t.sse_checks);
    ("sse_misses", t.sse_misses);
    ("misalign_stage1_hits", t.misalign_stage1_hits);
    ("misalign_os_faults", t.misalign_os_faults);
    ("misalign_avoided", t.misalign_avoided);
    ("exceptions_filtered", t.exceptions_filtered);
    ("rollforwards", t.rollforwards);
    ("smc_invalidations", t.smc_invalidations);
    ("cache_flushes", t.cache_flushes);
    ("degrade_interp_entries", t.degrade_interp_entries);
    ("degrade_smc_storms", t.degrade_smc_storms);
    ("thread_spawns", t.thread_spawns);
    ("thread_joins", t.thread_joins);
    ("thread_yields", t.thread_yields);
    ("futex_waits", t.futex_waits);
    ("futex_wakes", t.futex_wakes);
    ("thread_switches", t.thread_switches);
  ]

(* Every field of [t], in declaration order. The drift-guard test checks
   this list against the record's physical layout (via [Obj.size]) and
   that [counters] plus [non_event_fields] partition it, so a counter
   added to the record but forgotten here — or in [counters] — fails
   `dune runtest` instead of silently vanishing from fuzzer steering. *)
let all_fields t =
  [
    ("overhead_cycles", t.overhead_cycles);
    ("other_cycles", t.other_cycles);
    ("idle_cycles", t.idle_cycles);
    ("interp_cycles", t.interp_cycles);
    ("cold_blocks", t.cold_blocks);
    ("cold_insns", t.cold_insns);
    ("cold_regens", t.cold_regens);
    ("hot_blocks", t.hot_blocks);
    ("hot_insns", t.hot_insns);
    ("hot_discards", t.hot_discards);
    ("heat_triggers", t.heat_triggers);
    ("heated_blocks", t.heated_blocks);
    ("commit_points", t.commit_points);
    ("hot_target_insns", t.hot_target_insns);
    ("dispatches", t.dispatches);
    ("chain_patches", t.chain_patches);
    ("indirect_lookups", t.indirect_lookups);
    ("indirect_misses", t.indirect_misses);
    ("tos_checks", t.tos_checks);
    ("tos_misses", t.tos_misses);
    ("tag_misses", t.tag_misses);
    ("mode_checks", t.mode_checks);
    ("mode_misses", t.mode_misses);
    ("sse_checks", t.sse_checks);
    ("sse_misses", t.sse_misses);
    ("misalign_stage1_hits", t.misalign_stage1_hits);
    ("misalign_os_faults", t.misalign_os_faults);
    ("misalign_avoided", t.misalign_avoided);
    ("exceptions_filtered", t.exceptions_filtered);
    ("rollforwards", t.rollforwards);
    ("smc_invalidations", t.smc_invalidations);
    ("cache_flushes", t.cache_flushes);
    ("degrade_interp_entries", t.degrade_interp_entries);
    ("degrade_smc_storms", t.degrade_smc_storms);
    ("thread_spawns", t.thread_spawns);
    ("thread_joins", t.thread_joins);
    ("thread_yields", t.thread_yields);
    ("futex_waits", t.futex_waits);
    ("futex_wakes", t.futex_wakes);
    ("thread_switches", t.thread_switches);
  ]

(* Fields that are cycle charges or volume tallies, not event marks —
   deliberately excluded from [counters]. *)
let non_event_fields =
  [
    "overhead_cycles";
    "other_cycles";
    "idle_cycles";
    "interp_cycles";
    "cold_insns";
    "hot_insns";
    "hot_target_insns";
  ]

type distribution = {
  hot : int;
  cold : int;
  overhead : int;
  other : int;
  idle : int;
  total : int;
}

(* Final execution-time distribution, given the machine's per-bucket
   counters. *)
let distribution t (machine : Ipf.Machine.t) =
  (* interpreted first-phase time counts as "cold" (it plays the cold-code
     role in the FX!32-style configuration) *)
  let cold = machine.Ipf.Machine.buckets.(bucket_cold) + t.interp_cycles in
  let hot = machine.Ipf.Machine.buckets.(bucket_hot) in
  let total = cold + hot + t.overhead_cycles + t.other_cycles + t.idle_cycles in
  {
    hot;
    cold;
    overhead = t.overhead_cycles;
    other = t.other_cycles;
    idle = t.idle_cycles;
    total;
  }

let pp_distribution ppf d =
  let pct x = if d.total = 0 then 0.0 else 100.0 *. Float.of_int x /. Float.of_int d.total in
  Fmt.pf ppf
    "hot %.1f%%  cold %.1f%%  overhead %.1f%%  other %.1f%%  idle %.1f%%  (total %d cycles)"
    (pct d.hot) (pct d.cold) (pct d.overhead) (pct d.other) (pct d.idle) d.total

(* Snapshot support: [copy] clones the counter record, [blit] writes a
   clone's values back into a live record in place — the engine reverts
   its accounting to a checkpoint without replacing the record object
   (closures and the cold-translation env hold references to it). *)
let copy t = { t with overhead_cycles = t.overhead_cycles }

(* Fieldwise difference [a - b], for capturing what a bounded stretch of
   engine work charged: snapshot before, subtract after. Record literal on
   purpose — adding a field to [t] without updating this breaks the build. *)
let sub a b =
  {
    overhead_cycles = a.overhead_cycles - b.overhead_cycles;
    other_cycles = a.other_cycles - b.other_cycles;
    idle_cycles = a.idle_cycles - b.idle_cycles;
    interp_cycles = a.interp_cycles - b.interp_cycles;
    cold_blocks = a.cold_blocks - b.cold_blocks;
    cold_insns = a.cold_insns - b.cold_insns;
    cold_regens = a.cold_regens - b.cold_regens;
    hot_blocks = a.hot_blocks - b.hot_blocks;
    hot_insns = a.hot_insns - b.hot_insns;
    hot_discards = a.hot_discards - b.hot_discards;
    heat_triggers = a.heat_triggers - b.heat_triggers;
    heated_blocks = a.heated_blocks - b.heated_blocks;
    commit_points = a.commit_points - b.commit_points;
    hot_target_insns = a.hot_target_insns - b.hot_target_insns;
    dispatches = a.dispatches - b.dispatches;
    chain_patches = a.chain_patches - b.chain_patches;
    indirect_lookups = a.indirect_lookups - b.indirect_lookups;
    indirect_misses = a.indirect_misses - b.indirect_misses;
    tos_checks = a.tos_checks - b.tos_checks;
    tos_misses = a.tos_misses - b.tos_misses;
    tag_misses = a.tag_misses - b.tag_misses;
    mode_checks = a.mode_checks - b.mode_checks;
    mode_misses = a.mode_misses - b.mode_misses;
    sse_checks = a.sse_checks - b.sse_checks;
    sse_misses = a.sse_misses - b.sse_misses;
    misalign_stage1_hits = a.misalign_stage1_hits - b.misalign_stage1_hits;
    misalign_os_faults = a.misalign_os_faults - b.misalign_os_faults;
    misalign_avoided = a.misalign_avoided - b.misalign_avoided;
    exceptions_filtered = a.exceptions_filtered - b.exceptions_filtered;
    rollforwards = a.rollforwards - b.rollforwards;
    smc_invalidations = a.smc_invalidations - b.smc_invalidations;
    cache_flushes = a.cache_flushes - b.cache_flushes;
    degrade_interp_entries = a.degrade_interp_entries - b.degrade_interp_entries;
    degrade_smc_storms = a.degrade_smc_storms - b.degrade_smc_storms;
    thread_spawns = a.thread_spawns - b.thread_spawns;
    thread_joins = a.thread_joins - b.thread_joins;
    thread_yields = a.thread_yields - b.thread_yields;
    futex_waits = a.futex_waits - b.futex_waits;
    futex_wakes = a.futex_wakes - b.futex_wakes;
    thread_switches = a.thread_switches - b.thread_switches;
  }

let blit ~src ~dst =
  dst.overhead_cycles <- src.overhead_cycles;
  dst.other_cycles <- src.other_cycles;
  dst.idle_cycles <- src.idle_cycles;
  dst.interp_cycles <- src.interp_cycles;
  dst.cold_blocks <- src.cold_blocks;
  dst.cold_insns <- src.cold_insns;
  dst.cold_regens <- src.cold_regens;
  dst.hot_blocks <- src.hot_blocks;
  dst.hot_insns <- src.hot_insns;
  dst.hot_discards <- src.hot_discards;
  dst.heat_triggers <- src.heat_triggers;
  dst.heated_blocks <- src.heated_blocks;
  dst.commit_points <- src.commit_points;
  dst.hot_target_insns <- src.hot_target_insns;
  dst.dispatches <- src.dispatches;
  dst.chain_patches <- src.chain_patches;
  dst.indirect_lookups <- src.indirect_lookups;
  dst.indirect_misses <- src.indirect_misses;
  dst.tos_checks <- src.tos_checks;
  dst.tos_misses <- src.tos_misses;
  dst.tag_misses <- src.tag_misses;
  dst.mode_checks <- src.mode_checks;
  dst.mode_misses <- src.mode_misses;
  dst.sse_checks <- src.sse_checks;
  dst.sse_misses <- src.sse_misses;
  dst.misalign_stage1_hits <- src.misalign_stage1_hits;
  dst.misalign_os_faults <- src.misalign_os_faults;
  dst.misalign_avoided <- src.misalign_avoided;
  dst.exceptions_filtered <- src.exceptions_filtered;
  dst.rollforwards <- src.rollforwards;
  dst.smc_invalidations <- src.smc_invalidations;
  dst.cache_flushes <- src.cache_flushes;
  dst.degrade_interp_entries <- src.degrade_interp_entries;
  dst.degrade_smc_storms <- src.degrade_smc_storms;
  dst.thread_spawns <- src.thread_spawns;
  dst.thread_joins <- src.thread_joins;
  dst.thread_yields <- src.thread_yields;
  dst.futex_waits <- src.futex_waits;
  dst.futex_wakes <- src.futex_wakes;
  dst.thread_switches <- src.thread_switches

(* Accumulate a delta produced by [sub] into a live record: replaying the
   accounting of work that was skipped (e.g. a translation served from the
   persistent cache must charge exactly what translating it live would).
   dst + d == dst - (0 - d), so [sub]'s compile-checked field coverage
   carries over. *)
let add_into ~dst d = blit ~src:(sub dst (sub (create ()) d)) ~dst
