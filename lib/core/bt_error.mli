(** Structured translator errors.

    Replaces the bare [failwith]/[invalid_arg] sites in the translator
    core: an internal invariant violation carries the component it came
    from plus the guest EIP / block id involved, so the lockstep
    differential vehicle and the chaos harness can render a useful
    diagnosis instead of an anonymous string. *)

type t = {
  component : string;  (** "engine", "cold", "hot", "block", "cgen", ... *)
  what : string;  (** short description of the violated invariant *)
  eip : int option;  (** guest address involved, when known *)
  block : int option;  (** translated-block id involved, when known *)
  detail : string option;  (** free-form extra context *)
}

exception Error of t

val make :
  ?eip:int -> ?block:int -> ?detail:string -> component:string -> string -> t

val fail :
  ?eip:int -> ?block:int -> ?detail:string -> component:string -> string -> 'a
(** @raise Error always. *)

val to_string : t -> string
val pp : t Fmt.t
