(* Lockstep differential vehicle: run the translator engine and the
   reference interpreter side-by-side over the same guest, synchronising
   at the engine's commit events (syscalls, precise faults, exit) and
   comparing the full architectural state at each one — GPRs, EFLAGS, the
   logical x87 stack, XMM registers and guest memory.

   The engine's internal structure (block shapes, hot commit points,
   speculation recoveries) is invisible to the comparison: only the
   points where guest behaviour is observable are compared, which is
   exactly the translator's precise-state contract (paper §4). A chaos
   injector (Harness.Inject) can perturb the engine between commits; any
   perturbation that is not semantics-preserving shows up here as a
   divergence with a structured diagnosis. *)

module M = Ipf.Machine

(* One architectural-state mismatch at a commit event. [window] is the
   minimized reproducer: the reference instructions executed since the
   previous matched commit point, i.e. the guest code whose translation
   went wrong. *)
type divergence = {
  commit_index : int; (* ordinal of the first diverging commit point *)
  event : Engine.commit_event;
  diffs : string list; (* per-field differences, human-readable *)
  engine_state : Ia32.State.t;
  reference_state : Ia32.State.t;
  window : string list; (* reference insns since the last good commit *)
}

type report = {
  commits : int; (* commit events compared *)
  outcome : Engine.outcome option; (* None when the run diverged *)
  divergence : divergence option;
}

exception Diverged of divergence

let pp_event ppf = function
  | Engine.Commit_syscall n -> Fmt.pf ppf "syscall %d" n
  | Engine.Commit_fault f -> Fmt.pf ppf "fault %s" (Ia32.Fault.to_string f)
  | Engine.Commit_exit c -> Fmt.pf ppf "exit %d" c

let pp_divergence ppf d =
  Fmt.pf ppf "@[<v>divergence at commit point #%d (%a):@," d.commit_index
    pp_event d.event;
  List.iter (fun s -> Fmt.pf ppf "  %s@," s) d.diffs;
  if d.window <> [] then begin
    Fmt.pf ppf "reproducer window (reference, since last good commit):@,";
    List.iter (fun s -> Fmt.pf ppf "  %s@," s) d.window
  end;
  Fmt.pf ppf "@]"

(* Skip the translator's profile arena: it lives in engine memory only. *)
let arena_page p =
  p >= Block.arena_base lsr Ia32.Memory.page_bits
  && p < (Block.arena_base + Block.arena_size) lsr Ia32.Memory.page_bits

(* Full architectural diff between the engine's precise state and the
   reference's, as a list of per-field descriptions (empty = equal). The
   x87 comparison is TOS-relative: a physical rotation recovery leaves
   the engine's TOP legitimately different. *)
let diff_states (est : Ia32.State.t) (rst : Ia32.State.t) =
  let ds = ref [] in
  let add fmt = Printf.ksprintf (fun s -> ds := s :: !ds) fmt in
  if est.Ia32.State.eip <> rst.Ia32.State.eip then
    add "eip: engine %#x vs reference %#x" est.Ia32.State.eip
      rst.Ia32.State.eip;
  for i = 0 to 7 do
    if est.Ia32.State.regs.(i) <> rst.Ia32.State.regs.(i) then
      add "%s: engine %#x vs reference %#x"
        (Ia32.Insn.reg_name (Ia32.Insn.reg_of_index i))
        est.Ia32.State.regs.(i) rst.Ia32.State.regs.(i)
  done;
  let flag name a b = if a <> b then add "%s: engine %b vs reference %b" name a b in
  flag "cf" est.Ia32.State.cf rst.Ia32.State.cf;
  flag "pf" est.Ia32.State.pf rst.Ia32.State.pf;
  flag "af" est.Ia32.State.af rst.Ia32.State.af;
  flag "zf" est.Ia32.State.zf rst.Ia32.State.zf;
  flag "sf" est.Ia32.State.sf rst.Ia32.State.sf;
  flag "of" est.Ia32.State.of_ rst.Ia32.State.of_;
  flag "df" est.Ia32.State.df rst.Ia32.State.df;
  if not (Ia32.Fpu.logical_equal est.Ia32.State.fpu rst.Ia32.State.fpu) then
    add "x87: engine [%s] vs reference [%s]"
      (Fmt.str "%a" Ia32.Fpu.pp est.Ia32.State.fpu)
      (Fmt.str "%a" Ia32.Fpu.pp rst.Ia32.State.fpu);
  for i = 0 to 7 do
    if
      not
        (Int64.equal est.Ia32.State.xmm_lo.(i) rst.Ia32.State.xmm_lo.(i)
        && Int64.equal est.Ia32.State.xmm_hi.(i) rst.Ia32.State.xmm_hi.(i))
    then
      add "xmm%d: engine %Lx:%Lx vs reference %Lx:%Lx" i
        est.Ia32.State.xmm_hi.(i) est.Ia32.State.xmm_lo.(i)
        rst.Ia32.State.xmm_hi.(i) rst.Ia32.State.xmm_lo.(i)
  done;
  (match
     Ia32.Memory.first_diff ~skip:arena_page est.Ia32.State.mem
       rst.Ia32.State.mem
   with
  | Some addr ->
    let b m = try Ia32.Memory.read8 m addr with _ -> -1 in
    add "memory: first difference at %#x (engine %02x vs reference %02x)"
      addr
      (b est.Ia32.State.mem)
      (b rst.Ia32.State.mem)
  | None -> ());
  List.rev !ds

(* The reference vehicle's next observable event. *)
type ref_event =
  | R_syscall of int
  | R_fault of Ia32.Fault.t
  | R_timeout (* no event within the step bound: control-flow divergence *)

let window_cap = 32

(* A persistent differential session: the engine and the reference
   vehicle, created once and reusable across many runs. [run] builds a
   throwaway session; the fork-server ({!Harness.Fuzz}) keeps one alive
   and snapshots/reverts both sides around each mutated input. *)
type session = {
  engine : Engine.t;
  ref_mem : Ia32.Memory.t;
  ref_vos : Btlib.Vos.t;
  st0 : Ia32.State.t; (* engine main-thread state *)
  rst0 : Ia32.State.t; (* reference main-thread state *)
  btlib : (module Btlib.Btos.S);
  base_commit : (Engine.commit_event -> Ia32.State.t -> unit) option;
      (* observer [attach] installed (e.g. a capsule recorder): composed
         before the lockstep observer on every [run_in], so it sees the
         diverging commit before [Diverged] raises and survives repeated
         runs without chaining onto stale closures *)
}

let create ?config ?cost ?dcache ?(attach = fun (_ : Engine.t) -> ()) ~btlib
    mem (st0 : Ia32.State.t) =
  (* deep-copy guest memory for the reference BEFORE the engine maps its
     profile arena into the shared image *)
  let ref_mem = Ia32.Memory.copy mem in
  let rst = { (Ia32.State.copy st0) with Ia32.State.mem = ref_mem } in
  let ref_vos = Btlib.Vos.create ref_mem in
  (* The reference is thread-aware but never schedules: its thread
     selection is slaved to the engine's commit stream (see [sync_thread]
     below), so both vehicles always run the same guest thread at each
     commit point. *)
  Btlib.Vos.register_main ref_vos rst;
  let engine = Engine.create ?config ?cost ?dcache ~btlib mem in
  (* Register the engine's main thread now rather than waiting for
     [Engine.run] (which does so idempotently): a snapshot taken before
     the first run must already see it in the thread table, or reverting
     would not restore the main state. *)
  Btlib.Vos.register_main engine.Engine.vos st0;
  attach engine;
  let base_commit = engine.Engine.on_commit in
  { engine; ref_mem; ref_vos; st0; rst0 = rst; btlib; base_commit }

let engine s = s.engine
let reference_mem s = s.ref_mem
let reference_vos s = s.ref_vos

let run_in ?(fuel = max_int) ?(max_gap = 1_000_000_000) s =
  let module L = (val s.btlib : Btlib.Btos.S) in
  let engine = s.engine in
  let ref_mem = s.ref_mem in
  let ref_vos = s.ref_vos in
  let cur = ref s.rst0 in
  let commits = ref 0 in
  let ref_exited = ref None in
  (* reproducer ring buffer: reference insns since the last good commit *)
  let window = Array.make window_cap "" in
  let wlen = ref 0 and wnext = ref 0 in
  let wreset () =
    wlen := 0;
    wnext := 0
  in
  let wpush () =
    let rst = !cur in
    let s =
      match Ia32.Decode.decode ref_mem rst.Ia32.State.eip with
      | insn, _ ->
        Printf.sprintf "%#x: %s" rst.Ia32.State.eip (Ia32.Insn.to_string insn)
      | exception _ -> Printf.sprintf "%#x: <unfetchable>" rst.Ia32.State.eip
    in
    window.(!wnext) <- s;
    wnext := (!wnext + 1) mod window_cap;
    if !wlen < window_cap then incr wlen
  in
  let wcontents () =
    List.init !wlen (fun i ->
        window.((!wnext - !wlen + i + window_cap) mod window_cap))
  in
  let diverge event diffs est =
    raise
      (Diverged
         {
           commit_index = !commits;
           event;
           diffs;
           engine_state = est;
           reference_state = Ia32.State.copy !cur;
           window = wcontents ();
         })
  in
  (* advance the reference interpreter to its next observable event *)
  let step_ref_to_event () =
    let rst = !cur in
    let steps = ref 0 in
    let rec go () =
      if !steps > max_gap then R_timeout
      else begin
        wpush ();
        match Ia32.Interp.step rst with
        | Ia32.Interp.Normal ->
          incr steps;
          go ()
        | Ia32.Interp.Syscall n -> R_syscall n
        | Ia32.Interp.Faulted f -> R_fault f
      end
    in
    go ()
  in
  let compare_at event est =
    match diff_states est !cur with
    | [] ->
      incr commits;
      wreset ()
    | diffs -> diverge event diffs est
  in
  (* Select the reference thread matching the engine's committing thread.
     At a commit the engine has not yet rescheduled, so [current_tid] is
     the thread whose syscall/fault this is. A thread resuming from a
     blocking syscall is owed its wake value (join result, futex wake) —
     the engine encodes it at resume; the reference encodes it here, at
     the thread's first commit after waking, which is the same
     architectural point. *)
  let sync_thread () =
    let tid = Engine.current_tid engine in
    Btlib.Vos.set_current ref_vos tid;
    match Btlib.Vos.find_thread ref_vos tid with
    | Some th ->
      cur := th.Btlib.Vos.state;
      (match Btlib.Vos.take_wake th with
      | Some v -> L.encode_result th.Btlib.Vos.state v
      | None -> ())
    | None -> ()
  in
  let mismatch event got est =
    let expected = Fmt.str "%a" pp_event event in
    diverge event
      [ Printf.sprintf "event: engine reached %s, reference %s" expected got ]
      est
  in
  let on_commit event (est : Ia32.State.t) =
    sync_thread ();
    match event with
    | Engine.Commit_syscall n -> (
      match step_ref_to_event () with
      | R_syscall rn when rn = n -> (
        compare_at event est;
        let rst = !cur in
        let call = L.decode_syscall rst in
        match L.perform ref_vos rst call with
        | Btlib.Syscall.Exited code -> ref_exited := Some code
        | Btlib.Syscall.Ret v -> L.encode_result rst v
        | Btlib.Syscall.Block ->
          (* thread parked in the reference table; the engine's commit
             stream will select the next thread via [sync_thread] *)
          ())
      | R_syscall rn ->
        mismatch event (Printf.sprintf "syscall %d" rn) est
      | R_fault f ->
        mismatch event ("fault " ^ Ia32.Fault.to_string f) est
      | R_timeout -> mismatch event "no commit event (step bound hit)" est)
    | Engine.Commit_fault f -> (
      let deliver rf =
        compare_at event est;
        match L.deliver_exception ref_vos !cur rf with
        | Btlib.Vos.Resumed -> ()
        | Btlib.Vos.Unhandled _ -> ()
        (* unhandled on both sides: the outcomes are compared at the end *)
      in
      match step_ref_to_event () with
      | R_fault rf when Ia32.Fault.equal rf f -> deliver rf
      | R_syscall rn when rn <> L.syscall_vector && f = Ia32.Fault.Breakpoint
        ->
        (* a foreign syscall vector traps: the engine reports it as a
           breakpoint fault; the reference sees the raw syscall *)
        deliver Ia32.Fault.Breakpoint
      | R_fault rf ->
        mismatch event ("fault " ^ Ia32.Fault.to_string rf) est
      | R_syscall rn ->
        mismatch event (Printf.sprintf "syscall %d" rn) est
      | R_timeout -> mismatch event "no commit event (step bound hit)" est)
    | Engine.Commit_exit code -> (
      match !ref_exited with
      | Some rc when rc = code -> compare_at event est
      | Some rc ->
        mismatch event (Printf.sprintf "exit %d" rc) est
      | None ->
        (* engine exit without a preceding exit syscall (machine-level
           program end): the reference cannot observe this *)
        mismatch event "still running" est)
  in
  let full_commit =
    match s.base_commit with
    | None -> on_commit
    | Some base ->
      fun event est ->
        base event est;
        on_commit event est
  in
  engine.Engine.on_commit <- Some full_commit;
  match Engine.run ~fuel engine s.st0 with
  | outcome -> { commits = !commits; outcome = Some outcome; divergence = None }
  | exception Diverged d ->
    { commits = !commits; outcome = None; divergence = Some d }

let run ?config ?cost ?dcache ?fuel ?max_gap ?attach ~btlib mem
    (st0 : Ia32.State.t) =
  let s = create ?config ?cost ?dcache ?attach ~btlib mem st0 in
  run_in ?fuel ?max_gap s
