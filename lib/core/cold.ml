(* Cold code generation (paper §2, Figure 1): basic-block granularity with
   neighbourhood analysis for EFLAGS liveness, template-based emission with
   per-instruction stops (no reordering), instrumentation (use counter with
   heat trigger, taken-edge counter, stage-1/2 misalignment machinery), the
   IA-32 state register protocol for precise exceptions, and block-head
   speculation checks for x87/MMX/SSE state. *)

open Templates
module I = Ipf.Insn

type env = {
  config : Config.t;
  tcache : Ipf.Tcache.t;
  cache : Block.cache;
  mem : Ia32.Memory.t;
  acct : Account.t;
}

exception Cannot_translate of int (* entry address: undecodable/unmapped *)

(* Fusion candidate: the following instruction consumes only flags this one
   defines. *)
let fusable_consumer insns k =
  if k + 1 >= Array.length insns then None
  else
    let _, producer = insns.(k) in
    let caddr, consumer = insns.(k + 1) in
    let c =
      match consumer with
      | Ia32.Insn.Jcc (c, _) | Ia32.Insn.Setcc (c, _) | Ia32.Insn.Cmovcc (c, _, _)
        ->
        Some c
      | _ -> None
    in
    match c with
    | Some c
      when List.for_all
             (fun f -> List.mem f (Ia32.Insn.flags_def_must producer))
             (Ia32.Insn.cond_uses c) ->
      Some (c, caddr)
    | _ -> None

(* Build a cold-translation context over a Cgen buffer. *)
let make_ctx env cg ~block_id ~entry_tos ~stage2 ~ma_base ~edge_addr ~edge_slot
    ~is_cond =
  let scratch = ref Regs.hot_pool_first in
  let fscratch = ref Regs.cold_fscratch_first in
  let pscratch = ref Regs.pr_scratch1 in
  let counted_avoid = Hashtbl.create 4 in
  let misalign_policy idx _width =
    if not env.config.misalign_avoidance then Ma_plain
    else if stage2 then begin
      (* templates may query the policy more than once per access *)
      if not (Hashtbl.mem counted_avoid idx) then begin
        Hashtbl.replace counted_avoid idx ();
        env.acct.Account.misalign_avoided <-
          env.acct.Account.misalign_avoided + 1
      end;
      Ma_avoid_record (1, ma_base + (4 * idx))
    end
    else Ma_detect
  in
  let ctx =
    {
      emit = (fun i -> Cgen.emit cg i);
      emit_stop = (fun () -> Cgen.stop cg);
      new_label = (fun () -> Cgen.new_label cg);
      bind = (fun l -> Cgen.bind cg l);
      local = (fun l -> Cgen.local l);
      fresh =
        (fun () ->
          let r = !scratch in
          if r > Regs.hot_pool_last then
            Bt_error.fail ~component:"cold" ~block:block_id "scratch overflow";
          scratch := r + 1;
          r);
      ffresh =
        (fun () ->
          let r = !fscratch in
          if r > Regs.cold_fscratch_last then
            Bt_error.fail ~component:"cold" ~block:block_id "fscratch overflow";
          fscratch := r + 1;
          r);
      pfresh =
        (fun () ->
          let p = !pscratch in
          if p > Regs.hot_pr_last then
            Bt_error.fail ~component:"cold" ~block:block_id "pscratch overflow";
          pscratch := p + 1;
          p);
      ea = default_ea;
      goto =
        (fun ctx target ->
          emit_fp_exit_update ctx;
          emit_sse_exit_update ctx;
          emit ctx (I.Br (I.Out (I.Dispatch target)));
          stop ctx);
      goto_if =
        (fun ctx ~pr target ->
          (* taken-edge counter, bumped under the taken predicate *)
          (if is_cond && env.config.two_phase then
             if env.config.enable_hot_counters then
               (* one saturating counter slot, hashed from the block entry
                  (the address the hot-phase profile queries for taken
                  bias) *)
               emitp ctx pr (I.Edgec edge_slot)
             else begin
               let t = imm ctx edge_addr in
               stop ctx;
               let v = ctx.fresh () in
               emitp ctx pr (I.Ld (4, I.Ld_none, v, t));
               stop ctx;
               let v' = ctx.fresh () in
               emitp ctx pr (I.Addi (v', 1, v));
               stop ctx;
               emitp ctx pr (I.St (4, t, v'))
             end);
          emit_fp_exit_update ~qp:pr ctx;
          emit_sse_exit_update ~qp:pr ctx;
          emitp ctx pr (I.Br (I.Out (I.Dispatch target)));
          stop ctx);
      indirect =
        (fun ctx ->
          emit_fp_exit_update ctx;
          emit_sse_exit_update ctx;
          emit ctx (I.Br (I.Out I.Indirect));
          stop ctx);
      syscall =
        (fun ctx n ->
          emit_fp_exit_update ctx;
          emit_sse_exit_update ctx;
          emit ctx (I.Movi (Regs.r_state, Int64.of_int ctx.next_ip));
          stop ctx;
          emit ctx (I.Br (I.Out (I.Syscall n)));
          stop ctx);
      guest_fault =
        (fun ctx ?pr v ->
          let sem = I.Br (I.Out (I.Guest_fault (ctx.cur_ip, v))) in
          (match pr with Some p -> emitp ctx p sem | None -> emit ctx sem);
          stop ctx);
      misalign_out =
        (fun ctx ~pr ->
          emitp ctx pr (I.Br (I.Out (I.Misalign_regen block_id)));
          stop ctx);
      fp = Fpmap.create ~entry_tos;
      xmm_fmt = Array.make 8 (-1);
      xmm_entry = Array.make 8 (-1);
      uses_mmx = false;
      mmx_exit_tag = 0xFF;
      mmx_written = 0;
      cur_ip = 0;
      next_ip = 0;
      plan = Plan_none;
      fused_pred = None;
      last_producer = None;
      access_idx = 0;
      misalign_policy;
      ma_pred_cache = Hashtbl.create 8;
      config = env.config;
    }
  in
  let reset_scratch ~keep_preds =
    scratch := Regs.hot_pool_first;
    fscratch := Regs.cold_fscratch_first;
    if not keep_preds then pscratch := Regs.pr_scratch1;
    (* the misalignment predicate cache only holds within one instruction
       in cold code (scratch registers are reused) *)
    Hashtbl.reset ctx.ma_pred_cache
  in
  (ctx, reset_scratch)

(* Translate one cold block at [entry]. [entry_tos] is the runtime TOS at
   translation time (the speculation); [stage2] selects the regenerated
   misalignment-avoiding variant. *)
let translate env ~entry ~entry_tos ~stage2 =
  let region =
    try
      Discover.discover ~max_blocks:env.config.neighborhood_blocks env.mem
        ~entry
    with Ia32.Decode.Invalid _ | Ia32.Fault.Fault _ -> raise (Cannot_translate entry)
  in
  let bb =
    match Hashtbl.find_opt region.Discover.blocks entry with
    | Some bb when Array.length bb.Discover.insns > 0 -> bb
    | _ -> raise (Cannot_translate entry)
  in
  let live_out = Discover.flags_liveness region in
  let id = Block.fresh_id env.cache in
  let ctr_addr = Block.alloc_arena env.cache 2 in
  let edge_addr = ctr_addr + 4 in
  let n_acc =
    Array.fold_left
      (fun a (_, i) -> a + List.length (Ia32.Insn.mem_refs i))
      0 bb.Discover.insns
  in
  let ma_base = Block.alloc_arena env.cache (max 1 n_acc) in
  let is_cond = match bb.Discover.term with Discover.T_jcc _ -> true | _ -> false in
  let cg = Cgen.create () in
  let ctx, reset_scratch =
    make_ctx env cg ~block_id:id ~entry_tos ~stage2 ~ma_base ~edge_addr
      ~edge_slot:(Ipf.Machine.counter_slot entry) ~is_cond
  in
  let fp_recovery = Hashtbl.create 8 in
  let insns = bb.Discover.insns in
  let n = Array.length insns in
  let skip_plan = ref false in
  let exception Stop_block in
  (try
  for k = 0 to n - 1 do
    let addr, insn = insns.(k) in
    let next = if k + 1 < n then fst insns.(k + 1) else bb.Discover.next in
    ctx.cur_ip <- addr;
    ctx.next_ip <- next;
    reset_scratch ~keep_preds:(ctx.fused_pred <> None);
    (* flag plan *)
    let defs = Ia32.Insn.flags_def insn in
    let live = Discover.flags_to_set live_out addr insn in
    ctx.plan <-
      (if defs = [] then Plan_none
       else if not env.config.enable_flag_elim then Plan_set defs
       else if !skip_plan then if live = [] then Plan_none else Plan_set live
       else
         match fusable_consumer insns k with
         | Some (c, caddr) ->
           let mask =
             match Hashtbl.find_opt live_out caddr with
             | Some m -> m
             | None -> Discover.all_flags_mask
           in
           (* A faulting fused consumer (cmov/setcc with a bad or misaligned
              memory operand) is reconstructed and re-translated starting at
              its own address, where it reads the producer's flags from
              canonic state: those flags must be materialized, not only
              folded into the fused predicate. *)
           let mask =
             let _, consumer = insns.(k + 1) in
             if Ia32.Insn.may_fault consumer then
               mask lor Discover.mask_of_flags (Ia32.Insn.flags_use consumer)
             else mask
           in
           let extra =
             List.filter
               (fun f -> mask land Discover.flag_bit f <> 0)
               defs
           in
           Plan_fuse (c, extra)
         | None -> if live = [] then Plan_none else Plan_set live);
    skip_plan := false;
    (match ctx.plan with Plan_fuse _ -> skip_plan := true | _ -> ());
    (* the IA-32 state register protocol: record the source IP before any
       potentially faulty sequence, plus an FP snapshot for reconstruction *)
    if Ia32.Insn.may_fault insn then begin
      emit ctx (I.Movi (Regs.r_state, Int64.of_int addr));
      stop ctx;
      let snap =
        if ctx.uses_mmx then
          { (Block.identity_snapshot ~entry_tos:0) with
            Block.s_set_valid = ctx.mmx_exit_tag;
            Block.s_written = ctx.mmx_written;
            Block.s_mmx = true }
        else Block.snapshot_of_fpmap ctx.fp
      in
      let snap = { snap with Block.s_xmm_fmt = Array.copy ctx.xmm_fmt } in
      Hashtbl.replace fp_recovery addr snap
    end;
    (try Templates.emit_insn ctx insn
     with Fpmap.Static_fault ->
       (* the block's own FP code is statically guaranteed to stack-fault:
          raise it precisely and stop translating the block *)
       ctx.guest_fault ctx 16;
       raise Stop_block);
    stop ctx;
    env.acct.Account.cold_insns <- env.acct.Account.cold_insns + 1
  done;
  (* fallthrough exits *)
  (match bb.Discover.term with
  | Discover.T_jcc (_, _, fall) -> ctx.goto ctx fall
  | Discover.T_fallthrough next -> ctx.goto ctx next
  | Discover.T_jmp _ | Discover.T_call _ | Discover.T_indirect
  | Discover.T_syscall _ | Discover.T_fault ->
    ())
  with Stop_block -> ());
  (* block head: entry checks + instrumentation, prepended *)
  let head = Cgen.create () in
  let hctx, _ = make_ctx env head ~block_id:id ~entry_tos ~stage2 ~ma_base
      ~edge_addr ~edge_slot:(Ipf.Machine.counter_slot entry) ~is_cond in
  (* speculation checks use the body's accumulated requirements *)
  let hctx =
    { hctx with
      fp = ctx.fp;
      uses_mmx = ctx.uses_mmx }
  in
  Array.blit ctx.xmm_entry 0 hctx.xmm_entry 0 8;
  if env.config.mmx_mode_speculation then begin
    if ctx.uses_mmx then emit_mode_check hctx ~block_id:id ~mmx:true
    else if ctx.fp.Fpmap.used then emit_mode_check hctx ~block_id:id ~mmx:false
  end;
  if env.config.fp_stack_speculation then begin
    if ctx.uses_mmx then begin
      (* MMX accesses are absolute: require canonic parking *)
      emit_park_check hctx ~block_id:id;
      env.acct.Account.tos_checks <- env.acct.Account.tos_checks + 1
    end
    else begin
      emit_fp_entry_check hctx ~block_id:id;
      if ctx.fp.Fpmap.used then
        env.acct.Account.tos_checks <- env.acct.Account.tos_checks + 1
    end
  end;
  if env.config.sse_format_speculation then emit_sse_entry_check hctx ~block_id:id;
  (* use counter + heat trigger — also in interpret-first mode, where cold
     blocks exist only as fallbacks for failed hot translations and must
     still be able to re-heat *)
  if env.config.two_phase then
    if env.config.enable_hot_counters then begin
      (* one saturating counter slot replaces the 9-slot load/add/store/
         compare/branch stub: the Hotc uop bumps the hashed slot and
         leaves with [Heat id] at the threshold *)
      emit hctx
        (I.Hotc
           (Ipf.Machine.counter_slot entry, env.config.heat_threshold, id));
      stop hctx
    end
    else begin
      let t = imm hctx ctr_addr in
      stop hctx;
      let v = hctx.fresh () in
      emit hctx (I.Ld (4, I.Ld_none, v, t));
      stop hctx;
      let v' = hctx.fresh () in
      emit hctx (I.Addi (v', 1, v));
      stop hctx;
      emit hctx (I.St (4, t, v'));
      let p_hot = hctx.pfresh () and p_cold = hctx.pfresh () in
      emit hctx
        (I.Cmpi (I.Ceq, I.Cnorm, p_hot, p_cold, env.config.heat_threshold, v'));
      stop hctx;
      emitp hctx p_hot (I.Br (I.Out (I.Heat id)));
      stop hctx
    end;
  Cgen.prepend cg head;
  let tstart, tlen, _tags = Cgen.lower cg env.tcache in
  let block =
    {
      Block.id;
      entry;
      kind = Block.Cold;
      tstart;
      tlen;
      insns;
      code_end = bb.Discover.next;
      ctr_addr;
      edge_addr;
      ma_base;
      n_accesses = n_acc;
      entry_tos;
      sse_entry = Array.copy ctx.xmm_entry;
      fp_recovery;
      commit_maps = [||];
      bundle_commit = [||];
      misalign_stage = (if stage2 then 2 else 1);
      live = true;
      registered = 0;
    }
  in
  Block.register env.cache block;
  (* watch the source pages so stores into them trigger SMC detection *)
  let first_page = entry lsr Ia32.Memory.page_bits in
  let last_page = (block.Block.code_end - 1) lsr Ia32.Memory.page_bits in
  for p = first_page to last_page do
    Ia32.Memory.watch_page env.mem (p lsl Ia32.Memory.page_bits)
  done;
  env.acct.Account.cold_blocks <- env.acct.Account.cold_blocks + 1;
  if stage2 then env.acct.Account.cold_regens <- env.acct.Account.cold_regens + 1;
  block
