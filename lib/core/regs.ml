(* Register conventions: where the IA-32 architectural state lives in the
   IPF register files (the paper's "canonic locations"). The translator
   allocates the whole flat frame (the paper grabs the full 96-register
   stack); cold code uses fixed scratch registers, hot code allocates
   virtual registers mapped into the renaming pool. *)

(* canonic 32-bit GPRs, zero-extended: eax..edi -> r8..r15 *)
let gr_of_reg r = 8 + Ia32.Insn.reg_index r

(* EFLAGS bits as 0/1 values *)
let gr_of_flag = function
  | Ia32.Insn.CF -> 16
  | Ia32.Insn.PF -> 17
  | Ia32.Insn.AF -> 18
  | Ia32.Insn.ZF -> 19
  | Ia32.Insn.SF -> 20
  | Ia32.Insn.OF -> 21
  | Ia32.Insn.DF -> 22

(* The "IA-32 state register": holds the IA-32 IP of the instruction whose
   translation is executing (updated before potentially-faulty sequences). *)
let r_state = 23

(* Cold-code scratch pool, reset at each IA-32 instruction. *)
let cold_scratch_first = 24
let cold_scratch_last = 39

(* FP runtime status: current top-of-stack, TAG valid mask (bit i = physical
   x87 register i is valid), MMX-mode boolean, SSE format status (one nibble
   per XMM register). *)
let r_tos = 41
let r_tag = 42

(* MMX/FP aliasing staleness masks (bit i = x87 physical slot i):
   [r_fstale]: the FP view (FR) is stale — an MMX write left the real FP
   value as a NaN pattern that has not been materialized yet.
   [r_mstale]: the MMX view (GR) is stale — an x87 write has not been
   copied across. FP blocks check r_fstale = 0, MMX blocks check
   r_mstale = 0; a miss runs the sync recovery (paper's Boolean toggle). *)
let r_fstale = 43
let r_mstale = 46
let r_ssefmt = 44

(* Indirect-branch target (IA-32 address) communicated to the runtime. *)
let r_btarget = 45

(* FP parking offset: how far the physical x87/MMX register file is rotated
   away from its canonic parking (slot i of the architectural FPU in
   FR/GR index i). [Reconstruct.rotate_tos] maintains it; only engine-side
   recovery code ever writes it — translated code treats parking as an
   invariant and MMX block heads check it is 0 before relying on absolute
   register indices. *)
let r_park = 47

(* MMX registers (integer view): mm0..mm7 -> r48..r55. *)
let gr_of_mmx i = 48 + (i land 7)

(* XMM integer layout: 2 GRs per register. *)
let gr_of_xmm_lo i = 56 + (2 * (i land 7))
let gr_of_xmm_hi i = 57 + (2 * (i land 7))

(* Hot-phase renaming/backup pool. *)
let hot_pool_first = 72
let hot_pool_last = 126

(* x87 physical registers: stack slot i -> f8+i. *)
let fr_of_phys i = 8 + (i land 7)

(* XMM floating layouts: 4 FRs per register (base .. base+3).
   - packed/scalar single: lane k in base+k (single-precision values)
   - packed/scalar double: lo double in base, hi double in base+1 *)
let fr_of_xmm_base i = 16 + (4 * (i land 7))

(* Cold FP scratch. The widest single-instruction demand is a packed-single
   SSE op with a memory source: 4 lane loads plus a rounding temp per lane
   (8 live FRs), so the pool spans the full f119..f127 gap above the hot
   FP temp pool. *)
let cold_fscratch_first = 119
let cold_fscratch_last = 127

(* Hot FP temp pool. *)
let hot_fpool_first = 48
let hot_fpool_last = 118

(* Predicate conventions: p0 = true; p1..p5 reserved for block-head checks;
   p6..p40 general; hot predication allocates from p8 up. *)
let pr_check1 = 1
let pr_check2 = 2
let pr_scratch1 = 6
let pr_scratch2 = 7
let hot_pr_first = 8
let hot_pr_last = 40

(* SSE format codes stored in the r_ssefmt nibbles. *)
let fmt_int = 0
let fmt_ps = 1
let fmt_pd = 2

let fmt_of_nibbles status i = (status lsr (4 * i)) land 0xF

let set_fmt_nibble status i fmt =
  status land lnot (0xF lsl (4 * i)) lor (fmt lsl (4 * i))
