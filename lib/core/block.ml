(* Translated-block records and the block cache (BTGeneric's bookkeeping):
   per-block profile slots in the guest-invisible profile arena, recovery
   metadata for precise exceptions, and the indexes the engine needs
   (entry address -> block, bundle -> block, code page -> blocks). *)

(* Static x87 state snapshot used to reconstruct TOS/TAG/permutation at a
   faulting instruction (cold blocks record one per faulty IP; hot blocks
   one per commit point). *)
type fp_snapshot = {
  s_vtos : int;
  s_map : int array; (* logical slot -> physical slot *)
  s_set_valid : int; (* tag bits turned valid since block entry *)
  s_set_empty : int;
  s_written : int; (* slots written since block entry (x87 or MMX) *)
  s_mmx : bool; (* MMX block: TOS = 0, tags = s_set_valid *)
  s_xmm_fmt : int array;
      (* static XMM format at this point (-1: unchanged since entry, use the
         runtime format word). A block converts representations mid-flight
         but only writes [Regs.r_ssefmt] at exits, so reconstruction inside
         the block must read the static view. *)
}

let no_xmm_fmt = Array.make 8 (-1)

let identity_snapshot ~entry_tos =
  {
    s_vtos = entry_tos;
    s_map = Array.init 8 (fun i -> i);
    s_set_valid = 0;
    s_set_empty = 0;
    s_written = 0;
    s_mmx = false;
    s_xmm_fmt = no_xmm_fmt;
  }

let snapshot_of_fpmap (fp : Fpmap.t) =
  {
    s_vtos = fp.Fpmap.vtos;
    s_map = Array.copy fp.Fpmap.map;
    s_set_valid = fp.Fpmap.known_valid;
    s_set_empty = fp.Fpmap.known_empty;
    s_written = fp.Fpmap.written;
    s_mmx = false;
    s_xmm_fmt = no_xmm_fmt;
  }

(* Where an IA-32 register's pre-commit value lives at a hot commit point. *)
type saved_loc =
  | Sgr of Ia32.Insn.reg * int (* canonical reg backed up in GR *)
  | Sflag of Ia32.Insn.flag * int
  | Sfr of int * int (* x87 physical slot backed up in FR *)
  | Sxlo of int * int (* xmm int-layout lo half *)
  | Sxhi of int * int
  | Smm of int * int (* mmx register *)
  | Sstatus of int * int (* runtime status GR (r_tos etc.) backed up *)

type commit_map = {
  cm_ip : int; (* IA-32 address the commit point corresponds to *)
  cm_saved : saved_loc list;
  cm_fp : fp_snapshot;
}

type kind = Cold | Hot

type t = {
  id : int;
  entry : int; (* IA-32 address *)
  kind : kind;
  mutable tstart : int; (* first bundle in the translation cache *)
  mutable tlen : int;
  insns : (int * Ia32.Insn.insn) array;
  code_end : int; (* address after the last source instruction *)
  (* profile arena slots *)
  ctr_addr : int; (* use counter *)
  edge_addr : int; (* taken-edge counter *)
  ma_base : int; (* first per-access misalignment slot *)
  n_accesses : int;
  (* precise-exception metadata *)
  entry_tos : int;
  sse_entry : int array; (* required XMM entry formats (-1 = none) *)
  fp_recovery : (int, fp_snapshot) Hashtbl.t; (* by IA-32 ip (cold) *)
  commit_maps : commit_map array; (* by commit index (hot) *)
  bundle_commit : int array; (* bundle offset -> commit index (hot) *)
  (* misalignment machinery *)
  mutable misalign_stage : int; (* 1 = detect, 2 = avoid+record (cold) *)
  mutable live : bool;
  mutable registered : int; (* optimization-candidate registrations *)
}

(* ------------------------------------------------------------------ *)
(* Block cache                                                         *)
(* ------------------------------------------------------------------ *)

type cache = {
  by_entry : (int, t) Hashtbl.t; (* live block per entry address *)
  by_id : (int, t) Hashtbl.t;
  bundle_owner : (int, t) Hashtbl.t; (* bundle index -> block *)
  by_page : (int, t list ref) Hashtbl.t; (* source code page -> blocks *)
  mutable next_id : int;
  mutable arena_next : int; (* profile arena bump pointer *)
  (* Arena byte ranges claimed at their recorded addresses by blocks
     installed from a persistent cache. Live allocation weaves around
     them, so install order never changes which addresses a block's
     profile slots occupy. *)
  mutable pins : (int * int) list; (* (start, byte length) *)
  (* Bumped whenever [bundle_owner] gains or loses entries, so callers
     caching bundle->block attributions (the engine's cycle-bucket memo)
     can detect staleness with one integer compare. *)
  mutable owner_gen : int;
}

(* The profile arena lives in a reserved guest region (invisible to the
   application's own data but addressable by translated code). *)
let arena_base = 0xE0000000
let arena_size = 0x01000000

let create_cache () =
  {
    by_entry = Hashtbl.create 512;
    by_id = Hashtbl.create 512;
    bundle_owner = Hashtbl.create 2048;
    by_page = Hashtbl.create 64;
    next_id = 0;
    arena_next = arena_base;
    pins = [];
    owner_gen = 0;
  }

let fresh_id cache =
  let id = cache.next_id in
  cache.next_id <- id + 1;
  id

let ranges_overlap s1 l1 s2 l2 = s1 < s2 + l2 && s2 < s1 + l1

(* Claim the byte range [start, start+len) at its recorded address for a
   block being installed from a persistent cache. Fails (returns false,
   caller falls back to live translation) if the range escapes the arena
   or collides with anything already handed out — the bump region or
   another pin. Does not advance [arena_next]: live allocation weaves
   around pins instead. *)
let pin_arena cache ~start ~len =
  len > 0 && start >= arena_base
  && start + len <= arena_base + arena_size
  && not (ranges_overlap start len arena_base (cache.arena_next - arena_base))
  && List.for_all (fun (s, l) -> not (ranges_overlap start len s l)) cache.pins
  &&
  (cache.pins <- (start, len) :: cache.pins;
   true)

(* Highest arena address handed out so far (bump pointer or pin end):
   the flush zeroing bound. *)
let arena_high cache =
  List.fold_left (fun hi (s, l) -> max hi (s + l)) cache.arena_next cache.pins

(* Allocate [n] 4-byte profile slots; returns the base address. Live
   allocation bump-skips any pinned range it would collide with. *)
let alloc_arena cache n =
  let len = 4 * n in
  let rec place base =
    match
      List.find_opt (fun (s, l) -> ranges_overlap base len s l) cache.pins
    with
    | Some (s, l) -> place (s + l)
    | None -> base
  in
  let base = place cache.arena_next in
  cache.arena_next <- base + len;
  if cache.arena_next > arena_base + arena_size then
    Bt_error.fail ~component:"block"
      ~detail:(Printf.sprintf "next %#x" cache.arena_next)
      "profile arena exhausted";
  base

let register cache block =
  Hashtbl.replace cache.by_entry block.entry block;
  Hashtbl.replace cache.by_id block.id block;
  for b = block.tstart to block.tstart + block.tlen - 1 do
    Hashtbl.replace cache.bundle_owner b block
  done;
  cache.owner_gen <- cache.owner_gen + 1;
  let first_page = block.entry lsr Ia32.Memory.page_bits in
  let last_page = (block.code_end - 1) lsr Ia32.Memory.page_bits in
  for p = first_page to last_page do
    let l =
      match Hashtbl.find_opt cache.by_page p with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace cache.by_page p l;
        l
    in
    l := block :: !l
  done

let find_entry cache addr =
  match Hashtbl.find_opt cache.by_entry addr with
  | Some b when b.live -> Some b
  | _ -> None

let find_by_bundle cache idx = Hashtbl.find_opt cache.bundle_owner idx

let find_by_id cache id = Hashtbl.find_opt cache.by_id id

(* Invalidate a block: mark dead, detach from the entry index, and turn its
   bundles into dispatch exits so chained predecessors fall back to the
   runtime. *)
let invalidate cache tcache block =
  if block.live then begin
    block.live <- false;
    (match Hashtbl.find_opt cache.by_entry block.entry with
    | Some b when b.id = block.id -> Hashtbl.remove cache.by_entry block.entry
    | _ -> ());
    Ipf.Tcache.invalidate_range tcache ~start:block.tstart
      ~stop:(block.tstart + block.tlen) ~target:block.entry
  end

(* Blocks whose source bytes include [addr] (for SMC invalidation). *)
let blocks_touching cache addr =
  match Hashtbl.find_opt cache.by_page (addr lsr Ia32.Memory.page_bits) with
  | Some l -> List.filter (fun b -> b.live && addr >= b.entry && addr < b.code_end) !l
  | None -> []

let live_blocks_on_page cache page =
  match Hashtbl.find_opt cache.by_page page with
  | Some l -> List.filter (fun b -> b.live) !l
  | None -> []
