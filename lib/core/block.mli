(** Translated blocks and the block cache.

    A block records everything the engine needs at runtime: where its
    bundles live in the translation cache, its profile-arena slots (use
    counter, taken-edge counter, per-access misalignment slots), and the
    precise-exception metadata — per-faulty-IP FP snapshots for cold
    blocks, commit maps for hot blocks (paper §4.2). *)

type fp_snapshot = {
  s_vtos : int;  (** static TOS at this point *)
  s_map : int array;  (** FXCHG permutation at this point *)
  s_set_valid : int;  (** TAG bits known valid *)
  s_set_empty : int;
  s_written : int;  (** x87 slots written so far by the block *)
  s_mmx : bool;  (** the block runs in MMX mode (TAG from exit mask) *)
  s_xmm_fmt : int array;
      (** static XMM representation format at this point, per register;
          [-1] means unchanged since block entry (read the runtime format
          word instead) *)
}
(** Enough x87/MMX static state to reconstruct the FPU at one point. *)

val identity_snapshot : entry_tos:int -> fp_snapshot
val snapshot_of_fpmap : Fpmap.t -> fp_snapshot

(** Where an IA-32 register's pre-commit value lives at a hot commit
    point: each case pairs the canonic entity with the backup GR/FR
    holding its region-start value. *)
type saved_loc =
  | Sgr of Ia32.Insn.reg * int
  | Sflag of Ia32.Insn.flag * int
  | Sfr of int * int  (** x87 IPF slot backed up in an FR *)
  | Sxlo of int * int  (** XMM int-layout low half *)
  | Sxhi of int * int
  | Smm of int * int
  | Sstatus of int * int  (** runtime status GR (r_tos etc.) *)

type commit_map = {
  cm_ip : int;  (** IA-32 address the commit point corresponds to *)
  cm_saved : saved_loc list;
  cm_fp : fp_snapshot;
}

type kind = Cold | Hot

type t = {
  id : int;
  entry : int;  (** IA-32 entry address *)
  kind : kind;
  mutable tstart : int;  (** first bundle in the translation cache *)
  mutable tlen : int;
  insns : (int * Ia32.Insn.insn) array;  (** source instructions *)
  code_end : int;  (** address after the last source instruction *)
  ctr_addr : int;  (** profile arena: use counter *)
  edge_addr : int;  (** taken-edge counter *)
  ma_base : int;  (** first per-access misalignment slot *)
  n_accesses : int;
  entry_tos : int;  (** speculated x87 TOS at entry *)
  sse_entry : int array;  (** required XMM entry formats (-1 = none) *)
  fp_recovery : (int, fp_snapshot) Hashtbl.t;
      (** per-faulty-IP snapshots (cold precise exceptions) *)
  commit_maps : commit_map array;  (** by commit index (hot) *)
  bundle_commit : int array;  (** bundle offset -> commit index (hot) *)
  mutable misalign_stage : int;  (** 1 = detect, 2 = avoid+record *)
  mutable live : bool;
  mutable registered : int;  (** optimization-candidate registrations *)
}

(** {1 Block cache} *)

type cache = {
  by_entry : (int, t) Hashtbl.t;  (** live block per entry address *)
  by_id : (int, t) Hashtbl.t;
  bundle_owner : (int, t) Hashtbl.t;
  by_page : (int, t list ref) Hashtbl.t;  (** source page -> blocks *)
  mutable next_id : int;
  mutable arena_next : int;
  mutable pins : (int * int) list;
      (** (start, byte length) arena ranges claimed at recorded addresses
          by blocks installed from a persistent cache *)
  mutable owner_gen : int;
      (** bumped whenever [bundle_owner] changes, so bundle->block
          attribution caches can detect staleness cheaply *)
}

val arena_base : int
(** The profile arena lives in a reserved guest region, invisible to the
    application's own data but addressable by translated code. *)

val arena_size : int

val create_cache : unit -> cache
val fresh_id : cache -> int

val alloc_arena : cache -> int -> int
(** Allocate [n] 4-byte profile slots; returns the base address. Live
    allocation bump-skips any range pinned by {!pin_arena}. *)

val pin_arena : cache -> start:int -> len:int -> bool
(** Claim the byte range [\[start, start+len)] at its recorded address for
    a block installed from a persistent cache. Returns [false] — and
    claims nothing — if the range escapes the arena or collides with the
    bump region or another pin; the caller then falls back to live
    translation. *)

val arena_high : cache -> int
(** Highest arena address handed out so far (bump pointer or pin end) —
    the bound a cache flush must zero through. *)

val register : cache -> t -> unit
val find_entry : cache -> int -> t option
(** Live block translated at an entry address. *)

val find_by_bundle : cache -> int -> t option
val find_by_id : cache -> int -> t option

val invalidate : cache -> Ipf.Tcache.t -> t -> unit
(** Mark dead, detach from the entry index, and turn the block's bundles
    into dispatch exits so stale chained predecessors fall back to the
    runtime. *)

val blocks_touching : cache -> int -> t list
(** Live blocks whose source bytes include an address (SMC). *)

val live_blocks_on_page : cache -> int -> t list
