(* Translator configuration. Every paper-relevant design choice is a switch
   here so the ablation benches can turn it off and measure the difference. *)

type first_phase =
  | Instrumented_cold (* the paper's design: translate cold code with
                         instrumentation *)
  | Interpret_first (* the FX!32-style alternative: interpret until hot *)

type t = {
  (* two-phase control *)
  two_phase : bool; (* false = cold-only translator *)
  first_phase : first_phase;
  heat_threshold : int; (* cold-block executions before registration *)
  session_candidates : int; (* registrations that trigger a hot session *)
  max_trace_blocks : int; (* hyper-block length limit, in basic blocks *)
  max_trace_insns : int;
  enable_predication : bool;
  predication_max_side : int; (* max IA-32 insns per if-converted side *)
  enable_unroll : bool;
  unroll_factor : int;
  unroll_max_insns : int; (* only unroll loop bodies up to this size *)
  (* cold code *)
  neighborhood_blocks : int; (* 1-20 blocks analysed around the entry *)
  tcache_limit : int;
      (* bundles before the translation cache is flushed wholesale (the
         paper's fixed-size cache, default 64MB, flushed when full) *)
  (* commit points *)
  commit_interval : int; (* target insns per commit point (~10 native) *)
  enable_commit : bool; (* false = no precise-state machinery in hot code
                           (used by the native-compiler model) *)
  flags_preserved_at_exit : bool; (* false = EFLAGS need not be live at
                                     block exits (native-compiler model) *)
  (* speculation *)
  fp_stack_speculation : bool;
  mmx_mode_speculation : bool;
  sse_format_speculation : bool;
  (* misalignment machinery *)
  misalign_avoidance : bool;
  misalign_stage3_guard : bool; (* light instrumentation on dangerous insns *)
  (* scheduling *)
  enable_scheduling : bool; (* false = emit hot IL in order, cold-style *)
  enable_control_spec : bool;
      (* hoist loads above exit branches with ld.s/chk.s; deferred faults
         that never reach their check are filtered (paper §4.2) *)
  enable_flag_elim : bool;
  enable_cse : bool;
  (* graceful degradation (resilience subsystem): bound the retranslation
     churn a single entry / source page can cause before the engine stops
     translating it and falls back to interpretation *)
  retrans_avoid_limit : int;
      (* per-entry invalidation-driven retranslations before the entry is
         escalated to full (stage-2 + stage-3) avoidance *)
  retrans_interp_limit : int;
      (* per-entry retranslations before the entry goes interpret-only *)
  smc_storm_window : int; (* dispatch-count window for storm detection *)
  smc_storm_limit : int;
      (* SMC invalidation events on one source page within the window
         before the whole page goes interpret-only *)
  (* execution cores *)
  enable_predecode : bool;
      (* run translated code through the pre-decoded direct-threaded core
         (Ipf.Exec) instead of the interpretive Machine.run loop; results
         are bit-identical, this is purely a host-speed switch *)
  enable_decode_cache : bool;
      (* cache decoded IA-32 instructions per (eip, page generation) in
         the reference interpreter *)
  (* hot-path generation *)
  enable_hot_counters : bool;
      (* detect heat with single-slot saturating counter uops over a
         hash-indexed array owned by the machine, instead of the original
         load/add/store instrumentation stubs in guest memory. A policy
         switch: the instrumentation itself gets cheaper, so virtual
         cycles change. false = the original stub path (escape hatch) *)
  enable_fusion : bool;
      (* fuse recurring uop pairs (cmp+jcc, st/st, ld+op, op+st) into
         single pre-decoded macro-ops in Ipf.Exec: one dispatch, one
         trap-frame check, accounting replayed pair-exactly so every
         observable — virtual cycles included — is bit-identical. A pure
         host-speed switch like enable_predecode *)
  (* guest threads *)
  quantum : int;
      (* virtual cycles per scheduling slice; rescheduling happens only at
         syscall commit points, so this is deterministic. <= 0 disables
         preemption (threads run until they block or yield) *)
}

let default =
  {
    two_phase = true;
    first_phase = Instrumented_cold;
    heat_threshold = 120;
    session_candidates = 6;
    max_trace_blocks = 8;
    max_trace_insns = 48;
    enable_predication = true;
    predication_max_side = 4;
    enable_unroll = true;
    unroll_factor = 2;
    unroll_max_insns = 10;
    neighborhood_blocks = 16;
    tcache_limit = 4_000_000;
    commit_interval = 10;
    enable_commit = true;
    flags_preserved_at_exit = true;
    fp_stack_speculation = true;
    mmx_mode_speculation = true;
    sse_format_speculation = true;
    misalign_avoidance = true;
    misalign_stage3_guard = true;
    enable_scheduling = true;
    enable_control_spec = true;
    enable_flag_elim = true;
    enable_cse = true;
    retrans_avoid_limit = 6;
    retrans_interp_limit = 12;
    smc_storm_window = 512;
    smc_storm_limit = 16;
    enable_predecode = true;
    enable_decode_cache = true;
    enable_hot_counters = true;
    enable_fusion = true;
    quantum = 20_000;
  }

(* Cold-only translator (no hot phase at all). *)
let cold_only = { default with two_phase = false }
