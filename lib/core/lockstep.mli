(** Lockstep differential vehicle.

    Runs the translator engine and the reference interpreter side-by-side
    over the same guest, synchronising at the engine's commit events —
    system calls, precise architectural faults, program exit — and
    comparing the full architectural state (GPRs, EFLAGS, the logical x87
    stack, XMM registers, guest memory) at every one.

    Commit events are exactly the points where guest behaviour becomes
    observable, i.e. the translator's precise-state contract (paper §4);
    everything between them (block shapes, speculation recoveries, cache
    flushes, injected chaos) is free as long as the states agree at the
    next event. On the first disagreement the run stops with a structured
    diagnosis: the ordinal of the diverging commit point, a per-field
    diff, and a minimized reproducer window of the guest instructions
    executed since the last good commit point. *)

type divergence = {
  commit_index : int;  (** ordinal of the first diverging commit point *)
  event : Engine.commit_event;
  diffs : string list;  (** per-field differences, human-readable *)
  engine_state : Ia32.State.t;
  reference_state : Ia32.State.t;
  window : string list;
      (** minimized reproducer: the reference instructions executed since
          the previous matched commit point *)
}

type report = {
  commits : int;  (** commit events compared *)
  outcome : Engine.outcome option;  (** [None] when the run diverged *)
  divergence : divergence option;
}

val pp_event : Format.formatter -> Engine.commit_event -> unit
val pp_divergence : Format.formatter -> divergence -> unit

val diff_states : Ia32.State.t -> Ia32.State.t -> string list
(** Full architectural diff (empty = equal). The x87 comparison is
    TOS-relative ({!Ia32.Fpu.logical_equal}); the memory comparison skips
    the translator's profile arena. *)

type session
(** A persistent differential session: the engine plus the reference
    vehicle (its deep memory copy, state and OS), created once and
    reusable across several runs. The fork-server keeps one alive and
    snapshots/reverts both sides around each mutated input. *)

val create :
  ?config:Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?attach:(Engine.t -> unit) ->
  btlib:(module Btlib.Btos.S) ->
  Ia32.Memory.t ->
  Ia32.State.t ->
  session
(** Build a session over a loaded guest. The reference gets a deep copy
    of [mem] taken before the engine maps its runtime structures.
    [attach] is called with the engine after creation, for installing a
    chaos injector ({!Engine.t.on_dispatch}). *)

val engine : session -> Engine.t
val reference_mem : session -> Ia32.Memory.t
val reference_vos : session -> Btlib.Vos.t

val run_in : ?fuel:int -> ?max_gap:int -> session -> report
(** Execute the guest from the session's main-thread states, comparing
    at every commit event. Installs a fresh observer on each call, so a
    session whose engine and reference sides have been reverted to a
    pre-run snapshot can be re-run. [max_gap] bounds the reference steps
    between two commit events (livelock guard). *)

val run :
  ?config:Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?fuel:int ->
  ?max_gap:int ->
  ?attach:(Engine.t -> unit) ->
  btlib:(module Btlib.Btos.S) ->
  Ia32.Memory.t ->
  Ia32.State.t ->
  report
(** [run ~btlib mem st0] = {!create} + one {!run_in}: executes the guest
    under the engine with a shadow reference interpreter. *)
