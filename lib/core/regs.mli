(** Register conventions: where the IA-32 architectural state lives in
    the IPF register files (the paper's "canonic locations").

    The translator owns the whole flat register frame. Cold code uses
    fixed scratch ranges reset at every IA-32 instruction; hot code
    allocates virtual registers that the renamer maps into the renaming
    pool. Reconstruction ({!Reconstruct}) reads the canonic locations
    listed here to build an architectural {!Ia32.State.t}. *)

val gr_of_reg : Ia32.Insn.reg -> int
(** Canonic GR of a 32-bit GPR, zero-extended: EAX..EDI -> r8..r15. *)

val gr_of_flag : Ia32.Insn.flag -> int
(** Canonic GR of an EFLAGS bit, holding 0/1: CF..DF -> r16..r22. *)

val r_state : int
(** The "IA-32 state register" (r23): IA-32 IP of the instruction whose
    translation is executing, updated before potentially-faulty
    sequences in cold code (paper §4.2). *)

val cold_scratch_first : int
val cold_scratch_last : int

val r_tos : int
(** Runtime x87 top-of-stack (r41), checked by FP block heads. *)

val r_tag : int
(** Runtime TAG valid mask (r42): bit i = x87 physical slot i valid. *)

val r_fstale : int
(** FP-view staleness mask (r43): bit i set means an MMX write to slot i
    has not been materialized in the FR file yet. FP blocks check 0. *)

val r_mstale : int
(** MMX-view staleness mask (r46): an x87 write not yet copied to the GR
    (integer) view. MMX blocks check 0. *)

val r_ssefmt : int
(** SSE format status (r44): one nibble per XMM register. *)

val r_btarget : int
(** Indirect-branch target (IA-32 address) passed to the runtime. *)

val r_park : int
(** FP parking offset (r47): rotation of the physical x87/MMX file away
    from canonic parking (architectural slot i in FR/GR index i).
    Maintained by {!Reconstruct.rotate_tos}; 0 means canonic. MMX block
    heads check it because their register accesses are absolute. *)

val gr_of_mmx : int -> int
(** MMX integer view: mm0..mm7 -> r48..r55. *)

val gr_of_xmm_lo : int -> int
(** XMM integer layout, low half: 2 GRs per register from r56. *)

val gr_of_xmm_hi : int -> int

val hot_pool_first : int
(** Hot-phase renaming/backup GR pool (r72..r126). *)

val hot_pool_last : int

val fr_of_phys : int -> int
(** x87 physical slot i -> f8+i. *)

val fr_of_xmm_base : int -> int
(** XMM floating layouts: 4 FRs per register from f16. Packed single
    keeps lane k in base+k; packed double keeps lo/hi in base/base+1. *)

val cold_fscratch_first : int
val cold_fscratch_last : int
val hot_fpool_first : int
val hot_fpool_last : int

val pr_check1 : int
(** Predicates p1/p2 are reserved for block-head speculation checks. *)

val pr_check2 : int
val pr_scratch1 : int
val pr_scratch2 : int
val hot_pr_first : int
val hot_pr_last : int

(** {1 SSE format codes (nibbles of {!r_ssefmt})} *)

val fmt_int : int
val fmt_ps : int
val fmt_pd : int
val fmt_of_nibbles : int -> int -> int
val set_fmt_nibble : int -> int -> int -> int
