(* Precise IA-32 state reconstruction (paper §4): converting between the
   IPF machine state (canonic registers, runtime FP status, renamed/backed
   up values) and the architectural IA-32 state.

   - [extract] builds the precise IA-32 state at a fault/exit point, given
     the static FP snapshot recorded for that point (cold: per faulty IP;
     hot: per commit point).
   - [inject] loads an IA-32 state into the machine's canonic locations
     (process start, after exception handlers, after interpreter
     roll-forward).
   - [apply_commit] restores a hot block's commit point by copying backup
     registers into the canonic locations before extraction. *)

module M = Ipf.Machine

let gr32 m r = M.get32 m (Regs.gr_of_reg r)

let flag_of m f = not (Int64.equal (M.get m (Regs.gr_of_flag f)) 0L)

(* Engine-side recovery actions for speculation misses --------------------- *)

(* TOS mismatch: rotate the FP registers (and TAG bits) so the runtime TOS
   becomes the block's speculated TOS (paper: "on TOS mismatch, rotate
   register values"). The rotation preserves stack-relative access (ST(i)
   stays where blocks speculated for [expected] look for it) but moves
   slots off their canonic parking; [r_park] accumulates the offset so
   the file can be re-canonicalized before any absolute-indexed use. *)
let rotate_tos m ~expected =
  let actual = M.get32 m Regs.r_tos in
  let shift = (expected - actual) land 7 in
  if shift <> 0 then begin
    (* physical slot s currently holds stack slot (s - actual); it must
       move to physical (s + shift) so that slot index arithmetic relative
       to the new TOS is unchanged *)
    let frs = Array.init 8 (fun s -> M.getf m (Regs.fr_of_phys s)) in
    let mms = Array.init 8 (fun s -> M.get m (Regs.gr_of_mmx s)) in
    let rot mask =
      let out = ref 0 in
      for s = 0 to 7 do
        if mask land (1 lsl s) <> 0 then out := !out lor (1 lsl ((s + shift) land 7))
      done;
      !out
    in
    for s = 0 to 7 do
      let d = (s + shift) land 7 in
      M.setf m (Regs.fr_of_phys d) frs.(s);
      M.set m (Regs.gr_of_mmx d) mms.(s)
    done;
    M.set32 m Regs.r_tag (rot (M.get32 m Regs.r_tag));
    M.set32 m Regs.r_fstale (rot (M.get32 m Regs.r_fstale));
    M.set32 m Regs.r_mstale (rot (M.get32 m Regs.r_mstale));
    M.set32 m Regs.r_park ((M.get32 m Regs.r_park + shift) land 7);
    M.set32 m Regs.r_tos expected
  end

(* Undo any accumulated parking rotation: move every architectural slot
   back to its canonic index. The runtime TOS then equals the
   architectural top again. Idempotent. *)
let canonicalize m =
  let park = M.get32 m Regs.r_park in
  if park <> 0 then
    rotate_tos m ~expected:((M.get32 m Regs.r_tos - park) land 7)

(* x87/MMX/XMM extraction per the runtime status registers and snapshot. *)
let extract_fpu m (snapshot : Block.fp_snapshot) (fpu : Ia32.Fpu.t) =
  let entry_tag = M.get32 m Regs.r_tag in
  let tos, tag =
    if snapshot.Block.s_mmx then (0, snapshot.Block.s_set_valid)
    else
      ( snapshot.Block.s_vtos land 7,
        (entry_tag lor snapshot.Block.s_set_valid)
        land lnot snapshot.Block.s_set_empty )
  in
  fpu.Ia32.Fpu.top <- tos;
  (* staleness at the snapshot point: the runtime masks reflect block
     entry; in-block writes are folded in from the snapshot *)
  let fstale0 = M.get32 m Regs.r_fstale and mstale0 = M.get32 m Regs.r_mstale in
  let fstale, mstale =
    if snapshot.Block.s_mmx then
      ( fstale0 lor snapshot.Block.s_written,
        mstale0 land lnot snapshot.Block.s_written )
    else
      ( fstale0 land lnot snapshot.Block.s_written,
        mstale0 lor snapshot.Block.s_written )
  in
  for s = 0 to 7 do
    fpu.Ia32.Fpu.tags.(s) <-
      (if tag land (1 lsl s) <> 0 then Ia32.Fpu.Valid else Ia32.Fpu.Empty);
    let fval =
      if fstale land (1 lsl s) <> 0 then Float.nan
      else M.getf m (Regs.fr_of_phys snapshot.Block.s_map.(s))
    in
    fpu.Ia32.Fpu.fval.(s) <- fval;
    fpu.Ia32.Fpu.ival.(s) <-
      (if mstale land (1 lsl s) <> 0 then Int64.bits_of_float fval
       else M.get m (Regs.gr_of_mmx s))
  done;
  let cc = M.get32 m Templates.r_fpcc in
  fpu.Ia32.Fpu.c0 <- cc land 0x100 <> 0;
  fpu.Ia32.Fpu.c1 <- cc land 0x200 <> 0;
  fpu.Ia32.Fpu.c2 <- cc land 0x400 <> 0;
  fpu.Ia32.Fpu.c3 <- cc land 0x4000 <> 0

let extract_xmm m (snapshot : Block.fp_snapshot) (st : Ia32.State.t) =
  let fmts = M.get32 m Regs.r_ssefmt in
  for i = 0 to 7 do
    (* mid-block representation changes are static: prefer the snapshot's
       format over the runtime word (updated only at block exits) *)
    let fmt =
      if snapshot.Block.s_xmm_fmt.(i) >= 0 then snapshot.Block.s_xmm_fmt.(i)
      else Regs.fmt_of_nibbles fmts i
    in
    if fmt = Regs.fmt_int then
      Ia32.State.set_xmm st i
        (M.get m (Regs.gr_of_xmm_lo i), M.get m (Regs.gr_of_xmm_hi i))
    else if fmt = Regs.fmt_pd then
      Ia32.State.set_xmm st i
        ( Ia32.Fpconv.bits_of_f64 (M.getf m (Regs.fr_of_xmm_base i)),
          Ia32.Fpconv.bits_of_f64 (M.getf m (Regs.fr_of_xmm_base i + 1)) )
    else begin
      let lane k = Ia32.Fpconv.bits_of_f32 (M.getf m (Regs.fr_of_xmm_base i + k)) in
      Ia32.State.set_xmm st i
        ( Ia32.Word.to_i64 ~lo:(lane 0) ~hi:(lane 1),
          Ia32.Word.to_i64 ~lo:(lane 2) ~hi:(lane 3) )
    end
  done

(* Build the precise IA-32 state for source address [eip], under the given
   FP snapshot (identity at block boundaries). Shares guest memory. *)
let extract m ~eip ~snapshot =
  (* snapshots are expressed against canonic parking: undo any recovery
     rotation first, so absolute slot indices line up again *)
  canonicalize m;
  let st = Ia32.State.create m.M.mem in
  List.iter
    (fun r -> Ia32.State.set32 st r (gr32 m r))
    Ia32.Insn.all_regs;
  st.Ia32.State.eip <- eip;
  st.Ia32.State.cf <- flag_of m Ia32.Insn.CF;
  st.Ia32.State.pf <- flag_of m Ia32.Insn.PF;
  st.Ia32.State.af <- flag_of m Ia32.Insn.AF;
  st.Ia32.State.zf <- flag_of m Ia32.Insn.ZF;
  st.Ia32.State.sf <- flag_of m Ia32.Insn.SF;
  st.Ia32.State.of_ <- flag_of m Ia32.Insn.OF;
  st.Ia32.State.df <- flag_of m Ia32.Insn.DF;
  extract_fpu m snapshot st.Ia32.State.fpu;
  extract_xmm m snapshot st;
  st

(* Restore a hot commit point: copy each backup into its canonic location,
   then extract with the commit's snapshot. *)
let apply_commit m (cm : Block.commit_map) =
  List.iter
    (fun saved ->
      match saved with
      | Block.Sgr (r, bk) -> M.set m (Regs.gr_of_reg r) (M.get m bk)
      | Block.Sflag (f, bk) -> M.set m (Regs.gr_of_flag f) (M.get m bk)
      | Block.Sfr (phys, bk) -> M.setf m (Regs.fr_of_phys phys) (M.getf m bk)
      | Block.Sxlo (i, bk) -> M.set m (Regs.gr_of_xmm_lo i) (M.get m bk)
      | Block.Sxhi (i, bk) -> M.set m (Regs.gr_of_xmm_hi i) (M.get m bk)
      | Block.Smm (i, bk) -> M.set m (Regs.gr_of_mmx i) (M.get m bk)
      | Block.Sstatus (reg, bk) -> M.set m reg (M.get m bk))
    cm.Block.cm_saved;
  extract m ~eip:cm.Block.cm_ip ~snapshot:cm.Block.cm_fp

(* Load an IA-32 state into the canonic machine locations. *)
let inject m (st : Ia32.State.t) =
  List.iter
    (fun r -> M.set32 m (Regs.gr_of_reg r) (Ia32.State.get32 st r))
    Ia32.Insn.all_regs;
  let setf f v = M.set m (Regs.gr_of_flag f) (if v then 1L else 0L) in
  setf Ia32.Insn.CF st.Ia32.State.cf;
  setf Ia32.Insn.PF st.Ia32.State.pf;
  setf Ia32.Insn.AF st.Ia32.State.af;
  setf Ia32.Insn.ZF st.Ia32.State.zf;
  setf Ia32.Insn.SF st.Ia32.State.sf;
  setf Ia32.Insn.OF st.Ia32.State.of_;
  setf Ia32.Insn.DF st.Ia32.State.df;
  let fpu = st.Ia32.State.fpu in
  M.set32 m Regs.r_tos fpu.Ia32.Fpu.top;
  let tag = ref 0 in
  for s = 0 to 7 do
    if fpu.Ia32.Fpu.tags.(s) = Ia32.Fpu.Valid then tag := !tag lor (1 lsl s);
    M.setf m (Regs.fr_of_phys s) fpu.Ia32.Fpu.fval.(s);
    M.set m (Regs.gr_of_mmx s) fpu.Ia32.Fpu.ival.(s)
  done;
  M.set32 m Regs.r_tag !tag;
  (* both views are loaded fresh: nothing is stale, parking is canonic *)
  M.set32 m Regs.r_fstale 0;
  M.set32 m Regs.r_mstale 0;
  M.set32 m Regs.r_park 0;
  let cc =
    (if fpu.Ia32.Fpu.c0 then 0x100 else 0)
    lor (if fpu.Ia32.Fpu.c1 then 0x200 else 0)
    lor (if fpu.Ia32.Fpu.c2 then 0x400 else 0)
    lor if fpu.Ia32.Fpu.c3 then 0x4000 else 0
  in
  M.set32 m Templates.r_fpcc cc;
  (* XMM registers are injected in the bit-exact integer layout *)
  let fmts = ref 0 in
  for i = 0 to 7 do
    let lo, hi = Ia32.State.get_xmm st i in
    M.set m (Regs.gr_of_xmm_lo i) lo;
    M.set m (Regs.gr_of_xmm_hi i) hi;
    fmts := Regs.set_fmt_nibble !fmts i Regs.fmt_int
  done;
  M.set32 m Regs.r_ssefmt !fmts;
  M.set32 m Regs.r_state st.Ia32.State.eip

(* MMX/FP mode sync (paper: "recovery code copies FP values to MMX
   registers or vice versa, and toggles the Boolean"). Only the stale side
   is refreshed. *)
let sync_mode m ~to_mmx =
  if to_mmx then begin
    let mstale = M.get32 m Regs.r_mstale in
    for s = 0 to 7 do
      if mstale land (1 lsl s) <> 0 then
        M.set m (Regs.gr_of_mmx s)
          (Int64.bits_of_float (M.getf m (Regs.fr_of_phys s)))
    done;
    M.set32 m Regs.r_mstale 0
  end
  else begin
    let fstale = M.get32 m Regs.r_fstale in
    for s = 0 to 7 do
      if fstale land (1 lsl s) <> 0 then M.setf m (Regs.fr_of_phys s) Float.nan
    done;
    M.set32 m Regs.r_fstale 0
  end

(* SSE format conversion to the formats a block requires. *)
let convert_sse_formats m ~required =
  let fmts = ref (M.get32 m Regs.r_ssefmt) in
  let converted = ref 0 in
  Array.iteri
    (fun i want ->
      if want >= 0 then begin
        let cur = Regs.fmt_of_nibbles !fmts i in
        if cur <> want then begin
          incr converted;
          (* go through the bit-exact integer image *)
          let lo, hi =
            if cur = Regs.fmt_int then
              (M.get m (Regs.gr_of_xmm_lo i), M.get m (Regs.gr_of_xmm_hi i))
            else if cur = Regs.fmt_pd then
              ( Ia32.Fpconv.bits_of_f64 (M.getf m (Regs.fr_of_xmm_base i)),
                Ia32.Fpconv.bits_of_f64 (M.getf m (Regs.fr_of_xmm_base i + 1)) )
            else
              let lane k =
                Ia32.Fpconv.bits_of_f32 (M.getf m (Regs.fr_of_xmm_base i + k))
              in
              ( Ia32.Word.to_i64 ~lo:(lane 0) ~hi:(lane 1),
                Ia32.Word.to_i64 ~lo:(lane 2) ~hi:(lane 3) )
          in
          (if want = Regs.fmt_int then begin
             M.set m (Regs.gr_of_xmm_lo i) lo;
             M.set m (Regs.gr_of_xmm_hi i) hi
           end
           else if want = Regs.fmt_pd then begin
             M.setf m (Regs.fr_of_xmm_base i) (Ia32.Fpconv.f64_of_bits lo);
             M.setf m (Regs.fr_of_xmm_base i + 1) (Ia32.Fpconv.f64_of_bits hi)
           end
           else begin
             M.setf m (Regs.fr_of_xmm_base i) (Ia32.Fpconv.f32_of_bits (Ia32.Word.lo32 lo));
             M.setf m (Regs.fr_of_xmm_base i + 1) (Ia32.Fpconv.f32_of_bits (Ia32.Word.hi32 lo));
             M.setf m (Regs.fr_of_xmm_base i + 2) (Ia32.Fpconv.f32_of_bits (Ia32.Word.lo32 hi));
             M.setf m (Regs.fr_of_xmm_base i + 3) (Ia32.Fpconv.f32_of_bits (Ia32.Word.hi32 hi))
           end);
          fmts := Regs.set_fmt_nibble !fmts i want
        end
      end)
    required;
  M.set32 m Regs.r_ssefmt !fmts;
  !converted
