(* Local code discovery (paper Figure 1): starting from the current IP,
   decode a neighbourhood of 1-20 basic blocks following direct control
   flow, and run the analyses cold translation needs — EFLAGS liveness and
   FP-stack tracking happen on this region.

   Basic blocks additionally end:
   - before an instruction whose unit class switches between x87 and MMX
     anywhere earlier in the block, however many integer/SSE instructions
     sit in between (so each translated block is pure and the MMX/FP
     aliasing speculation applies block-wise), and
   - after [max_bb_insns] instructions (long straight-line code is split).
*)

type insn_class = C_int | C_fpu | C_mmx | C_sse

let class_of (i : Ia32.Insn.insn) =
  match i with
  | Ia32.Insn.Fp _ -> C_fpu
  | Ia32.Insn.Mmx _ -> C_mmx
  | Ia32.Insn.Sse _ -> C_sse
  | _ -> C_int

(* Do two classes conflict for block purity? Only the x87/MMX pair does. *)
let class_conflict a b =
  match (a, b) with C_fpu, C_mmx | C_mmx, C_fpu -> true | _ -> false

type terminator =
  | T_jmp of int
  | T_jcc of Ia32.Insn.cond * int * int (* cond, taken, fallthrough *)
  | T_call of int * int (* target, return address *)
  | T_indirect (* jmp/call indirect or ret *)
  | T_syscall of int * int (* vector, next ip *)
  | T_fault (* hlt/ud2: always faults *)
  | T_fallthrough of int (* block split: falls into next address *)

type bb = {
  start : int;
  insns : (int * Ia32.Insn.insn) array; (* address, instruction *)
  term : terminator;
  next : int; (* address after the last instruction *)
}

let max_bb_insns = 24

(* Decode one basic block at [start]. Raises Decode.Invalid / Fault.Fault on
   undecodable or unfetchable bytes at the *first* instruction; later bad
   bytes end the block with T_fault (reached only if executed). *)
let decode_bb mem start =
  let buf = ref [] in
  (* Last x87/MMX unit class seen in the block so far: sticky, so a flip is
     detected even across intervening integer or SSE instructions. *)
  let unit_cls = ref None in
  let rec go addr count =
    if count >= max_bb_insns then (T_fallthrough addr, addr)
    else
      match Ia32.Decode.decode mem addr with
      | exception (Ia32.Decode.Invalid _ | Ia32.Fault.Fault _) when count > 0 ->
        (T_fallthrough addr, addr)
      | insn, len ->
        let next = Ia32.Word.mask32 (addr + len) in
        let cls = class_of insn in
        let conflicts =
          match !unit_cls with
          | Some u -> class_conflict u cls
          | None -> false
        in
        if conflicts then (T_fallthrough addr, addr)
        else begin
          (match cls with C_fpu | C_mmx -> unit_cls := Some cls | _ -> ());
          buf := (addr, insn) :: !buf;
          match insn with
          | Ia32.Insn.Jmp t -> (T_jmp t, next)
          | Ia32.Insn.Jcc (c, t) -> (T_jcc (c, t, next), next)
          | Ia32.Insn.Call t -> (T_call (t, next), next)
          | Ia32.Insn.Jmp_ind _ | Ia32.Insn.Call_ind _ | Ia32.Insn.Ret _ ->
            (T_indirect, next)
          | Ia32.Insn.Int_n n -> (T_syscall (n, next), next)
          | Ia32.Insn.Hlt | Ia32.Insn.Ud2 -> (T_fault, next)
          | _ -> go next (count + 1)
        end
  in
  let term, next = go start 0 in
  { start; insns = Array.of_list (List.rev !buf); term; next }

(* Static successor addresses for the neighbourhood walk / liveness. A call
   continues at its return address (callee effects are summarized as
   clobber-all by the liveness below). *)
let succs bb =
  match bb.term with
  | T_jmp t -> [ t ]
  | T_jcc (_, t, f) -> [ t; f ]
  | T_call (_, ret) -> [ ret ]
  | T_fallthrough next -> [ next ]
  | T_indirect | T_syscall _ | T_fault -> []

type region = {
  entry : int;
  blocks : (int, bb) Hashtbl.t; (* by start address *)
}

(* BFS over direct successors up to [max_blocks] basic blocks. *)
let discover ?(max_blocks = 16) mem ~entry =
  let blocks = Hashtbl.create 32 in
  let queue = Queue.create () in
  Queue.add entry queue;
  let count = ref 0 in
  while (not (Queue.is_empty queue)) && !count < max_blocks do
    let addr = Queue.take queue in
    if not (Hashtbl.mem blocks addr) then begin
      match decode_bb mem addr with
      | bb ->
        Hashtbl.replace blocks addr bb;
        incr count;
        List.iter (fun s -> Queue.add s queue) (succs bb)
      | exception (Ia32.Decode.Invalid _ | Ia32.Fault.Fault _) -> ()
    end
  done;
  { entry; blocks }

(* ------------------------------------------------------------------ *)
(* EFLAGS liveness over the region                                     *)
(* ------------------------------------------------------------------ *)

let flag_bit f =
  match f with
  | Ia32.Insn.CF -> 1
  | Ia32.Insn.PF -> 2
  | Ia32.Insn.AF -> 4
  | Ia32.Insn.ZF -> 8
  | Ia32.Insn.SF -> 16
  | Ia32.Insn.OF -> 32
  | Ia32.Insn.DF -> 64

let mask_of_flags = List.fold_left (fun m f -> m lor flag_bit f) 0

let all_flags_mask = mask_of_flags Ia32.Insn.all_flags

(* Per-instruction liveness-out of the 7 EFLAGS bits, as a map from
   instruction address to bitmask. Unknown successors (indirect, syscalls,
   region boundary, calls) are treated as all-live. *)
let flags_liveness region =
  let live_in = Hashtbl.create 32 in
  (* live_in of a block's first instruction *)
  let get_live_in addr =
    match Hashtbl.find_opt live_in addr with
    | Some m -> m
    | None -> all_flags_mask
  in
  let block_live_out bb =
    match succs bb with
    | [] -> all_flags_mask
    | ss ->
      List.fold_left
        (fun m s ->
          m
          lor
          if Hashtbl.mem region.blocks s then get_live_in s else all_flags_mask)
        0 ss
  in
  (* One backward pass over a block; returns new live_in. A potentially
     faulting instruction observes the full EFLAGS in its before-state (the
     fault is delivered there with precise flags, and cold recovery
     reconstructs at that IP without re-executing earlier instructions), so
     its live-in is all flags. *)
  let pass_block bb =
    let live = ref (block_live_out bb) in
    (* calls clobber conservatively: flags live into the callee *)
    (match bb.term with T_call _ -> live := all_flags_mask | _ -> ());
    for k = Array.length bb.insns - 1 downto 0 do
      let _, insn = bb.insns.(k) in
      if Ia32.Insn.may_fault insn then live := all_flags_mask
      else begin
        let def = mask_of_flags (Ia32.Insn.flags_def_must insn) in
        let use = mask_of_flags (Ia32.Insn.flags_use insn) in
        live := !live land lnot def lor use
      end
    done;
    !live
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 50 do
    changed := false;
    incr iters;
    Hashtbl.iter
      (fun addr bb ->
        let ni = pass_block bb in
        if Hashtbl.find_opt live_in addr <> Some ni then begin
          Hashtbl.replace live_in addr ni;
          changed := true
        end)
      region.blocks
  done;
  (* produce per-instruction live-out *)
  let live_out = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ bb ->
      let live = ref (block_live_out bb) in
      (match bb.term with T_call _ -> live := all_flags_mask | _ -> ());
      for k = Array.length bb.insns - 1 downto 0 do
        let addr, insn = bb.insns.(k) in
        Hashtbl.replace live_out addr !live;
        if Ia32.Insn.may_fault insn then live := all_flags_mask
        else begin
          let def = mask_of_flags (Ia32.Insn.flags_def_must insn) in
          let use = mask_of_flags (Ia32.Insn.flags_use insn) in
          live := !live land lnot def lor use
        end
      done)
    region.blocks;
  live_out

(* Flags an instruction must actually materialize: defs that are live-out. *)
let flags_to_set live_out addr insn =
  let lo =
    match Hashtbl.find_opt live_out addr with
    | Some m -> m
    | None -> all_flags_mask
  in
  List.filter (fun f -> lo land flag_bit f <> 0) (Ia32.Insn.flags_def insn)
