(** Cycle accounting and translator statistics — the measurement
    infrastructure behind the paper's Figures 6 and 7 and the §2/§5
    scalar statistics (blocks translated, heating rate, speculation
    success, commit-point density, misalignment events). *)

val bucket_cold : int
(** Machine cycle-attribution bucket for cold translated code. *)

val bucket_hot : int

type t = {
  mutable overhead_cycles : int;
      (** translation, dispatch, lookup, fault handling *)
  mutable other_cycles : int;  (** native syscalls / kernel time *)
  mutable idle_cycles : int;
  mutable interp_cycles : int;
      (** interpret-first mode: first-phase time *)
  mutable cold_blocks : int;
  mutable cold_insns : int;  (** IA-32 instructions cold-translated *)
  mutable cold_regens : int;  (** stage-2 misalignment regenerations *)
  mutable hot_blocks : int;
  mutable hot_insns : int;
  mutable hot_discards : int;  (** stage-3 late-misalignment discards *)
  mutable heat_triggers : int;
  mutable heated_blocks : int;  (** distinct cold blocks that registered *)
  mutable commit_points : int;
  mutable hot_target_insns : int;  (** native instructions emitted hot *)
  mutable dispatches : int;
  mutable chain_patches : int;
  mutable indirect_lookups : int;
  mutable indirect_misses : int;
  mutable tos_checks : int;  (** FP blocks carrying a TOS entry check *)
  mutable tos_misses : int;
  mutable tag_misses : int;
  mutable mode_checks : int;
  mutable mode_misses : int;
  mutable sse_checks : int;
  mutable sse_misses : int;
  mutable misalign_stage1_hits : int;
  mutable misalign_os_faults : int;  (** handled at the expensive OS price *)
  mutable misalign_avoided : int;  (** avoidance sequences emitted *)
  mutable exceptions_filtered : int;
      (** speculative faults that were filtered, never reaching the guest *)
  mutable rollforwards : int;
      (** commit restores followed by interpreter roll-forward *)
  mutable smc_invalidations : int;
  mutable cache_flushes : int;  (** wholesale translation-cache flushes *)
  mutable degrade_interp_entries : int;
      (** entries blacklisted to interpret-only by the degradation ladder *)
  mutable degrade_smc_storms : int;
      (** source pages degraded to interpretation by SMC-storm detection *)
  mutable thread_spawns : int;
  mutable thread_joins : int;  (** join calls that completed (returned) *)
  mutable thread_yields : int;
  mutable futex_waits : int;
  mutable futex_wakes : int;
  mutable thread_switches : int;  (** scheduler context switches *)
}

val create : unit -> t

val counters : t -> (string * int) list
(** Event-counter view for coverage consumers (fuzzer steering): every
    statistic that marks an engine event rather than a cycle charge, as
    stable [(name, value)] pairs. *)

val all_fields : t -> (string * int) list
(** Every field of [t] in declaration order. Kept complete by the
    drift-guard test in [test_obs], which compares it against the
    record's physical layout and requires [counters] and
    {!non_event_fields} to partition it. *)

val non_event_fields : string list
(** Fields deliberately excluded from {!counters}: cycle charges and
    instruction-volume tallies that mark no discrete engine event. *)

(** Execution-time split in the shape of the paper's Figures 6/7. *)
type distribution = {
  hot : int;
  cold : int;
      (** includes interpreter time in the interpret-first configuration *)
  overhead : int;
  other : int;
  idle : int;
  total : int;
}

val distribution : t -> Ipf.Machine.t -> distribution
(** Final distribution, combining the engine's charge counters with the
    machine's per-bucket cycle counters. *)

val pp_distribution : Format.formatter -> distribution -> unit

val copy : t -> t
(** Clone of the counter record (for checkpoints). *)

val blit : src:t -> dst:t -> unit
(** Write [src]'s counters into [dst] in place, so existing references
    to [dst] (the engine, the cold-translation env) see the restored
    values. *)

val sub : t -> t -> t
(** [sub a b] is the fieldwise difference [a - b]: snapshot before a
    bounded stretch of engine work, subtract after, and the result is
    exactly what that stretch charged. *)

val add_into : dst:t -> t -> unit
(** [add_into ~dst d] accumulates a delta produced by {!sub} into [dst]
    in place — used to replay the accounting of skipped work (e.g. a
    translation served from the persistent cache must charge exactly what
    translating it live would have). *)
