(* Code-generation buffer: collects IPF instructions in groups (stop-bit
   boundaries) with local labels, then lowers them into bundles appended to
   the translation cache. Local branch targets become bundle indices; a
   label always starts a fresh bundle because branch targets are
   bundle-aligned. *)

type item =
  | I of Ipf.Insn.t * int (* instruction, tag (commit-region id; -1 = none) *)
  | Stop (* close the current instruction group *)
  | Lbl of int (* local label id *)

(* Catenation tree over items, stored in REVERSED program order (the
   newest item is the leftmost leaf). O(1) emit and O(1) prepend; lowering
   flattens once. The old representation was a reversed list whose
   [prepend] copied the whole body ([items @ head.items]) — quadratic when
   a translation session prepends heads to ever-growing buffers. *)
type seq = Nil | One of item | Cat of seq * seq

type t = {
  mutable items : seq; (* reversed *)
  mutable next_label : int;
  mutable ninsns : int;
}

let create () = { items = Nil; next_label = 0; ninsns = 0 }

let new_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let emit ?(tag = -1) t insn =
  t.items <- Cat (One (I (insn, tag)), t.items);
  t.ninsns <- t.ninsns + 1

let stop t = t.items <- Cat (One Stop, t.items)

let bind t l = t.items <- Cat (One (Lbl l), t.items)

let length t = t.ninsns

(* Prepend previously generated items (used to put block-head checks in
   front of an already generated body). In reversed storage the head's
   items come after the body's. Label ids stay per-buffer, so the merged
   counter takes the max to keep future labels fresh. *)
let prepend t (head : t) =
  t.items <- Cat (t.items, head.items);
  t.ninsns <- t.ninsns + head.ninsns;
  t.next_label <- max t.next_label head.next_label

(* Flatten a reversed seq into a forward (program-order) item list.
   [reverse (flatten (Cat (a, b))) = reverse b @ reverse a], so the deep
   right spine produced by repeated [emit] is consumed by tail calls;
   non-tail depth is bounded by the number of [prepend]s. *)
let rec rev_flatten s acc =
  match s with
  | Nil -> acc
  | One x -> x :: acc
  | Cat (a, b) -> rev_flatten b (rev_flatten a acc)

(* Branch-target placeholder: local labels are encoded as [To (-1 - l)]
   during generation and fixed up at lowering time. *)
let local l = Ipf.Insn.To (-1 - l)

(* ------------------------------------------------------------------ *)
(* Lowering into the translation cache                                 *)
(* ------------------------------------------------------------------ *)

(* Packs items into bundles:
   - a bundle holds at most 3 slots and never spans a Stop or a label;
   - branches terminate their bundle (IPF-ish: we keep it simple);
   - labels bind to the next bundle index.
   Returns [(first_bundle, n_bundles, bundle_tags)]; [bundle_tags.(k)] is
   the commit tag covering bundle [first_bundle + k] (carried forward from
   the last tagged instruction). *)
let lower t tcache =
  let items = rev_flatten t.items [] in
  (* first pass: split into bundles of (insns, stop_end) plus label binds *)
  let bundles = ref [] in (* reversed: (insn list, stop, tag) *)
  let labels = Hashtbl.create 8 in
  let cur = ref [] in
  let cur_tag = ref (-1) in
  let last_tag = ref (-1) in
  let nbundles = ref 0 in
  let flush stop_end =
    if !cur <> [] then begin
      let tag = if !cur_tag >= 0 then !cur_tag else !last_tag in
      bundles := (List.rev !cur, stop_end, tag) :: !bundles;
      if tag >= 0 then last_tag := tag;
      incr nbundles;
      cur := [];
      cur_tag := -1
    end
    else if stop_end then begin
      (* a stop with an empty bundle: mark the previous bundle *)
      match !bundles with
      | (is, _, tg) :: rest -> bundles := (is, true, tg) :: rest
      | [] -> ()
    end
  in
  let is_br i =
    match i.Ipf.Insn.sem with
    | Ipf.Insn.Br _ | Ipf.Insn.Br_ind _ -> true
    (* a check that branches to a local label must end its bundle (local
       targets are bundle indices); one that exits to the runtime can
       share a bundle like any other instruction *)
    | Ipf.Insn.Chk_s (_, Ipf.Insn.To _) | Ipf.Insn.Chk_a (_, Ipf.Insn.To _) ->
      true
    | _ -> false
  in
  let fits insns =
    match Ipf.Bundle.make insns with
    | _ -> true
    | exception Ipf.Bundle.Invalid _ -> false
  in
  List.iter
    (fun item ->
      match item with
      | Stop -> flush true
      | Lbl l ->
        flush false;
        Hashtbl.replace labels l !nbundles
      | I (insn, tag) ->
        (* a commit-region change forces a fresh bundle so faults map to
           the right recovery map *)
        if tag >= 0 && !cur_tag >= 0 && tag <> !cur_tag then flush false;
        let attempt = List.rev (insn :: !cur) in
        if List.length attempt <= 3 && fits attempt then cur := insn :: !cur
        else begin
          flush false;
          cur := [ insn ]
        end;
        if tag >= 0 && !cur_tag < 0 then cur_tag := tag;
        if is_br insn then flush true)
    items;
  flush true;
  let bundle_specs = List.rev !bundles in
  (* second pass: fix local targets and append *)
  let start = Ipf.Tcache.length tcache in
  let fix_target = function
    | Ipf.Insn.To n when n < 0 -> (
      let l = -1 - n in
      match Hashtbl.find_opt labels l with
      | Some rel -> Ipf.Insn.To (start + rel)
      | None ->
        Bt_error.fail ~component:"cgen"
          ~detail:(Printf.sprintf "label %d" l)
          "lower: unbound local label")
    | t -> t
  in
  let fix_insn i =
    let sem =
      match i.Ipf.Insn.sem with
      | Ipf.Insn.Br tg -> Ipf.Insn.Br (fix_target tg)
      | Ipf.Insn.Chk_s (r, tg) -> Ipf.Insn.Chk_s (r, fix_target tg)
      | Ipf.Insn.Chk_a (r, tg) -> Ipf.Insn.Chk_a (r, fix_target tg)
      | s -> s
    in
    { i with Ipf.Insn.sem }
  in
  let tags = ref [] in
  List.iter
    (fun (insns, stop_end, tag) ->
      let insns = List.map fix_insn insns in
      ignore (Ipf.Tcache.append tcache (Ipf.Bundle.make ~stop_end insns));
      tags := tag :: !tags)
    bundle_specs;
  (start, Ipf.Tcache.length tcache - start, Array.of_list (List.rev !tags))
