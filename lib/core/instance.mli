(** One self-contained guest instance: memory + engine + architectural
    state built from an assembled image.

    Everything an instance touches is owned by it — memory (with its own
    write-generation counter), Vos (request/response channel, arena
    cursor, thread table), block cache, machine — so any number of
    instances can live in one process (a serving worker pool, lockstep
    pairs, A/B experiments) without sharing mutable state. The serving
    layer ([Serve]) builds one instance per admitted request. *)

type t = {
  mem : Ia32.Memory.t;
  eng : Engine.t;
  mutable st : Ia32.State.t;  (** updated with the final precise state *)
}

(** Why a run stopped. A blown per-request cycle budget is a normal
    outcome here (not an exception): pool layers account and report it. *)
type stop =
  | Exited of int
  | Faulted of Ia32.Fault.t
  | Budget_exhausted of Bt_error.t
      (** the engine watchdog fired ([max_cycles] passed) *)
  | Fuel_exhausted

type result = {
  stop : stop;
  cycles : int;  (** virtual clock at stop *)
  output : string;  (** console output so far *)
  response : string;  (** request-channel response so far *)
}

val create :
  ?config:Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?btlib:(module Btlib.Btos.S) ->
  Ia32.Asm.image ->
  t
(** Fresh memory, image loaded, engine created ([Btlib.Linuxsim] by
    default). No sharing with any other instance. *)

val default_fuel : int

val run : ?fuel:int -> ?max_cycles:int -> ?request:string -> t -> result
(** Run the guest from its current state. [max_cycles] arms the engine
    watchdog (absolute virtual-clock bound); the resulting structured
    [Bt_error] (component ["watchdog"]) is converted to
    [Budget_exhausted] — any other [Bt_error] escapes. [request] binds a
    payload on the Vos request channel first
    ({!Btlib.Vos.bind_request}). *)

val metrics : t -> Obs.Metrics.t
val clock : t -> int
val stop_to_string : stop -> string
