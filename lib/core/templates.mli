(** Instruction templates: lowering of single IA-32 instructions to EPIC
    IL (paper §2, "template-based" cold translation).

    The same templates serve both phases. A {!ctx} packages everything a
    template needs — an emission sink, register allocators, control-flow
    hooks, the FP-stack map, SSE format state, the EFLAGS plan and the
    misalignment policy — so the cold driver ({!Cold}) instantiates it
    over a {!Cgen} buffer with per-instruction stops, while the hot
    driver ({!Hot}) instantiates it over its region builder with renaming
    and scheduling downstream.

    EFLAGS discipline: the driver sets {!ctx.plan} before each
    instruction. [Plan_set] materializes the listed flags into canonic
    flag registers; [Plan_fuse] computes the consumer's condition
    predicate directly from the producer's operands (compare+branch
    fusion) and stores it in [ctx.fused_pred]; [Plan_none] skips flag
    work entirely. Either way a {!producer} record is left in
    [ctx.last_producer] so the hot phase's lazy-flags machinery can
    materialize flags later. *)

open Ia32.Insn
module I = Ipf.Insn

(** Misalignment policy for one memory access (paper §4.5). *)
type ma_policy =
  | Ma_plain  (** straight access; misalignment faults to the OS path *)
  | Ma_detect  (** stage 1: detect and branch out to regenerate *)
  | Ma_avoid of int  (** avoidance (byte-split) at granularity [g] *)
  | Ma_avoid_record of int * int
      (** stage 2: avoidance plus a profile-slot increment *)

(** EFLAGS plan for one IA-32 instruction, decided by the driver from the
    liveness analysis and the fusion peephole. *)
type flag_plan =
  | Plan_none
  | Plan_set of flag list
  | Plan_fuse of cond * flag list
      (** compute the consumer's condition predicate + set the extras *)

type producer = {
  p_op :
    [ `Add | `Sub | `Logic | `Shl | `Shr | `Sar | `Rol | `Ror | `Mul of int ];
  p_size : size;
  p_a : int;  (** first operand (snapshot register) *)
  p_b : int;  (** second operand *)
  p_res : int;  (** result *)
  p_full : int;  (** unmasked 64-bit result (add/sub); else [p_res] *)
  p_guard : int option;  (** flag updates predicated (CL shifts) *)
  p_cin : bool;  (** a carry/borrow-in participated (ADC/SBB) *)
}
(** Enough information to materialize any EFLAGS bit of the producing
    instruction after the fact (lazy flags). *)

type ctx = {
  emit : I.t -> unit;
  emit_stop : unit -> unit;
  new_label : unit -> int;
  bind : int -> unit;
  local : int -> I.target;
  fresh : unit -> int;  (** fresh scratch GR *)
  ffresh : unit -> int;  (** fresh scratch FR *)
  pfresh : unit -> int;  (** fresh scratch predicate *)
  ea : ctx -> mem -> int;
      (** effective-address computation (the hot version adds CSE) *)
  goto : ctx -> int -> unit;  (** unconditional exit to an IA-32 target *)
  goto_if : ctx -> pr:int -> int -> unit;
  indirect : ctx -> unit;  (** exit via the indirect-target register *)
  syscall : ctx -> int -> unit;
  guest_fault : ctx -> ?pr:int -> int -> unit  (** IA-32 vector *);
  misalign_out : ctx -> pr:int -> unit  (** stage-1 regeneration *);
  fp : Fpmap.t;
  xmm_fmt : int array;  (** static format per XMM register; -1 untouched *)
  xmm_entry : int array;  (** entry format requirement; -1 = none *)
  mutable uses_mmx : bool;
  mutable mmx_exit_tag : int;  (** TAG mask at exit (EMMS sets 0) *)
  mutable mmx_written : int;  (** MMX registers written by the block *)
  mutable cur_ip : int;
  mutable next_ip : int;
  mutable plan : flag_plan;
  mutable fused_pred : (int * int) option;  (** (p_cond, p_not) *)
  mutable last_producer : producer option;
  mutable access_idx : int;  (** running memory-access index *)
  misalign_policy : int -> int -> ma_policy;  (** access idx, width *)
  ma_pred_cache : (int * int, int * int) Hashtbl.t;
      (** misalignment predicates per (address GR, width) *)
  config : Config.t;
}

(** {1 Emission helpers} *)

val emit : ctx -> I.sem -> unit
val emitp : ctx -> int -> I.sem -> unit
(** Emit under a qualifying predicate. *)

val stop : ctx -> unit
(** Place a group stop after the last emitted instruction. *)

val imm : ctx -> int -> int
(** Load a 32-bit immediate into a fresh scratch GR. *)

val imm64 : ctx -> int64 -> int

val default_ea : ctx -> mem -> int
(** Compute an effective address into a GR (base + scaled index +
    displacement, masked to 32 bits). *)

(** {1 EFLAGS} *)

val materialize : ctx -> producer -> flag list -> unit
(** Emit the formulas writing the listed flags of [producer] into the
    canonic flag registers ({!Regs.gr_of_flag}). Forces CF with OF for
    left shifts/rotates (the OF formula reads the materialized CF). *)

val set_flag : ctx -> producer -> flag -> unit

val cond_pred : ctx -> cond -> int * int
(** Predicate pair for an IA-32 condition: the fused pair if the driver
    planned fusion (consumed), otherwise computed from canonic flags. *)

val emit_insn : ctx -> insn -> unit
(** Lower one IA-32 instruction according to the current plan. *)

(** {1 Speculation checks (paper §4.3/4.4)}

    Check ids appear in [Spec_fail] exits so the engine knows which
    recovery to run. *)

val check_tos : int
val check_tag : int
val check_mode_fp : int
val check_mode_mmx : int
val check_sse : int
val check_park : int

val r_fpcc : int
(** GR holding the x87 condition codes C0-C3 (FCOM results). *)

val emit_fp_entry_check : ctx -> block_id:int -> unit
(** Block-head check that the runtime TOS (and TAG when the map needs
    valid/empty slots) match the translation-time speculation. *)

val emit_mode_check : ctx -> block_id:int -> mmx:bool -> unit
(** Block-head check of the FP/MMX staleness masks (aliasing, §4.4). *)

val emit_park_check : ctx -> block_id:int -> unit
(** Block-head check for MMX blocks that the physical x87/MMX file is at
    its canonic parking ({!Regs.r_park} = 0): MMX register accesses are
    absolute, so an outstanding TOS-recovery rotation must be undone
    before the block may run. *)

val emit_sse_entry_check : ctx -> block_id:int -> unit
(** Block-head check of speculated XMM register formats. *)

val emit_fp_exit_update : ?qp:int -> ctx -> unit
(** Exit update of the runtime TOS/TAG/staleness registers from the
    block's static map. Idempotent (TOS is set absolutely), and
    predicated by [qp] on conditional exits so a fall-through does not
    apply it twice. *)

val emit_sse_exit_update : ?qp:int -> ctx -> unit
