(** The IA-32 EL engine: the runtime that owns the translation cache,
    dispatches between translated blocks, reacts to every exit reason
    and machine fault, and drives both translation phases.

    Responsibilities (paper §2):
    - dispatch and block chaining (patching exit branches into direct
      block-to-block branches), plus the fast lookup path for indirect
      branches;
    - the heat machinery: cold-block use counters trigger registration,
      enough registrations start a hot-translation session;
    - precise exceptions: reconstruction at the state register (cold) or
      the covering commit point plus interpreter roll-forward (hot),
      filtering of speculative faults, delivery to guest handlers;
    - the three-stage misalignment machinery's runtime side
      (stage-1 regeneration exits, stage-3 discards, OS-priced traps);
    - FP/MMX/SSE speculation-miss recoveries;
    - self-modifying code: write-watch on source pages, invalidation,
      precise restart when a block modifies itself;
    - system services through the BTLib, with kernel/idle time folded
      into the accounting. *)

type outcome =
  | Exited of int * Ia32.State.t  (** exit code, final precise state *)
  | Unhandled_fault of Ia32.Fault.t * Ia32.State.t
  | Out_of_fuel

(** Commit events: the points where the engine materialises a full precise
    IA-32 state and the guest's behaviour becomes observable. The lockstep
    differential vehicle ({!Lockstep}) compares the engine against the
    reference interpreter exactly here. *)
type commit_event =
  | Commit_syscall of int  (** about to perform the OS's syscall *)
  | Commit_fault of Ia32.Fault.t  (** precise architectural fault *)
  | Commit_exit of int

type t = {
  config : Config.t;
  mem : Ia32.Memory.t;
  tcache : Ipf.Tcache.t;
  cache : Block.cache;
  acct : Account.t;
  machine : Ipf.Machine.t;
  exec : Ipf.Exec.t;  (** pre-decoded fast path over [machine] *)
  vos : Btlib.Vos.t;
  btlib : (module Btlib.Btos.S);
  cold_env : Cold.env;
  mutable candidates : int list;  (** registered cold block ids *)
  stage2_entries : (int, unit) Hashtbl.t;
      (** entries to (re)generate with stage-2 avoidance *)
  avoid_entries : (int, unit) Hashtbl.t;
      (** entries whose hot regeneration uses full avoidance (stage 3) *)
  mutable smc_pending : Block.t list;
  mutable running_block : Block.t option;
  if_counts : (int, int ref) Hashtbl.t;  (** interpret-first profile *)
  if_taken : (int, int ref) Hashtbl.t;
  mutable fuel : int;
  mutable on_commit : (commit_event -> Ia32.State.t -> unit) option;
      (** observer called with the precise state at every commit event *)
  mutable on_dispatch : (int -> unit) option;
      (** called with the target EIP at every slow-path dispatch; only the
          chaos primitives below are safe to call from it *)
  interp_only : (int, unit) Hashtbl.t;
      (** entries demoted to interpret-only by the degradation ladder *)
  interp_only_pages : (int, unit) Hashtbl.t;
      (** source pages degraded wholesale by SMC-storm detection *)
  retrans_counts : (int, int) Hashtbl.t;
      (** per-entry invalidation-driven retranslation counts *)
  smc_page_hits : (int, int * int) Hashtbl.t;
      (** per-page SMC-storm window: window start (in dispatches), hits *)
  mutable snapshots : epoch list;
      (** open snapshot epochs, innermost first; see {!snapshot} *)
  mutable snap_next_id : int;
  mutable max_cycles : int option;
      (** runaway-guest watchdog: when set, a structured [Bt_error]
          (component ["watchdog"]) is raised once the virtual clock
          passes this value. Checked at every dispatch and, via bounded
          machine-run chunks, even inside fully chained translated loops
          that never re-enter the dispatcher. *)
  mutable snap_every : int option;
      (** auto-snapshot cadence: when set to [Some n], every [n]-th
          syscall commit takes a barrier {!snapshot} at the commit point
          (after the syscall's effects, before the thread continues).
          The continuing run is bit-identical to a replay from any of
          these snapshots: the barrier flush forces the continuation to
          re-enter cold, exactly as a revert-and-rerun would. *)
  mutable commits_seen : int;
      (** syscall commits observed by the auto-snapshot cadence *)
  mutable trace : Obs.Trace.t option;
      (** structured event trace; attach with {!attach_trace}. Recording
          only — never perturbs cycle counts or [Account] totals *)
  mutable profile : Obs.Profile.t option;
      (** per-block cycle attribution; attach with {!attach_profile} *)
  mutable sampler : Obs.Sample.t option;
      (** virtual-cycle sampling profiler; attach with {!attach_sample} *)
  mutable hists : Obs.Hist.set option;
      (** latency/size histograms; attach with {!attach_hists} *)
  mutable timers : Obs.Timers.t option;
      (** host-side phase wall-timers; attach with {!attach_timers} *)
  mutable translate_filter :
    (phase:Obs.Trace.phase ->
    entry:int ->
    entry_tos:int ->
    flag:bool ->
    live:(unit -> Block.t option) ->
    Block.t option)
    option;
      (** Interposes on every translation request (persistent-cache hook).
          The filter is total: it either installs an equivalent block
          itself or calls [live] (the normal translator, with all its side
          effects) exactly once and returns its result. Behaviour must be
          indistinguishable from [live] — observables, cycle charges and
          [Account] totals included; only host work may differ. [flag] is
          the stage-2 marker for cold requests, the avoidance marker for
          hot ones. Cold [live] never returns [None] (it raises on
          failure); a hot [None] means the trace was declined and the cold
          block stays. *)
}

and epoch
(** Everything one {!snapshot} captured besides guest memory (which the
    [Ia32.Memory.Journal] epoch pushed alongside it holds). *)

exception Smc_abort
(** Internal: the currently running block modified its own source bytes;
    unwind to the engine for precise restart. *)

val create :
  ?config:Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  btlib:(module Btlib.Btos.S) ->
  Ia32.Memory.t ->
  t
(** Create an engine over guest memory. Performs the BTOS version
    handshake with the BTLib ({!Btlib.Btos.init}) and installs the
    write-watch used for SMC detection.
    @raise Btlib.Btos.Version_mismatch when the handshake fails. *)

val run : ?fuel:int -> t -> Ia32.State.t -> outcome
(** Execute the guest from a precise IA-32 state until it exits, dies on
    an unhandled fault, or exhausts [fuel] (simulated machine slots). *)

(** {2 Snapshots}

    Copy-on-write checkpoints of the whole execution — guest memory
    through the page journal (O(pages touched)), plus the translator's
    accounting, machine timing state, dcache model, OS checkpoint and
    policy tables. Only legal at engine rest: before {!run} or after it
    returned. Epochs nest. *)

val snapshot : ?barrier:bool -> t -> int
(** Open a snapshot epoch; returns its id. With [barrier:true] (default
    false) the translation cache is flushed first, so the original run
    continues cold from the snapshot point exactly as a replay from the
    snapshot will — the post-snapshot execution is bit-identical between
    the two (crash capsules record barrier snapshots). With
    [barrier:false] translations stay warm: {!revert} invalidates only
    blocks whose source pages the epoch touched, which is what lets a
    fork-server keep translated code across thousands of mutated runs.
    Emits a [Snapshot] trace event carrying the absolute trace index,
    the time-travel anchor. *)

val revert : t -> int list
(** Pop the innermost epoch and rewind everything to it. Returns the
    page numbers the epoch had touched.
    @raise Invalid_argument when no epoch is open. *)

val commit_snapshot : t -> unit
(** Pop the innermost epoch keeping all changes (folds the page journal
    into the parent epoch, if any).
    @raise Invalid_argument when no epoch is open. *)

val snapshot_depth : t -> int

val pages_restored : t -> int
(** Cumulative pages restored by {!revert} over the engine's lifetime —
    what the O(pages touched) test asserts on. *)

val epoch_id : epoch -> int
val epoch_trace_index : epoch -> int

val epoch_for_event : t -> int -> int option
(** [epoch_for_event t idx] is the id of the innermost open epoch whose
    snapshot was taken at or before absolute trace event index [idx] —
    i.e. the snapshot that can rewind the run to just before that traced
    event. *)

(** {2 Graceful degradation}

    The degradation ladder bounds how much retranslation churn one entry
    or source page can cause: repeated invalidation-driven retranslations
    escalate an entry to stage-2 then stage-3 misalignment avoidance and
    finally to interpret-only; an SMC storm (too many invalidation events
    on one source page within a dispatch window) degrades the whole page
    to interpretation. Under attack the engine loses throughput but keeps
    making forward progress. *)

val interp_only_at : t -> int -> bool
(** [interp_only_at t eip] is true when the degradation ladder has demoted
    [eip] (or its source page) to interpretation. *)

val blacklist_entry : t -> int -> unit
(** Force an entry onto the last rung: interpret-only from now on. *)

val degrade_page_to_interp : t -> int -> bool
(** Degrade a whole source page (page number, not address) to
    interpretation. Returns true when the currently running block had to
    be deferred, i.e. a caller inside translated code must abort. *)

(** {2 Chaos primitives}

    Semantics-preserving perturbations for the deterministic fault
    injector ({!Harness.Inject}): each forces a slow recovery path
    without changing the architectural state the guest observes. Only
    safe at dispatch boundaries (the [on_dispatch] hook), never while the
    machine is mid-block. *)

val force_tos_rotation : t -> by:int -> unit
(** Rotate the physical FP stack so the next block-head TOS check misses.
    Architecture-preserving: every ST(i) keeps its value. No-op unless
    FP-stack speculation is enabled. *)

val force_sse_scramble : t -> unit
(** Rewrite every XMM register to the packed-double container format
    (bit-exact), defeating SSE format speculation at the next checked
    block head. No-op unless SSE format speculation is enabled. *)

val spurious_smc_invalidate : t -> max:int -> int
(** Invalidate up to [max] live blocks as if their source pages had been
    written. Returns the number invalidated. *)

val force_cache_flush : t -> unit
(** Force a wholesale translation-cache flush (eviction storm). *)

val distribution : t -> Account.distribution
(** Final execution-time distribution (Figures 6/7). *)

val clock : t -> int
(** Total virtual time so far (guest + overhead + kernel + idle cycles)
    — the same clock the watchdog and trace timestamps use. *)

val current_tid : t -> int
(** Tid of the currently scheduled guest thread (0 when single-threaded).
    Inside an [on_commit] observer this is the committing thread: the
    scheduler switches only after the syscall completes. *)

val capture : t -> Ia32.State.t
(** Snapshot the current architectural state (block-boundary
    precision). *)

(** {2 Observability}

    All hooks only record — they never charge cycles or alter control
    flow, so cycle counts and [Account] totals are bit-identical with or
    without them attached. *)

val attach_trace : t -> Obs.Trace.t -> unit
(** Attach a trace: installs the engine's virtual clock as the trace
    timestamp source and wires the tcache and Vos emitters to the same
    buffer. *)

val attach_profile : t -> Obs.Profile.t -> unit
(** Attach a profile: installs a machine charge probe that mirrors every
    executed cycle onto the guest block owning the current bundle (same
    [find_by_bundle] lookup as the cold/hot bucket split). The probe slot
    is shared with the sampler — both may be attached at once. *)

val attach_sample : t -> Obs.Sample.t -> unit
(** Attach a virtual-cycle sampler: the shared charge probe polls the
    deterministic clock and, at every crossed interval boundary, folds a
    sample (tid, last committed EIP, owning block entry, translation
    phase, degradation state). Engine commit points (dispatch, syscall
    completion, interpreter block boundaries) also poll, so overhead/
    kernel/idle time is attributed too. Recording only: observables —
    cycles included — are bit-identical with or without it. *)

val attach_hists : t -> Obs.Hist.set -> unit
(** Attach latency/size histograms: syscall latency, futex wait, trace
    length, tcache probe depth, translation cost per block (all in
    deterministic virtual units) and snapshot/revert cost (host
    microseconds). Recording only. *)

val attach_timers : t -> Obs.Timers.t -> unit
(** Attach host-side phase wall-timers (translate / execute / snapshot;
    the CLI records persist-I/O spans into the same set around
    Persist load/save). Informational: wall times are host-dependent. *)

val trace : t -> Obs.Trace.t option
val profile : t -> Obs.Profile.t option
val sampler : t -> Obs.Sample.t option
val hists : t -> Obs.Hist.set option
val timers : t -> Obs.Timers.t option

val live_blocks : t -> int
(** Number of live blocks in the block cache. *)

val metrics : t -> Obs.Metrics.t
(** Snapshot everything measurable into the stable ["ia32el-metrics/2"]
    schema: cycle distribution, [Account] counters, instruction volume,
    machine stats, tcache/dcache occupancy, Vos totals, per-thread
    counters (multithreaded guests only), and — when attached — trace,
    top-10 profile, histogram ("hist"), sampler ("sample") and host
    wall-timer ("host_timers") sections. Sections for detached observers
    are omitted, so a detached /2 snapshot differs from /1 only in the
    schema string. *)
