(* Translation templates: one emission routine per IA-32 instruction
   variant, shared by cold code generation and hot IL generation (the paper
   derives both from the same template source). The driver provides a
   context with register allocation, emission, control-flow hooks and the
   per-instruction EFLAGS plan; templates emit IPF instructions observing
   the precise-state ordering rule: loads, compute, stores, then
   architectural register/flag updates. *)

open Ia32.Insn
module I = Ipf.Insn

(* How a memory access of a given width is emitted (paper §5 misalignment
   machinery). *)
type ma_policy =
  | Ma_plain (* straight access; misalignment faults to the OS path *)
  | Ma_detect (* stage 1: detect and branch out to regenerate the block *)
  | Ma_avoid of int (* avoidance at granularity g *)
  | Ma_avoid_record of int * int (* granularity, profile-slot address *)

(* EFLAGS plan for one IA-32 instruction, decided by the driver from the
   liveness analysis and the fusion peephole. *)
type flag_plan =
  | Plan_none
  | Plan_set of flag list
  | Plan_fuse of cond * flag list (* compute cond predicate + set extras *)

(* The flag-producer record: enough information to materialize any EFLAGS
   bit of the producing instruction later (lazy flags). *)
type producer = {
  p_op : [ `Add | `Sub | `Logic | `Shl | `Shr | `Sar | `Rol | `Ror | `Mul of int ];
  p_size : size;
  p_a : int; (* first operand, canonical *)
  p_b : int; (* second operand, canonical *)
  p_res : int; (* result, canonical *)
  p_full : int; (* unmasked 64-bit result (add/sub); otherwise p_res *)
  p_guard : int option; (* flag updates predicated (CL shifts) *)
  p_cin : bool; (* a carry/borrow-in participated (ADC/SBB) *)
}

type ctx = {
  (* emission *)
  emit : I.t -> unit;
  emit_stop : unit -> unit;
  new_label : unit -> int;
  bind : int -> unit;
  local : int -> I.target;
  (* register allocation *)
  fresh : unit -> int;
  ffresh : unit -> int;
  pfresh : unit -> int;
  (* effective addresses (hot version does CSE) *)
  ea : ctx -> mem -> int;
  (* control flow / exits *)
  goto : ctx -> int -> unit;
  goto_if : ctx -> pr:int -> int -> unit;
  indirect : ctx -> unit;
  syscall : ctx -> int -> unit;
  guest_fault : ctx -> ?pr:int -> int -> unit; (* IA-32 vector *)
  misalign_out : ctx -> pr:int -> unit; (* stage-1 regeneration trigger *)
  (* state *)
  fp : Fpmap.t;
  xmm_fmt : int array; (* static format per xmm; -1 = untouched *)
  xmm_entry : int array; (* entry format requirement; -1 = none *)
  mutable uses_mmx : bool;
  mutable mmx_exit_tag : int; (* TAG mask at exit of an MMX block (EMMS -> 0) *)
  mutable mmx_written : int; (* MMX registers written by this block *)
  mutable cur_ip : int;
  mutable next_ip : int;
  mutable plan : flag_plan;
  mutable fused_pred : (int * int) option; (* (p_cond, p_notcond) *)
  mutable last_producer : producer option; (* set by finish_flags, for the
                                               hot lazy-flags machinery *)
  mutable access_idx : int;
  misalign_policy : int -> int -> ma_policy; (* access index, width *)
  ma_pred_cache : (int * int, int * int) Hashtbl.t; (* (addr gr, width) *)
  config : Config.t;
}

let emit ctx sem = ctx.emit (I.mk sem)
let emitp ctx p sem = ctx.emit (I.mk ~qp:p sem)
let stop ctx = ctx.emit_stop ()

(* ---- small helpers ---------------------------------------------------- *)

(* Load an immediate into a fresh register. *)
let imm ctx v =
  let t = ctx.fresh () in
  let v = Ia32.Word.mask32 v in
  if v < 0x200000 then emit ctx (I.Addi (t, v, 0))
  else emit ctx (I.Movi (t, Int64.of_int v));
  t

let imm64 ctx v =
  let t = ctx.fresh () in
  emit ctx (I.Movi (t, v));
  t

let bytes_of = size_bytes

(* Zero-extend [src] to [size] bytes into a fresh register (no-op for
   values already canonical). *)
let zext ctx size src =
  let t = ctx.fresh () in
  emit ctx (I.Zxt (t, src, bytes_of size));
  t

let sext ctx size src =
  let t = ctx.fresh () in
  emit ctx (I.Sxt (t, src, bytes_of size));
  t

(* ---- sub-register reads/writes ---------------------------------------- *)

(* Read a guest register at [size]; result is zero-extended canonical. *)
let read_reg ctx size r =
  let g = Regs.gr_of_reg r in
  match size with
  | S32 -> g
  | S16 -> zext ctx S16 g
  | S8 ->
    let idx = reg_index r in
    let t = ctx.fresh () in
    if idx < 4 then emit ctx (I.Extru (t, g, 0, 8))
    else emit ctx (I.Extru (t, Regs.gr_of_reg (reg_of_index (idx - 4)), 8, 8));
    t

(* Write [v] (canonical at [size]) into a guest register. *)
let write_reg ctx size r v =
  match size with
  | S32 ->
    let g = Regs.gr_of_reg r in
    emit ctx (I.Mov (g, v))
  | S16 ->
    let g = Regs.gr_of_reg r in
    emit ctx (I.Dep (g, v, g, 0, 16))
  | S8 ->
    let idx = reg_index r in
    if idx < 4 then
      let g = Regs.gr_of_reg r in
      emit ctx (I.Dep (g, v, g, 0, 8))
    else
      let g = Regs.gr_of_reg (reg_of_index (idx - 4)) in
      emit ctx (I.Dep (g, v, g, 8, 8))

(* ---- effective address (default implementation; hot overrides) -------- *)

let default_ea ctx (m : mem) =
  match (m.base, m.index, m.disp) with
  | Some b, None, 0 -> Regs.gr_of_reg b
  | _ ->
    let t = ctx.fresh () in
    let base_part =
      match m.index with
      | Some (r, s) ->
        let shifted =
          if s = 1 then Regs.gr_of_reg r
          else begin
            let sh = ctx.fresh () in
            emit ctx
              (I.Shli (sh, Regs.gr_of_reg r, match s with 2 -> 1 | 4 -> 2 | _ -> 3));
            sh
          end
        in
        (match m.base with
        | Some b ->
          emit ctx (I.Add (t, Regs.gr_of_reg b, shifted));
          t
        | None -> shifted)
      | None -> (
        match m.base with Some b -> Regs.gr_of_reg b | None -> 0)
    in
    let with_disp =
      if m.disp = 0 then base_part
      else begin
        let d = ctx.fresh () in
        let disp = Ia32.Word.signed32 m.disp in
        if disp >= -0x1FFFFF && disp < 0x200000 then
          emit ctx (I.Addi (d, disp, base_part))
        else begin
          let dv = imm ctx m.disp in
          emit ctx (I.Add (d, dv, base_part))
        end;
        d
      end
    in
    (* keep guest addresses canonical 32-bit *)
    if with_disp = 0 then imm ctx 0
    else begin
      let z = ctx.fresh () in
      emit ctx (I.Zxt (z, with_disp, 4));
      z
    end

(* ---- misalignment-aware memory access --------------------------------- *)

(* Returns (p_aligned, p_mis) testing [addr] for [width]-alignment, with
   predicate reuse for equivalent addresses (paper §5 stage 3a). *)
let align_check ctx addr width =
  match Hashtbl.find_opt ctx.ma_pred_cache (addr, width) with
  | Some ps -> ps
  | None ->
    let p_al = ctx.pfresh () and p_mis = ctx.pfresh () in
    let low = ctx.fresh () in
    emit ctx (I.Andi (low, width - 1, addr));
    stop ctx;
    emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p_al, p_mis, 0, low));
    stop ctx;
    Hashtbl.replace ctx.ma_pred_cache (addr, width) (p_al, p_mis);
    (p_al, p_mis)

(* Split access at granularity [g] under predicate [p]: loads parts and
   combines (or extracts parts and stores). *)
let split_load ctx ~p ~width ~g addr dst =
  let parts = width / g in
  let part_regs =
    List.init parts (fun k ->
        let a = if k = 0 then addr else ctx.fresh () in
        if k > 0 then emitp ctx p (I.Addi (a, k * g, addr));
        let t = ctx.fresh () in
        emitp ctx p (I.Ld (g, I.Ld_none, t, a));
        t)
  in
  stop ctx;
  List.iteri
    (fun k t ->
      if k = 0 then emitp ctx p (I.Mov (dst, t))
      else emitp ctx p (I.Dep (dst, t, dst, k * g * 8, g * 8)))
    part_regs;
  stop ctx

let split_store ctx ~p ~width ~g addr src =
  let parts = width / g in
  for k = 0 to parts - 1 do
    let t = ctx.fresh () in
    emitp ctx p (I.Extru (t, src, k * g * 8, g * 8));
    let a = if k = 0 then addr else ctx.fresh () in
    if k > 0 then emitp ctx p (I.Addi (a, k * g, addr));
    emitp ctx p (I.St (g, a, t));
    stop ctx
  done

(* Emit a load of [width] bytes from [addr] into a fresh register,
   applying the block's misalignment policy. *)
let mem_load ?qp ctx ~width addr =
  let idx = ctx.access_idx in
  ctx.access_idx <- idx + 1;
  let dst = ctx.fresh () in
  let plain p =
    (match p with
    | None -> emit ctx (I.Ld (width, I.Ld_none, dst, addr))
    | Some p -> emitp ctx p (I.Ld (width, I.Ld_none, dst, addr)));
    stop ctx
  in
  if width = 1 then plain qp
  else begin
    match ctx.misalign_policy idx width with
    | Ma_plain -> plain qp
    | Ma_detect ->
      (* stage 1: if misaligned, leave to the runtime to regenerate *)
      let _, p_mis = align_check ctx addr width in
      ctx.misalign_out ctx ~pr:p_mis;
      plain qp
    | Ma_avoid g | Ma_avoid_record (g, _) ->
      let record =
        match ctx.misalign_policy idx width with
        | Ma_avoid_record (_, slot) -> Some slot
        | _ -> None
      in
      let p_al, p_mis = align_check ctx addr width in
      emitp ctx p_al (I.Ld (width, I.Ld_none, dst, addr));
      split_load ctx ~p:p_mis ~width ~g addr dst;
      (match record with
      | Some slot ->
        (* predicated profile write: note that this access misaligned *)
        let sa = imm ctx slot in
        let one = ctx.fresh () in
        emitp ctx p_mis (I.Addi (one, 1, 0));
        emitp ctx p_mis (I.St (4, sa, one));
        stop ctx
      | None -> ())
  end;
  (* merge with qualifying predicate for avoidance paths is implicit: the
     avoidance sequences above run unpredicated in cold code (qp is None
     there); hot predication wraps whole instructions *)
  dst

let mem_store ?qp ctx ~width addr src =
  let idx = ctx.access_idx in
  ctx.access_idx <- idx + 1;
  let plain p =
    (match p with
    | None -> emit ctx (I.St (width, addr, src))
    | Some p -> emitp ctx p (I.St (width, addr, src)));
    stop ctx
  in
  if width = 1 then plain qp
  else begin
    match ctx.misalign_policy idx width with
    | Ma_plain -> plain qp
    | Ma_detect ->
      let _, p_mis = align_check ctx addr width in
      ctx.misalign_out ctx ~pr:p_mis;
      plain qp
    | Ma_avoid g | Ma_avoid_record (g, _) ->
      let record =
        match ctx.misalign_policy idx width with
        | Ma_avoid_record (_, slot) -> Some slot
        | _ -> None
      in
      let p_al, p_mis = align_check ctx addr width in
      emitp ctx p_al (I.St (width, addr, src));
      stop ctx;
      split_store ctx ~p:p_mis ~width ~g addr src;
      match record with
      | Some slot ->
        let sa = imm ctx slot in
        let one = ctx.fresh () in
        emitp ctx p_mis (I.Addi (one, 1, 0));
        emitp ctx p_mis (I.St (4, sa, one));
        stop ctx
      | None -> ()
  end

(* ---- operand access ---------------------------------------------------- *)

(* When the instruction produces live flags, register operands must be
   snapshotted into temporaries: the flag formulas read the *original*
   operand values, and the destination writeback may overwrite the canonic
   register they live in. *)
let snapshot_if_flags ctx v =
  match ctx.plan with
  | Plan_none -> v
  | Plan_set _ | Plan_fuse _ ->
    let t = ctx.fresh () in
    emit ctx (I.Mov (t, v));
    t

(* Read an operand; result canonical at [size]. *)
let read_operand ctx size op =
  match op with
  | R r ->
    let v = read_reg ctx size r in
    if size = S32 then snapshot_if_flags ctx v else v
  | I v -> imm ctx (Ia32.Word.mask (bytes_of size) v)
  | M m ->
    let addr = ctx.ea ctx m in
    mem_load ctx ~width:(bytes_of size) addr

(* For read-modify-write destinations: returns (read value, writeback). *)
let rmw_operand ctx size op =
  match op with
  | R r ->
    let v0 = read_reg ctx size r in
    let v = if size = S32 then snapshot_if_flags ctx v0 else v0 in
    (v, fun res -> write_reg ctx size r res)
  | M m ->
    let addr = ctx.ea ctx m in
    let v = mem_load ctx ~width:(bytes_of size) addr in
    (v, fun res -> mem_store ctx ~width:(bytes_of size) addr res)
  | I _ -> Bt_error.fail ~component:"templates" "rmw on immediate"

let write_operand ctx size op v =
  match op with
  | R r -> write_reg ctx size r v
  | M m ->
    let addr = ctx.ea ctx m in
    mem_store ctx ~width:(bytes_of size) addr v
  | I _ -> Bt_error.fail ~component:"templates" "write to immediate"

(* ---- EFLAGS machinery -------------------------------------------------- *)

(* 0/1 into a flag GR from a predicate pair. *)
let bool01 ctx (p1, p2) dst =
  emitp ctx p1 (I.Addi (dst, 1, 0));
  emitp ctx p2 (I.Mov (dst, 0));
  stop ctx

let nbits size = 8 * bytes_of size

(* Materialize one flag into its canonic GR. *)
let set_flag ctx pr f =
  let fg = Regs.gr_of_flag f in
  let guard = pr.p_guard in
  let e sem = match guard with None -> emit ctx sem | Some p -> emitp ctx p sem in
  let w = nbits pr.p_size in
  match (f, pr.p_op) with
  | CF, (`Add | `Sub) -> e (I.Extru (fg, pr.p_full, w, 1))
  | CF, `Logic -> e (I.Mov (fg, 0))
  | CF, `Mul ovf -> e (I.Mov (fg, ovf))
  | CF, `Shl ->
    (* cf = bit (w - count) of a, when count in 1..w; p_b holds the count *)
    let nc = ctx.fresh () in
    e (I.Subi (nc, w, pr.p_b));
    stop ctx;
    let t = ctx.fresh () in
    e (I.Shru (t, pr.p_a, nc));
    stop ctx;
    e (I.Andi (fg, 1, t));
    (* counts > w leave cf = 0; count > w implies count <> 0, so this
       correction may run unguarded *)
    let p_big = ctx.pfresh () and p_small = ctx.pfresh () in
    emit ctx (I.Cmpi (I.Cltu, I.Cnorm, p_big, p_small, w, pr.p_b));
    stop ctx;
    emitp ctx p_big (I.Mov (fg, 0));
    stop ctx
  | CF, (`Shr | `Sar) ->
    let cm1 = ctx.fresh () in
    e (I.Addi (cm1, -1, pr.p_b));
    stop ctx;
    let t = ctx.fresh () in
    let base =
      if pr.p_op = `Sar then begin
        let s = ctx.fresh () in
        e (I.Sxt (s, pr.p_a, bytes_of pr.p_size));
        stop ctx;
        s
      end
      else pr.p_a
    in
    e (I.Shrs (t, base, cm1));
    stop ctx;
    e (I.Andi (fg, 1, t));
    if pr.p_op = `Shr then begin
      let p_big = ctx.pfresh () and p_small = ctx.pfresh () in
      emit ctx (I.Cmpi (I.Cltu, I.Cnorm, p_big, p_small, w, pr.p_b));
      stop ctx;
      emitp ctx p_big (I.Mov (fg, 0));
      stop ctx
    end
  | CF, `Rol -> e (I.Andi (fg, 1, pr.p_res))
  | CF, `Ror -> e (I.Extru (fg, pr.p_res, w - 1, 1))
  | ZF, _ ->
    let p1 = ctx.pfresh () and p2 = ctx.pfresh () in
    e (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 0, pr.p_res));
    stop ctx;
    (match guard with
    | None -> bool01 ctx (p1, p2) fg
    | Some g ->
      (* nest: only update under the guard *)
      let t = ctx.fresh () in
      bool01 ctx (p1, p2) t;
      emitp ctx g (I.Mov (fg, t));
      stop ctx)
  | SF, _ -> e (I.Extru (fg, pr.p_res, w - 1, 1))
  | PF, _ ->
    let b = ctx.fresh () in
    e (I.Zxt (b, pr.p_res, 1));
    stop ctx;
    let c = ctx.fresh () in
    e (I.Popcnt (c, b));
    stop ctx;
    let c1 = ctx.fresh () in
    e (I.Andi (c1, 1, c));
    stop ctx;
    e (I.Xori (fg, 1, c1))
  | AF, (`Add | `Sub) ->
    let t = ctx.fresh () in
    e (I.Xor (t, pr.p_a, pr.p_b));
    stop ctx;
    let t2 = ctx.fresh () in
    e (I.Xor (t2, t, pr.p_res));
    stop ctx;
    e (I.Extru (fg, t2, 4, 1))
  | AF, _ -> e (I.Mov (fg, 0))
  | OF, `Add ->
    let t = ctx.fresh () in
    e (I.Xor (t, pr.p_res, pr.p_a));
    let t2 = ctx.fresh () in
    e (I.Xor (t2, pr.p_res, pr.p_b));
    stop ctx;
    let t3 = ctx.fresh () in
    e (I.And (t3, t, t2));
    stop ctx;
    e (I.Extru (fg, t3, w - 1, 1))
  | OF, `Sub ->
    let t = ctx.fresh () in
    e (I.Xor (t, pr.p_a, pr.p_b));
    let t2 = ctx.fresh () in
    e (I.Xor (t2, pr.p_a, pr.p_res));
    stop ctx;
    let t3 = ctx.fresh () in
    e (I.And (t3, t, t2));
    stop ctx;
    e (I.Extru (fg, t3, w - 1, 1))
  | OF, `Logic -> e (I.Mov (fg, 0))
  | OF, `Mul ovf -> e (I.Mov (fg, ovf))
  | OF, (`Shl | `Rol) ->
    let t = ctx.fresh () in
    e (I.Extru (t, pr.p_res, w - 1, 1));
    stop ctx;
    e (I.Xor (fg, t, Regs.gr_of_flag CF))
  | OF, `Shr -> e (I.Extru (fg, pr.p_a, w - 1, 1))
  | OF, `Sar -> e (I.Mov (fg, 0))
  | OF, `Ror ->
    let t = ctx.fresh () in
    e (I.Extru (t, pr.p_res, w - 1, 1));
    let t2 = ctx.fresh () in
    e (I.Extru (t2, pr.p_res, w - 2, 1));
    stop ctx;
    e (I.Xor (fg, t, t2))
  | DF, _ -> () (* DF is never produced by ALU ops *)

(* OF/CF order: OF formulas for shifts read the canonic CF, so set CF before
   OF — and requesting OF on a shift producer forces CF to be computed. *)
let flag_order = [ CF; ZF; SF; PF; AF; OF; DF ]

let materialize ctx pr flags =
  let flags =
    match pr.p_op with
    | (`Shl | `Rol) when List.mem OF flags && not (List.mem CF flags) ->
      CF :: flags
    | _ -> flags
  in
  List.iter
    (fun f -> if List.mem f flags then set_flag ctx pr f)
    flag_order;
  if flags <> [] then stop ctx

(* Condition predicate straight from a producer (fused compare+branch). *)
let cond_pred_of_producer ctx pr c =
  let p1 = ctx.pfresh () and p2 = ctx.pfresh () in
  let cmp rel a b = emit ctx (I.Cmp (rel, I.Cnorm, p1, p2, a, b)) in
  let cmpi rel i a = emit ctx (I.Cmpi (rel, I.Cnorm, p1, p2, i, a)) in
  let signed_ops () =
    (sext ctx pr.p_size pr.p_a, sext ctx pr.p_size pr.p_b)
  in
  let direct () =
    match (pr.p_op, c) with
    | _, E -> cmpi I.Ceq 0 pr.p_res; true
    | _, Ne -> cmpi I.Cne 0 pr.p_res; true
    | `Sub, B when not pr.p_cin -> cmp I.Cltu pr.p_a pr.p_b; true
    | `Sub, Ae when not pr.p_cin -> cmp I.Cgeu pr.p_a pr.p_b; true
    | `Sub, Be when not pr.p_cin -> cmp I.Cleu pr.p_a pr.p_b; true
    | `Sub, A when not pr.p_cin -> cmp I.Cgtu pr.p_a pr.p_b; true
    | `Sub, B ->
      let t = ctx.fresh () in
      emit ctx (I.Extru (t, pr.p_full, nbits pr.p_size, 1));
      stop ctx;
      cmpi I.Ceq 1 t; true
    | `Sub, Ae ->
      let t = ctx.fresh () in
      emit ctx (I.Extru (t, pr.p_full, nbits pr.p_size, 1));
      stop ctx;
      cmpi I.Ceq 0 t; true
    | `Sub, L when not pr.p_cin ->
      let a, b = signed_ops () in
      stop ctx; cmp I.Clt a b; true
    | `Sub, Ge when not pr.p_cin ->
      let a, b = signed_ops () in
      stop ctx; cmp I.Cge a b; true
    | `Sub, Le when not pr.p_cin ->
      let a, b = signed_ops () in
      stop ctx; cmp I.Cle a b; true
    | `Sub, G when not pr.p_cin ->
      let a, b = signed_ops () in
      stop ctx; cmp I.Cgt a b; true
    | `Logic, S ->
      let s = sext ctx pr.p_size pr.p_res in
      stop ctx; cmpi I.Cgt 0 s; true (* 0 > res *)
    | `Logic, Ns ->
      let s = sext ctx pr.p_size pr.p_res in
      stop ctx; cmpi I.Cle 0 s; true
    | `Logic, L ->
      let s = sext ctx pr.p_size pr.p_res in
      stop ctx; cmpi I.Cgt 0 s; true (* OF=0, so L = SF *)
    | `Logic, Ge ->
      let s = sext ctx pr.p_size pr.p_res in
      stop ctx; cmpi I.Cle 0 s; true
    | `Logic, Le ->
      let s = sext ctx pr.p_size pr.p_res in
      stop ctx; cmpi I.Cge 0 s; true (* res<=0 signed *)
    | `Logic, G ->
      let s = sext ctx pr.p_size pr.p_res in
      stop ctx; cmpi I.Clt 0 s; true
    | `Logic, B -> emit ctx (I.Setp (p1, false)); emit ctx (I.Setp (p2, true)); true
    | `Logic, Ae -> emit ctx (I.Setp (p1, true)); emit ctx (I.Setp (p2, false)); true
    | (`Add | `Sub), S ->
      let s = ctx.fresh () in
      emit ctx (I.Extru (s, pr.p_res, nbits pr.p_size - 1, 1));
      stop ctx;
      cmpi I.Ceq 1 s; true
    | `Add, B ->
      (* cf of add: bit w of the full sum *)
      let t = ctx.fresh () in
      emit ctx (I.Extru (t, pr.p_full, nbits pr.p_size, 1));
      stop ctx;
      cmpi I.Ceq 1 t; true
    | `Add, Ae ->
      let t = ctx.fresh () in
      emit ctx (I.Extru (t, pr.p_full, nbits pr.p_size, 1));
      stop ctx;
      cmpi I.Ceq 0 t; true
    | _ -> false
  in
  if direct () then begin
    stop ctx;
    Some (p1, p2)
  end
  else None

(* Condition predicate from the canonic flag registers. *)
let cond_pred_canonic ctx c =
  let p1 = ctx.pfresh () and p2 = ctx.pfresh () in
  let fg = Regs.gr_of_flag in
  let one g = emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 1, g)) in
  let zero g = emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 0, g)) in
  (match c with
  | O -> one (fg OF)
  | No -> zero (fg OF)
  | B -> one (fg CF)
  | Ae -> zero (fg CF)
  | E -> one (fg ZF)
  | Ne -> zero (fg ZF)
  | S -> one (fg SF)
  | Ns -> zero (fg SF)
  | P -> one (fg PF)
  | Np -> zero (fg PF)
  | Be ->
    let t = ctx.fresh () in
    emit ctx (I.Or (t, fg CF, fg ZF));
    stop ctx;
    emit ctx (I.Cmpi (I.Cltu, I.Cnorm, p1, p2, 0, t))
  | A ->
    let t = ctx.fresh () in
    emit ctx (I.Or (t, fg CF, fg ZF));
    stop ctx;
    emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 0, t))
  | L ->
    let t = ctx.fresh () in
    emit ctx (I.Xor (t, fg SF, fg OF));
    stop ctx;
    emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 1, t))
  | Ge ->
    let t = ctx.fresh () in
    emit ctx (I.Xor (t, fg SF, fg OF));
    stop ctx;
    emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 0, t))
  | Le ->
    let t = ctx.fresh () in
    emit ctx (I.Xor (t, fg SF, fg OF));
    let t2 = ctx.fresh () in
    stop ctx;
    emit ctx (I.Or (t2, t, fg ZF));
    stop ctx;
    emit ctx (I.Cmpi (I.Cltu, I.Cnorm, p1, p2, 0, t2))
  | G ->
    let t = ctx.fresh () in
    emit ctx (I.Xor (t, fg SF, fg OF));
    let t2 = ctx.fresh () in
    stop ctx;
    emit ctx (I.Or (t2, t, fg ZF));
    stop ctx;
    emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p1, p2, 0, t2)));
  stop ctx;
  (p1, p2)

(* Apply the driver's flag plan after an ALU-class instruction. *)
let finish_flags ctx pr =
  ctx.last_producer <- Some pr;
  match ctx.plan with
  | Plan_none -> ()
  | Plan_set flags -> materialize ctx pr flags
  | Plan_fuse (c, extra) -> (
    materialize ctx pr extra;
    match cond_pred_of_producer ctx pr c with
    | Some ps -> ctx.fused_pred <- Some ps
    | None ->
      (* fall back: materialize everything the condition needs, evaluate
         from canonic flags *)
      materialize ctx pr (cond_uses c);
      ctx.fused_pred <- Some (cond_pred_canonic ctx c))

(* Obtain the condition predicate for a consumer (Jcc/Setcc/Cmov). *)
let cond_pred ctx c =
  match ctx.fused_pred with
  | Some ps ->
    ctx.fused_pred <- None;
    ps
  | None -> cond_pred_canonic ctx c

(* ---- stack helpers ----------------------------------------------------- *)

let esp = Regs.gr_of_reg Esp

let push32 ctx v =
  let sp = ctx.fresh () in
  emit ctx (I.Addi (sp, -4, esp));
  stop ctx;
  let sp' = ctx.fresh () in
  emit ctx (I.Zxt (sp', sp, 4));
  stop ctx;
  mem_store ctx ~width:4 sp' v;
  emit ctx (I.Mov (esp, sp'));
  stop ctx

(* pop: returns the loaded value; ESP updated after the load (precise). *)
let pop32 ctx =
  let v = mem_load ctx ~width:4 esp in
  let sp = ctx.fresh () in
  emit ctx (I.Addi (sp, 4, esp));
  stop ctx;
  emit ctx (I.Zxt (esp, sp, 4));
  stop ctx;
  v

(* ---- integer instruction templates ------------------------------------ *)

let no_guard = None

let emit_alu ctx op size dst src =
  let w = bytes_of size in
  let b = read_operand ctx size src in
  match op with
  | Add | Adc ->
    let a, writeback = rmw_operand ctx size dst in
    let t1 = ctx.fresh () in
    emit ctx (I.Add (t1, a, b));
    stop ctx;
    let full =
      if op = Adc then begin
        let t2 = ctx.fresh () in
        emit ctx (I.Add (t2, t1, Regs.gr_of_flag CF));
        stop ctx;
        t2
      end
      else t1
    in
    let res = ctx.fresh () in
    emit ctx (I.Zxt (res, full, w));
    stop ctx;
    writeback res;
    finish_flags ctx
      { p_op = `Add; p_size = size; p_a = a; p_b = b; p_res = res;
        p_full = full; p_guard = no_guard; p_cin = op = Adc }
  | Sub | Sbb | Cmp ->
    let a, writeback = rmw_operand ctx size dst in
    let t1 = ctx.fresh () in
    emit ctx (I.Sub (t1, a, b));
    stop ctx;
    let full =
      if op = Sbb then begin
        let t2 = ctx.fresh () in
        emit ctx (I.Sub (t2, t1, Regs.gr_of_flag CF));
        stop ctx;
        t2
      end
      else t1
    in
    let res = ctx.fresh () in
    emit ctx (I.Zxt (res, full, w));
    stop ctx;
    if op <> Cmp then writeback res;
    finish_flags ctx
      { p_op = `Sub; p_size = size; p_a = a; p_b = b; p_res = res;
        p_full = full; p_guard = no_guard; p_cin = op = Sbb }
  | And | Or | Xor ->
    let a, writeback = rmw_operand ctx size dst in
    let res = ctx.fresh () in
    (match op with
    | And -> emit ctx (I.And (res, a, b))
    | Or -> emit ctx (I.Or (res, a, b))
    | Xor -> emit ctx (I.Xor (res, a, b))
    | _ -> assert false);
    stop ctx;
    writeback res;
    finish_flags ctx
      { p_op = `Logic; p_size = size; p_a = a; p_b = b; p_res = res;
        p_full = res; p_guard = no_guard; p_cin = false }

let emit_test ctx size a_op b_op =
  let a = read_operand ctx size a_op in
  let b = read_operand ctx size b_op in
  let res = ctx.fresh () in
  emit ctx (I.And (res, a, b));
  stop ctx;
  finish_flags ctx
    { p_op = `Logic; p_size = size; p_a = a; p_b = b; p_res = res;
      p_full = res; p_guard = no_guard; p_cin = false }

let emit_shift_imm ctx sh size dst n =
  let w = bytes_of size in
  let bits = 8 * w in
  let n = n land 31 in
  if n <> 0 then begin
    let a, writeback = rmw_operand ctx size dst in
    let res = ctx.fresh () in
    (match sh with
    | Shl ->
      let t = ctx.fresh () in
      emit ctx (I.Shli (t, a, n));
      stop ctx;
      emit ctx (I.Zxt (res, t, w))
    | Shr -> emit ctx (I.Shrui (res, a, n))
    | Sar ->
      let s = sext ctx size a in
      stop ctx;
      let t = ctx.fresh () in
      emit ctx (I.Shrsi (t, s, n));
      stop ctx;
      emit ctx (I.Zxt (res, t, w))
    | Rol ->
      let c = n mod bits in
      if c = 0 then emit ctx (I.Mov (res, a))
      else begin
        let t1 = ctx.fresh () and t2 = ctx.fresh () in
        emit ctx (I.Shli (t1, a, c));
        emit ctx (I.Shrui (t2, a, bits - c));
        stop ctx;
        let t3 = ctx.fresh () in
        emit ctx (I.Or (t3, t1, t2));
        stop ctx;
        emit ctx (I.Zxt (res, t3, w))
      end
    | Ror ->
      let c = n mod bits in
      if c = 0 then emit ctx (I.Mov (res, a))
      else begin
        let t1 = ctx.fresh () and t2 = ctx.fresh () in
        emit ctx (I.Shrui (t1, a, c));
        emit ctx (I.Shli (t2, a, bits - c));
        stop ctx;
        let t3 = ctx.fresh () in
        emit ctx (I.Or (t3, t1, t2));
        stop ctx;
        emit ctx (I.Zxt (res, t3, w))
      end);
    stop ctx;
    writeback res;
    let op =
      match sh with
      | Shl -> `Shl | Shr -> `Shr | Sar -> `Sar | Rol -> `Rol | Ror -> `Ror
    in
    finish_flags ctx
      { p_op = op; p_size = size; p_a = a; p_b = imm ctx n; p_res = res;
        p_full = res; p_guard = no_guard; p_cin = false }
  end
  else begin
    (* zero count: no state change at all; a pending fused plan still needs
       a predicate from the canonic flags *)
    match ctx.plan with
    | Plan_fuse (c, _) -> ctx.fused_pred <- Some (cond_pred_canonic ctx c)
    | _ -> ()
  end

let emit_shift_cl ctx sh size dst =
  let w = bytes_of size in
  let bits = 8 * w in
  let cl = read_reg ctx S8 Ecx in
  let cnt = ctx.fresh () in
  emit ctx (I.Andi (cnt, 31, cl));
  stop ctx;
  let p_nz = ctx.pfresh () and p_z = ctx.pfresh () in
  emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_nz, p_z, 0, cnt));
  stop ctx;
  let a, writeback = rmw_operand ctx size dst in
  let res = ctx.fresh () in
  (match sh with
  | Shl ->
    let t = ctx.fresh () in
    emit ctx (I.Shl (t, a, cnt));
    stop ctx;
    emit ctx (I.Zxt (res, t, w))
  | Shr -> emit ctx (I.Shru (res, a, cnt))
  | Sar ->
    let s = sext ctx size a in
    stop ctx;
    let t = ctx.fresh () in
    emit ctx (I.Shrs (t, s, cnt));
    stop ctx;
    emit ctx (I.Zxt (res, t, w))
  | Rol | Ror ->
    let c = ctx.fresh () in
    emit ctx (I.Andi (c, bits - 1, cnt));
    stop ctx;
    let nc = ctx.fresh () in
    emit ctx (I.Subi (nc, bits, c));
    stop ctx;
    let t1 = ctx.fresh () and t2 = ctx.fresh () in
    (match sh with
    | Rol ->
      emit ctx (I.Shl (t1, a, c));
      emit ctx (I.Shru (t2, a, nc))
    | _ ->
      emit ctx (I.Shru (t1, a, c));
      emit ctx (I.Shl (t2, a, nc)));
    stop ctx;
    let t3 = ctx.fresh () in
    emit ctx (I.Or (t3, t1, t2));
    stop ctx;
    emit ctx (I.Zxt (res, t3, w)));
  stop ctx;
  (* count=0 leaves the value unchanged, so the unconditional write is
     correct; flags update only under p_nz *)
  writeback res;
  let op =
    match sh with
    | Shl -> `Shl | Shr -> `Shr | Sar -> `Sar | Rol -> `Rol | Ror -> `Ror
  in
  finish_flags ctx
    { p_op = op; p_size = size; p_a = a; p_b = cnt; p_res = res;
      p_full = res; p_guard = Some p_nz; p_cin = false }

(* shld/shrd flags: CF = last bit shifted out of a; SZP from result;
   OF = msb(res) ^ (msb(a) for shrd | cf for shld). Materialized directly. *)
let emit_shld ctx ~left dst r amount =
  let a, writeback = rmw_operand ctx S32 dst in
  let b = Regs.gr_of_reg r in
  let imm_cnt = match amount with Amt_imm n -> Some (n land 31) | Amt_cl -> None in
  if imm_cnt = Some 0 then begin
    match ctx.plan with
    | Plan_fuse (c, _) -> ctx.fused_pred <- Some (cond_pred_canonic ctx c)
    | _ -> ()
  end
  else begin
    let cnt, guard =
      match imm_cnt with
      | Some n -> (imm ctx n, None)
      | None ->
        let cl = read_reg ctx S8 Ecx in
        let cnt = ctx.fresh () in
        emit ctx (I.Andi (cnt, 31, cl));
        stop ctx;
        let p_nz = ctx.pfresh () and p_z = ctx.pfresh () in
        emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_nz, p_z, 0, cnt));
        stop ctx;
        (cnt, Some p_nz)
    in
    let nc = ctx.fresh () in
    emit ctx (I.Subi (nc, 32, cnt));
    stop ctx;
    let t1 = ctx.fresh () and t2 = ctx.fresh () in
    if left then begin
      emit ctx (I.Shl (t1, a, cnt));
      emit ctx (I.Shru (t2, b, nc))
    end
    else begin
      emit ctx (I.Shru (t1, a, cnt));
      emit ctx (I.Shl (t2, b, nc))
    end;
    stop ctx;
    let t3 = ctx.fresh () in
    emit ctx (I.Or (t3, t1, t2));
    stop ctx;
    let res = ctx.fresh () in
    emit ctx (I.Zxt (res, t3, 4));
    stop ctx;
    (* writeback only when count <> 0 *)
    (match guard with
    | None -> writeback res
    | Some p ->
      (match dst with
      | R rr -> emitp ctx p (I.Mov (Regs.gr_of_reg rr, res))
      | M _ -> writeback res (* value unchanged when cnt=0; store is safe *)
      | I _ -> Bt_error.fail ~component:"templates" "shld imm dst");
      stop ctx);
    let flags =
      match ctx.plan with
      | Plan_set fl -> fl
      | Plan_fuse (c, fl) -> fl @ cond_uses c
      | Plan_none -> []
    in
    let e sem = match guard with None -> emit ctx sem | Some p -> emitp ctx p sem in
    (* compute CF into a temp whenever CF or OF is needed (the OF formula
       uses the freshly shifted-out bit, not the canonic CF) *)
    let cf_tmp =
      if List.mem CF flags || (left && List.mem OF flags) then begin
        let pos = ctx.fresh () in
        if left then e (I.Subi (pos, 32, cnt)) else e (I.Addi (pos, -1, cnt));
        stop ctx;
        let t = ctx.fresh () in
        e (I.Shru (t, a, pos));
        stop ctx;
        let cf = ctx.fresh () in
        e (I.Andi (cf, 1, t));
        stop ctx;
        if List.mem CF flags then begin
          e (I.Mov (Regs.gr_of_flag CF, cf));
          stop ctx
        end;
        Some cf
      end
      else None
    in
    let pr =
      { p_op = `Logic; p_size = S32; p_a = a; p_b = b; p_res = res;
        p_full = res; p_guard = guard; p_cin = false }
    in
    List.iter
      (fun f -> if List.mem f flags then set_flag ctx pr f)
      [ ZF; SF; PF ];
    if List.mem OF flags then begin
      let t = ctx.fresh () in
      e (I.Extru (t, res, 31, 1));
      stop ctx;
      if left then
        e (I.Xor (Regs.gr_of_flag OF, t, Option.get cf_tmp))
      else begin
        let t2 = ctx.fresh () in
        e (I.Extru (t2, a, 31, 1));
        stop ctx;
        e (I.Xor (Regs.gr_of_flag OF, t, t2))
      end;
      stop ctx
    end;
    match ctx.plan with
    | Plan_fuse (c, _) -> ctx.fused_pred <- Some (cond_pred_canonic ctx c)
    | _ -> ()
  end

let emit_incdec ctx ~inc size dst =
  let w = bytes_of size in
  let a, writeback = rmw_operand ctx size dst in
  let one = imm ctx 1 in
  let full = ctx.fresh () in
  if inc then emit ctx (I.Add (full, a, one)) else emit ctx (I.Sub (full, a, one));
  stop ctx;
  let res = ctx.fresh () in
  emit ctx (I.Zxt (res, full, w));
  stop ctx;
  writeback res;
  finish_flags ctx
    { p_op = (if inc then `Add else `Sub); p_size = size; p_a = a; p_b = one;
      p_res = res; p_full = full; p_guard = no_guard; p_cin = false }

let emit_neg ctx size dst =
  let w = bytes_of size in
  let a, writeback = rmw_operand ctx size dst in
  let full = ctx.fresh () in
  emit ctx (I.Subi (full, 0, a));
  stop ctx;
  let res = ctx.fresh () in
  emit ctx (I.Zxt (res, full, w));
  stop ctx;
  writeback res;
  finish_flags ctx
    { p_op = `Sub; p_size = size; p_a = 0; p_b = a; p_res = res;
      p_full = full; p_guard = no_guard; p_cin = false }

let emit_not ctx size dst =
  let a, writeback = rmw_operand ctx size dst in
  let m = imm ctx (Ia32.Word.mask (bytes_of size) (-1)) in
  let res = ctx.fresh () in
  emit ctx (I.Xor (res, a, m));
  stop ctx;
  writeback res

(* Overflow boolean (0/1 GR) for a signed product: full <> sext(res). *)
let mul_overflow ctx full res w =
  let s = ctx.fresh () in
  emit ctx (I.Sxt (s, res, w));
  stop ctx;
  let p1 = ctx.pfresh () and p2 = ctx.pfresh () in
  emit ctx (I.Cmp (I.Cne, I.Cnorm, p1, p2, full, s));
  stop ctx;
  let ovf = ctx.fresh () in
  bool01 ctx (p1, p2) ovf;
  ovf

let emit_imul2 ctx r src immv =
  let a0 =
    match immv with
    | Some v -> imm ctx v
    | None -> Regs.gr_of_reg r
  in
  let a = sext ctx S32 a0 in
  let b0 = read_operand ctx S32 src in
  let b = sext ctx S32 b0 in
  stop ctx;
  let full = ctx.fresh () in
  emit ctx (I.Xma (full, a, b, 0));
  stop ctx;
  let res = ctx.fresh () in
  emit ctx (I.Zxt (res, full, 4));
  stop ctx;
  write_reg ctx S32 r res;
  (match ctx.plan with
  | Plan_none -> ()
  | _ ->
    let ovf = mul_overflow ctx full res 4 in
    finish_flags ctx
      { p_op = `Mul ovf; p_size = S32; p_a = a; p_b = b; p_res = res;
        p_full = full; p_guard = no_guard; p_cin = false })

let emit_mul1 ctx ~signed size src =
  let w = bytes_of size in
  let acc0 = read_reg ctx size Eax in
  let b0 = read_operand ctx size src in
  let a = if signed then sext ctx size acc0 else acc0 in
  let b = if signed then sext ctx size b0 else b0 in
  stop ctx;
  let full = ctx.fresh () in
  emit ctx (I.Xma (full, a, b, 0));
  stop ctx;
  let lo = ctx.fresh () in
  emit ctx (I.Zxt (lo, full, w));
  let hi = ctx.fresh () in
  emit ctx (I.Extru (hi, full, 8 * w, 8 * w));
  stop ctx;
  (match size with
  | S8 ->
    (* ax = hi:lo *)
    let t = ctx.fresh () in
    emit ctx (I.Dep (t, hi, lo, 8, 8));
    stop ctx;
    write_reg ctx S16 Eax t
  | S16 ->
    write_reg ctx S16 Eax lo;
    write_reg ctx S16 Edx hi
  | S32 ->
    write_reg ctx S32 Eax lo;
    write_reg ctx S32 Edx hi);
  match ctx.plan with
  | Plan_none -> ()
  | _ ->
    let ovf =
      if signed then mul_overflow ctx full lo w
      else begin
        let p1 = ctx.pfresh () and p2 = ctx.pfresh () in
        emit ctx (I.Cmpi (I.Cne, I.Cnorm, p1, p2, 0, hi));
        stop ctx;
        let o = ctx.fresh () in
        bool01 ctx (p1, p2) o;
        o
      end
    in
    finish_flags ctx
      { p_op = `Mul ovf; p_size = size; p_a = a; p_b = b; p_res = lo;
        p_full = full; p_guard = no_guard; p_cin = false }

let emit_div ctx ~signed size src =
  let w = bytes_of size in
  let b0 = read_operand ctx size src in
  (* dividend from the implicit register pair *)
  let dividend =
    match size with
    | S8 -> read_reg ctx S16 Eax
    | S16 ->
      let lo = read_reg ctx S16 Eax and hi = read_reg ctx S16 Edx in
      let t = ctx.fresh () in
      emit ctx (I.Shli (t, hi, 16));
      stop ctx;
      let d = ctx.fresh () in
      emit ctx (I.Or (d, t, lo));
      stop ctx;
      d
    | S32 ->
      let t = ctx.fresh () in
      emit ctx (I.Shli (t, Regs.gr_of_reg Edx, 32));
      stop ctx;
      let d = ctx.fresh () in
      emit ctx (I.Or (d, t, Regs.gr_of_reg Eax));
      stop ctx;
      d
  in
  (* #DE on zero divisor *)
  let p_z = ctx.pfresh () and p_nz = ctx.pfresh () in
  emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p_z, p_nz, 0, b0));
  stop ctx;
  ctx.guest_fault ctx ~pr:p_z 0;
  let dd, bb =
    if signed then begin
      let dd = ctx.fresh () in
      emit ctx (I.Sxt (dd, dividend, 2 * w));
      let bb = sext ctx size b0 in
      stop ctx;
      (dd, bb)
    end
    else (dividend, b0)
  in
  let q = ctx.fresh () and r = ctx.fresh () in
  if signed then begin
    emit ctx (I.Divs (q, dd, bb));
    emit ctx (I.Rems (r, dd, bb))
  end
  else begin
    emit ctx (I.Divu (q, dd, bb));
    emit ctx (I.Remu (r, dd, bb))
  end;
  stop ctx;
  (* #DE when the quotient does not fit *)
  let p_ovf = ctx.pfresh () and p_ok = ctx.pfresh () in
  if signed then begin
    let s = ctx.fresh () in
    emit ctx (I.Sxt (s, q, w));
    stop ctx;
    emit ctx (I.Cmp (I.Cne, I.Cnorm, p_ovf, p_ok, q, s))
  end
  else begin
    let t = ctx.fresh () in
    emit ctx (I.Shrui (t, q, 8 * w));
    stop ctx;
    emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_ovf, p_ok, 0, t))
  end;
  stop ctx;
  ctx.guest_fault ctx ~pr:p_ovf 0;
  let qz = zext ctx size q and rz = zext ctx size r in
  stop ctx;
  match size with
  | S8 ->
    let t = ctx.fresh () in
    emit ctx (I.Dep (t, rz, qz, 8, 8));
    stop ctx;
    write_reg ctx S16 Eax t
  | S16 ->
    write_reg ctx S16 Eax qz;
    write_reg ctx S16 Edx rz
  | S32 ->
    write_reg ctx S32 Eax qz;
    write_reg ctx S32 Edx rz

(* ---- FP-aware memory access ------------------------------------------- *)

(* Load an FP value of [width] (4 = single, 8 = double) into FR [dst],
   applying the misalignment policy: the aligned fast path uses ldf
   directly; avoidance paths assemble the bits on the integer side and
   transfer (expensive, like the real sequences). *)
let mem_loadf ctx ~width addr dst =
  let idx = ctx.access_idx in
  ctx.access_idx <- idx + 1;
  let plain () =
    emit ctx (I.Ldf (width, dst, addr));
    stop ctx
  in
  match ctx.misalign_policy idx width with
  | Ma_plain -> plain ()
  | Ma_detect ->
    let _, p_mis = align_check ctx addr width in
    ctx.misalign_out ctx ~pr:p_mis;
    plain ()
  | Ma_avoid g | Ma_avoid_record (g, _) ->
    let p_al, p_mis = align_check ctx addr width in
    emitp ctx p_al (I.Ldf (width, dst, addr));
    let t = ctx.fresh () in
    split_load ctx ~p:p_mis ~width ~g addr t;
    if width = 4 then emitp ctx p_mis (I.Setf_s (dst, t))
    else emitp ctx p_mis (I.Setf_d (dst, t));
    stop ctx

let mem_storef ctx ~width addr src =
  let idx = ctx.access_idx in
  ctx.access_idx <- idx + 1;
  let plain () =
    emit ctx (I.Stf (width, addr, src));
    stop ctx
  in
  match ctx.misalign_policy idx width with
  | Ma_plain -> plain ()
  | Ma_detect ->
    let _, p_mis = align_check ctx addr width in
    ctx.misalign_out ctx ~pr:p_mis;
    plain ()
  | Ma_avoid g | Ma_avoid_record (g, _) ->
    let p_al, p_mis = align_check ctx addr width in
    emitp ctx p_al (I.Stf (width, addr, src));
    let t = ctx.fresh () in
    if width = 4 then emitp ctx p_mis (I.Getf_s (t, src))
    else emitp ctx p_mis (I.Getf_d (t, src));
    stop ctx;
    split_store ctx ~p:p_mis ~width ~g addr t

(* ---- x87 templates ----------------------------------------------------- *)

(* FP status condition codes live in a dedicated GR as FNSTSW-image bits
   (C0 = 0x100, C1 = 0x200, C2 = 0x400, C3 = 0x4000). *)
let r_fpcc = 40

let fsize_width = function F32 -> 4 | F64 -> 8

(* FIST conversion matching Fpconv.fist: round-to-even, with the integer
   indefinite on NaN and out-of-range values. *)
let emit_fist ctx fr_src ~bits =
  let t = ctx.fresh () in
  emit ctx (I.Fcvt_fx (t, fr_src));
  stop ctx;
  let indef = imm64 ctx (Int64.of_int (1 lsl (bits - 1))) in
  let hi = imm64 ctx (Int64.sub (Int64.shift_left 1L (bits - 1)) 1L) in
  let lo = imm64 ctx (Int64.neg (Int64.shift_left 1L (bits - 1))) in
  stop ctx;
  let p1 = ctx.pfresh () and p1' = ctx.pfresh () in
  emit ctx (I.Cmp (I.Cgt, I.Cnorm, p1, p1', t, hi));
  stop ctx;
  emitp ctx p1 (I.Mov (t, indef));
  stop ctx;
  let p2 = ctx.pfresh () and p2' = ctx.pfresh () in
  emit ctx (I.Cmp (I.Clt, I.Cnorm, p2, p2', t, lo));
  stop ctx;
  emitp ctx p2 (I.Mov (t, indef));
  stop ctx;
  let p3 = ctx.pfresh () and p3' = ctx.pfresh () in
  emit ctx (I.Fcmp (I.Funord, p3, p3', fr_src, fr_src));
  stop ctx;
  emitp ctx p3 (I.Mov (t, indef));
  stop ctx;
  let res = ctx.fresh () in
  emit ctx (I.Zxt (res, t, bits / 8));
  stop ctx;
  res

(* FCOM condition codes into r_fpcc per the interpreter's compare_with. *)
let emit_fcom ctx fr_a fr_b =
  let t = ctx.fresh () in
  emit ctx (I.Mov (t, 0));
  stop ctx;
  let plt = ctx.pfresh () and plt' = ctx.pfresh () in
  emit ctx (I.Fcmp (I.Flt, plt, plt', fr_a, fr_b));
  let peq = ctx.pfresh () and peq' = ctx.pfresh () in
  emit ctx (I.Fcmp (I.Feq, peq, peq', fr_a, fr_b));
  let pun = ctx.pfresh () and pun' = ctx.pfresh () in
  emit ctx (I.Fcmp (I.Funord, pun, pun', fr_a, fr_b));
  stop ctx;
  emitp ctx plt (I.Addi (t, 0x100, 0));
  emitp ctx peq (I.Movi (t, 0x4000L));
  stop ctx;
  emitp ctx pun (I.Movi (t, 0x4500L));
  stop ctx;
  emit ctx (I.Mov (r_fpcc, t));
  stop ctx

let fp_apply_emit ctx op dst a b =
  match op with
  | FAdd -> emit ctx (I.Fadd (dst, a, b))
  | FSub -> emit ctx (I.Fsub (dst, a, b))
  | FSubr -> emit ctx (I.Fsub (dst, b, a))
  | FMul -> emit ctx (I.Fmul (dst, a, b))
  | FDiv -> emit ctx (I.Fdiv (dst, a, b))
  | FDivr -> emit ctx (I.Fdiv (dst, b, a))

let emit_fp ctx f =
  let fp = ctx.fp in
  match f with
  | Fld_st i ->
    let src = Fpmap.read fp i in
    let dst = Fpmap.push fp in
    emit ctx (I.Fmov (dst, src));
    stop ctx
  | Fld_m (fs, m) ->
    (* load first so a page fault precedes the stack-overflow fault, as in
       the reference interpreter *)
    let addr = ctx.ea ctx m in
    let tmp = ctx.ffresh () in
    mem_loadf ctx ~width:(fsize_width fs) addr tmp;
    let dst = Fpmap.push fp in
    emit ctx (I.Fmov (dst, tmp));
    stop ctx
  | Fld1 ->
    let dst = Fpmap.push fp in
    emit ctx (I.Fmov (dst, 1));
    stop ctx
  | Fldz ->
    let dst = Fpmap.push fp in
    emit ctx (I.Fmov (dst, 0));
    stop ctx
  | Fldpi ->
    let dst = Fpmap.push fp in
    let bits = imm64 ctx (Ia32.Fpconv.bits_of_f64 Float.pi) in
    stop ctx;
    emit ctx (I.Setf_d (dst, bits));
    stop ctx
  | Fst_st (i, pop) ->
    let src = Fpmap.read fp 0 in
    let dst = Fpmap.write fp i in
    emit ctx (I.Fmov (dst, src));
    stop ctx;
    if pop then Fpmap.pop fp
  | Fst_m (fs, m, pop) ->
    let src = Fpmap.read fp 0 in
    let addr = ctx.ea ctx m in
    mem_storef ctx ~width:(fsize_width fs) addr src;
    if pop then Fpmap.pop fp
  | Fild (is, m) ->
    let addr = ctx.ea ctx m in
    let w = match is with I16 -> 2 | I32 -> 4 in
    let v = mem_load ctx ~width:w addr in
    let s = ctx.fresh () in
    emit ctx (I.Sxt (s, v, w));
    stop ctx;
    let dst = Fpmap.push fp in
    emit ctx (I.Fcvt_xf (dst, s));
    stop ctx
  | Fist_m (is, m, pop) ->
    let src = Fpmap.read fp 0 in
    let bits = match is with I16 -> 16 | I32 -> 32 in
    let v = emit_fist ctx src ~bits in
    let addr = ctx.ea ctx m in
    mem_store ctx ~width:(bits / 8) addr v;
    if pop then Fpmap.pop fp
  | Fop_st0_st (op, i) ->
    let a = Fpmap.read fp 0 and b = Fpmap.read fp i in
    let dst = Fpmap.write fp 0 in
    fp_apply_emit ctx op dst a b;
    stop ctx
  | Fop_st_st0 (op, i, pop) ->
    let a = Fpmap.read fp i and b = Fpmap.read fp 0 in
    let dst = Fpmap.write fp i in
    fp_apply_emit ctx op dst a b;
    stop ctx;
    if pop then Fpmap.pop fp
  | Fop_m (op, fs, m) ->
    let addr = ctx.ea ctx m in
    let b = ctx.ffresh () in
    mem_loadf ctx ~width:(fsize_width fs) addr b;
    let a = Fpmap.read fp 0 in
    let dst = Fpmap.write fp 0 in
    fp_apply_emit ctx op dst a b;
    stop ctx
  | Fchs ->
    let a = Fpmap.read fp 0 in
    let dst = Fpmap.write fp 0 in
    emit ctx (I.Fneg (dst, a));
    stop ctx
  | Fabs ->
    let a = Fpmap.read fp 0 in
    let dst = Fpmap.write fp 0 in
    emit ctx (I.Fabs_ (dst, a));
    stop ctx
  | Fsqrt ->
    let a = Fpmap.read fp 0 in
    let dst = Fpmap.write fp 0 in
    emit ctx (I.Fsqrt (dst, a));
    stop ctx
  | Frndint ->
    let a = Fpmap.read fp 0 in
    let dst = Fpmap.write fp 0 in
    emit ctx (I.Frint (dst, a));
    stop ctx
  | Fcom_st (i, pops) ->
    let a = Fpmap.read fp 0 and b = Fpmap.read fp i in
    emit_fcom ctx a b;
    for _ = 1 to pops do Fpmap.pop fp done
  | Fcom_m (fs, m, pops) ->
    let a = Fpmap.read fp 0 in
    let addr = ctx.ea ctx m in
    let b = ctx.ffresh () in
    mem_loadf ctx ~width:(fsize_width fs) addr b;
    emit_fcom ctx a b;
    for _ = 1 to pops do Fpmap.pop fp done
  | Fnstsw_ax ->
    (* status word = cc bits | static TOS in bits 11-13 *)
    let t = ctx.fresh () in
    emit ctx (I.Ori (t, fp.Fpmap.vtos lsl 11, r_fpcc));
    stop ctx;
    write_reg ctx S16 Eax t
  | Fxch i -> Fpmap.fxch fp i
  | Ffree i -> Fpmap.free fp i
  | Fincstp -> Fpmap.incstp fp
  | Fdecstp -> Fpmap.decstp fp

(* ---- MMX templates ----------------------------------------------------- *)

let mmx_touch ctx =
  ctx.uses_mmx <- true;
  ctx.mmx_exit_tag <- 0xFF

let mmx_write ctx i = ctx.mmx_written <- ctx.mmx_written lor (1 lsl (i land 7))

let read_mmx_rm ctx = function
  | MM i -> Regs.gr_of_mmx i
  | MMem m ->
    let addr = ctx.ea ctx m in
    mem_load ctx ~width:8 addr

let emit_mmx ctx x =
  let lanes_op op w d src =
    mmx_touch ctx;
    mmx_write ctx d;
    let b = read_mmx_rm ctx src in
    let dg = Regs.gr_of_mmx d in
    emit ctx (op w dg dg b);
    stop ctx
  in
  match x with
  | Movd_to_mm (mm, src) ->
    mmx_touch ctx;
    mmx_write ctx mm;
    let v = read_operand ctx S32 src in
    emit ctx (I.Mov (Regs.gr_of_mmx mm, v));
    stop ctx
  | Movd_from_mm (dst, mm) ->
    mmx_touch ctx;
    let t = ctx.fresh () in
    emit ctx (I.Zxt (t, Regs.gr_of_mmx mm, 4));
    stop ctx;
    write_operand ctx S32 dst t
  | Movq_to_mm (mm, src) ->
    mmx_touch ctx;
    mmx_write ctx mm;
    let v = read_mmx_rm ctx src in
    emit ctx (I.Mov (Regs.gr_of_mmx mm, v));
    stop ctx
  | Movq_from_mm (dst, mm) -> (
    mmx_touch ctx;
    match dst with
    | MM i ->
      mmx_write ctx i;
      emit ctx (I.Mov (Regs.gr_of_mmx i, Regs.gr_of_mmx mm));
      stop ctx
    | MMem m ->
      let addr = ctx.ea ctx m in
      mem_store ctx ~width:8 addr (Regs.gr_of_mmx mm))
  | Padd (w, d, src) -> lanes_op (fun w d a b -> I.Padd (w, d, a, b)) w d src
  | Psub (w, d, src) -> lanes_op (fun w d a b -> I.Psub (w, d, a, b)) w d src
  | Pmullw (d, src) -> lanes_op (fun _ d a b -> I.Pmull (2, d, a, b)) 2 d src
  | Pand (d, src) -> lanes_op (fun _ d a b -> I.And (d, a, b)) 8 d src
  | Por (d, src) -> lanes_op (fun _ d a b -> I.Or (d, a, b)) 8 d src
  | Pxor (d, src) -> lanes_op (fun _ d a b -> I.Xor (d, a, b)) 8 d src
  | Pcmpeq (w, d, src) -> lanes_op (fun w d a b -> I.Pcmpeq (w, d, a, b)) w d src
  | Psll (w, d, n) ->
    mmx_touch ctx;
    mmx_write ctx d;
    let dg = Regs.gr_of_mmx d in
    emit ctx (I.Pshli (w, dg, dg, n));
    stop ctx
  | Psrl (w, d, n) ->
    mmx_touch ctx;
    mmx_write ctx d;
    let dg = Regs.gr_of_mmx d in
    emit ctx (I.Pshri (w, dg, dg, n));
    stop ctx
  | Emms ->
    ctx.uses_mmx <- true;
    ctx.mmx_exit_tag <- 0

(* ---- SSE templates ----------------------------------------------------- *)

(* Representation conversion of one XMM register (bit-preserving). *)
let emit_xmm_convert ctx i ~from_ ~to_ =
  let base = Regs.fr_of_xmm_base i in
  let lo = Regs.gr_of_xmm_lo i and hi = Regs.gr_of_xmm_hi i in
  let to_int () =
    if from_ = Regs.fmt_ps then begin
      let bits =
        List.init 4 (fun k ->
            let t = ctx.fresh () in
            emit ctx (I.Getf_s (t, base + k));
            t)
      in
      stop ctx;
      match bits with
      | [ b0; b1; b2; b3 ] ->
        emit ctx (I.Dep (lo, b1, b0, 32, 32));
        emit ctx (I.Dep (hi, b3, b2, 32, 32));
        stop ctx
      | _ -> assert false
    end
    else begin
      emit ctx (I.Getf_d (lo, base));
      emit ctx (I.Getf_d (hi, base + 1));
      stop ctx
    end
  in
  let from_int () =
    if to_ = Regs.fmt_ps then begin
      List.iteri
        (fun k src ->
          let t = ctx.fresh () in
          emit ctx (I.Extru (t, src, 32 * (k land 1), 32));
          stop ctx;
          emit ctx (I.Setf_s (base + k, t));
          stop ctx)
        [ lo; lo; hi; hi ];
      (* fix lane order: k=0,1 from lo; k=2,3 from hi *)
      ()
    end
    else begin
      emit ctx (I.Setf_d (base, lo));
      emit ctx (I.Setf_d (base + 1, hi));
      stop ctx
    end
  in
  if from_ = to_ then ()
  else if to_ = Regs.fmt_int then to_int ()
  else if from_ = Regs.fmt_int then from_int ()
  else begin
    (* fp-to-fp: round-trip through the integer side (bit-preserving) *)
    to_int ();
    from_int ()
  end

(* Ensure XMM register [i] is in [fmt] before use; records the entry
   requirement on first touch. *)
let xmm_require ctx i fmt =
  match ctx.xmm_fmt.(i) with
  | f when f = fmt -> ()
  | -1 ->
    ctx.xmm_entry.(i) <- fmt;
    ctx.xmm_fmt.(i) <- fmt
  | cur ->
    emit_xmm_convert ctx i ~from_:cur ~to_:fmt;
    ctx.xmm_fmt.(i) <- fmt

(* A whole-register definition: no entry requirement. *)
let xmm_define ctx i fmt = ctx.xmm_fmt.(i) <- fmt

(* Lane FRs of reg i in ps format. *)
let ps_lane i k = Regs.fr_of_xmm_base i + k

(* Source lanes for a ps operation: 4 FRs, loading from memory if needed. *)
let xmm_src_ps ctx = function
  | XM i ->
    xmm_require ctx i Regs.fmt_ps;
    List.init 4 (ps_lane i)
  | XMem m ->
    let addr = ctx.ea ctx m in
    List.init 4 (fun k ->
        let f = ctx.ffresh () in
        let a =
          if k = 0 then addr
          else begin
            let t = ctx.fresh () in
            emit ctx (I.Addi (t, 4 * k, addr));
            stop ctx;
            t
          end
        in
        mem_loadf ctx ~width:4 a f;
        f)

let xmm_src_pd ctx = function
  | XM i ->
    xmm_require ctx i Regs.fmt_pd;
    [ Regs.fr_of_xmm_base i; Regs.fr_of_xmm_base i + 1 ]
  | XMem m ->
    let addr = ctx.ea ctx m in
    List.init 2 (fun k ->
        let f = ctx.ffresh () in
        let a =
          if k = 0 then addr
          else begin
            let t = ctx.fresh () in
            emit ctx (I.Addi (t, 8, addr));
            stop ctx;
            t
          end
        in
        mem_loadf ctx ~width:8 a f;
        f)

let xmm_src_int ctx = function
  | XM i ->
    xmm_require ctx i Regs.fmt_int;
    (Regs.gr_of_xmm_lo i, Regs.gr_of_xmm_hi i)
  | XMem m ->
    let addr = ctx.ea ctx m in
    let lo = mem_load ctx ~width:8 addr in
    let t = ctx.fresh () in
    emit ctx (I.Addi (t, 8, addr));
    stop ctx;
    let hi = mem_load ctx ~width:8 t in
    (lo, hi)

let sse_apply_emit ctx op dst a b =
  match op with
  | SAdd -> emit ctx (I.Fadd (dst, a, b))
  | SSub -> emit ctx (I.Fsub (dst, a, b))
  | SMul -> emit ctx (I.Fmul (dst, a, b))
  | SDiv -> emit ctx (I.Fdiv (dst, a, b))
  | SMin -> emit ctx (I.Fmin (dst, a, b))
  | SMax -> emit ctx (I.Fmax (dst, a, b))

let sse_needs_round = function
  | SAdd | SSub | SMul | SDiv -> true
  | SMin | SMax -> false

let emit_sse ctx x =
  match x with
  | Movaps (dst, src) | Movups (dst, src) -> (
    match (dst, src) with
    | XM d, XM s ->
      let fmt = if ctx.xmm_fmt.(s) = -1 then Regs.fmt_ps else ctx.xmm_fmt.(s) in
      xmm_require ctx s fmt;
      (match fmt with
      | f when f = Regs.fmt_int ->
        emit ctx (I.Mov (Regs.gr_of_xmm_lo d, Regs.gr_of_xmm_lo s));
        emit ctx (I.Mov (Regs.gr_of_xmm_hi d, Regs.gr_of_xmm_hi s))
      | f when f = Regs.fmt_pd ->
        emit ctx (I.Fmov (Regs.fr_of_xmm_base d, Regs.fr_of_xmm_base s));
        emit ctx (I.Fmov (Regs.fr_of_xmm_base d + 1, Regs.fr_of_xmm_base s + 1))
      | _ ->
        for k = 0 to 3 do
          emit ctx (I.Fmov (ps_lane d k, ps_lane s k))
        done);
      stop ctx;
      xmm_define ctx d fmt
    | XM d, XMem m ->
      let fmt = if ctx.xmm_fmt.(d) = -1 then Regs.fmt_ps else ctx.xmm_fmt.(d) in
      let addr = ctx.ea ctx m in
      (match fmt with
      | f when f = Regs.fmt_int ->
        let lo = mem_load ctx ~width:8 addr in
        let t = ctx.fresh () in
        emit ctx (I.Addi (t, 8, addr));
        stop ctx;
        let hi = mem_load ctx ~width:8 t in
        emit ctx (I.Mov (Regs.gr_of_xmm_lo d, lo));
        emit ctx (I.Mov (Regs.gr_of_xmm_hi d, hi));
        stop ctx
      | f when f = Regs.fmt_pd ->
        mem_loadf ctx ~width:8 addr (Regs.fr_of_xmm_base d);
        let t = ctx.fresh () in
        emit ctx (I.Addi (t, 8, addr));
        stop ctx;
        mem_loadf ctx ~width:8 t (Regs.fr_of_xmm_base d + 1)
      | _ ->
        for k = 0 to 3 do
          let a =
            if k = 0 then addr
            else begin
              let t = ctx.fresh () in
              emit ctx (I.Addi (t, 4 * k, addr));
              stop ctx;
              t
            end
          in
          mem_loadf ctx ~width:4 a (ps_lane d k)
        done);
      xmm_define ctx d fmt
    | XMem m, XM s ->
      let fmt = if ctx.xmm_fmt.(s) = -1 then Regs.fmt_ps else ctx.xmm_fmt.(s) in
      xmm_require ctx s fmt;
      let addr = ctx.ea ctx m in
      (match fmt with
      | f when f = Regs.fmt_int ->
        mem_store ctx ~width:8 addr (Regs.gr_of_xmm_lo s);
        let t = ctx.fresh () in
        emit ctx (I.Addi (t, 8, addr));
        stop ctx;
        mem_store ctx ~width:8 t (Regs.gr_of_xmm_hi s)
      | f when f = Regs.fmt_pd ->
        mem_storef ctx ~width:8 addr (Regs.fr_of_xmm_base s);
        let t = ctx.fresh () in
        emit ctx (I.Addi (t, 8, addr));
        stop ctx;
        mem_storef ctx ~width:8 t (Regs.fr_of_xmm_base s + 1)
      | _ ->
        for k = 0 to 3 do
          let a =
            if k = 0 then addr
            else begin
              let t = ctx.fresh () in
              emit ctx (I.Addi (t, 4 * k, addr));
              stop ctx;
              t
            end
          in
          mem_storef ctx ~width:4 a (ps_lane s k)
        done)
    | XMem _, XMem _ -> ctx.guest_fault ctx 6)
  | Movss (dst, src) -> (
    match (dst, src) with
    | XM d, XM s ->
      xmm_require ctx s Regs.fmt_ps;
      xmm_require ctx d Regs.fmt_ps;
      emit ctx (I.Fmov (ps_lane d 0, ps_lane s 0));
      stop ctx
    | XM d, XMem m ->
      let addr = ctx.ea ctx m in
      mem_loadf ctx ~width:4 addr (ps_lane d 0);
      for k = 1 to 3 do
        emit ctx (I.Fmov (ps_lane d k, 0))
      done;
      stop ctx;
      xmm_define ctx d Regs.fmt_ps
    | XMem m, XM s ->
      (* store from the current representation: converting [s] first would
         change its parked format before a store that can fault, making the
         pre-insn recovery snapshot wrong *)
      let fmt = if ctx.xmm_fmt.(s) = -1 then Regs.fmt_ps else ctx.xmm_fmt.(s) in
      xmm_require ctx s fmt;
      let addr = ctx.ea ctx m in
      (match fmt with
      | f when f = Regs.fmt_int ->
        mem_store ctx ~width:4 addr (Regs.gr_of_xmm_lo s)
      | f when f = Regs.fmt_pd ->
        let t = ctx.fresh () in
        emit ctx (I.Getf_d (t, Regs.fr_of_xmm_base s));
        stop ctx;
        mem_store ctx ~width:4 addr t
      | _ -> mem_storef ctx ~width:4 addr (ps_lane s 0))
    | XMem _, XMem _ -> ctx.guest_fault ctx 6)
  | Movsd_x (dst, src) -> (
    match (dst, src) with
    | XM d, XM s ->
      xmm_require ctx s Regs.fmt_pd;
      xmm_require ctx d Regs.fmt_pd;
      emit ctx (I.Fmov (Regs.fr_of_xmm_base d, Regs.fr_of_xmm_base s));
      stop ctx
    | XM d, XMem m ->
      let addr = ctx.ea ctx m in
      mem_loadf ctx ~width:8 addr (Regs.fr_of_xmm_base d);
      emit ctx (I.Fmov (Regs.fr_of_xmm_base d + 1, 0));
      stop ctx;
      xmm_define ctx d Regs.fmt_pd
    | XMem m, XM s ->
      (* as for movss: no format conversion ahead of a faulting store *)
      let fmt = if ctx.xmm_fmt.(s) = -1 then Regs.fmt_pd else ctx.xmm_fmt.(s) in
      xmm_require ctx s fmt;
      let addr = ctx.ea ctx m in
      (match fmt with
      | f when f = Regs.fmt_int ->
        mem_store ctx ~width:8 addr (Regs.gr_of_xmm_lo s)
      | f when f = Regs.fmt_ps ->
        let b0 = ctx.fresh () and b1 = ctx.fresh () in
        emit ctx (I.Getf_s (b0, ps_lane s 0));
        emit ctx (I.Getf_s (b1, ps_lane s 1));
        stop ctx;
        let t = ctx.fresh () in
        emit ctx (I.Dep (t, b1, b0, 32, 32));
        stop ctx;
        mem_store ctx ~width:8 addr t
      | _ -> mem_storef ctx ~width:8 addr (Regs.fr_of_xmm_base s))
    | XMem _, XMem _ -> ctx.guest_fault ctx 6)
  | Sse_arith (op, fmt, d, src) -> (
    match fmt with
    | Packed_single ->
      let srcs = xmm_src_ps ctx src in
      xmm_require ctx d Regs.fmt_ps;
      List.iteri
        (fun k b ->
          let dst = ps_lane d k in
          if sse_needs_round op then begin
            let t = ctx.ffresh () in
            sse_apply_emit ctx op t dst b;
            stop ctx;
            emit ctx (I.Fcvt_32 (dst, t))
          end
          else sse_apply_emit ctx op dst dst b;
          stop ctx)
        srcs
    | Packed_double ->
      let srcs = xmm_src_pd ctx src in
      xmm_require ctx d Regs.fmt_pd;
      List.iteri
        (fun k b ->
          let dst = Regs.fr_of_xmm_base d + k in
          sse_apply_emit ctx op dst dst b;
          stop ctx)
        srcs
    | Scalar_single ->
      let b =
        match src with
        | XM s ->
          xmm_require ctx s Regs.fmt_ps;
          ps_lane s 0
        | XMem m ->
          let addr = ctx.ea ctx m in
          let f = ctx.ffresh () in
          mem_loadf ctx ~width:4 addr f;
          f
      in
      xmm_require ctx d Regs.fmt_ps;
      let dst = ps_lane d 0 in
      if sse_needs_round op then begin
        let t = ctx.ffresh () in
        sse_apply_emit ctx op t dst b;
        stop ctx;
        emit ctx (I.Fcvt_32 (dst, t))
      end
      else sse_apply_emit ctx op dst dst b;
      stop ctx
    | Scalar_double ->
      let b =
        match src with
        | XM s ->
          xmm_require ctx s Regs.fmt_pd;
          Regs.fr_of_xmm_base s
        | XMem m ->
          let addr = ctx.ea ctx m in
          let f = ctx.ffresh () in
          mem_loadf ctx ~width:8 addr f;
          f
      in
      xmm_require ctx d Regs.fmt_pd;
      let dst = Regs.fr_of_xmm_base d in
      sse_apply_emit ctx op dst dst b;
      stop ctx
    | Packed_int -> ctx.guest_fault ctx 6)
  | Sqrtps (d, src) ->
    let srcs = xmm_src_ps ctx src in
    xmm_define ctx d Regs.fmt_ps;
    List.iteri
      (fun k b ->
        let t = ctx.ffresh () in
        emit ctx (I.Fsqrt (t, b));
        stop ctx;
        emit ctx (I.Fcvt_32 (ps_lane d k, t));
        stop ctx)
      srcs
  | Xorps (d, src) when src = XM d ->
    (* zeroing idiom: no format conversion needed *)
    let fmt = if ctx.xmm_fmt.(d) = -1 then Regs.fmt_int else ctx.xmm_fmt.(d) in
    (match fmt with
    | f when f = Regs.fmt_int ->
      emit ctx (I.Mov (Regs.gr_of_xmm_lo d, 0));
      emit ctx (I.Mov (Regs.gr_of_xmm_hi d, 0))
    | f when f = Regs.fmt_pd ->
      emit ctx (I.Fmov (Regs.fr_of_xmm_base d, 0));
      emit ctx (I.Fmov (Regs.fr_of_xmm_base d + 1, 0))
    | _ ->
      for k = 0 to 3 do
        emit ctx (I.Fmov (ps_lane d k, 0))
      done);
    stop ctx;
    xmm_define ctx d fmt
  | Andps (d, src) | Orps (d, src) | Xorps (d, src) ->
    let blo, bhi = xmm_src_int ctx src in
    xmm_require ctx d Regs.fmt_int;
    let lo = Regs.gr_of_xmm_lo d and hi = Regs.gr_of_xmm_hi d in
    (match x with
    | Andps _ ->
      emit ctx (I.And (lo, lo, blo));
      emit ctx (I.And (hi, hi, bhi))
    | Orps _ ->
      emit ctx (I.Or (lo, lo, blo));
      emit ctx (I.Or (hi, hi, bhi))
    | _ ->
      emit ctx (I.Xor (lo, lo, blo));
      emit ctx (I.Xor (hi, hi, bhi)));
    stop ctx
  | Paddd_x (d, src) | Psubd_x (d, src) ->
    let blo, bhi = xmm_src_int ctx src in
    xmm_require ctx d Regs.fmt_int;
    let lo = Regs.gr_of_xmm_lo d and hi = Regs.gr_of_xmm_hi d in
    (match x with
    | Paddd_x _ ->
      emit ctx (I.Padd (4, lo, lo, blo));
      emit ctx (I.Padd (4, hi, hi, bhi))
    | _ ->
      emit ctx (I.Psub (4, lo, lo, blo));
      emit ctx (I.Psub (4, hi, hi, bhi)));
    stop ctx
  | Ucomiss (d, src) ->
    let b =
      match src with
      | XM s ->
        xmm_require ctx s Regs.fmt_ps;
        ps_lane s 0
      | XMem m ->
        let addr = ctx.ea ctx m in
        let f = ctx.ffresh () in
        mem_loadf ctx ~width:4 addr f;
        f
    in
    xmm_require ctx d Regs.fmt_ps;
    let a = ps_lane d 0 in
    let flags = match ctx.plan with Plan_set fl -> fl | Plan_fuse (c, fl) -> fl @ cond_uses c | Plan_none -> [] in
    if flags <> [] then begin
      let pun = ctx.pfresh () and pun' = ctx.pfresh () in
      emit ctx (I.Fcmp (I.Funord, pun, pun', a, b));
      let peq = ctx.pfresh () and peq' = ctx.pfresh () in
      emit ctx (I.Fcmp (I.Feq, peq, peq', a, b));
      let plt = ctx.pfresh () and plt' = ctx.pfresh () in
      emit ctx (I.Fcmp (I.Flt, plt, plt', a, b));
      stop ctx;
      let set01 f (p_true, p_false) =
        let fg = Regs.gr_of_flag f in
        emitp ctx p_true (I.Addi (fg, 1, 0));
        emitp ctx p_false (I.Mov (fg, 0));
        stop ctx;
        (* unordered forces ZF/PF/CF to 1 *)
        if f <> AF && f <> SF && f <> OF then begin
          emitp ctx pun (I.Addi (fg, 1, 0));
          stop ctx
        end
      in
      List.iter
        (fun f ->
          match f with
          | ZF -> set01 ZF (peq, peq')
          | CF -> set01 CF (plt, plt')
          | PF ->
            let fg = Regs.gr_of_flag PF in
            emitp ctx pun (I.Addi (fg, 1, 0));
            emitp ctx pun' (I.Mov (fg, 0));
            stop ctx
          | AF | SF | OF ->
            emit ctx (I.Mov (Regs.gr_of_flag f, 0));
            stop ctx
          | DF -> ())
        flags
    end;
    (match ctx.plan with
    | Plan_fuse (c, _) -> ctx.fused_pred <- Some (cond_pred_canonic ctx c)
    | _ -> ())
  | Cvtsi2ss (d, src) ->
    let v = read_operand ctx S32 src in
    let s = ctx.fresh () in
    emit ctx (I.Sxt (s, v, 4));
    stop ctx;
    xmm_require ctx d Regs.fmt_ps;
    let t = ctx.ffresh () in
    emit ctx (I.Fcvt_xf (t, s));
    stop ctx;
    emit ctx (I.Fcvt_32 (ps_lane d 0, t));
    stop ctx
  | Cvttss2si (r, src) ->
    let b =
      match src with
      | XM s ->
        xmm_require ctx s Regs.fmt_ps;
        ps_lane s 0
      | XMem m ->
        let addr = ctx.ea ctx m in
        let f = ctx.ffresh () in
        mem_loadf ctx ~width:4 addr f;
        f
    in
    (* truncation with the integer indefinite on overflow/NaN *)
    let t = ctx.fresh () in
    emit ctx (I.Fcvt_fxt (t, b));
    stop ctx;
    let indef = imm64 ctx 0x80000000L in
    let hi = imm64 ctx 0x7FFFFFFFL in
    let lo = imm64 ctx (-0x80000000L) in
    stop ctx;
    let p1 = ctx.pfresh () and p1' = ctx.pfresh () in
    emit ctx (I.Cmp (I.Cgt, I.Cnorm, p1, p1', t, hi));
    stop ctx;
    emitp ctx p1 (I.Mov (t, indef));
    stop ctx;
    let p2 = ctx.pfresh () and p2' = ctx.pfresh () in
    emit ctx (I.Cmp (I.Clt, I.Cnorm, p2, p2', t, lo));
    stop ctx;
    emitp ctx p2 (I.Mov (t, indef));
    stop ctx;
    let p3 = ctx.pfresh () and p3' = ctx.pfresh () in
    emit ctx (I.Fcmp (I.Funord, p3, p3', b, b));
    stop ctx;
    emitp ctx p3 (I.Mov (t, indef));
    stop ctx;
    let res = ctx.fresh () in
    emit ctx (I.Zxt (res, t, 4));
    stop ctx;
    write_reg ctx S32 r res
  | Cvtss2sd (d, src) ->
    let b =
      match src with
      | XM s when s = d ->
        (* converting [d] below rewrites its lane FRs: copy the source
           value out first *)
        xmm_require ctx s Regs.fmt_ps;
        let f = ctx.ffresh () in
        emit ctx (I.Fmov (f, ps_lane s 0));
        stop ctx;
        f
      | XM s ->
        xmm_require ctx s Regs.fmt_ps;
        ps_lane s 0
      | XMem m ->
        let addr = ctx.ea ctx m in
        let f = ctx.ffresh () in
        mem_loadf ctx ~width:4 addr f;
        f
    in
    xmm_require ctx d Regs.fmt_pd;
    emit ctx (I.Fmov (Regs.fr_of_xmm_base d, b));
    stop ctx
  | Cvtsd2ss (d, src) ->
    let b =
      match src with
      | XM s when s = d ->
        (* as for cvtss2sd: the [d] conversion clobbers the source FR *)
        xmm_require ctx s Regs.fmt_pd;
        let f = ctx.ffresh () in
        emit ctx (I.Fmov (f, Regs.fr_of_xmm_base s));
        stop ctx;
        f
      | XM s ->
        xmm_require ctx s Regs.fmt_pd;
        Regs.fr_of_xmm_base s
      | XMem m ->
        let addr = ctx.ea ctx m in
        let f = ctx.ffresh () in
        mem_loadf ctx ~width:8 addr f;
        f
    in
    xmm_require ctx d Regs.fmt_ps;
    emit ctx (I.Fcvt_32 (ps_lane d 0, b));
    stop ctx

(* ---- string operations ------------------------------------------------- *)

(* DF-dependent element delta (positive or negative, 64-bit). *)
let string_delta ctx size =
  let n = bytes_of size in
  let p_fwd = ctx.pfresh () and p_bwd = ctx.pfresh () in
  emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p_fwd, p_bwd, 0, Regs.gr_of_flag DF));
  stop ctx;
  let d = ctx.fresh () in
  emitp ctx p_fwd (I.Addi (d, n, 0));
  emitp ctx p_bwd (I.Addi (d, -n, 0));
  stop ctx;
  d

let advance ctx reg d =
  let g = Regs.gr_of_reg reg in
  let t = ctx.fresh () in
  emit ctx (I.Add (t, g, d));
  stop ctx;
  emit ctx (I.Zxt (g, t, 4));
  stop ctx

let ecx = Regs.gr_of_reg Ecx

(* Wrap [body] in a REP loop over ECX. [break_zf] stops the loop when ZF
   equals the given boolean after the body (REPE/REPNE). *)
let rep_loop ctx ?break_zf body =
  let l_top = ctx.new_label () and l_done = ctx.new_label () in
  ctx.bind l_top;
  let p_done = ctx.pfresh () and p_go = ctx.pfresh () in
  emit ctx (I.Cmpi (I.Ceq, I.Cnorm, p_done, p_go, 0, ecx));
  stop ctx;
  emitp ctx p_done (I.Br (ctx.local l_done));
  body ();
  let t = ctx.fresh () in
  emit ctx (I.Addi (t, -1, ecx));
  stop ctx;
  emit ctx (I.Zxt (ecx, t, 4));
  stop ctx;
  (match break_zf with
  | Some stop_when ->
    let p_stop = ctx.pfresh () and p_cont = ctx.pfresh () in
    emit ctx
      (I.Cmpi
         ( (if stop_when then I.Ceq else I.Cne),
           I.Cnorm, p_stop, p_cont, 1, Regs.gr_of_flag ZF ));
    stop ctx;
    emitp ctx p_stop (I.Br (ctx.local l_done))
  | None -> ());
  emit ctx (I.Br (ctx.local l_top));
  ctx.bind l_done

let emit_string ctx insn =
  let esi = Regs.gr_of_reg Esi and edi = Regs.gr_of_reg Edi in
  match insn with
  | Movs (size, rep) ->
    let w = bytes_of size in
    let d = string_delta ctx size in
    let body () =
      let v = mem_load ctx ~width:w esi in
      mem_store ctx ~width:w edi v;
      advance ctx Esi d;
      advance ctx Edi d
    in
    if rep = No_rep then body () else rep_loop ctx body
  | Stos (size, rep) ->
    let w = bytes_of size in
    let d = string_delta ctx size in
    let acc = read_reg ctx size Eax in
    let body () =
      mem_store ctx ~width:w edi acc;
      advance ctx Edi d
    in
    if rep = No_rep then body () else rep_loop ctx body
  | Lods (size, rep) ->
    let w = bytes_of size in
    let d = string_delta ctx size in
    let body () =
      let v = mem_load ctx ~width:w esi in
      write_reg ctx size Eax v;
      advance ctx Esi d
    in
    if rep = No_rep then body () else rep_loop ctx body
  | Scas (size, rep) ->
    let w = bytes_of size in
    let d = string_delta ctx size in
    (* SCAS always materializes its live flags; REPE/REPNE also need ZF *)
    let flags =
      match ctx.plan with
      | Plan_set fl -> fl
      | Plan_fuse (c, fl) -> fl @ cond_uses c
      | Plan_none -> []
    in
    let flags = if rep = Repe || rep = Repne || rep = Rep then
        if List.mem ZF flags then flags else ZF :: flags
      else flags
    in
    let body () =
      let a = read_reg ctx size Eax in
      let b = mem_load ctx ~width:w edi in
      let full = ctx.fresh () in
      emit ctx (I.Sub (full, a, b));
      stop ctx;
      let res = ctx.fresh () in
      emit ctx (I.Zxt (res, full, w));
      stop ctx;
      materialize ctx
        { p_op = `Sub; p_size = size; p_a = a; p_b = b; p_res = res;
          p_full = full; p_guard = no_guard; p_cin = false }
        flags;
      advance ctx Edi d
    in
    (match rep with
    | No_rep -> body ()
    | Repe -> rep_loop ctx ~break_zf:false body
    | Repne | Rep -> rep_loop ctx ~break_zf:true body);
    (match ctx.plan with
    | Plan_fuse (c, _) -> ctx.fused_pred <- Some (cond_pred_canonic ctx c)
    | _ -> ())
  | _ -> Bt_error.fail ~component:"templates" "emit_string: not a string op"

(* ---- flag image (pushfd/popfd) ----------------------------------------- *)

let emit_pushfd ctx =
  (* build the EFLAGS image: bit1 always set *)
  let t = ctx.fresh () in
  emit ctx (I.Addi (t, 2, 0));
  stop ctx;
  List.iter
    (fun (f, pos) ->
      emit ctx (I.Dep (t, Regs.gr_of_flag f, t, pos, 1));
      stop ctx)
    [ (CF, 0); (PF, 2); (AF, 4); (ZF, 6); (SF, 7); (DF, 10); (OF, 11) ];
  push32 ctx t

let emit_popfd ctx =
  let v = pop32 ctx in
  List.iter
    (fun (f, pos) ->
      emit ctx (I.Extru (Regs.gr_of_flag f, v, pos, 1));
      stop ctx)
    [ (CF, 0); (PF, 2); (AF, 4); (ZF, 6); (SF, 7); (DF, 10); (OF, 11) ]

(* ---- main dispatch ------------------------------------------------------ *)

let emit_insn ctx (insn : insn) =
  match insn with
  | Alu (op, size, dst, src) -> emit_alu ctx op size dst src
  | Test (size, a, b) -> emit_test ctx size a b
  | Mov (size, dst, src) ->
    let v = read_operand ctx size src in
    write_operand ctx size dst v
  | Movzx (ssize, r, src) ->
    let v = read_operand ctx ssize src in
    write_reg ctx S32 r v
  | Movsx (ssize, r, src) ->
    let v = read_operand ctx ssize src in
    let s = sext ctx ssize v in
    stop ctx;
    let res = ctx.fresh () in
    emit ctx (I.Zxt (res, s, 4));
    stop ctx;
    write_reg ctx S32 r res
  | Lea (r, m) ->
    let a = ctx.ea ctx m in
    write_reg ctx S32 r a
  | Shift (sh, size, dst, Amt_imm n) -> emit_shift_imm ctx sh size dst n
  | Shift (sh, size, dst, Amt_cl) -> emit_shift_cl ctx sh size dst
  | Shld (dst, r, amt) -> emit_shld ctx ~left:true dst r amt
  | Shrd (dst, r, amt) -> emit_shld ctx ~left:false dst r amt
  | Inc (size, dst) -> emit_incdec ctx ~inc:true size dst
  | Dec (size, dst) -> emit_incdec ctx ~inc:false size dst
  | Neg (size, dst) -> emit_neg ctx size dst
  | Not (size, dst) -> emit_not ctx size dst
  | Imul_rr (r, src) -> emit_imul2 ctx r src None
  | Imul_rri (r, src, v) ->
    (* dst = src * imm *)
    let b0 = read_operand ctx S32 src in
    let b = sext ctx S32 b0 in
    let a = sext ctx S32 (imm ctx v) in
    stop ctx;
    let full = ctx.fresh () in
    emit ctx (I.Xma (full, a, b, 0));
    stop ctx;
    let res = ctx.fresh () in
    emit ctx (I.Zxt (res, full, 4));
    stop ctx;
    write_reg ctx S32 r res;
    (match ctx.plan with
    | Plan_none -> ()
    | _ ->
      let ovf = mul_overflow ctx full res 4 in
      finish_flags ctx
        { p_op = `Mul ovf; p_size = S32; p_a = a; p_b = b; p_res = res;
          p_full = full; p_guard = no_guard; p_cin = false })
  | Mul1 (size, src) -> emit_mul1 ctx ~signed:false size src
  | Imul1 (size, src) -> emit_mul1 ctx ~signed:true size src
  | Div (size, src) -> emit_div ctx ~signed:false size src
  | Idiv (size, src) -> emit_div ctx ~signed:true size src
  | Cdq ->
    let s = sext ctx S32 (Regs.gr_of_reg Eax) in
    stop ctx;
    let t = ctx.fresh () in
    emit ctx (I.Shrsi (t, s, 31));
    stop ctx;
    emit ctx (I.Zxt (Regs.gr_of_reg Edx, t, 4));
    stop ctx
  | Cwde ->
    let v = read_reg ctx S16 Eax in
    let s = sext ctx S16 v in
    stop ctx;
    emit ctx (I.Zxt (Regs.gr_of_reg Eax, s, 4));
    stop ctx
  | Xchg (size, dst, r) ->
    let a0, writeback = rmw_operand ctx size dst in
    (* both reads must be snapshotted: each write clobbers the other's
       source when the operands alias canonic registers *)
    let a = ctx.fresh () in
    emit ctx (I.Mov (a, a0));
    let b0 = read_reg ctx size r in
    let b = ctx.fresh () in
    emit ctx (I.Mov (b, b0));
    stop ctx;
    writeback b;
    write_reg ctx size r a
  | Push op ->
    let v = read_operand ctx S32 op in
    push32 ctx v
  | Pop op -> (
    match op with
    | R r ->
      let v = pop32 ctx in
      write_reg ctx S32 r v
    | M m ->
      (* address computed with the pre-pop ESP (matches the interpreter) *)
      let addr = ctx.ea ctx m in
      let v = mem_load ctx ~width:4 esp in
      mem_store ctx ~width:4 addr v;
      let t = ctx.fresh () in
      emit ctx (I.Addi (t, 4, esp));
      stop ctx;
      emit ctx (I.Zxt (esp, t, 4));
      stop ctx
    | I _ -> ctx.guest_fault ctx 6)
  | Pushfd -> emit_pushfd ctx
  | Popfd -> emit_popfd ctx
  | Jmp t -> ctx.goto ctx t
  | Jcc (c, t) ->
    let p1, _ = cond_pred ctx c in
    ctx.goto_if ctx ~pr:p1 t
  | Call t ->
    let ret = imm ctx ctx.next_ip in
    stop ctx;
    push32 ctx ret;
    ctx.goto ctx t
  | Jmp_ind op ->
    let v = read_operand ctx S32 op in
    emit ctx (I.Mov (Regs.r_btarget, v));
    stop ctx;
    ctx.indirect ctx
  | Call_ind op ->
    let v = read_operand ctx S32 op in
    let ret = imm ctx ctx.next_ip in
    stop ctx;
    push32 ctx ret;
    emit ctx (I.Mov (Regs.r_btarget, v));
    stop ctx;
    ctx.indirect ctx
  | Ret n ->
    let v = mem_load ctx ~width:4 esp in
    let t = ctx.fresh () in
    emit ctx (I.Addi (t, 4 + n, esp));
    stop ctx;
    emit ctx (I.Zxt (esp, t, 4));
    stop ctx;
    emit ctx (I.Mov (Regs.r_btarget, v));
    stop ctx;
    ctx.indirect ctx
  | Setcc (c, dst) ->
    let ps = cond_pred ctx c in
    let t = ctx.fresh () in
    bool01 ctx ps t;
    write_operand ctx S8 dst t
  | Cmovcc (c, r, src) ->
    (* the source is always read (it can fault); the write is predicated *)
    let v = read_operand ctx S32 src in
    let p1, _ = cond_pred ctx c in
    emitp ctx p1 (I.Mov (Regs.gr_of_reg r, v));
    stop ctx
  | Movs _ | Stos _ | Lods _ | Scas _ -> emit_string ctx insn
  | Cld ->
    emit ctx (I.Mov (Regs.gr_of_flag DF, 0));
    stop ctx
  | Std ->
    emit ctx (I.Addi (Regs.gr_of_flag DF, 1, 0));
    stop ctx
  | Int_n n -> ctx.syscall ctx n
  | Hlt -> ctx.guest_fault ctx 13
  | Ud2 -> ctx.guest_fault ctx 6
  | Nop -> ()
  | Fp f -> emit_fp ctx f
  | Mmx x -> emit_mmx ctx x
  | Sse x -> emit_sse ctx x

(* ---- block head checks and exit updates -------------------------------- *)

(* Check code ids reported in Spec_fail exits. *)
let check_tos = 1
let check_tag = 2
let check_mode_fp = 3
let check_mode_mmx = 4
let check_sse = 5
let check_park = 6

(* Emit the FP-stack entry check: TOS equals the speculated value and the
   TAG satisfies the block's needs. Mismatch exits with [Spec_fail]. *)
let emit_fp_entry_check ctx ~block_id =
  let fp = ctx.fp in
  if Fpmap.(fp.used) then begin
    let p_ok = ctx.pfresh () and p_bad = ctx.pfresh () in
    emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_bad, p_ok, fp.Fpmap.entry_tos, Regs.r_tos));
    stop ctx;
    emitp ctx p_bad (I.Br (I.Out (I.Spec_fail (block_id, check_tos))));
    if fp.Fpmap.need_valid <> 0 then begin
      let t = ctx.fresh () in
      emit ctx (I.Andi (t, fp.Fpmap.need_valid, Regs.r_tag));
      stop ctx;
      let p_bad2 = ctx.pfresh () and p_ok2 = ctx.pfresh () in
      emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_bad2, p_ok2, fp.Fpmap.need_valid, t));
      stop ctx;
      emitp ctx p_bad2 (I.Br (I.Out (I.Spec_fail (block_id, check_tag))))
    end;
    if fp.Fpmap.need_empty <> 0 then begin
      let t = ctx.fresh () in
      emit ctx (I.Andi (t, fp.Fpmap.need_empty, Regs.r_tag));
      stop ctx;
      let p_bad3 = ctx.pfresh () and p_ok3 = ctx.pfresh () in
      emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_bad3, p_ok3, 0, t));
      stop ctx;
      emitp ctx p_bad3 (I.Br (I.Out (I.Spec_fail (block_id, check_tag))))
    end;
    stop ctx
  end

(* Parking check for MMX blocks: their register accesses are absolute
   (MMn lives at a fixed GR/FR index), so the physical file must sit at
   its canonic parking — no recovery rotation outstanding. *)
let emit_park_check ctx ~block_id =
  let p_bad = ctx.pfresh () and p_ok = ctx.pfresh () in
  emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_bad, p_ok, 0, Regs.r_park));
  stop ctx;
  emitp ctx p_bad (I.Br (I.Out (I.Spec_fail (block_id, check_park))));
  stop ctx

(* MMX/FP mode check: an FP block needs no FP-stale registers, an MMX block
   needs no MMX-stale registers. One compare against zero, as in the
   paper's single Boolean check. *)
let emit_mode_check ctx ~block_id ~mmx =
  let reg = if mmx then Regs.r_mstale else Regs.r_fstale in
  let chk = if mmx then check_mode_mmx else check_mode_fp in
  let p_bad = ctx.pfresh () and p_ok = ctx.pfresh () in
  emit ctx (I.Cmpi (I.Cne, I.Cnorm, p_bad, p_ok, 0, reg));
  stop ctx;
  emitp ctx p_bad (I.Br (I.Out (I.Spec_fail (block_id, chk))));
  stop ctx

(* SSE format entry check: the required format nibbles must match. *)
let emit_sse_entry_check ctx ~block_id =
  let mask = ref 0 and want = ref 0 in
  Array.iteri
    (fun i f ->
      if f >= 0 then begin
        mask := !mask lor (0xF lsl (4 * i));
        want := !want lor (f lsl (4 * i))
      end)
    ctx.xmm_entry;
  if !mask <> 0 then begin
    let m = imm ctx !mask in
    stop ctx;
    let t = ctx.fresh () in
    emit ctx (I.And (t, Regs.r_ssefmt, m));
    stop ctx;
    let w = imm ctx !want in
    stop ctx;
    let p_bad = ctx.pfresh () and p_ok = ctx.pfresh () in
    emit ctx (I.Cmp (I.Cne, I.Cnorm, p_bad, p_ok, t, w));
    stop ctx;
    emitp ctx p_bad (I.Br (I.Out (I.Spec_fail (block_id, check_sse))));
    stop ctx
  end

(* Block-exit status updates: TOS/TAG changes, FXCHG permutation restore,
   SSE format nibbles. [qp] predicates every update — required for
   conditional side exits, where the fallthrough path must not apply them
   (they run again, from the same static state, at the next exit). *)
let emit_fp_exit_update ?qp ctx =
  let emit ctx sem =
    match qp with Some p -> emitp ctx p sem | None -> emit ctx sem
  in
  let fp = ctx.fp in
  if ctx.uses_mmx then begin
    (* MMX semantics: TOS = 0, all tags valid (or empty after EMMS); MMX
       writes make the FP view of those slots stale and their MMX view
       authoritative *)
    emit ctx (I.Mov (Regs.r_tos, 0));
    emit ctx (I.Addi (Regs.r_tag, ctx.mmx_exit_tag, 0));
    stop ctx;
    if ctx.mmx_written <> 0 then begin
      emit ctx (I.Ori (Regs.r_fstale, ctx.mmx_written, Regs.r_fstale));
      stop ctx;
      let t = ctx.fresh () in
      emit ctx (I.Addi (t, ctx.mmx_written, 0));
      stop ctx;
      emit ctx (I.Andcm (Regs.r_mstale, Regs.r_mstale, t));
      stop ctx
    end
  end
  else if Fpmap.(fp.used) then begin
    (* restore the FXCHG permutation with real moves (usually empty) *)
    let cycles = Fpmap.exit_permutation fp in
    List.iter
      (fun cyc ->
        match cyc with
        | [] | [ _ ] -> ()
        | first :: _ ->
          (* slot s's value currently lives in fr(map s); write
             fr(s) := fr(map s) along the cycle, keeping fr(first) for
             the final move *)
          let tmp = ctx.ffresh () in
          emit ctx (I.Fmov (tmp, Regs.fr_of_phys first));
          stop ctx;
          let rec walk s =
            let src = fp.Fpmap.map.(s) in
            if src = first then emit ctx (I.Fmov (Regs.fr_of_phys s, tmp))
            else begin
              emit ctx (I.Fmov (Regs.fr_of_phys s, Regs.fr_of_phys src));
              stop ctx;
              walk src
            end
          in
          walk first;
          stop ctx)
      cycles;
    (* the exit TOS is a compile-time constant (entry TOS is speculated),
       so set it absolutely — idempotent across multiple exit paths *)
    if Fpmap.tos_delta fp <> 0 then begin
      emit ctx (I.Addi (Regs.r_tos, fp.Fpmap.vtos, 0));
      stop ctx
    end;
    let set_valid, set_empty = Fpmap.tag_updates fp in
    if set_valid <> 0 then begin
      emit ctx (I.Ori (Regs.r_tag, set_valid, Regs.r_tag));
      stop ctx
    end;
    if set_empty <> 0 then begin
      let t = ctx.fresh () in
      emit ctx (I.Addi (t, set_empty, 0));
      stop ctx;
      emit ctx (I.Andcm (Regs.r_tag, Regs.r_tag, t));
      stop ctx
    end;
    (* x87 writes make the MMX view of those slots stale *)
    if fp.Fpmap.written <> 0 then begin
      emit ctx (I.Ori (Regs.r_mstale, fp.Fpmap.written, Regs.r_mstale));
      stop ctx
    end
  end

let emit_sse_exit_update ?qp ctx =
  let emit ctx sem =
    match qp with Some p -> emitp ctx p sem | None -> emit ctx sem
  in
  Array.iteri
    (fun i f ->
      if f >= 0 then begin
        let t = imm ctx f in
        stop ctx;
        emit ctx (I.Dep (Regs.r_ssefmt, t, Regs.r_ssefmt, 4 * i, 4));
        stop ctx
      end)
    ctx.xmm_fmt
