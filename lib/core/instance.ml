(* One self-contained guest instance: memory + engine + architectural
   state built from an assembled image. Everything an instance touches is
   owned by it — memory (with its own write-generation counter), Vos
   (request channel, arena cursor, thread table), block cache, machine —
   so any number of instances can live in one process (a serving worker
   pool, lockstep pairs, A/B experiments) without sharing mutable state.
   The serving layer builds one instance per admitted request. *)

type t = {
  mem : Ia32.Memory.t;
  eng : Engine.t;
  mutable st : Ia32.State.t;
}

type stop =
  | Exited of int
  | Faulted of Ia32.Fault.t
  | Budget_exhausted of Bt_error.t
  | Fuel_exhausted

type result = {
  stop : stop;
  cycles : int; (* virtual clock at stop *)
  output : string; (* console output so far *)
  response : string; (* channel response so far *)
}

let create ?config ?cost ?dcache
    ?(btlib : (module Btlib.Btos.S) = (module Btlib.Linuxsim))
    (image : Ia32.Asm.image) =
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let eng = Engine.create ?config ?cost ?dcache ~btlib mem in
  { mem; eng; st }

let default_fuel = 2_000_000_000

(* The watchdog surfaces as a structured [Bt_error] out of [Engine.run];
   an instance run converts exactly that error — component "watchdog" —
   into a [Budget_exhausted] stop so pool layers can treat a blown budget
   as a normal per-request outcome rather than a harness crash. Any other
   [Bt_error] still escapes: those are translator invariant violations. *)
let run ?(fuel = default_fuel) ?max_cycles ?request t =
  (match max_cycles with Some _ as m -> t.eng.Engine.max_cycles <- m | None -> ());
  (match request with
  | Some payload -> Btlib.Vos.bind_request t.eng.Engine.vos payload
  | None -> ());
  let finish stop =
    {
      stop;
      cycles = Engine.clock t.eng;
      output = Btlib.Vos.output t.eng.Engine.vos;
      response = Btlib.Vos.response t.eng.Engine.vos;
    }
  in
  match Engine.run ~fuel t.eng t.st with
  | Engine.Exited (code, st) ->
    t.st <- st;
    finish (Exited code)
  | Engine.Unhandled_fault (f, st) ->
    t.st <- st;
    finish (Faulted f)
  | Engine.Out_of_fuel -> finish Fuel_exhausted
  | exception Bt_error.Error e when e.Bt_error.component = "watchdog" ->
    finish (Budget_exhausted e)

let metrics t = Engine.metrics t.eng
let clock t = Engine.clock t.eng

let stop_to_string = function
  | Exited c -> Printf.sprintf "exited(%d)" c
  | Faulted f -> "fault:" ^ Ia32.Fault.to_string f
  | Budget_exhausted _ -> "budget_exhausted"
  | Fuel_exhausted -> "fuel_exhausted"
