(* Hot code translation (paper §2, Figure 2).

   A heat session selects a trace of basic blocks into a hyper-block using
   the use/edge counters collected by cold instrumentation, optionally
   if-converting small diamonds and unrolling tight loops; re-decodes the
   source (cold decode results are not kept, as in the paper); generates
   IL through the shared templates with the IA-32-specific optimizations
   (address CSE, lazy EFLAGS with sideways materialization in side-exit
   stubs, FP-stack/FXCHG/SSE-format machinery, misalignment avoidance
   informed by the stage-2 profile); partitions the IL into commit regions
   delimited by irreversible instructions (stores, string operations);
   backs up overwritten canonic state per region; schedules each region by
   dependence-driven list scheduling; renames virtual registers into the
   hot pools; and emits bundles carrying commit tags.

   Precise exceptions: a fault in a hot block restores the covering commit
   region (backups + static FP snapshot) and the engine rolls forward with
   the reference interpreter. Lazy flags are flushed at region starts, so
   restored states are exact. *)

open Templates
module I = Ipf.Insn

type profile = {
  use_count : int -> int; (* block entry address -> executions *)
  taken_count : int -> int; (* block entry address -> taken-edge count *)
  misaligned : int -> int -> bool; (* block entry, access index *)
}

exception Give_up (* register pressure or unsupported shape: stay cold *)

(* ------------------------------------------------------------------ *)
(* Trace selection                                                     *)
(* ------------------------------------------------------------------ *)

type step =
  | S_src of int (* entering the source basic block at this address *)
  | S_insn of int * Ia32.Insn.insn
  | S_exit_if of int * Ia32.Insn.cond * int (* jcc addr, exit cond, target *)
  | S_diamond of
      int
      * Ia32.Insn.cond
      * (int * Ia32.Insn.insn) array
      * (int * Ia32.Insn.insn) array
      * int (* jcc addr, cond, then side, else side, join address *)
  | S_end of ender

and ender =
  | E_goto of int
  | E_insn of int * Ia32.Insn.insn (* terminator translated by template *)

(* If-conversion candidates: no flag definitions, no control flow, no
   x87/MMX/SSE (predicating those would entangle the static tracking). *)
(* Replay idempotence for a predicated side: a fault anywhere after a
   memory write re-executes the side from the commit point, and a read
   that originally executed before an aliasing write would then observe
   post-write memory (XCHG is the classic case: its re-executed load
   reads its own store). Pure store sequences replay identically (their
   sources are registers the commit restore rewinds), so the side is
   unsafe only when a write has BOTH a read at-or-before it (possible
   alias, including same-instruction RMW) and a faultable memory access
   after it. *)
let side_mem_safe insns =
  let n = Array.length insns in
  let refs k = Ia32.Insn.mem_refs (snd insns.(k)) in
  let has_read k = List.exists (fun (_, _, st) -> not st) (refs k) in
  let has_write k = List.exists (fun (_, _, st) -> st) (refs k) in
  let safe = ref true in
  for w = 0 to n - 1 do
    if has_write w then begin
      let earlier_read = ref false in
      for r = 0 to w do
        if has_read r then earlier_read := true
      done;
      let later_mem = ref false in
      for f = w + 1 to n - 1 do
        if refs f <> [] then later_mem := true
      done;
      if !earlier_read && !later_mem then safe := false
    end
  done;
  !safe

let predicable insn =
  match insn with
  | Ia32.Insn.Mov _ | Ia32.Insn.Lea _ | Ia32.Insn.Movzx _ | Ia32.Insn.Movsx _
  | Ia32.Insn.Not _ | Ia32.Insn.Xchg _ ->
    true
  | _ -> false

let select_trace (env : Cold.env) profile ~entry =
  let config = env.Cold.config in
  let mem = env.Cold.mem in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let visited = Hashtbl.create 16 in
  let ninsns = ref 0 in
  let nblocks = ref 0 in
  let code_end = ref entry in
  let fclass = ref None in
  let loop_head = ref false in
  let exception Cut of int in
  let note_class insn =
    match Discover.class_of insn with
    | Discover.C_fpu | Discover.C_mmx -> (
      let c = Discover.class_of insn in
      match !fclass with
      | Some s when Discover.class_conflict s c -> false
      | _ ->
        fclass := Some c;
        true)
    | _ -> true
  in
  let try_diamond taken fall =
    if not config.Config.enable_predication then None
    else
      match (Discover.decode_bb mem taken, Discover.decode_bb mem fall) with
      | exception (Ia32.Decode.Invalid _ | Ia32.Fault.Fault _) -> None
      | bt, bf -> (
        let side_of b =
          match b.Discover.term with
          | (Discover.T_jmp j | Discover.T_fallthrough j)
            when Array.length b.Discover.insns
                 <= config.Config.predication_max_side
                 && Array.for_all (fun (_, i) -> predicable i) b.Discover.insns
                 && side_mem_safe b.Discover.insns
            ->
            Some (b.Discover.insns, j, b.Discover.next)
          | _ -> None
        in
        match (side_of bt, side_of bf) with
        | Some (ti, tj, te), Some (fi, fj, fe) when tj = fj ->
          code_end := max !code_end (max te fe);
          Some (ti, fi, tj)
        | _ -> (
          (* one-sided hammock, the common IA-32 shape: the jcc skips
             forward over a few predicable instructions and the
             fall-through path rejoins at the branch target *)
          let rec collect addr acc n =
            if addr = taken then Some (Array.of_list (List.rev acc))
            else if n >= config.Config.predication_max_side || addr > taken
            then None
            else
              match Ia32.Decode.decode mem addr with
              | exception (Ia32.Decode.Invalid _ | Ia32.Fault.Fault _) ->
                None
              | insn, len ->
                if predicable insn then
                  collect (addr + len) ((addr, insn) :: acc) (n + 1)
                else None
          in
          match collect fall [] 0 with
          | Some fi when Array.length fi > 0 && side_mem_safe fi ->
            code_end := max !code_end taken;
            Some ([||], fi, taken)
          | _ -> None))
  in
  let rec walk addr =
    if Hashtbl.mem visited addr then begin
      if addr = entry then loop_head := true;
      push (S_end (E_goto addr))
    end
    else if
      !nblocks >= config.Config.max_trace_blocks
      || !ninsns >= config.Config.max_trace_insns
    then push (S_end (E_goto addr))
    else begin
      Hashtbl.replace visited addr ();
      incr nblocks;
      match Discover.decode_bb mem addr with
      | exception (Ia32.Decode.Invalid _ | Ia32.Fault.Fault _) ->
        push (S_end (E_goto addr))
      | bb -> (
        push (S_src addr);
        code_end := max !code_end bb.Discover.next;
        (try
           Array.iter
             (fun (a, insn) ->
               if not (Ia32.Insn.is_block_end insn) then begin
                 if not (note_class insn) then raise (Cut a);
                 push (S_insn (a, insn));
                 incr ninsns
               end)
             bb.Discover.insns
         with Cut a ->
           push (S_end (E_goto a));
           raise Exit);
        let n = Array.length bb.Discover.insns in
        let term =
          if n = 0 then None else Some bb.Discover.insns.(n - 1)
        in
        match bb.Discover.term with
        | Discover.T_jmp t -> walk t
        | Discover.T_fallthrough t -> walk t
        | Discover.T_call _ | Discover.T_indirect | Discover.T_syscall _
        | Discover.T_fault -> (
          match term with
          | Some (a, insn) when Ia32.Insn.is_block_end insn ->
            push (S_end (E_insn (a, insn)))
          | _ -> push (S_end (E_goto bb.Discover.next)))
        | Discover.T_jcc (c, taken, fall) -> (
          let a, _ = Option.get term in
          match try_diamond taken fall with
          | Some (ti, fi, join) ->
            push (S_diamond (a, c, ti, fi, join));
            walk join
          | None ->
            let uses = max 1 (profile.use_count addr) in
            let taken_n = profile.taken_count addr in
            if 2 * taken_n >= uses then begin
              push (S_exit_if (a, Ia32.Insn.cond_negate c, fall));
              walk taken
            end
            else begin
              push (S_exit_if (a, c, taken));
              walk fall
            end))
    end
  in
  (try walk entry with Exit -> ());
  (List.rev !steps, !code_end, !loop_head)

(* Unroll a self-loop trace: duplicate everything between the head and the
   E_goto-to-head, [factor] times. *)
let unroll_trace config steps ~entry ~loop_head =
  if not (loop_head && config.Config.enable_unroll) then steps
  else begin
    let body =
      List.filter (function S_end _ -> false | _ -> true) steps
    in
    let n_insns =
      List.length (List.filter (function S_insn _ -> true | _ -> false) body)
    in
    if n_insns > config.Config.unroll_max_insns then steps
    else begin
      let copies =
        List.concat (List.init config.Config.unroll_factor (fun _ -> body))
      in
      copies @ [ S_end (E_goto entry) ]
    end
  end

(* ------------------------------------------------------------------ *)
(* IL buffer with commit regions, scheduling and renaming              *)
(* ------------------------------------------------------------------ *)

(* Virtual register bases (anything >= vbase is renamed). *)
let vgr_base = 256
let vfr_base = 256
let vpr_base = 64

type region_item = R_il of I.t | R_lbl of int

type hstate = {
  (* current commit region items (reversed) *)
  mutable cur : region_item list;
  mutable region_backups : region_item list; (* reversed; run at region top *)
  mutable regions : (int * int * region_item array) list;
      (* (idx, nbackups, items) reversed *)
  mutable region_idx : int;
  mutable region_first_ip : int;
  mutable region_saved : Block.saved_loc list;
  mutable backed_up : (int, unit) Hashtbl.t; (* canonic GR backed up *)
  mutable fbacked_up : (int, unit) Hashtbl.t; (* canonic FR backed up *)
  mutable commit_maps : Block.commit_map list; (* reversed *)
  mutable store_seen : bool; (* a store was emitted for the current insn *)
  mutable vgr : int;
  mutable vfr : int;
  mutable vpr : int;
  (* external lifetime pins: virtual -> () meaning live to end *)
  pinned_gr : (int, unit) Hashtbl.t;
  pinned_fr : (int, unit) Hashtbl.t;
  (* stubs: (label, items) where items are (insn, tag) in order *)
  mutable stubs : (int * (I.t * int) list) list;
  mutable next_label : int;
  (* lazy flags *)
  pending : (Ia32.Insn.flag, producer) Hashtbl.t;
  (* address CSE *)
  mutable reg_version : int array; (* per guest reg *)
  ea_cache : (string, int) Hashtbl.t;
  mutable in_diamond : int option; (* side predicate *)
  mutable tail : (I.t * int) list; (* trace end code (reversed) *)
  mutable emitting_tail : bool;
}

let is_canonic_gr r = (r >= 8 && r <= 23) || (r >= 40 && r <= 71)
let is_canonic_fr f = f >= 8 && f <= 47

(* ------------------------------------------------------------------ *)
(* Dependence-driven list scheduling of one region                      *)
(* ------------------------------------------------------------------ *)

let res_key = function
  | I.Rgr r -> r
  | I.Rfr f -> 1000 + f
  | I.Rpr p -> 2000 + p
  | I.Rbr b -> 3000 + b
  | I.Rmem -> 4000

let is_barrier insn =
  match insn.I.sem with
  (* speculation checks are NOT barriers: their dependences (the checked
     register, store ordering for chk.a) are tracked precisely *)
  | I.Br _ | I.Br_ind _ | I.Movpr _ | I.Prmov _ -> true
  | _ -> false

let latency_estimate insn =
  match insn.I.sem with
  | I.Ld _ -> 2
  | I.Ldf _ -> 6
  | I.Xma _ | I.Xmau _ | I.Xmah _ | I.Xmahu _ | I.Pmull _ -> 4
  | I.Fadd _ | I.Fsub _ | I.Fmul _ | I.Fma _ | I.Fmin _ | I.Fmax _ | I.Fneg _
  | I.Fabs_ _ | I.Fmov _ | I.Frint _ | I.Fcvt_xf _ | I.Fcvt_fx _
  | I.Fcvt_fxt _ | I.Fcvt_32 _ ->
    4
  | I.Fdiv _ | I.Fsqrt _ | I.Divs _ | I.Divu _ | I.Rems _ | I.Remu _ -> 24
  | I.Getf_s _ | I.Getf_d _ | I.Setf_s _ | I.Setf_d _ -> 5
  | _ -> 1

(* Schedule a region: returns items in a new order together with group
   boundaries. Regions containing local labels (REP loops) are emitted in
   order, cold-style. *)
let schedule_region config ~nbackups items =
  let has_label = Array.exists (function R_lbl _ -> true | _ -> false) items in
  let in_order () =
    Array.to_list
      (Array.map
         (function
           | R_il i -> (`I (i, true) : [ `I of I.t * bool | `L of int ])
           | R_lbl l -> `L l)
         items)
  in
  if has_label || not config.Config.enable_scheduling then in_order ()
  else begin
    let ils =
      Array.of_list
        (List.filter_map
           (function R_il i -> Some i | R_lbl _ -> None)
           (Array.to_list items))
    in
    let n = Array.length ils in
    if n = 0 then []
    else begin
    (* build dependence edges *)
    let succs = Array.make n [] in
    let npreds = Array.make n 0 in
    let add_edge a b =
      if a <> b then begin
        succs.(a) <- b :: succs.(a);
        npreds.(b) <- npreds.(b) + 1
      end
    in
    let last_def = Hashtbl.create 32 in
    let uses_since_def = Hashtbl.create 32 in
    let last_barrier = ref (-1) in
    let last_store = ref (-1) in
    let mem_ops_since_store = ref [] in
    for k = 0 to n - 1 do
      let insn = ils.(k) in
      (* Hoisting above branch barriers: a control-speculative load's
         faults defer to the NaT bit (its chk.s stays put), and a plain
         computation whose writes are all virtual registers is invisible
         at exits — neither needs the branch-before-it edge. Everything
         touching canonic state, memory, predicates it doesn't own, or
         control flow stays pinned. *)
      let hoistable =
        match insn.I.sem with
        | I.Ld (_, (I.Ld_s | I.Ld_sa), _, _) -> true
        | I.St _ | I.Stf _ | I.Ld _ | I.Ldf _ | I.Br _ | I.Br_ind _
        | I.Chk_s _ | I.Chk_a _ | I.Movpr _ | I.Prmov _ | I.Invala
        | I.Mov_to_br _ ->
          false
        | _ ->
          insn.I.qp = None
          && List.for_all
               (function
                 | I.Rgr g -> g >= vgr_base
                 | I.Rfr f -> f >= vfr_base
                 | I.Rpr p -> p >= vpr_base
                 | I.Rbr _ | I.Rmem -> false)
               (I.writes insn)
      in
      if !last_barrier >= 0 && not hoistable then add_edge !last_barrier k;
      List.iter
        (fun r ->
          let key = res_key r in
          (match Hashtbl.find_opt last_def key with
          | Some d -> add_edge d k (* RAW *)
          | None -> ());
          Hashtbl.replace uses_since_def key
            (k :: (try Hashtbl.find uses_since_def key with Not_found -> [])))
        (I.reads insn);
      List.iter
        (fun r ->
          let key = res_key r in
          (match Hashtbl.find_opt last_def key with
          | Some d -> add_edge d k (* WAW *)
          | None -> ());
          (match Hashtbl.find_opt uses_since_def key with
          | Some us -> List.iter (fun u -> add_edge u k (* WAR *)) us
          | None -> ());
          Hashtbl.replace last_def key k;
          Hashtbl.remove uses_since_def key)
        (I.writes insn);
      (* memory ordering: stores are ordered against everything touching
         memory; loads only against stores *)
      (match insn.I.sem with
      | I.Chk_a _ ->
        (* the check must observe every store the advanced load was
           hoisted above, and later stores must not move above it *)
        if !last_store >= 0 then add_edge !last_store k;
        mem_ops_since_store := k :: !mem_ops_since_store
      | _ -> ());
      (match insn.I.sem with
      | I.St _ | I.Stf _ ->
        if !last_store >= 0 then add_edge !last_store k;
        List.iter (fun m -> add_edge m k) !mem_ops_since_store;
        last_store := k;
        mem_ops_since_store := []
      | I.Ld (_, I.Ld_sa, _, _) ->
        (* advanced load: free to hoist above earlier stores (the ALAT
           catches aliasing), but later stores still wait for it *)
        mem_ops_since_store := k :: !mem_ops_since_store
      | I.Ld _ | I.Ldf _ ->
        if !last_store >= 0 then add_edge !last_store k;
        mem_ops_since_store := k :: !mem_ops_since_store
      | _ -> ());
      (* region-top backups precede every other instruction: a fault or
         reconstructing exit scheduled before a backup would make the commit
         restore copy an uninitialized backup register over live state *)
      if k < nbackups then
        for j = nbackups to n - 1 do
          add_edge k j
        done;
      if is_barrier insn then begin
        (* everything before the barrier must precede it *)
        for j = 0 to k - 1 do
          add_edge j k
        done;
        last_barrier := k
      end
    done;
    (* priorities: critical-path height *)
    let height = Array.make n 0 in
    for k = n - 1 downto 0 do
      List.iter
        (fun s -> height.(k) <- max height.(k) (height.(s) + latency_estimate ils.(k)))
        succs.(k);
      if succs.(k) = [] then height.(k) <- latency_estimate ils.(k)
    done;
    (* greedy grouped list scheduling *)
    let scheduled = ref [] in
    let ready = ref [] in
    let remaining = ref n in
    for k = 0 to n - 1 do
      if npreds.(k) = 0 then ready := k :: !ready
    done;
    let group_defs = Hashtbl.create 8 in
    let group_weight = ref 0 in
    let flush_group () =
      (match !scheduled with
      | (i, _) :: rest -> scheduled := (i, true) :: rest
      | [] -> ());
      Hashtbl.reset group_defs;
      group_weight := 0
    in
    while !remaining > 0 do
      (* pick the ready insn with max height that does not RAW-depend on a
         definition in the current group *)
      let ok k =
        List.for_all
          (fun r -> not (Hashtbl.mem group_defs (res_key r)))
          (I.reads ils.(k))
      in
      let candidates = List.filter ok !ready in
      (match candidates with
      | [] -> flush_group ()
      | _ ->
        let best =
          List.fold_left
            (fun b k -> if height.(k) > height.(b) then k else b)
            (List.hd candidates) candidates
        in
        ready := List.filter (fun k -> k <> best) !ready;
        decr remaining;
        scheduled := (best, false) :: !scheduled;
        List.iter
          (fun r -> Hashtbl.replace group_defs (res_key r) ())
          (I.writes ils.(best));
        group_weight := !group_weight + (match ils.(best).I.sem with I.Movi _ -> 2 | _ -> 1);
        if !group_weight >= 6 || is_barrier ils.(best) then flush_group ();
        List.iter
          (fun s ->
            npreds.(s) <- npreds.(s) - 1;
            if npreds.(s) = 0 then ready := s :: !ready)
          succs.(best))
    done;
      flush_group ();
      List.rev_map (fun (k, stop) -> `I (ils.(k), stop)) !scheduled
    end
  end

(* ------------------------------------------------------------------ *)
(* Renaming                                                            *)
(* ------------------------------------------------------------------ *)

type final_item =
  | F_insn of I.t * int (* tag *)
  | F_stop
  | F_label of int

(* Map virtual registers to the hot pools by linear scan over the final
   order; [pinned] virtuals stay live to the end. Returns the rewritten
   items plus the virtual->physical assignment. *)
let rename_all items ~pinned_gr ~pinned_fr =
  let last_gr = Hashtbl.create 64 in
  let last_fr = Hashtbl.create 16 in
  let last_pr = Hashtbl.create 16 in
  let first_gr = Hashtbl.create 64 in
  let first_fr = Hashtbl.create 16 in
  let first_pr = Hashtbl.create 16 in
  let note first last v k =
    if not (Hashtbl.mem first v) then Hashtbl.replace first v k;
    Hashtbl.replace last v k
  in
  List.iteri
    (fun k item ->
      match item with
      | F_insn (insn, _) ->
        List.iter
          (fun r ->
            match r with
            | I.Rgr g when g >= vgr_base -> note first_gr last_gr g k
            | I.Rfr f when f >= vfr_base -> note first_fr last_fr f k
            | I.Rpr p when p >= vpr_base -> note first_pr last_pr p k
            | _ -> ())
          (I.reads insn @ I.writes insn)
      | _ -> ())
    items;
  let n_items = List.length items in
  (* loop spans: a backward branch to a local label means every virtual
     live anywhere inside the span must survive the whole span (its value
     flows around the loop) *)
  let label_pos = Hashtbl.create 8 in
  List.iteri
    (fun k item -> match item with F_label l -> Hashtbl.replace label_pos l k | _ -> ())
    items;
  let spans = ref [] in
  List.iteri
    (fun k item ->
      match item with
      | F_insn (insn, _) -> (
        let target = function
          | I.To n when n < 0 -> Hashtbl.find_opt label_pos (-1 - n)
          | _ -> None
        in
        let t =
          match insn.I.sem with
          | I.Br tg | I.Chk_s (_, tg) | I.Chk_a (_, tg) -> target tg
          | _ -> None
        in
        match t with
        | Some i when i < k -> spans := (i, k) :: !spans
        | _ -> ())
      | _ -> ())
    items;
  let extend first last =
    (* to a fixpoint: extending a lifetime into a later span can make it
       overlap further spans (nested or sequential loops) *)
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (i, j) ->
          Hashtbl.iter
            (fun v f ->
              let l = try Hashtbl.find last v with Not_found -> f in
              if f < j && l > i && l < j then begin
                Hashtbl.replace last v j;
                changed := true
              end)
            first)
        !spans
    done
  in
  extend first_gr last_gr;
  extend first_fr last_fr;
  extend first_pr last_pr;
  Hashtbl.iter (fun v () -> Hashtbl.replace last_gr v n_items) pinned_gr;
  Hashtbl.iter (fun v () -> Hashtbl.replace last_fr v n_items) pinned_fr;
  let assign_gr = Hashtbl.create 64 in
  let assign_fr = Hashtbl.create 16 in
  let assign_pr = Hashtbl.create 16 in
  let free_gr = ref (List.init (Regs.hot_pool_last - Regs.hot_pool_first + 1)
                       (fun i -> Regs.hot_pool_first + i)) in
  let free_fr = ref (List.init (Regs.hot_fpool_last - Regs.hot_fpool_first + 1)
                       (fun i -> Regs.hot_fpool_first + i)) in
  let free_pr = ref (List.init (Regs.hot_pr_last - Regs.hot_pr_first + 1)
                       (fun i -> Regs.hot_pr_first + i)) in
  let expiry = Hashtbl.create 64 in (* item idx -> (kind, phys) list *)
  let take free assign v k last =
    match Hashtbl.find_opt assign v with
    | Some p -> p
    | None ->
      let p =
        match !free with
        | p :: rest ->
          free := rest;
          p
        | [] -> raise Give_up
      in
      Hashtbl.replace assign v p;
      let l = try Hashtbl.find last v with Not_found -> k in
      Hashtbl.replace expiry l
        ((free, p) :: (try Hashtbl.find expiry l with Not_found -> []));
      p
  in
  let out = ref [] in
  List.iteri
    (fun k item ->
      (match item with
      | F_insn (insn, tag) ->
        let g r = if r >= vgr_base then take free_gr assign_gr r k last_gr else r in
        let f r = if r >= vfr_base then take free_fr assign_fr r k last_fr else r in
        let p r = if r >= vpr_base then take free_pr assign_pr r k last_pr else r in
        out := F_insn (I.map_regs ~g ~f ~p insn, tag) :: !out
      | other -> out := other :: !out);
      (* release registers whose last use was here *)
      match Hashtbl.find_opt expiry k with
      | Some l -> List.iter (fun (free, p) -> free := p :: !free) l
      | None -> ())
    items;
  (List.rev !out, assign_gr, assign_fr)

(* ------------------------------------------------------------------ *)
(* The hot translation driver                                          *)
(* ------------------------------------------------------------------ *)

(* Producers that must materialize their flags eagerly rather than through
   the lazy-pending machinery: templates without a reusable producer record
   (shld/ucomiss/scas/popfd), the MUL family (whose overflow bit is only
   computed when a plan asks for it), and conditional flag writers (CL and
   zero-count shifts, which leave the *previous* flag values in place when
   the count is zero — their guarded materialization needs the canonic
   registers to hold those previous values). *)
let odd_producer insn =
  match insn with
  | Ia32.Insn.Shld _ | Ia32.Insn.Shrd _ | Ia32.Insn.Sse (Ia32.Insn.Ucomiss _)
  | Ia32.Insn.Scas _ | Ia32.Insn.Popfd | Ia32.Insn.Imul_rr _
  | Ia32.Insn.Imul_rri _ | Ia32.Insn.Mul1 _ | Ia32.Insn.Imul1 _ ->
    true
  | _ -> Ia32.Insn.flags_def_must insn <> Ia32.Insn.flags_def insn

let flags_live_out config steps =
  let n = Array.length steps in
  let exit_mask =
    if config.Config.flags_preserved_at_exit then Discover.all_flags_mask
    else Discover.flag_bit Ia32.Insn.DF
  in
  let out = Array.make n exit_mask in
  let live = ref exit_mask in
  for k = n - 1 downto 0 do
    out.(k) <- !live;
    match steps.(k) with
    | S_insn (_, insn) | S_end (E_insn (_, insn)) ->
      let def = Discover.mask_of_flags (Ia32.Insn.flags_def_must insn) in
      let use = Discover.mask_of_flags (Ia32.Insn.flags_use insn) in
      live := !live land lnot def lor use
    | S_src _ | S_exit_if _ | S_diamond _ | S_end (E_goto _) -> ()
  done;
  out

let consumer_of_step = function
  | S_insn (_, Ia32.Insn.Jcc (c, _))
  | S_insn (_, Ia32.Insn.Setcc (c, _))
  | S_insn (_, Ia32.Insn.Cmovcc (c, _, _))
  | S_exit_if (_, c, _)
  | S_diamond (_, c, _, _, _) ->
    Some c
  | _ -> None

let translate_exn (env : Cold.env) ~entry ~entry_tos ~profile ~avoid =
  let config = env.Cold.config in
  let steps_l, code_end, loop_head = select_trace env profile ~entry in
  let steps_l = unroll_trace config steps_l ~entry ~loop_head in
  let steps = Array.of_list steps_l in
  let nsteps = Array.length steps in
  if nsteps = 0 then raise Give_up;
  let live_out = flags_live_out config steps in
  let id = Block.fresh_id env.Cold.cache in
  let ctr_addr = Block.alloc_arena env.Cold.cache 2 in
  let hs =
    {
      cur = [];
      regions = [];
      region_idx = 0;
      region_backups = [];
      region_first_ip = entry;
      region_saved = [];
      backed_up = Hashtbl.create 16;
      fbacked_up = Hashtbl.create 8;
      commit_maps = [];
      store_seen = false;
      vgr = vgr_base;
      vfr = vfr_base;
      vpr = vpr_base;
      pinned_gr = Hashtbl.create 16;
      pinned_fr = Hashtbl.create 8;
      stubs = [];
      next_label = 0;
      pending = Hashtbl.create 8;
      reg_version = Array.make 8 0;
      ea_cache = Hashtbl.create 16;
      in_diamond = None;
      tail = [];
      emitting_tail = false;
    }
  in
  let fp = Fpmap.create ~entry_tos in
  let cur_src = ref entry in
  (* snapshot at the current point, used for commit maps *)
  let uses_mmx_ref = ref false in
  let mmx_exit_tag_ref = ref 0xFF in
  let mmx_written_ref = ref 0 in
  let xmm_fmt_ref = ref (Array.make 8 (-1)) in
  let snapshot_now () =
    let base =
      if !uses_mmx_ref then
        { (Block.identity_snapshot ~entry_tos:0) with
          Block.s_set_valid = !mmx_exit_tag_ref;
          Block.s_written = !mmx_written_ref;
          Block.s_mmx = true }
      else Block.snapshot_of_fpmap fp
    in
    { base with Block.s_xmm_fmt = Array.copy !xmm_fmt_ref }
  in
  (* --- emission sink with backups, versions, store detection ---------- *)
  let stub_sink = ref None in
  let sink (insn : I.t) =
    match !stub_sink with
    | Some buf ->
      buf := (insn, hs.region_idx) :: !buf
    | None ->
      (* if-conversion: qualify everything emitted inside a diamond side *)
      let insn =
        match (hs.in_diamond, insn.I.qp) with
        | Some p, None -> { insn with I.qp = Some p }
        | _ -> insn
      in
      (* canonic-state backups for the commit map *)
      if config.Config.enable_commit then
      List.iter
        (fun r ->
          match r with
          | I.Rgr g when is_canonic_gr g && not (Hashtbl.mem hs.backed_up g) ->
            Hashtbl.replace hs.backed_up g ();
            let bk = hs.vgr in
            hs.vgr <- hs.vgr + 1;
            Hashtbl.replace hs.pinned_gr bk ();
            hs.region_backups <- R_il (I.mk (I.Mov (bk, g))) :: hs.region_backups;
            let loc =
              if g >= 8 && g <= 15 then
                Block.Sgr (Ia32.Insn.reg_of_index (g - 8), bk)
              else if g >= 16 && g <= 22 then
                Block.Sflag
                  ( List.nth Ia32.Insn.all_flags (g - 16)
                    (* CF..DF in gr_of_flag order *),
                    bk )
              else if g >= 48 && g <= 55 then Block.Smm (g - 48, bk)
              else if g >= 56 && g <= 71 then
                if (g - 56) mod 2 = 0 then Block.Sxlo ((g - 56) / 2, bk)
                else Block.Sxhi ((g - 57) / 2, bk)
              else Block.Sstatus (g, bk)
            in
            hs.region_saved <- loc :: hs.region_saved
          | I.Rfr f when is_canonic_fr f && not (Hashtbl.mem hs.fbacked_up f) ->
            Hashtbl.replace hs.fbacked_up f ();
            let bk = hs.vfr in
            hs.vfr <- hs.vfr + 1;
            Hashtbl.replace hs.pinned_fr bk ();
            hs.region_backups <- R_il (I.mk (I.Fmov (bk, f))) :: hs.region_backups;
            hs.region_saved <- Block.Sfr (f, bk) :: hs.region_saved
          | _ -> ())
        (I.writes insn);
      (* guest register versions for the address CSE *)
      List.iter
        (fun r ->
          match r with
          | I.Rgr g when g >= 8 && g <= 15 ->
            hs.reg_version.(g - 8) <- hs.reg_version.(g - 8) + 1
          | _ -> ())
        (I.writes insn);
      (match insn.I.sem with I.St _ | I.Stf _ -> hs.store_seen <- true | _ -> ());
      hs.cur <- R_il insn :: hs.cur
  in
  (* --- context --------------------------------------------------------- *)
  let counted_avoid = Hashtbl.create 4 in
  let misalign_policy idx width =
    ignore width;
    if hs.in_diamond <> None then Ma_plain
    else if not config.Config.misalign_avoidance then Ma_plain
    else if avoid || profile.misaligned !cur_src idx then begin
      (* templates may query the policy more than once per access *)
      (if not (Hashtbl.mem counted_avoid (!cur_src, idx)) then begin
         Hashtbl.replace counted_avoid (!cur_src, idx) ();
         env.Cold.acct.Account.misalign_avoided <-
           env.Cold.acct.Account.misalign_avoided + 1
       end);
      Ma_avoid 1
    end
    else Ma_plain
  in
  let ea_hot ctx (m : Ia32.Insn.mem) =
    let raw () =
      let g0 = default_ea ctx m in
      if g0 < vgr_base then begin
        let t = ctx.fresh () in
        emit ctx (I.Mov (t, g0));
        t
      end
      else g0
    in
    if (not config.Config.enable_cse) || hs.in_diamond <> None then raw ()
    else begin
      let vers r = hs.reg_version.(Ia32.Insn.reg_index r) in
      let key =
        Printf.sprintf "%s%s.%d"
          (match m.Ia32.Insn.base with
          | Some b -> Printf.sprintf "b%d.%d" (Ia32.Insn.reg_index b) (vers b)
          | None -> "")
          (match m.Ia32.Insn.index with
          | Some (r, sc) ->
            Printf.sprintf "+i%d.%d*%d" (Ia32.Insn.reg_index r) (vers r) sc
          | None -> "")
          m.Ia32.Insn.disp
      in
      match Hashtbl.find_opt hs.ea_cache key with
      | Some g -> g
      | None ->
        let g = raw () in
        Hashtbl.replace hs.ea_cache key g;
        g
    end
  in
  let ctx =
    {
      emit = sink;
      emit_stop = (fun () -> () (* scheduling re-derives grouping *));
      new_label =
        (fun () ->
          let l = hs.next_label in
          hs.next_label <- l + 1;
          l);
      bind =
        (fun l ->
          match !stub_sink with
          | Some _ -> Bt_error.fail ~component:"hot" "no labels inside stubs"
          | None -> hs.cur <- R_lbl l :: hs.cur);
      local = (fun l -> I.To (-1 - l));
      fresh =
        (fun () ->
          let r = hs.vgr in
          hs.vgr <- r + 1;
          r);
      ffresh =
        (fun () ->
          let r = hs.vfr in
          hs.vfr <- r + 1;
          r);
      pfresh =
        (fun () ->
          let p = hs.vpr in
          hs.vpr <- p + 1;
          p);
      ea = ea_hot;
      goto =
        (fun ctx target ->
          emit ctx (I.Br (I.Out (I.Dispatch target))));
      goto_if =
        (fun ctx ~pr target ->
          emitp ctx pr (I.Br (I.Out (I.Dispatch target))));
      indirect = (fun ctx -> emit ctx (I.Br (I.Out I.Indirect)));
      syscall =
        (fun ctx n ->
          emit ctx (I.Movi (Regs.r_state, Int64.of_int ctx.next_ip));
          emit ctx (I.Br (I.Out (I.Syscall n))));
      guest_fault =
        (fun ctx ?pr v ->
          let sem = I.Br (I.Out (I.Guest_fault (ctx.cur_ip, v))) in
          match pr with Some p -> emitp ctx p sem | None -> emit ctx sem);
      misalign_out =
        (fun ctx ~pr -> emitp ctx pr (I.Br (I.Out (I.Misalign_regen id))));
      fp;
      xmm_fmt = Array.make 8 (-1);
      xmm_entry = Array.make 8 (-1);
      uses_mmx = false;
      mmx_exit_tag = 0xFF;
      mmx_written = 0;
      cur_ip = entry;
      next_ip = entry;
      plan = Plan_none;
      fused_pred = None;
      last_producer = None;
      access_idx = 0;
      misalign_policy;
      ma_pred_cache = Hashtbl.create 16;
      config;
    }
  in
  (* --- lazy flag helpers ----------------------------------------------- *)
  let flush_flag f prod = set_flag ctx prod f in
  let flush_pending ~clear () =
    (* deterministic order *)
    List.iter
      (fun f ->
        match Hashtbl.find_opt hs.pending f with
        | Some prod ->
          flush_flag f prod;
          if clear then Hashtbl.remove hs.pending f
        | None -> ())
      Ia32.Insn.all_flags
  in
  let pre_materialize flags =
    if ctx.fused_pred = None then
      List.iter
        (fun f ->
          match Hashtbl.find_opt hs.pending f with
          | Some prod ->
            flush_flag f prod;
            Hashtbl.remove hs.pending f
          | None -> ())
        flags
  in
  (* --- commit regions ----------------------------------------------------
     Commit snapshots reflect the region START state; captured when the
     region begins. *)
  let start_snapshot = ref (snapshot_now ()) in
  let close_region ~next_ip =
    flush_pending ~clear:true ();
    hs.commit_maps <-
      { Block.cm_ip = hs.region_first_ip;
        cm_saved = hs.region_saved;
        cm_fp = !start_snapshot }
      :: hs.commit_maps;
    (* Backups execute at the region top, before anything that can fault or
       exit: a commit restore copies every backup register back, so each must
       hold the region-start value before the first restorable event. *)
    let nb = List.length hs.region_backups in
    hs.regions <-
      ( hs.region_idx,
        nb,
        Array.of_list (List.rev_append hs.region_backups (List.rev hs.cur)) )
      :: hs.regions;
    hs.cur <- [];
    hs.region_backups <- [];
    hs.region_idx <- hs.region_idx + 1;
    hs.region_first_ip <- next_ip;
    hs.region_saved <- [];
    Hashtbl.reset hs.backed_up;
    Hashtbl.reset hs.fbacked_up;
    hs.store_seen <- false;
    start_snapshot := snapshot_now ()
  in
  (* --- step processing --------------------------------------------------- *)
  let src_insns = ref [] in
  let is_string_op = function
    | Ia32.Insn.Movs _ | Ia32.Insn.Stos _ | Ia32.Insn.Lods _ | Ia32.Insn.Scas _
      ->
      true
    | _ -> false
  in
  let plan_for k insn =
    let defs = Ia32.Insn.flags_def insn in
    if defs = [] then Plan_none
    else begin
      let live = live_out.(k) in
      let live_defs =
        List.filter (fun f -> live land Discover.flag_bit f <> 0) defs
      in
      if not config.Config.enable_flag_elim then Plan_set defs
      else if odd_producer insn then
        match (if k + 1 < nsteps then consumer_of_step steps.(k + 1) else None) with
        | Some c
          when List.for_all
                 (fun f -> List.mem f (Ia32.Insn.flags_def_must insn))
                 (Ia32.Insn.cond_uses c) ->
          Plan_fuse (c, defs)
        | _ -> Plan_set defs
      else
        match (if k + 1 < nsteps then consumer_of_step steps.(k + 1) else None) with
        | Some c
          when List.for_all
                 (fun f -> List.mem f (Ia32.Insn.flags_def_must insn))
                 (Ia32.Insn.cond_uses c) ->
          let cmask =
            match steps.(k + 1) with
            | S_insn (a, _) -> (
              ignore a;
              if k + 1 < nsteps then live_out.(k + 1) else Discover.all_flags_mask)
            | S_exit_if _ | S_diamond _ -> live_out.(k + 1)
            | _ -> Discover.all_flags_mask
          in
          let extra =
            List.filter (fun f -> cmask land Discover.flag_bit f <> 0) defs
          in
          Plan_fuse (c, extra)
        | _ ->
          (* Even when every defined flag is dead inside the trace, a side
             exit can still flush this producer lazily (stubs preserve
             EFLAGS at exits), so the template must build a self-contained
             record: Plan_set [] snapshots the operands without
             materializing anything. *)
          Plan_set live_defs
    end
  in
  let update_pending insn =
    let defs = Ia32.Insn.flags_def insn in
    if defs <> [] then begin
      let materialized =
        match ctx.plan with
        | Plan_none -> []
        | Plan_set fl -> fl
        | Plan_fuse (_, fl) -> fl
      in
      let materialized =
        if odd_producer insn then defs else materialized
      in
      List.iter
        (fun f ->
          if List.mem f materialized then Hashtbl.remove hs.pending f
          else
            match ctx.last_producer with
            | Some prod -> Hashtbl.replace hs.pending f prod
            | None ->
              (* no record means the template did not touch this flag
                 (e.g. rotates do not produce SZP); keep any pending state *)
              ())
        defs
    end
  in
  let emit_one k addr insn ~next_addr =
    ctx.cur_ip <- addr;
    ctx.next_ip <- next_addr;
    pre_materialize (Ia32.Insn.flags_use insn);
    (* eager producers need the previous flag values in canonic registers
       (conditional writers) and clear any pending state they redefine *)
    if odd_producer insn then pre_materialize (Ia32.Insn.flags_def insn);
    ctx.plan <- plan_for k insn;
    ctx.last_producer <- None;
    (* string operations are their own commit region: close before *)
    if is_string_op insn && hs.cur <> [] then close_region ~next_ip:addr;
    Templates.emit_insn ctx insn;
    update_pending insn;
    src_insns := (addr, insn) :: !src_insns;
    env.Cold.acct.Account.hot_target_insns <-
      env.Cold.acct.Account.hot_target_insns + 1;
    if (hs.store_seen && config.Config.enable_commit) || is_string_op insn then
      close_region ~next_ip:next_addr
  in
  let make_stub () =
    let lbl = ctx.new_label () in
    let buf = ref [] in
    stub_sink := Some buf;
    (* sideways: pending flag materializations live in the stub *)
    flush_pending ~clear:false ();
    (* partial FP/SSE exit updates from a snapshot of the current state *)
    let ctx2 =
      { ctx with
        fp = Fpmap.copy ctx.fp;
        xmm_fmt = Array.copy ctx.xmm_fmt }
    in
    emit_fp_exit_update ctx2;
    emit_sse_exit_update ctx2;
    (lbl, buf)
  in
  let finish_stub lbl buf target =
    emit ctx (I.Br (I.Out (I.Dispatch target)));
    stub_sink := None;
    hs.stubs <- (lbl, List.rev !buf) :: hs.stubs
  in
  let side_exit _k _addr c target =
    pre_materialize (Ia32.Insn.cond_uses c);
    let p_taken, _ = cond_pred ctx c in
    let lbl, buf = make_stub () in
    finish_stub lbl buf target;
    emitp ctx p_taken (I.Br (ctx.local lbl))
  in
  let diamond _addr c then_side else_side ~join =
    pre_materialize (Ia32.Insn.cond_uses c);
    let p_then, p_else = cond_pred ctx c in
    Hashtbl.reset hs.ea_cache;
    hs.in_diamond <- Some p_then;
    Array.iter
      (fun (a, insn) ->
        ctx.cur_ip <- a;
        ctx.plan <- Plan_none;
        Templates.emit_insn ctx insn;
        src_insns := (a, insn) :: !src_insns)
      then_side;
    hs.in_diamond <- Some p_else;
    Array.iter
      (fun (a, insn) ->
        ctx.cur_ip <- a;
        ctx.plan <- Plan_none;
        Templates.emit_insn ctx insn;
        src_insns := (a, insn) :: !src_insns)
      else_side;
    hs.in_diamond <- None;
    Hashtbl.reset hs.ea_cache;
    (* a store inside a predicated side ends the commit region like any
       other store: later faults in the trace must not re-execute it *)
    if hs.store_seen && config.Config.enable_commit then
      close_region ~next_ip:join
  in
  let emit_end e =
    flush_pending ~clear:true ();
    emit_fp_exit_update ctx;
    emit_sse_exit_update ctx;
    match e with
    | E_goto t -> ctx.goto ctx t
    | E_insn (a, insn) ->
      let len =
        match Ia32.Decode.decode env.Cold.mem a with
        | _, l -> l
        | exception _ -> 1
      in
      ctx.cur_ip <- a;
      ctx.next_ip <- Ia32.Word.mask32 (a + len);
      pre_materialize (Ia32.Insn.flags_use insn);
      ctx.plan <- Plan_none;
      Templates.emit_insn ctx insn;
      src_insns := (a, insn) :: !src_insns
  in
  (* next source address per step, for region boundaries *)
  let next_addr_of k =
    let rec find j =
      if j >= nsteps then code_end
      else
        match steps.(j) with
        | S_insn (a, _) | S_exit_if (a, _, _) | S_diamond (a, _, _, _, _)
        | S_end (E_insn (a, _)) ->
          a
        | S_end (E_goto a) -> a
        | S_src _ -> find (j + 1)
    in
    find (k + 1)
  in
  (* track uses_mmx / xmm formats via ctx after each step *)
  let sync_mmx_refs () =
    uses_mmx_ref := ctx.uses_mmx;
    mmx_exit_tag_ref := ctx.mmx_exit_tag;
    mmx_written_ref := ctx.mmx_written;
    xmm_fmt_ref := ctx.xmm_fmt
  in
  Array.iteri
    (fun k step ->
      (match step with
      | S_src a ->
        cur_src := a;
        ctx.access_idx <- 0
      | S_insn (a, insn) -> emit_one k a insn ~next_addr:(next_addr_of k)
      | S_exit_if (a, c, target) -> side_exit k a c target
      | S_diamond (a, c, ts, fs, join) -> diamond a c ts fs ~join
      | S_end e -> emit_end e);
      sync_mmx_refs ())
    steps;
  (* close the final region *)
  close_region ~next_ip:code_end;
  env.Cold.acct.Account.commit_points <-
    env.Cold.acct.Account.commit_points + hs.region_idx;
  (* --- head checks ------------------------------------------------------- *)
  let head_buf = ref [] in
  stub_sink := Some head_buf;
  if config.Config.mmx_mode_speculation then begin
    if ctx.uses_mmx then emit_mode_check ctx ~block_id:id ~mmx:true
    else if fp.Fpmap.used then emit_mode_check ctx ~block_id:id ~mmx:false
  end;
  if config.Config.fp_stack_speculation then begin
    if ctx.uses_mmx then begin
      (* MMX accesses are absolute: require canonic parking *)
      emit_park_check ctx ~block_id:id;
      env.Cold.acct.Account.tos_checks <- env.Cold.acct.Account.tos_checks + 1
    end
    else begin
      emit_fp_entry_check ctx ~block_id:id;
      if fp.Fpmap.used then
        env.Cold.acct.Account.tos_checks <- env.Cold.acct.Account.tos_checks + 1
    end
  end;
  if config.Config.sse_format_speculation then emit_sse_entry_check ctx ~block_id:id;
  stub_sink := None;
  let head_items = List.rev !head_buf in
  (* --- assemble, schedule, rename ---------------------------------------- *)
  let items = ref [] in
  let add i = items := i :: !items in
  List.iter (fun (insn, _) -> add (F_insn (insn, -1))) head_items;
  add F_stop;
  List.iter
    (fun (tag, nbackups, ritems) ->
      (* control speculation (paper §4.2): rewrite plain loads that sit
         below a conditional exit branch into ld.s at the same position
         (free to hoist above the branch) plus a chk.s where the load
         was. A fault on the hoisted load defers into the register's NaT
         bit; if the exit is taken the NaT dies unobserved (the fault is
         filtered), otherwise the chk.s exits to the engine, which
         restores the commit point and re-raises the fault precisely. *)
      let ritems =
        if
          config.Config.enable_scheduling
          && config.Config.enable_control_spec
          && not (Array.exists (function R_lbl _ -> true | _ -> false) ritems)
        then begin
          let out = ref [] in
          let seen_branch = ref false in
          let seen_store = ref false in
          Array.iter
            (fun item ->
              (match item with
              | R_il { I.qp = Some _; I.sem = I.Br _ } -> seen_branch := true
              | R_il { I.sem = I.St _ | I.Stf _; _ } -> seen_store := true
              | _ -> ());
              match item with
              | R_il ({ I.qp = None; I.sem = I.Ld (sz, I.Ld_none, d, a) } as il)
                when !seen_store ->
                (* data + control speculation: ld.sa both defers faults
                   and allocates an ALAT entry that any aliasing store
                   kills; the chk.a covers both failure modes *)
                out := R_il { il with I.sem = I.Ld (sz, I.Ld_sa, d, a) } :: !out;
                out :=
                  R_il (I.mk (I.Chk_a (d, I.Out (I.Nat_recover id)))) :: !out
              | R_il ({ I.qp = None; I.sem = I.Ld (sz, I.Ld_none, d, a) } as il)
                when !seen_branch ->
                out := R_il { il with I.sem = I.Ld (sz, I.Ld_s, d, a) } :: !out;
                out :=
                  R_il (I.mk (I.Chk_s (d, I.Out (I.Nat_recover id)))) :: !out
              | _ -> out := item :: !out)
            ritems;
          Array.of_list (List.rev !out)
        end
        else ritems
      in
      List.iter
        (fun item ->
          match item with
          | `I (insn, stop) ->
            add (F_insn (insn, tag));
            if stop then add F_stop
          | `L l -> add (F_label l))
        (schedule_region config ~nbackups ritems))
    (List.rev hs.regions);
  List.iter
    (fun (lbl, stub_items) ->
      add (F_label lbl);
      List.iter
        (fun (insn, tag) ->
          add (F_insn (insn, tag));
          add F_stop)
        stub_items)
    (List.rev hs.stubs);
  let final = List.rev !items in
  let renamed, assign_gr, assign_fr =
    rename_all final ~pinned_gr:hs.pinned_gr ~pinned_fr:hs.pinned_fr
  in
  (* --- lower ------------------------------------------------------------- *)
  let cg = Cgen.create () in
  List.iter
    (fun item ->
      match item with
      | F_insn (insn, tag) -> Cgen.emit ~tag cg insn
      | F_stop -> Cgen.stop cg
      | F_label l -> Cgen.bind cg l)
    renamed;
  let tstart, tlen, tags = Cgen.lower cg env.Cold.tcache in
  (* --- block record ------------------------------------------------------ *)
  let phys_of_gr v =
    match Hashtbl.find_opt assign_gr v with Some p -> p | None -> v
  in
  let phys_of_fr v =
    match Hashtbl.find_opt assign_fr v with Some p -> p | None -> v
  in
  let commit_maps =
    List.rev_map
      (fun cm ->
        { cm with
          Block.cm_saved =
            List.map
              (fun loc ->
                match loc with
                | Block.Sgr (r, bk) -> Block.Sgr (r, phys_of_gr bk)
                | Block.Sflag (f, bk) -> Block.Sflag (f, phys_of_gr bk)
                | Block.Sfr (fr, bk) -> Block.Sfr (fr, phys_of_fr bk)
                | Block.Sxlo (i, bk) -> Block.Sxlo (i, phys_of_gr bk)
                | Block.Sxhi (i, bk) -> Block.Sxhi (i, phys_of_gr bk)
                | Block.Smm (i, bk) -> Block.Smm (i, phys_of_gr bk)
                | Block.Sstatus (r, bk) -> Block.Sstatus (r, phys_of_gr bk))
              cm.Block.cm_saved })
      hs.commit_maps
    |> Array.of_list
  in
  let bundle_commit = Array.map (fun t -> if t < 0 then 0 else t) tags in
  let block =
    {
      Block.id;
      entry;
      kind = Block.Hot;
      tstart;
      tlen;
      insns = Array.of_list (List.rev !src_insns);
      code_end;
      ctr_addr;
      edge_addr = ctr_addr + 4;
      ma_base = ctr_addr;
      n_accesses = 0;
      entry_tos;
      sse_entry = Array.copy ctx.xmm_entry;
      fp_recovery = Hashtbl.create 1;
      commit_maps;
      bundle_commit;
      misalign_stage = 3;
      live = true;
      registered = 0;
    }
  in
  (* watch source pages (SMC) *)
  let first_page = entry lsr Ia32.Memory.page_bits in
  let last_page = (max entry (code_end - 1)) lsr Ia32.Memory.page_bits in
  for p = first_page to last_page do
    Ia32.Memory.watch_page env.Cold.mem (p lsl Ia32.Memory.page_bits)
  done;
  env.Cold.acct.Account.hot_blocks <- env.Cold.acct.Account.hot_blocks + 1;
  block

(* Register pressure grows with trace length (side-exit stubs pin flag
   producers); retry with progressively shorter traces before giving up. *)
let translate (env : Cold.env) ~entry ~entry_tos ~profile ~avoid =
  let attempt config =
    let env = { env with Cold.config } in
    match translate_exn env ~entry ~entry_tos ~profile ~avoid with
    | b -> Some b
    | exception Give_up -> None
    | exception Fpmap.Static_fault -> None
    | exception Ipf.Bundle.Invalid _ -> None
  in
  let c0 = env.Cold.config in
  let shrink f =
    {
      c0 with
      Config.max_trace_insns = max 6 (c0.Config.max_trace_insns / f);
      max_trace_blocks = max 2 (c0.Config.max_trace_blocks / f);
      enable_unroll = f = 1 && c0.Config.enable_unroll;
    }
  in
  match attempt c0 with
  | Some b -> Some b
  | None -> (
    match attempt (shrink 2) with
    | Some b -> Some b
    | None -> attempt (shrink 4))
