(** Sparse paged 32-bit guest address space (4 KiB pages, little endian).

    Unmapped or permission-violating accesses raise
    [Fault.Fault (Page_fault _)]. A write-watch callback fires on writes to
    watched pages — the hook the translator uses to detect self-modifying
    code on pages it has translated from. *)

val page_bits : int
val page_size : int

type prot = { read : bool; write : bool; exec : bool }

val prot_rw : prot
val prot_rx : prot
val prot_rwx : prot

type t

val create : unit -> t

val map : t -> addr:int -> len:int -> prot:prot -> unit
val unmap : t -> addr:int -> len:int -> unit
val is_mapped : t -> int -> bool
val protect : t -> addr:int -> len:int -> prot:prot -> unit
val prot_of : t -> int -> prot option

(** [set_write_watch t (Some f)] makes every write to a watched page call
    [f addr width] after the bytes are stored. *)
val set_write_watch : t -> (int -> int -> unit) option -> unit

val watch_page : t -> int -> unit
val unwatch_page : t -> int -> unit
val page_watched : t -> int -> bool

val page_gen : t -> int -> int
(** Write generation of the page holding the given address: bumped from a
    global monotonic counter on every mutation (byte store, remap,
    protection change, loader write); [-1] when unmapped. Generations are
    never reused, so caches of decoded instructions keyed on them cannot
    false-hit across an unmap/remap cycle. Valid generations are >= 1. *)

val read8 : t -> int -> int

(** Like {!read8} but checks execute permission. *)
val fetch8 : t -> int -> int

val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val read32 : t -> int -> int
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

(** [read size t addr] / [write size t addr v] with [size] in bytes (1-4). *)
val read : int -> t -> int -> int
val write : int -> t -> int -> int -> unit

val read64 : t -> int -> int64
val write64 : t -> int -> int64 -> unit
val read_f32 : t -> int -> float
val write_f32 : t -> int -> float -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

(** Bulk initialisation that bypasses the write watch. *)
val load_bytes : t -> int -> string -> unit

val dump_bytes : t -> int -> int -> string

val copy : t -> t

val equal : ?skip:(int -> bool) -> t -> t -> bool
(** Page-wise content equality. [skip] excludes page numbers
    (runtime-private regions such as the translator's profile arena). *)

(** Address of the first differing byte, if any — for test diagnostics.
    [skip] as for {!equal}. *)
val first_diff : ?skip:(int -> bool) -> t -> t -> int option
