(** Sparse paged 32-bit guest address space (4 KiB pages, little endian).

    Unmapped or permission-violating accesses raise
    [Fault.Fault (Page_fault _)]. A write-watch callback fires on writes to
    watched pages — the hook the translator uses to detect self-modifying
    code on pages it has translated from. *)

val page_bits : int
val page_size : int

type prot = { read : bool; write : bool; exec : bool }

val prot_rw : prot
val prot_rx : prot
val prot_rwx : prot

type t

val create : unit -> t

val map : t -> addr:int -> len:int -> prot:prot -> unit
val unmap : t -> addr:int -> len:int -> unit
val is_mapped : t -> int -> bool
val protect : t -> addr:int -> len:int -> prot:prot -> unit
val prot_of : t -> int -> prot option

val mapped_pages : t -> int list
(** Sorted page numbers of every mapped page (crash-capsule dumps). *)

(** [set_write_watch t (Some f)] makes every write to a watched page call
    [f addr width] after the bytes are stored. *)
val set_write_watch : t -> (int -> int -> unit) option -> unit

val watch_page : t -> int -> unit
val unwatch_page : t -> int -> unit
val page_watched : t -> int -> bool

val watched_pages : t -> int list
(** Page numbers currently carrying the write watch (unordered). *)

val set_watched_pages : t -> int list -> unit
(** Replace the watched-page set wholesale — snapshot restore uses this
    to return the SMC watch set to its captured state. *)

val page_gen : t -> int -> int
(** Write generation of the page holding the given address: bumped from a
    per-memory monotonic counter on every mutation (byte store, remap,
    protection change, loader write); [-1] when unmapped. Within one
    memory, generations are never reused, so caches of decoded
    instructions keyed on them cannot false-hit across an unmap/remap
    cycle (ABA-freedom). The counter is owned by the {!t} instance —
    never shared module-level state — so any number of live memories in
    one process (a serving worker pool, lockstep pairs) evolve their
    generation streams independently and deterministically; generation
    values are only meaningful against the memory that issued them.
    [copy] carries the counter over, preserving the contract in the
    clone. Valid generations are >= 1. *)

val read8 : t -> int -> int

(** Like {!read8} but checks execute permission. *)
val fetch8 : t -> int -> int

val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val read32 : t -> int -> int
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

(** [read size t addr] / [write size t addr v] with [size] in bytes (1-4). *)
val read : int -> t -> int -> int
val write : int -> t -> int -> int -> unit

val read64 : t -> int -> int64
val write64 : t -> int -> int64 -> unit
val read_f32 : t -> int -> float
val write_f32 : t -> int -> float -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

(** Bulk initialisation that bypasses the write watch. *)
val load_bytes : t -> int -> string -> unit

val dump_bytes : t -> int -> int -> string

val copy : t -> t

val equal : ?skip:(int -> bool) -> t -> t -> bool
(** Page-wise content equality. [skip] excludes page numbers
    (runtime-private regions such as the translator's profile arena). *)

(** Address of the first differing byte, if any — for test diagnostics.
    [skip] as for {!equal}. *)
val first_diff : ?skip:(int -> bool) -> t -> t -> int option

(** Nested copy-on-write journal over page mutations.

    While attached, every mutating operation ([map]/[unmap]/[protect],
    stores, loader writes) records a full pre-image of each page at its
    first touch within the innermost open epoch, so an epoch's overhead
    and its [revert] both cost O(pages touched), independent of the size
    of the address space.

    [revert] restores each touched page's bytes, protection {e and
    original write generation}. Generations are drawn from the memory's
    own never-reused counter (see {!page_gen}), so a given generation
    value only ever denotes the exact content it stamped — consumers
    validating cached decodes against {!page_gen} stay warm across a
    revert with no flush.
    [commit] folds the innermost epoch into its parent (the parent's
    older pre-images win), making the changes permanent relative to the
    inner epoch while the outer one can still revert them.

    The journal is intentionally ignorant of the write watch: snapshot
    layers above capture and restore the watched-page set themselves
    (see {!watched_pages}). [copy] never carries a journal over. *)
module Journal : sig
  val attach : t -> unit
  (** Enable journalling (idempotent). No pre-images are recorded until
      an epoch is opened with [push]. *)

  val detach : t -> unit
  (** Drop the journal and all epochs without restoring anything. *)

  val active : t -> bool

  val depth : t -> int
  (** Number of open epochs. *)

  val push : t -> unit
  (** Open a nested epoch (attaching the journal if needed). *)

  val touched : t -> int
  (** Pages first-touched in the innermost open epoch so far. *)

  val pages_restored : t -> int
  (** Cumulative count of page restorations performed by [revert] over
      the journal's lifetime — the counter the O(pages touched) test
      asserts on. *)

  val revert : t -> int list
  (** Pop the innermost epoch and restore every page it touched.
      Returns the touched page numbers (unordered) so callers can
      invalidate derived state (translated blocks) per page.
      @raise Invalid_argument when no epoch is open. *)

  val commit : t -> unit
  (** Pop the innermost epoch, merging its pre-images into the parent
      epoch (if any). @raise Invalid_argument when no epoch is open. *)
end
