(* Sparse paged 32-bit address space shared by the guest application, the
   reference interpreter and the translated code running on the IPF machine.
   Pages are 4 KiB. A write-watch callback lets the translator detect
   self-modifying code on pages it translated from. *)

let page_bits = 12
let page_size = 1 lsl page_bits

type prot = { read : bool; write : bool; exec : bool }

let prot_rw = { read = true; write = true; exec = false }
let prot_rx = { read = true; write = false; exec = true }
let prot_rwx = { read = true; write = true; exec = true }

type page = { data : Bytes.t; mutable prot : prot }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable write_watch : (int -> int -> unit) option; (* addr, width *)
  mutable watched : (int, unit) Hashtbl.t; (* page numbers with watch *)
}

let create () =
  { pages = Hashtbl.create 256; write_watch = None; watched = Hashtbl.create 16 }

let page_of addr = Word.mask32 addr lsr page_bits
let offset_of addr = Word.mask32 addr land (page_size - 1)

let map t ~addr ~len ~prot =
  let first = page_of addr and last = page_of (addr + len - 1) in
  for p = first to last do
    if not (Hashtbl.mem t.pages p) then
      Hashtbl.replace t.pages p { data = Bytes.make page_size '\000'; prot }
    else (Hashtbl.find t.pages p).prot <- prot
  done

let unmap t ~addr ~len =
  let first = page_of addr and last = page_of (addr + len - 1) in
  for p = first to last do
    Hashtbl.remove t.pages p;
    Hashtbl.remove t.watched p
  done

let is_mapped t addr = Hashtbl.mem t.pages (page_of addr)

let protect t ~addr ~len ~prot =
  let first = page_of addr and last = page_of (addr + len - 1) in
  for p = first to last do
    match Hashtbl.find_opt t.pages p with
    | Some pg -> pg.prot <- prot
    | None -> ()
  done

let prot_of t addr =
  match Hashtbl.find_opt t.pages (page_of addr) with
  | Some pg -> Some pg.prot
  | None -> None

let set_write_watch t f = t.write_watch <- f

let watch_page t addr = Hashtbl.replace t.watched (page_of addr) ()
let unwatch_page t addr = Hashtbl.remove t.watched (page_of addr)
let page_watched t addr = Hashtbl.mem t.watched (page_of addr)

let find_page t addr (acc : Fault.access) =
  match Hashtbl.find_opt t.pages (page_of addr) with
  | None -> raise (Fault.Fault (Fault.Page_fault (Word.mask32 addr, acc)))
  | Some pg ->
    let ok =
      match acc with
      | Fault.Read -> pg.prot.read
      | Fault.Write -> pg.prot.write
      | Fault.Fetch -> pg.prot.exec
    in
    if ok then pg else raise (Fault.Fault (Fault.Page_fault (Word.mask32 addr, acc)))

(* Byte-granular access; multi-byte accesses may straddle pages. *)

let read8 t addr =
  let pg = find_page t addr Fault.Read in
  Char.code (Bytes.get pg.data (offset_of addr))

let fetch8 t addr =
  let pg = find_page t addr Fault.Fetch in
  Char.code (Bytes.get pg.data (offset_of addr))

let write8_nowatch t addr v =
  let pg = find_page t addr Fault.Write in
  Bytes.set pg.data (offset_of addr) (Char.chr (Word.mask8 v))

let notify_write t addr width =
  match t.write_watch with
  | Some f when Hashtbl.mem t.watched (page_of addr) -> f (Word.mask32 addr) width
  | Some _ | None -> ()

let write8 t addr v =
  write8_nowatch t addr v;
  notify_write t addr 1

let read_n t addr n =
  let rec go acc i =
    if i < 0 then acc else go ((acc lsl 8) lor read8 t (addr + i)) (i - 1)
  in
  go 0 (n - 1)

let write_n t addr n v =
  for i = 0 to n - 1 do
    write8_nowatch t (addr + i) ((v lsr (8 * i)) land 0xFF)
  done;
  notify_write t addr n

let read16 t addr = read_n t addr 2
let read32 t addr = read_n t addr 4
let write16 t addr v = write_n t addr 2 v
let write32 t addr v = write_n t addr 4 v

let read size t addr = read_n t addr size
let write size t addr v = write_n t addr size v

let read64 t addr =
  Word.to_i64 ~lo:(read32 t addr) ~hi:(read32 t (addr + 4))

let write64 t addr v =
  write_n t addr 4 (Word.lo32 v);
  write_n t (addr + 4) 4 (Word.hi32 v)

let read_f32 t addr = Int32.float_of_bits (Int32.of_int (read32 t addr))
let write_f32 t addr f = write32 t addr (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)
let read_f64 t addr = Int64.float_of_bits (read64 t addr)
let write_f64 t addr f = write64 t addr (Int64.bits_of_float f)

(* Loader path: ignores page protections (the "OS" writing the image). *)
let load_bytes t addr s =
  for i = 0 to String.length s - 1 do
    let a = addr + i in
    match Hashtbl.find_opt t.pages (page_of a) with
    | Some pg -> Bytes.set pg.data (offset_of a) s.[i]
    | None -> raise (Fault.Fault (Fault.Page_fault (Word.mask32 a, Fault.Write)))
  done

let dump_bytes t addr len =
  String.init len (fun i -> Char.chr (read8 t (addr + i)))

(* Deep copy, for differential testing (golden model vs translator). *)
let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun k pg -> Hashtbl.replace pages k { data = Bytes.copy pg.data; prot = pg.prot })
    t.pages;
  { pages; write_watch = None; watched = Hashtbl.copy t.watched }

let equal ?(skip = fun _ -> false) a b =
  let pages_of t =
    Hashtbl.fold
      (fun k pg acc -> if skip k then acc else (k, Bytes.to_string pg.data) :: acc)
      t.pages []
    |> List.sort compare
  in
  pages_of a = pages_of b

(* First differing byte between two equal-shaped memories, for test
   diagnostics. [skip] excludes page numbers (runtime-private regions such
   as the translator's profile arena) from the comparison. *)
let first_diff ?(skip = fun _ -> false) a b =
  let result = ref None in
  let check k pg =
    if !result = None && not (skip k) then
      match Hashtbl.find_opt b.pages k with
      | None -> result := Some (k * page_size)
      | Some pg' ->
        let rec scan i =
          if i < page_size then
            if Bytes.get pg.data i <> Bytes.get pg'.data i then
              result := Some ((k * page_size) + i)
            else scan (i + 1)
        in
        scan 0
  in
  Hashtbl.iter check a.pages;
  Hashtbl.iter
    (fun k _ ->
      if !result = None && (not (skip k)) && not (Hashtbl.mem a.pages k) then
        result := Some (k * page_size))
    b.pages;
  !result
