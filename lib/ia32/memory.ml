(* Sparse paged 32-bit address space shared by the guest application, the
   reference interpreter and the translated code running on the IPF machine.
   Pages are 4 KiB. A write-watch callback lets the translator detect
   self-modifying code on pages it translated from. *)

let page_bits = 12
let page_size = 1 lsl page_bits

type prot = { read : bool; write : bool; exec : bool }

let prot_rw = { read = true; write = true; exec = false }
let prot_rx = { read = true; write = false; exec = true }
let prot_rwx = { read = true; write = true; exec = true }

(* [gen] is the page's write generation: drawn from the memory's global
   monotonic counter on every mutation (byte store, remap, protection
   change, loader write). Consumers that cache per-address derived data
   (the interpreter's decode cache) validate entries with one compare;
   because the counter is global and never reused, an unmap/remap cycle
   can never resurrect a stale generation (no ABA). *)
type page = { data : Bytes.t; mutable prot : prot; mutable gen : int }

(* First-touch pre-image of a page within one journal epoch: either the
   page did not exist when the epoch opened, or a full copy of its bytes
   plus protection and write generation at that moment. *)
type pre = Pre_absent | Pre_page of { data : Bytes.t; prot : prot; gen : int }

type epoch = {
  pre_images : (int, pre) Hashtbl.t; (* page number -> pre-image *)
  (* last page recorded in this epoch: inner loops hammer one page, so
     this memo turns the per-write probe into a single compare. *)
  mutable last_no : int;
}

type journal = {
  mutable epochs : epoch list; (* innermost first *)
  mutable restored : int; (* cumulative pages restored by [revert] *)
}

type t = {
  pages : (int, page) Hashtbl.t;
  mutable write_watch : (int -> int -> unit) option; (* addr, width *)
  mutable watched : (int, unit) Hashtbl.t; (* page numbers with watch *)
  mutable gen_counter : int;
  (* one-entry lookup memo: both simulator inner loops hit the same page
     repeatedly, and a Hashtbl probe per byte dominates the access cost.
     [memo_no] is -1 when empty; the memoized record is shared with the
     table, so in-place protection changes stay visible. *)
  mutable memo_no : int;
  mutable memo_pg : page;
  mutable journal : journal option;
}

let dummy_page =
  {
    data = Bytes.create 0;
    prot = { read = false; write = false; exec = false };
    gen = 0;
  }

let create () =
  {
    pages = Hashtbl.create 256;
    write_watch = None;
    watched = Hashtbl.create 16;
    gen_counter = 1;
    memo_no = -1;
    memo_pg = dummy_page;
    journal = None;
  }

let bump_gen t pg =
  t.gen_counter <- t.gen_counter + 1;
  pg.gen <- t.gen_counter

let page_of addr = Word.mask32 addr lsr page_bits
let offset_of addr = Word.mask32 addr land (page_size - 1)

(* Record the pre-image of page [no] in the innermost epoch before its
   first mutation there. Cost when no journal is attached: one load and
   branch per mutating call. [journal_touch_pg] is the variant for call
   sites that already hold the page record. *)
let record_pre e t no =
  if not (Hashtbl.mem e.pre_images no) then
    Hashtbl.replace e.pre_images no
      (match Hashtbl.find_opt t.pages no with
      | None -> Pre_absent
      | Some pg ->
        Pre_page { data = Bytes.copy pg.data; prot = pg.prot; gen = pg.gen });
  e.last_no <- no

let journal_touch t no =
  match t.journal with
  | None -> ()
  | Some { epochs = e :: _; _ } -> if no <> e.last_no then record_pre e t no
  | Some { epochs = []; _ } -> ()

let record_pre_pg e no (pg : page) =
  if not (Hashtbl.mem e.pre_images no) then
    Hashtbl.replace e.pre_images no
      (Pre_page { data = Bytes.copy pg.data; prot = pg.prot; gen = pg.gen });
  e.last_no <- no

let journal_touch_pg t no pg =
  match t.journal with
  | None -> ()
  | Some { epochs = e :: _; _ } -> if no <> e.last_no then record_pre_pg e no pg
  | Some { epochs = []; _ } -> ()

let map t ~addr ~len ~prot =
  let first = page_of addr and last = page_of (addr + len - 1) in
  for p = first to last do
    journal_touch t p;
    match Hashtbl.find_opt t.pages p with
    | None ->
      t.gen_counter <- t.gen_counter + 1;
      Hashtbl.replace t.pages p
        { data = Bytes.make page_size '\000'; prot; gen = t.gen_counter }
    | Some pg ->
      pg.prot <- prot;
      bump_gen t pg
  done

let unmap t ~addr ~len =
  let first = page_of addr and last = page_of (addr + len - 1) in
  for p = first to last do
    journal_touch t p;
    Hashtbl.remove t.pages p;
    Hashtbl.remove t.watched p
  done;
  t.memo_no <- -1

let is_mapped t addr = Hashtbl.mem t.pages (page_of addr)

let protect t ~addr ~len ~prot =
  let first = page_of addr and last = page_of (addr + len - 1) in
  for p = first to last do
    match Hashtbl.find_opt t.pages p with
    | Some pg ->
      journal_touch_pg t p pg;
      pg.prot <- prot;
      bump_gen t pg
    | None -> ()
  done

(* Write generation of the page holding [addr]; -1 when unmapped. Valid
   generations are >= 1, so a consumer initialising cached generations to
   0 (or keeping a -1 from an unmapped probe) never false-hits. *)
(* [Hashtbl.find] rather than [find_opt]: this runs on every cached-decode
   probe and must not allocate an option in the hit path. *)
let page_gen t addr =
  match Hashtbl.find t.pages (page_of addr) with
  | pg -> pg.gen
  | exception Not_found -> -1

let prot_of t addr =
  match Hashtbl.find_opt t.pages (page_of addr) with
  | Some pg -> Some pg.prot
  | None -> None

let set_write_watch t f = t.write_watch <- f

let watch_page t addr = Hashtbl.replace t.watched (page_of addr) ()
let unwatch_page t addr = Hashtbl.remove t.watched (page_of addr)
let page_watched t addr = Hashtbl.mem t.watched (page_of addr)

(* Exception-based lookup plus the memo: the hot path (same page as the
   previous access) is two compares and allocates nothing. *)
let find_page t addr (acc : Fault.access) =
  let no = page_of addr in
  let pg =
    if no = t.memo_no then t.memo_pg
    else
      match Hashtbl.find t.pages no with
      | pg ->
        t.memo_no <- no;
        t.memo_pg <- pg;
        pg
      | exception Not_found ->
        raise (Fault.Fault (Fault.Page_fault (Word.mask32 addr, acc)))
  in
  let ok =
    match acc with
    | Fault.Read -> pg.prot.read
    | Fault.Write -> pg.prot.write
    | Fault.Fetch -> pg.prot.exec
  in
  if ok then pg else raise (Fault.Fault (Fault.Page_fault (Word.mask32 addr, acc)))

(* Byte-granular access; multi-byte accesses may straddle pages. *)

let read8 t addr =
  let pg = find_page t addr Fault.Read in
  Char.code (Bytes.get pg.data (offset_of addr))

let fetch8 t addr =
  let pg = find_page t addr Fault.Fetch in
  Char.code (Bytes.get pg.data (offset_of addr))

let write8_nowatch t addr v =
  let pg = find_page t addr Fault.Write in
  journal_touch_pg t (page_of addr) pg;
  Bytes.set pg.data (offset_of addr) (Char.chr (Word.mask8 v));
  bump_gen t pg

let notify_write t addr width =
  match t.write_watch with
  | Some f when Hashtbl.mem t.watched (page_of addr) -> f (Word.mask32 addr) width
  | Some _ | None -> ()

let write8 t addr v =
  write8_nowatch t addr v;
  notify_write t addr 1

(* Top-level little-endian byte loops: no closure per access. The fast
   path handles an access contained in one page with direct Bytes reads;
   offsets come from [find_page], so unsafe_get stays in bounds. *)
let rec rd_le d base acc i =
  if i < 0 then acc
  else
    rd_le d base
      ((acc lsl 8) lor Char.code (Bytes.unsafe_get d (base + i)))
      (i - 1)

let rec rd_slow t addr acc i =
  if i < 0 then acc else rd_slow t addr ((acc lsl 8) lor read8 t (addr + i)) (i - 1)

let read_n t addr n =
  if offset_of addr + n <= page_size then
    let pg = find_page t addr Fault.Read in
    rd_le pg.data (offset_of addr) 0 (n - 1)
  else rd_slow t addr 0 (n - 1)

let rec wr_le d base v i n =
  if i < n then begin
    Bytes.unsafe_set d (base + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF));
    wr_le d base v (i + 1) n
  end

let write_n t addr n v =
  (if offset_of addr + n <= page_size then begin
     let pg = find_page t addr Fault.Write in
     journal_touch_pg t (page_of addr) pg;
     wr_le pg.data (offset_of addr) v 0 n;
     bump_gen t pg
   end
   else
     for i = 0 to n - 1 do
       write8_nowatch t (addr + i) ((v lsr (8 * i)) land 0xFF)
     done);
  notify_write t addr n

let read16 t addr = read_n t addr 2
let read32 t addr = read_n t addr 4
let write16 t addr v = write_n t addr 2 v
let write32 t addr v = write_n t addr 4 v

let read size t addr = read_n t addr size
let write size t addr v = write_n t addr size v

let read64 t addr =
  Word.to_i64 ~lo:(read32 t addr) ~hi:(read32 t (addr + 4))

let write64 t addr v =
  write_n t addr 4 (Word.lo32 v);
  write_n t (addr + 4) 4 (Word.hi32 v)

let read_f32 t addr = Int32.float_of_bits (Int32.of_int (read32 t addr))
let write_f32 t addr f = write32 t addr (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)
let read_f64 t addr = Int64.float_of_bits (read64 t addr)
let write_f64 t addr f = write64 t addr (Int64.bits_of_float f)

(* Loader path: ignores page protections (the "OS" writing the image). *)
let load_bytes t addr s =
  for i = 0 to String.length s - 1 do
    let a = addr + i in
    match Hashtbl.find_opt t.pages (page_of a) with
    | Some pg ->
      journal_touch_pg t (page_of a) pg;
      Bytes.set pg.data (offset_of a) s.[i];
      bump_gen t pg
    | None -> raise (Fault.Fault (Fault.Page_fault (Word.mask32 a, Fault.Write)))
  done

let dump_bytes t addr len =
  String.init len (fun i -> Char.chr (read8 t (addr + i)))

(* Deep copy, for differential testing (golden model vs translator). *)
let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun k pg ->
      Hashtbl.replace pages k
        { data = Bytes.copy pg.data; prot = pg.prot; gen = pg.gen })
    t.pages;
  {
    pages;
    write_watch = None;
    watched = Hashtbl.copy t.watched;
    gen_counter = t.gen_counter;
    memo_no = -1;
    memo_pg = dummy_page;
    journal = None;
  }

let watched_pages t = Hashtbl.fold (fun k () acc -> k :: acc) t.watched []

let set_watched_pages t nos =
  Hashtbl.reset t.watched;
  List.iter (fun no -> Hashtbl.replace t.watched no ()) nos

(* Nested copy-on-write journal: each epoch records, per page, a full
   pre-image at first touch, so both [revert] and the epoch's own write
   traffic cost O(pages touched). [revert] restores a page's bytes,
   protection and ORIGINAL write generation: a generation value only ever
   recurs together with the exact content it stamped (the global counter
   is never reused), so decode caches validated against [page_gen] stay
   warm across a revert instead of being flushed. *)
module Journal = struct
  let fresh_epoch () = { pre_images = Hashtbl.create 32; last_no = -1 }

  let active t = t.journal <> None

  let depth t =
    match t.journal with None -> 0 | Some j -> List.length j.epochs

  let attach t =
    if t.journal = None then t.journal <- Some { epochs = []; restored = 0 }

  let detach t = t.journal <- None

  let push t =
    attach t;
    match t.journal with
    | None -> assert false
    | Some j -> j.epochs <- fresh_epoch () :: j.epochs

  let touched t =
    match t.journal with
    | Some { epochs = e :: _; _ } -> Hashtbl.length e.pre_images
    | _ -> 0

  let pages_restored t =
    match t.journal with None -> 0 | Some j -> j.restored

  let revert t =
    match t.journal with
    | None -> invalid_arg "Memory.Journal.revert: no journal attached"
    | Some j -> (
      match j.epochs with
      | [] -> invalid_arg "Memory.Journal.revert: no open epoch"
      | e :: rest ->
        j.epochs <- rest;
        let touched = ref [] in
        Hashtbl.iter
          (fun no pre ->
            touched := no :: !touched;
            j.restored <- j.restored + 1;
            match pre with
            | Pre_absent -> Hashtbl.remove t.pages no
            | Pre_page { data; prot; gen } -> (
              match Hashtbl.find_opt t.pages no with
              | Some pg ->
                Bytes.blit data 0 pg.data 0 page_size;
                pg.prot <- prot;
                pg.gen <- gen
              | None ->
                Hashtbl.replace t.pages no
                  { data = Bytes.copy data; prot; gen }))
          e.pre_images;
        t.memo_no <- -1;
        t.memo_pg <- dummy_page;
        !touched)

  let commit t =
    match t.journal with
    | None -> invalid_arg "Memory.Journal.commit: no journal attached"
    | Some j -> (
      match j.epochs with
      | [] -> invalid_arg "Memory.Journal.commit: no open epoch"
      | e :: rest ->
        (match rest with
        | parent :: _ ->
          (* The parent's own (older) pre-images win: they describe the
             page as it stood when the OUTER epoch opened. *)
          Hashtbl.iter
            (fun no pre ->
              if not (Hashtbl.mem parent.pre_images no) then
                Hashtbl.replace parent.pre_images no pre)
            e.pre_images
        | [] -> ());
        j.epochs <- rest)
end

let mapped_pages t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [])

let equal ?(skip = fun _ -> false) a b =
  let pages_of t =
    Hashtbl.fold
      (fun k pg acc -> if skip k then acc else (k, Bytes.to_string pg.data) :: acc)
      t.pages []
    |> List.sort compare
  in
  pages_of a = pages_of b

(* First differing byte between two equal-shaped memories, for test
   diagnostics. [skip] excludes page numbers (runtime-private regions such
   as the translator's profile arena) from the comparison. *)
let first_diff ?(skip = fun _ -> false) a b =
  let result = ref None in
  let check k pg =
    if !result = None && not (skip k) then
      match Hashtbl.find_opt b.pages k with
      | None -> result := Some (k * page_size)
      | Some pg' ->
        let rec scan i =
          if i < page_size then
            if Bytes.get pg.data i <> Bytes.get pg'.data i then
              result := Some ((k * page_size) + i)
            else scan (i + 1)
        in
        scan 0
  in
  Hashtbl.iter check a.pages;
  Hashtbl.iter
    (fun k _ ->
      if !result = None && (not (skip k)) && not (Hashtbl.mem a.pages k) then
        result := Some (k * page_size))
    b.pages;
  !result
