(** Assembler DSL for authoring guest IA-32 programs.

    Items are instructions, labels, raw data and alignment directives;
    [assemble] resolves labels across sections by fixpoint and emits real
    machine code through {!Encode}. *)

type item =
  | Ins of Insn.insn
  | Ins_lab of string * (int -> Insn.insn)
  | Label of string
  | Raw of string
  | Raw_lab of string * (int -> string)
  | Align of int
  | Space of int

exception Error of string

val i : Insn.insn -> item
val label : string -> item
val raw : string -> item
val align : int -> item
val space : int -> item

val jmp : string -> item
val jcc : Insn.cond -> string -> item
val call : string -> item
val push_lab : string -> item
val mov_ri_lab : Insn.reg -> string -> item

(** [with_lab name f] emits [f addr] once [name] resolves to [addr]; the
    encoded length must not oscillate with the address (widths may only
    shrink from the wide initial guess). *)
val with_lab : string -> (int -> Insn.insn) -> item

val db : int -> item
val dw : int -> item
val dd : int -> item
val dq : int64 -> item
val df32 : float -> item
val df64 : float -> item

(** A data dword holding a label's address (jump-table entry). *)
val dd_lab : string -> item

type section = { base : int; items : item list }

val section : base:int -> item list -> section

(** Assemble sections with shared labels; returns [(base, bytes)] per
    section plus the label-lookup function. *)
val assemble : section list -> (int * string) list * (string -> int)

val default_code_base : int
val default_data_base : int
val default_stack_top : int
val default_stack_size : int

type image = {
  entry : int;
  code_base : int;
  code : string;
  data_base : int;
  data : string;
  stack_top : int;
  lookup : string -> int;
  labels : (string * int) list;
      (** every label with its resolved address, sorted by address — lets
          observability consumers name guest blocks symbolically *)
}

(** Build a two-section program image; entry defaults to label ["start"]. *)
val build :
  ?code_base:int ->
  ?data_base:int ->
  ?entry:string ->
  code:item list ->
  data:item list ->
  unit ->
  image

(** Map the image into guest memory (code RX unless [writable_code]), map a
    stack, and return a fresh architectural state at the entry point. *)
val load : ?writable_code:bool -> image -> Memory.t -> State.t
