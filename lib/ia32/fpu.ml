(* x87 FPU model: eight physical registers organised as a stack through the
   TOP-of-stack pointer, a TAG word, condition-code bits, and the MMX
   registers aliased onto the physical registers' significands.

   Substitution note (see DESIGN.md): values are OCaml 64-bit floats rather
   than 80-bit extended reals. The aliased MMX view keeps its own 64-bit
   integer image which is refreshed from the float bits on FP writes, so the
   aliasing semantics are deterministic and identical between the reference
   interpreter and the translator. *)

type tag = Valid | Empty

type t = {
  fval : float array; (* physical register file, indices 0-7 *)
  ival : int64 array; (* aliased MMX view of the significands *)
  tags : tag array;
  mutable top : int;
  mutable c0 : bool;
  mutable c1 : bool;
  mutable c2 : bool;
  mutable c3 : bool;
}

let create () =
  {
    fval = Array.make 8 0.0;
    ival = Array.make 8 0L;
    tags = Array.make 8 Empty;
    top = 0;
    c0 = false;
    c1 = false;
    c2 = false;
    c3 = false;
  }

let phys t i = (t.top + i) land 7

let tag_of t i = t.tags.(phys t i)

let stack_fault () = raise (Fault.Fault Fault.Fp_stack_fault)

(* Reading ST(i) faults when the entry is empty (stack underflow). *)
let get t i =
  let p = phys t i in
  match t.tags.(p) with
  | Valid -> t.fval.(p)
  | Empty -> stack_fault ()

(* Writing ST(i): the entry must already be allocated (Valid). *)
let set t i v =
  let p = phys t i in
  (match t.tags.(p) with Valid -> () | Empty -> stack_fault ());
  t.fval.(p) <- v;
  t.ival.(p) <- Int64.bits_of_float v

(* Push: the incoming physical slot must be Empty (else stack overflow). *)
let push t v =
  let p = (t.top - 1) land 7 in
  (match t.tags.(p) with Empty -> () | Valid -> stack_fault ());
  t.top <- p;
  t.tags.(p) <- Valid;
  t.fval.(p) <- v;
  t.ival.(p) <- Int64.bits_of_float v

let pop t =
  let p = t.top in
  (match t.tags.(p) with Valid -> () | Empty -> stack_fault ());
  t.tags.(p) <- Empty;
  t.top <- (p + 1) land 7

let free t i = t.tags.(phys t i) <- Empty

let incstp t = t.top <- (t.top + 1) land 7
let decstp t = t.top <- (t.top - 1) land 7

let fxch t i =
  let p0 = phys t 0 and pi = phys t i in
  (match (t.tags.(p0), t.tags.(pi)) with
  | Valid, Valid -> ()
  | _ -> stack_fault ());
  let f = t.fval.(p0) and v = t.ival.(p0) in
  t.fval.(p0) <- t.fval.(pi);
  t.ival.(p0) <- t.ival.(pi);
  t.fval.(pi) <- f;
  t.ival.(pi) <- v

(* Compare ST(0) with [v]; sets C3/C2/C0 like FCOM. *)
let compare_with t v =
  let a = get t 0 in
  if Float.is_nan a || Float.is_nan v then begin
    t.c3 <- true; t.c2 <- true; t.c0 <- true
  end
  else if a > v then begin t.c3 <- false; t.c2 <- false; t.c0 <- false end
  else if a < v then begin t.c3 <- false; t.c2 <- false; t.c0 <- true end
  else begin t.c3 <- true; t.c2 <- false; t.c0 <- false end;
  t.c1 <- false

(* FNSTSW AX image: C0=bit8, C1=bit9, C2=bit10, TOP=bits 11-13, C3=bit14. *)
let status_word t =
  (if t.c0 then 0x100 else 0)
  lor (if t.c1 then 0x200 else 0)
  lor (if t.c2 then 0x400 else 0)
  lor (t.top lsl 11)
  lor if t.c3 then 0x4000 else 0

(* IA-32 tag word: 2 bits per physical register; we model Valid=00 Empty=11. *)
let tag_word t =
  let w = ref 0 in
  for i = 7 downto 0 do
    w := (!w lsl 2) lor (match t.tags.(i) with Valid -> 0 | Empty -> 3)
  done;
  !w

(* ---- MMX aliased view ------------------------------------------------ *)

(* Any MMX instruction (except EMMS) sets TOP to 0 and marks every entry
   Valid, per the IA-32 aliasing rules. *)
let mmx_touch t =
  t.top <- 0;
  Array.fill t.tags 0 8 Valid

let mmx_get t i =
  mmx_touch t;
  t.ival.(i land 7)

let mmx_set t i v =
  mmx_touch t;
  t.ival.(i land 7) <- v;
  (* The FP view of an MMX write is a NaN-like pattern (exponent all ones). *)
  t.fval.(i land 7) <- Float.nan

let emms t =
  Array.fill t.tags 0 8 Empty;
  t.top <- 0

(* ---- structural operations ------------------------------------------ *)

let copy t =
  {
    fval = Array.copy t.fval;
    ival = Array.copy t.ival;
    tags = Array.copy t.tags;
    top = t.top;
    c0 = t.c0;
    c1 = t.c1;
    c2 = t.c2;
    c3 = t.c3;
  }

(* Equality for differential tests: float values compared by bits, but only
   on Valid entries; NaN FP views of MMX writes compare equal through the
   integer image. *)
let equal a b =
  a.top = b.top
  && a.c0 = b.c0 && a.c1 = b.c1 && a.c2 = b.c2 && a.c3 = b.c3
  && Array.for_all2 ( = ) a.tags b.tags
  &&
  let ok = ref true in
  for i = 0 to 7 do
    if a.tags.(i) = Valid then
      if not (Int64.equal a.ival.(i) b.ival.(i)) then ok := false
  done;
  !ok

(* ST(i)-relative equality: the physical TOP may legitimately differ
   between two correct executions (a TOS-speculation recovery physically
   rotates one side's register file); what must agree is the logical stack
   the guest sees. *)
let logical_equal a b =
  a.c0 = b.c0 && a.c1 = b.c1 && a.c2 = b.c2 && a.c3 = b.c3
  &&
  let ok = ref true in
  for i = 0 to 7 do
    let pa = (a.top + i) land 7 and pb = (b.top + i) land 7 in
    if a.tags.(pa) <> b.tags.(pb) then ok := false
    else if a.tags.(pa) = Valid && not (Int64.equal a.ival.(pa) b.ival.(pb))
    then ok := false
  done;
  !ok

let pp ppf t =
  Fmt.pf ppf "top=%d tags=[%s] cc=%d%d%d%d"
    t.top
    (String.concat ""
       (List.map (function Valid -> "v" | Empty -> "." ) (Array.to_list t.tags)))
    (Bool.to_int t.c3) (Bool.to_int t.c2) (Bool.to_int t.c1) (Bool.to_int t.c0);
  for i = 0 to 7 do
    if t.tags.(i) = Valid then Fmt.pf ppf " r%d=%h" i t.fval.(i)
  done
