(* Small assembler DSL used to author guest IA-32 programs (workloads,
   tests, examples). Multi-section, label-based, resolved to real machine
   code by {!Encode} via fixpoint iteration (instruction lengths can depend
   on label values through immediate-width selection). *)

type item =
  | Ins of Insn.insn
  | Ins_lab of string * (int -> Insn.insn) (* built once the label is known *)
  | Label of string
  | Raw of string (* literal bytes *)
  | Raw_lab of string * (int -> string) (* label-dependent bytes, fixed length *)
  | Align of int
  | Space of int

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---- combinators ------------------------------------------------------ *)

let i insn = Ins insn
let label name = Label name
let raw s = Raw s
let align n = Align n
let space n = Space n

let jmp name = Ins_lab (name, fun a -> Insn.Jmp a)
let jcc c name = Ins_lab (name, fun a -> Insn.Jcc (c, a))
let call name = Ins_lab (name, fun a -> Insn.Call a)
let push_lab name = Ins_lab (name, fun a -> Insn.Push (Insn.I a))
let mov_ri_lab r name = Ins_lab (name, fun a -> Insn.Mov (Insn.S32, Insn.R r, Insn.I a))

(* Build any instruction from a label address. *)
let with_lab name f = Ins_lab (name, f)

let db v = Raw (String.make 1 (Char.chr (Word.mask8 v)))

let dw v =
  Raw (String.init 2 (fun k -> Char.chr ((Word.mask16 v lsr (8 * k)) land 0xFF)))

let dd v =
  Raw (String.init 4 (fun k -> Char.chr ((Word.mask32 v lsr (8 * k)) land 0xFF)))

let dq v =
  Raw
    (String.init 8 (fun k ->
         Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF)))

let df32 f = dd (Fpconv.bits_of_f32 f)
let df64 f = dq (Fpconv.bits_of_f64 f)

(* A data dword holding the address of a label (e.g. a jump table entry). *)
let dd_lab name =
  Raw_lab
    ( name,
      fun a ->
        String.init 4 (fun k -> Char.chr ((Word.mask32 a lsr (8 * k)) land 0xFF)) )

(* ---- assembly --------------------------------------------------------- *)

type section = { base : int; items : item list }

let section ~base items = { base; items }

(* Length of an item under a given label environment. *)
let item_parts lookup addr = function
  | Ins insn -> Encode.encode ~ip:addr insn
  | Ins_lab (name, f) -> Encode.encode ~ip:addr (f (lookup name))
  | Label _ -> ""
  | Raw s -> s
  | Raw_lab (name, f) -> f (lookup name)
  | Align n ->
    let pad = (n - (addr mod n)) mod n in
    String.make pad '\x90'
  | Space n -> String.make n '\000'

(* Resolve labels by fixpoint: immediate/displacement width selection makes
   lengths depend on label values. *)
let resolve_labels sections =
  let env = Hashtbl.create 64 in
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some a -> a
    | None -> 0x01000000 (* large dummy: forces wide forms initially *)
  in
  let pass () =
    let changed = ref false in
    List.iter
      (fun { base; items } ->
        let addr = ref base in
        List.iter
          (fun item ->
            (match item with
            | Label name ->
              if Hashtbl.find_opt env name <> Some !addr then begin
                Hashtbl.replace env name !addr;
                changed := true
              end
            | _ -> ());
            addr := !addr + String.length (item_parts lookup !addr item))
          items)
      sections;
    !changed
  in
  let rec iterate n =
    if n = 0 then err "assembler: label resolution did not converge";
    if pass () then iterate (n - 1)
  in
  iterate 16;
  env

(* [assemble sections] resolves all labels across sections and returns the
   bytes of each section (in order) plus the label table. *)
let assemble_env sections =
  let env = resolve_labels sections in
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some a -> a
    | None -> err "assembler: undefined label %S" name
  in
  let emit { base; items } =
    let buf = Buffer.create 256 in
    List.iter
      (fun item ->
        Buffer.add_string buf (item_parts lookup (base + Buffer.length buf) item))
      items;
    (base, Buffer.contents buf)
  in
  (List.map emit sections, lookup, env)

let assemble sections =
  let parts, lookup, _env = assemble_env sections in
  (parts, lookup)

(* ---- program images --------------------------------------------------- *)

(* Conventional layout for guest programs: code at 4 MiB, data at 128 MiB,
   stack just below 512 MiB. *)
let default_code_base = 0x00400000
let default_data_base = 0x08000000
let default_stack_top = 0x1FFFF000
let default_stack_size = 0x10000

type image = {
  entry : int;
  code_base : int;
  code : string;
  data_base : int;
  data : string;
  stack_top : int;
  lookup : string -> int;
  labels : (string * int) list; (* every label, sorted by address *)
}

let build ?(code_base = default_code_base) ?(data_base = default_data_base)
    ?(entry = "start") ~code ~data () =
  let parts, lookup, env =
    assemble_env [ section ~base:code_base code; section ~base:data_base data ]
  in
  let labels =
    Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) env []
    |> List.sort (fun (na, a) (nb, b) ->
           match compare a b with 0 -> compare na nb | c -> c)
  in
  match parts with
  | [ (_, code_bytes); (_, data_bytes) ] ->
    {
      entry = lookup entry;
      code_base;
      code = code_bytes;
      data_base;
      data = data_bytes;
      stack_top = default_stack_top;
      lookup;
      labels;
    }
  | _ -> assert false

(* Map an image into guest memory and initialise a machine state at its
   entry point. Code pages are mapped read+execute unless [writable_code]. *)
let load ?(writable_code = false) image mem =
  let round_up n = (n + Memory.page_size - 1) land lnot (Memory.page_size - 1) in
  let code_prot = if writable_code then Memory.prot_rwx else Memory.prot_rx in
  Memory.map mem ~addr:image.code_base
    ~len:(round_up (max 1 (String.length image.code)))
    ~prot:code_prot;
  Memory.load_bytes mem image.code_base image.code;
  if String.length image.data > 0 then begin
    Memory.map mem ~addr:image.data_base
      ~len:(round_up (String.length image.data))
      ~prot:Memory.prot_rw;
    Memory.load_bytes mem image.data_base image.data
  end;
  Memory.map mem
    ~addr:(image.stack_top - default_stack_size)
    ~len:(default_stack_size + Memory.page_size)
    ~prot:Memory.prot_rw;
  let st = State.create mem in
  st.State.eip <- image.entry;
  State.set32 st Insn.Esp image.stack_top;
  st
