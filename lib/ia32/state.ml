(* Complete architectural IA-32 state: general registers (with 8/16-bit
   subregister views), EIP, EFLAGS, the x87/MMX unit, the XMM registers and
   a reference to guest memory. This is the state the translator must be
   able to reconstruct precisely at any exception point. *)

type t = {
  regs : int array; (* 8 canonical 32-bit values *)
  mutable eip : int;
  mutable cf : bool;
  mutable pf : bool;
  mutable af : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable of_ : bool;
  mutable df : bool;
  fpu : Fpu.t;
  xmm_lo : int64 array; (* 8 registers x 128 bits *)
  xmm_hi : int64 array;
  mem : Memory.t;
  icache : Icache.t; (* interpreter decode cache; private to this state *)
}

let create mem =
  {
    regs = Array.make 8 0;
    eip = 0;
    cf = false;
    pf = false;
    af = false;
    zf = false;
    sf = false;
    of_ = false;
    df = false;
    fpu = Fpu.create ();
    xmm_lo = Array.make 8 0L;
    xmm_hi = Array.make 8 0L;
    mem;
    icache = Icache.create ();
  }

let get32 t r = t.regs.(Insn.reg_index r)
let set32 t r v = t.regs.(Insn.reg_index r) <- Word.mask32 v

let get16 t r = Word.mask16 t.regs.(Insn.reg_index r)

let set16 t r v =
  let i = Insn.reg_index r in
  t.regs.(i) <- t.regs.(i) land 0xFFFF0000 lor Word.mask16 v

(* 8-bit registers use x86 numbering: 0-3 are the low bytes of eax..ebx,
   4-7 the second bytes (ah..bh). *)
let get8 t r =
  let i = Insn.reg_index r in
  if i < 4 then Word.mask8 t.regs.(i) else Word.mask8 (t.regs.(i - 4) lsr 8)

let set8 t r v =
  let i = Insn.reg_index r in
  if i < 4 then t.regs.(i) <- t.regs.(i) land 0xFFFFFF00 lor Word.mask8 v
  else t.regs.(i - 4) <- t.regs.(i - 4) land 0xFFFF00FF lor (Word.mask8 v lsl 8)

let get_reg size t r =
  match size with
  | Insn.S8 -> get8 t r
  | Insn.S16 -> get16 t r
  | Insn.S32 -> get32 t r

let set_reg size t r v =
  match size with
  | Insn.S8 -> set8 t r v
  | Insn.S16 -> set16 t r v
  | Insn.S32 -> set32 t r v

let get_flag t = function
  | Insn.CF -> t.cf
  | Insn.PF -> t.pf
  | Insn.AF -> t.af
  | Insn.ZF -> t.zf
  | Insn.SF -> t.sf
  | Insn.OF -> t.of_
  | Insn.DF -> t.df

let set_flag t f v =
  match f with
  | Insn.CF -> t.cf <- v
  | Insn.PF -> t.pf <- v
  | Insn.AF -> t.af <- v
  | Insn.ZF -> t.zf <- v
  | Insn.SF -> t.sf <- v
  | Insn.OF -> t.of_ <- v
  | Insn.DF -> t.df <- v

(* EFLAGS image for pushfd/popfd. Bit 1 is always set on IA-32. *)
let eflags_word t =
  0x2
  lor (if t.cf then 0x1 else 0)
  lor (if t.pf then 0x4 else 0)
  lor (if t.af then 0x10 else 0)
  lor (if t.zf then 0x40 else 0)
  lor (if t.sf then 0x80 else 0)
  lor (if t.df then 0x400 else 0)
  lor if t.of_ then 0x800 else 0

let set_eflags_word t w =
  t.cf <- w land 0x1 <> 0;
  t.pf <- w land 0x4 <> 0;
  t.af <- w land 0x10 <> 0;
  t.zf <- w land 0x40 <> 0;
  t.sf <- w land 0x80 <> 0;
  t.df <- w land 0x400 <> 0;
  t.of_ <- w land 0x800 <> 0

let eval_cond t (c : Insn.cond) =
  match c with
  | Insn.O -> t.of_
  | Insn.No -> not t.of_
  | Insn.B -> t.cf
  | Insn.Ae -> not t.cf
  | Insn.E -> t.zf
  | Insn.Ne -> not t.zf
  | Insn.Be -> t.cf || t.zf
  | Insn.A -> not (t.cf || t.zf)
  | Insn.S -> t.sf
  | Insn.Ns -> not t.sf
  | Insn.P -> t.pf
  | Insn.Np -> not t.pf
  | Insn.L -> t.sf <> t.of_
  | Insn.Ge -> t.sf = t.of_
  | Insn.Le -> t.zf || t.sf <> t.of_
  | Insn.G -> not t.zf && t.sf = t.of_

(* Effective address of a memory operand. *)
let ea t (m : Insn.mem) =
  let base = match m.base with Some r -> get32 t r | None -> 0 in
  let index =
    match m.index with Some (r, s) -> get32 t r * s | None -> 0
  in
  Word.mask32 (base + index + m.disp)

let get_xmm t i = (t.xmm_lo.(i land 7), t.xmm_hi.(i land 7))

let set_xmm t i (lo, hi) =
  t.xmm_lo.(i land 7) <- lo;
  t.xmm_hi.(i land 7) <- hi

let copy t =
  {
    regs = Array.copy t.regs;
    eip = t.eip;
    cf = t.cf;
    pf = t.pf;
    af = t.af;
    zf = t.zf;
    sf = t.sf;
    of_ = t.of_;
    df = t.df;
    fpu = Fpu.copy t.fpu;
    xmm_lo = Array.copy t.xmm_lo;
    xmm_hi = Array.copy t.xmm_hi;
    mem = t.mem;
    icache = Icache.create ();
  }

(* In-place restore of the architectural state from a captured copy:
   existing references to [dst] (the engine, Vos thread records) stay
   valid, and its decode cache is kept — entries are generation-validated
   against memory, so a warm cache is correct across a snapshot revert. *)
let restore_into ~src ~dst =
  Array.blit src.regs 0 dst.regs 0 8;
  dst.eip <- src.eip;
  dst.cf <- src.cf;
  dst.pf <- src.pf;
  dst.af <- src.af;
  dst.zf <- src.zf;
  dst.sf <- src.sf;
  dst.of_ <- src.of_;
  dst.df <- src.df;
  Array.blit src.fpu.Fpu.fval 0 dst.fpu.Fpu.fval 0 8;
  Array.blit src.fpu.Fpu.ival 0 dst.fpu.Fpu.ival 0 8;
  Array.blit src.fpu.Fpu.tags 0 dst.fpu.Fpu.tags 0 8;
  dst.fpu.Fpu.top <- src.fpu.Fpu.top;
  dst.fpu.Fpu.c0 <- src.fpu.Fpu.c0;
  dst.fpu.Fpu.c1 <- src.fpu.Fpu.c1;
  dst.fpu.Fpu.c2 <- src.fpu.Fpu.c2;
  dst.fpu.Fpu.c3 <- src.fpu.Fpu.c3;
  Array.blit src.xmm_lo 0 dst.xmm_lo 0 8;
  Array.blit src.xmm_hi 0 dst.xmm_hi 0 8

(* Architectural equality, ignoring memory (compared separately) and EIP if
   requested. Used by the differential tests. *)
let equal ?(with_eip = true) a b =
  Array.for_all2 ( = ) a.regs b.regs
  && ((not with_eip) || a.eip = b.eip)
  && a.cf = b.cf && a.pf = b.pf && a.af = b.af && a.zf = b.zf && a.sf = b.sf
  && a.of_ = b.of_ && a.df = b.df
  && Fpu.equal a.fpu b.fpu
  && Array.for_all2 Int64.equal a.xmm_lo b.xmm_lo
  && Array.for_all2 Int64.equal a.xmm_hi b.xmm_hi

let pp ppf t =
  Fmt.pf ppf "eip=%08x@." t.eip;
  List.iter
    (fun r -> Fmt.pf ppf "%s=%08x " (Insn.reg_name r) (get32 t r))
    Insn.all_regs;
  Fmt.pf ppf "@.flags: cf=%b pf=%b af=%b zf=%b sf=%b of=%b df=%b@."
    t.cf t.pf t.af t.zf t.sf t.of_ t.df;
  Fmt.pf ppf "fpu: %a@." Fpu.pp t.fpu;
  for i = 0 to 7 do
    if not (Int64.equal t.xmm_lo.(i) 0L) || not (Int64.equal t.xmm_hi.(i) 0L)
    then Fmt.pf ppf "xmm%d=%Lx:%Lx " i t.xmm_hi.(i) t.xmm_lo.(i)
  done
