(** Full architectural IA-32 state: the state the translator must be able to
    reconstruct precisely at any exception point (paper §4). *)

type t = {
  regs : int array;
  mutable eip : int;
  mutable cf : bool;
  mutable pf : bool;
  mutable af : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable of_ : bool;
  mutable df : bool;
  fpu : Fpu.t;
  xmm_lo : int64 array;
  xmm_hi : int64 array;
  mem : Memory.t;
  icache : Icache.t;
      (** interpreter decode cache; private to this state — {!copy} gives
          the copy a fresh one *)
}

val create : Memory.t -> t

val get32 : t -> Insn.reg -> int
val set32 : t -> Insn.reg -> int -> unit
val get16 : t -> Insn.reg -> int
val set16 : t -> Insn.reg -> int -> unit

(** 8-bit access uses x86 numbering: registers of index 4-7 denote
    ah/ch/dh/bh. *)
val get8 : t -> Insn.reg -> int

val set8 : t -> Insn.reg -> int -> unit
val get_reg : Insn.size -> t -> Insn.reg -> int
val set_reg : Insn.size -> t -> Insn.reg -> int -> unit

val get_flag : t -> Insn.flag -> bool
val set_flag : t -> Insn.flag -> bool -> unit

(** EFLAGS image as pushed by [pushfd] (bit 1 always set). *)
val eflags_word : t -> int

val set_eflags_word : t -> int -> unit

val eval_cond : t -> Insn.cond -> bool

(** Effective address of a memory operand under the current registers. *)
val ea : t -> Insn.mem -> int

val get_xmm : t -> int -> int64 * int64
val set_xmm : t -> int -> int64 * int64 -> unit

(** Copy shares the memory (registers and FPU are duplicated). *)
val copy : t -> t

val restore_into : src:t -> dst:t -> unit
(** Overwrite [dst]'s registers, EIP, flags, FPU and XMM state in place
    from [src], leaving [dst]'s memory reference and decode cache alone
    (cache entries validate against page generations, so a warm cache
    stays correct across a snapshot revert). Existing references to
    [dst] remain valid — the point of restoring in place. *)

val equal : ?with_eip:bool -> t -> t -> bool
val pp : Format.formatter -> t -> unit
