(** Architectural guest snapshots: nested copy-on-write epochs over one
    {!Memory} plus eager captures of registered {!State}s.

    Built on {!Memory.Journal}: creating an epoch is O(1), running
    inside it costs one pre-image copy per page first touched, and
    {!revert} restores exactly those pages (bytes, protection and
    original write generation — so decode caches stay warm). The
    registered states are restored in place, keeping existing references
    to them valid. The SMC watched-page set is captured and restored as
    part of each epoch.

    This is the single-address-space arch layer. The OS layer
    ([Btlib.Vos.checkpoint]) and the translator layer
    ([Ia32el.Engine.snapshot]) capture their own state on top of the
    same epoch stack. *)

type t

val start : Memory.t -> t
(** Attach a journal to the memory (idempotent) and return an empty
    epoch stack over it. *)

val depth : t -> int

val push : t -> State.t list -> unit
(** Open an epoch: capture the given states (typically one per guest
    thread) and the watched-page set, and begin journalling page
    pre-images. *)

val revert : t -> int list
(** Pop the innermost epoch: restore touched pages, captured states and
    the watch set. Returns the touched page numbers so callers can
    invalidate page-derived state (translated blocks).
    @raise Invalid_argument when no epoch is open. *)

val commit : t -> unit
(** Pop the innermost epoch, folding its page pre-images into the parent
    epoch. The captured states are dropped.
    @raise Invalid_argument when no epoch is open. *)

val pages_restored : t -> int
(** Cumulative pages restored by {!revert} — the O(pages touched)
    assertion counter. *)
