(* Direct-mapped cache of decoded instructions for the reference
   interpreter. An entry is keyed by EIP and validated against the write
   generation of the page(s) holding the instruction bytes
   ({!Memory.page_gen}): any store, remap or protection change on a source
   page bumps its generation, so the next fetch at that address re-decodes.
   This is exactly the SMC machinery the translator itself relies on, so
   self-modifying code behaves identically with the cache on or off.

   Entries live in parallel int arrays (plus one array of instructions) and
   are mutated in place; a hit performs no allocation. *)

let bits = 12
let size = 1 lsl bits (* 4096 direct-mapped entries *)
let mask = size - 1

type t = {
  mutable enabled : bool;
  eips : int array; (* -1 = empty slot *)
  insns : Insn.insn array;
  lens : int array;
  g1s : int array; (* generation of the page holding the first byte *)
  g2s : int array; (* generation of the straddled page; 0 = no straddle *)
}

let create () =
  {
    enabled = true;
    eips = Array.make size (-1);
    insns = Array.make size Insn.Nop;
    lens = Array.make size 0;
    g1s = Array.make size 0;
    g2s = Array.make size 0;
  }

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

let clear t =
  Array.fill t.eips 0 size (-1)

(* Slot index on hit, -1 on miss. Valid generations are >= 1 and never
   reused, so comparing against a stored 0 (empty) or a stale generation
   can never false-hit, including across an unmap/remap cycle. *)
let find t mem eip =
  if not t.enabled then -1
  else begin
    let i = eip land mask in
    if
      Array.unsafe_get t.eips i = eip
      && Memory.page_gen mem eip = Array.unsafe_get t.g1s i
      &&
      let g2 = Array.unsafe_get t.g2s i in
      g2 = 0
      || Memory.page_gen mem
           (Word.mask32 (eip + Array.unsafe_get t.lens i - 1))
         = g2
    then i
    else -1
  end

let insn t i = Array.unsafe_get t.insns i
let len t i = Array.unsafe_get t.lens i

(* Record a successful decode. Only called after [Decode.decode] returned,
   so both source pages exist and are fetchable at this instant. *)
let fill t mem eip insn len =
  if t.enabled then begin
    let i = eip land mask in
    let last = Word.mask32 (eip + len - 1) in
    t.eips.(i) <- eip;
    t.insns.(i) <- insn;
    t.lens.(i) <- len;
    t.g1s.(i) <- Memory.page_gen mem eip;
    t.g2s.(i) <-
      (if last lsr Memory.page_bits = eip lsr Memory.page_bits then 0
       else Memory.page_gen mem last)
  end
