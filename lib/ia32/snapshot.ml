(* Architectural snapshots: a stack of copy-on-write epochs over one
   guest memory plus eager captures of the registered architectural
   states. Memory reverts through Memory.Journal in O(pages touched);
   register/FPU/XMM state is tiny and captured eagerly. The SMC watch
   set is captured too, since the journal itself leaves it alone.

   Higher layers stack on top of this: Vos checkpoints the thread table
   and kernel state, the engine checkpoints translator state; both use
   the same journal epoch this module opens. *)

type frame = {
  states : (State.t * State.t) list; (* (live, captured copy) *)
  watched : int list;
}

type t = { mem : Memory.t; mutable frames : frame list }

let start mem =
  Memory.Journal.attach mem;
  { mem; frames = [] }

let depth t = List.length t.frames

let push t states =
  let frame =
    {
      states = List.map (fun st -> (st, State.copy st)) states;
      watched = Memory.watched_pages t.mem;
    }
  in
  Memory.Journal.push t.mem;
  t.frames <- frame :: t.frames

let pop t =
  match t.frames with
  | [] -> invalid_arg "Snapshot: no open epoch"
  | f :: rest ->
    t.frames <- rest;
    f

let revert t =
  let f = pop t in
  let touched = Memory.Journal.revert t.mem in
  List.iter (fun (live, saved) -> State.restore_into ~src:saved ~dst:live) f.states;
  Memory.set_watched_pages t.mem f.watched;
  touched

let commit t =
  let _ = pop t in
  Memory.Journal.commit t.mem

let pages_restored t = Memory.Journal.pages_restored t.mem
