(** Direct-mapped decoded-instruction cache for the reference interpreter.

    Entries are keyed by EIP and validated with one generation compare per
    source page ({!Memory.page_gen}); any write, remap or protection change
    to a source page invalidates affected entries implicitly. A hit
    allocates nothing. Purely a host-speed structure: interpreter results
    are bit-identical with the cache on or off. *)

type t

val create : unit -> t

val set_enabled : t -> bool -> unit
(** When disabled, {!find} always misses and {!fill} is a no-op, so every
    step goes through the real decoder. *)

val enabled : t -> bool

val clear : t -> unit
(** Drop every entry (diagnostic; generation validation already makes stale
    entries unreachable). *)

val find : t -> Memory.t -> int -> int
(** [find t mem eip] is the slot index of a valid entry for [eip], or [-1].
    Pass the slot to {!insn} / {!len}. *)

val insn : t -> int -> Insn.insn
val len : t -> int -> int

val fill : t -> Memory.t -> int -> Insn.insn -> int -> unit
(** [fill t mem eip insn len] records a decode that just succeeded. *)
