(* Reference IA-32 interpreter — the golden model.

   Defines the exact architectural semantics (including the "defined
   undefined" flag behaviours listed below) that the translator must
   reproduce; the differential test suite compares the two vehicles
   instruction by instruction.

   Precision: every instruction performs its memory reads first, then
   computes, then performs memory writes, then commits registers and flags,
   then advances EIP — so when a fault is raised the architectural state is
   exactly the state before the instruction (REP string instructions commit
   per-element progress, which is the architectural behaviour). The one
   modeled exception: MMX "touch" side effects (TOP=0, tags valid) precede a
   faulting MMX store, matching the translated code; the touch is
   idempotent so restart semantics are unaffected.

   Defined-undefined choices (implemented identically by the translator):
   - logic ops clear AF;
   - shifts/rotates with count>1 set OF by the count=1 formula;
   - shifts leave AF unchanged;
   - MUL/IMUL leave ZF/SF/PF/AF unchanged;
   - out-of-range FIST/CVTT store the integer indefinite. *)

open Insn

type event = Normal | Syscall of int | Faulted of Fault.t

let ( .%[] ) st r = State.get32 st r
let ( .%[]<- ) st r v = State.set32 st r v

let read_operand size (st : State.t) = function
  | R r -> State.get_reg size st r
  | M m -> Memory.read (size_bytes size) st.mem (State.ea st m)
  | I v -> Word.mask (size_bytes size) v

let write_operand size (st : State.t) op v =
  match op with
  | R r -> State.set_reg size st r v
  | M m -> Memory.write (size_bytes size) st.mem (State.ea st m) v
  | I _ -> invalid_arg "write to immediate"

(* ---- flag helpers ---------------------------------------------------- *)

let set_szp (st : State.t) size r =
  st.zf <- r = 0;
  st.sf <- Word.sign_bit size r;
  st.pf <- Word.parity r

let add_flags (st : State.t) size a b cin r =
  let w = size_bytes size in
  st.cf <- a + b + cin > Word.mask w (-1);
  st.of_ <-
    Word.sign_bit w a = Word.sign_bit w b && Word.sign_bit w r <> Word.sign_bit w a;
  st.af <- (a land 0xF) + (b land 0xF) + cin > 0xF;
  set_szp st w r

let sub_flags (st : State.t) size a b bin r =
  let w = size_bytes size in
  st.cf <- a < b + bin;
  st.of_ <-
    Word.sign_bit w a <> Word.sign_bit w b && Word.sign_bit w r <> Word.sign_bit w a;
  st.af <- a land 0xF < (b land 0xF) + bin;
  set_szp st w r

let logic_flags (st : State.t) size r =
  st.cf <- false;
  st.of_ <- false;
  st.af <- false;
  set_szp st (size_bytes size) r

(* ---- integer ops ----------------------------------------------------- *)

let exec_alu st op size dst src =
  let w = size_bytes size in
  let a = read_operand size st dst in
  let b = read_operand size st src in
  match op with
  | Add ->
    let r = Word.mask w (a + b) in
    write_operand size st dst r;
    add_flags st size a b 0 r
  | Adc ->
    let cin = if st.State.cf then 1 else 0 in
    let r = Word.mask w (a + b + cin) in
    write_operand size st dst r;
    add_flags st size a b cin r
  | Sub ->
    let r = Word.mask w (a - b) in
    write_operand size st dst r;
    sub_flags st size a b 0 r
  | Sbb ->
    let bin = if st.State.cf then 1 else 0 in
    let r = Word.mask w (a - b - bin) in
    write_operand size st dst r;
    sub_flags st size a b bin r
  | Cmp ->
    let r = Word.mask w (a - b) in
    sub_flags st size a b 0 r
  | And ->
    let r = a land b in
    write_operand size st dst r;
    logic_flags st size r
  | Or ->
    let r = a lor b in
    write_operand size st dst r;
    logic_flags st size r
  | Xor ->
    let r = a lxor b in
    write_operand size st dst r;
    logic_flags st size r

let exec_shift st sh size dst amount =
  let w = size_bytes size in
  let nbits = Word.bits w in
  let a = read_operand size st dst in
  let count =
    (match amount with Amt_imm n -> n | Amt_cl -> State.get8 st Ecx) land 31
  in
  if count <> 0 then begin
    match sh with
    | Shl ->
      let r = Word.mask w (a lsl count) in
      let cf = count <= nbits && (a lsr (nbits - count)) land 1 = 1 in
      write_operand size st dst r;
      st.State.cf <- cf;
      st.State.of_ <- Word.sign_bit w r <> cf;
      set_szp st w r
    | Shr ->
      let r = if count >= nbits then 0 else a lsr count in
      let cf = count <= nbits && (a lsr (count - 1)) land 1 = 1 in
      write_operand size st dst r;
      st.State.cf <- cf;
      st.State.of_ <- Word.sign_bit w a;
      set_szp st w r
    | Sar ->
      let sa = Word.signed w a in
      let r = Word.mask w (sa asr min count 62) in
      let cf = (sa asr min (count - 1) 62) land 1 = 1 in
      write_operand size st dst r;
      st.State.cf <- cf;
      st.State.of_ <- false;
      set_szp st w r
    | Rol ->
      let c = count mod nbits in
      let r = if c = 0 then a else Word.mask w ((a lsl c) lor (a lsr (nbits - c))) in
      write_operand size st dst r;
      st.State.cf <- r land 1 = 1;
      st.State.of_ <- Word.sign_bit w r <> (r land 1 = 1)
    | Ror ->
      let c = count mod nbits in
      let r = if c = 0 then a else Word.mask w ((a lsr c) lor (a lsl (nbits - c))) in
      write_operand size st dst r;
      st.State.cf <- Word.sign_bit w r;
      st.State.of_ <- Word.sign_bit w r <> ((r lsr (nbits - 2)) land 1 = 1)
  end

let exec_shld st dst r amount ~left =
  let a = read_operand S32 st dst in
  let b = st.%[r] in
  let count =
    (match amount with Amt_imm n -> n | Amt_cl -> State.get8 st Ecx) land 31
  in
  if count <> 0 then begin
    if left then begin
      let res = Word.mask32 ((a lsl count) lor (b lsr (32 - count))) in
      write_operand S32 st dst res;
      st.State.cf <- (a lsr (32 - count)) land 1 = 1;
      st.State.of_ <- Word.sign_bit 4 res <> st.State.cf;
      set_szp st 4 res
    end
    else begin
      let res = Word.mask32 ((a lsr count) lor (b lsl (32 - count))) in
      write_operand S32 st dst res;
      st.State.cf <- (a lsr (count - 1)) land 1 = 1;
      st.State.of_ <- Word.sign_bit 4 res <> Word.sign_bit 4 a;
      set_szp st 4 res
    end
  end

let exec_mul st size src ~signed =
  let w = size_bytes size in
  let a = State.get_reg size st Eax in
  let b = read_operand size st src in
  let wide x = if signed then Int64.of_int (Word.signed w x) else Int64.of_int x in
  let p = Int64.mul (wide a) (wide b) in
  let lo = Word.mask w (Int64.to_int (Int64.logand p (Int64.of_int (Word.mask w (-1))))) in
  let hi =
    Word.mask w (Int64.to_int (Int64.shift_right_logical p (Word.bits w)) land Word.mask w (-1))
  in
  (match size with
  | S8 -> State.set16 st Eax (lo lor (hi lsl 8))
  | S16 ->
    State.set16 st Eax lo;
    State.set16 st Edx hi
  | S32 ->
    st.%[Eax] <- lo;
    st.%[Edx] <- hi);
  let overflow =
    if signed then
      let sext = Word.mask w (Word.signed w lo asr (Word.bits w - 1)) in
      hi <> sext
    else hi <> 0
  in
  st.State.cf <- overflow;
  st.State.of_ <- overflow

let exec_div st size src ~signed =
  let w = size_bytes size in
  let b = read_operand size st src in
  if b = 0 then raise (Fault.Fault Fault.Divide_error);
  let lo, hi =
    match size with
    | S8 ->
      let ax = State.get16 st Eax in
      (ax land 0xFF, ax lsr 8)
    | S16 -> (State.get16 st Eax, State.get16 st Edx)
    | S32 -> (st.%[Eax], st.%[Edx])
  in
  let dividend = Int64.logor (Int64.shift_left (Int64.of_int hi) (Word.bits w)) (Int64.of_int lo) in
  let q, r =
    if signed then begin
      let dividend =
        (* sign-extend the 2w-bit dividend *)
        let sh = 64 - (2 * Word.bits w) in
        Int64.shift_right (Int64.shift_left dividend sh) sh
      in
      let d = Int64.of_int (Word.signed w b) in
      (Int64.div dividend d, Int64.rem dividend d)
    end
    else
      let d = Int64.of_int b in
      (Int64.unsigned_div dividend d, Int64.unsigned_rem dividend d)
  in
  let fits =
    if signed then
      let min = Int64.neg (Int64.shift_left 1L (Word.bits w - 1)) in
      let max = Int64.sub (Int64.shift_left 1L (Word.bits w - 1)) 1L in
      Int64.compare q min >= 0 && Int64.compare q max <= 0
    else Int64.unsigned_compare q (Int64.of_int (Word.mask w (-1))) <= 0
  in
  if not fits then raise (Fault.Fault Fault.Divide_error);
  let q = Word.mask w (Int64.to_int q) and r = Word.mask w (Int64.to_int r) in
  match size with
  | S8 -> State.set16 st Eax (q lor (r lsl 8))
  | S16 ->
    State.set16 st Eax q;
    State.set16 st Edx r
  | S32 ->
    st.%[Eax] <- q;
    st.%[Edx] <- r

(* ---- stack helpers --------------------------------------------------- *)

let push32 (st : State.t) v =
  let sp = Word.mask32 (st.%[Esp] - 4) in
  Memory.write32 st.mem sp v;
  st.%[Esp] <- sp

let pop32 (st : State.t) =
  let sp = st.%[Esp] in
  let v = Memory.read32 st.mem sp in
  st.%[Esp] <- Word.mask32 (sp + 4);
  v

(* ---- string ops ------------------------------------------------------ *)

let string_delta (st : State.t) size =
  if st.df then -size_bytes size else size_bytes size

let exec_string st insn =
  let adv r d = st.%[r] <- Word.mask32 (st.%[r] + d) in
  let one_movs size =
    let d = string_delta st size in
    let v = Memory.read (size_bytes size) st.State.mem st.%[Esi] in
    Memory.write (size_bytes size) st.State.mem st.%[Edi] v;
    adv Esi d;
    adv Edi d
  in
  let one_stos size =
    let d = string_delta st size in
    Memory.write (size_bytes size) st.State.mem st.%[Edi] (State.get_reg size st Eax);
    adv Edi d
  in
  let one_lods size =
    let d = string_delta st size in
    State.set_reg size st Eax (Memory.read (size_bytes size) st.State.mem st.%[Esi]);
    adv Esi d
  in
  let one_scas size =
    let d = string_delta st size in
    let a = State.get_reg size st Eax in
    let b = Memory.read (size_bytes size) st.State.mem st.%[Edi] in
    sub_flags st size a b 0 (Word.mask (size_bytes size) (a - b));
    adv Edi d
  in
  let rep_loop ?stop_when one =
    (* REP family: iterate while ECX <> 0; REPE/REPNE additionally test ZF
       after each element. *)
    let continue = ref true in
    while !continue && st.%[Ecx] <> 0 do
      one ();
      st.%[Ecx] <- Word.mask32 (st.%[Ecx] - 1);
      (match stop_when with
      | Some zf_stop -> if st.State.zf = zf_stop then continue := false
      | None -> ())
    done
  in
  match insn with
  | Movs (size, No_rep) -> one_movs size
  | Movs (size, _) -> rep_loop (fun () -> one_movs size)
  | Stos (size, No_rep) -> one_stos size
  | Stos (size, _) -> rep_loop (fun () -> one_stos size)
  | Lods (size, No_rep) -> one_lods size
  | Lods (size, _) -> rep_loop (fun () -> one_lods size)
  | Scas (size, No_rep) -> one_scas size
  | Scas (size, Repe) -> rep_loop ~stop_when:false (fun () -> one_scas size)
  | Scas (size, (Repne | Rep)) -> rep_loop ~stop_when:true (fun () -> one_scas size)
  | _ -> invalid_arg "exec_string"

(* ---- x87 ------------------------------------------------------------- *)

let fp_apply op a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FSubr -> b -. a
  | FMul -> a *. b
  | FDiv -> a /. b
  | FDivr -> b /. a

let exec_fp (st : State.t) f =
  let fpu = st.fpu in
  let mem = st.mem in
  let read_f fs m =
    let a = State.ea st m in
    match fs with F32 -> Memory.read_f32 mem a | F64 -> Memory.read_f64 mem a
  in
  match f with
  | Fld_st i ->
    let v = Fpu.get fpu i in
    Fpu.push fpu v
  | Fld_m (fs, m) -> Fpu.push fpu (read_f fs m)
  | Fld1 -> Fpu.push fpu 1.0
  | Fldz -> Fpu.push fpu 0.0
  | Fldpi -> Fpu.push fpu (Float.pi)
  | Fst_st (i, pop) ->
    Fpu.set fpu i (Fpu.get fpu 0);
    if pop then Fpu.pop fpu
  | Fst_m (fs, m, pop) ->
    let v = Fpu.get fpu 0 in
    let a = State.ea st m in
    (match fs with
    | F32 -> Memory.write_f32 mem a (Fpconv.f32_of_bits (Fpconv.bits_of_f32 v))
    | F64 -> Memory.write_f64 mem a v);
    if pop then Fpu.pop fpu
  | Fild (is, m) ->
    let a = State.ea st m in
    let v =
      match is with
      | I16 -> Float.of_int (Word.signed16 (Memory.read16 mem a))
      | I32 -> Float.of_int (Word.signed32 (Memory.read32 mem a))
    in
    Fpu.push fpu v
  | Fist_m (is, m, pop) ->
    let v = Fpu.get fpu 0 in
    let a = State.ea st m in
    (match is with
    | I16 -> Memory.write16 mem a (Fpconv.fist ~bits:16 v)
    | I32 -> Memory.write32 mem a (Fpconv.fist ~bits:32 v));
    if pop then Fpu.pop fpu
  | Fop_st0_st (op, i) ->
    let a = Fpu.get fpu 0 and b = Fpu.get fpu i in
    Fpu.set fpu 0 (fp_apply op a b)
  | Fop_st_st0 (op, i, pop) ->
    let a = Fpu.get fpu i and b = Fpu.get fpu 0 in
    Fpu.set fpu i (fp_apply op a b);
    if pop then Fpu.pop fpu
  | Fop_m (op, fs, m) ->
    let b = read_f fs m in
    let a = Fpu.get fpu 0 in
    Fpu.set fpu 0 (fp_apply op a b)
  | Fchs -> Fpu.set fpu 0 (-.Fpu.get fpu 0)
  | Fabs -> Fpu.set fpu 0 (Float.abs (Fpu.get fpu 0))
  | Fsqrt -> Fpu.set fpu 0 (Float.sqrt (Fpu.get fpu 0))
  | Frndint -> Fpu.set fpu 0 (Fpconv.rint (Fpu.get fpu 0))
  | Fcom_st (i, pops) ->
    Fpu.compare_with fpu (Fpu.get fpu i);
    for _ = 1 to pops do Fpu.pop fpu done
  | Fcom_m (fs, m, pops) ->
    let v = read_f fs m in
    Fpu.compare_with fpu v;
    for _ = 1 to pops do Fpu.pop fpu done
  | Fnstsw_ax -> State.set16 st Eax (Fpu.status_word fpu)
  | Fxch i -> Fpu.fxch fpu i
  | Ffree i -> Fpu.free fpu i
  | Fincstp -> Fpu.incstp fpu
  | Fdecstp -> Fpu.decstp fpu

(* ---- MMX ------------------------------------------------------------- *)

let mmx_lanes = Word.lanes_map2

let exec_mmx (st : State.t) x =
  let fpu = st.fpu in
  let read_rm = function
    | MM i -> Fpu.mmx_get fpu i
    | MMem m -> Memory.read64 st.mem (State.ea st m)
  in
  match x with
  | Movd_to_mm (mm, src) ->
    let v = read_operand S32 st src in
    Fpu.mmx_set fpu mm (Int64.of_int v)
  | Movd_from_mm (dst, mm) ->
    let v = Fpu.mmx_get fpu mm in
    write_operand S32 st dst (Word.lo32 v)
  | Movq_to_mm (mm, src) ->
    let v = read_rm src in
    Fpu.mmx_set fpu mm v
  | Movq_from_mm (dst, mm) -> (
    let v = Fpu.mmx_get fpu mm in
    match dst with
    | MM i -> Fpu.mmx_set fpu i v
    | MMem m -> Memory.write64 st.mem (State.ea st m) v)
  | Padd (w, mm, src) ->
    let b = read_rm src in
    let a = Fpu.mmx_get fpu mm in
    Fpu.mmx_set fpu mm (mmx_lanes w Int64.add a b)
  | Psub (w, mm, src) ->
    let b = read_rm src in
    let a = Fpu.mmx_get fpu mm in
    Fpu.mmx_set fpu mm (mmx_lanes w Int64.sub a b)
  | Pmullw (mm, src) ->
    let b = read_rm src in
    let a = Fpu.mmx_get fpu mm in
    Fpu.mmx_set fpu mm (mmx_lanes 2 Int64.mul a b)
  | Pand (mm, src) ->
    let b = read_rm src in
    Fpu.mmx_set fpu mm (Int64.logand (Fpu.mmx_get fpu mm) b)
  | Por (mm, src) ->
    let b = read_rm src in
    Fpu.mmx_set fpu mm (Int64.logor (Fpu.mmx_get fpu mm) b)
  | Pxor (mm, src) ->
    let b = read_rm src in
    Fpu.mmx_set fpu mm (Int64.logxor (Fpu.mmx_get fpu mm) b)
  | Pcmpeq (w, mm, src) ->
    let b = read_rm src in
    let a = Fpu.mmx_get fpu mm in
    let f la lb = if Int64.equal la lb then -1L else 0L in
    Fpu.mmx_set fpu mm (mmx_lanes w f a b)
  | Psll (w, mm, n) ->
    let a = Fpu.mmx_get fpu mm in
    let f la _ = if n >= w * 8 then 0L else Int64.shift_left la n in
    Fpu.mmx_set fpu mm (mmx_lanes w f a 0L)
  | Psrl (w, mm, n) ->
    let a = Fpu.mmx_get fpu mm in
    let f la _ = if n >= w * 8 then 0L else Int64.shift_right_logical la n in
    Fpu.mmx_set fpu mm (mmx_lanes w f a 0L)
  | Emms -> Fpu.emms fpu

(* ---- SSE ------------------------------------------------------------- *)

let exec_sse (st : State.t) x =
  let read_xmm_rm = function
    | XM i -> State.get_xmm st i
    | XMem m ->
      let a = State.ea st m in
      (Memory.read64 st.mem a, Memory.read64 st.mem (a + 8))
  in
  let write_xmm_rm rm (lo, hi) =
    match rm with
    | XM i -> State.set_xmm st i (lo, hi)
    | XMem m ->
      let a = State.ea st m in
      Memory.write64 st.mem a lo;
      Memory.write64 st.mem (a + 8) hi
  in
  let ps_map2 f (alo, ahi) (blo, bhi) =
    let do_half a b =
      let r0 = f (Fpconv.ps_get a 0) (Fpconv.ps_get b 0) in
      let r1 = f (Fpconv.ps_get a 1) (Fpconv.ps_get b 1) in
      Fpconv.ps_set (Fpconv.ps_set a 0 r0) 1 r1
    in
    (do_half alo blo, do_half ahi bhi)
  in
  let pd_map2 f (alo, ahi) (blo, bhi) =
    ( Fpconv.bits_of_f64 (f (Fpconv.f64_of_bits alo) (Fpconv.f64_of_bits blo)),
      Fpconv.bits_of_f64 (f (Fpconv.f64_of_bits ahi) (Fpconv.f64_of_bits bhi)) )
  in
  let apply_op op a b =
    match op with
    | SAdd -> a +. b
    | SSub -> a -. b
    | SMul -> a *. b
    | SDiv -> a /. b
    | SMin -> if a < b then a else b (* x86 MIN: returns b on NaN/equal *)
    | SMax -> if a > b then a else b
  in
  let apply_min_max_nan op a b =
    (* x86 MINSS/MAXSS semantics: if either is NaN, or equal, return src *)
    match op with
    | SMin -> if Float.is_nan a || Float.is_nan b then b else if a < b then a else b
    | SMax -> if Float.is_nan a || Float.is_nan b then b else if a > b then a else b
    | _ -> apply_op op a b
  in
  match x with
  | Movaps (dst, src) | Movups (dst, src) -> write_xmm_rm dst (read_xmm_rm src)
  | Movss (XM d, XM s) ->
    let dlo, dhi = State.get_xmm st d in
    let slo, _ = State.get_xmm st s in
    State.set_xmm st d (Word.to_i64 ~lo:(Word.lo32 slo) ~hi:(Word.hi32 dlo), dhi)
  | Movss (XM d, XMem m) ->
    let v = Memory.read32 st.mem (State.ea st m) in
    State.set_xmm st d (Word.to_i64 ~lo:v ~hi:0, 0L)
  | Movss (XMem m, XM s) ->
    let slo, _ = State.get_xmm st s in
    Memory.write32 st.mem (State.ea st m) (Word.lo32 slo)
  | Movss (XMem _, XMem _) -> raise (Fault.Fault Fault.Invalid_opcode)
  | Movsd_x (XM d, XM s) ->
    let _, dhi = State.get_xmm st d in
    let slo, _ = State.get_xmm st s in
    State.set_xmm st d (slo, dhi)
  | Movsd_x (XM d, XMem m) ->
    let v = Memory.read64 st.mem (State.ea st m) in
    State.set_xmm st d (v, 0L)
  | Movsd_x (XMem m, XM s) ->
    let slo, _ = State.get_xmm st s in
    Memory.write64 st.mem (State.ea st m) slo
  | Movsd_x (XMem _, XMem _) -> raise (Fault.Fault Fault.Invalid_opcode)
  | Sse_arith (op, fmt, d, src) -> (
    let b = read_xmm_rm src in
    let a = State.get_xmm st d in
    let f x y = apply_min_max_nan op x y in
    match fmt with
    | Packed_single -> State.set_xmm st d (ps_map2 f a b)
    | Packed_double -> State.set_xmm st d (pd_map2 f a b)
    | Scalar_single ->
      let alo, ahi = a and blo, _ = b in
      let r = f (Fpconv.ps_get alo 0) (Fpconv.ps_get blo 0) in
      State.set_xmm st d (Fpconv.ps_set alo 0 r, ahi)
    | Scalar_double ->
      let alo, ahi = a and blo, _ = b in
      let r = f (Fpconv.f64_of_bits alo) (Fpconv.f64_of_bits blo) in
      State.set_xmm st d (Fpconv.bits_of_f64 r, ahi)
    | Packed_int -> raise (Fault.Fault Fault.Invalid_opcode))
  | Sqrtps (d, src) ->
    let b = read_xmm_rm src in
    let sq _ y = Float.sqrt y in
    State.set_xmm st d (ps_map2 sq b b)
  | Andps (d, src) ->
    let blo, bhi = read_xmm_rm src in
    let alo, ahi = State.get_xmm st d in
    State.set_xmm st d (Int64.logand alo blo, Int64.logand ahi bhi)
  | Orps (d, src) ->
    let blo, bhi = read_xmm_rm src in
    let alo, ahi = State.get_xmm st d in
    State.set_xmm st d (Int64.logor alo blo, Int64.logor ahi bhi)
  | Xorps (d, src) ->
    let blo, bhi = read_xmm_rm src in
    let alo, ahi = State.get_xmm st d in
    State.set_xmm st d (Int64.logxor alo blo, Int64.logxor ahi bhi)
  | Paddd_x (d, src) ->
    let blo, bhi = read_xmm_rm src in
    let alo, ahi = State.get_xmm st d in
    State.set_xmm st d (mmx_lanes 4 Int64.add alo blo, mmx_lanes 4 Int64.add ahi bhi)
  | Psubd_x (d, src) ->
    let blo, bhi = read_xmm_rm src in
    let alo, ahi = State.get_xmm st d in
    State.set_xmm st d (mmx_lanes 4 Int64.sub alo blo, mmx_lanes 4 Int64.sub ahi bhi)
  | Ucomiss (d, src) ->
    let blo, _ = read_xmm_rm src in
    let alo, _ = State.get_xmm st d in
    let a = Fpconv.ps_get alo 0 and b = Fpconv.ps_get blo 0 in
    st.of_ <- false;
    st.af <- false;
    st.sf <- false;
    if Float.is_nan a || Float.is_nan b then begin
      st.zf <- true; st.pf <- true; st.cf <- true
    end
    else begin
      st.zf <- a = b;
      st.pf <- false;
      st.cf <- a < b
    end
  | Cvtsi2ss (d, src) ->
    let v = Word.signed32 (read_operand S32 st src) in
    let dlo, dhi = State.get_xmm st d in
    State.set_xmm st d (Fpconv.ps_set dlo 0 (Float.of_int v), dhi)
  | Cvttss2si (r, src) ->
    let blo, _ = read_xmm_rm src in
    State.set32 st r (Fpconv.cvtt32 (Fpconv.ps_get blo 0))
  | Cvtss2sd (d, src) ->
    let blo, _ = read_xmm_rm src in
    let _, dhi = State.get_xmm st d in
    State.set_xmm st d (Fpconv.bits_of_f64 (Fpconv.ps_get blo 0), dhi)
  | Cvtsd2ss (d, src) ->
    let blo, _ = read_xmm_rm src in
    let dlo, dhi = State.get_xmm st d in
    let r = Fpconv.f32_of_bits (Fpconv.bits_of_f32 (Fpconv.f64_of_bits blo)) in
    State.set_xmm st d (Fpconv.ps_set dlo 0 r, dhi)

(* ---- main dispatch --------------------------------------------------- *)

(* Executes the instruction body (EIP already known to advance by [len] on
   normal completion). Returns the event. *)
let exec (st : State.t) insn next_eip =
  let goto t =
    st.eip <- Word.mask32 t;
    Normal
  in
  let done_ () =
    st.eip <- next_eip;
    Normal
  in
  match insn with
  | Alu (op, size, dst, src) ->
    exec_alu st op size dst src;
    done_ ()
  | Test (size, a, b) ->
    let x = read_operand size st a and y = read_operand size st b in
    logic_flags st size (x land y);
    done_ ()
  | Mov (size, dst, src) ->
    write_operand size st dst (read_operand size st src);
    done_ ()
  | Movzx (ssize, r, src) ->
    State.set32 st r (read_operand ssize st src);
    done_ ()
  | Movsx (ssize, r, src) ->
    State.set32 st r (Word.mask32 (Word.signed (size_bytes ssize) (read_operand ssize st src)));
    done_ ()
  | Lea (r, m) ->
    State.set32 st r (State.ea st m);
    done_ ()
  | Shift (sh, size, dst, amt) ->
    exec_shift st sh size dst amt;
    done_ ()
  | Shld (dst, r, amt) ->
    exec_shld st dst r amt ~left:true;
    done_ ()
  | Shrd (dst, r, amt) ->
    exec_shld st dst r amt ~left:false;
    done_ ()
  | Inc (size, dst) ->
    let w = size_bytes size in
    let a = read_operand size st dst in
    let r = Word.mask w (a + 1) in
    write_operand size st dst r;
    st.of_ <- r = 1 lsl (Word.bits w - 1);
    st.af <- a land 0xF = 0xF;
    set_szp st w r;
    done_ ()
  | Dec (size, dst) ->
    let w = size_bytes size in
    let a = read_operand size st dst in
    let r = Word.mask w (a - 1) in
    write_operand size st dst r;
    st.of_ <- a = 1 lsl (Word.bits w - 1);
    st.af <- a land 0xF = 0;
    set_szp st w r;
    done_ ()
  | Neg (size, dst) ->
    let w = size_bytes size in
    let a = read_operand size st dst in
    let r = Word.mask w (-a) in
    write_operand size st dst r;
    st.cf <- a <> 0;
    st.of_ <- a = 1 lsl (Word.bits w - 1);
    st.af <- a land 0xF <> 0;
    set_szp st w r;
    done_ ()
  | Not (size, dst) ->
    let w = size_bytes size in
    let a = read_operand size st dst in
    write_operand size st dst (Word.mask w (lnot a));
    done_ ()
  | Imul_rr (r, src) ->
    let a = Word.signed32 (State.get32 st r) in
    let b = Word.signed32 (read_operand S32 st src) in
    let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
    let lo = Word.mask32 (Int64.to_int p) in
    State.set32 st r lo;
    let ovf = not (Int64.equal p (Int64.of_int (Word.signed32 lo))) in
    st.cf <- ovf;
    st.of_ <- ovf;
    done_ ()
  | Imul_rri (r, src, imm) ->
    let a = Word.signed32 (read_operand S32 st src) in
    let b = Word.signed32 imm in
    let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
    let lo = Word.mask32 (Int64.to_int p) in
    State.set32 st r lo;
    let ovf = not (Int64.equal p (Int64.of_int (Word.signed32 lo))) in
    st.cf <- ovf;
    st.of_ <- ovf;
    done_ ()
  | Mul1 (size, src) ->
    exec_mul st size src ~signed:false;
    done_ ()
  | Imul1 (size, src) ->
    exec_mul st size src ~signed:true;
    done_ ()
  | Div (size, src) ->
    exec_div st size src ~signed:false;
    done_ ()
  | Idiv (size, src) ->
    exec_div st size src ~signed:true;
    done_ ()
  | Cdq ->
    State.set32 st Edx (if Word.sign_bit 4 (State.get32 st Eax) then 0xFFFFFFFF else 0);
    done_ ()
  | Cwde ->
    State.set32 st Eax (Word.mask32 (Word.signed16 (State.get16 st Eax)));
    done_ ()
  | Xchg (size, dst, r) ->
    let a = read_operand size st dst in
    let b = State.get_reg size st r in
    write_operand size st dst b;
    State.set_reg size st r a;
    done_ ()
  | Push op ->
    let v = read_operand S32 st op in
    push32 st v;
    done_ ()
  | Pop op -> (
    match op with
    | R r ->
      let v = pop32 st in
      State.set32 st r v;
      done_ ()
    | M m ->
      (* address computed with the pre-pop ESP (model choice, documented) *)
      let a = State.ea st m in
      let v = Memory.read32 st.mem (State.get32 st Esp) in
      Memory.write32 st.mem a v;
      State.set32 st Esp (Word.mask32 (State.get32 st Esp + 4));
      done_ ()
    | I _ -> raise (Fault.Fault Fault.Invalid_opcode))
  | Pushfd ->
    push32 st (State.eflags_word st);
    done_ ()
  | Popfd ->
    let v = pop32 st in
    State.set_eflags_word st v;
    done_ ()
  | Jmp t -> goto t
  | Jcc (c, t) -> if State.eval_cond st c then goto t else done_ ()
  | Call t ->
    push32 st (Word.mask32 next_eip);
    goto t
  | Jmp_ind op -> goto (read_operand S32 st op)
  | Call_ind op ->
    let t = read_operand S32 st op in
    push32 st (Word.mask32 next_eip);
    goto t
  | Ret n ->
    let t = pop32 st in
    State.set32 st Esp (Word.mask32 (State.get32 st Esp + n));
    goto t
  | Setcc (c, dst) ->
    write_operand S8 st dst (if State.eval_cond st c then 1 else 0);
    done_ ()
  | Cmovcc (c, r, src) ->
    (* the source is always read (can fault), the write is conditional *)
    let v = read_operand S32 st src in
    if State.eval_cond st c then State.set32 st r v;
    done_ ()
  | Movs _ | Stos _ | Lods _ | Scas _ ->
    exec_string st insn;
    done_ ()
  | Cld ->
    st.df <- false;
    done_ ()
  | Std ->
    st.df <- true;
    done_ ()
  | Int_n n ->
    st.eip <- next_eip;
    Syscall n
  | Hlt -> raise (Fault.Fault Fault.Privileged)
  | Ud2 -> raise (Fault.Fault Fault.Invalid_opcode)
  | Nop -> done_ ()
  | Fp f ->
    exec_fp st f;
    done_ ()
  | Mmx x ->
    exec_mmx st x;
    done_ ()
  | Sse x ->
    exec_sse st x;
    done_ ()

(* Execute one instruction at EIP. On [Faulted] the architectural state is
   the precise state before the faulting instruction (modulo committed REP
   progress).

   The decode-cache fast path skips [Decode.decode] when the state's
   {!Icache} holds a generation-valid entry for EIP; a valid entry implies
   the source bytes and page protections are unchanged since a successful
   decode, so the fetch-permission check is subsumed by the generation
   compare. The hit path allocates nothing. *)
let step (st : State.t) =
  let eip = st.eip in
  let slot = Icache.find st.icache st.mem eip in
  if slot >= 0 then begin
    let insn = Icache.insn st.icache slot and len = Icache.len st.icache slot in
    match exec st insn (Word.mask32 (eip + len)) with
    | event -> event
    | exception Fault.Fault f -> Faulted f
  end
  else
    match Decode.decode st.mem eip with
    | exception Decode.Invalid _ -> Faulted Fault.Invalid_opcode
    | exception Fault.Fault f -> Faulted f
    | insn, len -> (
      Icache.fill st.icache st.mem eip insn len;
      match exec st insn (Word.mask32 (eip + len)) with
      | event -> event
      | exception Fault.Fault f -> Faulted f)

type stop =
  | Stop_syscall of int
  | Stop_fault of Fault.t
  | Stop_fuel

(* Run until a syscall, fault or fuel exhaustion; returns the stop reason
   and the number of instructions retired. *)
let run ?(fuel = max_int) (st : State.t) =
  let steps = ref 0 in
  let rec go () =
    if !steps >= fuel then Stop_fuel
    else
      match step st with
      | Normal ->
        incr steps;
        go ()
      | Syscall n ->
        incr steps;
        Stop_syscall n
      | Faulted f -> Stop_fault f
  in
  (go (), !steps)
