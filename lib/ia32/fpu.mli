(** x87 FPU stack model: eight physical registers addressed through the TOP
    pointer, TAG word, condition codes, and the MMX registers aliased onto
    the physical registers (any MMX op sets TOP=0 and all tags Valid; EMMS
    empties the stack — the exact behaviour the translator's MMX/FP aliasing
    speculation exploits).

    Empty-entry reads and full-entry pushes raise
    [Fault.Fault Fp_stack_fault]. *)

type tag = Valid | Empty

type t = {
  fval : float array;
  ival : int64 array;
  tags : tag array;
  mutable top : int;
  mutable c0 : bool;
  mutable c1 : bool;
  mutable c2 : bool;
  mutable c3 : bool;
}

val create : unit -> t

(** Physical register index of ST(i). *)
val phys : t -> int -> int

val tag_of : t -> int -> tag
val get : t -> int -> float
val set : t -> int -> float -> unit
val push : t -> float -> unit
val pop : t -> unit
val free : t -> int -> unit
val incstp : t -> unit
val decstp : t -> unit
val fxch : t -> int -> unit

(** FCOM-style compare of ST(0) with a value; sets C3/C2/C0. *)
val compare_with : t -> float -> unit

(** The FNSTSW AX status-word image (C0..C3 and TOP fields). *)
val status_word : t -> int

val tag_word : t -> int

val mmx_get : t -> int -> int64
val mmx_set : t -> int -> int64 -> unit
val emms : t -> unit

val copy : t -> t
val equal : t -> t -> bool

val logical_equal : t -> t -> bool
(** ST(i)-relative equality: ignores the physical TOP rotation, comparing
    the logical stack the guest sees. Two correct executions may differ in
    physical TOP after a TOS-speculation recovery rotated one register
    file; [logical_equal] treats them as equal where {!equal} would not. *)

val pp : Format.formatter -> t -> unit
