(** The translation cache: a growable array of bundles that the machine
    executes from. Block chaining patches branch targets in place,
    exactly like the real translator patches its branch-to-translator
    stubs into direct block-to-block branches. *)

type t

val create : unit -> t

val set_trace : t -> Obs.Trace.t option -> unit
(** Attach (or detach) a trace; the cache then emits [Chain_patch],
    [Tcache_invalidate] and [Tcache_evict] events. Recording only —
    cache behavior and cost accounting are unaffected. *)

val length : t -> int
(** Number of bundles; also the index the next {!append} returns. *)

val generation : t -> int
(** Mutation counter, bumped by {!append}, {!patch_slot},
    {!patch_dispatch}, {!invalidate_range} and {!clear}. Consumers that
    cache per-bundle derived structures (the pre-decode layer) key their
    validity on it. *)

val stamp : t -> int -> int
(** Generation at which bundle [i] last changed: always >= 1 in range,
    [-1] out of range. A consumer initialising cached stamps to 0 can
    validate any entry with one integer compare and never false-hit. *)

val set_capacity : t -> int option -> unit
(** Clamp the cache to a hard bundle capacity (or lift the clamp with
    [None]). The engine flushes wholesale once {!over_capacity} holds —
    the knob the chaos harness uses to force eviction storms. *)

val over_capacity : t -> bool
(** [true] when a capacity is set and the cache has reached it. *)

val clear : t -> unit
(** Drop every bundle (translation-cache flush, paper §2: the cache is a
    fixed-size resource flushed wholesale when exhausted). Callers must
    also discard every structure holding bundle indices. *)

val get : t -> int -> Bundle.t
(** @raise Invalid_argument on an out-of-range index. *)

val append : t -> Bundle.t -> int
(** Append one bundle and return its index. *)

val append_list : t -> Bundle.t list -> int
(** Append bundles in order and return the index of the first. *)

val patch_slot : t -> idx:int -> slot:int -> Insn.t -> unit
(** Overwrite one slot, used to chain a freshly translated block into its
    predecessor's exit branch. *)

val patch_dispatch : t -> idx:int -> target:int -> dest:int -> int
(** Rewrite every [Out (Dispatch target)] branch in bundle [idx] into a
    direct branch to bundle [dest]. Returns how many slots changed. *)

val invalidate_range : t -> start:int -> stop:int -> target:int -> unit
(** Overwrite bundles [start, stop) with dispatch-out exits to [target],
    so stale chained predecessors of an invalidated block (SMC,
    misalignment regeneration) fall back to the runtime. *)
