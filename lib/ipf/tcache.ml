(* The translation cache: a growable array of bundles that the machine
   executes from. Block chaining patches branch targets in place, exactly
   like the real translator patches its "branch to translator" stubs into
   direct block-to-block branches. *)

type t = {
  mutable bundles : Bundle.t array;
  mutable len : int;
  (* Optional hard bundle capacity. The paper's translation cache is a
     fixed-size resource flushed wholesale when it fills; the engine
     normally models that with a config limit, but the chaos harness can
     clamp the capacity here to force eviction storms. *)
  mutable capacity : int option;
  (* Generation counter, bumped on every mutation. [stamps.(i)] records
     the generation at which bundle [i] last changed, so a consumer that
     caches per-bundle derived structures (the pre-decode layer) can
     validate each entry with one integer compare. Stamps are >= 1; a
     consumer initialising its own stamps to 0 never false-hits. *)
  mutable generation : int;
  mutable stamps : int array;
  (* Observability: when set, structural cache events (chain patches,
     invalidations, flushes) are emitted here. Pure recording — never
     affects cache contents or cost accounting. *)
  mutable trace : Obs.Trace.t option;
}

let create () =
  {
    bundles = Array.make 1024 (Bundle.make []);
    len = 0;
    capacity = None;
    generation = 1;
    stamps = Array.make 1024 0;
    trace = None;
  }

let generation t = t.generation

(* Stamp of bundle [i]; -1 out of range, so it never matches a cached
   stamp (cached stamps are 0 = never-filled or a positive generation). *)
let stamp t i = if i < 0 || i >= t.len then -1 else t.stamps.(i)

let touch t i =
  t.generation <- t.generation + 1;
  t.stamps.(i) <- t.generation

let set_trace t tr = t.trace <- tr

let length t = t.len

let set_capacity t c = t.capacity <- c

let over_capacity t =
  match t.capacity with Some c -> t.len >= c | None -> false

(* Drop every bundle (translation-cache flush). Indices embedded in
   chained branches all dangle after this, so callers must also discard
   every block-cache structure that references them. *)
let clear t =
  (match t.trace with
  | Some tr when t.len > 0 ->
    Obs.Trace.emit tr (Obs.Trace.Tcache_evict { bundles = t.len })
  | _ -> ());
  t.generation <- t.generation + 1;
  t.len <- 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Tcache.get %d" i);
  t.bundles.(i)

(* Append a bundle, returning its index. *)
let append t b =
  if t.len = Array.length t.bundles then begin
    let bigger = Array.make (2 * t.len) b in
    Array.blit t.bundles 0 bigger 0 t.len;
    t.bundles <- bigger;
    let stamps = Array.make (2 * t.len) 0 in
    Array.blit t.stamps 0 stamps 0 t.len;
    t.stamps <- stamps
  end;
  t.bundles.(t.len) <- b;
  t.len <- t.len + 1;
  touch t (t.len - 1);
  t.len - 1

let append_list t bs =
  let start = t.len in
  List.iter (fun b -> ignore (append t b)) bs;
  start

(* Patch slot [slot] of bundle [idx] — used to chain a freshly translated
   block into its predecessor's exit branch. *)
let patch_slot t ~idx ~slot insn =
  let b = get t idx in
  b.Bundle.slots.(slot) <- insn;
  touch t idx;
  match t.trace with
  | Some tr -> Obs.Trace.emit tr (Obs.Trace.Chain_patch { bundle = idx; slot })
  | None -> ()

(* Find-and-patch every [Out (Dispatch target)] branch in bundle [idx] into
   a direct branch to [dest]. Returns how many slots were patched. *)
let patch_dispatch t ~idx ~target ~dest =
  let b = get t idx in
  let n = ref 0 in
  Array.iteri
    (fun i slot ->
      match slot.Insn.sem with
      | Insn.Br (Insn.Out (Insn.Dispatch a)) when a = target ->
        b.Bundle.slots.(i) <- { slot with Insn.sem = Insn.Br (Insn.To dest) };
        incr n
      | _ -> ())
    b.Bundle.slots;
  if !n > 0 then touch t idx;
  (match t.trace with
  | Some tr when !n > 0 ->
    Obs.Trace.emit tr (Obs.Trace.Chain_patch { bundle = idx; slot = -1 })
  | _ -> ());
  !n

(* Overwrite a whole block's bundles with exits (used when a block is
   invalidated by SMC or misalignment regeneration): every entry becomes a
   dispatch-out so stale chained predecessors fall back to the runtime. *)
let invalidate_range t ~start ~stop ~target =
  (match t.trace with
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Trace.Tcache_invalidate { start; len = stop - start })
  | None -> ());
  for idx = start to stop - 1 do
    let b = get t idx in
    b.Bundle.slots.(0) <- Insn.mk (Insn.Nop Insn.M);
    b.Bundle.slots.(1) <- Insn.mk (Insn.Nop Insn.I);
    b.Bundle.slots.(2) <- Insn.mk (Insn.Br (Insn.Out (Insn.Dispatch target)));
    b.Bundle.stops.(2) <- true;
    touch t idx
  done
