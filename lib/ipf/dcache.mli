(** Two-level set-associative LRU data-cache timing model.

    Only timing is modeled (contents live in guest memory); each access
    returns the extra stall cycles beyond the pipeline's L1 load latency.
    The second level is what makes the paper's mcf observation
    reproducible: the 32-bit-data IA-32 version of a pointer-chasing
    workload fits in cache where the LP64 native version does not. *)

type t

val create :
  ?l1_size:int ->
  ?l1_assoc:int ->
  ?l1_line:int ->
  ?l2_size:int ->
  ?l2_assoc:int ->
  ?l2_line:int ->
  ?l2_penalty:int ->
  ?mem_penalty:int ->
  unit ->
  t
(** Defaults: 16 KiB 4-way 64-byte L1; 256 KiB 8-way 128-byte L2;
    7-cycle L2 penalty; 80-cycle memory penalty. *)

val access : t -> int -> int
(** [access t addr] simulates one access and returns the extra stall
    cycles: 0 on an L1 hit, [l2_penalty] on an L2 hit, and
    [l2_penalty + mem_penalty] on a full miss. Fills lines on misses. *)

type stats = {
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
}

val stats : t -> stats
val reset_stats : t -> unit

type checkpoint

val checkpoint : t -> checkpoint
(** Deep copy of the full timing state (tags, LRU ranks, counters). *)

val restore : t -> checkpoint -> unit
(** Blit a checkpoint back in place — snapshot revert uses this so a
    rerun sees bit-identical stall timing. *)
