(* Pre-decoded, direct-threaded execution core (DESIGN.md §10).

   [Machine.run] re-matches nested [Insn.t] variants, rebuilds read/write
   resource lists and walks hashtables for every slot it executes. This
   module lowers each tcache bundle ONCE into a flat micro-op array: the
   semantic action becomes a preallocated closure with operand indices
   resolved, and the qualifying predicate, issue weight, latency class,
   read/write resource sets and stop bit are all precomputed. The
   group-costing write set becomes an epoch-marked int array instead of
   a polymorphic hashtable, so the steady-state step loop allocates
   nothing beyond what Int64 arithmetic itself boxes.

   Lowered bundles are cached per tcache stamp: every tcache mutation
   ([append], [patch_slot], [patch_dispatch], [invalidate_range],
   [clear]) bumps the generation and stamps the touched index, so one
   integer compare per slot validates the cache — chain patching and SMC
   invalidation invalidate exactly the bundles they rewrite.

   Correctness bar: simulated cycles, bucket attribution, every stats
   counter and the observable fault/exit behaviour are bit-identical to
   [Machine.run] — the determinism suite (test_exec.ml) and the engine's
   --no-predecode escape hatch exist to enforce and debug exactly that. *)

module M = Machine

(* Resource ids, flattened: GR 0-127, FR 128-255, PR 256-319, BR 320-327,
   memory 328. *)
let nres = 329

let enc = function
  | Insn.Rgr r -> r
  | Insn.Rfr f -> 128 + f
  | Insn.Rpr p -> 256 + p
  | Insn.Rbr b -> 320 + b
  | Insn.Rmem -> 328

(* One pre-decoded slot. [run] executes the semantic action and encodes
   control flow as an int — no [flow] variant to allocate:
   -1 = fall through, -2 = leave the cache ([exit_] has the reason),
   n >= 0 = jump to bundle n. *)
type uop = {
  run : unit -> int;
  qp : int; (* -1 = always enabled *)
  fast_nop : bool;
      (* unpredicated nop: no reads/writes/retire/stall — the step loop
         only adds its slot weight and advances *)
  nonnop : bool; (* retires a slot *)
  spec_check : bool; (* Br (Out (Spec_fail _)): counted even if disabled *)
  weight : int;
  latency : int;
  is_br_ind : bool;
  reads : int array; (* encoded resources, qualifying predicate included *)
  writes : int array;
  exit_ : Insn.exit_reason option; (* reason when [run] returns -2 *)
}

type dbundle = { uops : uop array; stops : bool array }

type t = {
  m : M.t;
  tc : Tcache.t;
  (* per-bundle lowering cache, validated by tcache stamp *)
  mutable dec : dbundle array;
  mutable dstamp : int array;
  (* group-costing scratch, replacing Machine.run's per-call hashtable:
     epoch-marked membership + latency per resource, plus the write list
     of the open group *)
  wmark : int array;
  wlat : int array;
  wlist : int array;
  mutable wn : int;
  mutable wepoch : int;
  mutable gweight : int;
  mutable gsrcs : int;
  mutable gextra : int;
  mutable stall_before : int;
}

let empty_dbundle = { uops = [||]; stops = [||] }

let create m =
  {
    m;
    tc = m.M.tcache;
    dec = Array.make 1024 empty_dbundle;
    dstamp = Array.make 1024 0;
    wmark = Array.make nres 0;
    wlat = Array.make nres 0;
    wlist = Array.make nres 0;
    wn = 0;
    wepoch = 1;
    gweight = 0;
    gsrcs = 0;
    gextra = 0;
    stall_before = 0;
  }

(* ---- lowering ---------------------------------------------------------- *)

(* Top-level so per-step calls don't build closures. *)
let rec nat_scan m grs i =
  i < Array.length grs
  && (M.get_nat m (Array.unsafe_get grs i) || nat_scan m grs (i + 1))

let rec popcnt64 acc v =
  if Int64.equal v 0L then acc
  else
    popcnt64
      (acc + Int64.to_int (Int64.logand v 1L))
      (Int64.shift_right_logical v 1)

(* signed / unsigned high 64 bits of a 64x64 product *)
let hi_mul x y =
  let open Int64 in
  let xl = logand x 0xFFFFFFFFL and xh = shift_right x 32 in
  let yl = logand y 0xFFFFFFFFL and yh = shift_right y 32 in
  let ll = mul xl yl in
  let lh = mul xl yh and hl = mul xh yl in
  let hh = mul xh yh in
  let mid = add (add lh hl) (shift_right_logical ll 32) in
  add hh (shift_right mid 32)

let hi_mul_u x y =
  let open Int64 in
  let xl = logand x 0xFFFFFFFFL and xh = shift_right_logical x 32 in
  let yl = logand y 0xFFFFFFFFL and yh = shift_right_logical y 32 in
  let ll = mul xl yl in
  let lh = mul xl yh and hl = mul xh yl in
  let carry =
    shift_right_logical
      (add
         (add (logand lh 0xFFFFFFFFL) (logand hl 0xFFFFFFFFL))
         (shift_right_logical ll 32))
      32
  in
  add
    (add (mul xh yh)
       (add (shift_right_logical lh 32) (shift_right_logical hl 32)))
    carry

(* Compile one instruction's semantic action into a closure over resolved
   operands. Mirrors [Machine.exec_sem] case by case; any behavioural
   difference here is a bug the determinism suite must catch. *)
let compile_insn m (insn : Insn.t) =
  let open Insn in
  let g r = M.get m r in
  let gn d v = M.set m d v in
  let gf f = M.getf m f in
  let sf d v = M.setf m d v in
  let sp p v = M.setp m p v in
  let stats = m.M.stats in
  let sx bytes v =
    let sh = 64 - (8 * bytes) in
    Int64.shift_right (Int64.shift_left v sh) sh
  in
  let zx bytes v = Int64.logand v (M.mask_of_len (8 * bytes)) in
  (* GR sources, for computational NaT propagation (= nat_of_reads) *)
  let grs =
    List.filter_map (function Rgr r -> Some r | _ -> None) (reads insn)
    |> Array.of_list
  in
  let alu d f () =
    (if nat_scan m grs 0 then M.set_nat m d else gn d (f ()));
    -1
  in
  let cmp_commit ct p1 p2 r =
    match ct with
    | Cnorm | Cunc ->
      sp p1 r;
      sp p2 (not r)
    | Cand_ ->
      if not r then begin
        sp p1 false;
        sp p2 false
      end
    | Cor_ ->
      if r then begin
        sp p1 true;
        sp p2 true
      end
  in
  let taken t =
    stats.M.taken_branches <- stats.M.taken_branches + 1;
    match t with To n -> n | Out _ -> -2
  in
  let dstall addr =
    stats.M.dcache_stall <- stats.M.dcache_stall + M.dcache_access m addr
  in
  match insn.sem with
  | Add (d, a, b) -> alu d (fun () -> Int64.add (g a) (g b))
  | Sub (d, a, b) -> alu d (fun () -> Int64.sub (g a) (g b))
  | Addi (d, i, a) ->
    let i = Int64.of_int i in
    alu d (fun () -> Int64.add i (g a))
  | Subi (d, i, a) ->
    let i = Int64.of_int i in
    alu d (fun () -> Int64.sub i (g a))
  | And (d, a, b) -> alu d (fun () -> Int64.logand (g a) (g b))
  | Or (d, a, b) -> alu d (fun () -> Int64.logor (g a) (g b))
  | Xor (d, a, b) -> alu d (fun () -> Int64.logxor (g a) (g b))
  | Andcm (d, a, b) -> alu d (fun () -> Int64.logand (g a) (Int64.lognot (g b)))
  | Andi (d, i, a) ->
    let i = Int64.of_int i in
    alu d (fun () -> Int64.logand i (g a))
  | Ori (d, i, a) ->
    let i = Int64.of_int i in
    alu d (fun () -> Int64.logor i (g a))
  | Xori (d, i, a) ->
    let i = Int64.of_int i in
    alu d (fun () -> Int64.logxor i (g a))
  | Shl (d, a, b) ->
    alu d (fun () ->
        let c = Int64.to_int (Int64.logand (g b) 127L) in
        if c >= 64 then 0L else Int64.shift_left (g a) c)
  | Shli (d, a, n) ->
    alu d (fun () -> if n >= 64 then 0L else Int64.shift_left (g a) n)
  | Shru (d, a, b) ->
    alu d (fun () ->
        let c = Int64.to_int (Int64.logand (g b) 127L) in
        if c >= 64 then 0L else Int64.shift_right_logical (g a) c)
  | Shrui (d, a, n) ->
    alu d (fun () -> if n >= 64 then 0L else Int64.shift_right_logical (g a) n)
  | Shrs (d, a, b) ->
    alu d (fun () ->
        let c = min 63 (Int64.to_int (Int64.logand (g b) 127L)) in
        Int64.shift_right (g a) c)
  | Shrsi (d, a, n) ->
    let n = min 63 n in
    alu d (fun () -> Int64.shift_right (g a) n)
  | Dep (d, s, base, pos, len) ->
    alu d (fun () ->
        let field = Int64.logand (g s) (M.mask_of_len len) in
        let cleared =
          Int64.logand (g base)
            (Int64.lognot (Int64.shift_left (M.mask_of_len len) pos))
        in
        Int64.logor cleared (Int64.shift_left field pos))
  | Depz (d, s, pos, len) ->
    alu d (fun () ->
        Int64.shift_left (Int64.logand (g s) (M.mask_of_len len)) pos)
  | Extr (d, s, pos, len) ->
    alu d (fun () ->
        Int64.shift_right (Int64.shift_left (g s) (64 - pos - len)) (64 - len))
  | Extru (d, s, pos, len) ->
    alu d (fun () ->
        Int64.logand (Int64.shift_right_logical (g s) pos) (M.mask_of_len len))
  | Sxt (d, s, n) -> alu d (fun () -> sx n (g s))
  | Zxt (d, s, n) -> alu d (fun () -> zx n (g s))
  | Mov (d, s) ->
    (* moves propagate NaT as a value move (like mov through add r0) *)
    fun () ->
      (if M.get_nat m s then M.set_nat m d else gn d (g s));
      -1
  | Movi (d, v) ->
    fun () ->
      gn d v;
      -1
  | Mix (d, a, b) ->
    alu d (fun () ->
        Int64.logor
          (Int64.shift_left (Int64.logand (g a) 0xFFFFFFFFL) 32)
          (Int64.logand (g b) 0xFFFFFFFFL))
  | Popcnt (d, s) -> alu d (fun () -> Int64.of_int (popcnt64 0 (g s)))
  | Xma (d, a, b, c) | Xmau (d, a, b, c) ->
    alu d (fun () -> Int64.add (Int64.mul (g a) (g b)) (g c))
  | Xmah (d, a, b, c) -> alu d (fun () -> Int64.add (hi_mul (g a) (g b)) (g c))
  | Xmahu (d, a, b, c) ->
    alu d (fun () -> Int64.add (hi_mul_u (g a) (g b)) (g c))
  | Divs (d, a, b) ->
    alu d (fun () -> if Int64.equal (g b) 0L then 0L else Int64.div (g a) (g b))
  | Divu (d, a, b) ->
    alu d (fun () ->
        if Int64.equal (g b) 0L then 0L else Int64.unsigned_div (g a) (g b))
  | Rems (d, a, b) ->
    alu d (fun () -> if Int64.equal (g b) 0L then 0L else Int64.rem (g a) (g b))
  | Remu (d, a, b) ->
    alu d (fun () ->
        if Int64.equal (g b) 0L then 0L else Int64.unsigned_rem (g a) (g b))
  | Padd (w, d, a, b) ->
    alu d (fun () -> Ia32.Word.lanes_map2 w Int64.add (g a) (g b))
  | Psub (w, d, a, b) ->
    alu d (fun () -> Ia32.Word.lanes_map2 w Int64.sub (g a) (g b))
  | Pmull (w, d, a, b) ->
    alu d (fun () -> Ia32.Word.lanes_map2 w Int64.mul (g a) (g b))
  | Pcmpeq (w, d, a, b) ->
    alu d (fun () ->
        Ia32.Word.lanes_map2 w
          (fun x y -> if Int64.equal x y then -1L else 0L)
          (g a) (g b))
  | Pshli (w, d, a, n) ->
    alu d (fun () ->
        Ia32.Word.lanes_map2 w
          (fun x _ -> if n >= w * 8 then 0L else Int64.shift_left x n)
          (g a) 0L)
  | Pshri (w, d, a, n) ->
    alu d (fun () ->
        Ia32.Word.lanes_map2 w
          (fun x _ -> if n >= w * 8 then 0L else Int64.shift_right_logical x n)
          (g a) 0L)
  | Cmp (rel, ct, p1, p2, a, b) ->
    fun () ->
      (if M.get_nat m a || M.get_nat m b then begin
         (* NaT source: both targets cleared (IPF behaviour) *)
         sp p1 false;
         sp p2 false
       end
       else cmp_commit ct p1 p2 (M.eval_cmp rel (g a) (g b)));
      -1
  | Cmpi (rel, ct, p1, p2, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if M.get_nat m a then begin
         sp p1 false;
         sp p2 false
       end
       else cmp_commit ct p1 p2 (M.eval_cmp rel i (g a)));
      -1
  | Tbit (p1, p2, a, pos) ->
    fun () ->
      (if M.get_nat m a then begin
         sp p1 false;
         sp p2 false
       end
       else begin
         let bit =
           Int64.logand (Int64.shift_right_logical (g a) pos) 1L
           |> Int64.equal 1L
         in
         sp p1 bit;
         sp p2 (not bit)
       end);
      -1
  | Setp (p, v) ->
    fun () ->
      sp p v;
      -1
  | Movpr (d, mask) ->
    fun () ->
      let v = ref 0L in
      for p = 63 downto 0 do
        v := Int64.shift_left !v 1;
        if M.getp m p then v := Int64.logor !v 1L
      done;
      gn d (Int64.logand !v mask);
      -1
  | Prmov src ->
    fun () ->
      let v = g src in
      for p = 1 to 63 do
        sp p
          (Int64.logand (Int64.shift_right_logical v p) 1L |> Int64.equal 1L)
      done;
      -1
  | Ld (size, spec, d, a) ->
    let is_spec = spec = Ld_s || spec = Ld_sa in
    let is_adv = spec = Ld_a || spec = Ld_sa in
    fun () ->
      if M.get_nat m a then
        if is_spec then begin
          M.set_nat m d;
          (* a stale ALAT entry for d must not let a later chk.a pass *)
          Hashtbl.remove m.M.alat d;
          -1
        end
        else raise (M.Machine_fault (M.F_nat, 0, size, false))
      else begin
        let addr = M.addr_of (g a) in
        stats.M.loads <- stats.M.loads + 1;
        match M.do_load m ~addr ~size with
        | v ->
          let v = if size = 8 then v else zx size v in
          gn d v;
          dstall addr;
          if is_adv then Hashtbl.replace m.M.alat d (addr, size);
          -1
        | exception M.Machine_fault (k, fa, fs, st) ->
          if is_spec then begin
            M.set_nat m d;
            Hashtbl.remove m.M.alat d;
            -1
          end
          else raise (M.Machine_fault (k, fa, fs, st))
      end
  | St (size, a, v) ->
    fun () ->
      if M.get_nat m a || M.get_nat m v then
        raise (M.Machine_fault (M.F_nat, 0, size, true));
      let addr = M.addr_of (g a) in
      stats.M.stores <- stats.M.stores + 1;
      M.do_store m ~addr ~size (g v);
      dstall addr;
      -1
  | Chk_s (r, t) -> fun () -> if M.get_nat m r then taken t else -1
  | Chk_a (r, t) -> fun () -> if Hashtbl.mem m.M.alat r then -1 else taken t
  | Invala ->
    fun () ->
      Hashtbl.reset m.M.alat;
      -1
  | Ldf (size, d, a) ->
    fun () ->
      if M.get_nat m a then raise (M.Machine_fault (M.F_nat, 0, size, false))
      else begin
        let addr = M.addr_of (g a) in
        stats.M.loads <- stats.M.loads + 1;
        let bits = M.do_load m ~addr ~size in
        let v =
          if size = 4 then
            Ia32.Fpconv.f32_of_bits
              (Int64.to_int (Int64.logand bits 0xFFFFFFFFL))
          else Ia32.Fpconv.f64_of_bits bits
        in
        sf d v;
        dstall addr;
        -1
      end
  | Stf (size, a, v) ->
    fun () ->
      if M.get_nat m a then raise (M.Machine_fault (M.F_nat, 0, size, true));
      let addr = M.addr_of (g a) in
      stats.M.stores <- stats.M.stores + 1;
      let bits =
        if size = 4 then Int64.of_int (Ia32.Fpconv.bits_of_f32 (gf v))
        else Ia32.Fpconv.bits_of_f64 (gf v)
      in
      M.do_store m ~addr ~size bits;
      dstall addr;
      -1
  | Fadd (d, a, b) ->
    fun () ->
      sf d (gf a +. gf b);
      -1
  | Fsub (d, a, b) ->
    fun () ->
      sf d (gf a -. gf b);
      -1
  | Fmul (d, a, b) ->
    fun () ->
      sf d (gf a *. gf b);
      -1
  | Fma (d, a, b, c) ->
    fun () ->
      sf d ((gf a *. gf b) +. gf c);
      -1
  | Fdiv (d, a, b) ->
    fun () ->
      sf d (gf a /. gf b);
      -1
  | Fsqrt (d, a) ->
    fun () ->
      sf d (Float.sqrt (gf a));
      -1
  | Fneg (d, a) ->
    fun () ->
      sf d (-.gf a);
      -1
  | Fabs_ (d, a) ->
    fun () ->
      sf d (Float.abs (gf a));
      -1
  | Fmov (d, a) ->
    fun () ->
      sf d (gf a);
      -1
  | Frint (d, a) ->
    fun () ->
      sf d (Ia32.Fpconv.rint (gf a));
      -1
  | Fmin (d, a, b) ->
    fun () ->
      let x = gf a and y = gf b in
      sf d
        (if Float.is_nan x || Float.is_nan y then y
         else if x < y then x
         else y);
      -1
  | Fmax (d, a, b) ->
    fun () ->
      let x = gf a and y = gf b in
      sf d
        (if Float.is_nan x || Float.is_nan y then y
         else if x > y then x
         else y);
      -1
  | Fcmp (rel, p1, p2, a, b) ->
    fun () ->
      let x = gf a and y = gf b in
      let r =
        match rel with
        | Feq -> x = y
        | Flt -> x < y
        | Fle -> x <= y
        | Funord -> Float.is_nan x || Float.is_nan y
      in
      sp p1 r;
      sp p2 (not r);
      -1
  | Fcvt_xf (d, a) ->
    fun () ->
      sf d (Int64.to_float (g a));
      -1
  | Fcvt_fx (d, a) ->
    fun () ->
      gn d (Int64.of_float (Ia32.Fpconv.rint (gf a)));
      -1
  | Fcvt_fxt (d, a) ->
    fun () ->
      gn d (Int64.of_float (Float.trunc (gf a)));
      -1
  | Fcvt_32 (d, a) ->
    fun () ->
      sf d (Ia32.Fpconv.f32_of_bits (Ia32.Fpconv.bits_of_f32 (gf a)));
      -1
  | Getf_s (d, a) ->
    fun () ->
      gn d (Int64.of_int (Ia32.Fpconv.bits_of_f32 (gf a)));
      -1
  | Getf_d (d, a) ->
    fun () ->
      gn d (Ia32.Fpconv.bits_of_f64 (gf a));
      -1
  | Setf_s (d, a) ->
    fun () ->
      if M.get_nat m a then raise (M.Machine_fault (M.F_nat, 0, 4, false));
      sf d
        (Ia32.Fpconv.f32_of_bits
           (Int64.to_int (Int64.logand (g a) 0xFFFFFFFFL)));
      -1
  | Setf_d (d, a) ->
    fun () ->
      if M.get_nat m a then raise (M.Machine_fault (M.F_nat, 0, 8, false));
      sf d (Ia32.Fpconv.f64_of_bits (g a));
      -1
  | Br t -> fun () -> taken t
  | Br_ind b ->
    fun () ->
      stats.M.taken_branches <- stats.M.taken_branches + 1;
      m.M.br.(b)
  | Mov_to_br (b, a) ->
    fun () ->
      m.M.br.(b) <- Int64.to_int (g a);
      -1
  | Mov_from_br (d, b) ->
    fun () ->
      gn d (Int64.of_int m.M.br.(b));
      -1
  | Nop _ -> fun () -> -1

let compile_uop m (insn : Insn.t) =
  {
    run = compile_insn m insn;
    qp = (match insn.Insn.qp with Some p -> p | None -> -1);
    fast_nop =
      (match (insn.Insn.sem, insn.Insn.qp) with
      | Insn.Nop _, None -> true
      | _ -> false);
    nonnop = (match insn.Insn.sem with Insn.Nop _ -> false | _ -> true);
    spec_check =
      (match insn.Insn.sem with
      | Insn.Br (Insn.Out (Insn.Spec_fail _)) -> true
      | _ -> false);
    weight = M.slot_weight insn;
    latency = M.latency_of m insn;
    is_br_ind = (match insn.Insn.sem with Insn.Br_ind _ -> true | _ -> false);
    reads = Array.of_list (List.map enc (Insn.reads insn));
    writes = Array.of_list (List.map enc (Insn.writes insn));
    exit_ =
      (match insn.Insn.sem with
      | Insn.Br (Insn.Out r)
      | Insn.Chk_s (_, Insn.Out r)
      | Insn.Chk_a (_, Insn.Out r) ->
        Some r
      | _ -> None);
  }

let compile_bundle m (b : Bundle.t) =
  {
    uops = Array.map (compile_uop m) b.Bundle.slots;
    stops = Array.copy b.Bundle.stops;
  }

let ensure t i =
  let n = Array.length t.dec in
  if i >= n then begin
    let n' = max (2 * n) (i + 1) in
    let dec = Array.make n' empty_dbundle in
    Array.blit t.dec 0 dec 0 n;
    t.dec <- dec;
    let ds = Array.make n' 0 in
    Array.blit t.dstamp 0 ds 0 n;
    t.dstamp <- ds
  end

(* Validated lookup: one stamp compare on the hit path; a miss lowers the
   bundle and records the stamp (out-of-range indices raise through
   [Tcache.get], exactly like the interpretive loop). *)
let dbundle_at t i =
  let s = Tcache.stamp t.tc i in
  if i < Array.length t.dstamp && Array.unsafe_get t.dstamp i = s then
    Array.unsafe_get t.dec i
  else begin
    let b = Tcache.get t.tc i in
    ensure t i;
    let db = compile_bundle t.m b in
    t.dec.(i) <- db;
    t.dstamp.(i) <- s;
    db
  end

(* ---- run loop ---------------------------------------------------------- *)

let flush_group t =
  if t.gweight > 0 then begin
    let issue =
      M.close_group t.m ~srcs_ready:t.gsrcs ~weight:t.gweight ~extra:t.gextra
    in
    let m = t.m in
    for i = 0 to t.wn - 1 do
      let rid = t.wlist.(i) in
      if rid < 128 then m.M.ready.(rid) <- issue + t.wlat.(rid)
      else if rid < 256 then m.M.fready.(rid - 128) <- issue + t.wlat.(rid)
    done;
    t.wn <- 0;
    t.wepoch <- t.wepoch + 1;
    t.gweight <- 0;
    t.gsrcs <- 0;
    t.gextra <- 0
  end

let advance_slot t stop_after =
  let m = t.m in
  if m.M.slot = 2 then begin
    m.M.ip <- m.M.ip + 1;
    m.M.slot <- 0
  end
  else m.M.slot <- m.M.slot + 1;
  if stop_after then flush_group t

let rec raw_scan t reads i =
  i < Array.length reads
  && (t.wmark.(Array.unsafe_get reads i) = t.wepoch || raw_scan t reads (i + 1))

let account t u =
  (* intra-group RAW: conservatively split the group *)
  if raw_scan t u.reads 0 then flush_group t;
  let m = t.m in
  t.stall_before <- m.M.stats.M.dcache_stall;
  let reads = u.reads in
  for i = 0 to Array.length reads - 1 do
    let rid = Array.unsafe_get reads i in
    if rid < 128 then begin
      if m.M.ready.(rid) > t.gsrcs then t.gsrcs <- m.M.ready.(rid)
    end
    else if rid < 256 then
      if m.M.fready.(rid - 128) > t.gsrcs then t.gsrcs <- m.M.fready.(rid - 128)
  done;
  t.gweight <- t.gweight + u.weight

let commit_timing t u =
  (* dcache stalls observed during exec extend the group *)
  t.gextra <- t.gextra + (t.m.M.stats.M.dcache_stall - t.stall_before);
  let writes = u.writes in
  for i = 0 to Array.length writes - 1 do
    let rid = Array.unsafe_get writes i in
    if t.wmark.(rid) <> t.wepoch then begin
      t.wmark.(rid) <- t.wepoch;
      t.wlist.(t.wn) <- rid;
      t.wn <- t.wn + 1
    end;
    t.wlat.(rid) <- u.latency
  done

let run ?(fuel = max_int) t =
  let m = t.m in
  let stats = m.M.stats in
  (* fresh group state, mirroring Machine.run's per-call locals *)
  t.wn <- 0;
  t.wepoch <- t.wepoch + 1;
  t.gweight <- 0;
  t.gsrcs <- 0;
  t.gextra <- 0;
  let fuel_left = ref fuel in
  let watch = m.M.watch in
  let rec step () =
    if !fuel_left <= 0 then begin
      flush_group t;
      M.Fuel
    end
    else begin
      let db = dbundle_at t m.M.ip in
      (match watch with
      | Some (b, regs) when m.M.slot = 0 && b = m.M.ip ->
        Printf.eprintf "[watch ip=%d" m.M.ip;
        List.iter
          (fun r ->
            if r < 200 then Printf.eprintf " r%d=%Lx" r (M.get m r)
            else Printf.eprintf " p%d=%b" (r - 200) (M.getp m (r - 200)))
          regs;
        Printf.eprintf "]\n%!"
      | _ -> ());
      let u = Array.unsafe_get db.uops m.M.slot in
      let stop_after = Array.unsafe_get db.stops m.M.slot in
      decr fuel_left;
      if u.fast_nop then begin
        (* a nop reads and writes nothing, cannot stall, does not retire
           and has no predicate; only its slot weight reaches the group *)
        t.gweight <- t.gweight + u.weight;
        advance_slot t stop_after;
        step ()
      end
      else begin
      if u.spec_check then stats.M.spec_checks <- stats.M.spec_checks + 1;
      let enabled = u.qp < 0 || M.getp m u.qp in
      account t u;
      if not enabled then begin
        commit_timing t u;
        if u.nonnop then stats.M.slots_retired <- stats.M.slots_retired + 1;
        advance_slot t stop_after;
        step ()
      end
      else
        match u.run () with
        | -1 ->
          commit_timing t u;
          if u.nonnop then stats.M.slots_retired <- stats.M.slots_retired + 1;
          advance_slot t stop_after;
          step ()
        | -2 ->
          commit_timing t u;
          stats.M.slots_retired <- stats.M.slots_retired + 1;
          flush_group t;
          m.M.last_exit <- (m.M.ip, m.M.slot);
          (* advance past the exit so a resume continues after it *)
          advance_slot t stop_after;
          M.Exited (match u.exit_ with Some r -> r | None -> assert false)
        | n ->
          commit_timing t u;
          stats.M.slots_retired <- stats.M.slots_retired + 1;
          flush_group t;
          M.charge m m.M.cost.Cost.taken_branch_penalty;
          if u.is_br_ind then M.charge m m.M.cost.Cost.indirect_branch_penalty;
          m.M.ip <- n;
          m.M.slot <- 0;
          step ()
      end
    end
  in
  (* one trap frame for the whole run instead of one per step; [m.ip]/
     [m.slot] still point at the faulting slot when the raise unwinds *)
  try step ()
  with M.Machine_fault (kind, addr, size, store) ->
    flush_group t;
    M.Faulted { M.kind; addr; size; store; ip = m.M.ip; slot = m.M.slot }

(* Diagnostics for tests: how many bundles currently hold a valid lowered
   image. *)
let cached_bundles t =
  let n = ref 0 in
  for i = 0 to Array.length t.dstamp - 1 do
    if t.dstamp.(i) <> 0 then incr n
  done;
  !n
