(* Pre-decoded, direct-threaded execution core (DESIGN.md §10).

   [Machine.run] re-matches nested [Insn.t] variants, rebuilds read/write
   resource lists and walks hashtables for every slot it executes. This
   module lowers each tcache bundle ONCE into a flat micro-op array: the
   semantic action becomes a preallocated closure with operand indices
   resolved, and the qualifying predicate, issue weight, latency class,
   read/write resource sets and stop bit are all precomputed. The
   group-costing write set becomes an epoch-marked int array instead of
   a polymorphic hashtable, so the steady-state step loop allocates
   nothing beyond what Int64 arithmetic itself boxes.

   Lowered bundles are cached per tcache stamp: every tcache mutation
   ([append], [patch_slot], [patch_dispatch], [invalidate_range],
   [clear]) bumps the generation and stamps the touched index, so one
   integer compare per slot validates the cache — chain patching and SMC
   invalidation invalidate exactly the bundles they rewrite.

   Correctness bar: simulated cycles, bucket attribution, every stats
   counter and the observable fault/exit behaviour are bit-identical to
   [Machine.run] — the determinism suite (test_exec.ml) and the engine's
   --no-predecode escape hatch exist to enforce and debug exactly that. *)

module M = Machine

(* Resource ids, flattened: GR 0-127, FR 128-255, PR 256-319, BR 320-327,
   memory 328. *)
let nres = 329

let enc = function
  | Insn.Rgr r -> r
  | Insn.Rfr f -> 128 + f
  | Insn.Rpr p -> 256 + p
  | Insn.Rbr b -> 320 + b
  | Insn.Rmem -> 328

(* A fused macro-op overlaid on the FIRST slot of a recognized pair:
   [frun] executes and accounts both halves with one step-loop dispatch,
   replaying the exact per-uop sequence (account / run / commit / retire /
   advance, including the intra-pair RAW split, the padding nops between
   the halves and every stop-bit flush) so every simulated observable —
   cycles included — is bit-identical to unfused execution. Returns
   0 = keep stepping (falls, jumps and the second half's branch penalties
   are already applied), 1 = left the cache with [fexit].

   A pair may span a bundle boundary (generated code rarely packs a
   dependent pair into one bundle — stops end bundles): [fnext]/[fstamp]
   then pin the partner bundle's tcache stamp, and the step loop refuses
   the fused path the moment the partner is rewritten (chain patching,
   SMC invalidation), falling back to slot-by-slot dispatch. *)
type fused = {
  frun : unit -> int;
  fexit : Insn.exit_reason option;
  fneed : int; (* fuel units the pair consumes (1 per slot spanned) *)
  fnext : int; (* partner bundle index if the pair crosses bundles, -1 *)
  fstamp : int; (* partner's stamp at fuse time *)
}

(* One pre-decoded slot. [run] executes the semantic action and encodes
   control flow as an int — no [flow] variant to allocate:
   -1 = fall through, -2 = leave the cache ([exit_] has the reason),
   n >= 0 = jump to bundle n. *)
type uop = {
  run : unit -> int;
  qp : int; (* -1 = always enabled *)
  fast_nop : bool;
      (* unpredicated nop: no reads/writes/retire/stall — the step loop
         only adds its slot weight and advances *)
  nonnop : bool; (* retires a slot *)
  spec_check : bool; (* Br (Out (Spec_fail _)): counted even if disabled *)
  weight : int;
  latency : int;
  is_br_ind : bool;
  reads : int array; (* encoded resources, qualifying predicate included *)
  reads_rf : int array;
      (* reads restricted to GR/FR ids (< 256): the only resources with
         ready cycles, so the source-scan skips predicates/memory *)
  writes : int array;
  exit_ : Insn.exit_reason option; (* reason when [run] returns -2 *)
  mutable fuse : fused option;
      (* set when this slot heads a fusable pair *)
  mutable fuse_done : bool;
      (* pairing already examined (or fusion off): skip re-examination *)
}

type dbundle = {
  uops : uop array;
  stops : bool array;
  nrun : int array;
      (* consecutive fast-nop slots starting at each slot — the step loop
         retires a whole padding run in one sweep *)
}

type t = {
  m : M.t;
  tc : Tcache.t;
  (* per-bundle lowering cache, validated by tcache stamp *)
  mutable dec : dbundle array;
  mutable dstamp : int array;
  (* group-costing scratch, replacing Machine.run's per-call hashtable:
     epoch-marked membership + latency per resource, plus the write list
     of the open group *)
  wmark : int array;
  wlat : int array;
  wlist : int array;
  mutable wn : int;
  mutable wepoch : int;
  mutable gweight : int;
  mutable gsrcs : int;
  mutable gextra : int;
  mutable stall_before : int;
  (* macro-op fusion (Config.enable_fusion, plumbed in by the engine).
     Stats are host-side diagnostics — they intentionally live outside
     the metrics JSON, which must stay bit-identical across execution
     cores that cannot fuse at all. *)
  mutable fusion : bool;
  mutable fuse_compiled : int; (* pairs recognized *)
  fuse_hits : int array; (* dynamic fused-pair executions per class *)
}

(* Fusion pair classes, indexing [fuse_hits]. *)
let fuse_class_names = [| "cmp+jcc"; "test+jcc"; "st+st"; "ld+op"; "op+st" |]

let set_fusion t on = t.fusion <- on

let empty_dbundle = { uops = [||]; stops = [||]; nrun = [||] }

let create m =
  {
    m;
    tc = m.M.tcache;
    dec = Array.make 1024 empty_dbundle;
    dstamp = Array.make 1024 0;
    wmark = Array.make nres 0;
    wlat = Array.make nres 0;
    wlist = Array.make nres 0;
    wn = 0;
    wepoch = 1;
    gweight = 0;
    gsrcs = 0;
    gextra = 0;
    stall_before = 0;
    fusion = false;
    fuse_compiled = 0;
    fuse_hits = Array.make (Array.length fuse_class_names) 0;
  }

(* ---- lowering ---------------------------------------------------------- *)

(* Top-level so per-step calls don't build closures. *)
let rec nat_scan (m : M.t) grs i =
  i < Array.length grs
  && (let r = Array.unsafe_get grs i in
      (r <> 0 && Array.unsafe_get m.M.nat r) || nat_scan m grs (i + 1))

(* Popcount on the two 32-bit halves as native ints: the Int64 never
   crosses a function boundary, so nothing is boxed per bit. *)
let[@inline] popcnt32 x0 =
  let x = x0 - ((x0 lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24

let[@inline] popcnt64 v =
  popcnt32 (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  + popcnt32 (Int64.to_int (Int64.shift_right_logical v 32))

(* signed / unsigned high 64 bits of a 64x64 product *)
let hi_mul x y =
  let open Int64 in
  let xl = logand x 0xFFFFFFFFL and xh = shift_right x 32 in
  let yl = logand y 0xFFFFFFFFL and yh = shift_right y 32 in
  let ll = mul xl yl in
  let lh = mul xl yh and hl = mul xh yl in
  let hh = mul xh yh in
  let mid = add (add lh hl) (shift_right_logical ll 32) in
  add hh (shift_right mid 32)

let hi_mul_u x y =
  let open Int64 in
  let xl = logand x 0xFFFFFFFFL and xh = shift_right_logical x 32 in
  let yl = logand y 0xFFFFFFFFL and yh = shift_right_logical y 32 in
  let ll = mul xl yl in
  let lh = mul xl yh and hl = mul xh yl in
  let carry =
    shift_right_logical
      (add
         (add (logand lh 0xFFFFFFFFL) (logand hl 0xFFFFFFFFL))
         (shift_right_logical ll 32))
      32
  in
  add
    (add (mul xh yh)
       (add (shift_right_logical lh 32) (shift_right_logical hl 32)))
    carry

(* Module-local register accessors. The build uses -opaque in the dev
   profile, so cross-module calls into [Machine] are never inlined and
   every int64 crossing them is boxed. These copies live in the same
   module as the closures below; Closure inlines them, [gr] is a
   Bigarray, and a computed value goes register-file to register-file
   without touching the minor heap. *)
let[@inline] rget (m : M.t) r =
  if r = 0 then 0L else Bigarray.Array1.unsafe_get m.M.gr r

let[@inline] rget_nat (m : M.t) r =
  r <> 0 && Array.unsafe_get m.M.nat r

let[@inline] rset (m : M.t) r v =
  if r <> 0 then begin
    Bigarray.Array1.unsafe_set m.M.gr r v;
    Array.unsafe_set m.M.nat r false
  end

let[@inline] pset (m : M.t) p v = if p <> 0 then Array.unsafe_set m.M.pr p v
let[@inline] pget (m : M.t) p = p = 0 || Array.unsafe_get m.M.pr p

let[@inline] iaddr v = Int64.to_int (Int64.logand v 0xFFFFFFFFL)

let[@inline] isx bytes v =
  let sh = 64 - (8 * bytes) in
  Int64.shift_right (Int64.shift_left v sh) sh

let[@inline] izx bytes v =
  if bytes >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * bytes)) 1L)

(* Same-module copy of [Machine.eval_cmp] so comparison operands stay
   unboxed inside compiled Cmp/Cmpi closures. *)
let[@inline] ieval_cmp rel a b =
  match (rel : Insn.cmp_rel) with
  | Insn.Ceq -> Int64.equal a b
  | Insn.Cne -> not (Int64.equal a b)
  | Insn.Clt -> Int64.compare a b < 0
  | Insn.Cle -> Int64.compare a b <= 0
  | Insn.Cgt -> Int64.compare a b > 0
  | Insn.Cge -> Int64.compare a b >= 0
  | Insn.Cltu -> Int64.unsigned_compare a b < 0
  | Insn.Cleu -> Int64.unsigned_compare a b <= 0
  | Insn.Cgtu -> Int64.unsigned_compare a b > 0
  | Insn.Cgeu -> Int64.unsigned_compare a b >= 0

(* Compile one instruction's semantic action into a closure over resolved
   operands. Mirrors [Machine.exec_sem] case by case; any behavioural
   difference here is a bug the determinism suite must catch. *)
let compile_insn m (insn : Insn.t) =
  let open Insn in
  let gf f = M.getf m f in
  let sf d v = M.setf m d v in
  let stats = m.M.stats in
  (* GR sources, for computational NaT propagation (= nat_of_reads) *)
  let grs =
    List.filter_map (function Rgr r -> Some r | _ -> None) (reads insn)
    |> Array.of_list
  in
  let cmp_commit ct p1 p2 r =
    match ct with
    | Cnorm | Cunc ->
      pset m p1 r;
      pset m p2 (not r)
    | Cand_ ->
      if not r then begin
        pset m p1 false;
        pset m p2 false
      end
    | Cor_ ->
      if r then begin
        pset m p1 true;
        pset m p2 true
      end
  in
  let taken t =
    stats.M.taken_branches <- stats.M.taken_branches + 1;
    match t with To n -> n | Out _ -> -2
  in
  let dstall addr =
    stats.M.dcache_stall <- stats.M.dcache_stall + M.dcache_access m addr
  in
  match insn.sem with
  | Add (d, a, b) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d else rset m d (Int64.add (rget m a) (rget m b)));
      -1
  | Sub (d, a, b) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.sub (rget m a) (rget m b)));
      -1
  | Addi (d, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d else rset m d (Int64.add i (rget m a)));
      -1
  | Subi (d, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.sub i (rget m a)));
      -1
  | And (d, a, b) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logand (rget m a) (rget m b)));
      -1
  | Or (d, a, b) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logor (rget m a) (rget m b)));
      -1
  | Xor (d, a, b) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logxor (rget m a) (rget m b)));
      -1
  | Andcm (d, a, b) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logand (rget m a) (Int64.lognot (rget m b))));
      -1
  | Andi (d, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logand i (rget m a)));
      -1
  | Ori (d, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logor i (rget m a)));
      -1
  | Xori (d, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logxor i (rget m a)));
      -1
  | Shl (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (let c = Int64.to_int (Int64.logand (rget m b) 127L) in
        if c >= 64 then 0L else Int64.shift_left (rget m a) c));
      -1
  | Shli (d, a, n) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (if n >= 64 then 0L else Int64.shift_left (rget m a) n));
      -1
  | Shru (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (let c = Int64.to_int (Int64.logand (rget m b) 127L) in
        if c >= 64 then 0L else Int64.shift_right_logical (rget m a) c));
      -1
  | Shrui (d, a, n) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (if n >= 64 then 0L else Int64.shift_right_logical (rget m a) n));
      -1
  | Shrs (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (let c = min 63 (Int64.to_int (Int64.logand (rget m b) 127L)) in
        Int64.shift_right (rget m a) c));
      -1
  | Shrsi (d, a, n) ->
    let n = min 63 n in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.shift_right (rget m a) n));
      -1
  | Dep (d, s, base, pos, len) ->
    (* pos/len are immediates: box the masks once, at lowering time *)
    let fmask = M.mask_of_len len in
    let cmask = Int64.lognot (Int64.shift_left fmask pos) in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (let field = Int64.logand (rget m s) fmask in
        let cleared = Int64.logand (rget m base) cmask in
        Int64.logor cleared (Int64.shift_left field pos)));
      -1
  | Depz (d, s, pos, len) ->
    let fmask = M.mask_of_len len in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.shift_left (Int64.logand (rget m s) fmask) pos));
      -1
  | Extr (d, s, pos, len) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.shift_right (Int64.shift_left (rget m s) (64 - pos - len)) (64 - len)));
      -1
  | Extru (d, s, pos, len) ->
    let fmask = M.mask_of_len len in
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logand (Int64.shift_right_logical (rget m s) pos) fmask));
      -1
  | Sxt (d, s, n) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (isx n (rget m s)));
      -1
  | Zxt (d, s, n) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (izx n (rget m s)));
      -1
  | Mov (d, s) ->
    (* moves propagate NaT as a value move (like mov through add r0) *)
    fun () ->
      (if rget_nat m s then M.set_nat m d else rset m d (rget m s));
      -1
  | Movi (d, v) ->
    fun () ->
      rset m d v;
      -1
  | Mix (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.logor
          (Int64.shift_left (Int64.logand (rget m a) 0xFFFFFFFFL) 32)
          (Int64.logand (rget m b) 0xFFFFFFFFL)));
      -1
  | Popcnt (d, s) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.of_int (popcnt64 (rget m s))));
      -1
  | Xma (d, a, b, c) | Xmau (d, a, b, c) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.add (Int64.mul (rget m a) (rget m b)) (rget m c)));
      -1
  | Xmah (d, a, b, c) -> fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.add (hi_mul (rget m a) (rget m b)) (rget m c)));
      -1
  | Xmahu (d, a, b, c) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Int64.add (hi_mul_u (rget m a) (rget m b)) (rget m c)));
      -1
  | Divs (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (if Int64.equal (rget m b) 0L then 0L else Int64.div (rget m a) (rget m b)));
      -1
  | Divu (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (if Int64.equal (rget m b) 0L then 0L else Int64.unsigned_div (rget m a) (rget m b)));
      -1
  | Rems (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (if Int64.equal (rget m b) 0L then 0L else Int64.rem (rget m a) (rget m b)));
      -1
  | Remu (d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (if Int64.equal (rget m b) 0L then 0L else Int64.unsigned_rem (rget m a) (rget m b)));
      -1
  | Padd (w, d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Ia32.Word.lanes_map2 w Int64.add (rget m a) (rget m b)));
      -1
  | Psub (w, d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Ia32.Word.lanes_map2 w Int64.sub (rget m a) (rget m b)));
      -1
  | Pmull (w, d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Ia32.Word.lanes_map2 w Int64.mul (rget m a) (rget m b)));
      -1
  | Pcmpeq (w, d, a, b) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Ia32.Word.lanes_map2 w
          (fun x y -> if Int64.equal x y then -1L else 0L)
          (rget m a) (rget m b)));
      -1
  | Pshli (w, d, a, n) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Ia32.Word.lanes_map2 w
          (fun x _ -> if n >= w * 8 then 0L else Int64.shift_left x n)
          (rget m a) 0L));
      -1
  | Pshri (w, d, a, n) ->
    fun () ->
      (if nat_scan m grs 0 then M.set_nat m d
       else rset m d (Ia32.Word.lanes_map2 w
          (fun x _ -> if n >= w * 8 then 0L else Int64.shift_right_logical x n)
          (rget m a) 0L));
      -1
  | Cmp (rel, ct, p1, p2, a, b) ->
    fun () ->
      (if rget_nat m a || rget_nat m b then begin
         (* NaT source: both targets cleared (IPF behaviour) *)
         pset m p1 false;
         pset m p2 false
       end
       else cmp_commit ct p1 p2 (ieval_cmp rel (rget m a) (rget m b)));
      -1
  | Cmpi (rel, ct, p1, p2, i, a) ->
    let i = Int64.of_int i in
    fun () ->
      (if rget_nat m a then begin
         pset m p1 false;
         pset m p2 false
       end
       else cmp_commit ct p1 p2 (ieval_cmp rel i (rget m a)));
      -1
  | Tbit (p1, p2, a, pos) ->
    fun () ->
      (if rget_nat m a then begin
         pset m p1 false;
         pset m p2 false
       end
       else begin
         let bit =
           Int64.logand (Int64.shift_right_logical (rget m a) pos) 1L
           |> Int64.equal 1L
         in
         pset m p1 bit;
         pset m p2 (not bit)
       end);
      -1
  | Setp (p, v) ->
    fun () ->
      pset m p v;
      -1
  | Movpr (d, mask) ->
    fun () ->
      let v = ref 0L in
      for p = 63 downto 0 do
        v := Int64.shift_left !v 1;
        if M.getp m p then v := Int64.logor !v 1L
      done;
      rset m d (Int64.logand !v mask);
      -1
  | Prmov src ->
    fun () ->
      let v = rget m src in
      for p = 1 to 63 do
        pset m p
          (Int64.logand (Int64.shift_right_logical v p) 1L |> Int64.equal 1L)
      done;
      -1
  | Ld (size, spec, d, a) ->
    let is_spec = spec = Ld_s || spec = Ld_sa in
    let is_adv = spec = Ld_a || spec = Ld_sa in
    fun () ->
      if rget_nat m a then
        if is_spec then begin
          M.set_nat m d;
          (* a stale ALAT entry for d must not let a later chk.a pass *)
          Hashtbl.remove m.M.alat d;
          -1
        end
        else raise (M.Machine_fault (M.F_nat, 0, size, false))
      else begin
        let addr = iaddr (rget m a) in
        stats.M.loads <- stats.M.loads + 1;
        match M.do_load m ~addr ~size with
        | v ->
          let v = if size = 8 then v else izx size v in
          rset m d v;
          dstall addr;
          if is_adv then Hashtbl.replace m.M.alat d (addr, size);
          -1
        | exception M.Machine_fault (k, fa, fs, st) ->
          if is_spec then begin
            M.set_nat m d;
            Hashtbl.remove m.M.alat d;
            -1
          end
          else raise (M.Machine_fault (k, fa, fs, st))
      end
  | St (size, a, v) ->
    fun () ->
      if rget_nat m a || rget_nat m v then
        raise (M.Machine_fault (M.F_nat, 0, size, true));
      let addr = iaddr (rget m a) in
      stats.M.stores <- stats.M.stores + 1;
      M.do_store m ~addr ~size (rget m v);
      dstall addr;
      -1
  | Chk_s (r, t) -> fun () -> if rget_nat m r then taken t else -1
  | Chk_a (r, t) -> fun () -> if Hashtbl.mem m.M.alat r then -1 else taken t
  | Invala ->
    fun () ->
      Hashtbl.reset m.M.alat;
      -1
  | Ldf (size, d, a) ->
    fun () ->
      if rget_nat m a then raise (M.Machine_fault (M.F_nat, 0, size, false))
      else begin
        let addr = iaddr (rget m a) in
        stats.M.loads <- stats.M.loads + 1;
        let bits = M.do_load m ~addr ~size in
        let v =
          if size = 4 then
            Ia32.Fpconv.f32_of_bits
              (Int64.to_int (Int64.logand bits 0xFFFFFFFFL))
          else Ia32.Fpconv.f64_of_bits bits
        in
        sf d v;
        dstall addr;
        -1
      end
  | Stf (size, a, v) ->
    fun () ->
      if rget_nat m a then raise (M.Machine_fault (M.F_nat, 0, size, true));
      let addr = iaddr (rget m a) in
      stats.M.stores <- stats.M.stores + 1;
      let bits =
        if size = 4 then Int64.of_int (Ia32.Fpconv.bits_of_f32 (gf v))
        else Ia32.Fpconv.bits_of_f64 (gf v)
      in
      M.do_store m ~addr ~size bits;
      dstall addr;
      -1
  | Fadd (d, a, b) ->
    fun () ->
      sf d (gf a +. gf b);
      -1
  | Fsub (d, a, b) ->
    fun () ->
      sf d (gf a -. gf b);
      -1
  | Fmul (d, a, b) ->
    fun () ->
      sf d (gf a *. gf b);
      -1
  | Fma (d, a, b, c) ->
    fun () ->
      sf d ((gf a *. gf b) +. gf c);
      -1
  | Fdiv (d, a, b) ->
    fun () ->
      sf d (gf a /. gf b);
      -1
  | Fsqrt (d, a) ->
    fun () ->
      sf d (Float.sqrt (gf a));
      -1
  | Fneg (d, a) ->
    fun () ->
      sf d (-.gf a);
      -1
  | Fabs_ (d, a) ->
    fun () ->
      sf d (Float.abs (gf a));
      -1
  | Fmov (d, a) ->
    fun () ->
      sf d (gf a);
      -1
  | Frint (d, a) ->
    fun () ->
      sf d (Ia32.Fpconv.rint (gf a));
      -1
  | Fmin (d, a, b) ->
    fun () ->
      let x = gf a and y = gf b in
      sf d
        (if Float.is_nan x || Float.is_nan y then y
         else if x < y then x
         else y);
      -1
  | Fmax (d, a, b) ->
    fun () ->
      let x = gf a and y = gf b in
      sf d
        (if Float.is_nan x || Float.is_nan y then y
         else if x > y then x
         else y);
      -1
  | Fcmp (rel, p1, p2, a, b) ->
    fun () ->
      let x = gf a and y = gf b in
      let r =
        match rel with
        | Feq -> x = y
        | Flt -> x < y
        | Fle -> x <= y
        | Funord -> Float.is_nan x || Float.is_nan y
      in
      pset m p1 r;
      pset m p2 (not r);
      -1
  | Fcvt_xf (d, a) ->
    fun () ->
      sf d (Int64.to_float (rget m a));
      -1
  | Fcvt_fx (d, a) ->
    fun () ->
      rset m d (Int64.of_float (Ia32.Fpconv.rint (gf a)));
      -1
  | Fcvt_fxt (d, a) ->
    fun () ->
      rset m d (Int64.of_float (Float.trunc (gf a)));
      -1
  | Fcvt_32 (d, a) ->
    fun () ->
      sf d (Ia32.Fpconv.f32_of_bits (Ia32.Fpconv.bits_of_f32 (gf a)));
      -1
  | Getf_s (d, a) ->
    fun () ->
      rset m d (Int64.of_int (Ia32.Fpconv.bits_of_f32 (gf a)));
      -1
  | Getf_d (d, a) ->
    fun () ->
      rset m d (Ia32.Fpconv.bits_of_f64 (gf a));
      -1
  | Setf_s (d, a) ->
    fun () ->
      if rget_nat m a then raise (M.Machine_fault (M.F_nat, 0, 4, false));
      sf d
        (Ia32.Fpconv.f32_of_bits
           (Int64.to_int (Int64.logand (rget m a) 0xFFFFFFFFL)));
      -1
  | Setf_d (d, a) ->
    fun () ->
      if rget_nat m a then raise (M.Machine_fault (M.F_nat, 0, 8, false));
      sf d (Ia32.Fpconv.f64_of_bits (rget m a));
      -1
  | Br t -> fun () -> taken t
  | Br_ind b ->
    fun () ->
      stats.M.taken_branches <- stats.M.taken_branches + 1;
      m.M.br.(b)
  | Mov_to_br (b, a) ->
    fun () ->
      m.M.br.(b) <- Int64.to_int (rget m a);
      -1
  | Mov_from_br (d, b) ->
    fun () ->
      rset m d (Int64.of_int m.M.br.(b));
      -1
  | Hotc (s, threshold, _) ->
    let hotc = m.M.hotc in
    fun () ->
      let c = hotc.(s) + 1 in
      if c >= threshold then begin
        hotc.(s) <- 0;
        stats.M.taken_branches <- stats.M.taken_branches + 1;
        -2
      end
      else begin
        hotc.(s) <- c;
        -1
      end
  | Edgec s ->
    let edgec = m.M.edgec in
    fun () ->
      let c = edgec.(s) in
      if c < M.edgec_saturate then edgec.(s) <- c + 1;
      -1
  | Nop _ -> fun () -> -1

let compile_uop m (insn : Insn.t) =
  {
    run = compile_insn m insn;
    qp = (match insn.Insn.qp with Some p -> p | None -> -1);
    fast_nop =
      (match (insn.Insn.sem, insn.Insn.qp) with
      | Insn.Nop _, None -> true
      | _ -> false);
    nonnop = (match insn.Insn.sem with Insn.Nop _ -> false | _ -> true);
    spec_check =
      (match insn.Insn.sem with
      | Insn.Br (Insn.Out (Insn.Spec_fail _)) -> true
      | _ -> false);
    weight = M.slot_weight insn;
    latency = M.latency_of m insn;
    is_br_ind = (match insn.Insn.sem with Insn.Br_ind _ -> true | _ -> false);
    reads = Array.of_list (List.map enc (Insn.reads insn));
    reads_rf =
      Array.of_list
        (List.filter_map
           (fun r ->
             let e = enc r in
             if e < 256 then Some e else None)
           (Insn.reads insn));
    writes = Array.of_list (List.map enc (Insn.writes insn));
    exit_ =
      (match insn.Insn.sem with
      | Insn.Br (Insn.Out r)
      | Insn.Chk_s (_, Insn.Out r)
      | Insn.Chk_a (_, Insn.Out r) ->
        Some r
      | Insn.Hotc (_, _, id) -> Some (Insn.Heat id)
      | _ -> None);
    fuse = None;
    fuse_done = false;
  }

let compile_bundle m (b : Bundle.t) =
  let uops = Array.map (compile_uop m) b.Bundle.slots in
  let n = Array.length uops in
  let nrun = Array.make n 0 in
  for i = n - 1 downto 0 do
    if uops.(i).fast_nop then
      nrun.(i) <- 1 + (if i + 1 < n then nrun.(i + 1) else 0)
  done;
  { uops; stops = Array.copy b.Bundle.stops; nrun }

let ensure t i =
  let n = Array.length t.dec in
  if i >= n then begin
    let n' = max (2 * n) (i + 1) in
    let dec = Array.make n' empty_dbundle in
    Array.blit t.dec 0 dec 0 n;
    t.dec <- dec;
    let ds = Array.make n' 0 in
    Array.blit t.dstamp 0 ds 0 n;
    t.dstamp <- ds
  end

(* ---- run loop ---------------------------------------------------------- *)

let flush_group t =
  if t.gweight > 0 then begin
    let m = t.m in
    (* [M.close_group]'s accounting, replicated locally: the build's
       -opaque keeps the cross-module call opaque, and groups close every
       few slots. Must stay line-for-line equivalent. *)
    let stats = m.M.stats in
    let issue = max (stats.M.cycles + 1) t.gsrcs in
    let span =
      (t.gweight + m.M.cost.Cost.issue_slots - 1) / m.M.cost.Cost.issue_slots
    in
    let delta = issue + span - 1 + t.gextra - stats.M.cycles in
    if delta > 0 then begin
      stats.M.cycles <- stats.M.cycles + delta;
      let b = m.M.bucket_fn m.M.ip in
      m.M.buckets.(b land 7) <- m.M.buckets.(b land 7) + delta;
      match m.M.charge_probe with Some f -> f m.M.ip delta | None -> ()
    end;
    stats.M.groups <- stats.M.groups + 1;
    for i = 0 to t.wn - 1 do
      let rid = t.wlist.(i) in
      if rid < 128 then m.M.ready.(rid) <- issue + t.wlat.(rid)
      else if rid < 256 then m.M.fready.(rid - 128) <- issue + t.wlat.(rid)
    done;
    t.wn <- 0;
    t.wepoch <- t.wepoch + 1;
    t.gweight <- 0;
    t.gsrcs <- 0;
    t.gextra <- 0
  end

let[@inline] advance_slot t stop_after =
  let m = t.m in
  if m.M.slot = 2 then begin
    m.M.ip <- m.M.ip + 1;
    m.M.slot <- 0
  end
  else m.M.slot <- m.M.slot + 1;
  if stop_after then flush_group t

let rec raw_scan t reads i =
  i < Array.length reads
  && (t.wmark.(Array.unsafe_get reads i) = t.wepoch || raw_scan t reads (i + 1))

let[@inline] account t u =
  (* intra-group RAW: conservatively split the group (the scan needs the
     full read set — predicates and memory carry RAW splits too) *)
  if t.wn > 0 && raw_scan t u.reads 0 then flush_group t;
  let m = t.m in
  t.stall_before <- m.M.stats.M.dcache_stall;
  let reads = u.reads_rf in
  for i = 0 to Array.length reads - 1 do
    let rid = Array.unsafe_get reads i in
    if rid < 128 then begin
      if m.M.ready.(rid) > t.gsrcs then t.gsrcs <- m.M.ready.(rid)
    end
    else if m.M.fready.(rid - 128) > t.gsrcs then
      t.gsrcs <- m.M.fready.(rid - 128)
  done;
  t.gweight <- t.gweight + u.weight

let[@inline] commit_timing t u =
  (* dcache stalls observed during exec extend the group *)
  t.gextra <- t.gextra + (t.m.M.stats.M.dcache_stall - t.stall_before);
  let writes = u.writes in
  for i = 0 to Array.length writes - 1 do
    let rid = Array.unsafe_get writes i in
    if t.wmark.(rid) <> t.wepoch then begin
      t.wmark.(rid) <- t.wepoch;
      t.wlist.(t.wn) <- rid;
      t.wn <- t.wn + 1
    end;
    t.wlat.(rid) <- u.latency
  done

(* ---- macro-op fusion ---------------------------------------------------- *)

(* Fusion legality (DESIGN.md §15). A pair fuses only when:
   - the first op is unpredicated and can neither branch nor leave the
     cache (its [run] always falls through; it may still fault — the raise
     unwinds before the pair advances, so fault ip/slot are exact);
   - the pair spans fall-through only: within one bundle, or into the
     first real slot of the NEXT bundle, whose tcache stamp is pinned
     ([fstamp]) so chain patching and SMC invalidation drop the overlay;
     heads never branch, so a pair cannot straddle a block's exit;
   - neither bundle is under an IPF_WATCH watchpoint (the debug hook
     prints between dispatches, which fusion would elide).
   The second op may be predicated, branch, exit or fault: [frun] replays
   its full dispatch sequence with the machine ip/slot already advanced
   past the first half, so every outcome is bit-identical. *)

let is_alu_sem = function
  | Insn.Add _ | Insn.Sub _ | Insn.Addi _ | Insn.Subi _ | Insn.And _
  | Insn.Or _ | Insn.Xor _ | Insn.Andcm _ | Insn.Andi _ | Insn.Ori _
  | Insn.Xori _ | Insn.Shl _ | Insn.Shli _ | Insn.Shru _ | Insn.Shrui _
  | Insn.Shrs _ | Insn.Shrsi _ | Insn.Dep _ | Insn.Depz _ | Insn.Extr _
  | Insn.Extru _ | Insn.Sxt _ | Insn.Zxt _ | Insn.Mov _ | Insn.Movi _
  | Insn.Mix _ | Insn.Popcnt _ ->
    true
  | _ -> false

(* Class index into [fuse_hits] / [fuse_class_names], or -1. *)
let fuse_class (i1 : Insn.t) (i2 : Insn.t) =
  if i1.Insn.qp <> None then -1
  else
    match (i1.Insn.sem, i2.Insn.sem) with
    | (Insn.Cmp _ | Insn.Cmpi _), Insn.Br _ -> 0
    | Insn.Tbit _, Insn.Br _ -> 1
    | (Insn.St _ | Insn.Stf _), (Insn.St _ | Insn.Stf _) -> 2
    | (Insn.Ld _ | Insn.Ldf _), s2 when is_alu_sem s2 -> 3
    | s1, (Insn.St _ | Insn.Stf _) when is_alu_sem s1 -> 4
    | _ -> -1

(* Validated lookup: one stamp compare on the hit path; a miss lowers the
   bundle and records the stamp (out-of-range indices raise through
   [Tcache.get], exactly like the interpretive loop). *)
let dbundle_at t i =
  let s = Tcache.stamp t.tc i in
  if i < Array.length t.dstamp && Array.unsafe_get t.dstamp i = s then
    Array.unsafe_get t.dec i
  else begin
    let b = Tcache.get t.tc i in
    ensure t i;
    let db = compile_bundle t.m b in
    if not t.fusion then
      Array.iter (fun u -> u.fuse_done <- true) db.uops;
    t.dec.(i) <- db;
    t.dstamp.(i) <- s;
    db
  end

(* Build the fused closure for a recognized pair. The body is the step
   loop's per-uop sequence inlined — first half, padding-nop bridge,
   second half — minus the intermediate dispatches. [bridge] packs each
   padding slot as [weight*2 lor stop]. *)
let fuse_pair t u1 u2 ~bridge ~stop1 ~stop2 ~fneed ~fnext ~fstamp k =
  let m = t.m in
  let stats = m.M.stats in
  let frun () =
    (* first half: unpredicated, never branches, never exits *)
    account t u1;
    let r1 = u1.run () in
    ignore r1;
    commit_timing t u1;
    stats.M.slots_retired <- stats.M.slots_retired + 1;
    advance_slot t stop1;
    t.fuse_hits.(k) <- t.fuse_hits.(k) + 1;
    (* padding nops between the halves: weight and stop flushes only *)
    for x = 0 to Array.length bridge - 1 do
      let ws = Array.unsafe_get bridge x in
      t.gweight <- t.gweight + (ws lsr 1);
      advance_slot t (ws land 1 = 1)
    done;
    (* second half: full dispatch sequence *)
    if u2.spec_check then stats.M.spec_checks <- stats.M.spec_checks + 1;
    let enabled = u2.qp < 0 || pget m u2.qp in
    account t u2;
    if not enabled then begin
      commit_timing t u2;
      if u2.nonnop then stats.M.slots_retired <- stats.M.slots_retired + 1;
      advance_slot t stop2;
      0
    end
    else
      match u2.run () with
      | -1 ->
        commit_timing t u2;
        if u2.nonnop then stats.M.slots_retired <- stats.M.slots_retired + 1;
        advance_slot t stop2;
        0
      | -2 ->
        commit_timing t u2;
        stats.M.slots_retired <- stats.M.slots_retired + 1;
        flush_group t;
        m.M.last_exit <- (m.M.ip, m.M.slot);
        advance_slot t stop2;
        1
      | n ->
        commit_timing t u2;
        stats.M.slots_retired <- stats.M.slots_retired + 1;
        flush_group t;
        M.charge m m.M.cost.Cost.taken_branch_penalty;
        if u2.is_br_ind then M.charge m m.M.cost.Cost.indirect_branch_penalty;
        m.M.ip <- n;
        m.M.slot <- 0;
        0
  in
  { frun; fexit = u2.exit_; fneed; fnext; fstamp }

(* First non-nop slot of [db] at or after [s], or -1. *)
let rec first_real (db : dbundle) s =
  if s >= Array.length db.uops then -1
  else if db.uops.(s).fast_nop then first_real db (s + 1)
  else s

let pack_bridge (db1 : dbundle) s1 e1 (db2 : dbundle) e2 =
  Array.init
    (e1 - s1 + e2)
    (fun x ->
      let u, stp =
        if x < e1 - s1 then (db1.uops.(s1 + x), db1.stops.(s1 + x))
        else (db2.uops.(x - (e1 - s1)), db2.stops.(x - (e1 - s1)))
      in
      (u.weight * 2) lor Bool.to_int stp)

(* Examine the pair headed by the uop the step loop is about to dispatch
   (bundle [ip], slot [m.slot]) and overlay a fused macro-op if legal.
   Runs once per uop — [fuse_done] — the first time it is dispatched, so
   partner bundles are lowered on demand without recursive lowering. *)
let try_fuse t ip (db : dbundle) u1 =
  u1.fuse_done <- true;
  let m = t.m in
  let s1 = m.M.slot in
  let watched b = match m.M.watch with Some (w, _) -> w = b | None -> false in
  if not (watched ip) then begin
    let i1 = (Tcache.get t.tc ip).Bundle.slots.(s1) in
    match first_real db (s1 + 1) with
    | k2 when k2 >= 0 ->
      (* partner inside the same bundle *)
      let i2 = (Tcache.get t.tc ip).Bundle.slots.(k2) in
      let k = fuse_class i1 i2 in
      if k >= 0 then begin
        let bridge = pack_bridge db (s1 + 1) k2 db 0 in
        u1.fuse <-
          Some
            (fuse_pair t u1 db.uops.(k2) ~bridge ~stop1:db.stops.(s1)
               ~stop2:db.stops.(k2)
               ~fneed:(k2 - s1 + 1)
               ~fnext:(-1) ~fstamp:0 k);
        t.fuse_compiled <- t.fuse_compiled + 1
      end
    | _ ->
      (* the rest of this bundle is padding: try the next bundle's first
         real op, pinning its stamp *)
      let j = ip + 1 in
      if j < Tcache.length t.tc && not (watched j) then begin
        let db2 = dbundle_at t j in
        match first_real db2 0 with
        | k2 when k2 >= 0 -> (
          let i2 = (Tcache.get t.tc j).Bundle.slots.(k2) in
          let k = fuse_class i1 i2 in
          if k >= 0 then begin
            let nslots = Array.length db.uops in
            let bridge = pack_bridge db (s1 + 1) nslots db2 k2 in
            u1.fuse <-
              Some
                (fuse_pair t u1 db2.uops.(k2) ~bridge ~stop1:db.stops.(s1)
                   ~stop2:db2.stops.(k2)
                   ~fneed:(nslots - s1 + k2 + 1)
                   ~fnext:j ~fstamp:(Tcache.stamp t.tc j) k);
            t.fuse_compiled <- t.fuse_compiled + 1
          end)
        | _ -> ()
      end
  end

let run ?(fuel = max_int) t =
  let m = t.m in
  let stats = m.M.stats in
  (* fresh group state, mirroring Machine.run's per-call locals *)
  t.wn <- 0;
  t.wepoch <- t.wepoch + 1;
  t.gweight <- 0;
  t.gsrcs <- 0;
  t.gextra <- 0;
  let fuel_left = ref fuel in
  let watch = m.M.watch in
  let watching = watch <> None in
  (* The current bundle's lowered image rides along as recursion
     arguments, revalidated only when ip moves: nothing mutates the
     tcache while the run loop is on the stack (guest SMC stores abort
     out through the engine's write watch), so within a bundle the
     cached image cannot go stale — and keeping it out of a heap cell
     spares the GC write barrier on every bundle switch. *)
  let rec step cur_ip cur_db =
    if !fuel_left <= 0 then begin
      flush_group t;
      M.Fuel
    end
    else begin
      let cur_ip, db =
        if m.M.ip <> cur_ip then (m.M.ip, dbundle_at t m.M.ip)
        else (cur_ip, cur_db)
      in
      if watching then
        (match watch with
        | Some (b, regs) when m.M.slot = 0 && b = m.M.ip ->
          Printf.eprintf "[watch ip=%d" m.M.ip;
          List.iter
            (fun r ->
              if r < 200 then Printf.eprintf " r%d=%Lx" r (M.get m r)
              else Printf.eprintf " p%d=%b" (r - 200) (M.getp m (r - 200)))
            regs;
          Printf.eprintf "]\n%!"
        | _ -> ());
      let u = Array.unsafe_get db.uops m.M.slot in
      let stop_after = Array.unsafe_get db.stops m.M.slot in
      if u.fast_nop then begin
        (* a nop reads and writes nothing, cannot stall, does not retire
           and has no predicate; only its slot weight reaches the group.
           A run of padding nops is swept in one pass when fuel allows —
           each consumes its fuel unit and contributes its weight exactly
           as the slot-at-a-time loop would *)
        let n = Array.unsafe_get db.nrun m.M.slot in
        if n > 1 && !fuel_left >= n then begin
          fuel_left := !fuel_left - n;
          let s0 = m.M.slot in
          for x = s0 to s0 + n - 1 do
            t.gweight <- t.gweight + (Array.unsafe_get db.uops x).weight;
            advance_slot t (Array.unsafe_get db.stops x)
          done
        end
        else begin
          decr fuel_left;
          t.gweight <- t.gweight + u.weight;
          advance_slot t stop_after
        end;
        step cur_ip db
      end
      else begin
        (* drop a fused pair whose partner bundle was rewritten since the
           pair was built; re-examination happens just below *)
        (match u.fuse with
        | Some f when f.fnext >= 0 && Tcache.stamp t.tc f.fnext <> f.fstamp
          ->
          u.fuse <- None;
          u.fuse_done <- false
        | _ -> ());
        if (not u.fuse_done) && t.fusion then try_fuse t m.M.ip db u;
        match u.fuse with
        | Some f when !fuel_left >= f.fneed ->
          (* fused pair: one dispatch for both halves. Requires the whole
             span's fuel so a fuel stop inside the pair (which the unfused
             loop could take) stays reachable bit-identically *)
          fuel_left := !fuel_left - f.fneed;
          if f.frun () = 0 then step cur_ip db
          else
            M.Exited
              (match f.fexit with Some r -> r | None -> assert false)
        | _ -> begin
      decr fuel_left;
      if u.spec_check then stats.M.spec_checks <- stats.M.spec_checks + 1;
      let enabled = u.qp < 0 || pget m u.qp in
      account t u;
      if not enabled then begin
        commit_timing t u;
        if u.nonnop then stats.M.slots_retired <- stats.M.slots_retired + 1;
        advance_slot t stop_after;
        step cur_ip db
      end
      else
        match u.run () with
        | -1 ->
          commit_timing t u;
          if u.nonnop then stats.M.slots_retired <- stats.M.slots_retired + 1;
          advance_slot t stop_after;
          step cur_ip db
        | -2 ->
          commit_timing t u;
          stats.M.slots_retired <- stats.M.slots_retired + 1;
          flush_group t;
          m.M.last_exit <- (m.M.ip, m.M.slot);
          (* advance past the exit so a resume continues after it *)
          advance_slot t stop_after;
          M.Exited (match u.exit_ with Some r -> r | None -> assert false)
        | n ->
          commit_timing t u;
          stats.M.slots_retired <- stats.M.slots_retired + 1;
          flush_group t;
          M.charge m m.M.cost.Cost.taken_branch_penalty;
          if u.is_br_ind then M.charge m m.M.cost.Cost.indirect_branch_penalty;
          m.M.ip <- n;
          m.M.slot <- 0;
          step cur_ip db
        end
      end
    end
  in
  (* one trap frame for the whole run instead of one per step; [m.ip]/
     [m.slot] still point at the faulting slot when the raise unwinds *)
  try step (-1) empty_dbundle
  with M.Machine_fault (kind, addr, size, store) ->
    flush_group t;
    M.Faulted { M.kind; addr; size; store; ip = m.M.ip; slot = m.M.slot }

(* Diagnostics for tests: how many bundles currently hold a valid lowered
   image. *)
let cached_bundles t =
  let n = ref 0 in
  for i = 0 to Array.length t.dstamp - 1 do
    if t.dstamp.(i) <> 0 then incr n
  done;
  !n

(* Host-side fusion diagnostics: (pairs recognized at lowering, dynamic
   executions per class — see [fuse_class_names]). Deliberately NOT part
   of the metrics JSON: the interpretive core cannot fuse, and metrics
   must stay bit-identical across execution cores. *)
let fusion_stats t = (t.fuse_compiled, Array.copy t.fuse_hits)
