(** Pre-decoded, direct-threaded execution core.

    A drop-in replacement for {!Machine.run} that lowers each tcache
    bundle once into flat micro-op arrays — semantic closures with
    operand indices resolved, precomputed read/write resource sets,
    weights, latencies and stop bits — and validates the lowered image
    with one {!Tcache.stamp} compare per slot, so chain patching and SMC
    invalidation recompile exactly the bundles they rewrite.

    Execution is bit-identical to the interpretive loop: simulated
    cycles, bucket attribution, all stats counters, fault records and
    exit reasons match {!Machine.run} exactly. The engine's
    [enable_predecode] config flag (and the runner's [--no-predecode])
    selects between the two. *)

type t

val create : Machine.t -> t
(** Attach a pre-decode cache to a machine. The machine (and its tcache)
    stay the single source of truth; [t] only holds derived state. *)

val set_fusion : t -> bool -> unit
(** Enable macro-op fusion ([Config.enable_fusion]): recognized uop pairs
    (cmp+jcc, test+jcc, st+st, ld+op, op+st) lower into single macro-ops
    with one dispatch. Accounting is replayed pair-exactly, so every
    simulated observable stays bit-identical; this is purely a host-speed
    switch. Takes effect for bundles lowered after the call (the engine
    sets it before any execution). *)

val fuse_class_names : string array
(** Names of the fusion pair classes, indexing the second component of
    {!fusion_stats}. *)

val fusion_stats : t -> int * int array
(** [(pairs recognized at lowering, dynamic fused executions per class)].
    Host-side diagnostics only — deliberately excluded from the metrics
    JSON, which must stay bit-identical across execution cores. *)

val run : ?fuel:int -> t -> Machine.stop
(** Execute from the machine's current [ip] until an exit branch leaves
    the translation cache, a fault is raised, or [fuel] slots are spent.
    Observable behaviour is identical to {!Machine.run}. *)

val cached_bundles : t -> int
(** Number of bundles currently holding a valid lowered image
    (diagnostics/tests). *)
