(* Itanium-like EPIC target instruction set.

   A faithful-in-shape model of the IPF application ISA subset the
   translator emits: 128 general registers with NaT bits, 128 FP registers,
   64 predicates, branch registers, qualifying predicates on every
   instruction, control speculation (ld.s / chk.s), data speculation
   (ld.a / chk.a + ALAT), compare-to-predicate, deposit/extract, parallel
   (MMX-like) ALU ops on GRs, and FP ops on the flat FP register file.

   Branch targets are either indices into the translation cache
   ({!Tcache}) or exits to the translator runtime ([Out reason]) — the
   model of "branch to a trampoline". *)

type gr = int (* 0..127; r0 reads as 0 *)
type fr = int (* 0..127; f0 = 0.0, f1 = 1.0 *)
type pr = int (* 0..63; p0 is always true *)
type br = int (* 0..7 *)

(* Functional-unit kind, which must match the bundle template slot. *)
type unit_kind = M | I | F | B

type cmp_rel = Ceq | Cne | Clt | Cle | Cgt | Cge | Cltu | Cleu | Cgtu | Cgeu

let cmp_rel_name = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le" | Cgt -> "gt"
  | Cge -> "ge" | Cltu -> "ltu" | Cleu -> "leu" | Cgtu -> "gtu" | Cgeu -> "geu"

(* Compare types: normal writes p1, p2 = rel, !rel; [Unc] also when the
   qualifying predicate is false (clears both); And/Or update only on the
   matching outcome (parallel compares). *)
type cmp_type = Cnorm | Cunc | Cand_ | Cor_

type fcmp_rel = Feq | Flt | Fle | Funord

(* Speculation flavour of a load. *)
type ld_spec = Ld_none | Ld_s | Ld_a | Ld_sa

(* Why translated code leaves the translation cache and re-enters the
   translator runtime. The machine treats these opaquely. *)
type exit_reason =
  | Dispatch of int (* ia32 target address; block not yet chained *)
  | Indirect (* ia32 target in GR Regs.r_btarget; needs lookup *)
  | Heat of int (* cold block id whose counter hit the threshold *)
  | Syscall of int (* IA-32 int n *)
  | Misalign_regen of int (* block id: stage-1 misalignment trigger *)
  | Smc of int (* block id invalidated by a code-page store *)
  | Spec_fail of int * int (* block id, check id: FP/SSE speculation miss *)
  | Guest_fault of int * int (* ia32 ip, IA-32 exception vector (e.g. 0 = #DE) *)
  | Nat_recover of int (* block id: chk.s found a deferred speculative fault *)
  | Exit_program

let exit_reason_name = function
  | Dispatch a -> Printf.sprintf "dispatch(0x%x)" a
  | Indirect -> "indirect"
  | Heat b -> Printf.sprintf "heat(%d)" b
  | Syscall n -> Printf.sprintf "syscall(%d)" n
  | Misalign_regen b -> Printf.sprintf "misalign-regen(%d)" b
  | Smc b -> Printf.sprintf "smc(%d)" b
  | Spec_fail (b, k) -> Printf.sprintf "spec-fail(%d,%d)" b k
  | Guest_fault (ip, v) -> Printf.sprintf "guest-fault(0x%x,#%d)" ip v
  | Nat_recover b -> Printf.sprintf "nat-recover(%d)" b
  | Exit_program -> "exit"

type target =
  | To of int (* bundle index in the translation cache *)
  | Out of exit_reason

type sem =
  (* integer ALU *)
  | Add of gr * gr * gr (* dst, src1, src2 *)
  | Sub of gr * gr * gr
  | Addi of gr * int * gr (* dst = imm + src *)
  | Subi of gr * int * gr (* dst = imm - src *)
  | And of gr * gr * gr
  | Or of gr * gr * gr
  | Xor of gr * gr * gr
  | Andcm of gr * gr * gr (* dst = src1 & ~src2 *)
  | Andi of gr * int * gr
  | Ori of gr * int * gr
  | Xori of gr * int * gr
  | Shl of gr * gr * gr
  | Shli of gr * gr * int
  | Shru of gr * gr * gr
  | Shrui of gr * gr * int
  | Shrs of gr * gr * gr
  | Shrsi of gr * gr * int
  | Dep of gr * gr * gr * int * int (* dst = deposit src into bse at pos,len *)
  | Depz of gr * gr * int * int (* deposit into zero *)
  | Extr of gr * gr * int * int (* signed extract pos,len *)
  | Extru of gr * gr * int * int
  | Sxt of gr * gr * int (* sign extend low [bytes] *)
  | Zxt of gr * gr * int
  | Mov of gr * gr
  | Movi of gr * int64 (* movl: long immediate *)
  | Mix of gr * gr * gr (* mix1.l-ish: helper for lane shuffles *)
  | Popcnt of gr * gr
  (* Integer division pseudo-ops. Real IPF divides through frcpa + FP
     Newton iterations; we model the whole sequence as one F-unit op with
     fp_div latency (documented deviation in DESIGN.md). *)
  | Divs of gr * gr * gr
  | Divu of gr * gr * gr
  | Rems of gr * gr * gr
  | Remu of gr * gr * gr
  | Xma of gr * gr * gr * gr (* dst = src1*src2 + src3, low 64, signed (F unit) *)
  | Xmau of gr * gr * gr * gr (* unsigned low *)
  | Xmah of gr * gr * gr * gr (* signed high 64 *)
  | Xmahu of gr * gr * gr * gr
  (* parallel (MMX-like) ops on GRs *)
  | Padd of int * gr * gr * gr (* lane bytes: 1,2,4,8 *)
  | Psub of int * gr * gr * gr
  | Pmull of int * gr * gr * gr
  | Pcmpeq of int * gr * gr * gr
  | Pshli of int * gr * gr * int
  | Pshri of int * gr * gr * int
  (* predicates *)
  | Cmp of cmp_rel * cmp_type * pr * pr * gr * gr
  | Cmpi of cmp_rel * cmp_type * pr * pr * int * gr
  | Tbit of pr * pr * gr * int (* p1,p2 = bit(src,pos), ! *)
  | Setp of pr * bool (* helper: cmp.eq p,p0 = r0,r0 style constant set *)
  | Movpr of gr * int64 (* dst = predicate file & mask (save) *)
  | Prmov of gr (* predicate file = dst (restore); barrier *)
  (* memory *)
  | Ld of int * ld_spec * gr * gr (* size, spec, dst, addr-reg *)
  | St of int * gr * gr (* size, addr-reg, src *)
  | Chk_s of gr * target (* branch to recovery if NaT *)
  | Chk_a of gr * target (* branch to recovery if ALAT entry lost *)
  | Invala
  (* FP (values are 64-bit floats; f0/f1 fixed) *)
  | Ldf of int * fr * gr (* 4 = single, 8 = double *)
  | Stf of int * gr * fr
  | Fadd of fr * fr * fr
  | Fsub of fr * fr * fr
  | Fmul of fr * fr * fr
  | Fma of fr * fr * fr * fr (* dst = a*b + c *)
  | Fdiv of fr * fr * fr (* modeled directly; costed as frcpa sequence *)
  | Fsqrt of fr * fr
  | Fneg of fr * fr
  | Fabs_ of fr * fr
  | Fmov of fr * fr
  | Frint of fr * fr (* round to nearest integer value, ties to even *)
  | Fmin of fr * fr * fr (* IA-32 MIN semantics: src2 on NaN/equal *)
  | Fmax of fr * fr * fr
  | Fcmp of fcmp_rel * pr * pr * fr * fr
  | Fcvt_xf of fr * gr (* signed int64 -> float *)
  | Fcvt_fx of gr * fr (* float -> int64, round to nearest even *)
  | Fcvt_fxt of gr * fr (* float -> int64, truncate *)
  | Fcvt_32 of fr * fr (* round double to single precision *)
  | Getf_s of gr * fr (* single-precision bit image *)
  | Getf_d of gr * fr
  | Setf_s of fr * gr
  | Setf_d of fr * gr
  (* branches *)
  | Br of target (* conditional through the qualifying predicate *)
  | Br_ind of br (* indirect within the translation cache *)
  | Mov_to_br of br * gr
  | Mov_from_br of gr * br
  (* profiling pseudo-ops (hot-counter trace selection): one-slot
     saturating counter bumps over arrays owned by the machine. Hotc
     increments its slot and, at the threshold, resets it and leaves the
     translation cache with [Heat id]; Edgec increments its slot and
     saturates silently. Neither touches guest-visible state. *)
  | Hotc of int * int * int (* counter slot, threshold, cold block id *)
  | Edgec of int (* edge-counter slot *)
  | Nop of unit_kind

(* An instruction: a semantic body optionally qualified by a predicate. *)
type t = { qp : pr option; sem : sem }

let mk ?qp sem = { qp; sem }

(* ------------------------------------------------------------------ *)
(* Metadata                                                            *)
(* ------------------------------------------------------------------ *)

(* Functional-unit kind for template placement. *)
let unit_of sem =
  match sem with
  | Ld _ | St _ | Ldf _ | Stf _ | Chk_s _ | Chk_a _ | Invala | Setf_s _
  | Setf_d _ | Getf_s _ | Getf_d _ ->
    M
  | Fadd _ | Fsub _ | Fmul _ | Fma _ | Fdiv _ | Fsqrt _ | Fneg _ | Fabs_ _
  | Fmov _ | Frint _
  | Fmin _ | Fmax _ | Fcmp _ | Fcvt_xf _ | Fcvt_fx _ | Fcvt_fxt _ | Fcvt_32 _
  | Xma _ | Xmau _ | Xmah _ | Xmahu _ | Divs _ | Divu _ | Rems _ | Remu _ ->
    F
  | Br _ | Br_ind _ -> B
  | Mov_to_br _ | Mov_from_br _ -> I
  | Nop k -> k
  | Add _ | Sub _ | Addi _ | Subi _ | And _ | Or _ | Xor _ | Andcm _ | Andi _
  | Ori _ | Xori _ | Shl _ | Shli _ | Shru _ | Shrui _ | Shrs _ | Shrsi _
  | Dep _ | Depz _ | Extr _ | Extru _ | Sxt _ | Zxt _ | Mov _ | Movi _
  | Mix _ | Popcnt _ | Padd _ | Psub _ | Pmull _ | Pcmpeq _ | Pshli _
  | Pshri _ | Cmp _ | Cmpi _ | Tbit _ | Setp _ | Movpr _ | Prmov _
  | Hotc _ | Edgec _ ->
    I

(* Resource identifiers for dependence analysis (scheduler + scoreboard). *)
type res = Rgr of int | Rfr of int | Rpr of int | Rbr of int | Rmem

let reads { qp; sem } =
  let base =
    match sem with
    | Add (_, a, b) | Sub (_, a, b) | And (_, a, b) | Or (_, a, b)
    | Xor (_, a, b) | Andcm (_, a, b) | Shl (_, a, b) | Shru (_, a, b)
    | Shrs (_, a, b) ->
      [ Rgr a; Rgr b ]
    | Addi (_, _, a) | Subi (_, _, a) | Andi (_, _, a) | Ori (_, _, a)
    | Xori (_, _, a) | Shli (_, a, _) | Shrui (_, a, _) | Shrsi (_, a, _)
    | Depz (_, a, _, _) | Extr (_, a, _, _) | Extru (_, a, _, _)
    | Sxt (_, a, _) | Zxt (_, a, _) | Mov (_, a) | Popcnt (_, a) ->
      [ Rgr a ]
    | Dep (_, a, b, _, _) | Mix (_, a, b) | Divs (_, a, b) | Divu (_, a, b)
    | Rems (_, a, b) | Remu (_, a, b) ->
      [ Rgr a; Rgr b ]
    | Movi _ -> []
    | Xma (_, a, b, c) | Xmau (_, a, b, c) | Xmah (_, a, b, c)
    | Xmahu (_, a, b, c) ->
      [ Rgr a; Rgr b; Rgr c ]
    | Padd (_, _, a, b) | Psub (_, _, a, b) | Pmull (_, _, a, b)
    | Pcmpeq (_, _, a, b) ->
      [ Rgr a; Rgr b ]
    | Pshli (_, _, a, _) | Pshri (_, _, a, _) -> [ Rgr a ]
    | Cmp (_, _, _, _, a, b) -> [ Rgr a; Rgr b ]
    | Cmpi (_, _, _, _, _, a) -> [ Rgr a ]
    | Tbit (_, _, a, _) -> [ Rgr a ]
    | Setp _ -> []
    | Movpr _ -> [] (* reads whole predicate file; modeled as barrier below *)
    | Prmov r -> [ Rgr r ]
    | Ld (_, _, _, a) -> [ Rgr a; Rmem ]
    | St (_, a, v) -> [ Rgr a; Rgr v ]
    | Chk_s (r, _) | Chk_a (r, _) -> [ Rgr r ]
    | Invala -> []
    | Ldf (_, _, a) -> [ Rgr a; Rmem ]
    | Stf (_, a, v) -> [ Rgr a; Rfr v ]
    | Fadd (_, a, b) | Fsub (_, a, b) | Fmul (_, a, b) | Fdiv (_, a, b)
    | Fmin (_, a, b) | Fmax (_, a, b) ->
      [ Rfr a; Rfr b ]
    | Fma (_, a, b, c) -> [ Rfr a; Rfr b; Rfr c ]
    | Fsqrt (_, a) | Fneg (_, a) | Fabs_ (_, a) | Fcvt_32 (_, a)
    | Fmov (_, a) | Frint (_, a) ->
      [ Rfr a ]
    | Fcmp (_, _, _, a, b) -> [ Rfr a; Rfr b ]
    | Fcvt_xf (_, a) -> [ Rgr a ]
    | Fcvt_fx (_, a) | Fcvt_fxt (_, a) -> [ Rfr a ]
    | Getf_s (_, a) | Getf_d (_, a) -> [ Rfr a ]
    | Setf_s (_, a) | Setf_d (_, a) -> [ Rgr a ]
    | Br _ -> []
    | Br_ind b -> [ Rbr b ]
    | Mov_to_br (_, a) -> [ Rgr a ]
    | Mov_from_br (_, b) -> [ Rbr b ]
    | Hotc _ | Edgec _ -> []
    | Nop _ -> []
  in
  match qp with Some p -> Rpr p :: base | None -> base

let writes { sem; _ } =
  match sem with
  | Add (d, _, _) | Sub (d, _, _) | Addi (d, _, _) | Subi (d, _, _)
  | And (d, _, _) | Or (d, _, _) | Xor (d, _, _) | Andcm (d, _, _)
  | Andi (d, _, _) | Ori (d, _, _) | Xori (d, _, _) | Shl (d, _, _)
  | Shli (d, _, _) | Shru (d, _, _) | Shrui (d, _, _) | Shrs (d, _, _)
  | Shrsi (d, _, _) | Dep (d, _, _, _, _) | Depz (d, _, _, _)
  | Extr (d, _, _, _) | Extru (d, _, _, _) | Sxt (d, _, _) | Zxt (d, _, _)
  | Mov (d, _) | Movi (d, _) | Mix (d, _, _) | Popcnt (d, _)
  | Divs (d, _, _) | Divu (d, _, _) | Rems (d, _, _) | Remu (d, _, _)
  | Xma (d, _, _, _) | Xmau (d, _, _, _) | Xmah (d, _, _, _)
  | Xmahu (d, _, _, _) | Padd (_, d, _, _) | Psub (_, d, _, _)
  | Pmull (_, d, _, _) | Pcmpeq (_, d, _, _) | Pshli (_, d, _, _)
  | Pshri (_, d, _, _) | Ld (_, _, d, _) | Fcvt_fx (d, _) | Fcvt_fxt (d, _)
  | Getf_s (d, _) | Getf_d (d, _) | Mov_from_br (d, _) | Movpr (d, _) ->
    [ Rgr d ]
  | Cmp (_, _, p1, p2, _, _) | Cmpi (_, _, p1, p2, _, _) | Tbit (p1, p2, _, _)
  | Fcmp (_, p1, p2, _, _) ->
    [ Rpr p1; Rpr p2 ]
  | Setp (p, _) -> [ Rpr p ]
  | Prmov _ -> [] (* writes whole predicate file; treated as barrier *)
  | St _ | Stf _ -> [ Rmem ]
  (* chk.s "defines" its register for dependence purposes: consumers of a
     speculative load must be ordered after the check, never between the
     ld.s and its chk.s (NaT consumption would be a machine fault) *)
  | Chk_s (r, _) | Chk_a (r, _) -> [ Rgr r ]
  | Invala -> []
  | Ldf (_, d, _) | Fadd (d, _, _) | Fsub (d, _, _) | Fmul (d, _, _)
  | Fma (d, _, _, _) | Fdiv (d, _, _) | Fsqrt (d, _) | Fneg (d, _)
  | Fabs_ (d, _) | Fmov (d, _) | Frint (d, _)
  | Fmin (d, _, _) | Fmax (d, _, _) | Fcvt_xf (d, _)
  | Fcvt_32 (d, _) | Setf_s (d, _) | Setf_d (d, _) ->
    [ Rfr d ]
  | Br _ | Br_ind _ -> []
  | Mov_to_br (b, _) -> [ Rbr b ]
  | Hotc _ | Edgec _ -> []
  | Nop _ -> []

let is_branch { sem; _ } =
  match sem with Br _ | Br_ind _ -> true | _ -> false

let is_memory { sem; _ } =
  match sem with Ld _ | St _ | Ldf _ | Stf _ -> true | _ -> false

let is_store { sem; _ } = match sem with St _ | Stf _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_target ppf = function
  | To n -> Fmt.pf ppf "@%d" n
  | Out r -> Fmt.pf ppf "out:%s" (exit_reason_name r)

let pp_sem ppf sem =
  let g n = Fmt.str "r%d" n in
  let f n = Fmt.str "f%d" n in
  let p n = Fmt.str "p%d" n in
  match sem with
  | Add (d, a, b) -> Fmt.pf ppf "add %s = %s, %s" (g d) (g a) (g b)
  | Sub (d, a, b) -> Fmt.pf ppf "sub %s = %s, %s" (g d) (g a) (g b)
  | Addi (d, i, a) -> Fmt.pf ppf "add %s = %d, %s" (g d) i (g a)
  | Subi (d, i, a) -> Fmt.pf ppf "sub %s = %d, %s" (g d) i (g a)
  | And (d, a, b) -> Fmt.pf ppf "and %s = %s, %s" (g d) (g a) (g b)
  | Or (d, a, b) -> Fmt.pf ppf "or %s = %s, %s" (g d) (g a) (g b)
  | Xor (d, a, b) -> Fmt.pf ppf "xor %s = %s, %s" (g d) (g a) (g b)
  | Andcm (d, a, b) -> Fmt.pf ppf "andcm %s = %s, %s" (g d) (g a) (g b)
  | Andi (d, i, a) -> Fmt.pf ppf "and %s = 0x%x, %s" (g d) i (g a)
  | Ori (d, i, a) -> Fmt.pf ppf "or %s = 0x%x, %s" (g d) i (g a)
  | Xori (d, i, a) -> Fmt.pf ppf "xor %s = 0x%x, %s" (g d) i (g a)
  | Shl (d, a, b) -> Fmt.pf ppf "shl %s = %s, %s" (g d) (g a) (g b)
  | Shli (d, a, n) -> Fmt.pf ppf "shl %s = %s, %d" (g d) (g a) n
  | Shru (d, a, b) -> Fmt.pf ppf "shr.u %s = %s, %s" (g d) (g a) (g b)
  | Shrui (d, a, n) -> Fmt.pf ppf "shr.u %s = %s, %d" (g d) (g a) n
  | Shrs (d, a, b) -> Fmt.pf ppf "shr %s = %s, %s" (g d) (g a) (g b)
  | Shrsi (d, a, n) -> Fmt.pf ppf "shr %s = %s, %d" (g d) (g a) n
  | Dep (d, s, b, pos, len) ->
    Fmt.pf ppf "dep %s = %s, %s, %d, %d" (g d) (g s) (g b) pos len
  | Depz (d, s, pos, len) -> Fmt.pf ppf "dep.z %s = %s, %d, %d" (g d) (g s) pos len
  | Extr (d, s, pos, len) -> Fmt.pf ppf "extr %s = %s, %d, %d" (g d) (g s) pos len
  | Extru (d, s, pos, len) ->
    Fmt.pf ppf "extr.u %s = %s, %d, %d" (g d) (g s) pos len
  | Sxt (d, s, n) -> Fmt.pf ppf "sxt%d %s = %s" n (g d) (g s)
  | Zxt (d, s, n) -> Fmt.pf ppf "zxt%d %s = %s" n (g d) (g s)
  | Mov (d, s) -> Fmt.pf ppf "mov %s = %s" (g d) (g s)
  | Movi (d, v) -> Fmt.pf ppf "movl %s = 0x%Lx" (g d) v
  | Mix (d, a, b) -> Fmt.pf ppf "mix %s = %s, %s" (g d) (g a) (g b)
  | Popcnt (d, s) -> Fmt.pf ppf "popcnt %s = %s" (g d) (g s)
  | Divs (d, a, b) -> Fmt.pf ppf "div %s = %s, %s" (g d) (g a) (g b)
  | Divu (d, a, b) -> Fmt.pf ppf "div.u %s = %s, %s" (g d) (g a) (g b)
  | Rems (d, a, b) -> Fmt.pf ppf "rem %s = %s, %s" (g d) (g a) (g b)
  | Remu (d, a, b) -> Fmt.pf ppf "rem.u %s = %s, %s" (g d) (g a) (g b)
  | Xma (d, a, b, c) -> Fmt.pf ppf "xma.l %s = %s, %s, %s" (g d) (g a) (g b) (g c)
  | Xmau (d, a, b, c) -> Fmt.pf ppf "xma.lu %s = %s, %s, %s" (g d) (g a) (g b) (g c)
  | Xmah (d, a, b, c) -> Fmt.pf ppf "xma.h %s = %s, %s, %s" (g d) (g a) (g b) (g c)
  | Xmahu (d, a, b, c) ->
    Fmt.pf ppf "xma.hu %s = %s, %s, %s" (g d) (g a) (g b) (g c)
  | Padd (w, d, a, b) -> Fmt.pf ppf "padd%d %s = %s, %s" w (g d) (g a) (g b)
  | Psub (w, d, a, b) -> Fmt.pf ppf "psub%d %s = %s, %s" w (g d) (g a) (g b)
  | Pmull (w, d, a, b) -> Fmt.pf ppf "pmpy%d %s = %s, %s" w (g d) (g a) (g b)
  | Pcmpeq (w, d, a, b) -> Fmt.pf ppf "pcmp%d.eq %s = %s, %s" w (g d) (g a) (g b)
  | Pshli (w, d, a, n) -> Fmt.pf ppf "pshl%d %s = %s, %d" w (g d) (g a) n
  | Pshri (w, d, a, n) -> Fmt.pf ppf "pshr%d.u %s = %s, %d" w (g d) (g a) n
  | Cmp (rel, _, p1, p2, a, b) ->
    Fmt.pf ppf "cmp.%s %s, %s = %s, %s" (cmp_rel_name rel) (p p1) (p p2) (g a) (g b)
  | Cmpi (rel, _, p1, p2, i, a) ->
    Fmt.pf ppf "cmp.%s %s, %s = %d, %s" (cmp_rel_name rel) (p p1) (p p2) i (g a)
  | Tbit (p1, p2, a, pos) ->
    Fmt.pf ppf "tbit %s, %s = %s, %d" (p p1) (p p2) (g a) pos
  | Setp (pr, v) -> Fmt.pf ppf "setp %s = %b" (p pr) v
  | Movpr (d, mask) -> Fmt.pf ppf "mov %s = pr & 0x%Lx" (g d) mask
  | Prmov r -> Fmt.pf ppf "mov pr = %s" (g r)
  | Ld (n, spec, d, a) ->
    let s =
      match spec with Ld_none -> "" | Ld_s -> ".s" | Ld_a -> ".a" | Ld_sa -> ".sa"
    in
    Fmt.pf ppf "ld%d%s %s = [%s]" n s (g d) (g a)
  | St (n, a, v) -> Fmt.pf ppf "st%d [%s] = %s" n (g a) (g v)
  | Chk_s (r, t) -> Fmt.pf ppf "chk.s %s, %a" (g r) pp_target t
  | Chk_a (r, t) -> Fmt.pf ppf "chk.a %s, %a" (g r) pp_target t
  | Invala -> Fmt.string ppf "invala"
  | Ldf (n, d, a) -> Fmt.pf ppf "ldf%s %s = [%s]" (if n = 4 then "s" else "d") (f d) (g a)
  | Stf (n, a, v) -> Fmt.pf ppf "stf%s [%s] = %s" (if n = 4 then "s" else "d") (g a) (f v)
  | Fadd (d, a, b) -> Fmt.pf ppf "fadd %s = %s, %s" (f d) (f a) (f b)
  | Fsub (d, a, b) -> Fmt.pf ppf "fsub %s = %s, %s" (f d) (f a) (f b)
  | Fmul (d, a, b) -> Fmt.pf ppf "fmpy %s = %s, %s" (f d) (f a) (f b)
  | Fma (d, a, b, c) -> Fmt.pf ppf "fma %s = %s, %s, %s" (f d) (f a) (f b) (f c)
  | Fdiv (d, a, b) -> Fmt.pf ppf "fdiv %s = %s, %s" (f d) (f a) (f b)
  | Fsqrt (d, a) -> Fmt.pf ppf "fsqrt %s = %s" (f d) (f a)
  | Fneg (d, a) -> Fmt.pf ppf "fneg %s = %s" (f d) (f a)
  | Fabs_ (d, a) -> Fmt.pf ppf "fabs %s = %s" (f d) (f a)
  | Fmov (d, a) -> Fmt.pf ppf "fmov %s = %s" (f d) (f a)
  | Frint (d, a) -> Fmt.pf ppf "frint %s = %s" (f d) (f a)
  | Fmin (d, a, b) -> Fmt.pf ppf "fmin %s = %s, %s" (f d) (f a) (f b)
  | Fmax (d, a, b) -> Fmt.pf ppf "fmax %s = %s, %s" (f d) (f a) (f b)
  | Fcmp (rel, p1, p2, a, b) ->
    let r = match rel with Feq -> "eq" | Flt -> "lt" | Fle -> "le" | Funord -> "unord" in
    Fmt.pf ppf "fcmp.%s %s, %s = %s, %s" r (p p1) (p p2) (f a) (f b)
  | Fcvt_xf (d, a) -> Fmt.pf ppf "fcvt.xf %s = %s" (f d) (g a)
  | Fcvt_fx (d, a) -> Fmt.pf ppf "fcvt.fx %s = %s" (g d) (f a)
  | Fcvt_fxt (d, a) -> Fmt.pf ppf "fcvt.fx.trunc %s = %s" (g d) (f a)
  | Fcvt_32 (d, a) -> Fmt.pf ppf "fnorm.s %s = %s" (f d) (f a)
  | Getf_s (d, a) -> Fmt.pf ppf "getf.s %s = %s" (g d) (f a)
  | Getf_d (d, a) -> Fmt.pf ppf "getf.d %s = %s" (g d) (f a)
  | Setf_s (d, a) -> Fmt.pf ppf "setf.s %s = %s" (f d) (g a)
  | Setf_d (d, a) -> Fmt.pf ppf "setf.d %s = %s" (f d) (g a)
  | Br t -> Fmt.pf ppf "br %a" pp_target t
  | Br_ind b -> Fmt.pf ppf "br b%d" b
  | Mov_to_br (b, a) -> Fmt.pf ppf "mov b%d = %s" b (g a)
  | Mov_from_br (d, b) -> Fmt.pf ppf "mov %s = b%d" (g d) b
  | Hotc (s, t, b) -> Fmt.pf ppf "hotc [%d] thresh=%d blk=%d" s t b
  | Edgec s -> Fmt.pf ppf "edgec [%d]" s
  | Nop M -> Fmt.string ppf "nop.m"
  | Nop I -> Fmt.string ppf "nop.i"
  | Nop F -> Fmt.string ppf "nop.f"
  | Nop B -> Fmt.string ppf "nop.b"

let pp ppf { qp; sem } =
  (match qp with Some p -> Fmt.pf ppf "(p%d) " p | None -> ());
  pp_sem ppf sem

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* Register substitution (used by the hot translator's renamer)        *)
(* ------------------------------------------------------------------ *)

(* Apply register maps to every operand. [g]/[f]/[p] map GRs, FRs and
   predicates respectively. *)
let map_regs ~g ~f ~p { qp; sem } =
  let sem =
    match sem with
    | Add (d, a, b) -> Add (g d, g a, g b)
    | Sub (d, a, b) -> Sub (g d, g a, g b)
    | Addi (d, i, a) -> Addi (g d, i, g a)
    | Subi (d, i, a) -> Subi (g d, i, g a)
    | And (d, a, b) -> And (g d, g a, g b)
    | Or (d, a, b) -> Or (g d, g a, g b)
    | Xor (d, a, b) -> Xor (g d, g a, g b)
    | Andcm (d, a, b) -> Andcm (g d, g a, g b)
    | Andi (d, i, a) -> Andi (g d, i, g a)
    | Ori (d, i, a) -> Ori (g d, i, g a)
    | Xori (d, i, a) -> Xori (g d, i, g a)
    | Shl (d, a, b) -> Shl (g d, g a, g b)
    | Shli (d, a, n) -> Shli (g d, g a, n)
    | Shru (d, a, b) -> Shru (g d, g a, g b)
    | Shrui (d, a, n) -> Shrui (g d, g a, n)
    | Shrs (d, a, b) -> Shrs (g d, g a, g b)
    | Shrsi (d, a, n) -> Shrsi (g d, g a, n)
    | Dep (d, s, b, pos, len) -> Dep (g d, g s, g b, pos, len)
    | Depz (d, s, pos, len) -> Depz (g d, g s, pos, len)
    | Extr (d, s, pos, len) -> Extr (g d, g s, pos, len)
    | Extru (d, s, pos, len) -> Extru (g d, g s, pos, len)
    | Sxt (d, s, n) -> Sxt (g d, g s, n)
    | Zxt (d, s, n) -> Zxt (g d, g s, n)
    | Mov (d, s) -> Mov (g d, g s)
    | Movi (d, v) -> Movi (g d, v)
    | Mix (d, a, b) -> Mix (g d, g a, g b)
    | Popcnt (d, s) -> Popcnt (g d, g s)
    | Divs (d, a, b) -> Divs (g d, g a, g b)
    | Divu (d, a, b) -> Divu (g d, g a, g b)
    | Rems (d, a, b) -> Rems (g d, g a, g b)
    | Remu (d, a, b) -> Remu (g d, g a, g b)
    | Xma (d, a, b, c) -> Xma (g d, g a, g b, g c)
    | Xmau (d, a, b, c) -> Xmau (g d, g a, g b, g c)
    | Xmah (d, a, b, c) -> Xmah (g d, g a, g b, g c)
    | Xmahu (d, a, b, c) -> Xmahu (g d, g a, g b, g c)
    | Padd (w, d, a, b) -> Padd (w, g d, g a, g b)
    | Psub (w, d, a, b) -> Psub (w, g d, g a, g b)
    | Pmull (w, d, a, b) -> Pmull (w, g d, g a, g b)
    | Pcmpeq (w, d, a, b) -> Pcmpeq (w, g d, g a, g b)
    | Pshli (w, d, a, n) -> Pshli (w, g d, g a, n)
    | Pshri (w, d, a, n) -> Pshri (w, g d, g a, n)
    | Cmp (rel, ct, p1, p2, a, b) -> Cmp (rel, ct, p p1, p p2, g a, g b)
    | Cmpi (rel, ct, p1, p2, i, a) -> Cmpi (rel, ct, p p1, p p2, i, g a)
    | Tbit (p1, p2, a, pos) -> Tbit (p p1, p p2, g a, pos)
    | Setp (pr, v) -> Setp (p pr, v)
    | Movpr (d, mask) -> Movpr (g d, mask)
    | Prmov r -> Prmov (g r)
    | Ld (n, spec, d, a) -> Ld (n, spec, g d, g a)
    | St (n, a, v) -> St (n, g a, g v)
    | Chk_s (r, t) -> Chk_s (g r, t)
    | Chk_a (r, t) -> Chk_a (g r, t)
    | Invala -> Invala
    | Ldf (n, d, a) -> Ldf (n, f d, g a)
    | Stf (n, a, v) -> Stf (n, g a, f v)
    | Fadd (d, a, b) -> Fadd (f d, f a, f b)
    | Fsub (d, a, b) -> Fsub (f d, f a, f b)
    | Fmul (d, a, b) -> Fmul (f d, f a, f b)
    | Fma (d, a, b, c) -> Fma (f d, f a, f b, f c)
    | Fdiv (d, a, b) -> Fdiv (f d, f a, f b)
    | Fsqrt (d, a) -> Fsqrt (f d, f a)
    | Fneg (d, a) -> Fneg (f d, f a)
    | Fabs_ (d, a) -> Fabs_ (f d, f a)
    | Fmov (d, a) -> Fmov (f d, f a)
    | Frint (d, a) -> Frint (f d, f a)
    | Fmin (d, a, b) -> Fmin (f d, f a, f b)
    | Fmax (d, a, b) -> Fmax (f d, f a, f b)
    | Fcmp (rel, p1, p2, a, b) -> Fcmp (rel, p p1, p p2, f a, f b)
    | Fcvt_xf (d, a) -> Fcvt_xf (f d, g a)
    | Fcvt_fx (d, a) -> Fcvt_fx (g d, f a)
    | Fcvt_fxt (d, a) -> Fcvt_fxt (g d, f a)
    | Fcvt_32 (d, a) -> Fcvt_32 (f d, f a)
    | Getf_s (d, a) -> Getf_s (g d, f a)
    | Getf_d (d, a) -> Getf_d (g d, f a)
    | Setf_s (d, a) -> Setf_s (f d, g a)
    | Setf_d (d, a) -> Setf_d (f d, g a)
    | Br t -> Br t
    | Br_ind b -> Br_ind b
    | Mov_to_br (b, a) -> Mov_to_br (b, g a)
    | Mov_from_br (d, b) -> Mov_from_br (g d, b)
    | Hotc (s, t, b) -> Hotc (s, t, b)
    | Edgec s -> Edgec s
    | Nop k -> Nop k
  in
  { qp = Option.map p qp; sem }
